// Route planning (Application 1 of the paper): a mapping service serving
// localized shortest-path queries clustered around urban hotspots, with a
// workload shift (intra-urban → inter-urban) mid-run. The example runs the
// same workload on static Hash partitioning and on adaptive Q-cut and
// reports the latency and locality difference — the paper's headline
// scenario at example scale.
//
//	go run ./examples/routeplanning
package main

import (
	"fmt"
	"log"
	"time"

	"qgraph/internal/core"
	"qgraph/internal/gen"
	"qgraph/internal/metrics"
	"qgraph/internal/partition"
	"qgraph/internal/transport"
	"qgraph/internal/workload"
)

func main() {
	net, err := gen.Road(gen.BWConfig(256)) // ≈ 7k junctions, 16 cities
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d junctions, %d cities (largest pop %.0f)\n",
		net.G.NumVertices(), len(net.Cities), net.Cities[0].Pop)

	// Workload: 160 intra-urban trips around population hotspots, then 48
	// inter-urban trips after the "evening commute" shift.
	gen := workload.NewRoadGen(net, 7)
	specs := workload.Batch(160, gen.SSSP)
	specs = append(specs, workload.Batch(48, gen.InterUrban)...)

	run := func(name string, adapt bool) metrics.Summary {
		rec := metrics.NewRecorder(time.Now())
		eng, err := core.Start(core.Config{
			Workers:     8,
			Graph:       net.G,
			Partitioner: partition.Hash{},
			Latency:     transport.DefaultLatency(),
			Adapt:       adapt,
			Cooldown:    300 * time.Millisecond,
			CheckEvery:  50 * time.Millisecond,
			QcutBudget:  200 * time.Millisecond,
			ComputeCost: 2 * time.Microsecond,
			Recorder:    rec,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		if _, err := eng.RunBatch(specs, 16); err != nil {
			log.Fatal(err)
		}
		sum := rec.Summarize()
		fmt.Printf("%-14s mean %7.2fms  p95 %7.2fms  locality %.2f  repartitions %d\n",
			name,
			float64(sum.MeanLatency.Microseconds())/1000,
			float64(sum.P95.Microseconds())/1000,
			sum.MeanLocality, eng.Repartitions())
		return sum
	}

	fmt.Println("\nrunning the same 208-query workload twice:")
	static := run("static hash", false)
	adaptive := run("adaptive qcut", true)

	if adaptive.MeanLatency < static.MeanLatency {
		fmt.Printf("\nadaptive Q-cut reduced mean query latency by %.0f%%\n",
			100*(1-float64(adaptive.MeanLatency)/float64(static.MeanLatency)))
	} else {
		fmt.Printf("\nadaptive Q-cut did not help on this run (short workloads may not amortize repartitioning)\n")
	}
}
