// Knowledge-graph retrieval (Application 3 of the paper): many clients
// issue small retrieval queries against a shared knowledge graph, with
// query hotspots around currently-popular entities that shift over time.
// The example rotates popularity mid-run and shows the adaptive engine
// following the hotspot.
//
//	go run ./examples/knowledgegraph
package main

import (
	"fmt"
	"log"
	"time"

	"qgraph/internal/core"
	"qgraph/internal/gen"
	"qgraph/internal/metrics"
	"qgraph/internal/partition"
	"qgraph/internal/transport"
	"qgraph/internal/workload"
)

func main() {
	net, err := gen.Knowledge(gen.KnowledgeConfig{
		NumVertices: 20000, EdgesPerNew: 2,
		TagProb: 0.01, NumTopics: 16, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge graph: %d entities, %d relations, %d popular topics\n",
		net.G.NumVertices(), net.G.NumEdges()/2, len(net.Topics))

	rec := metrics.NewRecorder(time.Now())
	eng, err := core.Start(core.Config{
		Workers:     8,
		Graph:       net.G,
		Partitioner: partition.Hash{},
		Latency:     transport.DefaultLatency(),
		Adapt:       true,
		Cooldown:    250 * time.Millisecond,
		CheckEvery:  50 * time.Millisecond,
		Recorder:    rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	wgen := workload.NewKnowledgeGen(net, 3)
	phase := func(name string, n int) {
		start := len(rec.Queries())
		if _, err := eng.RunBatch(workload.Batch(n, wgen.Retrieve), 16); err != nil {
			log.Fatal(err)
		}
		qs := rec.Queries()[start:]
		sum := metrics.SummarizeRecords(qs)
		fmt.Printf("%-18s %3d retrievals: mean %7.2fms, locality %.2f, mean scope %4.0f entities\n",
			name, sum.Count,
			float64(sum.MeanLatency.Microseconds())/1000,
			sum.MeanLocality, sum.MeanTouched)
	}

	fmt.Println("\nphase 1: topics A hot")
	phase("topics A (cold)", 48)
	phase("topics A (warm)", 48)

	// Popularity shifts: the other half of the topics becomes hot. The
	// engine's monitoring window notices the new hotspots and repartitions.
	wgen.Rotate()
	fmt.Println("\nphase 2: popularity shifted to topics B")
	phase("topics B (cold)", 48)
	phase("topics B (warm)", 48)

	fmt.Printf("\nrepartitions: %d\n", eng.Repartitions())
	fmt.Println("note: preferential-attachment graphs have hub entities that sit in almost")
	fmt.Println("every retrieval scope, so scope-based locality is inherently weaker than on")
	fmt.Println("road networks — exactly the skewed-degree regime the paper defers to future")
	fmt.Println("work (i). The engine still follows the hotspot shift via its monitoring window.")
}
