// Social network analysis (Application 2 of the paper): users analyse
// their personal social circles — overlapping, localized queries with
// computational hotspots around popular accounts. The example runs
// localized personalized PageRank (the paper's future-work item (i)) and
// friend-circle explorations concurrently on a shared social graph.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"qgraph/internal/core"
	"qgraph/internal/gen"
	"qgraph/internal/metrics"
	"qgraph/internal/partition"
	"qgraph/internal/query"
	"qgraph/internal/transport"
	"qgraph/internal/workload"
)

func main() {
	net, err := gen.Social(gen.SocialConfig{
		NumVertices: 12000, NumCommunities: 24, ZipfS: 0.8,
		IntraDegree: 12, InterDegree: 1.5,
		NumHubs: 8, HubDegree: 96, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d users, %d friendships, %d communities, %d celebrity hubs\n",
		net.G.NumVertices(), net.G.NumEdges()/2, len(net.Communities), len(net.Hubs))

	rec := metrics.NewRecorder(time.Now())
	eng, err := core.Start(core.Config{
		Workers:     8,
		Graph:       net.G,
		Partitioner: partition.Hash{},
		Latency:     transport.DefaultLatency(),
		Adapt:       true,
		Cooldown:    300 * time.Millisecond,
		CheckEvery:  50 * time.Millisecond,
		Recorder:    rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Mixed workload: 2/3 influence analyses (localized PageRank seeded at
	// users and hubs), 1/3 three-hop circle explorations.
	wgen := workload.NewSocialGen(net, 9)
	var specs []queuedSpec
	for i := 0; i < 96; i++ {
		if i%3 == 2 {
			specs = append(specs, queuedSpec{"circle", wgen.Circle(3)})
		} else {
			specs = append(specs, queuedSpec{"pagerank", wgen.PageRank()})
		}
	}

	type outcome struct {
		kind    string
		touched int
		latency time.Duration
	}
	var results []outcome
	inflight := make([]*core.Handle, 0, 16)
	kinds := map[int64]string{}
	flush := func() {
		for _, h := range inflight {
			res := h.Wait()
			results = append(results, outcome{
				kind: kinds[int64(res.Q)], touched: res.Touched, latency: res.Latency,
			})
		}
		inflight = inflight[:0]
	}
	for _, qs := range specs {
		h, err := eng.Schedule(qs.spec)
		if err != nil {
			log.Fatal(err)
		}
		kinds[int64(qs.spec.ID)] = qs.kind
		inflight = append(inflight, h)
		if len(inflight) == 16 {
			flush()
		}
	}
	flush()

	byKind := map[string][]outcome{}
	for _, r := range results {
		byKind[r.kind] = append(byKind[r.kind], r)
	}
	for _, kind := range []string{"pagerank", "circle"} {
		rs := byKind[kind]
		sort.Slice(rs, func(i, j int) bool { return rs[i].latency < rs[j].latency })
		var totalTouched int
		for _, r := range rs {
			totalTouched += r.touched
		}
		fmt.Printf("%-9s %3d queries: median latency %8s, mean scope %5d users\n",
			kind, len(rs), rs[len(rs)/2].latency.Round(100_000), totalTouched/len(rs))
	}
	sum := rec.Summarize()
	fmt.Printf("\noverall: mean latency %s, mean locality %.2f, %d repartitions\n",
		sum.MeanLatency.Round(100_000), sum.MeanLocality, eng.Repartitions())
}

// queuedSpec pairs a scheduled query with its human-readable kind.
type queuedSpec struct {
	kind string
	spec query.Spec
}
