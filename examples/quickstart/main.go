// Quickstart: build a small synthetic road network, start a Q-Graph engine
// with four workers, and run a handful of shortest-path and point-of-
// interest queries in parallel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qgraph/internal/core"
	"qgraph/internal/gen"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/query"
)

func main() {
	// 1. A small road network: ~3600 junctions, 4 city hotspots.
	net, err := gen.Road(gen.RoadConfig{
		CellsX: 60, CellsY: 60, CellKM: 0.5, Jitter: 0.3,
		RemoveProb: 0.08, DiagProb: 0.05,
		HighwayEvery: 12, LocalSpeed: 50, HighwaySpeed: 110,
		NumCities: 4, ZipfS: 1, TagProb: 0.005, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d junctions, %d segments, %d cities\n",
		net.G.NumVertices(), net.G.NumEdges(), len(net.Cities))

	// 2. Start the engine: 4 workers, hash partitioning, adaptive Q-cut on.
	eng, err := core.Start(core.Config{
		Workers:     4,
		Graph:       net.G,
		Partitioner: partition.Hash{},
		Adapt:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// 3. Schedule a few queries in parallel: shortest paths between city
	// centers and a POI lookup.
	var handles []*core.Handle
	id := query.ID(1)
	for i := 0; i < len(net.Cities); i++ {
		for j := i + 1; j < len(net.Cities); j++ {
			h, err := eng.Schedule(query.Spec{
				ID: id, Kind: query.KindSSSP,
				Source: net.Cities[i].Vertex, Target: net.Cities[j].Vertex,
			})
			if err != nil {
				log.Fatal(err)
			}
			handles = append(handles, h)
			id++
		}
	}
	poi, err := eng.Schedule(query.Spec{
		ID: id, Kind: query.KindPOI,
		Source: net.Cities[0].Vertex, Target: graph.NilVertex,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Collect results.
	for _, h := range handles {
		res := h.Wait()
		fmt.Printf("sssp %5d → %5d: travel time %7.1fs, %3d supersteps, latency %s\n",
			h.Spec.Source, h.Spec.Target, res.Value, res.Supersteps, res.Latency.Round(100_000))
	}
	res := poi.Wait()
	fmt.Printf("nearest POI from %d: %.1fs away (touched %d vertices on %d workers)\n",
		poi.Spec.Source, res.Value, res.Touched, res.Workers)

	sum := eng.Recorder().Summarize()
	fmt.Printf("\n%d queries, mean latency %s, mean locality %.2f\n",
		sum.Count, sum.MeanLatency.Round(100_000), sum.MeanLocality)
}
