#!/usr/bin/env bash
# Reproducible perf trajectory: drive the five BENCH scenarios against
# local qgraphd deployments and accrete them into one JSON report
# (default BENCH_7.json — the committed perf record for this tree).
#
#   read_only_notrace  query-only load, -trace=false    (tracing-cost baseline)
#   read_only_nowatch  query-only load, -watchdog=false (watchdog-cost baseline)
#   read_only          identical load, everything on    (+ phase attribution)
#   mixed              queries + streamed mutations
#   recovery           queries through a worker SIGKILL + handoff
#
# A sixth section records the read scale-out A/B (single node vs router +
# 2 replicas with -route-affinity) into a second report, BENCH_8.json; a
# seventh A/Bs router trace propagation (the same routed workload through
# a -trace=false router vs a tracing one over the same fleet) into
# BENCH_9.json with the same ≤5% bar; an eighth A/Bs the write path
# (-barrier-commit vs the pipelined MVCC default, both WAL-durable, 24
# concurrent writers) into BENCH_10.json — bars: pipelined commit p50 at
# least 3x lower, and fsyncs per batch < 1 (group commit amortizing).
#
# The report's derived tracing_overhead_pct and watchdog_overhead_pct
# compare read_only against its two baselines; the acceptance bars are
# ≤5% for tracing and ≤2% for the watchdog. Tune with BENCH_RATE /
# BENCH_DURATION; usage: scripts/bench.sh [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_7.json}"
RATE="${BENCH_RATE:-300}"
DUR="${BENCH_DURATION:-6s}"

workdir=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046  # word-splitting is the point: one PID per arg
  kill $(jobs -p) >/dev/null 2>&1 || true
  wait >/dev/null 2>&1 || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir" ./cmd/...

"$workdir/qgraph-gen" -kind road -preset bw -scale 256 \
  -out "$workdir/g.qgr" -mutations 20000

rm -f "$OUT"

CTRL=""
W0=""

start_deploy() { # addrs serve-addr [extra controller flags...]
  local addrs=$1 serveaddr=$2
  shift 2
  "$workdir/qgraphd" -role worker -id 0 -graph "$workdir/g.qgr" \
    -addrs "$addrs" >>"$workdir/bench.log" 2>&1 &
  W0=$!
  "$workdir/qgraphd" -role worker -id 1 -graph "$workdir/g.qgr" \
    -addrs "$addrs" >>"$workdir/bench.log" 2>&1 &
  sleep 1
  "$workdir/qgraphd" -role controller -graph "$workdir/g.qgr" -addrs "$addrs" \
    -serve "$serveaddr" -commit-every 100ms "$@" >>"$workdir/bench.log" 2>&1 &
  CTRL=$!
  for _ in $(seq 1 50); do
    curl -fsS "http://$serveaddr/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "bench: deployment on $serveaddr never became healthy" >&2
  tail -20 "$workdir/bench.log" >&2
  return 1
}

stop_deploy() {
  kill -INT "$CTRL" >/dev/null 2>&1 || true
  wait "$CTRL" >/dev/null 2>&1 || true
  sleep 1
}

# The read-only pair is a controlled comparison of the per-request cost
# of tracing, so it pins every confounder the other scenarios keep:
#   * adaptive Q-cut is off (-adapt=false) — a repartition flushes the
#     result cache, and whether the re-warm miss storm lands inside the
#     measurement window is chaotic run-to-run noise far above 5%;
#   * both runs first warm the cache with the identical (same-seed)
#     workload, so neither pays the one-off pool-computation cost;
#   * each arm is measured PAIR_REPS times and the best (lowest-mean)
#     repetition is recorded (-json-best): at sub-millisecond means a 5%
#     bar is ~15µs, below single-run scheduler/GC tail noise, and
#     repeat-and-take-best strips exactly that noise from both arms.
PAIR_DUR="${BENCH_COMPARE_DURATION:-10s}"
PAIR_REPS="${BENCH_COMPARE_REPS:-3}"
warmup() { # base-url
  "$workdir/qgraph-bench" -load "$1" -rate "$RATE" \
    -load-duration "$DUR" -load-pool 128 -load-timeout 30s >/dev/null
}

# --- read_only_notrace: the tracing-cost baseline ---------------------------
start_deploy "127.0.0.1:7761,127.0.0.1:7762,127.0.0.1:7763" "127.0.0.1:7810" \
  -adapt=false -trace=false
warmup "http://127.0.0.1:7810"
for _ in $(seq 1 "$PAIR_REPS"); do
  "$workdir/qgraph-bench" -load "http://127.0.0.1:7810" -rate "$RATE" \
    -load-duration "$PAIR_DUR" -load-pool 128 \
    -scenario read_only_notrace -json-out "$OUT" -json-best
done
stop_deploy

# --- read_only_nowatch: the watchdog-cost baseline --------------------------
start_deploy "127.0.0.1:7774,127.0.0.1:7775,127.0.0.1:7776" "127.0.0.1:7814" \
  -adapt=false -watchdog=false
warmup "http://127.0.0.1:7814"
for _ in $(seq 1 "$PAIR_REPS"); do
  "$workdir/qgraph-bench" -load "http://127.0.0.1:7814" -rate "$RATE" \
    -load-duration "$PAIR_DUR" -load-pool 128 \
    -scenario read_only_nowatch -json-out "$OUT" -json-best
done
stop_deploy

# --- read_only: identical load with tracing and watchdog on -----------------
start_deploy "127.0.0.1:7764,127.0.0.1:7765,127.0.0.1:7766" "127.0.0.1:7811" \
  -adapt=false
warmup "http://127.0.0.1:7811"
for _ in $(seq 1 "$PAIR_REPS"); do
  "$workdir/qgraph-bench" -load "http://127.0.0.1:7811" -rate "$RATE" \
    -load-duration "$PAIR_DUR" -load-pool 128 \
    -trace-sample 5 -scenario read_only -json-out "$OUT" -json-best
done
stop_deploy

# --- mixed: queries + streamed mutations ------------------------------------
start_deploy "127.0.0.1:7767,127.0.0.1:7768,127.0.0.1:7769" "127.0.0.1:7812"
"$workdir/qgraph-bench" -load "http://127.0.0.1:7812" -rate "$RATE" \
  -load-duration "$DUR" -load-pool 128 \
  -mutate-rate 200 -mutate-batch 25 -mutations "$workdir/g.qgr.mut" \
  -trace-sample 5 -scenario mixed -json-out "$OUT"
stop_deploy

# --- recovery: a worker SIGKILL mid-load ------------------------------------
start_deploy "127.0.0.1:7771,127.0.0.1:7772,127.0.0.1:7773" "127.0.0.1:7813" \
  -heartbeat-every 200ms -heartbeat-timeout 1s
"$workdir/qgraph-bench" -load "http://127.0.0.1:7813" -rate 150 \
  -load-duration 12s -load-pool 64 -load-timeout 15s \
  -kill-pid "$W0" -kill-worker 0 -kill-after 4s \
  -trace-sample 5 -scenario recovery -json-out "$OUT"
stop_deploy

# --- read scale-out: router + 2 replicas vs the single primary --------------
# The PR-8 A/B, recorded into its own report (default BENCH_8.json): the
# identical read workload is measured once against the primary alone and
# once through the router fronting two WAL-tailing replicas with
# -route-affinity. The workload is sized so one node is miss-bound (pool
# 1024 distinct queries vs a 512-entry result cache) while the sharded
# fleet holds the whole pool in aggregate cache — the same reason read
# fleets scale in production. Both arms get the same warmup, rate, pool,
# and per-node cache config; the derived read_scaleout_x in the report is
# router_read goodput over single_node_read goodput (bar: >= 1.7x).
OUT8="${BENCH_OUT8:-BENCH_8.json}"
RATE8="${BENCH_SCALEOUT_RATE:-300}"
WARM8="${BENCH_SCALEOUT_WARMUP:-30s}"
DUR8="${BENCH_SCALEOUT_DURATION:-10s}"
SNAP8="$workdir/snap8"
WAL8="$workdir/wal8"
mkdir -p "$SNAP8" "$WAL8"
rm -f "$OUT8"

arm() { # base-url scenario
  "$workdir/qgraph-bench" -load "$1" -rate "$RATE8" -load-duration "$WARM8" \
    -load-pool 1024 -load-tenants 1 -load-timeout 60s >/dev/null
  sleep 3 # let the admission queue drain so the warmup doesn't bleed in
  "$workdir/qgraph-bench" -load "$1" -rate "$RATE8" -load-duration "$DUR8" \
    -load-pool 1024 -load-tenants 1 -load-timeout 60s \
    -scenario "$2" -json-out "$OUT8"
}

start_deploy "127.0.0.1:7777,127.0.0.1:7778,127.0.0.1:7779" "127.0.0.1:7815" \
  -adapt=false -snapshot-dir "$SNAP8" -wal-dir "$WAL8" \
  -cache-size 512 -cache-ttl 10m
arm "http://127.0.0.1:7815" single_node_read

"$workdir/qgraphd" -role replica -graph "$workdir/g.qgr" \
  -snapshot-dir "$SNAP8" -wal-dir "$WAL8" -serve 127.0.0.1:7816 \
  -cache-size 512 -cache-ttl 10m >>"$workdir/bench.log" 2>&1 &
REPA=$!
"$workdir/qgraphd" -role replica -graph "$workdir/g.qgr" \
  -snapshot-dir "$SNAP8" -wal-dir "$WAL8" -serve 127.0.0.1:7817 \
  -cache-size 512 -cache-ttl 10m >>"$workdir/bench.log" 2>&1 &
REPB=$!
for p in 7816 7817; do
  for _ in $(seq 1 50); do
    curl -fsS "http://127.0.0.1:$p/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
done
"$workdir/qgraphd" -role router -primary http://127.0.0.1:7815 \
  -replicas http://127.0.0.1:7816,http://127.0.0.1:7817 \
  -route-affinity -health-every 200ms -serve 127.0.0.1:7818 \
  >>"$workdir/bench.log" 2>&1 &
ROUTER=$!
nrot=0
for _ in $(seq 1 50); do
  nrot=$(curl -fsS http://127.0.0.1:7818/healthz 2>/dev/null \
    | grep -o '"in_rotation":true' | wc -l)
  [ "$nrot" -eq 2 ] && break
  sleep 0.2
done
if [ "$nrot" -ne 2 ]; then
  echo "bench: replicas never entered the router rotation" >&2
  exit 1
fi
arm "http://127.0.0.1:7818" router_read

# --- router trace-propagation overhead: routed reads, -trace A/B ------------
# The PR-9 A/B, recorded into its own report (default BENCH_9.json): the
# identical cache-warm routed read workload through two routers over the
# SAME fleet — one with -trace=false (no route trace, no propagated
# X-QGraph-Trace-ID), one with tracing on. Both arms share the replicas,
# their caches, and the pair methodology of the read_only comparison
# (same-seed warmup, PAIR_REPS repetitions, best kept); the derived
# router_trace_overhead_pct must stay within the same ≤5% bar as
# node-local tracing.
OUT9="${BENCH_OUT9:-BENCH_9.json}"
rm -f "$OUT9"

"$workdir/qgraphd" -role router -primary http://127.0.0.1:7815 \
  -replicas http://127.0.0.1:7816,http://127.0.0.1:7817 \
  -route-affinity -health-every 200ms -trace=false -serve 127.0.0.1:7819 \
  >>"$workdir/bench.log" 2>&1 &
ROUTERNT=$!
nrot=0
for _ in $(seq 1 50); do
  nrot=$(curl -fsS http://127.0.0.1:7819/healthz 2>/dev/null \
    | grep -o '"in_rotation":true' | wc -l)
  [ "$nrot" -eq 2 ] && break
  sleep 0.2
done
if [ "$nrot" -ne 2 ]; then
  echo "bench: replicas never entered the untraced router's rotation" >&2
  exit 1
fi

pair9() { # base-url scenario
  "$workdir/qgraph-bench" -load "$1" -rate "$RATE8" -load-duration "$DUR" \
    -load-pool 128 -load-timeout 30s >/dev/null
  for _ in $(seq 1 "$PAIR_REPS"); do
    "$workdir/qgraph-bench" -load "$1" -rate "$RATE8" -load-duration "$PAIR_DUR" \
      -load-pool 128 -load-timeout 30s \
      -scenario "$2" -json-out "$OUT9" -json-best
  done
}
pair9 "http://127.0.0.1:7819" router_read_notrace
pair9 "http://127.0.0.1:7818" router_read_trace

kill -INT "$ROUTER" "$ROUTERNT" "$REPA" "$REPB" >/dev/null 2>&1 || true
stop_deploy

# --- write path: barrier vs pipelined commit A/B ----------------------------
# The PR-10 A/B, recorded into its own report (default BENCH_10.json):
# the identical mixed workload — background reads plus 4 concurrent
# closed-loop mutation writers — against two WAL-durable deployments
# that differ in exactly one flag: -barrier-commit (every batch rides
# the global STOP/START barrier, the pre-MVCC baseline) vs the default
# pipelined path (commit to v+1 while readers run at their pinned
# views). Commit latency is client-measured POST /mutate round-trip;
# fsyncs_per_batch comes from the server's WAL stats and drops below 1
# only when the group committer coalesces concurrent writers' batches
# into shared syncs. Bars: pipelined commit p50 >= 3x lower than the
# barrier arm, fsyncs/batch < 1 on the pipelined arm.
#
# Both arms run -max-batch-ops equal to the client batch size, so every
# POST seals its own version the moment it arrives instead of pooling in
# the staging buffer: staging is itself an upstream coalescer, and left
# at its default it merges the concurrent writers' batches into one
# append per tick — hiding both the barrier's serialization (the cost
# under test) and the WAL group committer (the amortization under test).
# The read load matters too: the barrier arm's commit cost IS the
# quiesce of in-flight reader supersteps, so with no readers the two
# arms measure the same thing.
OUT10="${BENCH_OUT10:-BENCH_10.json}"
RATE10="${BENCH_WRITE_READ_RATE:-60}"
MUTRATE10="${BENCH_WRITE_MUTATE_RATE:-12000}"
DUR10="${BENCH_WRITE_DURATION:-10s}"
WAL10A="$workdir/wal10a"
WAL10B="$workdir/wal10b"
mkdir -p "$WAL10A" "$WAL10B"
rm -f "$OUT10"

write_arm() { # base-url scenario
  "$workdir/qgraph-bench" -load "$1" -rate "$RATE10" -load-duration "$DUR10" \
    -load-pool 128 -load-timeout 30s \
    -mutate-rate "$MUTRATE10" -mutate-batch 5 -mutate-writers 24 \
    -scenario "$2" -json-out "$OUT10"
}

start_deploy "127.0.0.1:7781,127.0.0.1:7782,127.0.0.1:7783" "127.0.0.1:7820" \
  -adapt=false -commit-every 1ms -max-batch-ops 5 -wal-dir "$WAL10A" \
  -barrier-commit
write_arm "http://127.0.0.1:7820" write_barrier
stop_deploy

start_deploy "127.0.0.1:7784,127.0.0.1:7785,127.0.0.1:7786" "127.0.0.1:7821" \
  -adapt=false -commit-every 1ms -max-batch-ops 5 -wal-dir "$WAL10B"
write_arm "http://127.0.0.1:7821" write_pipelined
stop_deploy

# --- verdict ----------------------------------------------------------------
overhead=$(sed -n 's/.*"tracing_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' "$OUT")
woverhead=$(sed -n 's/.*"watchdog_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' "$OUT")
scaleout=$(sed -n 's/.*"read_scaleout_x": \([0-9.]*\).*/\1/p' "$OUT8")
rtoverhead=$(sed -n 's/.*"router_trace_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' "$OUT9")
speedup=$(sed -n 's/.*"commit_pipeline_speedup_x": \([0-9.]*\).*/\1/p' "$OUT10")
# Go marshals the scenarios map with sorted keys, so write_pipelined's
# block follows write_barrier's: the first fsyncs_per_batch after the
# scenario name is the pipelined arm's.
pfsyncs=$(awk '/"write_pipelined"/ { inarm=1 }
  inarm && /"fsyncs_per_batch"/ { gsub(/[",]/, "", $2); print $2; exit }' "$OUT10")
echo "BENCH OK: report written to $OUT (tracing overhead ${overhead:-?}%, watchdog overhead ${woverhead:-?}%)"
echo "BENCH OK: read scale-out report written to $OUT8 (router+2 replicas = ${scaleout:-?}x single node)"
echo "BENCH OK: router trace report written to $OUT9 (trace propagation overhead ${rtoverhead:-?}%)"
echo "BENCH OK: write-path report written to $OUT10 (pipelined commit ${speedup:-?}x faster than barrier, ${pfsyncs:-?} fsyncs/batch)"
breach=0
if [ -n "$scaleout" ]; then
  under=$(awk -v x="$scaleout" 'BEGIN { print (x < 1.7) ? 1 : 0 }')
  if [ "$under" -eq 1 ]; then
    echo "BENCH WARN: read scale-out ${scaleout}x is below the 1.7x bar" >&2
    breach=1
  fi
fi
if [ -n "$overhead" ]; then
  over=$(awk -v o="$overhead" 'BEGIN { print (o > 5) ? 1 : 0 }')
  if [ "$over" -eq 1 ]; then
    echo "BENCH WARN: tracing overhead ${overhead}% exceeds the 5% bar" >&2
    breach=1
  fi
fi
if [ -n "$woverhead" ]; then
  wover=$(awk -v o="$woverhead" 'BEGIN { print (o > 2) ? 1 : 0 }')
  if [ "$wover" -eq 1 ]; then
    echo "BENCH WARN: watchdog overhead ${woverhead}% exceeds the 2% bar" >&2
    breach=1
  fi
fi
if [ -n "$rtoverhead" ]; then
  rtover=$(awk -v o="$rtoverhead" 'BEGIN { print (o > 5) ? 1 : 0 }')
  if [ "$rtover" -eq 1 ]; then
    echo "BENCH WARN: router trace overhead ${rtoverhead}% exceeds the 5% bar" >&2
    breach=1
  fi
fi
if [ -n "$speedup" ]; then
  slow=$(awk -v x="$speedup" 'BEGIN { print (x < 3) ? 1 : 0 }')
  if [ "$slow" -eq 1 ]; then
    echo "BENCH WARN: pipelined commit speedup ${speedup}x is below the 3x bar" >&2
    breach=1
  fi
fi
if [ -n "$pfsyncs" ]; then
  unamortized=$(awk -v f="$pfsyncs" 'BEGIN { print (f >= 1) ? 1 : 0 }')
  if [ "$unamortized" -eq 1 ]; then
    echo "BENCH WARN: pipelined arm ran ${pfsyncs} fsyncs/batch — group commit never amortized" >&2
    breach=1
  fi
fi
if [ "$breach" -eq 1 ]; then
  # BENCH_SOFT_FAIL=1 (CI on shared runners) reports the breach without
  # failing the job; the committed report is measured on quiet hardware.
  [ "${BENCH_SOFT_FAIL:-0}" = "1" ] || exit 1
fi
