#!/usr/bin/env bash
# Smoke test for the streaming-update serving stack and worker failure
# recovery. Scenario 1: start a 2-worker qgraphd deployment with -serve,
# stream graph mutations (qgraph-gen -mutations replay) at the HTTP API
# while qgraph-bench generates query load, and assert zero failed queries,
# applied mutations, and an advanced graph version. Scenario 2: a fresh
# deployment where qgraph-bench SIGKILLs a worker mid-load — recovery must
# hand its partition to the survivor with zero worker_lost responses, a
# bounded recovery time, and /healthz back to ok. Scenario 3: sustained
# mutate load with -snapshot-dir — force a checkpoint, SIGKILL a worker and
# restart it with -rejoin; the rejoin must replay from the checkpoint
# version (not 0), the op log must stay bounded, and a full deployment
# restart from the checkpoint must answer the same query identically.
# Scenario 4: durable WAL — kill -9 the whole deployment mid-mutation-load
# and restart with -wal-dir; the recovered version must equal the last
# acknowledged one and the answers must match a never-crashed control run.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046  # word-splitting is the point: one PID per arg
  kill $(jobs -p) >/dev/null 2>&1 || true
  wait >/dev/null 2>&1 || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir" ./cmd/...

"$workdir/qgraph-gen" -kind road -preset bw -scale 256 \
  -out "$workdir/g.qgr" -mutations 5000

ADDRS="127.0.0.1:7701,127.0.0.1:7702,127.0.0.1:7703"
SERVE="127.0.0.1:7800"

"$workdir/qgraphd" -role worker -id 0 -graph "$workdir/g.qgr" -addrs "$ADDRS" &
"$workdir/qgraphd" -role worker -id 1 -graph "$workdir/g.qgr" -addrs "$ADDRS" &
sleep 1
"$workdir/qgraphd" -role controller -graph "$workdir/g.qgr" -addrs "$ADDRS" \
  -serve "$SERVE" -commit-every 100ms &
ctrl=$!

for _ in $(seq 1 50); do
  curl -fsS "http://$SERVE/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "http://$SERVE/healthz"; echo

out=$("$workdir/qgraph-bench" -load "http://$SERVE" -rate 200 -load-duration 5s \
  -load-pool 64 -mutate-rate 100 -mutate-batch 25 -mutations "$workdir/g.qgr.mut")
echo "$out"

health=$(curl -fsS "http://$SERVE/healthz")
echo "$health"

kill -INT "$ctrl" >/dev/null 2>&1 || true
wait "$ctrl" || true

fail=0

qline=$(grep -m1 '^sent=' <<<"$out")
okq=$(sed -n 's/.* ok=\([0-9]*\).*/\1/p' <<<"$qline")
failedq=$(sed -n 's/.* failed=\([0-9]*\).*/\1/p' <<<"$qline")
[ "${okq:-0}" -gt 0 ] || { echo "SMOKE FAIL: no successful queries"; fail=1; }
[ "${failedq:-1}" -eq 0 ] || { echo "SMOKE FAIL: $failedq failed queries"; fail=1; }

mline=$(grep -m1 '^mutations: writers=' <<<"$out")
applied=$(sed -n 's/.*applied=\([0-9]*\).*/\1/p' <<<"$mline")
failedm=$(sed -n 's/.*failed=\([0-9]*\).*/\1/p' <<<"$mline")
[ "${applied:-0}" -gt 0 ] || { echo "SMOKE FAIL: no mutations applied"; fail=1; }
[ "${failedm:-1}" -eq 0 ] || { echo "SMOKE FAIL: $failedm failed mutation ops"; fail=1; }

version=$(sed -n 's/.*"graph_version":\([0-9]*\).*/\1/p' <<<"$health")
[ "${version:-0}" -gt 0 ] || { echo "SMOKE FAIL: graph version did not advance"; fail=1; }
grep -q '"status":"ok"' <<<"$health" || { echo "SMOKE FAIL: unhealthy"; fail=1; }

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "SMOKE OK: $okq queries, $applied mutation ops applied, graph version $version"

# ---------------------------------------------------------------------------
# Scenario 2: kill a worker mid-load; assert recovery instead of failure.

ADDRS2="127.0.0.1:7711,127.0.0.1:7712,127.0.0.1:7713"
SERVE2="127.0.0.1:7801"

"$workdir/qgraphd" -role worker -id 0 -graph "$workdir/g.qgr" -addrs "$ADDRS2" &
victim=$!
"$workdir/qgraphd" -role worker -id 1 -graph "$workdir/g.qgr" -addrs "$ADDRS2" &
sleep 1
"$workdir/qgraphd" -role controller -graph "$workdir/g.qgr" -addrs "$ADDRS2" \
  -serve "$SERVE2" -commit-every 100ms \
  -heartbeat-every 200ms -heartbeat-timeout 1s &
ctrl2=$!

for _ in $(seq 1 50); do
  curl -fsS "http://$SERVE2/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done

out2=$("$workdir/qgraph-bench" -load "http://$SERVE2" -rate 150 -load-duration 12s \
  -load-pool 64 -load-timeout 15s -kill-pid "$victim" -kill-worker 0 -kill-after 4s)
echo "$out2"

health2=$(curl -fsS "http://$SERVE2/healthz")
echo "$health2"

kill -INT "$ctrl2" >/dev/null 2>&1 || true
wait "$ctrl2" || true

fail=0

qline2=$(grep -m1 '^sent=' <<<"$out2")
okq2=$(sed -n 's/.* ok=\([0-9]*\).*/\1/p' <<<"$qline2")
failedq2=$(sed -n 's/.* failed=\([0-9]*\).*/\1/p' <<<"$qline2")
lost2=$(sed -n 's/.*worker_lost=\([0-9]*\).*/\1/p' <<<"$qline2")
[ "${okq2:-0}" -gt 0 ] || { echo "SMOKE FAIL: no successful queries through the kill"; fail=1; }
[ "${failedq2:-1}" -eq 0 ] || { echo "SMOKE FAIL: $failedq2 failed queries during recovery"; fail=1; }
[ "${lost2:-1}" -eq 0 ] || { echo "SMOKE FAIL: $lost2 worker_lost responses reached clients"; fail=1; }

rline=$(grep -m1 '^recovery:' <<<"$out2") || rline=""
episodes=$(sed -n 's/.*episodes=\([0-9]*\).*/\1/p' <<<"$rline")
recms=$(sed -n 's/.*recovery_time_ms=\([0-9.]*\).*/\1/p' <<<"$rline")
[ "${episodes:-0}" -ge 1 ] || { echo "SMOKE FAIL: no recovery episode recorded"; fail=1; }
# Detection (1s heartbeat timeout) plus handoff must stay well under 10s.
recint=${recms%.*}
[ -n "$recint" ] && [ "$recint" -lt 10000 ] || { echo "SMOKE FAIL: recovery took ${recms:-?}ms"; fail=1; }

grep -q '"status":"ok"' <<<"$health2" || { echo "SMOKE FAIL: not healthy after recovery"; fail=1; }
grep -q '"dead_workers":\[0\]' <<<"$health2" || { echo "SMOKE FAIL: lost worker not reported"; fail=1; }

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "SMOKE OK: recovery in ${recms}ms, $okq2 queries served through a worker kill, zero worker_lost"

# ---------------------------------------------------------------------------
# Scenario 3: checkpointing — snapshot, log truncation, rejoin-from-
# checkpoint, and restart-from-disk.

ADDRS3="127.0.0.1:7721,127.0.0.1:7722,127.0.0.1:7723"
SERVE3="127.0.0.1:7802"
SNAPDIR="$workdir/snaps"
mkdir -p "$SNAPDIR"

start_w3() { # id extra-flags... ; logs to $workdir/w3-<id>.log
  local id=$1; shift
  "$workdir/qgraphd" -role worker -id "$id" -graph "$workdir/g.qgr" \
    -addrs "$ADDRS3" -snapshot-dir "$SNAPDIR" "$@" \
    >>"$workdir/w3-$id.log" 2>&1 &
}

start_w3 0
victim3=$!
start_w3 1
sleep 1
"$workdir/qgraphd" -role controller -graph "$workdir/g.qgr" -addrs "$ADDRS3" \
  -serve "$SERVE3" -commit-every 50ms -snapshot-dir "$SNAPDIR" \
  -heartbeat-every 200ms -heartbeat-timeout 1s &
ctrl3=$!

for _ in $(seq 1 50); do
  curl -fsS "http://$SERVE3/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done

# Background fault choreography against the bench window below: kill the
# worker 4s in (like scenario 2), restart it with -rejoin 2s later.
(
  sleep 6.5
  start_w3 0 -rejoin
) &

out3=$("$workdir/qgraph-bench" -load "http://$SERVE3" -rate 100 -load-duration 12s \
  -load-pool 64 -load-timeout 15s -mutate-rate 400 -mutate-batch 50 \
  -kill-pid "$victim3" -kill-worker 0 -kill-after 4s &
bench3=$!
# Force a checkpoint while mutations stream, before the kill fires.
sleep 2.5
curl -fsS -X POST "http://$SERVE3/admin/snapshot" >"$workdir/snapcut.json"
wait "$bench3")
echo "$out3"
echo "forced checkpoint: $(cat "$workdir/snapcut.json")"

fail=0

cutver=$(sed -n 's/.*"version":\([0-9]*\).*/\1/p' "$workdir/snapcut.json")
grep -q '"cut":true' "$workdir/snapcut.json" || { echo "SMOKE FAIL: forced snapshot did not cut"; fail=1; }
grep -q '"persisted":true' "$workdir/snapcut.json" || { echo "SMOKE FAIL: snapshot not persisted"; fail=1; }
[ "${cutver:-0}" -gt 0 ] || { echo "SMOKE FAIL: checkpoint at version 0"; fail=1; }

# The op log must be bounded: ops were truncated and the retained tail is
# smaller than what the run applied.
grep -q 'bounded=true' <<<"$out3" || { echo "SMOKE FAIL: delta log not bounded by the checkpoint"; fail=1; }

# The rejoined worker replayed from the checkpoint version, not 0.
# (PR 6 made this a structured log line: msg=rejoined ... checkpoint_version=V)
for _ in $(seq 1 50); do
  grep -q 'msg=rejoined' "$workdir/w3-0.log" && break
  sleep 0.2
done
rejline=$(grep -m1 'msg=rejoined' "$workdir/w3-0.log") || rejline=""
rejver=$(sed -n 's/.*checkpoint_version=\([0-9]*\).*/\1/p' <<<"$rejline")
echo "rejoin: ${rejline:-<missing>}"
[ -n "$rejver" ] && [ "$rejver" -gt 0 ] || { echo "SMOKE FAIL: rejoin did not replay from a checkpoint (got version '${rejver:-none}')"; fail=1; }

# Recovery through the kill stayed within the PR 3 bound.
rline3=$(grep -m1 '^recovery:' <<<"$out3") || rline3=""
episodes3=$(sed -n 's/.*episodes=\([0-9]*\).*/\1/p' <<<"$rline3")
recms3=$(sed -n 's/.*recovery_time_ms=\([0-9.]*\).*/\1/p' <<<"$rline3")
[ "${episodes3:-0}" -ge 1 ] || { echo "SMOKE FAIL: no recovery episode in scenario 3"; fail=1; }
recint3=${recms3%.*}
[ -n "$recint3" ] && [ "$recint3" -lt 10000 ] || { echo "SMOKE FAIL: recovery took ${recms3:-?}ms"; fail=1; }

# Restart-from-disk: checkpoint the final state, remember a reference
# answer, bounce the whole deployment, and ask again.
curl -fsS -X POST "http://$SERVE3/admin/snapshot" >/dev/null
ref1=$(curl -fsS "http://$SERVE3/query" -d '{"kind":"sssp","source":0,"target":999,"no_cache":true}')
val1=$(sed -n 's/.*"value":\([0-9.e+-]*\|null\).*/\1/p' <<<"$ref1")
ver1=$(curl -fsS "http://$SERVE3/healthz" | sed -n 's/.*"graph_version":\([0-9]*\).*/\1/p')

kill -INT "$ctrl3" >/dev/null 2>&1 || true
wait "$ctrl3" || true
# Workers exit via the protocol Shutdown; give them a moment.
sleep 1

start_w3 0
start_w3 1
sleep 1
"$workdir/qgraphd" -role controller -graph "$workdir/g.qgr" -addrs "$ADDRS3" \
  -serve "$SERVE3" -commit-every 50ms -snapshot-dir "$SNAPDIR" &
ctrl3b=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$SERVE3/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done

ver2=$(curl -fsS "http://$SERVE3/healthz" | sed -n 's/.*"graph_version":\([0-9]*\).*/\1/p')
ref2=$(curl -fsS "http://$SERVE3/query" -d '{"kind":"sssp","source":0,"target":999,"no_cache":true}')
val2=$(sed -n 's/.*"value":\([0-9.e+-]*\|null\).*/\1/p' <<<"$ref2")

[ -n "$val1" ] && [ "$val1" = "$val2" ] || { echo "SMOKE FAIL: restart changed the answer ('$val1' vs '$val2')"; fail=1; }
[ "${ver2:-0}" -eq "${ver1:-1}" ] || { echo "SMOKE FAIL: restart lost the graph version ($ver1 vs $ver2)"; fail=1; }

kill -INT "$ctrl3b" >/dev/null 2>&1 || true
wait "$ctrl3b" || true

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "SMOKE OK: checkpoint v$cutver, rejoin replayed from v$rejver, restart preserved version $ver2 and answer $val2"

# ---------------------------------------------------------------------------
# Scenario 4: durable WAL — SIGKILL the whole deployment mid-mutation-load,
# restart with -wal-dir, and prove zero lost ops: the recovered graph
# version equals the last acknowledged one, and the final answer matches a
# never-crashed control run that applied the identical op stream.

BATCH4=50
NBATCH4=40   # 2000 ops total from g.qgr.mut
KILLAT4=25   # batches acked before the kill -9

# mut_body <batch-index>: JSON body for op lines [i*BATCH4, i*BATCH4+BATCH4).
mut_body() {
  awk -v from="$(( $1 * BATCH4 ))" -v count="$BATCH4" '
    /^#/ || NF == 0 { next }
    { i++ }
    i <= from || i > from + count { next }
    {
      if (n++) printf ","
      else printf "{\"ops\":["
      if ($1 == "add_vertex")       printf "{\"op\":\"add_vertex\"}"
      else if ($1 == "remove_edge") printf "{\"op\":\"remove_edge\",\"from\":%s,\"to\":%s}", $2, $3
      else                          printf "{\"op\":\"%s\",\"from\":%s,\"to\":%s,\"weight\":%s}", $1, $2, $3, $4
    }
    END { if (n) printf "]}" }
  ' "$workdir/g.qgr.mut"
}

# apply_batches <serve> <from> <to>: post batches [from, to) one at a time
# (each waits for its commit ack), echo the last acknowledged version.
apply_batches() {
  local serve=$1 from=$2 to=$3 ver="" body resp b
  for b in $(seq "$from" $(( to - 1 ))); do
    body=$(mut_body "$b")
    resp=$(curl -fsS "http://$serve/mutate" -d "$body") || return 1
    ver=$(sed -n 's/.*"version":\([0-9]*\).*/\1/p' <<<"$resp")
  done
  echo "$ver"
}

wait_healthy() { # serve
  for _ in $(seq 1 50); do
    curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  return 1
}

# Control run: the full stream, no crash.
ADDRS4C="127.0.0.1:7741,127.0.0.1:7742,127.0.0.1:7743"
SERVE4C="127.0.0.1:7803"
"$workdir/qgraphd" -role worker -id 0 -graph "$workdir/g.qgr" -addrs "$ADDRS4C" &
"$workdir/qgraphd" -role worker -id 1 -graph "$workdir/g.qgr" -addrs "$ADDRS4C" &
sleep 1
"$workdir/qgraphd" -role controller -graph "$workdir/g.qgr" -addrs "$ADDRS4C" \
  -serve "$SERVE4C" -commit-every 50ms &
ctrl4c=$!
wait_healthy "$SERVE4C" || { echo "SMOKE FAIL: control deployment never healthy"; exit 1; }

verc=$(apply_batches "$SERVE4C" 0 "$NBATCH4") || { echo "SMOKE FAIL: control mutations failed"; exit 1; }
refc=$(curl -fsS "http://$SERVE4C/query" -d '{"kind":"sssp","source":0,"target":999,"no_cache":true}')
valc=$(sed -n 's/.*"value":\([0-9.e+-]*\|null\).*/\1/p' <<<"$refc")
kill -INT "$ctrl4c" >/dev/null 2>&1 || true
wait "$ctrl4c" || true
sleep 1

# Crash run: same stream over -wal-dir + -snapshot-dir, kill -9 everything
# after KILLAT4 acked batches (with a checkpoint forced mid-way, so the
# restart exercises snapshot + WAL tail, not just a full replay).
ADDRS4="127.0.0.1:7751,127.0.0.1:7752,127.0.0.1:7753"
SERVE4="127.0.0.1:7804"
SNAP4="$workdir/snaps4"
WAL4="$workdir/wal4"
mkdir -p "$SNAP4" "$WAL4"

start_d4() { # id-or-controller
  if [ "$1" = controller ]; then
    "$workdir/qgraphd" -role controller -graph "$workdir/g.qgr" -addrs "$ADDRS4" \
      -serve "$SERVE4" -commit-every 50ms -snapshot-dir "$SNAP4" -wal-dir "$WAL4" \
      >>"$workdir/d4-ctrl.log" 2>&1 &
  else
    "$workdir/qgraphd" -role worker -id "$1" -graph "$workdir/g.qgr" -addrs "$ADDRS4" \
      -snapshot-dir "$SNAP4" -wal-dir "$WAL4" >>"$workdir/d4-w$1.log" 2>&1 &
  fi
}

start_d4 0; w4a=$!
start_d4 1; w4b=$!
sleep 1
start_d4 controller; ctrl4=$!
wait_healthy "$SERVE4" || { echo "SMOKE FAIL: wal deployment never healthy"; exit 1; }

half=$(( KILLAT4 / 2 ))
apply_batches "$SERVE4" 0 "$half" >/dev/null || { echo "SMOKE FAIL: wal mutations failed"; exit 1; }
curl -fsS -X POST "http://$SERVE4/admin/snapshot" >/dev/null
lastack=$(apply_batches "$SERVE4" "$half" "$KILLAT4") || { echo "SMOKE FAIL: wal mutations failed"; exit 1; }

# SIGKILL the entire deployment mid-load: nothing gets to flush or drain.
kill -9 "$ctrl4" "$w4a" "$w4b" >/dev/null 2>&1 || true
wait "$ctrl4" "$w4a" "$w4b" >/dev/null 2>&1 || true
sleep 1

start_d4 0
start_d4 1
sleep 1
start_d4 controller; ctrl4b=$!
wait_healthy "$SERVE4" || { echo "SMOKE FAIL: wal deployment did not restart"; exit 1; }

fail=0
ver4=$(curl -fsS "http://$SERVE4/healthz" | sed -n 's/.*"graph_version":\([0-9]*\).*/\1/p')
[ -n "$lastack" ] && [ "${ver4:-0}" -eq "$lastack" ] || {
  echo "SMOKE FAIL: recovered version $ver4 != last acked version $lastack (lost or duplicated ops)"; fail=1; }
grep -q 'wal replayed versions' "$workdir/d4-ctrl.log" || {
  echo "SMOKE FAIL: restart did not replay the WAL tail"; fail=1; }
curl -fsS "http://$SERVE4/stats" | grep -q '"wal":{"enabled":true' || {
  echo "SMOKE FAIL: /stats wal block missing or disabled"; fail=1; }

# Finish the stream and compare against the never-crashed control.
ver4b=$(apply_batches "$SERVE4" "$KILLAT4" "$NBATCH4") || { echo "SMOKE FAIL: post-restart mutations failed"; fail=1; }
ref4=$(curl -fsS "http://$SERVE4/query" -d '{"kind":"sssp","source":0,"target":999,"no_cache":true}')
val4=$(sed -n 's/.*"value":\([0-9.e+-]*\|null\).*/\1/p' <<<"$ref4")
[ -n "$verc" ] && [ "${ver4b:-0}" -eq "$verc" ] || {
  echo "SMOKE FAIL: final version $ver4b != control $verc"; fail=1; }
[ -n "$valc" ] && [ "$val4" = "$valc" ] || {
  echo "SMOKE FAIL: crashed run answers $val4, control answers $valc"; fail=1; }

kill -INT "$ctrl4b" >/dev/null 2>&1 || true
wait "$ctrl4b" || true

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "SMOKE OK: kill -9 at version $lastack, restart recovered exactly v$ver4; final v$ver4b answer $val4 == control"

# ---------------------------------------------------------------------------
# Scenario 5: active health layer — worker 0 is deterministically slow
# (the worker/compute-slow faultpoint armed by -fault-slow-compute), so
# under mixed-tenant load the straggler watchdog must fire: an
# event_straggler on /events naming worker 0, an incident bundle with the
# per-worker compute table, tenant error-budget burn on /slo, and
# /healthz degraded with a stragglers field. (The recover-to-ok half of
# the cycle is covered race-clean by TestStragglerWatchdogEndToEnd.)

ADDRS5="127.0.0.1:7761,127.0.0.1:7762,127.0.0.1:7763,127.0.0.1:7764"
SERVE5="127.0.0.1:7805"

"$workdir/qgraphd" -role worker -id 0 -graph "$workdir/g.qgr" -addrs "$ADDRS5" \
  -fault-slow-compute 5ms >>"$workdir/w5-0.log" 2>&1 &
"$workdir/qgraphd" -role worker -id 1 -graph "$workdir/g.qgr" -addrs "$ADDRS5" &
"$workdir/qgraphd" -role worker -id 2 -graph "$workdir/g.qgr" -addrs "$ADDRS5" &
sleep 1
"$workdir/qgraphd" -role controller -graph "$workdir/g.qgr" -addrs "$ADDRS5" \
  -serve "$SERVE5" -commit-every 100ms \
  -watch-straggler-factor 3 -watch-straggler-steps 3 -slo-target 10ms &
ctrl5=$!
wait_healthy "$SERVE5" || { echo "SMOKE FAIL: scenario-5 deployment never healthy"; exit 1; }

out5=$("$workdir/qgraph-bench" -load "http://$SERVE5" -rate 100 -load-duration 6s \
  -load-pool 32 -load-tenants 4 -mutate-rate 50 -mutate-batch 20 \
  -mutations "$workdir/g.qgr.mut")
echo "$out5"

# Degraded /healthz answers 503, so plain -s (not -f) from here on.
health5=$(curl -s "http://$SERVE5/healthz")
echo "$health5"
events5=$(curl -s "http://$SERVE5/events?type=event_straggler")
incident5=$(curl -s "http://$SERVE5/debug/incident/latest")
slo5=$(curl -s "http://$SERVE5/slo")
metrics5=$(curl -s "http://$SERVE5/metrics")

kill -INT "$ctrl5" >/dev/null 2>&1 || true
wait "$ctrl5" || true

fail=0

grep -q '"type":"event_straggler"' <<<"$events5" || { echo "SMOKE FAIL: no event_straggler in /events"; fail=1; }
grep -q '"worker":0' <<<"$events5" || { echo "SMOKE FAIL: straggler event does not name worker 0"; fail=1; }

grep -q '"status":"degraded"' <<<"$health5" || { echo "SMOKE FAIL: /healthz not degraded under a straggler"; fail=1; }
grep -q '"stragglers":\[0\]' <<<"$health5" || { echo "SMOKE FAIL: /healthz missing stragglers field"; fail=1; }

# The flight recorder captured a bundle carrying the per-worker compute table.
grep -q '"trigger":{"seq"' <<<"$incident5" || { echo "SMOKE FAIL: no incident bundle captured"; fail=1; }
grep -q '"workers":\[' <<<"$incident5" || { echo "SMOKE FAIL: incident bundle has no compute table"; fail=1; }
grep -q '"straggler":true' <<<"$incident5" || { echo "SMOKE FAIL: compute table does not flag the straggler"; fail=1; }

# Every tenant's requests ride the slow worker, so at a 10ms target the
# SLO ledger must show budget burn for the bench tenants.
grep -q '"tenant-0"' <<<"$slo5" || { echo "SMOKE FAIL: /slo missing bench tenants"; fail=1; }
maxburn=$(grep -o '"burn_rate":[0-9.e+-]*' <<<"$slo5" | sed 's/.*://' | sort -g | tail -1)
awk -v b="${maxburn:-0}" 'BEGIN { exit (b > 0 ? 0 : 1) }' || {
  echo "SMOKE FAIL: /slo shows no error-budget burn (max $maxburn)"; fail=1; }

# Health metric families and the heartbeat RTT gauge are on /metrics.
grep -q '^qgraph_health_stragglers_total [1-9]' <<<"$metrics5" || { echo "SMOKE FAIL: straggler counter not on /metrics"; fail=1; }
grep -q 'qgraph_worker_ping_rtt_seconds{worker="0"}' <<<"$metrics5" || { echo "SMOKE FAIL: heartbeat RTT gauge missing"; fail=1; }
grep -q 'qgraph_tenant_slo_burn{tenant="tenant-0"}' <<<"$metrics5" || { echo "SMOKE FAIL: per-tenant burn gauge missing"; fail=1; }

if [ "$fail" -ne 0 ]; then
  exit 1
fi
stragglerev=$(grep -o '"msg":"[^"]*"' <<<"$events5" | head -1)
echo "SMOKE OK: straggler detected under mixed load (${stragglerev}), incident captured, tenant burn ${maxburn}"

# ---------------------------------------------------------------------------
# Scenario 6: read-path scale-out — a primary (with -snapshot-dir and
# -wal-dir), two read replicas tailing the WAL, and a router fronting all
# three. Mixed query+mutate load flows through the router; one replica is
# SIGKILLed mid-load and the router must absorb it: zero failed reads,
# writes all landing on the primary, and the surviving replica converging
# to the primary's exact version (a min_version read at the primary's
# version must succeed through the router).

ADDRS6="127.0.0.1:7771,127.0.0.1:7772,127.0.0.1:7773"
SERVE6="127.0.0.1:7806"     # primary
REP6A="127.0.0.1:7807"      # replica a
REP6B="127.0.0.1:7808"      # replica b
ROUTE6="127.0.0.1:7809"     # router
SNAP6="$workdir/snaps6"
WAL6="$workdir/wal6"
mkdir -p "$SNAP6" "$WAL6"

"$workdir/qgraphd" -role worker -id 0 -graph "$workdir/g.qgr" -addrs "$ADDRS6" \
  -snapshot-dir "$SNAP6" -wal-dir "$WAL6" >>"$workdir/d6-w0.log" 2>&1 &
"$workdir/qgraphd" -role worker -id 1 -graph "$workdir/g.qgr" -addrs "$ADDRS6" \
  -snapshot-dir "$SNAP6" -wal-dir "$WAL6" >>"$workdir/d6-w1.log" 2>&1 &
sleep 1
"$workdir/qgraphd" -role controller -graph "$workdir/g.qgr" -addrs "$ADDRS6" \
  -serve "$SERVE6" -commit-every 50ms -snapshot-dir "$SNAP6" -wal-dir "$WAL6" \
  >>"$workdir/d6-ctrl.log" 2>&1 &
ctrl6=$!
wait_healthy "$SERVE6" || { echo "SMOKE FAIL: scenario-6 primary never healthy"; exit 1; }

# History before any replica exists: their bootstrap must replay it.
apply_batches "$SERVE6" 0 5 >/dev/null || { echo "SMOKE FAIL: seed mutations failed"; exit 1; }

"$workdir/qgraphd" -role replica -graph "$workdir/g.qgr" -snapshot-dir "$SNAP6" \
  -wal-dir "$WAL6" -serve "$REP6A" -replica-poll 25ms >>"$workdir/d6-ra.log" 2>&1 &
repa6=$!
"$workdir/qgraphd" -role replica -graph "$workdir/g.qgr" -snapshot-dir "$SNAP6" \
  -wal-dir "$WAL6" -serve "$REP6B" -replica-poll 25ms >>"$workdir/d6-rb.log" 2>&1 &
repb6=$!
wait_healthy "$REP6A" || { echo "SMOKE FAIL: replica a never healthy"; exit 1; }
wait_healthy "$REP6B" || { echo "SMOKE FAIL: replica b never healthy"; exit 1; }

grep -q '"role":"replica"' <<<"$(curl -fsS "http://$REP6A/healthz")" || {
  echo "SMOKE FAIL: replica /healthz missing role field"; exit 1; }

"$workdir/qgraphd" -role router -primary "http://$SERVE6" \
  -replicas "http://$REP6A,http://$REP6B" -max-staleness-versions 64 \
  -health-every 100ms -serve "$ROUTE6" >>"$workdir/d6-router.log" 2>&1 &
router6=$!
wait_healthy "$ROUTE6" || { echo "SMOKE FAIL: router never healthy"; exit 1; }

# Both replicas must enter the rotation before load starts.
for _ in $(seq 1 50); do
  nrot=$(curl -fsS "http://$ROUTE6/healthz" | grep -o '"in_rotation":true' | wc -l)
  [ "$nrot" -eq 2 ] && break
  sleep 0.2
done
[ "${nrot:-0}" -eq 2 ] || { echo "SMOKE FAIL: replicas never entered rotation"; exit 1; }

# Mixed load through the router; SIGKILL replica b 3s into the window.
out6=$("$workdir/qgraph-bench" -load "http://$ROUTE6" -rate 200 -load-duration 8s \
  -load-pool 64 -load-timeout 15s -mutate-rate 50 -mutate-batch 20 \
  -mutations "$workdir/g.qgr.mut" -kill-pid "$repb6" -kill-after 3s)
echo "$out6"

status6=$(curl -fsS "http://$ROUTE6/router/status")
echo "$status6"

fail=0

qline6=$(grep -m1 '^sent=' <<<"$out6")
okq6=$(sed -n 's/.* ok=\([0-9]*\).*/\1/p' <<<"$qline6")
failedq6=$(sed -n 's/.* failed=\([0-9]*\).*/\1/p' <<<"$qline6")
[ "${okq6:-0}" -gt 0 ] || { echo "SMOKE FAIL: no successful reads through the router"; fail=1; }
[ "${failedq6:-1}" -eq 0 ] || { echo "SMOKE FAIL: $failedq6 failed reads through a replica kill"; fail=1; }

mline6=$(grep -m1 '^mutations: writers=' <<<"$out6")
applied6=$(sed -n 's/.*applied=\([0-9]*\).*/\1/p' <<<"$mline6")
failedm6=$(sed -n 's/.*failed=\([0-9]*\).*/\1/p' <<<"$mline6")
[ "${applied6:-0}" -gt 0 ] || { echo "SMOKE FAIL: no mutations applied through the router"; fail=1; }
[ "${failedm6:-1}" -eq 0 ] || { echo "SMOKE FAIL: $failedm6 failed mutation ops through the router"; fail=1; }

reads_rep6=$(sed -n 's/.*"reads_replica":\([0-9]*\).*/\1/p' <<<"$status6")
writes6=$(sed -n 's/.*"writes":\([0-9]*\).*/\1/p' <<<"$status6")
[ "${reads_rep6:-0}" -gt 0 ] || { echo "SMOKE FAIL: router never routed a read to a replica"; fail=1; }
[ "${writes6:-0}" -gt 0 ] || { echo "SMOKE FAIL: router never routed a write to the primary"; fail=1; }

# The surviving replica converges to the primary's exact version, so a
# bounded-staleness read demanding that version succeeds via the router.
primver6=$(curl -fsS "http://$SERVE6/healthz" | sed -n 's/.*"graph_version":\([0-9]*\).*/\1/p')
for _ in $(seq 1 50); do
  repver6=$(curl -fsS "http://$REP6A/healthz" | sed -n 's/.*"applied_version":\([0-9]*\).*/\1/p')
  [ "${repver6:-0}" -ge "${primver6:-1}" ] && break
  sleep 0.2
done
[ "${repver6:-0}" -ge "${primver6:-1}" ] || {
  echo "SMOKE FAIL: replica stuck at v${repver6:-?} behind primary v$primver6"; fail=1; }

minread6=$(curl -fsS -D "$workdir/d6-head.txt" \
  "http://$ROUTE6/query?min_version=$primver6" \
  -d '{"kind":"sssp","source":0,"target":999,"no_cache":true}') || {
  echo "SMOKE FAIL: min_version read through router failed"; fail=1; }
hdrver6=$(sed -n 's/^X-Qgraph-Version: *\([0-9]*\).*/\1/Ip' "$workdir/d6-head.txt")
[ "${hdrver6:-0}" -ge "${primver6:-1}" ] || {
  echo "SMOKE FAIL: version header $hdrver6 below demanded floor $primver6"; fail=1; }

# Writes through a replica directly are refused — the 403 read-only guard.
wcode6=$(curl -s -o /dev/null -w '%{http_code}' "http://$REP6A/mutate" \
  -d '{"ops":[{"op":"add_edge","from":0,"to":1,"weight":1}]}')
[ "$wcode6" = "403" ] || { echo "SMOKE FAIL: replica accepted a direct write (HTTP $wcode6)"; fail=1; }

kill -INT "$router6" "$repa6" >/dev/null 2>&1 || true
kill -INT "$ctrl6" >/dev/null 2>&1 || true
wait "$ctrl6" || true

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "SMOKE OK: $okq6 reads (0 failed) through a replica kill, $reads_rep6 served by replicas, min_version=$primver6 satisfied with header v$hdrver6"

# ---------------------------------------------------------------------------
# Scenario 7: fleet observability — primary + two replicas + router under
# load. A routed read must carry ONE trace ID across processes: the router
# stamps X-QGraph-Trace-ID downstream, the replica keeps its spans under
# that ID, and the router's GET /trace/{id} stitches both halves into one
# tree. /fleet/metrics must re-emit instance-labeled series from all four
# processes, and /fleet/status must report correct roles and lags.

ADDRS7="127.0.0.1:7781,127.0.0.1:7782,127.0.0.1:7783"
SERVE7="127.0.0.1:7810"     # primary
REP7A="127.0.0.1:7811"      # replica a
REP7B="127.0.0.1:7812"      # replica b
ROUTE7="127.0.0.1:7813"     # router
SNAP7="$workdir/snaps7"
WAL7="$workdir/wal7"
mkdir -p "$SNAP7" "$WAL7"

"$workdir/qgraphd" -role worker -id 0 -graph "$workdir/g.qgr" -addrs "$ADDRS7" \
  -snapshot-dir "$SNAP7" -wal-dir "$WAL7" >>"$workdir/d7-w0.log" 2>&1 &
"$workdir/qgraphd" -role worker -id 1 -graph "$workdir/g.qgr" -addrs "$ADDRS7" \
  -snapshot-dir "$SNAP7" -wal-dir "$WAL7" >>"$workdir/d7-w1.log" 2>&1 &
sleep 1
"$workdir/qgraphd" -role controller -graph "$workdir/g.qgr" -addrs "$ADDRS7" \
  -serve "$SERVE7" -commit-every 50ms -snapshot-dir "$SNAP7" -wal-dir "$WAL7" \
  >>"$workdir/d7-ctrl.log" 2>&1 &
ctrl7=$!
wait_healthy "$SERVE7" || { echo "SMOKE FAIL: scenario-7 primary never healthy"; exit 1; }
apply_batches "$SERVE7" 0 5 >/dev/null || { echo "SMOKE FAIL: scenario-7 seed mutations failed"; exit 1; }

"$workdir/qgraphd" -role replica -graph "$workdir/g.qgr" -snapshot-dir "$SNAP7" \
  -wal-dir "$WAL7" -serve "$REP7A" -replica-poll 25ms >>"$workdir/d7-ra.log" 2>&1 &
repa7=$!
"$workdir/qgraphd" -role replica -graph "$workdir/g.qgr" -snapshot-dir "$SNAP7" \
  -wal-dir "$WAL7" -serve "$REP7B" -replica-poll 25ms >>"$workdir/d7-rb.log" 2>&1 &
repb7=$!
wait_healthy "$REP7A" || { echo "SMOKE FAIL: scenario-7 replica a never healthy"; exit 1; }
wait_healthy "$REP7B" || { echo "SMOKE FAIL: scenario-7 replica b never healthy"; exit 1; }

"$workdir/qgraphd" -role router -primary "http://$SERVE7" \
  -replicas "http://$REP7A,http://$REP7B" -max-staleness-versions 64 \
  -health-every 100ms -serve "$ROUTE7" >>"$workdir/d7-router.log" 2>&1 &
router7=$!
wait_healthy "$ROUTE7" || { echo "SMOKE FAIL: scenario-7 router never healthy"; exit 1; }
for _ in $(seq 1 50); do
  nrot7=$(curl -fsS "http://$ROUTE7/healthz" | grep -o '"in_rotation":true' | wc -l)
  [ "$nrot7" -eq 2 ] && break
  sleep 0.2
done
[ "${nrot7:-0}" -eq 2 ] || { echo "SMOKE FAIL: scenario-7 replicas never entered rotation"; exit 1; }

# Mixed load in the background; the observability probes below run while
# the fleet is busy, not against an idle afterimage.
"$workdir/qgraph-bench" -load "http://$ROUTE7" -rate 150 -load-duration 8s \
  -load-pool 64 -load-timeout 15s -mutate-rate 50 -mutate-batch 20 \
  -mutations "$workdir/g.qgr.mut" >"$workdir/d7-bench.out" 2>&1 &
bench7=$!
sleep 2

fail=0

# One trace ID, end to end: routed read -> header -> stitched /trace/{id}.
read7=$(curl -fsS -D "$workdir/d7-head.txt" "http://$ROUTE7/query" \
  -d '{"kind":"sssp","source":0,"target":999,"no_cache":true}')
tid7=$(sed -n 's/^X-Qgraph-Trace-Id: *\([0-9]*\).*/\1/Ip' "$workdir/d7-head.txt")
node7=$(sed -n 's/^X-Qgraph-Node: *\(.*\)$/\1/Ip' "$workdir/d7-head.txt" | tr -d '\r')
[ -n "$tid7" ] && [ "$tid7" != "0" ] || { echo "SMOKE FAIL: routed read carried no trace id"; fail=1; }
case "$node7" in
  */replica|*/primary) : ;;
  *) echo "SMOKE FAIL: X-QGraph-Node header missing or malformed ('$node7')"; fail=1 ;;
esac

trace7=$(curl -fsS "http://$ROUTE7/trace/$tid7")
grep -q "\"trace_id\":$tid7" <<<"$trace7" || { echo "SMOKE FAIL: /trace/$tid7 not under the propagated id"; fail=1; }
grep -q '"name":"route"' <<<"$trace7" || { echo "SMOKE FAIL: stitched trace has no router route span"; fail=1; }
grep -q '"name":"attempt"' <<<"$trace7" || { echo "SMOKE FAIL: stitched trace has no attempt span"; fail=1; }
grep -q '"name":"query"' <<<"$trace7" || { echo "SMOKE FAIL: stitched trace has no downstream query span"; fail=1; }
grep -q '"stitched":true' <<<"$trace7" || { echo "SMOKE FAIL: downstream half not stitched in"; fail=1; }

# /fleet/metrics carries instance-labeled series from all four processes.
fm7=$(curl -fsS "http://$ROUTE7/fleet/metrics")
for inst in "$ROUTE7" "$SERVE7" "$REP7A" "$REP7B"; do
  grep -q "instance=\"$inst\"" <<<"$fm7" || {
    echo "SMOKE FAIL: /fleet/metrics missing series from $inst"; fail=1; }
done
grep -q "role=\"router\"" <<<"$fm7" || { echo "SMOKE FAIL: /fleet/metrics missing router role label"; fail=1; }
grep -q "qgraph_replica_apply_batches_total" <<<"$fm7" || {
  echo "SMOKE FAIL: replica apply instrumentation absent from the fleet page"; fail=1; }

# /fleet/status: one primary, two reachable replica rows with bounded lag.
fs7=$(curl -fsS "http://$ROUTE7/fleet/status")
echo "$fs7"
nprim7=$(grep -o '"role":"primary"' <<<"$fs7" | wc -l)
nrep7=$(grep -o '"role":"replica"' <<<"$fs7" | wc -l)
[ "$nprim7" -eq 1 ] || { echo "SMOKE FAIL: /fleet/status primary rows = $nprim7"; fail=1; }
[ "$nrep7" -eq 2 ] || { echo "SMOKE FAIL: /fleet/status replica rows = $nrep7"; fail=1; }
grep -q '"reachable":false' <<<"$fs7" && { echo "SMOKE FAIL: /fleet/status reports an unreachable node"; fail=1; }
maxlag7=$(grep -o '"lag_versions":[0-9]*' <<<"$fs7" | sed 's/.*://' | sort -n | tail -1)
[ "${maxlag7:-99999}" -le 64 ] || { echo "SMOKE FAIL: fleet lag $maxlag7 beyond the staleness bound"; fail=1; }

# /fleet/events answers and is well-formed JSON with an events array.
fe7=$(curl -fsS "http://$ROUTE7/fleet/events?n=50")
grep -q '"events":\[' <<<"$fe7" || { echo "SMOKE FAIL: /fleet/events malformed"; fail=1; }

wait "$bench7" || true
cat "$workdir/d7-bench.out"
qline7=$(grep -m1 '^sent=' "$workdir/d7-bench.out")
failedq7=$(sed -n 's/.* failed=\([0-9]*\).*/\1/p' <<<"$qline7")
[ "${failedq7:-1}" -eq 0 ] || { echo "SMOKE FAIL: $failedq7 failed reads during the observability probes"; fail=1; }

kill -INT "$router7" "$repa7" "$repb7" >/dev/null 2>&1 || true
kill -INT "$ctrl7" >/dev/null 2>&1 || true
wait "$ctrl7" || true

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "SMOKE OK: trace $tid7 stitched across router+replica, /fleet/metrics spans 4 instances, roles and lags correct (max lag ${maxlag7:-0})"

# ---------------------------------------------------------------------------
# Scenario 8: the MVCC commit pipeline — mutations commit off the global
# barrier. Three phases against one WAL-durable deployment running hot
# commits (-commit-every 1ms -max-batch-ops 5: every POST seals its own
# version on arrival). (a) Sustained mutate load under a PageRank-only
# read mix: zero failed/stalled readers while hundreds of versions
# commit, and a long PageRank probed mid-stream answers from its pinned
# version while the committed version moves past it. (b) The version
# chain is strictly monotone and the /mutate response header matches the
# body (read-your-writes). (c) kill -9 the whole deployment while six
# concurrent writers keep the group committer busy: the restart must
# recover at least every acknowledged version (durable-but-unacked
# in-flight batches may survive — at most one per writer), the WAL head
# must equal the recovered graph, and the chain must continue gap-free.

ADDRS8="127.0.0.1:7791,127.0.0.1:7792,127.0.0.1:7793"
SERVE8="127.0.0.1:7814"
SNAP8="$workdir/snaps8"
WAL8="$workdir/wal8"
mkdir -p "$SNAP8" "$WAL8"

start_d8() { # id-or-controller
  if [ "$1" = controller ]; then
    "$workdir/qgraphd" -role controller -graph "$workdir/g.qgr" -addrs "$ADDRS8" \
      -serve "$SERVE8" -commit-every 1ms -max-batch-ops 5 \
      -snapshot-dir "$SNAP8" -wal-dir "$WAL8" >>"$workdir/d8-ctrl.log" 2>&1 &
  else
    "$workdir/qgraphd" -role worker -id "$1" -graph "$workdir/g.qgr" -addrs "$ADDRS8" \
      -snapshot-dir "$SNAP8" -wal-dir "$WAL8" >>"$workdir/d8-w$1.log" 2>&1 &
  fi
}

start_d8 0; w8a=$!
start_d8 1; w8b=$!
sleep 1
start_d8 controller; ctrl8=$!
wait_healthy "$SERVE8" || { echo "SMOKE FAIL: scenario-8 deployment never healthy"; exit 1; }

fail=0

# (a) Long readers over a hot write plane. The bench read mix is pure
# PageRank (the longest queries the engine has) while 8 writers stream
# mutations; any reader the commit path stalled past its client timeout
# would surface as client_timeout/failed > 0.
ver8a=$(curl -fsS "http://$SERVE8/healthz" | sed -n 's/.*"graph_version":\([0-9]*\).*/\1/p')
"$workdir/qgraph-bench" -load "http://$SERVE8" -rate 30 -load-duration 8s \
  -load-pool 32 -load-timeout 15s -load-mix "pagerank=1.0" \
  -mutate-rate 2000 -mutate-batch 5 -mutate-writers 8 \
  >"$workdir/d8-bench.out" 2>&1 &
bench8=$!
sleep 2

# Mid-stream probe: a PageRank issued now pins the version at admission
# and must answer from it, even though commits keep racing past. The
# response header carrying a version below the post-query committed
# version is the observable MVCC fact: the reader was not quiesced, the
# writers were not blocked.
vq0=$(curl -fsS "http://$SERVE8/healthz" | sed -n 's/.*"graph_version":\([0-9]*\).*/\1/p')
curl -fsS -D "$workdir/d8-head.txt" "http://$SERVE8/query" \
  -d '{"kind":"pagerank","source":0,"no_cache":true}' >/dev/null || {
  echo "SMOKE FAIL: mid-stream pagerank failed"; fail=1; }
vq1=$(curl -fsS "http://$SERVE8/healthz" | sed -n 's/.*"graph_version":\([0-9]*\).*/\1/p')
hpin=$(sed -n 's/^X-Qgraph-Version: *\([0-9]*\).*/\1/Ip' "$workdir/d8-head.txt")
[ -n "$hpin" ] && [ "${vq0:-0}" -le "$hpin" ] && [ "$hpin" -lt "${vq1:-0}" ] || {
  echo "SMOKE FAIL: pagerank pinned v${hpin:-?} outside [$vq0, $vq1): readers and writers are not overlapping"; fail=1; }

wait "$bench8" || true
cat "$workdir/d8-bench.out"
qline8=$(grep -m1 '^sent=' "$workdir/d8-bench.out")
okq8=$(sed -n 's/.* ok=\([0-9]*\).*/\1/p' <<<"$qline8")
failedq8=$(sed -n 's/.* failed=\([0-9]*\).*/\1/p' <<<"$qline8")
touts8=$(sed -n 's/.*client_timeout=\([0-9]*\).*/\1/p' <<<"$qline8")
[ "${okq8:-0}" -gt 0 ] || { echo "SMOKE FAIL: no PageRanks completed under write load"; fail=1; }
[ "${failedq8:-1}" -eq 0 ] || { echo "SMOKE FAIL: $failedq8 readers failed under write load"; fail=1; }
[ "${touts8:-1}" -eq 0 ] || { echo "SMOKE FAIL: $touts8 readers stalled past the client timeout"; fail=1; }
mline8=$(grep -m1 '^mutations: writers=' "$workdir/d8-bench.out")
failedm8=$(sed -n 's/.*failed=\([0-9]*\).*/\1/p' <<<"$mline8")
[ "${failedm8:-1}" -eq 0 ] || { echo "SMOKE FAIL: $failedm8 mutation ops failed"; fail=1; }

ver8b=$(curl -fsS "http://$SERVE8/healthz" | sed -n 's/.*"graph_version":\([0-9]*\).*/\1/p')
[ $(( ver8b - ver8a )) -ge 100 ] || {
  echo "SMOKE FAIL: only $(( ver8b - ver8a )) versions committed under sustained load"; fail=1; }

sleep 1
stats8=$(curl -fsS "http://$SERVE8/stats")
grep -q '"pipelined":true' <<<"$stats8" || { echo "SMOKE FAIL: engine not on the pipelined commit path"; fail=1; }
grep -q '"pinned_readers":0' <<<"$stats8" || { echo "SMOKE FAIL: reader pins leaked after quiescence"; fail=1; }
peak8=$(sed -n 's/.*"peak_live_versions":\([0-9]*\).*/\1/p' <<<"$stats8")
[ "${peak8:-0}" -ge 2 ] || { echo "SMOKE FAIL: peak live versions $peak8 — no MVCC overlap ever happened"; fail=1; }

# (b) Monotone version chain + read-your-writes header. Ten serial
# batches: each ack's version must strictly exceed the previous, and the
# X-QGraph-Version header must equal the body's version.
prev8=$ver8b
for b in $(seq 0 9); do
  resp=$(curl -fsS -D "$workdir/d8-mhead.txt" "http://$SERVE8/mutate" -d "$(mut_body "$b")") || {
    echo "SMOKE FAIL: serial mutate batch $b failed"; fail=1; break; }
  mver=$(sed -n 's/.*"version":\([0-9]*\).*/\1/p' <<<"$resp")
  hver=$(sed -n 's/^X-Qgraph-Version: *\([0-9]*\).*/\1/Ip' "$workdir/d8-mhead.txt")
  [ "${mver:-0}" -gt "$prev8" ] || { echo "SMOKE FAIL: version chain not monotone ($mver after $prev8)"; fail=1; break; }
  [ "$hver" = "$mver" ] || { echo "SMOKE FAIL: /mutate header v${hver:-?} != body v$mver"; fail=1; break; }
  prev8=$mver
done

# (c) kill -9 mid-group-commit. Six closed-loop writers keep sealed
# batches and shared fsyncs continuously in flight; the SIGKILL lands
# with acks outstanding. Each writer records every version it saw acked.
writer8() { # index; cycles its own batch range until the server dies
  local i=$1 b resp ver
  while :; do
    for b in $(seq $(( 10 + i * 10 )) $(( 19 + i * 10 ))); do
      resp=$(curl -fsS --max-time 5 "http://$SERVE8/mutate" -d "$(mut_body "$b")" 2>/dev/null) || return 0
      ver=$(sed -n 's/.*"version":\([0-9]*\).*/\1/p' <<<"$resp")
      [ -n "$ver" ] && echo "$ver" >>"$workdir/d8-acks-$i.txt"
    done
  done
}
w8pids=""
for i in 0 1 2 3 4 5; do
  writer8 "$i" &
  w8pids="$w8pids $!"
done
sleep 2.5
kill -9 "$ctrl8" "$w8a" "$w8b" >/dev/null 2>&1 || true
wait "$ctrl8" "$w8a" "$w8b" >/dev/null 2>&1 || true
# shellcheck disable=SC2086  # word-splitting is the point: one PID per arg
wait $w8pids >/dev/null 2>&1 || true

lastack8=$(cat "$workdir"/d8-acks-*.txt 2>/dev/null | sort -n | tail -1)
[ "${lastack8:-0}" -gt "$prev8" ] || { echo "SMOKE FAIL: writers never got an ack before the kill"; fail=1; }

start_d8 0
start_d8 1
sleep 1
start_d8 controller; ctrl8b=$!
wait_healthy "$SERVE8" || { echo "SMOKE FAIL: scenario-8 deployment did not restart"; exit 1; }

ver8c=$(curl -fsS "http://$SERVE8/healthz" | sed -n 's/.*"graph_version":\([0-9]*\).*/\1/p')
[ "${ver8c:-0}" -ge "${lastack8:-1}" ] || {
  echo "SMOKE FAIL: recovered v$ver8c lost acked version $lastack8"; fail=1; }
[ $(( ver8c - lastack8 )) -le 6 ] || {
  echo "SMOKE FAIL: recovered v$ver8c is $(( ver8c - lastack8 )) past the last ack — more than the 6 possible in-flight batches"; fail=1; }
grep -q 'wal replayed versions' "$workdir/d8-ctrl.log" || {
  echo "SMOKE FAIL: scenario-8 restart did not replay the WAL tail"; fail=1; }
walhead8=$(curl -fsS "http://$SERVE8/stats" | sed -n 's/.*"head_version":\([0-9]*\).*/\1/p')
[ "${walhead8:-0}" -eq "${ver8c:-1}" ] || {
  echo "SMOKE FAIL: WAL head v$walhead8 != recovered graph v$ver8c"; fail=1; }

# The chain continues gap-free: one quiet POST lands at exactly v+1.
resp8=$(curl -fsS "http://$SERVE8/mutate" -d "$(mut_body 70)") || { echo "SMOKE FAIL: post-restart mutate failed"; fail=1; }
ver8d=$(sed -n 's/.*"version":\([0-9]*\).*/\1/p' <<<"$resp8")
[ "${ver8d:-0}" -eq $(( ver8c + 1 )) ] || {
  echo "SMOKE FAIL: post-restart version $ver8d != $(( ver8c + 1 )) — the chain has a gap"; fail=1; }

kill -INT "$ctrl8b" >/dev/null 2>&1 || true
wait "$ctrl8b" || true

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "SMOKE OK: pagerank pinned v$hpin while commits ran to v$vq1, ${okq8} readers unstalled over $(( ver8b - ver8a )) versions, kill -9 recovered v$ver8c >= last ack v$lastack8, chain resumed at v$ver8d"
