#!/usr/bin/env bash
# Smoke test for the streaming-update serving stack: start a 2-worker
# qgraphd deployment with -serve, stream graph mutations (qgraph-gen
# -mutations replay) at the HTTP API while qgraph-bench generates query
# load, and assert zero failed queries, applied mutations, and an advanced
# graph version.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046  # word-splitting is the point: one PID per arg
  kill $(jobs -p) >/dev/null 2>&1 || true
  wait >/dev/null 2>&1 || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir" ./cmd/...

"$workdir/qgraph-gen" -kind road -preset bw -scale 256 \
  -out "$workdir/g.qgr" -mutations 5000

ADDRS="127.0.0.1:7701,127.0.0.1:7702,127.0.0.1:7703"
SERVE="127.0.0.1:7800"

"$workdir/qgraphd" -role worker -id 0 -graph "$workdir/g.qgr" -addrs "$ADDRS" &
"$workdir/qgraphd" -role worker -id 1 -graph "$workdir/g.qgr" -addrs "$ADDRS" &
sleep 1
"$workdir/qgraphd" -role controller -graph "$workdir/g.qgr" -addrs "$ADDRS" \
  -serve "$SERVE" -commit-every 100ms &
ctrl=$!

for _ in $(seq 1 50); do
  curl -fsS "http://$SERVE/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "http://$SERVE/healthz"; echo

out=$("$workdir/qgraph-bench" -load "http://$SERVE" -rate 200 -load-duration 5s \
  -load-pool 64 -mutate-rate 100 -mutate-batch 25 -mutations "$workdir/g.qgr.mut")
echo "$out"

health=$(curl -fsS "http://$SERVE/healthz")
echo "$health"

kill -INT "$ctrl" >/dev/null 2>&1 || true
wait "$ctrl" || true

fail=0

qline=$(grep -m1 '^sent=' <<<"$out")
okq=$(sed -n 's/.* ok=\([0-9]*\).*/\1/p' <<<"$qline")
failedq=$(sed -n 's/.* failed=\([0-9]*\).*/\1/p' <<<"$qline")
[ "${okq:-0}" -gt 0 ] || { echo "SMOKE FAIL: no successful queries"; fail=1; }
[ "${failedq:-1}" -eq 0 ] || { echo "SMOKE FAIL: $failedq failed queries"; fail=1; }

mline=$(grep -m1 '^mutations: sent=' <<<"$out")
applied=$(sed -n 's/.*applied=\([0-9]*\).*/\1/p' <<<"$mline")
failedm=$(sed -n 's/.*failed=\([0-9]*\).*/\1/p' <<<"$mline")
[ "${applied:-0}" -gt 0 ] || { echo "SMOKE FAIL: no mutations applied"; fail=1; }
[ "${failedm:-1}" -eq 0 ] || { echo "SMOKE FAIL: $failedm failed mutation ops"; fail=1; }

version=$(sed -n 's/.*"graph_version":\([0-9]*\).*/\1/p' <<<"$health")
[ "${version:-0}" -gt 0 ] || { echo "SMOKE FAIL: graph version did not advance"; fail=1; }
grep -q '"status":"ok"' <<<"$health" || { echo "SMOKE FAIL: unhealthy"; fail=1; }

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "SMOKE OK: $okq queries, $applied mutation ops applied, graph version $version"
