// Package qgraph's root benchmarks regenerate every figure of the paper's
// evaluation (one benchmark per figure, DESIGN.md §4) plus the ablations
// of DESIGN.md §5. Each benchmark iteration runs the full experiment at
// QuickScale and reports the figure's headline quantity as a custom
// metric, so `go test -bench=. -benchmem` doubles as the reproduction
// harness. For the richer default-scale tables, use cmd/qgraph-bench.
package qgraph

import (
	"strconv"
	"strings"
	"testing"

	"qgraph/internal/experiments"
)

// benchExperiment runs one registered experiment per iteration and
// re-reports its headline numeric column as benchmark metrics.
func benchExperiment(b *testing.B, id string, metric func(*experiments.Table) map[string]float64) {
	r, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		tab, err := r(sc)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == b.N-1 {
			if b.N == 1 {
				b.Logf("\n%s", tab.String())
			}
			if metric != nil {
				for name, v := range metric(tab) {
					b.ReportMetric(v, name)
				}
			}
		}
	}
}

// cell parses the numeric cell at (row, col) of a table, tolerating unit
// suffixes like "1.13x".
func cell(tab *experiments.Table, row, col int) float64 {
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		return 0
	}
	s := strings.TrimSuffix(tab.Rows[row][col], "x")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// strategyColumn extracts column col per strategy row (strategy tables
// order rows hash, hash+qcut, domain, domain+qcut).
func strategyTotals(tab *experiments.Table, col int) map[string]float64 {
	out := map[string]float64{}
	for i, name := range []string{"hash_s", "hashqcut_s", "domain_s", "domainqcut_s"} {
		out[name] = cell(tab, i, col)
	}
	return out
}

// BenchmarkFig5a regenerates Figure 5a (adaptive latency over time, BW).
func BenchmarkFig5a(b *testing.B) {
	benchExperiment(b, "fig5a", func(tab *experiments.Table) map[string]float64 {
		// Normalized latency of hash+qcut in the last intra-urban decile.
		var last float64
		for _, row := range tab.Rows {
			if row[1] == "intra" {
				last, _ = strconv.ParseFloat(row[3], 64)
			}
		}
		return map[string]float64{"hashqcut_vs_hash": last}
	})
}

// BenchmarkFig5b regenerates Figure 5b (adaptive latency over time, GY).
func BenchmarkFig5b(b *testing.B) {
	benchExperiment(b, "fig5b", nil)
}

// BenchmarkFig6a regenerates Figure 6a (summed SSSP latency on BW).
func BenchmarkFig6a(b *testing.B) {
	benchExperiment(b, "fig6a", func(tab *experiments.Table) map[string]float64 {
		return strategyTotals(tab, 1)
	})
}

// BenchmarkFig6b regenerates Figure 6b (summed SSSP latency on GY).
func BenchmarkFig6b(b *testing.B) {
	benchExperiment(b, "fig6b", func(tab *experiments.Table) map[string]float64 {
		return strategyTotals(tab, 1)
	})
}

// BenchmarkFig6c regenerates Figure 6c (summed POI latency on BW).
func BenchmarkFig6c(b *testing.B) {
	benchExperiment(b, "fig6c", func(tab *experiments.Table) map[string]float64 {
		return strategyTotals(tab, 1)
	})
}

// BenchmarkFig6d regenerates Figure 6d (hybrid vs global barriers).
func BenchmarkFig6d(b *testing.B) {
	benchExperiment(b, "fig6d", func(tab *experiments.Table) map[string]float64 {
		// Rows: hash/global, hash/hybrid, domain/global, domain/hybrid.
		return map[string]float64{
			"hash_hybrid_speedup":   cell(tab, 1, 3),
			"domain_hybrid_speedup": cell(tab, 3, 3),
		}
	})
}

// BenchmarkFig6e regenerates Figure 6e (workload imbalance).
func BenchmarkFig6e(b *testing.B) {
	benchExperiment(b, "fig6e", func(tab *experiments.Table) map[string]float64 {
		return map[string]float64{
			"hash_imbalance":     cell(tab, 0, 1),
			"hashqcut_imbalance": cell(tab, 1, 1),
			"domain_imbalance":   cell(tab, 2, 1),
		}
	})
}

// BenchmarkFig6f regenerates Figure 6f (query locality).
func BenchmarkFig6f(b *testing.B) {
	benchExperiment(b, "fig6f", func(tab *experiments.Table) map[string]float64 {
		return map[string]float64{
			"hash_locality":     cell(tab, 0, 1),
			"hashqcut_locality": cell(tab, 1, 1),
			"domain_locality":   cell(tab, 2, 1),
		}
	})
}

// BenchmarkFig6g regenerates Figure 6g (ILS cost trajectory).
func BenchmarkFig6g(b *testing.B) {
	benchExperiment(b, "fig6g", func(tab *experiments.Table) map[string]float64 {
		last := len(tab.Rows) - 1
		return map[string]float64{
			"initial_cost": cell(tab, 0, 2),
			"final_cost":   cell(tab, last, 2),
		}
	})
}

// BenchmarkFig7a regenerates Figure 7a (SSSP scalability over k).
func BenchmarkFig7a(b *testing.B) {
	benchExperiment(b, "fig7a", func(tab *experiments.Table) map[string]float64 {
		// k=8 row (index 2): hash vs hash+qcut.
		return map[string]float64{
			"hash_k8_s":     cell(tab, 2, 1),
			"hashqcut_k8_s": cell(tab, 2, 2),
		}
	})
}

// BenchmarkFig7b regenerates Figure 7b (POI scalability over k).
func BenchmarkFig7b(b *testing.B) {
	benchExperiment(b, "fig7b", nil)
}

// Ablation benchmarks (DESIGN.md §5).

// BenchmarkAblationPerturbation isolates the ILS perturbation subroutine.
func BenchmarkAblationPerturbation(b *testing.B) {
	benchExperiment(b, "abl-perturb", func(tab *experiments.Table) map[string]float64 {
		return map[string]float64{
			"with_cost":    cell(tab, 0, 2),
			"without_cost": cell(tab, 1, 2),
		}
	})
}

// BenchmarkAblationClustering isolates the Karger query clustering.
func BenchmarkAblationClustering(b *testing.B) {
	benchExperiment(b, "abl-cluster", nil)
}

// BenchmarkAblationLocalBarrier isolates the local query barrier.
func BenchmarkAblationLocalBarrier(b *testing.B) {
	benchExperiment(b, "abl-local", func(tab *experiments.Table) map[string]float64 {
		return map[string]float64{
			"global_s":  cell(tab, 0, 1),
			"limited_s": cell(tab, 1, 1),
			"hybrid_s":  cell(tab, 2, 1),
		}
	})
}

// BenchmarkAblationWindow sweeps the monitoring window μ.
func BenchmarkAblationWindow(b *testing.B) {
	benchExperiment(b, "abl-window", nil)
}

// BenchmarkAblationPhi sweeps the locality threshold Φ.
func BenchmarkAblationPhi(b *testing.B) {
	benchExperiment(b, "abl-phi", nil)
}

// BenchmarkAblationBatchSize sweeps the message batch limit.
func BenchmarkAblationBatchSize(b *testing.B) {
	benchExperiment(b, "abl-batch", nil)
}

// BenchmarkAblationReplication evaluates query pinning (future work ii).
func BenchmarkAblationReplication(b *testing.B) {
	benchExperiment(b, "abl-replication", nil)
}
