package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
)

// Machine-readable benchmarking: each -load run can append itself as a
// named scenario to a JSON report file (-json-out), and sample the
// server's slowest traces (-trace-sample) to attach a phase attribution
// — where the milliseconds of a request actually went. The report is the
// recorded perf trajectory committed as BENCH_<n>.json: rerunning the
// same scenarios against a newer build answers "did we regress" without
// archaeology through CI logs.

// benchLatency is the client-side latency aggregate of one scenario.
type benchLatency struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// benchMutations is the write-plane side of a mixed scenario.
type benchMutations struct {
	Sent            int64        `json:"sent"`
	Applied         int64        `json:"applied"`
	Failed          int64        `json:"failed"`
	Batches         int64        `json:"batches"`
	Writers         int          `json:"writers,omitempty"`
	ApplyThroughput float64      `json:"apply_ops_per_s"`
	Commit          benchLatency `json:"commit_latency"`
	// Group-commit amortization, from the server's WAL stats: fsyncs per
	// committed batch (< 1 when concurrent commits share a sync) and the
	// inverse, batches per fsync. Nil when the server runs without a WAL.
	FsyncsPerBatch      *float64 `json:"fsyncs_per_batch,omitempty"`
	MeanBatchesPerFsync *float64 `json:"mean_batches_per_fsync,omitempty"`
}

// benchRecovery is the fault-schedule outcome of a recovery scenario.
type benchRecovery struct {
	Episodes         int64   `json:"episodes"`
	Handoffs         int64   `json:"handoffs"`
	QueriesRestarted int64   `json:"queries_restarted"`
	RecoveryMS       float64 `json:"recovery_ms"`
	PreKillQPS       float64 `json:"pre_kill_qps"`
	PostRecoveryQPS  float64 `json:"post_recovery_qps"`
}

// benchPhase is one row of the aggregated phase attribution: this
// phase's share of the total traced wall time across the sampled traces.
type benchPhase struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
	Fraction   float64 `json:"fraction"`
}

// benchScenario is one -load run's measurement.
type benchScenario struct {
	RateRPS   float64 `json:"offered_rate_rps"`
	DurationS float64 `json:"duration_s"`
	Pool      int     `json:"pool"`
	Tenants   int     `json:"tenants"`
	Seed      uint64  `json:"seed"`

	Sent           int64   `json:"sent"`
	OK             int64   `json:"ok"`
	Rejected       int64   `json:"rejected_429"`
	Expired        int64   `json:"expired_504"`
	ClientTimeouts int64   `json:"client_timeouts"`
	Failed         int64   `json:"failed"`
	WorkerLost     int64   `json:"worker_lost"`
	GoodputQPS     float64 `json:"goodput_qps"`
	CacheHits      int64   `json:"client_cache_hits"`

	Latency   benchLatency    `json:"latency"`
	Mutations *benchMutations `json:"mutations,omitempty"`
	Recovery  *benchRecovery  `json:"recovery,omitempty"`
	Phases    []benchPhase    `json:"phase_attribution,omitempty"`
}

// benchReport is the whole JSON report file, accreted scenario by
// scenario so a shell script can compose a multi-scenario run from
// independent qgraph-bench invocations.
type benchReport struct {
	Bench     string                   `json:"bench"`
	Scenarios map[string]benchScenario `json:"scenarios"`
	// TracingOverheadPct compares the read_only and read_only_notrace
	// scenarios' mean latencies: the cost of leaving tracing on. Derived
	// automatically once both scenarios are present.
	TracingOverheadPct *float64 `json:"tracing_overhead_pct,omitempty"`
	// WatchdogOverheadPct compares read_only against read_only_nowatch
	// (a server deployed with -watchdog=false) the same way: the cost of
	// leaving the active health layer on.
	WatchdogOverheadPct *float64 `json:"watchdog_overhead_pct,omitempty"`
	// ReadScaleoutX compares the router_read and single_node_read
	// scenarios' goodput: the read-throughput multiple a router-fronted
	// replica fleet sustains over one node under the identical workload.
	ReadScaleoutX *float64 `json:"read_scaleout_x,omitempty"`
	// RouterTraceOverheadPct compares router_read_trace against
	// router_read_notrace: the per-request cost of the router opening a
	// route trace and propagating X-QGraph-Trace-ID downstream.
	RouterTraceOverheadPct *float64 `json:"router_trace_overhead_pct,omitempty"`
	// CommitPipelineSpeedupX compares the write_barrier and
	// write_pipelined scenarios' commit p50: how many times faster a
	// mutation commits when it no longer rides the global STOP/START
	// barrier. Derived once both scenarios are present.
	CommitPipelineSpeedupX *float64 `json:"commit_pipeline_speedup_x,omitempty"`
}

// writeBenchJSON merges one scenario into the report at path
// (read-modify-write, creating the file on first use). With keepBest, a
// scenario already present survives unless this run's mean latency is
// lower — repeat-and-take-best, the standard way to strip scheduler and
// GC noise from a cost comparison (each repetition only ever lowers the
// noise floor, never the intrinsic cost).
func writeBenchJSON(path, scenario string, sc benchScenario, keepBest bool) error {
	rep := benchReport{Bench: "qgraph-load", Scenarios: map[string]benchScenario{}}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &rep); err != nil {
			return fmt.Errorf("%s: existing report is not valid JSON: %w", path, err)
		}
		if rep.Scenarios == nil {
			rep.Scenarios = map[string]benchScenario{}
		}
	}
	if prev, ok := rep.Scenarios[scenario]; !keepBest || !ok ||
		prev.Latency.MeanMS <= 0 || sc.Latency.MeanMS < prev.Latency.MeanMS {
		rep.Scenarios[scenario] = sc
	}
	rep.TracingOverheadPct = nil
	rep.WatchdogOverheadPct = nil
	if full, ok := rep.Scenarios["read_only"]; ok {
		if bare, ok := rep.Scenarios["read_only_notrace"]; ok && bare.Latency.MeanMS > 0 {
			pct := 100 * (full.Latency.MeanMS - bare.Latency.MeanMS) / bare.Latency.MeanMS
			rep.TracingOverheadPct = &pct
		}
		if bare, ok := rep.Scenarios["read_only_nowatch"]; ok && bare.Latency.MeanMS > 0 {
			pct := 100 * (full.Latency.MeanMS - bare.Latency.MeanMS) / bare.Latency.MeanMS
			rep.WatchdogOverheadPct = &pct
		}
	}
	rep.ReadScaleoutX = nil
	if fleet, ok := rep.Scenarios["router_read"]; ok {
		if single, ok := rep.Scenarios["single_node_read"]; ok && single.GoodputQPS > 0 {
			x := fleet.GoodputQPS / single.GoodputQPS
			rep.ReadScaleoutX = &x
		}
	}
	rep.RouterTraceOverheadPct = nil
	if full, ok := rep.Scenarios["router_read_trace"]; ok {
		if bare, ok := rep.Scenarios["router_read_notrace"]; ok && bare.Latency.MeanMS > 0 {
			pct := 100 * (full.Latency.MeanMS - bare.Latency.MeanMS) / bare.Latency.MeanMS
			rep.RouterTraceOverheadPct = &pct
		}
	}
	rep.CommitPipelineSpeedupX = nil
	if barrier, ok := rep.Scenarios["write_barrier"]; ok && barrier.Mutations != nil {
		if piped, ok := rep.Scenarios["write_pipelined"]; ok && piped.Mutations != nil &&
			piped.Mutations.Commit.P50MS > 0 {
			x := barrier.Mutations.Commit.P50MS / piped.Mutations.Commit.P50MS
			rep.CommitPipelineSpeedupX = &x
		}
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// tracedView mirrors the serving layer's /traces response shape (the
// bench tool is a client; it decodes only what it renders).
type tracedView struct {
	Trace struct {
		TraceID    uint64  `json:"trace_id"`
		QueryID    int64   `json:"query_id"`
		DurationMS float64 `json:"duration_ms"`
	} `json:"trace"`
	Phases []benchPhase `json:"phases"`
}

// sampleTraces fetches the n slowest traces, prints their phase
// attribution, and returns the aggregate: per-phase share of the total
// traced wall time (duration-weighted, so slow traces dominate — they
// are what the sample is for).
func sampleTraces(client *http.Client, base string, n int) []benchPhase {
	resp, err := client.Get(fmt.Sprintf("%s/traces?slowest=%d", base, n))
	if err != nil {
		fmt.Fprintf(os.Stderr, "qgraph-bench: trace sample: %v\n", err)
		return nil
	}
	defer resp.Body.Close()
	var views []tracedView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil || len(views) == 0 {
		fmt.Fprintf(os.Stderr, "qgraph-bench: trace sample: no traces (%v)\n", err)
		return nil
	}

	fmt.Printf("# trace sample: %d slowest traces\n", len(views))
	acc := map[string]float64{}
	var total float64
	for _, v := range views {
		fmt.Printf("trace %d (query %d): %.2fms", v.Trace.TraceID, v.Trace.QueryID, v.Trace.DurationMS)
		for _, p := range v.Phases {
			fmt.Printf("  %s=%.2fms(%.0f%%)", p.Name, p.DurationMS, 100*p.Fraction)
			acc[p.Name] += p.DurationMS
		}
		fmt.Println()
		total += v.Trace.DurationMS
	}
	if total <= 0 {
		return nil
	}
	agg := make([]benchPhase, 0, len(acc))
	for name, ms := range acc {
		agg = append(agg, benchPhase{Name: name, DurationMS: ms, Fraction: ms / total})
	}
	sort.Slice(agg, func(i, j int) bool { return agg[i].DurationMS > agg[j].DurationMS })
	fmt.Printf("phase attribution:")
	for _, p := range agg {
		fmt.Printf(" %s=%.0f%%", p.Name, 100*p.Fraction)
	}
	fmt.Println()
	return agg
}
