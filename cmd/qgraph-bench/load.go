package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qgraph/internal/delta"
	"qgraph/internal/metrics"
	"qgraph/internal/serve"
)

// Open-loop HTTP load mode: fire requests at a qgraphd -serve endpoint at
// a fixed arrival rate regardless of completions (the serving-systems way
// to measure throughput and admission behavior under concurrency), then
// print client-side latency aggregates and the server's /stats.

type loadOptions struct {
	URL      string
	Rate     float64 // arrivals per second
	Duration time.Duration
	Mix      string // e.g. "sssp=0.6,bfs=0.3,pagerank=0.1"
	Pool     int    // distinct queries drawn from (smaller = more cache hits)
	Tenants  int
	Timeout  time.Duration
	Seed     uint64

	// Mixed read/write mode: stream MutateRate ops/s to POST /mutate in
	// MutateBatch-sized requests while the query load runs, replaying
	// MutationsFile if set (synthetic ops otherwise). MutateWriters splits
	// the rate over that many concurrent closed-loop writers — overlapping
	// commits are what the WAL's group committer amortizes into shared
	// fsyncs (forced to 1 for a replay, which must stay ordered).
	MutateRate    float64
	MutateBatch   int
	MutateWriters int
	MutationsFile string

	// Fault schedule: KillAfter into the run, SIGKILL the worker process
	// KillPID (KillWorker is its id, for the report). The report then
	// shows detection+recovery time from the server's /stats and the
	// goodput dip: pre-kill vs post-recovery throughput.
	KillPID    int
	KillAfter  time.Duration
	KillWorker int

	// TraceSample fetches the N slowest traces after the run and prints
	// their phase attribution (requires a tracing-enabled server).
	TraceSample int
	// JSONOut merges this run into a JSON report file as scenario
	// Scenario (see report.go). JSONBest keeps whichever repetition of
	// the scenario had the lower mean latency.
	JSONOut  string
	Scenario string
	JSONBest bool
}

// parseMix parses "kind=weight,..." into a cumulative distribution.
func parseMix(s string) (kinds []string, cum []float64, err error) {
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w < 0 {
			return nil, nil, fmt.Errorf("bad mix weight %q", kv[1])
		}
		switch kv[0] {
		case "sssp", "bfs", "poi", "pagerank":
		default:
			return nil, nil, fmt.Errorf("unknown mix kind %q", kv[0])
		}
		total += w
		kinds = append(kinds, kv[0])
		cum = append(cum, total)
	}
	if total <= 0 {
		return nil, nil, fmt.Errorf("mix weights sum to zero")
	}
	return kinds, cum, nil
}

// runLoad drives the open-loop generator and prints the measurement.
func runLoad(o loadOptions) error {
	if o.Rate <= 0 {
		return fmt.Errorf("-rate must be positive, got %g", o.Rate)
	}
	base := strings.TrimRight(o.URL, "/")
	kinds, cum, err := parseMix(o.Mix)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: o.Timeout}
	vertices, err := fetchVertices(client, base)
	if err != nil {
		return fmt.Errorf("probing %s/stats: %w", base, err)
	}
	if o.Pool < 1 {
		o.Pool = 256
	}
	if o.Tenants < 1 {
		o.Tenants = 1
	}

	// A fixed pool of distinct queries: repeats are what exercise the
	// result cache, and the pool size sets the repeat probability.
	rng := rand.New(rand.NewPCG(o.Seed, 0x9e3779b97f4a7c15))
	pool := make([]serve.QueryRequest, o.Pool)
	for i := range pool {
		k := kinds[len(kinds)-1]
		x := rng.Float64() * cum[len(cum)-1]
		for j, c := range cum {
			if x <= c {
				k = kinds[j]
				break
			}
		}
		sp := serve.QueryRequest{Kind: k, Source: rng.Int64N(int64(vertices))}
		switch k {
		case "sssp", "bfs":
			t := rng.Int64N(int64(vertices))
			sp.Target = &t
		case "pagerank":
			sp.MaxIters, sp.Epsilon = 20, 1e-4
		}
		pool[i] = sp
	}

	var (
		sent, ok, rejected, expired, failed atomic.Int64
		clientTimeout                       atomic.Int64
		cacheHits                           atomic.Int64
		workerLost                          atomic.Int64
		mu                                  sync.Mutex
		records                             []metrics.QueryRecord
		okTimes                             []time.Time
		wg                                  sync.WaitGroup
	)
	interval := time.Duration(float64(time.Second) / o.Rate)
	if interval <= 0 {
		interval = time.Millisecond
	}

	// Mixed read/write mode: closed-loop mutation streamers run beside
	// the open-loop query generator for the same window, each owning a
	// share of the op rate.
	var muts []*mutationStreamer
	stopMut := make(chan struct{})
	mutDone := make(chan struct{})
	if o.MutateRate > 0 {
		writers := max(o.MutateWriters, 1)
		if o.MutationsFile != "" {
			writers = 1 // a replay stream must keep its order
		}
		for i := 0; i < writers; i++ {
			m, err := newMutationStreamer(o, client, base, vertices, i, writers)
			if err != nil {
				return err
			}
			muts = append(muts, m)
		}
		var mwg sync.WaitGroup
		for _, m := range muts {
			mwg.Add(1)
			go func(m *mutationStreamer) {
				defer mwg.Done()
				m.run(stopMut)
			}(m)
		}
		go func() {
			defer close(mutDone)
			mwg.Wait()
		}()
	} else {
		close(mutDone)
	}

	// Fault schedule: kill the target worker process mid-load.
	var killAt atomic.Int64 // unix nanos, 0 = not fired
	if o.KillPID > 0 && o.KillAfter > 0 {
		go func() {
			time.Sleep(o.KillAfter)
			proc, err := os.FindProcess(o.KillPID)
			if err == nil {
				err = proc.Kill()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "qgraph-bench: kill pid %d: %v\n", o.KillPID, err)
				return
			}
			killAt.Store(time.Now().UnixNano())
		}()
	}

	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	// Per-goroutine randomness must not share rng; pre-draw choices.
	for now := start; now.Sub(start) < o.Duration; now = <-ticker.C {
		sp := pool[rng.IntN(len(pool))]
		sp.Tenant = "tenant-" + strconv.Itoa(rng.IntN(o.Tenants))
		sent.Add(1)
		wg.Add(1)
		go func(sp serve.QueryRequest) {
			defer wg.Done()
			body, _ := json.Marshal(sp)
			t0 := time.Now()
			resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				// A client-side timeout is our own -load-timeout expiring
				// (often below the server's deadline), not a server error.
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					clientTimeout.Add(1)
				} else {
					failed.Add(1)
				}
				return
			}
			defer resp.Body.Close()
			var qr struct {
				CacheHit bool   `json:"cache_hit"`
				Error    string `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&qr)
			if strings.Contains(qr.Error, "worker_lost") {
				// The acceptance bar for recovery: clients must never see a
				// worker failure as worker_lost.
				workerLost.Add(1)
			}
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
				if qr.CacheHit {
					cacheHits.Add(1)
				}
				done := time.Now()
				mu.Lock()
				records = append(records, metrics.QueryRecord{
					Kind: sp.Kind, ScheduledAt: t0, Latency: done.Sub(t0),
				})
				okTimes = append(okTimes, done)
				mu.Unlock()
			case http.StatusTooManyRequests:
				rejected.Add(1)
			case http.StatusGatewayTimeout:
				expired.Add(1)
			default:
				failed.Add(1)
			}
		}(sp)
	}
	genWindow := time.Since(start) // arrival window, before the drain
	close(stopMut)
	wg.Wait()
	<-mutDone
	wall := time.Since(start)

	sum := metrics.SummarizeRecords(records)
	fmt.Printf("# open-loop load: %s for %s at %.0f req/s (%d tenants, pool %d)\n",
		base, o.Duration, o.Rate, o.Tenants, o.Pool)
	fmt.Printf("sent=%d ok=%d rejected_429=%d expired_504=%d client_timeout=%d failed=%d worker_lost=%d\n",
		sent.Load(), ok.Load(), rejected.Load(), expired.Load(), clientTimeout.Load(), failed.Load(),
		workerLost.Load())
	// Report the achieved arrival rate over the generation window (not
	// the post-generation drain): time.Ticker drops ticks when the
	// generator lags, so the offered load can fall short of -rate.
	fmt.Printf("offered=%.1f req/s goodput=%.1f qps client_cache_hits=%d\n",
		float64(sent.Load())/genWindow.Seconds(), float64(ok.Load())/wall.Seconds(), cacheHits.Load())
	if sum.Count > 0 {
		fmt.Printf("latency mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms\n",
			msOf(sum.MeanLatency), msOf(sum.P50), msOf(sum.P95), msOf(sum.P99))
	}
	var mut *mutationTotals
	if len(muts) > 0 {
		mut = sumStreamers(muts)
		mut.report(genWindow, len(muts))
		reportLogBound(client, base, mut.applied)
		reportDurability(client, base, mut)
	}
	var recovery *benchRecovery
	if at := killAt.Load(); at > 0 {
		recovery = reportFault(client, base, o, time.Unix(0, at), start, okTimes)
	}
	var phases []benchPhase
	if o.TraceSample > 0 {
		phases = sampleTraces(client, base, o.TraceSample)
	}
	if o.JSONOut != "" {
		sc := benchScenario{
			RateRPS: o.Rate, DurationS: o.Duration.Seconds(),
			Pool: o.Pool, Tenants: o.Tenants, Seed: o.Seed,
			Sent: sent.Load(), OK: ok.Load(), Rejected: rejected.Load(),
			Expired: expired.Load(), ClientTimeouts: clientTimeout.Load(),
			Failed: failed.Load(), WorkerLost: workerLost.Load(),
			GoodputQPS: float64(ok.Load()) / wall.Seconds(),
			CacheHits:  cacheHits.Load(),
			Latency: benchLatency{
				MeanMS: msOf(sum.MeanLatency), P50MS: msOf(sum.P50),
				P95MS: msOf(sum.P95), P99MS: msOf(sum.P99),
			},
			Recovery: recovery,
			Phases:   phases,
		}
		if mut != nil {
			csum := metrics.SummarizeRecords(mut.commits)
			sc.Mutations = &benchMutations{
				Sent: mut.sent, Applied: mut.applied, Failed: mut.failed,
				Batches: mut.batches, Writers: len(muts),
				ApplyThroughput: float64(mut.applied) / genWindow.Seconds(),
				Commit: benchLatency{
					MeanMS: msOf(csum.MeanLatency), P50MS: msOf(csum.P50),
					P95MS: msOf(csum.P95), P99MS: msOf(csum.P99),
				},
				FsyncsPerBatch:      mut.fsyncsPerBatch,
				MeanBatchesPerFsync: mut.meanBatchesPerFsync,
			}
		}
		name := o.Scenario
		if name == "" {
			name = "load"
		}
		if err := writeBenchJSON(o.JSONOut, name, sc, o.JSONBest); err != nil {
			return fmt.Errorf("writing %s: %w", o.JSONOut, err)
		}
		fmt.Printf("# scenario %q recorded in %s\n", name, o.JSONOut)
	}
	if stats, err := fetchRaw(client, base+"/stats"); err == nil {
		fmt.Printf("# server /stats\n%s\n", stats)
	}
	return nil
}

// reportLogBound prints the bounded-memory assertion of a mixed run: the
// committed-op log the server retains after the run versus the ops the run
// applied. With checkpointing armed the log must stay bounded by the
// snapshot policy, not grow with the applied total; without snapshots the
// line documents the unbounded growth instead of hiding it.
func reportLogBound(client *http.Client, base string, applied int64) {
	var st struct {
		Snapshot struct {
			Snapshots           int64  `json:"snapshot_count"`
			LastSnapshotVersion uint64 `json:"last_snapshot_version"`
			TruncatedOps        int64  `json:"truncated_ops_total"`
			DeltaLogLen         int    `json:"delta_log_len"`
			DeltaLogOps         int    `json:"delta_log_ops"`
			DeltaLogBytes       int64  `json:"delta_log_bytes"`
		} `json:"snapshot"`
	}
	raw, err := fetchRaw(client, base+"/stats")
	if err != nil || json.Unmarshal([]byte(raw), &st) != nil {
		return
	}
	s := st.Snapshot
	fmt.Printf("snapshots: count=%d last_version=%d truncated_ops=%d log_len=%d log_ops=%d log_bytes=%d\n",
		s.Snapshots, s.LastSnapshotVersion, s.TruncatedOps, s.DeltaLogLen, s.DeltaLogOps, s.DeltaLogBytes)
	bounded := s.TruncatedOps > 0 && int64(s.DeltaLogOps) < applied
	fmt.Printf("delta-log: bounded=%v retained_ops=%d applied_ops=%d\n", bounded, s.DeltaLogOps, applied)
}

// reportDurability prints the write-plane durability report: the WAL's
// version chain, fsync cost per commit, the group-commit amortization,
// and the background checkpoint cutter's wall time. With a WAL armed, the
// commit latency above already *includes* the fsync (it happens before
// the ack) while last_cut_ms is paid entirely off the barrier — so commit
// p95 staying flat while last_cut_ms grows with the graph is the
// off-barrier evidence. The amortization numbers land in mut for the JSON
// report: fsyncs/batch < 1 is the shared-sync evidence under concurrent
// writers.
func reportDurability(client *http.Client, base string, mut *mutationTotals) {
	var st struct {
		WAL struct {
			Enabled             bool    `json:"enabled"`
			BaseVersion         uint64  `json:"base_version"`
			HeadVersion         uint64  `json:"head_version"`
			Segments            int     `json:"segments"`
			Appends             int64   `json:"appends"`
			AppendedBytes       int64   `json:"appended_bytes"`
			LastFsyncUS         int64   `json:"last_fsync_us"`
			MeanFsyncUS         int64   `json:"mean_fsync_us"`
			Fsyncs              int64   `json:"fsyncs"`
			GroupedAppends      int64   `json:"grouped_appends"`
			MeanBatchesPerFsync float64 `json:"mean_batches_per_fsync"`
			LastGroupSize       int64   `json:"last_group_size"`
		} `json:"wal"`
		MVCC struct {
			Pipelined      bool   `json:"pipelined"`
			Live           int    `json:"live_versions"`
			Pinned         int    `json:"pinned_readers"`
			Retired        uint64 `json:"retired_versions"`
			Peak           int    `json:"peak_live_versions"`
			SealedInFlight int64  `json:"sealed_in_flight"`
			MaxWorkerLag   uint64 `json:"max_worker_lag"`
		} `json:"mvcc"`
		Snapshot struct {
			LastCutMS float64 `json:"last_cut_ms"`
		} `json:"snapshot"`
	}
	raw, err := fetchRaw(client, base+"/stats")
	if err != nil || json.Unmarshal([]byte(raw), &st) != nil {
		return
	}
	fmt.Printf("mvcc: pipelined=%v live_versions=%d pinned_readers=%d retired=%d peak_live=%d sealed_in_flight=%d max_worker_lag=%d\n",
		st.MVCC.Pipelined, st.MVCC.Live, st.MVCC.Pinned, st.MVCC.Retired,
		st.MVCC.Peak, st.MVCC.SealedInFlight, st.MVCC.MaxWorkerLag)
	w := st.WAL
	if !w.Enabled {
		fmt.Printf("durability: wal=off (a full restart loses ops committed after the last checkpoint)\n")
		return
	}
	fmt.Printf("durability: wal=on head_version=%d base_version=%d segments=%d appends=%d bytes=%d fsync_mean_us=%d fsync_last_us=%d\n",
		w.HeadVersion, w.BaseVersion, w.Segments, w.Appends, w.AppendedBytes, w.MeanFsyncUS, w.LastFsyncUS)
	if w.Appends > 0 {
		fpb := float64(w.Fsyncs) / float64(w.Appends)
		fmt.Printf("group-commit: fsyncs=%d appends=%d fsyncs_per_batch=%.2f mean_batches_per_fsync=%.2f grouped_appends=%d last_group=%d\n",
			w.Fsyncs, w.Appends, fpb, w.MeanBatchesPerFsync, w.GroupedAppends, w.LastGroupSize)
		if mut != nil {
			mut.fsyncsPerBatch = &fpb
			mpf := w.MeanBatchesPerFsync
			mut.meanBatchesPerFsync = &mpf
		}
	}
	if st.Snapshot.LastCutMS > 0 {
		fmt.Printf("durability: last_cut_ms=%.1f (background cutter; commit latency excludes cut work)\n",
			st.Snapshot.LastCutMS)
	}
}

// reportFault prints the worker-kill fault schedule's outcome: the
// server-measured recovery time and the goodput dip — completed-request
// throughput in the pre-kill window vs the tail window after recovery.
func reportFault(client *http.Client, base string, o loadOptions, killed, start time.Time, okTimes []time.Time) *benchRecovery {
	fmt.Printf("# fault schedule: killed worker %d (pid %d) %.1fs into the run\n",
		o.KillWorker, o.KillPID, killed.Sub(start).Seconds())

	var st struct {
		Recovery struct {
			Recoveries       int64   `json:"recoveries"`
			Handoffs         int64   `json:"handoffs"`
			Rejoins          int64   `json:"rejoins"`
			QueriesRestarted int64   `json:"queries_restarted"`
			LastRecoveryMS   float64 `json:"last_recovery_ms"`
		} `json:"recovery"`
	}
	if raw, err := fetchRaw(client, base+"/stats"); err == nil {
		_ = json.Unmarshal([]byte(raw), &st)
	}
	fmt.Printf("recovery: episodes=%d handoffs=%d rejoins=%d queries_restarted=%d recovery_time_ms=%.1f\n",
		st.Recovery.Recoveries, st.Recovery.Handoffs, st.Recovery.Rejoins,
		st.Recovery.QueriesRestarted, st.Recovery.LastRecoveryMS)

	end := start.Add(o.Duration)
	// Pre-kill window: skip the first second of warmup.
	preFrom := start.Add(time.Second)
	if !preFrom.Before(killed) {
		preFrom = start
	}
	// Post-recovery window. LastRecoveryMS measures the episode from
	// death *declaration*; the detection window (the server's heartbeat
	// timeout, unknown here) precedes it. Additionally skip the first
	// third of the post-kill period, which absorbs detection for any
	// timeout under a third of the remaining run — otherwise outage time
	// would be averaged into post_recovery qps and understate the ratio.
	recovered := killed.Add(time.Duration(st.Recovery.LastRecoveryMS * float64(time.Millisecond)))
	if tail := killed.Add(end.Sub(killed) / 3); tail.After(recovered) {
		recovered = tail
	}
	if st.Recovery.Recoveries == 0 || !recovered.Before(end) {
		recovered = end.Add(-end.Sub(killed) / 5)
	}
	pre := windowRate(okTimes, preFrom, killed)
	post := windowRate(okTimes, recovered, end)
	fmt.Printf("goodput: pre_kill=%.1f qps post_recovery=%.1f qps", pre, post)
	if pre > 0 {
		fmt.Printf(" ratio=%.2f", post/pre)
	}
	fmt.Println()
	return &benchRecovery{
		Episodes: st.Recovery.Recoveries, Handoffs: st.Recovery.Handoffs,
		QueriesRestarted: st.Recovery.QueriesRestarted,
		RecoveryMS:       st.Recovery.LastRecoveryMS,
		PreKillQPS:       pre, PostRecoveryQPS: post,
	}
}

// windowRate counts completions inside [from, to) per second.
func windowRate(times []time.Time, from, to time.Time) float64 {
	if !to.After(from) {
		return 0
	}
	n := 0
	for _, t := range times {
		if !t.Before(from) && t.Before(to) {
			n++
		}
	}
	return float64(n) / to.Sub(from).Seconds()
}

// ---------------------------------------------------------------------------
// Mutation streaming (mixed read/write mode)

// mutationStreamer pushes update batches to POST /mutate at a fixed op
// rate, closed-loop per batch: send, await the commit, sleep out the
// interval. Ops come from a replay file (qgraph-gen -mutations) or from a
// synthetic generator that adds edges and churns the weights of edges it
// added earlier (so set_weight ops actually apply). With -mutate-writers
// several streamers run concurrently, each owning 1/n of the rate — their
// overlapping commits are what the WAL group committer folds into shared
// fsyncs.
type mutationStreamer struct {
	client  *http.Client
	base    string
	batch   int
	rate    float64          // this writer's share
	replay  []serve.MutateOp // nil = synthetic
	rng     *rand.Rand
	nVerts  int64
	added   [][2]int64 // synthetic: edges added so far, for weight churn
	nextIdx int

	sent, applied, noops, failed, batches int64
	commits                               []metrics.QueryRecord
}

func newMutationStreamer(o loadOptions, client *http.Client, base string, vertices, idx, writers int) (*mutationStreamer, error) {
	m := &mutationStreamer{
		client: client,
		base:   base,
		batch:  max(o.MutateBatch, 1),
		rate:   o.MutateRate / float64(writers),
		rng:    rand.New(rand.NewPCG(o.Seed+uint64(idx), 0xa0761d6478bd642f)),
		nVerts: int64(vertices),
	}
	if o.MutationsFile != "" {
		f, err := os.Open(o.MutationsFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ops, err := delta.ReadOps(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", o.MutationsFile, err)
		}
		m.replay = make([]serve.MutateOp, len(ops))
		for i, op := range ops {
			m.replay[i] = serve.MutateOp{
				Op: op.Kind.String(), From: int64(op.From), To: int64(op.To),
				Weight: float64(op.Weight),
			}
		}
	}
	return m, nil
}

// nextBatch draws the next batch, or nil when a replay stream ran dry.
func (m *mutationStreamer) nextBatch() []serve.MutateOp {
	if m.replay != nil {
		if m.nextIdx >= len(m.replay) {
			return nil
		}
		end := min(m.nextIdx+m.batch, len(m.replay))
		ops := m.replay[m.nextIdx:end]
		m.nextIdx = end
		return ops
	}
	ops := make([]serve.MutateOp, m.batch)
	for i := range ops {
		if len(m.added) > 0 && m.rng.Float64() < 0.3 {
			pair := m.added[m.rng.IntN(len(m.added))]
			ops[i] = serve.MutateOp{
				Op: "set_weight", From: pair[0], To: pair[1],
				Weight: 0.1 + m.rng.Float64()*2,
			}
			continue
		}
		u, v := m.rng.Int64N(m.nVerts), m.rng.Int64N(m.nVerts)
		ops[i] = serve.MutateOp{Op: "add_edge", From: u, To: v, Weight: 0.1 + m.rng.Float64()*2}
		m.added = append(m.added, [2]int64{u, v})
	}
	return ops
}

func (m *mutationStreamer) run(stop <-chan struct{}) {
	interval := time.Duration(float64(m.batch) / m.rate * float64(time.Second))
	for {
		select {
		case <-stop:
			return
		default:
		}
		ops := m.nextBatch()
		if ops == nil {
			return // replay exhausted
		}
		t0 := time.Now()
		m.post(ops)
		if d := interval - time.Since(t0); d > 0 {
			select {
			case <-stop:
				return
			case <-time.After(d):
			}
		}
	}
}

func (m *mutationStreamer) post(ops []serve.MutateOp) {
	m.sent += int64(len(ops))
	body, _ := json.Marshal(serve.MutateRequest{Ops: ops})
	t0 := time.Now()
	resp, err := m.client.Post(m.base+"/mutate", "application/json", bytes.NewReader(body))
	if err != nil {
		m.failed += int64(len(ops))
		return
	}
	defer resp.Body.Close()
	var mr serve.MutateResponse
	if resp.StatusCode != http.StatusOK {
		m.failed += int64(len(ops))
		return
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		m.failed += int64(len(ops))
		return
	}
	m.applied += int64(mr.Applied)
	m.noops += int64(mr.NoOps)
	m.batches++
	m.commits = append(m.commits, metrics.QueryRecord{
		Kind: "mutate", ScheduledAt: t0, Latency: time.Since(t0),
	})
}

// mutationTotals aggregates the writers' counters for the report.
type mutationTotals struct {
	sent, applied, noops, failed, batches int64
	commits                               []metrics.QueryRecord
	// Filled by reportDurability from the server's WAL stats (nil when
	// the server runs without a WAL).
	fsyncsPerBatch      *float64
	meanBatchesPerFsync *float64
}

func sumStreamers(muts []*mutationStreamer) *mutationTotals {
	t := &mutationTotals{}
	for _, m := range muts {
		t.sent += m.sent
		t.applied += m.applied
		t.noops += m.noops
		t.failed += m.failed
		t.batches += m.batches
		t.commits = append(t.commits, m.commits...)
	}
	return t
}

// report prints the write-plane side of the mixed run.
func (t *mutationTotals) report(window time.Duration, writers int) {
	fmt.Printf("mutations: writers=%d sent=%d applied=%d noop=%d failed=%d batches=%d\n",
		writers, t.sent, t.applied, t.noops, t.failed, t.batches)
	sec := window.Seconds()
	if sec > 0 {
		fmt.Printf("mutations: offered=%.1f ops/s apply_throughput=%.1f ops/s\n",
			float64(t.sent)/sec, float64(t.applied)/sec)
	}
	if sum := metrics.SummarizeRecords(t.commits); sum.Count > 0 {
		fmt.Printf("mutations: commit mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms\n",
			msOf(sum.MeanLatency), msOf(sum.P50), msOf(sum.P95), msOf(sum.P99))
	}
}

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// fetchVertices learns the graph size from the server so the generator
// needs no local copy of the graph.
func fetchVertices(client *http.Client, base string) (int, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st struct {
		Engine struct {
			Vertices int `json:"vertices"`
		} `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	if st.Engine.Vertices <= 0 {
		return 0, fmt.Errorf("server reported %d vertices", st.Engine.Vertices)
	}
	return st.Engine.Vertices, nil
}

func fetchRaw(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return "", err
	}
	return strings.TrimSpace(buf.String()), nil
}
