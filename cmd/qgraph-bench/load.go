package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qgraph/internal/metrics"
	"qgraph/internal/serve"
)

// Open-loop HTTP load mode: fire requests at a qgraphd -serve endpoint at
// a fixed arrival rate regardless of completions (the serving-systems way
// to measure throughput and admission behavior under concurrency), then
// print client-side latency aggregates and the server's /stats.

type loadOptions struct {
	URL      string
	Rate     float64 // arrivals per second
	Duration time.Duration
	Mix      string // e.g. "sssp=0.6,bfs=0.3,pagerank=0.1"
	Pool     int    // distinct queries drawn from (smaller = more cache hits)
	Tenants  int
	Timeout  time.Duration
	Seed     uint64
}

// parseMix parses "kind=weight,..." into a cumulative distribution.
func parseMix(s string) (kinds []string, cum []float64, err error) {
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w < 0 {
			return nil, nil, fmt.Errorf("bad mix weight %q", kv[1])
		}
		switch kv[0] {
		case "sssp", "bfs", "poi", "pagerank":
		default:
			return nil, nil, fmt.Errorf("unknown mix kind %q", kv[0])
		}
		total += w
		kinds = append(kinds, kv[0])
		cum = append(cum, total)
	}
	if total <= 0 {
		return nil, nil, fmt.Errorf("mix weights sum to zero")
	}
	return kinds, cum, nil
}

// runLoad drives the open-loop generator and prints the measurement.
func runLoad(o loadOptions) error {
	if o.Rate <= 0 {
		return fmt.Errorf("-rate must be positive, got %g", o.Rate)
	}
	base := strings.TrimRight(o.URL, "/")
	kinds, cum, err := parseMix(o.Mix)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: o.Timeout}
	vertices, err := fetchVertices(client, base)
	if err != nil {
		return fmt.Errorf("probing %s/stats: %w", base, err)
	}
	if o.Pool < 1 {
		o.Pool = 256
	}
	if o.Tenants < 1 {
		o.Tenants = 1
	}

	// A fixed pool of distinct queries: repeats are what exercise the
	// result cache, and the pool size sets the repeat probability.
	rng := rand.New(rand.NewPCG(o.Seed, 0x9e3779b97f4a7c15))
	pool := make([]serve.QueryRequest, o.Pool)
	for i := range pool {
		k := kinds[len(kinds)-1]
		x := rng.Float64() * cum[len(cum)-1]
		for j, c := range cum {
			if x <= c {
				k = kinds[j]
				break
			}
		}
		sp := serve.QueryRequest{Kind: k, Source: rng.Int64N(int64(vertices))}
		switch k {
		case "sssp", "bfs":
			t := rng.Int64N(int64(vertices))
			sp.Target = &t
		case "pagerank":
			sp.MaxIters, sp.Epsilon = 20, 1e-4
		}
		pool[i] = sp
	}

	var (
		sent, ok, rejected, expired, failed atomic.Int64
		clientTimeout                       atomic.Int64
		cacheHits                           atomic.Int64
		mu                                  sync.Mutex
		records                             []metrics.QueryRecord
		wg                                  sync.WaitGroup
	)
	interval := time.Duration(float64(time.Second) / o.Rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	// Per-goroutine randomness must not share rng; pre-draw choices.
	for now := start; now.Sub(start) < o.Duration; now = <-ticker.C {
		sp := pool[rng.IntN(len(pool))]
		sp.Tenant = "tenant-" + strconv.Itoa(rng.IntN(o.Tenants))
		sent.Add(1)
		wg.Add(1)
		go func(sp serve.QueryRequest) {
			defer wg.Done()
			body, _ := json.Marshal(sp)
			t0 := time.Now()
			resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				// A client-side timeout is our own -load-timeout expiring
				// (often below the server's deadline), not a server error.
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					clientTimeout.Add(1)
				} else {
					failed.Add(1)
				}
				return
			}
			defer resp.Body.Close()
			var qr struct {
				CacheHit bool `json:"cache_hit"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&qr)
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
				if qr.CacheHit {
					cacheHits.Add(1)
				}
				mu.Lock()
				records = append(records, metrics.QueryRecord{
					Kind: sp.Kind, ScheduledAt: t0, Latency: time.Since(t0),
				})
				mu.Unlock()
			case http.StatusTooManyRequests:
				rejected.Add(1)
			case http.StatusGatewayTimeout:
				expired.Add(1)
			default:
				failed.Add(1)
			}
		}(sp)
	}
	genWindow := time.Since(start) // arrival window, before the drain
	wg.Wait()
	wall := time.Since(start)

	sum := metrics.SummarizeRecords(records)
	fmt.Printf("# open-loop load: %s for %s at %.0f req/s (%d tenants, pool %d)\n",
		base, o.Duration, o.Rate, o.Tenants, o.Pool)
	fmt.Printf("sent=%d ok=%d rejected_429=%d expired_504=%d client_timeout=%d failed=%d\n",
		sent.Load(), ok.Load(), rejected.Load(), expired.Load(), clientTimeout.Load(), failed.Load())
	// Report the achieved arrival rate over the generation window (not
	// the post-generation drain): time.Ticker drops ticks when the
	// generator lags, so the offered load can fall short of -rate.
	fmt.Printf("offered=%.1f req/s goodput=%.1f qps client_cache_hits=%d\n",
		float64(sent.Load())/genWindow.Seconds(), float64(ok.Load())/wall.Seconds(), cacheHits.Load())
	if sum.Count > 0 {
		fmt.Printf("latency mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms\n",
			msOf(sum.MeanLatency), msOf(sum.P50), msOf(sum.P95), msOf(sum.P99))
	}
	if stats, err := fetchRaw(client, base+"/stats"); err == nil {
		fmt.Printf("# server /stats\n%s\n", stats)
	}
	return nil
}

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// fetchVertices learns the graph size from the server so the generator
// needs no local copy of the graph.
func fetchVertices(client *http.Client, base string) (int, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st struct {
		Engine struct {
			Vertices int `json:"vertices"`
		} `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	if st.Engine.Vertices <= 0 {
		return 0, fmt.Errorf("server reported %d vertices", st.Engine.Vertices)
	}
	return st.Engine.Vertices, nil
}

func fetchRaw(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return "", err
	}
	return strings.TrimSpace(buf.String()), nil
}
