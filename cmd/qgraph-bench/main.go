// Command qgraph-bench regenerates the figures of the paper's evaluation
// (and the ablations of DESIGN.md §5) and prints the measured series.
//
//	qgraph-bench -list
//	qgraph-bench -exp fig6a
//	qgraph-bench -exp all -scale quick
//	qgraph-bench -exp fig7a -scale paper   # paper-sized run (hours)
//
// With -load it instead drives open-loop HTTP load against a qgraphd
// -serve endpoint, measuring throughput, admission rejections, and cache
// effectiveness under concurrency:
//
//	qgraph-bench -load http://localhost:8080 -rate 500 -load-duration 30s
//
// Adding -mutate-rate turns that into a mixed read/write run: graph
// mutations stream to POST /mutate while the query load runs, and the
// report shows mutation apply throughput and commit latency alongside
// query goodput:
//
//	qgraph-bench -load http://localhost:8080 -rate 500 -mutate-rate 200 \
//	  -mutations bw.qgr.mut -load-duration 30s
//
// A fault schedule can SIGKILL a worker process mid-run to measure the
// engine's failure recovery: the report shows the server-measured
// recovery time and the goodput dip (pre-kill vs post-recovery qps), and
// counts worker_lost responses — which recovery must keep at zero:
//
//	qgraph-bench -load http://localhost:8080 -rate 300 -load-duration 15s \
//	  -kill-pid $WORKER_PID -kill-worker 1 -kill-after 5s
//
// -trace-sample N prints the phase attribution of the N slowest traces
// after the run (where the milliseconds went: admission, supersteps,
// barrier phases, WAL fsync). -json-out FILE -scenario NAME merges the
// run into a machine-readable report; scripts/bench.sh composes the
// committed BENCH_*.json perf trajectory from several such runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"qgraph/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale   = flag.String("scale", "default", "scale preset: quick | default | paper")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		workers = flag.Int("workers", 0, "override worker count k")
		queries = flag.Int("queries", 0, "override main workload size")
		seed    = flag.Uint64("seed", 0, "override workload seed")

		load        = flag.String("load", "", "open-loop HTTP load mode: base URL of a qgraphd -serve endpoint")
		rate        = flag.Float64("rate", 200, "arrival rate in req/s (-load)")
		loadDur     = flag.Duration("load-duration", 10*time.Second, "how long to generate load (-load)")
		loadMix     = flag.String("load-mix", "sssp=0.6,bfs=0.3,pagerank=0.1", "query kind mix (-load)")
		loadPool    = flag.Int("load-pool", 256, "distinct query pool size; smaller = more cache hits (-load)")
		loadTenants = flag.Int("load-tenants", 4, "tenants to spread requests over (-load)")
		loadTimeout = flag.Duration("load-timeout", 10*time.Second, "client-side request timeout (-load)")

		mutateRate    = flag.Float64("mutate-rate", 0, "mixed read/write mode: stream graph mutations at this many ops/s during -load")
		mutateBatch   = flag.Int("mutate-batch", 32, "ops per POST /mutate request (-mutate-rate)")
		mutateWriters = flag.Int("mutate-writers", 1, "concurrent closed-loop mutation writers sharing -mutate-rate; >1 exercises WAL group-commit amortization (forced to 1 with -mutations)")
		mutateFile    = flag.String("mutations", "", "replay this update stream (qgraph-gen -mutations) instead of synthetic ops")

		killPID    = flag.Int("kill-pid", 0, "fault schedule: SIGKILL this worker process -kill-after into the -load run")
		killAfter  = flag.Duration("kill-after", 0, "when to fire the -kill-pid fault")
		killWorker = flag.Int("kill-worker", 0, "worker id of -kill-pid, for the fault report")

		traceSample = flag.Int("trace-sample", 0, "after -load, fetch the N slowest traces and print their phase attribution")
		jsonOut     = flag.String("json-out", "", "merge the -load run into this JSON report file (see BENCH_*.json)")
		scenario    = flag.String("scenario", "", "scenario name for -json-out (e.g. read_only, mixed, recovery)")
		jsonBest    = flag.Bool("json-best", false, "repeat-and-take-best: keep the existing -json-out scenario if its mean latency was lower")
	)
	flag.Parse()

	if *load != "" {
		s := *seed
		if s == 0 {
			s = 1
		}
		if err := runLoad(loadOptions{
			URL: *load, Rate: *rate, Duration: *loadDur, Mix: *loadMix,
			Pool: *loadPool, Tenants: *loadTenants, Timeout: *loadTimeout, Seed: s,
			MutateRate: *mutateRate, MutateBatch: *mutateBatch, MutateWriters: *mutateWriters,
			MutationsFile: *mutateFile,
			KillPID:       *killPID, KillAfter: *killAfter, KillWorker: *killWorker,
			TraceSample: *traceSample, JSONOut: *jsonOut, Scenario: *scenario, JSONBest: *jsonBest,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "qgraph-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: qgraph-bench -exp <id>|all [-scale quick|default|paper]")
		fmt.Fprintln(os.Stderr, "known experiments:", strings.Join(experiments.IDs(), " "))
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "default":
		sc = experiments.DefaultScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *workers > 0 {
		sc.Workers = *workers
	}
	if *queries > 0 {
		sc.Queries = *queries
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		r, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		tab, err := r(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(tab.String())
		fmt.Printf("# wall time: %s\n\n", time.Since(start).Round(time.Millisecond))
	}
}
