// Command qgraph-gen generates and inspects the synthetic graphs of this
// reproduction (DESIGN.md §3).
//
//	qgraph-gen -kind road -preset bw -scale 64 -out bw.qgr
//	qgraph-gen -kind social -n 20000 -out social.qgr
//	qgraph-gen -info bw.qgr
package main

import (
	"flag"
	"fmt"
	"os"

	"qgraph/internal/gen"
	"qgraph/internal/graph"
)

func main() {
	var (
		kind   = flag.String("kind", "road", "graph kind: road | social | knowledge")
		preset = flag.String("preset", "bw", "road preset: bw | gy")
		scale  = flag.Int("scale", 64, "road scale divisor (1 = paper size)")
		n      = flag.Int("n", 20000, "vertex count for social/knowledge graphs")
		seed   = flag.Uint64("seed", 0, "override generator seed")
		out    = flag.String("out", "", "output path (QGR1 binary format)")
		info   = flag.String("info", "", "print statistics of an existing QGR1 file and exit")
	)
	flag.Parse()

	if *info != "" {
		g, err := graph.LoadFile(*info)
		if err != nil {
			fatal(err)
		}
		printInfo(*info, g)
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: qgraph-gen -kind road|social|knowledge -out FILE, or -info FILE")
		os.Exit(2)
	}

	var g *graph.Graph
	switch *kind {
	case "road":
		var cfg gen.RoadConfig
		switch *preset {
		case "bw":
			cfg = gen.BWConfig(*scale)
		case "gy":
			cfg = gen.GYConfig(*scale)
		default:
			fatal(fmt.Errorf("unknown preset %q", *preset))
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		net, err := gen.Road(cfg)
		if err != nil {
			fatal(err)
		}
		g = net.G
		fmt.Printf("road network: %d junctions, %d segments, %d cities\n",
			g.NumVertices(), g.NumEdges(), len(net.Cities))
		for _, c := range net.Cities[:min(len(net.Cities), 5)] {
			fmt.Printf("  %s pop=%.0f radius=%.1fkm center=(%.1f,%.1f)\n",
				c.Name, c.Pop, c.Radius, c.Center.X, c.Center.Y)
		}
	case "social":
		cfg := gen.DefaultSocialConfig(*n)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		net, err := gen.Social(cfg)
		if err != nil {
			fatal(err)
		}
		g = net.G
		fmt.Printf("social network: %d users, %d edges, %d communities, %d hubs\n",
			g.NumVertices(), g.NumEdges(), len(net.Communities), len(net.Hubs))
	case "knowledge":
		cfg := gen.DefaultKnowledgeConfig(*n)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		net, err := gen.Knowledge(cfg)
		if err != nil {
			fatal(err)
		}
		g = net.G
		fmt.Printf("knowledge graph: %d entities, %d edges, %d topics\n",
			g.NumVertices(), g.NumEdges(), len(net.Topics))
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	if err := g.SaveFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func printInfo(path string, g *graph.Graph) {
	fmt.Printf("%s: %d vertices, %d edges", path, g.NumVertices(), g.NumEdges())
	if g.HasCoords() {
		fmt.Printf(", coordinates")
	}
	if g.HasTags() {
		tagged := 0
		for v := 0; v < g.NumVertices(); v++ {
			if g.Tagged(graph.VertexID(v)) {
				tagged++
			}
		}
		fmt.Printf(", %d tagged", tagged)
	}
	fmt.Println()
	deg := make(map[int]int)
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		d := g.OutDegree(graph.VertexID(v))
		deg[d]++
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("max out-degree: %d, reachable from 0: %d\n", maxDeg, graph.ConnectedFrom(g, 0))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qgraph-gen:", err)
	os.Exit(1)
}
