// Command qgraph-gen generates and inspects the synthetic graphs of this
// reproduction (DESIGN.md §3).
//
//	qgraph-gen -kind road -preset bw -scale 64 -out bw.qgr
//	qgraph-gen -kind social -n 20000 -out social.qgr
//	qgraph-gen -info bw.qgr
//
// With -mutations N it additionally emits a replayable stream of N graph
// update operations (internal/delta stream format) alongside the graph,
// for dynamic-graph benchmarks and tests:
//
//	qgraph-gen -kind road -preset bw -scale 64 -out bw.qgr -mutations 10000
//	# writes bw.qgr and bw.qgr.mut
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"qgraph/internal/delta"
	"qgraph/internal/gen"
	"qgraph/internal/graph"
)

func main() {
	var (
		kind   = flag.String("kind", "road", "graph kind: road | social | knowledge")
		preset = flag.String("preset", "bw", "road preset: bw | gy")
		scale  = flag.Int("scale", 64, "road scale divisor (1 = paper size)")
		n      = flag.Int("n", 20000, "vertex count for social/knowledge graphs")
		seed   = flag.Uint64("seed", 0, "override generator seed")
		out    = flag.String("out", "", "output path (QGR1 binary format)")
		info   = flag.String("info", "", "print statistics of an existing QGR1 file and exit")

		mutations = flag.Int("mutations", 0, "also emit a replayable stream of N update ops")
		mutOut    = flag.String("mutations-out", "", "mutation stream path (default <out>.mut)")
	)
	flag.Parse()

	if *info != "" {
		g, err := graph.LoadFile(*info)
		if err != nil {
			fatal(err)
		}
		printInfo(*info, g)
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: qgraph-gen -kind road|social|knowledge -out FILE, or -info FILE")
		os.Exit(2)
	}

	var g *graph.Graph
	switch *kind {
	case "road":
		var cfg gen.RoadConfig
		switch *preset {
		case "bw":
			cfg = gen.BWConfig(*scale)
		case "gy":
			cfg = gen.GYConfig(*scale)
		default:
			fatal(fmt.Errorf("unknown preset %q", *preset))
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		net, err := gen.Road(cfg)
		if err != nil {
			fatal(err)
		}
		g = net.G
		fmt.Printf("road network: %d junctions, %d segments, %d cities\n",
			g.NumVertices(), g.NumEdges(), len(net.Cities))
		for _, c := range net.Cities[:min(len(net.Cities), 5)] {
			fmt.Printf("  %s pop=%.0f radius=%.1fkm center=(%.1f,%.1f)\n",
				c.Name, c.Pop, c.Radius, c.Center.X, c.Center.Y)
		}
	case "social":
		cfg := gen.DefaultSocialConfig(*n)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		net, err := gen.Social(cfg)
		if err != nil {
			fatal(err)
		}
		g = net.G
		fmt.Printf("social network: %d users, %d edges, %d communities, %d hubs\n",
			g.NumVertices(), g.NumEdges(), len(net.Communities), len(net.Hubs))
	case "knowledge":
		cfg := gen.DefaultKnowledgeConfig(*n)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		net, err := gen.Knowledge(cfg)
		if err != nil {
			fatal(err)
		}
		g = net.G
		fmt.Printf("knowledge graph: %d entities, %d edges, %d topics\n",
			g.NumVertices(), g.NumEdges(), len(net.Topics))
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	if err := g.SaveFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *mutations > 0 {
		path := *mutOut
		if path == "" {
			path = *out + ".mut"
		}
		s := *seed
		if s == 0 {
			s = 1
		}
		ops := genMutations(g, *mutations, s)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := delta.WriteOps(f, ops); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d ops)\n", path, len(ops))
	}
}

// genMutations produces a replayable stream of n update ops against g:
// mostly weight churn on existing edges (traffic), some edge additions and
// removals (closures / new segments), and occasional vertex growth. Ops
// are generated against an evolving view so removals and weight updates
// always reference edges that exist at that point of the replay.
func genMutations(g *graph.Graph, n int, seed uint64) []delta.Op {
	rng := rand.New(rand.NewPCG(seed, 0xd1b54a32d192ed03))
	view := delta.NewView(g)
	ops := make([]delta.Op, 0, n)
	// Ops are staged and applied in chunks: View.Apply copies the overlay
	// map per call, so per-op application would be quadratic in n. The
	// view the generator samples from is therefore up to a chunk stale —
	// harmless (a remove drawn against a just-removed edge replays as the
	// same deterministic no-op) — except for vertex ids, which must count
	// staged add_vertex ops to stay unique.
	var pending []delta.Op
	pendingAdds := 0
	flush := func() {
		if len(pending) == 0 {
			return
		}
		nv, _, err := view.Apply(pending)
		if err != nil {
			fatal(fmt.Errorf("generated invalid op batch: %w", err))
		}
		view = nv
		pending = pending[:0]
		pendingAdds = 0
	}
	apply := func(op delta.Op) {
		if op.Kind == delta.OpAddVertex {
			pendingAdds++
		}
		pending = append(pending, op)
		ops = append(ops, op)
		if len(pending) >= 256 {
			flush()
		}
	}
	// randomEdge draws a vertex with out-edges and one of its edges.
	randomEdge := func() (graph.VertexID, graph.Edge, bool) {
		for try := 0; try < 32; try++ {
			v := graph.VertexID(rng.IntN(view.NumVertices()))
			if adj := view.Out(v); len(adj) > 0 {
				return v, adj[rng.IntN(len(adj))], true
			}
		}
		return 0, graph.Edge{}, false
	}
	for len(ops) < n {
		switch x := rng.Float64(); {
		case x < 0.55: // weight churn (e.g. travel-time updates)
			if v, e, ok := randomEdge(); ok {
				w := e.Weight * float32(0.5+rng.Float64()*1.5)
				apply(delta.Op{Kind: delta.OpSetWeight, From: v, To: e.To, Weight: w})
			}
		case x < 0.80: // new edge between random vertices
			u := graph.VertexID(rng.IntN(view.NumVertices()))
			v := graph.VertexID(rng.IntN(view.NumVertices()))
			w := float32(0.1 + rng.Float64()*2)
			if _, e, ok := randomEdge(); ok {
				w = e.Weight // plausible magnitude for this graph
			}
			apply(delta.Op{Kind: delta.OpAddEdge, From: u, To: v, Weight: w})
		case x < 0.92: // edge removal (closure)
			if v, e, ok := randomEdge(); ok {
				apply(delta.Op{Kind: delta.OpRemoveEdge, From: v, To: e.To})
			}
		default: // vertex growth, immediately connected both ways
			nv := graph.VertexID(view.NumVertices() + pendingAdds)
			anchor := graph.VertexID(rng.IntN(view.NumVertices()))
			w := float32(0.1 + rng.Float64()*2)
			apply(delta.Op{Kind: delta.OpAddVertex})
			apply(delta.Op{Kind: delta.OpAddEdge, From: nv, To: anchor, Weight: w})
			apply(delta.Op{Kind: delta.OpAddEdge, From: anchor, To: nv, Weight: w})
		}
	}
	flush()
	return ops
}

func printInfo(path string, g *graph.Graph) {
	fmt.Printf("%s: %d vertices, %d edges", path, g.NumVertices(), g.NumEdges())
	if g.HasCoords() {
		fmt.Printf(", coordinates")
	}
	if g.HasTags() {
		tagged := 0
		for v := 0; v < g.NumVertices(); v++ {
			if g.Tagged(graph.VertexID(v)) {
				tagged++
			}
		}
		fmt.Printf(", %d tagged", tagged)
	}
	fmt.Println()
	deg := make(map[int]int)
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		d := g.OutDegree(graph.VertexID(v))
		deg[d]++
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("max out-degree: %d, reachable from 0: %d\n", maxDeg, graph.ConnectedFrom(g, 0))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qgraph-gen:", err)
	os.Exit(1)
}
