// Command qgraphd runs one node of a distributed Q-Graph deployment over
// real TCP: either the controller (node 0) or a worker (node w+1). Every
// node loads the same QGR1 graph file and computes the same deterministic
// initial partitioning, so no partition data crosses the wire at startup.
//
// Example 9-node deployment (1 controller + 8 workers) on one host:
//
//	qgraph-gen -kind road -preset bw -scale 64 -out bw.qgr
//	for w in $(seq 0 7); do
//	  qgraphd -role worker -id $w -graph bw.qgr -addrs "$ADDRS" &
//	done
//	qgraphd -role controller -graph bw.qgr -addrs "$ADDRS" -random 64
//
// where ADDRS lists k+1 comma-separated host:port pairs, controller first.
//
// With -serve the controller exposes the HTTP/JSON query API of
// internal/serve (POST /query, GET /result/{id}, POST /mutate,
// GET /healthz, GET /stats) with admission control and a result cache,
// plus the observability surface: GET /metrics (Prometheus text),
// GET /trace/{query_id} and GET /traces?slowest=N (per-query span
// trees with phase attribution):
//
//	qgraphd -role controller -graph bw.qgr -addrs "$ADDRS" -serve :8080
//	curl -s localhost:8080/query -d '{"kind":"sssp","source":3,"target":99}'
//	curl -s localhost:8080/mutate -d '{"ops":[{"op":"add_edge","from":3,"to":99,"weight":1.5}]}'
//
// Without -serve, the controller falls back to accepting queries on stdin,
// one per line:
//
//	sssp <source> <target>
//	poi <source>
//	bfs <source> [target]
//	pagerank <source>
//
// and prints one result line per query. -random N instead runs N random
// SSSP queries and exits.
//
// With -snapshot-dir the deployment checkpoints: the controller
// periodically (per the -snapshot-every-ops / -snapshot-every-bytes /
// -snapshot-interval policy, or on POST /admin/snapshot) folds the
// committed graph into a durable snapshot and truncates its mutation log;
// a worker restarted with -rejoin replays only the ops since the newest
// checkpoint, and a full deployment restart resumes from the checkpointed
// state. Every node must point at the same directory:
//
//	qgraphd -role controller ... -serve :8080 \
//	  -snapshot-dir /var/qgraph/snaps -snapshot-every-ops 100000
//	qgraphd -role worker -id 0 ... -snapshot-dir /var/qgraph/snaps
//
// Adding -wal-dir makes commits durable: every mutation batch is fsynced
// to a write-ahead log before its HTTP response, so even a kill -9 of the
// whole deployment loses nothing — a restart recovers to the newest
// checkpoint plus the WAL tail, the exact pre-crash version. All nodes
// must point at the same directory (like -snapshot-dir):
//
//	qgraphd -role controller ... -snapshot-dir /var/qgraph/snaps \
//	  -wal-dir /var/qgraph/wal
//	qgraphd -role worker -id 0 ... -snapshot-dir /var/qgraph/snaps \
//	  -wal-dir /var/qgraph/wal
//
// Every node logs structured records (log/slog) to stderr; -log-level
// and -log-json control verbosity and format, and worker logs carry the
// trace_id of the query they execute so one grep follows a request
// across processes. -pprof-addr exposes net/http/pprof on a separate
// listener. -trace=false disables per-query tracing (the /metrics
// endpoint stays).
//
// Read-path scale-out: -role=replica runs a read-only follower that
// bootstraps from the primary's -snapshot-dir and tails its -wal-dir,
// serving the same HTTP query API (staleness-bounded; writes get 403);
// -role=router fronts the primary plus N replicas, round-robining reads
// over the replicas within the staleness bound and sending writes,
// admin, and unsatisfiable ?min_version= reads to the primary:
//
//	qgraphd -role replica -graph bw.qgr -snapshot-dir /var/qgraph/snaps \
//	  -wal-dir /var/qgraph/wal -serve :8081
//	qgraphd -role router -primary http://localhost:8080 \
//	  -replicas http://localhost:8081,http://localhost:8082 \
//	  -max-staleness-versions 16 -serve :8079
//
// SIGINT/SIGTERM shut the controller down gracefully: the HTTP listener
// closes, in-flight queries drain, and the workers are stopped through the
// protocol instead of dying mid-superstep.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math/rand/v2"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof-addr mux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/faultpoint"
	"qgraph/internal/graph"
	"qgraph/internal/metrics"
	"qgraph/internal/obs"
	"qgraph/internal/obs/health"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
	"qgraph/internal/replica"
	"qgraph/internal/router"
	"qgraph/internal/serve"
	"qgraph/internal/snapshot"
	"qgraph/internal/transport"
	"qgraph/internal/wal"
	"qgraph/internal/worker"
)

func main() {
	var (
		role       = flag.String("role", "", "controller | worker | replica | router")
		id         = flag.Int("id", 0, "worker id (role=worker)")
		graphPath  = flag.String("graph", "", "QGR1 graph file (same on all nodes)")
		addrsFlag  = flag.String("addrs", "", "comma-separated host:port list, controller first")
		adapt      = flag.Bool("adapt", true, "enable adaptive Q-cut (controller)")
		random     = flag.Int("random", 0, "run N random SSSP queries and exit (controller)")
		seed       = flag.Uint64("seed", 1, "workload seed for -random")
		serveAddr  = flag.String("serve", "", "HTTP serving address host:port (controller role; replaces the stdin REPL)")
		maxInfl    = flag.Int("max-inflight", 16, "admission: max queries executing concurrently (-serve)")
		maxQueue   = flag.Int("max-queue", 64, "admission: max queued queries before 429 (-serve)")
		cacheSize  = flag.Int("cache-size", 4096, "result cache capacity (-serve)")
		cacheTTL   = flag.Duration("cache-ttl", time.Minute, "result cache entry lifetime (-serve)")
		reqTimeout = flag.Duration("timeout", 30*time.Second, "default per-request deadline (-serve)")

		commitEvery = flag.Duration("commit-every", 250*time.Millisecond, "max time staged graph mutations wait before the commit barrier (controller)")
		barrierCmt  = flag.Bool("barrier-commit", false, "commit mutation batches under the global STOP/START barrier instead of the pipelined MVCC path (controller; pre-MVCC baseline for A/B comparison)")
		maxBatchOps = flag.Int("max-batch-ops", 4096, "commit the staged mutation batch early at this many ops (controller)")
		hbEvery     = flag.Duration("heartbeat-every", time.Second, "worker liveness probe interval; negative disables (controller)")
		hbTimeout   = flag.Duration("heartbeat-timeout", 5*time.Second, "silence after which a worker is declared dead (controller)")

		snapDir      = flag.String("snapshot-dir", "", "checkpoint directory: persist snapshots durably and restart from the newest one (all nodes must see the same directory)")
		snapKeep     = flag.Int("snapshot-keep", 2, "checkpoints retained in memory and on disk")
		snapOps      = flag.Int("snapshot-every-ops", 0, "cut a checkpoint every N committed mutation ops (controller; 0 disables)")
		snapBytes    = flag.Int64("snapshot-every-bytes", 0, "cut a checkpoint once the op log holds this many bytes (controller; 0 disables)")
		snapInterval = flag.Duration("snapshot-interval", 0, "cut a checkpoint at most this often under mutation load (controller; 0 disables)")
		walDir       = flag.String("wal-dir", "", "durable write-ahead op log directory: every committed mutation batch is fsynced before its ack, and a full restart recovers to the exact pre-crash version (all nodes must see the same directory)")
		rejoin       = flag.Bool("rejoin", false, "announce as a respawned worker: adopt state via the recovery protocol instead of assuming a fresh deployment (role=worker)")

		logLevel  = flag.String("log-level", "info", "structured log verbosity: debug | info | warn | error")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of logfmt text")
		pprofAddr = flag.String("pprof-addr", "", "expose net/http/pprof on this host:port (empty disables)")
		traceOn   = flag.Bool("trace", true, "per-query tracing for /trace and /traces (-serve); /metrics is unaffected")

		watchdog     = flag.Bool("watchdog", true, "active health layer: straggler/stall/fsync/admission watchdogs, /events, /slo, incident flight recorder (controller)")
		watchFactor  = flag.Float64("watch-straggler-factor", 4, "straggler detector k: flag a worker above k x its live peers' median per-step compute")
		watchSteps   = flag.Int("watch-straggler-steps", 3, "straggler detector m: consecutive over-threshold supersteps before firing (and under before clearing)")
		watchStall   = flag.Duration("watch-stall-timeout", 10*time.Second, "barrier-phase/superstep age after which the stall watchdog fires")
		watchFsync   = flag.Duration("watch-fsync-spike", 50*time.Millisecond, "absolute floor for the WAL fsync spike detector")
		watchAdmit   = flag.Float64("watch-admission-ratio", 0.9, "admission queue fill ratio at which the saturation detector fires")
		sloTarget    = flag.Duration("slo-target", 250*time.Millisecond, "per-request latency target for /slo accounting")
		sloObjective = flag.Float64("slo-objective", 0.99, "fraction of requests that must meet -slo-target (error budget = 1-objective)")

		faultSlowCompute = flag.Duration("fault-slow-compute", 0, "TESTING: inflate every superstep's compute by sleeping this long (role=worker; exercises the straggler watchdog)")

		replicaWorkers = flag.Int("replica-workers", 2, "local engine partitions on a read replica (role=replica)")
		replicaPoll    = flag.Duration("replica-poll", 50*time.Millisecond, "WAL tail poll interval; bounds steady-state staleness (role=replica)")
		primaryURL     = flag.String("primary", "", "primary base URL http://host:port (role=router)")
		replicasFlag   = flag.String("replicas", "", "comma-separated replica base URLs (role=router)")
		maxStaleV      = flag.Uint64("max-staleness-versions", 64, "evict a replica trailing the primary by more than this many committed versions (role=router)")
		maxStaleT      = flag.Duration("max-staleness", 0, "evict a replica continuously behind the primary for longer than this (role=router; 0 disables)")
		healthEvery    = flag.Duration("health-every", 250*time.Millisecond, "upstream health probe interval (role=router)")
		routeAffinity  = flag.Bool("route-affinity", false, "pin each read to a replica by request hash instead of round-robin, sharding the result caches across the fleet (role=router)")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, *logLevel, *logJSON, *role)
	if *pprofAddr != "" {
		go func() {
			// The blank net/http/pprof import registered its handlers on
			// http.DefaultServeMux; a nil handler serves exactly that.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof listener failed", "addr", *pprofAddr, "error", err)
			}
		}()
		logger.Info("pprof listening", "addr", *pprofAddr)
	}

	// Replica and router roles stand outside the controller/worker
	// transport topology: no -addrs, no partition agreement — they join
	// the deployment through the primary's directories (replica) or its
	// HTTP surface (router).
	switch *role {
	case "replica":
		runReplica(logger, replicaFlags{
			graphPath: *graphPath, serveAddr: *serveAddr,
			snapDir: *snapDir, walDir: *walDir,
			workers: *replicaWorkers, poll: *replicaPoll,
			maxInflight: *maxInfl, maxQueue: *maxQueue,
			cacheSize: *cacheSize, cacheTTL: *cacheTTL, timeout: *reqTimeout,
			trace: *traceOn, watchdog: *watchdog,
		})
		return
	case "router":
		runRouter(logger, routerFlags{
			serveAddr: *serveAddr, primary: *primaryURL, replicas: *replicasFlag,
			maxStaleVersions: *maxStaleV, maxStaleness: *maxStaleT,
			healthEvery: *healthEvery, affinity: *routeAffinity,
			trace: *traceOn,
		})
		return
	}

	if *serveAddr != "" && *random > 0 {
		fatal(fmt.Errorf("-serve and -random are mutually exclusive"))
	}
	if (*snapOps > 0 || *snapBytes > 0 || *snapInterval > 0) && *snapDir == "" {
		// Policy-driven truncation without a shared durable store would
		// leave rejoining workers unable to resolve the replay base.
		fatal(fmt.Errorf("snapshot policy flags require -snapshot-dir"))
	}
	addrs := strings.Split(*addrsFlag, ",")
	if *addrsFlag == "" || len(addrs) < 2 {
		fatal(fmt.Errorf("-addrs needs at least controller plus one worker"))
	}
	k := len(addrs) - 1
	if *graphPath == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	g, err := graph.LoadFile(*graphPath)
	if err != nil {
		fatal(err)
	}
	// Restart-from-checkpoint: with -snapshot-dir, every node loads the
	// newest durable snapshot as its base graph, so a full deployment
	// restart resumes at the checkpointed version instead of replaying a
	// mutation history that no longer exists. All nodes must see the same
	// directory — they load the same file and agree on the base version
	// byte for byte, exactly as they agree on the original graph file.
	baseG, baseV := g, uint64(0)
	var snapStore *snapshot.Store
	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			fatal(err)
		}
		snapStore = snapshot.NewStore(*snapDir, *snapKeep)
		snap, err := snapshot.LoadLatest(*snapDir)
		if err != nil {
			fatal(err)
		}
		if snap != nil {
			baseG, baseV = snap.Graph, snap.Version
			fmt.Printf("qgraphd: restored checkpoint version %d (%d vertices, %d edges) from %s\n",
				snap.Version, baseG.NumVertices(), baseG.NumEdges(), *snapDir)
		}
	}
	// WAL recovery: replay the durable op-log tail beyond the checkpoint,
	// so a kill -9 loses nothing that was ever acknowledged. Every node
	// reads the same directory and lands on the same version, exactly as
	// with the checkpoint; only the controller keeps the log open for
	// appends.
	var walLog *wal.WAL
	if *walDir != "" {
		// The WAL's graph identity is the original graph file (the version
		// chain starts from it, whatever checkpoint we restored on top).
		wid := graphID(*graphPath, g)
		recovered, v, err := wal.RecoverGraph(*walDir, wid, baseG, baseV)
		if err != nil {
			fatal(err)
		}
		if v > baseV {
			fmt.Printf("qgraphd: wal replayed versions %d..%d, recovered to version %d\n", baseV+1, v, v)
		}
		baseG, baseV = recovered, v
		if *role == "controller" {
			if walLog, err = wal.Open(*walDir, wid); err != nil {
				fatal(err)
			}
			defer walLog.Close()
			if err := walLog.Rebase(baseV); err != nil {
				fatal(err)
			}
		}
	}
	// Deterministic initial partitioning, identical on every node.
	assign, err := partition.Hash{}.Partition(baseG, k)
	if err != nil {
		fatal(err)
	}

	switch *role {
	case "worker":
		if *id < 0 || *id >= k {
			fatal(fmt.Errorf("worker id %d out of range [0,%d)", *id, k))
		}
		if *faultSlowCompute > 0 {
			// Deterministic straggler injection: the compute-slow faultpoint
			// sits inside the measured superstep window, so the sleep shows
			// up in this worker's reported ComputeNS and the controller's
			// straggler watchdog sees a genuinely slow worker.
			d := *faultSlowCompute
			faultpoint.Arm(faultpoint.WorkerComputeSlow, func(...int) bool {
				time.Sleep(d)
				return false
			})
			logger.Warn("fault injection armed: slow compute", "sleep", d.String())
		}
		node, err := transport.NewTCPNode(protocol.WorkerNode(partition.WorkerID(*id)), addrs)
		if err != nil {
			fatal(err)
		}
		defer node.Close()
		w, err := worker.New(worker.Config{
			ID: partition.WorkerID(*id), K: k, Graph: baseG, Owner: assign,
			BaseVersion: baseV, Snapshots: snapStore, Rejoin: *rejoin,
			Logger: logger, // worker log sites self-tag with their id
		}, node)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("qgraphd: worker %d serving %d vertices on %s\n",
			*id, countOwned(assign, partition.WorkerID(*id)), node.Addr())
		if err := w.Run(); err != nil {
			fatal(err)
		}
	case "controller":
		node, err := transport.NewTCPNode(protocol.ControllerNode, addrs)
		if err != nil {
			fatal(err)
		}
		defer node.Close()
		rec := metrics.NewRecorder(time.Now())
		// One Obs instance shared by the controller and the serving layer:
		// the controller registers its barrier/worker/WAL instruments and
		// extends request traces; serve adds the HTTP-side instruments and
		// exposes everything at /metrics, /trace, /traces.
		o := obs.New(logger)
		// The health monitor is shared the same way as Obs: the controller
		// feeds compute/fsync/stall/lifecycle signals, the serving layer
		// feeds admission/SLO signals and exposes /events, /slo, /healthz
		// degradation, and the incident flight recorder.
		var mon *health.Monitor
		if *watchdog {
			mon = health.New(health.Config{
				StragglerFactor: *watchFactor,
				StragglerSteps:  *watchSteps,
				StallTimeout:    *watchStall,
				FsyncSpikeMin:   *watchFsync,
				AdmissionRatio:  *watchAdmit,
				SLOTarget:       *sloTarget,
				SLOObjective:    *sloObjective,
			}, o)
			transport.SetOnCodecReject(func(remote string, peerVersion, localVersion uint8) {
				mon.Record(health.EventCodecReject, health.SevWarn, -1,
					fmt.Sprintf("rejected peer %s: codec version %d != local %d", remote, peerVersion, localVersion),
					map[string]any{"remote": remote, "peer_version": peerVersion, "local_version": localVersion})
			})
		}
		ctrl, err := controller.New(controller.Config{
			K: k, Graph: baseG, Owner: assign, Adapt: *adapt, Recorder: rec,
			Obs: o, Monitor: mon,
			CommitEvery: *commitEvery, MaxBatchOps: *maxBatchOps,
			BarrierCommit:  *barrierCmt,
			HeartbeatEvery: *hbEvery, HeartbeatTimeout: *hbTimeout,
			Snapshots: snapStore, BaseVersion: baseV, WAL: walLog,
			SnapshotPolicy: snapshot.Policy{
				EveryOps: *snapOps, EveryBytes: *snapBytes, Interval: *snapInterval,
			},
		}, node)
		if err != nil {
			fatal(err)
		}
		errCh := make(chan error, 1)
		go func() { errCh <- ctrl.Run() }()
		fmt.Printf("qgraphd: controller for %d workers on %s\n", k, node.Addr())

		// Graceful shutdown: the first SIGINT/SIGTERM drains; a second
		// signal kills the process the default way.
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSignals()

		switch {
		case *serveAddr != "":
			srv, err := serve.New(serve.Config{
				Backend: ctrl,
				GraphID: graphID(*graphPath, baseG),
				Admit: serve.AdmitConfig{
					MaxInFlight: *maxInfl,
					MaxQueue:    *maxQueue,
				},
				CacheSize:      *cacheSize,
				CacheTTL:       *cacheTTL,
				DefaultTimeout: *reqTimeout,
				Obs:            o,
				Monitor:        mon,
				NoTrace:        !*traceOn,
				NodeID:         *serveAddr,
				Role:           "primary",
			})
			if err != nil {
				fatal(err)
			}
			httpSrv := &http.Server{Addr: *serveAddr, Handler: srv.Handler()}
			httpErr := make(chan error, 1)
			go func() { httpErr <- httpSrv.ListenAndServe() }()
			fmt.Printf("qgraphd: serving queries on http://%s (POST /query)\n", *serveAddr)
			select {
			case <-ctx.Done():
				fmt.Println("qgraphd: signal received, draining")
			case err := <-httpErr:
				if !errors.Is(err, http.ErrServerClosed) {
					fatal(err)
				}
			case err := <-errCh:
				// The engine died; serving 503s behind a green /healthz
				// helps nobody — close the listener and exit loudly.
				_ = httpSrv.Close()
				if err == nil {
					err = fmt.Errorf("controller stopped unexpectedly")
				}
				fatal(fmt.Errorf("controller failed: %w", err))
			}
			// Restore default signal disposition so a second signal kills
			// the process instead of being swallowed during the drain.
			stopSignals()
			shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			_ = httpSrv.Shutdown(shutCtx)
			if err := srv.Drain(shutCtx); err != nil {
				fmt.Println("qgraphd: drain timed out, stopping anyway")
			}
			cancel()
			snap := srv.Counters().Snapshot(time.Now())
			fmt.Printf("served: %d completed, %d rejected, %d expired, hit ratio %.2f, %.1f qps\n",
				snap.Completed, snap.Rejected, snap.Expired, snap.HitRatio, snap.QPS)
		case *random > 0:
			runRandom(ctx, ctrl, baseG, *random, *seed)
			stopSignals()
		default:
			serveStdin(ctx, ctrl)
			stopSignals()
		}
		sum := rec.Summarize()
		fmt.Printf("done: %d queries, total %.3fs, mean %.2fms, locality %.2f\n",
			sum.Count, sum.TotalLatency.Seconds(),
			float64(sum.MeanLatency.Microseconds())/1000, sum.MeanLocality)
		ctrl.Stop()
		if err := <-errCh; err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("-role must be controller, worker, replica, or router"))
	}
}

// replicaFlags carries the -role=replica configuration out of main.
type replicaFlags struct {
	graphPath, serveAddr, snapDir, walDir string
	workers                               int
	poll                                  time.Duration
	maxInflight, maxQueue, cacheSize      int
	cacheTTL, timeout                     time.Duration
	trace, watchdog                       bool
}

// runReplica runs a read-only follower: bootstrap from the primary's
// checkpoint directory plus WAL tail, tail the WAL for new commits, and
// serve the standard HTTP query API in read-only mode.
func runReplica(logger *slog.Logger, f replicaFlags) {
	if f.graphPath == "" {
		fatal(fmt.Errorf("-role=replica requires -graph (the primary's graph file)"))
	}
	if f.walDir == "" {
		fatal(fmt.Errorf("-role=replica requires -wal-dir (the primary's WAL directory)"))
	}
	if f.serveAddr == "" {
		fatal(fmt.Errorf("-role=replica requires -serve"))
	}
	g, err := graph.LoadFile(f.graphPath)
	if err != nil {
		fatal(err)
	}
	o := obs.New(logger)
	var mon *health.Monitor
	if f.watchdog {
		mon = health.New(health.Config{}, o)
	}
	rep, err := replica.Start(replica.Config{
		SnapshotDir: f.snapDir,
		WALDir:      f.walDir,
		// The WAL graph identity is derived from the original graph file,
		// exactly as the primary computes it — a mismatched directory
		// refuses to open instead of replaying someone else's history.
		GraphID:   graphID(f.graphPath, g),
		Base:      g,
		Workers:   f.workers,
		PollEvery: f.poll,
		Obs:       o,
		Monitor:   mon,
		Logger:    logger,
	})
	if err != nil {
		fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Backend:     rep,
		GraphID:     graphID(f.graphPath, g),
		ReadOnly:    true,
		Replication: rep.Info,
		Admit: serve.AdmitConfig{
			MaxInFlight: f.maxInflight,
			MaxQueue:    f.maxQueue,
		},
		CacheSize:      f.cacheSize,
		CacheTTL:       f.cacheTTL,
		DefaultTimeout: f.timeout,
		Obs:            o,
		Monitor:        mon,
		NoTrace:        !f.trace,
		NodeID:         f.serveAddr,
		Role:           "replica",
	})
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Addr: f.serveAddr, Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.ListenAndServe() }()
	info := rep.Info()
	fmt.Printf("qgraphd: replica serving reads on http://%s (bootstrapped at version %d, tailing %s)\n",
		f.serveAddr, info.BootstrapVersion, f.walDir)

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case <-ctx.Done():
		fmt.Println("qgraphd: signal received, draining")
	case err := <-httpErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	stopSignals()
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	_ = httpSrv.Shutdown(shutCtx)
	_ = srv.Drain(shutCtx)
	cancel()
	info = rep.Info()
	_ = rep.Close()
	fmt.Printf("replica: applied version %d, %d tail batches, %d re-bootstraps\n",
		info.AppliedVersion, info.TailBatches, info.Rebootstraps)
}

// routerFlags carries the -role=router configuration out of main.
type routerFlags struct {
	serveAddr, primary, replicas string
	maxStaleVersions             uint64
	maxStaleness, healthEvery    time.Duration
	affinity, trace              bool
}

// runRouter fronts a primary plus N replicas: reads round-robin over the
// replicas within the staleness bound, writes and admin go to the
// primary.
func runRouter(logger *slog.Logger, f routerFlags) {
	if f.primary == "" {
		fatal(fmt.Errorf("-role=router requires -primary"))
	}
	if f.serveAddr == "" {
		fatal(fmt.Errorf("-role=router requires -serve"))
	}
	var reps []string
	for _, u := range strings.Split(f.replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			reps = append(reps, u)
		}
	}
	rt, err := router.New(router.Config{
		Primary:              f.primary,
		Replicas:             reps,
		MaxStalenessVersions: f.maxStaleVersions,
		MaxStaleness:         f.maxStaleness,
		HealthEvery:          f.healthEvery,
		Affinity:             f.affinity,
		Logger:               logger,
		Obs:                  obs.New(logger),
		NoTrace:              !f.trace,
		SelfName:             f.serveAddr,
	})
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Addr: f.serveAddr, Handler: rt}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.ListenAndServe() }()
	fmt.Printf("qgraphd: router on http://%s (primary %s, %d replicas)\n",
		f.serveAddr, f.primary, len(reps))

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case <-ctx.Done():
		fmt.Println("qgraphd: signal received, closing")
	case err := <-httpErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	stopSignals()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = httpSrv.Shutdown(shutCtx)
	cancel()
	rt.Close()
}

func countOwned(a partition.Assignment, w partition.WorkerID) int {
	n := 0
	for _, o := range a {
		if o == w {
			n++
		}
	}
	return n
}

// graphID derives a stable base-graph identity for the cache epoch from
// the graph file identity and shape.
func graphID(path string, g *graph.Graph) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	fmt.Fprintf(h, "|%d|%d", g.NumVertices(), g.NumEdges())
	return h.Sum64()
}

func runRandom(ctx context.Context, ctrl *controller.Controller, g *graph.Graph, n int, seed uint64) {
	rng := rand.New(rand.NewPCG(seed, 77))
	type pending struct {
		spec query.Spec
		ch   <-chan controller.Result
	}
	var ps []pending
	for i := 0; i < n; i++ {
		spec := query.Spec{
			ID:     query.ID(i + 1),
			Kind:   query.KindSSSP,
			Source: graph.VertexID(rng.IntN(g.NumVertices())),
			Target: graph.VertexID(rng.IntN(g.NumVertices())),
		}
		ch, err := ctrl.Schedule(spec)
		if err != nil {
			fatal(err)
		}
		ps = append(ps, pending{spec: spec, ch: ch})
	}
	for _, p := range ps {
		select {
		case res := <-p.ch:
			fmt.Printf("sssp %d->%d dist=%g latency=%s steps=%d local=%d\n",
				p.spec.Source, p.spec.Target, res.Value, res.Latency.Round(time.Microsecond),
				res.Supersteps, res.LocalIters)
		case <-ctx.Done():
			fmt.Println("qgraphd: signal received, abandoning remaining queries")
			return
		}
	}
}

func serveStdin(ctx context.Context, ctrl *controller.Controller) {
	lines := make(chan string)
	go func() {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	nextID := query.ID(1)
	for {
		var line string
		var ok bool
		select {
		case line, ok = <-lines:
			if !ok {
				return
			}
		case <-ctx.Done():
			fmt.Println("qgraphd: signal received, closing REPL")
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		spec, err := parseQuery(fields, nextID)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		nextID++
		ch, err := ctrl.Schedule(spec)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		select {
		case res := <-ch:
			fmt.Printf("%s result=%g latency=%s steps=%d touched=%d workers=%d\n",
				fields[0], res.Value, res.Latency.Round(time.Microsecond),
				res.Supersteps, res.Touched, res.Workers)
		case <-ctx.Done():
			ctrl.Cancel(spec.ID)
			fmt.Println("qgraphd: signal received, cancelling query")
			return
		}
	}
}

func parseQuery(fields []string, id query.ID) (query.Spec, error) {
	atoi := func(s string) (graph.VertexID, error) {
		v, err := strconv.ParseInt(s, 10, 32)
		return graph.VertexID(v), err
	}
	spec := query.Spec{ID: id, Target: graph.NilVertex}
	var err error
	switch fields[0] {
	case "sssp":
		if len(fields) != 3 {
			return spec, fmt.Errorf("usage: sssp <src> <dst>")
		}
		spec.Kind = query.KindSSSP
		if spec.Source, err = atoi(fields[1]); err != nil {
			return spec, err
		}
		spec.Target, err = atoi(fields[2])
	case "poi":
		if len(fields) != 2 {
			return spec, fmt.Errorf("usage: poi <src>")
		}
		spec.Kind = query.KindPOI
		spec.Source, err = atoi(fields[1])
	case "bfs":
		if len(fields) < 2 || len(fields) > 3 {
			return spec, fmt.Errorf("usage: bfs <src> [dst]")
		}
		spec.Kind = query.KindBFS
		if spec.Source, err = atoi(fields[1]); err != nil {
			return spec, err
		}
		if len(fields) == 3 {
			spec.Target, err = atoi(fields[2])
		}
	case "pagerank":
		if len(fields) != 2 {
			return spec, fmt.Errorf("usage: pagerank <src>")
		}
		spec.Kind = query.KindPageRank
		spec.MaxIters = 20
		spec.Epsilon = 1e-4
		spec.Source, err = atoi(fields[1])
	default:
		return spec, fmt.Errorf("unknown query kind %q", fields[0])
	}
	return spec, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qgraphd:", err)
	os.Exit(1)
}
