// Command qgraphd runs one node of a distributed Q-Graph deployment over
// real TCP: either the controller (node 0) or a worker (node w+1). Every
// node loads the same QGR1 graph file and computes the same deterministic
// initial partitioning, so no partition data crosses the wire at startup.
//
// Example 9-node deployment (1 controller + 8 workers) on one host:
//
//	qgraph-gen -kind road -preset bw -scale 64 -out bw.qgr
//	for w in $(seq 0 7); do
//	  qgraphd -role worker -id $w -graph bw.qgr -addrs "$ADDRS" &
//	done
//	qgraphd -role controller -graph bw.qgr -addrs "$ADDRS" -random 64
//
// where ADDRS lists k+1 comma-separated host:port pairs, controller first.
//
// The controller accepts queries on stdin, one per line:
//
//	sssp <source> <target>
//	poi <source>
//	bfs <source> [target]
//	pagerank <source>
//
// and prints one result line per query. -random N instead runs N random
// SSSP queries and exits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/graph"
	"qgraph/internal/metrics"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
	"qgraph/internal/transport"
	"qgraph/internal/worker"
)

func main() {
	var (
		role      = flag.String("role", "", "controller | worker")
		id        = flag.Int("id", 0, "worker id (role=worker)")
		graphPath = flag.String("graph", "", "QGR1 graph file (same on all nodes)")
		addrsFlag = flag.String("addrs", "", "comma-separated host:port list, controller first")
		adapt     = flag.Bool("adapt", true, "enable adaptive Q-cut (controller)")
		random    = flag.Int("random", 0, "run N random SSSP queries and exit (controller)")
		seed      = flag.Uint64("seed", 1, "workload seed for -random")
	)
	flag.Parse()

	addrs := strings.Split(*addrsFlag, ",")
	if *addrsFlag == "" || len(addrs) < 2 {
		fatal(fmt.Errorf("-addrs needs at least controller plus one worker"))
	}
	k := len(addrs) - 1
	if *graphPath == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	g, err := graph.LoadFile(*graphPath)
	if err != nil {
		fatal(err)
	}
	// Deterministic initial partitioning, identical on every node.
	assign, err := partition.Hash{}.Partition(g, k)
	if err != nil {
		fatal(err)
	}

	switch *role {
	case "worker":
		if *id < 0 || *id >= k {
			fatal(fmt.Errorf("worker id %d out of range [0,%d)", *id, k))
		}
		node, err := transport.NewTCPNode(protocol.WorkerNode(partition.WorkerID(*id)), addrs)
		if err != nil {
			fatal(err)
		}
		defer node.Close()
		w, err := worker.New(worker.Config{
			ID: partition.WorkerID(*id), K: k, Graph: g, Owner: assign,
		}, node)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("qgraphd: worker %d serving %d vertices on %s\n",
			*id, countOwned(assign, partition.WorkerID(*id)), node.Addr())
		if err := w.Run(); err != nil {
			fatal(err)
		}
	case "controller":
		node, err := transport.NewTCPNode(protocol.ControllerNode, addrs)
		if err != nil {
			fatal(err)
		}
		defer node.Close()
		rec := metrics.NewRecorder(time.Now())
		ctrl, err := controller.New(controller.Config{
			K: k, Graph: g, Owner: assign, Adapt: *adapt, Recorder: rec,
		}, node)
		if err != nil {
			fatal(err)
		}
		errCh := make(chan error, 1)
		go func() { errCh <- ctrl.Run() }()
		fmt.Printf("qgraphd: controller for %d workers on %s\n", k, node.Addr())

		if *random > 0 {
			runRandom(ctrl, g, *random, *seed)
		} else {
			serveStdin(ctrl, g)
		}
		sum := rec.Summarize()
		fmt.Printf("done: %d queries, total %.3fs, mean %.2fms, locality %.2f\n",
			sum.Count, sum.TotalLatency.Seconds(),
			float64(sum.MeanLatency.Microseconds())/1000, sum.MeanLocality)
		ctrl.Stop()
		if err := <-errCh; err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("-role must be controller or worker"))
	}
}

func countOwned(a partition.Assignment, w partition.WorkerID) int {
	n := 0
	for _, o := range a {
		if o == w {
			n++
		}
	}
	return n
}

func runRandom(ctrl *controller.Controller, g *graph.Graph, n int, seed uint64) {
	rng := rand.New(rand.NewPCG(seed, 77))
	type pending struct {
		spec query.Spec
		ch   <-chan controller.Result
	}
	var ps []pending
	for i := 0; i < n; i++ {
		spec := query.Spec{
			ID:     query.ID(i + 1),
			Kind:   query.KindSSSP,
			Source: graph.VertexID(rng.IntN(g.NumVertices())),
			Target: graph.VertexID(rng.IntN(g.NumVertices())),
		}
		ch, err := ctrl.Schedule(spec)
		if err != nil {
			fatal(err)
		}
		ps = append(ps, pending{spec: spec, ch: ch})
	}
	for _, p := range ps {
		res := <-p.ch
		fmt.Printf("sssp %d->%d dist=%g latency=%s steps=%d local=%d\n",
			p.spec.Source, p.spec.Target, res.Value, res.Latency.Round(time.Microsecond),
			res.Supersteps, res.LocalIters)
	}
}

func serveStdin(ctrl *controller.Controller, g *graph.Graph) {
	sc := bufio.NewScanner(os.Stdin)
	nextID := query.ID(1)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		spec, err := parseQuery(fields, nextID)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		nextID++
		ch, err := ctrl.Schedule(spec)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		res := <-ch
		fmt.Printf("%s result=%g latency=%s steps=%d touched=%d workers=%d\n",
			fields[0], res.Value, res.Latency.Round(time.Microsecond),
			res.Supersteps, res.Touched, res.Workers)
	}
	_ = g
}

func parseQuery(fields []string, id query.ID) (query.Spec, error) {
	atoi := func(s string) (graph.VertexID, error) {
		v, err := strconv.ParseInt(s, 10, 32)
		return graph.VertexID(v), err
	}
	spec := query.Spec{ID: id, Target: graph.NilVertex}
	var err error
	switch fields[0] {
	case "sssp":
		if len(fields) != 3 {
			return spec, fmt.Errorf("usage: sssp <src> <dst>")
		}
		spec.Kind = query.KindSSSP
		if spec.Source, err = atoi(fields[1]); err != nil {
			return spec, err
		}
		spec.Target, err = atoi(fields[2])
	case "poi":
		if len(fields) != 2 {
			return spec, fmt.Errorf("usage: poi <src>")
		}
		spec.Kind = query.KindPOI
		spec.Source, err = atoi(fields[1])
	case "bfs":
		if len(fields) < 2 || len(fields) > 3 {
			return spec, fmt.Errorf("usage: bfs <src> [dst]")
		}
		spec.Kind = query.KindBFS
		if spec.Source, err = atoi(fields[1]); err != nil {
			return spec, err
		}
		if len(fields) == 3 {
			spec.Target, err = atoi(fields[2])
		}
	case "pagerank":
		if len(fields) != 2 {
			return spec, fmt.Errorf("usage: pagerank <src>")
		}
		spec.Kind = query.KindPageRank
		spec.MaxIters = 20
		spec.Epsilon = 1e-4
		spec.Source, err = atoi(fields[1])
	default:
		return spec, fmt.Errorf("unknown query kind %q", fields[0])
	}
	return spec, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qgraphd:", err)
	os.Exit(1)
}
