package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
)

// TestMVCCSnapshotIsolation is the pipeline's isolation property: a query
// pinned at version v never observes any batch committed at v+1..v+k,
// however many commits land while it runs.
//
// The probe graph separates two coupled reads by a long chain:
//
//	0 --e1--> 1 --(m-1 unit hops)--> m --e2--> m+1
//
// so SSSP 0→m+1 reads e1 on its first superstep and e2 dozens of
// supersteps later. A writer rewrites both edges in one atomic batch,
// preserving w(e1)+w(e2) == 20 in every committed version; a reader that
// mixed two versions across its run would report a distance off the
// invariant sum. Meant to run under -race (CI does): the assertion covers
// isolation, the detector covers the pin/publish bookkeeping.
func TestMVCCSnapshotIsolation(t *testing.T) {
	const m = 64
	const readers, queriesEach = 4, 8
	b := graph.NewBuilder(m + 2)
	b.AddEdge(0, 1, 10)
	for v := 1; v < m; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	b.AddEdge(m, m+1, 10)
	g := b.MustBuild()
	want := 20.0 + float64(m-1)

	cfg := Config{Workers: 3, Graph: g, Partitioner: partition.Hash{}}
	fastCommit(&cfg)
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// The writer hammers invariant-preserving rewrites until the readers
	// finish. Failures surface on errCh; t.Fatal must not fire off the
	// test goroutine.
	errCh := make(chan error, readers*queriesEach+1)
	stop := make(chan struct{})
	var commits atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			x := float32((i * 7) % 10)
			ch, err := eng.Mutate([]delta.Op{
				{Kind: delta.OpSetWeight, From: 0, To: 1, Weight: 10 + x},
				{Kind: delta.OpSetWeight, From: m, To: m + 1, Weight: 10 - x},
			})
			if err != nil {
				errCh <- fmt.Errorf("mutate: %w", err)
				return
			}
			select {
			case res := <-ch:
				if res.Err != nil {
					errCh <- fmt.Errorf("commit: %w", res.Err)
					return
				}
				commits.Add(1)
			case <-time.After(30 * time.Second):
				errCh <- fmt.Errorf("commit %d never resolved", i)
				return
			}
		}
	}()

	var done sync.WaitGroup
	for r := 0; r < readers; r++ {
		done.Add(1)
		go func(r int) {
			defer done.Done()
			for i := 0; i < queriesEach; i++ {
				id := query.ID(1 + r*queriesEach + i)
				h, err := eng.Schedule(query.Spec{
					ID: id, Kind: query.KindSSSP, Source: 0, Target: m + 1,
				})
				if err != nil {
					errCh <- fmt.Errorf("schedule %d: %w", id, err)
					return
				}
				res := h.Wait()
				if res.Reason != protocol.FinishConverged && res.Reason != protocol.FinishEarly {
					errCh <- fmt.Errorf("query %d finished %v", id, res.Reason)
					return
				}
				if res.Value != want {
					errCh <- fmt.Errorf("query %d observed a mixed-version graph: distance %g, want %g (every committed version preserves the sum)",
						id, res.Value, want)
					return
				}
			}
		}(r)
	}
	done.Wait()
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	if n := commits.Load(); n < 5 {
		t.Fatalf("only %d commits landed during %d long queries: no real concurrency exercised", n, readers*queriesEach)
	}
	st := eng.MVCCStats()
	if !st.Pipelined {
		t.Fatal("engine not on the pipelined commit path")
	}
	if st.Pinned != 0 {
		t.Fatalf("registry leaks pins after quiescence: %+v", st)
	}
	if st.Latest != eng.GraphVersion() {
		t.Fatalf("registry latest %d != committed version %d", st.Latest, eng.GraphVersion())
	}
}
