package core

import (
	"time"

	"math"
	"math/rand/v2"
	"testing"

	"qgraph/internal/controller"
	"qgraph/internal/gen"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
)

// testRoad returns a small but non-trivial road network shared by the
// engine tests.
func testRoad(t testing.TB) *gen.RoadNet {
	t.Helper()
	cfg := gen.RoadConfig{
		CellsX: 24, CellsY: 24, CellKM: 0.5, Jitter: 0.3,
		RemoveProb: 0.08, DiagProb: 0.05,
		HighwayEvery: 8, LocalSpeed: 50, HighwaySpeed: 110,
		NumCities: 4, ZipfS: 1, TagProb: 0.01, Seed: 7,
	}
	net, err := gen.Road(cfg)
	if err != nil {
		t.Fatalf("gen.Road: %v", err)
	}
	return net
}

func startEngine(t testing.TB, g *graph.Graph, mut func(*Config)) *Engine {
	t.Helper()
	cfg := Config{Workers: 4, Graph: g, Partitioner: partition.Hash{}}
	if mut != nil {
		mut(&cfg)
	}
	eng, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		if err := eng.Close(); err != nil {
			t.Errorf("engine error: %v", err)
		}
		for _, wk := range eng.Workers() {
			if wk.Forwarded != 0 {
				t.Errorf("worker forwarded %d stale vertex messages", wk.Forwarded)
			}
		}
	})
	return eng
}

// TestSSSPMatchesDijkstra is the central correctness property: distributed
// execution returns exactly the sequential shortest-path distances, for
// every barrier mode.
func TestSSSPMatchesDijkstra(t *testing.T) {
	net := testRoad(t)
	for _, mode := range []controller.SyncMode{controller.SyncHybrid, controller.SyncLimited, controller.SyncGlobal} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			eng := startEngine(t, net.G, func(c *Config) { c.Mode = mode })
			rng := rand.New(rand.NewPCG(42, 42))
			n := net.G.NumVertices()
			for i := 0; i < 15; i++ {
				src := graph.VertexID(rng.IntN(n))
				dst := graph.VertexID(rng.IntN(n))
				h, err := eng.Schedule(query.Spec{
					ID: query.ID(i + 1), Kind: query.KindSSSP, Source: src, Target: dst,
				})
				if err != nil {
					t.Fatalf("schedule: %v", err)
				}
				res := h.Wait()
				want := graph.DijkstraTo(net.G, src, dst)
				if math.Abs(res.Value-want) > 1e-6*math.Max(1, want) {
					t.Fatalf("query %d (%d→%d): got %v, want %v (reason %d)",
						i+1, src, dst, res.Value, want, res.Reason)
				}
			}
		})
	}
}

// TestPOIMatchesReference checks the POI query against sequential nearest-
// tagged search.
func TestPOIMatchesReference(t *testing.T) {
	net := testRoad(t)
	eng := startEngine(t, net.G, nil)
	rng := rand.New(rand.NewPCG(7, 7))
	n := net.G.NumVertices()
	for i := 0; i < 10; i++ {
		src := graph.VertexID(rng.IntN(n))
		h, err := eng.Schedule(query.Spec{
			ID: query.ID(100 + i), Kind: query.KindPOI, Source: src, Target: graph.NilVertex,
		})
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		res := h.Wait()
		_, want := graph.NearestTagged(net.G, src)
		if math.Abs(res.Value-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("POI from %d: got %v, want %v", src, res.Value, want)
		}
	}
}

// TestParallelQueriesIsolated runs many queries concurrently and checks
// every result against the reference: query-private data must never leak
// between queries.
func TestParallelQueriesIsolated(t *testing.T) {
	net := testRoad(t)
	eng := startEngine(t, net.G, nil)
	rng := rand.New(rand.NewPCG(11, 13))
	n := net.G.NumVertices()
	type qw struct {
		h    *Handle
		want float64
	}
	var qs []qw
	for i := 0; i < 32; i++ {
		src := graph.VertexID(rng.IntN(n))
		dst := graph.VertexID(rng.IntN(n))
		h, err := eng.Schedule(query.Spec{
			ID: query.ID(i + 1), Kind: query.KindSSSP, Source: src, Target: dst,
		})
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		qs = append(qs, qw{h: h, want: graph.DijkstraTo(net.G, src, dst)})
	}
	for i, q := range qs {
		res := q.h.Wait()
		if math.Abs(res.Value-q.want) > 1e-6*math.Max(1, q.want) {
			t.Fatalf("parallel query %d: got %v, want %v", i+1, res.Value, q.want)
		}
	}
}

// TestBFSFloodConverges checks a flood query with no target terminates by
// convergence and touches the whole (connected) graph.
func TestBFSFloodConverges(t *testing.T) {
	net := testRoad(t)
	eng := startEngine(t, net.G, nil)
	h, err := eng.Schedule(query.Spec{
		ID: 1, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex,
	})
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	res := h.Wait()
	if res.Reason != protocol.FinishConverged {
		t.Fatalf("reason = %d, want converged", res.Reason)
	}
	want := graph.ConnectedFrom(net.G, 0)
	if res.Touched != want {
		t.Fatalf("touched %d vertices, want %d", res.Touched, want)
	}
}

// TestPageRankMassMatchesReference compares the distributed localized
// PageRank against the sequential push reference within float tolerance.
func TestPageRankMassMatchesReference(t *testing.T) {
	net := testRoad(t)
	eng := startEngine(t, net.G, nil)
	spec := query.Spec{
		ID: 1, Kind: query.KindPageRank, Source: 5,
		Target: graph.NilVertex, MaxIters: 15, Epsilon: 1e-4,
	}
	h, err := eng.Schedule(spec)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	res := h.Wait()
	ref := query.RefPageRank(net.G, spec)
	if res.Touched != len(ref) {
		t.Fatalf("touched %d vertices, reference %d", res.Touched, len(ref))
	}
}

// TestDuplicateQueryIDRejected: reusing a query id (active or recently
// finished) must be rejected instead of corrupting engine state.
func TestDuplicateQueryIDRejected(t *testing.T) {
	net := testRoad(t)
	eng := startEngine(t, net.G, nil)
	h1, err := eng.Schedule(query.Spec{ID: 5, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	if res := h1.Wait(); res.Reason == protocol.FinishRejected {
		t.Fatal("first use rejected")
	}
	h2, err := eng.Schedule(query.Spec{ID: 5, Kind: query.KindBFS, Source: 1, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	if res := h2.Wait(); res.Reason != protocol.FinishRejected {
		t.Fatalf("windowed duplicate accepted: %+v", res)
	}
	// A fresh id still works after the rejection.
	h3, err := eng.Schedule(query.Spec{ID: 6, Kind: query.KindBFS, Source: 1, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	if res := h3.Wait(); res.Reason != protocol.FinishConverged {
		t.Fatalf("engine unhealthy after rejection: %+v", res)
	}
}

// TestInvalidSpecsRejected: malformed specs fail fast at Schedule.
func TestInvalidSpecsRejected(t *testing.T) {
	net := testRoad(t)
	eng := startEngine(t, net.G, nil)
	bad := []query.Spec{
		{ID: 1, Kind: query.KindSSSP, Source: -1, Target: 0},
		{ID: 2, Kind: query.KindSSSP, Source: 0, Target: graph.VertexID(net.G.NumVertices())},
		{ID: 3, Kind: query.Kind(77), Source: 0, Target: graph.NilVertex},
		{ID: 4, Kind: query.KindPageRank, Source: 0, Target: graph.NilVertex}, // no bounds
	}
	for i, spec := range bad {
		if _, err := eng.Schedule(spec); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

// TestCloseWithInflightQueries: closing the engine mid-flight delivers
// cancelled results rather than deadlocking.
func TestCloseWithInflightQueries(t *testing.T) {
	net := testRoad(t)
	eng, err := Start(Config{Workers: 4, Graph: net.G, Partitioner: partition.Hash{}})
	if err != nil {
		t.Fatal(err)
	}
	var handles []*Handle
	for i := 0; i < 8; i++ {
		h, err := eng.Schedule(query.Spec{
			ID: query.ID(i + 1), Kind: query.KindBFS,
			Source: graph.VertexID(i), Target: graph.NilVertex,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	done := make(chan struct{})
	go func() {
		for _, h := range handles {
			h.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handles blocked after Close")
	}
}

// TestCancelQuery exercises the serving layer's abandonment path on a
// real engine: a long-running query is cancelled mid-flight, finishes
// promptly with FinishCancelled, and the engine keeps answering fresh
// queries correctly afterwards.
func TestCancelQuery(t *testing.T) {
	net := testRoad(t)
	eng := startEngine(t, net.G, func(c *Config) {
		c.ComputeCost = 50 * time.Microsecond // keep the victim running a while
	})

	// A flooding BFS with a huge superstep budget runs long enough that
	// the cancel lands while it is executing.
	h, err := eng.Schedule(query.Spec{
		ID: 1, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex, MaxIters: 10000,
	})
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	eng.Cancel(1)
	select {
	case res := <-h.Done():
		// FinishCancelled if the cancel landed in time; a small graph may
		// legitimately converge first, but it must not hang either way.
		if res.Reason != protocol.FinishCancelled && res.Reason != protocol.FinishConverged {
			t.Fatalf("reason %v, want cancelled or converged", res.Reason)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled query never finished")
	}

	// Cancelling an unknown query is a no-op and must not wedge the loop.
	eng.Cancel(9999)

	// The engine still answers new queries, and the freed query ID stays
	// burned (its window entry lingers), so reuse is rejected.
	src, dst := graph.VertexID(3), graph.VertexID(net.G.NumVertices()-1)
	h2, err := eng.Schedule(query.Spec{ID: 2, Kind: query.KindSSSP, Source: src, Target: dst})
	if err != nil {
		t.Fatalf("schedule after cancel: %v", err)
	}
	res := h2.Wait()
	if want := graph.DijkstraTo(net.G, src, dst); math.Abs(res.Value-want) > 1e-9 {
		t.Fatalf("post-cancel sssp: got %g, want %g", res.Value, want)
	}
}
