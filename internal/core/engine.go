// Package core assembles the Q-Graph system: it wires a controller and k
// workers over a transport, exposes the user-facing API (schedule queries,
// await results, inspect statistics), and owns component lifecycles.
//
// Typical use:
//
//	net, _ := gen.Road(gen.BWConfig(64))
//	eng, _ := core.Start(core.Config{
//		Workers:     8,
//		Graph:       net.G,
//		Partitioner: partition.Hash{},
//		Adapt:       true,
//	})
//	defer eng.Close()
//	h, _ := eng.Schedule(query.Spec{ID: 1, Kind: query.KindSSSP, Source: a, Target: b})
//	res := h.Wait()
package core

import (
	"fmt"
	"sync"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/delta"
	"qgraph/internal/faultpoint"
	"qgraph/internal/graph"
	"qgraph/internal/metrics"
	"qgraph/internal/obs"
	"qgraph/internal/obs/health"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/qcut"
	"qgraph/internal/query"
	recovery "qgraph/internal/recover"
	"qgraph/internal/snapshot"
	"qgraph/internal/transport"
	"qgraph/internal/wal"
	"qgraph/internal/worker"
)

// Config assembles an engine. Zero values select the paper's defaults.
type Config struct {
	// Workers is k, the number of graph partitions.
	Workers int
	// Graph is the shared graph structure.
	Graph *graph.Graph
	// Partitioner computes the initial assignment (default: Hash).
	// Assignment, when non-nil, is used directly instead.
	Partitioner partition.Partitioner
	Assignment  partition.Assignment

	// Network is the transport; nil builds an in-process network with
	// Latency (zero Latency = perfect network, for tests).
	Network transport.Network
	Latency transport.Latency

	// Mode selects the barrier strategy (default: hybrid, the paper's).
	Mode controller.SyncMode
	// Adapt enables runtime Q-cut repartitioning.
	Adapt bool

	// Controller knobs (zero = paper defaults; see controller.Config).
	Phi              float64
	Mu               time.Duration
	MaxWindowQueries int
	MinWindowQueries int
	Delta            float64
	QcutBudget       time.Duration
	CheckEvery       time.Duration
	Cooldown         time.Duration
	ReplicateQueries bool
	NoClustering     bool
	NoPerturbation   bool
	Seed             uint64
	// Streaming-update and liveness knobs (zero = defaults; see
	// controller.Config).
	CommitEvery time.Duration
	MaxBatchOps int
	// BarrierCommit commits mutation batches under the global STOP/START
	// barrier (the pre-MVCC baseline) instead of the pipelined off-barrier
	// path; kept for A/B benchmarking (see controller.Config).
	BarrierCommit    bool
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	// RespawnWorkers relaunches a dead worker in-process when the
	// controller declares it lost: the replacement rejoins via
	// WorkerHello/PartitionGrant, rebuilding its graph view from the
	// committed-op replay, and (when it says hello within RespawnWait)
	// adopts its old partition in place. Without it, recovery hands dead
	// partitions to the survivors.
	RespawnWorkers bool
	// RespawnWait bounds how long recovery defers the handoff for a
	// respawned worker's hello (see controller.Config.RespawnWait).
	RespawnWait time.Duration

	// Checkpointing (internal/snapshot). SnapshotDir persists checkpoints
	// durably ("" keeps them in memory only); the policy knobs arm
	// automatic cuts (zero = manual cuts only, via ForceSnapshot). The
	// engine shares one snapshot store between the controller and every
	// (re)spawned worker, so grants can always resolve their replay base.
	SnapshotDir      string
	SnapshotKeep     int
	SnapshotEveryOps int
	SnapshotBytes    int64
	SnapshotInterval time.Duration
	// BaseVersion is the committed version Graph already contains (a
	// restart from a persisted checkpoint); see controller.Config.
	BaseVersion uint64
	// WALDir enables the durable write-ahead op log (internal/wal): every
	// committed batch is fsynced there before its caller is acknowledged,
	// and Start first replays the directory's tail beyond BaseVersion
	// into Graph — so an engine restarted over the same directories
	// (snapshot + WAL) resumes at the exact pre-crash committed version.
	WALDir string
	// WALGraphID names the graph identity the WAL belongs to (0 selects
	// 1); a directory written for another id refuses to open.
	WALGraphID uint64

	// Worker knobs (zero = paper defaults; see worker.Config).
	BatchMaxMsgs  int
	BatchMaxBytes int
	StatsEvery    int
	ComputeCost   time.Duration

	// Recorder receives metrics; nil creates a fresh one.
	Recorder *metrics.Recorder
	// Obs is the observability substrate (internal/obs), shared with the
	// serving layer so span trees rooted there continue through the
	// controller and into worker structured logs. Nil disables tracing
	// and controller metrics; in-process workers then log to discard.
	Obs *obs.Obs
	// Monitor is the active health layer (internal/obs/health), shared
	// with the serving layer; the controller feeds its detectors. Nil
	// disables the watchdogs.
	Monitor *health.Monitor
}

// closeWAL closes a possibly-nil WAL (Start error paths).
func closeWAL(w *wal.WAL) {
	if w != nil {
		w.Close()
	}
}

// Engine is a running Q-Graph instance.
type Engine struct {
	cfg      Config
	net      transport.Network
	ownNet   bool
	ctrl     *controller.Controller
	recorder *metrics.Recorder
	snaps    *snapshot.Store
	wal      *wal.WAL

	// assign is the initial partitioning; respawned workers are built
	// against it and adopt the live ownership map from their grant.
	assign partition.Assignment

	workerMu sync.Mutex
	workers  []*worker.Worker
	// workerLive[w] guards against two instances reading one transport
	// endpoint: a respawn only proceeds once the previous instance's Run
	// returned.
	workerLive []bool

	workerWG sync.WaitGroup
	ctrlWG   sync.WaitGroup
	errMu    sync.Mutex
	runErrs  []error
	closed   sync.Once
}

// Handle is a scheduled query awaiting its result.
type Handle struct {
	Spec query.Spec
	ch   <-chan controller.Result
}

// Wait blocks until the query finished and returns its result.
func (h *Handle) Wait() controller.Result { return <-h.ch }

// Done exposes the result channel for select loops.
func (h *Handle) Done() <-chan controller.Result { return h.ch }

// Start builds and launches an engine.
func Start(cfg Config) (*Engine, error) {
	if cfg.Workers < 1 || cfg.Workers > partition.MaxWorkers {
		return nil, fmt.Errorf("core: bad worker count %d", cfg.Workers)
	}
	if cfg.Graph == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	// WAL recovery comes first: the replayed graph is what everything
	// below (partitioning, controller, workers) must be built against.
	var walLog *wal.WAL
	if cfg.WALDir != "" {
		gid := cfg.WALGraphID
		if gid == 0 {
			gid = 1
		}
		g, v, err := wal.RecoverGraph(cfg.WALDir, gid, cfg.Graph, cfg.BaseVersion)
		if err != nil {
			return nil, fmt.Errorf("core: wal recovery: %w", err)
		}
		cfg.Graph, cfg.BaseVersion = g, v
		if walLog, err = wal.Open(cfg.WALDir, gid); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if err := walLog.Rebase(cfg.BaseVersion); err != nil {
			walLog.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	assign := cfg.Assignment
	if assign == nil {
		p := cfg.Partitioner
		if p == nil {
			p = partition.Hash{}
		}
		var err error
		assign, err = p.Partition(cfg.Graph, cfg.Workers)
		if err != nil {
			closeWAL(walLog)
			return nil, fmt.Errorf("core: initial partitioning: %w", err)
		}
	}
	if err := assign.Validate(cfg.Workers); err != nil {
		closeWAL(walLog)
		return nil, err
	}

	rec := cfg.Recorder
	if rec == nil {
		rec = metrics.NewRecorder(time.Now())
	}
	net := cfg.Network
	ownNet := false
	if net == nil {
		net = transport.NewChanNetwork(cfg.Workers+1, cfg.Latency)
		ownNet = true
	}
	if net.Nodes() != cfg.Workers+1 {
		if ownNet {
			net.Close()
		}
		closeWAL(walLog)
		return nil, fmt.Errorf("core: network has %d nodes, want %d", net.Nodes(), cfg.Workers+1)
	}

	e := &Engine{cfg: cfg, net: net, ownNet: ownNet, recorder: rec,
		assign: assign, workerLive: make([]bool, cfg.Workers),
		snaps: snapshot.NewStore(cfg.SnapshotDir, cfg.SnapshotKeep),
		wal:   walLog}
	var respawn func(partition.WorkerID)
	if cfg.RespawnWorkers {
		respawn = e.respawnWorker
	}
	ctrl, err := controller.New(controller.Config{
		K:                cfg.Workers,
		Graph:            cfg.Graph,
		Owner:            assign,
		Mode:             cfg.Mode,
		Adapt:            cfg.Adapt,
		Phi:              cfg.Phi,
		Mu:               cfg.Mu,
		MaxWindowQueries: cfg.MaxWindowQueries,
		MinWindowQueries: cfg.MinWindowQueries,
		Delta:            cfg.Delta,
		QcutBudget:       cfg.QcutBudget,
		CheckEvery:       cfg.CheckEvery,
		Cooldown:         cfg.Cooldown,
		ReplicateQueries: cfg.ReplicateQueries,
		NoClustering:     cfg.NoClustering,
		NoPerturbation:   cfg.NoPerturbation,
		Seed:             cfg.Seed,
		CommitEvery:      cfg.CommitEvery,
		MaxBatchOps:      cfg.MaxBatchOps,
		BarrierCommit:    cfg.BarrierCommit,
		HeartbeatEvery:   cfg.HeartbeatEvery,
		HeartbeatTimeout: cfg.HeartbeatTimeout,
		Respawn:          respawn,
		RespawnWait:      cfg.RespawnWait,
		Snapshots:        e.snaps,
		SnapshotPolicy: snapshot.Policy{
			EveryOps:   cfg.SnapshotEveryOps,
			EveryBytes: cfg.SnapshotBytes,
			Interval:   cfg.SnapshotInterval,
		},
		BaseVersion: cfg.BaseVersion,
		WAL:         walLog,
		Recorder:    rec,
		Obs:         cfg.Obs,
		Monitor:     cfg.Monitor,
	}, net.Conn(protocol.ControllerNode))
	if err != nil {
		if ownNet {
			net.Close()
		}
		closeWAL(walLog)
		return nil, err
	}
	e.ctrl = ctrl
	for w := 0; w < cfg.Workers; w++ {
		wk, err := worker.New(e.workerConfig(partition.WorkerID(w), false),
			net.Conn(protocol.WorkerNode(partition.WorkerID(w))))
		if err != nil {
			if ownNet {
				net.Close()
			}
			closeWAL(walLog)
			return nil, err
		}
		e.workers = append(e.workers, wk)
	}

	if o := cfg.Obs; o != nil && o.Metrics != nil {
		// In-process deployments can read replay provenance straight off
		// the worker instances (distributed workers report it in their
		// structured logs instead — they have no scrape endpoint here).
		for w := 0; w < cfg.Workers; w++ {
			wi := w
			o.Metrics.GaugeFunc("qgraph_worker_replayed_ops",
				fmt.Sprintf(`worker="%d"`, wi),
				"delta-log ops replayed by the worker's latest rejoin",
				func() float64 {
					e.workerMu.Lock()
					defer e.workerMu.Unlock()
					if wi < len(e.workers) && e.workers[wi] != nil {
						return float64(e.workers[wi].ReplayedOps())
					}
					return 0
				})
		}
	}

	for w, wk := range e.workers {
		e.workerLive[w] = true
		e.runWorker(partition.WorkerID(w), wk)
	}
	e.ctrlWG.Add(1)
	go func() {
		defer e.ctrlWG.Done()
		if err := ctrl.Run(); err != nil {
			e.addErr(err)
		}
	}()
	return e, nil
}

func (e *Engine) workerConfig(w partition.WorkerID, rejoin bool) worker.Config {
	c := worker.Config{
		ID:            w,
		K:             e.cfg.Workers,
		Graph:         e.cfg.Graph,
		Owner:         e.assign,
		BatchMaxMsgs:  e.cfg.BatchMaxMsgs,
		BatchMaxBytes: e.cfg.BatchMaxBytes,
		StatsEvery:    e.cfg.StatsEvery,
		ScopeTTL:      e.cfg.Mu,
		ComputeCost:   e.cfg.ComputeCost,
		Rejoin:        rejoin,
		BaseVersion:   e.cfg.BaseVersion,
		Snapshots:     e.snaps,
	}
	if o := e.cfg.Obs; o != nil {
		c.Logger = o.Log().With("role", "worker")
	}
	return c
}

// runWorker drives one worker instance's lifecycle. An injected kill
// (faultpoint.ErrKilled) is a simulated crash, not an engine error — the
// controller's liveness detection and recovery own what happens next.
func (e *Engine) runWorker(w partition.WorkerID, wk *worker.Worker) {
	e.workerWG.Add(1)
	go func() {
		defer e.workerWG.Done()
		err := wk.Run()
		e.workerMu.Lock()
		e.workerLive[w] = false
		e.workerMu.Unlock()
		if err != nil && err != faultpoint.ErrKilled {
			e.addErr(err)
		}
	}()
}

// respawnWorker relaunches worker w on its transport endpoint. Called by
// the controller when it declares w dead; the replacement starts in
// joining mode and adopts state through the recovery protocol. If the
// previous instance is somehow still running (a falsely-declared death),
// nothing is launched — two readers on one endpoint would split the
// message stream.
func (e *Engine) respawnWorker(w partition.WorkerID) {
	e.workerMu.Lock()
	defer e.workerMu.Unlock()
	if e.workerLive[w] {
		return
	}
	wk, err := worker.New(e.workerConfig(w, true), e.net.Conn(protocol.WorkerNode(w)))
	if err != nil {
		e.addErr(fmt.Errorf("core: respawn worker %d: %w", w, err))
		return
	}
	e.workers[w] = wk
	e.workerLive[w] = true
	e.runWorker(w, wk)
}

func (e *Engine) addErr(err error) {
	e.errMu.Lock()
	e.runErrs = append(e.runErrs, err)
	e.errMu.Unlock()
}

// Schedule submits a query for execution.
func (e *Engine) Schedule(spec query.Spec) (*Handle, error) {
	ch, err := e.ctrl.Schedule(spec)
	if err != nil {
		return nil, err
	}
	return &Handle{Spec: spec, ch: ch}, nil
}

// RunBatch executes specs with at most `parallel` queries in flight (the
// paper runs batches of 16 parallel queries): as soon as one finishes the
// next is scheduled. Results are returned in completion order.
func (e *Engine) RunBatch(specs []query.Spec, parallel int) ([]controller.Result, error) {
	if parallel < 1 {
		parallel = 16
	}
	out := make(chan controller.Result)
	errCh := make(chan error, 1)
	go func() {
		sem := make(chan struct{}, parallel)
		for _, spec := range specs {
			sem <- struct{}{}
			h, err := e.Schedule(spec)
			if err != nil {
				select {
				case errCh <- err:
				default:
				}
				<-sem
				continue
			}
			go func() {
				out <- h.Wait()
				<-sem
			}()
		}
	}()
	results := make([]controller.Result, 0, len(specs))
	var firstErr error
	for len(results) < len(specs) {
		select {
		case err := <-errCh:
			// A schedule failed; one fewer result will arrive.
			if firstErr == nil {
				firstErr = err
			}
			specs = specs[:len(specs)-1]
		case r := <-out:
			results = append(results, r)
		}
	}
	return results, firstErr
}

// Cancel abandons a scheduled query (see controller.Cancel).
func (e *Engine) Cancel(q query.ID) { e.ctrl.Cancel(q) }

// Mutate stages a batch of streaming graph updates; the result arrives on
// the channel once the batch committed (see controller.Mutate).
func (e *Engine) Mutate(ops []delta.Op) (<-chan controller.MutationResult, error) {
	return e.ctrl.Mutate(ops)
}

// GraphVersion returns the number of committed mutation batches (safe
// concurrently with the run).
func (e *Engine) GraphVersion() uint64 { return e.ctrl.GraphVersion() }

// GraphView returns a snapshot of the current committed graph.
func (e *Engine) GraphView() graph.View { return e.ctrl.GraphView() }

// Health reports worker liveness (see controller.Health).
func (e *Engine) Health() controller.Health { return e.ctrl.Health() }

// RecoveryStats reports the worker-failure recovery counters (see
// controller.RecoveryStats).
func (e *Engine) RecoveryStats() recovery.Stats { return e.ctrl.RecoveryStats() }

// ForceSnapshot cuts a checkpoint of the committed graph now and truncates
// the committed-op log (see controller.ForceSnapshot).
func (e *Engine) ForceSnapshot() (snapshot.Result, error) { return e.ctrl.ForceSnapshot() }

// SnapshotStats reports checkpointing counters and the live op-log size
// (see controller.SnapshotStats).
func (e *Engine) SnapshotStats() snapshot.Stats { return e.ctrl.SnapshotStats() }

// WALStats reports the durable write-ahead log's accounting (Enabled is
// false when the engine runs without a WAL; see controller.WALStats).
func (e *Engine) WALStats() wal.Stats { return e.ctrl.WALStats() }

// MVCCStats reports the commit pipeline's version-registry accounting.
func (e *Engine) MVCCStats() controller.MVCCStats { return e.ctrl.MVCCStats() }

// GraphBase returns the graph and committed version the engine started
// from after snapshot/WAL recovery (what Config.Graph/BaseVersion became).
func (e *Engine) GraphBase() (*graph.Graph, uint64) { return e.cfg.Graph, e.cfg.BaseVersion }

// Snapshots exposes the engine's shared checkpoint store.
func (e *Engine) Snapshots() *snapshot.Store { return e.snaps }

// Controller exposes the controller, which implements the serving layer's
// backend contract (Schedule, Cancel, RepartitionEpoch).
func (e *Engine) Controller() *controller.Controller { return e.ctrl }

// RepartitionEpoch returns the live repartition count (safe concurrently
// with the run; see controller.RepartitionEpoch).
func (e *Engine) RepartitionEpoch() int64 { return e.ctrl.RepartitionEpoch() }

// Recorder returns the engine's metrics recorder.
func (e *Engine) Recorder() *metrics.Recorder { return e.recorder }

// QcutSnapshot exposes the controller's current high-level view.
func (e *Engine) QcutSnapshot() (qcut.Input, error) { return e.ctrl.QcutSnapshot() }

// Repartitions reports how many global repartitioning barriers ran. Call
// after Close for a stable value.
func (e *Engine) Repartitions() int { return e.ctrl.Repartitions() }

// Workers exposes the current worker instances (tests assert internal
// invariants such as the forwarded-message counter); slot w holds the
// latest incarnation of worker w, which changes when a respawn replaces a
// crashed instance.
func (e *Engine) Workers() []*worker.Worker {
	e.workerMu.Lock()
	defer e.workerMu.Unlock()
	return append([]*worker.Worker(nil), e.workers...)
}

// Close stops the controller and workers and releases the network. It
// returns the first component error encountered during the run.
func (e *Engine) Close() error {
	e.closed.Do(func() {
		// Order matters: stop the controller (it broadcasts Shutdown as
		// its final message), let every worker drain its inbox up to that
		// Shutdown, and only then tear the network down.
		e.ctrl.Stop()
		e.ctrlWG.Wait()
		e.workerWG.Wait()
		if e.ownNet {
			e.net.Close()
		}
		closeWAL(e.wal)
	})
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if len(e.runErrs) > 0 {
		return e.runErrs[0]
	}
	return nil
}
