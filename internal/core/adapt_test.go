package core

import (
	"math"
	"testing"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/faultpoint"
	"qgraph/internal/gen"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/query"
	"qgraph/internal/transport"
	"qgraph/internal/workload"
)

// hotspotSpecs builds a localized SSSP workload with reference answers.
func hotspotSpecs(t testing.TB, net *gen.RoadNet, n int) ([]query.Spec, []float64) {
	t.Helper()
	g := workload.NewRoadGen(net, 99)
	specs := make([]query.Spec, n)
	want := make([]float64, n)
	for i := range specs {
		specs[i] = g.SSSP()
		want[i] = graph.DijkstraTo(net.G, specs[i].Source, specs[i].Target)
	}
	return specs, want
}

func checkResults(t *testing.T, results []controller.Result, specs []query.Spec, want []float64) {
	t.Helper()
	byID := make(map[query.ID]float64, len(specs))
	for i, s := range specs {
		byID[s.ID] = want[i]
	}
	for _, r := range results {
		w := byID[r.Q]
		if math.Abs(r.Value-w) > 1e-6*math.Max(1, w) {
			t.Fatalf("query %d: got %v, want %v (reason %d)", r.Q, r.Value, w, r.Reason)
		}
	}
}

// TestAdaptiveRepartitioningCorrect drives enough localized queries through
// an aggressively adaptive engine to force repeated Q-cut repartitioning
// barriers mid-stream, and verifies every result still matches Dijkstra —
// moves must never corrupt query state.
func TestAdaptiveRepartitioningCorrect(t *testing.T) {
	net := testRoad(t)
	specs, want := hotspotSpecs(t, net, 160)
	eng := startEngine(t, net.G, func(c *Config) {
		c.Adapt = true
		c.Phi = 0.99 // trigger almost always
		c.CheckEvery = 5 * time.Millisecond
		c.Cooldown = 10 * time.Millisecond
		c.QcutBudget = 30 * time.Millisecond
		c.MinWindowQueries = 4
		c.Mu = time.Minute
	})
	results, err := eng.RunBatch(specs, 16)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	checkResults(t, results, specs, want)
	if eng.Repartitions() == 0 {
		t.Fatalf("expected at least one repartitioning barrier")
	}
	t.Logf("repartitions: %d", eng.Repartitions())
}

// TestReplicateQueriesLocal checks the future-work (ii) extension: pinned
// queries execute fully locally (locality 1, one worker) and still return
// correct results.
func TestReplicateQueriesLocal(t *testing.T) {
	net := testRoad(t)
	specs, want := hotspotSpecs(t, net, 24)
	eng := startEngine(t, net.G, func(c *Config) { c.ReplicateQueries = true })
	results, err := eng.RunBatch(specs, 8)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	checkResults(t, results, specs, want)
	for _, r := range results {
		if r.Workers != 1 {
			t.Fatalf("query %d spanned %d workers, want 1", r.Q, r.Workers)
		}
		if r.Supersteps > 0 && r.LocalIters != r.Supersteps {
			t.Fatalf("query %d: %d/%d local iterations, want all", r.Q, r.LocalIters, r.Supersteps)
		}
	}
}

// TestSimulatedLatencyCorrect runs the workload over the simulated network
// (the configuration all experiments use) and re-verifies correctness.
func TestSimulatedLatencyCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("latency-simulation test skipped in -short")
	}
	net := testRoad(t)
	specs, want := hotspotSpecs(t, net, 24)
	eng := startEngine(t, net.G, func(c *Config) {
		c.Latency = transport.Latency{
			WorkerWorker:     200 * time.Microsecond,
			WorkerController: 100 * time.Microsecond,
			PerByte:          8 * time.Nanosecond,
		}
	})
	results, err := eng.RunBatch(specs, 16)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	checkResults(t, results, specs, want)
}

// TestTCPEngineCorrect runs the engine over real loopback TCP — the
// paper's scale-up deployment (M1/M2) — and re-verifies correctness.
func TestTCPEngineCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP test skipped in -short")
	}
	net := testRoad(t)
	specs, want := hotspotSpecs(t, net, 16)
	tcp, err := transport.NewTCPNetwork(5)
	if err != nil {
		t.Fatalf("tcp network: %v", err)
	}
	eng, err := Start(Config{
		Workers: 4, Graph: net.G, Partitioner: partition.Hash{}, Network: tcp,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() {
		if err := eng.Close(); err != nil {
			t.Errorf("engine error: %v", err)
		}
		tcp.Close()
	}()
	results, err := eng.RunBatch(specs, 8)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	checkResults(t, results, specs, want)
}

// TestAdaptiveImprovesLocality is the behavioural heart of the paper at
// test scale: starting from Hash partitioning, adaptive Q-cut must raise
// the fraction of fully-local query executions substantially (Fig. 6f
// shows 38% → ~80% at paper scale).
func TestAdaptiveImprovesLocality(t *testing.T) {
	if testing.Short() {
		t.Skip("locality improvement test skipped in -short")
	}
	net := testRoad(t)
	specs, _ := hotspotSpecs(t, net, 300)

	run := func(adapt bool) float64 {
		eng := startEngine(t, net.G, func(c *Config) {
			c.Adapt = adapt
			c.Phi = 0.95
			c.CheckEvery = 5 * time.Millisecond
			c.Cooldown = 20 * time.Millisecond
			c.QcutBudget = 50 * time.Millisecond
			c.MinWindowQueries = 8
			c.Mu = time.Minute
		})
		if _, err := eng.RunBatch(specs, 16); err != nil {
			t.Fatalf("RunBatch: %v", err)
		}
		// Locality over the last third, once Q-cut had evidence to act on.
		qs := eng.Recorder().Queries()
		tail := qs[len(qs)*2/3:]
		sum := 0.0
		for _, q := range tail {
			sum += q.Locality()
		}
		return sum / float64(len(tail))
	}

	static := run(false)
	adaptive := run(true)
	t.Logf("tail locality: static hash %.3f, adaptive %.3f", static, adaptive)
	if adaptive < static {
		t.Fatalf("adaptive locality %.3f did not improve on static %.3f", adaptive, static)
	}
}

// TestAdaptationContinuesAfterHandoff: Q-cut is live-set-aware — after a
// worker dies and its partition is handed to the survivors, the engine
// keeps repartitioning over the shrunken worker set (it used to freeze
// until every worker rejoined), and every result stays correct.
func TestAdaptationContinuesAfterHandoff(t *testing.T) {
	defer faultpoint.Reset()
	net := testRoad(t)
	specs, want := hotspotSpecs(t, net, 160)
	eng := startEngine(t, net.G, func(c *Config) {
		c.Adapt = true
		c.Phi = 0.99 // trigger almost always
		c.CheckEvery = 5 * time.Millisecond
		c.Cooldown = 10 * time.Millisecond
		c.QcutBudget = 30 * time.Millisecond
		c.MinWindowQueries = 4
		c.Mu = time.Minute
		c.HeartbeatEvery = 5 * time.Millisecond
		c.HeartbeatTimeout = 30 * time.Millisecond
	})

	fired, disarm := faultpoint.KillOnce(faultpoint.WorkerSuperstep, 1)
	defer disarm()

	results, err := eng.RunBatch(specs, 16)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	checkResults(t, results, specs, want)
	select {
	case <-fired:
	default:
		t.Fatal("fault point never fired")
	}

	// Wait out the episode, then measure repartitioning with a dead worker
	// in the set: the second wave must still trigger Q-cut rounds.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		h := eng.Health()
		if !h.Recovering && len(h.DeadWorkers) == 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if h := eng.Health(); len(h.DeadWorkers) != 1 {
		t.Fatalf("health after kill = %+v, want one lost worker", h)
	}
	before := int(eng.RepartitionEpoch())

	specs2, want2 := hotspotSpecs(t, net, 160)
	for i := range specs2 {
		specs2[i].ID += 1000
	}
	results2, err := eng.RunBatch(specs2, 16)
	if err != nil {
		t.Fatalf("RunBatch 2: %v", err)
	}
	checkResults(t, results2, specs2, want2)
	if after := int(eng.RepartitionEpoch()); after <= before {
		t.Fatalf("no repartitioning with a dead worker (epoch %d -> %d)", before, after)
	}
}
