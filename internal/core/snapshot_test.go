package core

import (
	"testing"
	"time"

	"qgraph/internal/delta"
	"qgraph/internal/faultpoint"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/snapshot"
)

// Checkpointing end to end: the committed-op log stays bounded under
// sustained mutation load, a killed worker rejoins from (checkpoint, tail)
// instead of (version 0, full history), crash-during-snapshot leaves
// recovery correct, and a full restart from a persisted checkpoint
// reproduces the same query answers.

// neutralOps returns n committed-but-distance-neutral ops (self loops far
// heavier than any path), so Dijkstra on the original graph stays the
// reference while the log grows arbitrarily.
func neutralOps(n int) []delta.Op {
	ops := make([]delta.Op, n)
	for i := range ops {
		ops[i] = delta.Op{Kind: delta.OpAddEdge, From: 0, To: 0, Weight: 1 << 14}
	}
	return ops
}

// TestCheckpointBoundsLogAndRejoin is the acceptance scenario: >=10k
// committed mutations under an ops-based snapshot policy keep the log
// bounded, and a killed+respawned worker rebuilds from the checkpoint with
// a replayed-op count equal to the retained tail — not the full history.
func TestCheckpointBoundsLogAndRejoin(t *testing.T) {
	defer faultpoint.Reset()
	g := recoverGraph(48)
	cfg := Config{
		Workers: 3, Graph: g, Partitioner: partition.Hash{},
		RespawnWorkers:   true,
		SnapshotEveryOps: 4000,
	}
	fastRecovery(&cfg)
	cfg.MaxBatchOps = 200 // commit each streamed batch promptly
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// 12200 = 30.5 policy windows: the last checkpoint covers 12000 ops
	// and a 200-op tail stays in the log for the rejoin to replay.
	const total, batch = 12200, 200
	for sent := 0; sent < total; sent += batch {
		mutate(t, eng, neutralOps(batch))
	}

	// Cuts and truncations run off the event loop; under the pipelined
	// commit path every batch can land before the first cut completes, so
	// wait for the queued follow-up cut's truncation before judging the
	// bound. Bounded log: the retained tail is at most one policy window
	// plus the batch that crossed it, never the full history.
	var st snapshot.Stats
	deadline := time.Now().Add(10 * time.Second)
	for {
		st = eng.SnapshotStats()
		if st.Snapshots >= 1 && st.DeltaLogOps <= 4000+batch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("log not bounded: retains %d of %d ops (%+v)", st.DeltaLogOps, total, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.LastSnapshotVersion == 0 || st.LastSnapshotVersion > eng.GraphVersion() {
		t.Fatalf("checkpoint version %d out of range (head %d)", st.LastSnapshotVersion, eng.GraphVersion())
	}
	if got := st.TruncatedOps + int64(st.DeltaLogOps); got != total {
		t.Fatalf("truncated %d + retained %d != committed %d", st.TruncatedOps, st.DeltaLogOps, total)
	}
	if st.DeltaLogOps == 0 {
		// A follow-up cut that pinned the head covered the whole history;
		// commit one more batch (below the policy window) so the rejoin
		// below still has a tail to replay.
		mutate(t, eng, neutralOps(batch))
		st = eng.SnapshotStats()
	}
	retained := st.DeltaLogOps

	// Kill a worker mid-query-load; the respawn must rebuild from the
	// checkpoint, with every query still matching Dijkstra.
	fired, disarm := faultpoint.KillOnce(faultpoint.WorkerSuperstep, 1)
	defer disarm()
	runRecoveryWorkload(t, eng, g, 1)
	select {
	case <-fired:
	default:
		t.Fatal("fault point never fired")
	}
	awaitRecovered(t, eng, 1)
	if st := eng.RecoveryStats(); st.Rejoins < 1 {
		t.Fatalf("recovery stats %+v, want a rejoin", st)
	}

	replayed := eng.Workers()[1].ReplayedOps()
	if replayed <= 0 {
		t.Fatal("rejoined worker reports no replayed ops")
	}
	if replayed > int64(retained) {
		t.Fatalf("rejoin replayed %d ops, want <= the retained tail %d", replayed, retained)
	}
	if replayed >= total {
		t.Fatalf("rejoin replayed the full history (%d ops) despite checkpointing", replayed)
	}
	t.Logf("rejoin replayed %d of %d committed ops (checkpoint at version %d)",
		replayed, total, st.LastSnapshotVersion)

	if d := sssp(t, eng, 900, 0, 47); d != graph.DijkstraTo(g, 0, 47) {
		t.Fatalf("post-rejoin distance %g", d)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	if v := eng.Workers()[1].View().Version(); v != eng.GraphVersion() {
		t.Fatalf("rejoined worker at version %d, engine at %d", v, eng.GraphVersion())
	}
}

// TestForceSnapshotAndAbortedCut covers the manual trigger and the
// crash-mid-cut fault: an aborted cut leaves the log untouched (recovery
// replays the longer tail), and the next cut truncates normally.
func TestForceSnapshotAndAbortedCut(t *testing.T) {
	defer faultpoint.Reset()
	g := pathGraph(10)
	cfg := Config{Workers: 2, Graph: g, Partitioner: partition.Hash{}}
	fastCommit(&cfg)
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	mutate(t, eng, neutralOps(8))
	res, err := eng.ForceSnapshot()
	if err != nil || !res.Cut || res.Version != eng.GraphVersion() || res.TruncatedOps != 8 {
		t.Fatalf("first cut = %+v, %v", res, err)
	}
	// Same version again: a no-op, not a duplicate snapshot.
	res, err = eng.ForceSnapshot()
	if err != nil || res.Cut {
		t.Fatalf("repeat cut = %+v, %v", res, err)
	}

	mutate(t, eng, neutralOps(8))
	disarm := faultpoint.Arm(faultpoint.SnapshotCut, func(...int) bool { return true })
	res, err = eng.ForceSnapshot()
	disarm()
	if err != nil || res.Cut {
		t.Fatalf("aborted cut = %+v, %v", res, err)
	}
	if st := eng.SnapshotStats(); st.Snapshots != 1 || st.DeltaLogOps != 8 {
		t.Fatalf("aborted cut changed state: %+v", st)
	}

	res, err = eng.ForceSnapshot()
	if err != nil || !res.Cut || res.TruncatedOps != 8 {
		t.Fatalf("cut after abort = %+v, %v", res, err)
	}
	if st := eng.SnapshotStats(); st.Snapshots != 2 || st.DeltaLogOps != 0 {
		t.Fatalf("stats after recovery cut: %+v", st)
	}
}

// TestCheckpointPersistFailureKeepsReplayable is the crash-mid-persist
// fault: the truncation floor must not advance past the durable
// checkpoint, so a rejoining worker still replays to the correct version
// from what actually exists.
func TestCheckpointPersistFailureKeepsReplayable(t *testing.T) {
	defer faultpoint.Reset()
	g := recoverGraph(48)
	cfg := Config{
		Workers: 3, Graph: g, Partitioner: partition.Hash{},
		RespawnWorkers: true,
		SnapshotDir:    t.TempDir(),
	}
	fastRecovery(&cfg)
	cfg.MaxBatchOps = 100
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	mutate(t, eng, neutralOps(100))
	disarmPersist := faultpoint.Arm(faultpoint.SnapshotPersist, func(...int) bool { return true })
	res, err := eng.ForceSnapshot()
	disarmPersist()
	if err != nil || !res.Cut || res.Persisted {
		t.Fatalf("cut with failing persist = %+v, %v", res, err)
	}
	if res.TruncatedOps != 0 {
		t.Fatalf("log truncated %d ops past an unpersisted snapshot", res.TruncatedOps)
	}
	st := eng.SnapshotStats()
	if st.PersistFailures != 1 || st.DeltaLogOps != 100 {
		t.Fatalf("stats after persist failure: %+v", st)
	}

	// A worker killed now must still rebuild: the grant replays the full
	// retained log over version 0 — longer, but correct.
	fired, disarm := faultpoint.KillOnce(faultpoint.WorkerSuperstep, 1)
	defer disarm()
	runRecoveryWorkload(t, eng, g, 1)
	select {
	case <-fired:
	default:
		t.Fatal("fault point never fired")
	}
	awaitRecovered(t, eng, 1)
	if replayed := eng.Workers()[1].ReplayedOps(); replayed != 100 {
		t.Fatalf("rejoin replayed %d ops, want the full retained log (100)", replayed)
	}
	if d := sssp(t, eng, 900, 0, 47); d != graph.DijkstraTo(g, 0, 47) {
		t.Fatalf("post-rejoin distance %g", d)
	}

	// The next durable cut truncates across the gap.
	mutate(t, eng, neutralOps(100))
	res, err = eng.ForceSnapshot()
	if err != nil || !res.Cut || !res.Persisted || res.TruncatedOps != 200 {
		t.Fatalf("durable cut after failure = %+v, %v", res, err)
	}
}

// TestRestartFromDiskCheckpoint is the qgraphd -snapshot-dir property at
// library level: a second engine built from the persisted checkpoint
// answers queries identically and continues the version numbering.
func TestRestartFromDiskCheckpoint(t *testing.T) {
	dir := t.TempDir()
	g := pathGraph(10)
	cfg := Config{Workers: 2, Graph: g, Partitioner: partition.Hash{}, SnapshotDir: dir}
	fastCommit(&cfg)
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// A mutation that changes answers: a shortcut 0 -> 9.
	mutate(t, eng, []delta.Op{{Kind: delta.OpAddEdge, From: 0, To: 9, Weight: 1.5}})
	before := sssp(t, eng, 1, 0, 9)
	if before != 1.5 {
		t.Fatalf("pre-restart distance %g, want 1.5", before)
	}
	res, err := eng.ForceSnapshot()
	if err != nil || !res.Cut || !res.Persisted {
		t.Fatalf("checkpoint = %+v, %v", res, err)
	}
	version := eng.GraphVersion()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := snapshot.LoadLatest(dir)
	if err != nil || snap == nil || snap.Version != version {
		t.Fatalf("LoadLatest = %+v, %v; want version %d", snap, err, version)
	}
	cfg2 := Config{
		Workers: 2, Graph: snap.Graph, Partitioner: partition.Hash{},
		SnapshotDir: dir, BaseVersion: snap.Version,
	}
	fastCommit(&cfg2)
	eng2, err := Start(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if v := eng2.GraphVersion(); v != version {
		t.Fatalf("restarted at version %d, want %d", v, version)
	}
	if after := sssp(t, eng2, 1, 0, 9); after != before {
		t.Fatalf("post-restart distance %g, want %g", after, before)
	}
	// The version chain continues where the checkpoint left off.
	if res := mutate(t, eng2, neutralOps(1)); res.Version != version+1 {
		t.Fatalf("post-restart commit landed at version %d, want %d", res.Version, version+1)
	}
}
