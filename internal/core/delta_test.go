package core

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
)

// pathGraph builds the directed path 0 → 1 → … → n-1 with unit weights.
func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	return b.MustBuild()
}

// fastCommit configures an engine for immediate mutation commits.
func fastCommit(cfg *Config) {
	cfg.CommitEvery = time.Millisecond
	cfg.MaxBatchOps = 1
	cfg.CheckEvery = 2 * time.Millisecond
}

// mutate applies ops and waits for the commit.
func mutate(t *testing.T, eng *Engine, ops []delta.Op) controller.MutationResult {
	t.Helper()
	ch, err := eng.Mutate(ops)
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	select {
	case res := <-ch:
		if res.Err != nil {
			t.Fatalf("commit: %v", res.Err)
		}
		return res
	case <-time.After(30 * time.Second):
		t.Fatal("commit did not happen")
		return controller.MutationResult{}
	}
}

// sssp runs one point-to-point SSSP and returns its distance.
func sssp(t *testing.T, eng *Engine, id query.ID, src, dst graph.VertexID) float64 {
	t.Helper()
	h, err := eng.Schedule(query.Spec{ID: id, Kind: query.KindSSSP, Source: src, Target: dst})
	if err != nil {
		t.Fatalf("schedule %d: %v", id, err)
	}
	res := h.Wait()
	if res.Reason != protocol.FinishConverged && res.Reason != protocol.FinishEarly {
		t.Fatalf("query %d finished %v", id, res.Reason)
	}
	return res.Value
}

// TestMutationCommitEndToEnd: committed batches change query answers,
// advance the graph version on every node, and added vertices become
// routable with controller-assigned owners.
func TestMutationCommitEndToEnd(t *testing.T) {
	g := pathGraph(10)
	cfg := Config{Workers: 2, Graph: g, Partitioner: partition.Hash{}}
	fastCommit(&cfg)
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			eng.Close()
		}
	}()

	if d := sssp(t, eng, 1, 0, 9); d != 9 {
		t.Fatalf("pre-mutation distance %g, want 9", d)
	}

	// Double every edge weight, atomically.
	ops := make([]delta.Op, 0, 9)
	for v := 0; v < 9; v++ {
		ops = append(ops, delta.Op{Kind: delta.OpSetWeight, From: graph.VertexID(v), To: graph.VertexID(v + 1), Weight: 2})
	}
	res := mutate(t, eng, ops)
	if res.Version != 1 || res.Applied != 9 || res.NoOps != 0 {
		t.Fatalf("commit = %+v", res)
	}
	if eng.GraphVersion() != 1 {
		t.Fatalf("engine graph version %d, want 1", eng.GraphVersion())
	}
	if d := sssp(t, eng, 2, 0, 9); d != 18 {
		t.Fatalf("post-mutation distance %g, want 18", d)
	}

	// Grow the graph: a new vertex hanging off the end of the path.
	res = mutate(t, eng, []delta.Op{
		{Kind: delta.OpAddVertex},
		{Kind: delta.OpAddEdge, From: 9, To: 10, Weight: 5},
	})
	if res.Version != 2 || res.Applied != 2 {
		t.Fatalf("growth commit = %+v", res)
	}
	if n := eng.GraphView().NumVertices(); n != 11 {
		t.Fatalf("view has %d vertices, want 11", n)
	}
	if d := sssp(t, eng, 3, 0, 10); d != 23 {
		t.Fatalf("distance to added vertex %g, want 23", d)
	}

	// A shortcut edge must immediately win.
	mutate(t, eng, []delta.Op{{Kind: delta.OpAddEdge, From: 0, To: 10, Weight: 1}})
	if d := sssp(t, eng, 4, 0, 10); d != 1 {
		t.Fatalf("distance via shortcut %g, want 1", d)
	}

	// Removing the shortcut restores the long route.
	mutate(t, eng, []delta.Op{{Kind: delta.OpRemoveEdge, From: 0, To: 10}})
	if d := sssp(t, eng, 5, 0, 10); d != 23 {
		t.Fatalf("distance after removal %g, want 23", d)
	}

	// Replicas converged: every worker applied all four batches.
	closed = true
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for i, wk := range eng.Workers() {
		if v := wk.View().Version(); v != 4 {
			t.Errorf("worker %d at version %d, want 4", i, v)
		}
		if n := wk.View().NumVertices(); n != 11 {
			t.Errorf("worker %d sees %d vertices, want 11", i, n)
		}
	}
}

// TestOverlayConsistencyUnderConcurrentCommits is the half-applied-batch
// detector. Every batch atomically REPLACES the edge 0→1 (remove + add
// with the next weight): a torn batch would be observable as either an
// unreachable target (remove applied, add missing), a duplicated edge, or
// a weight outside the committed sequence. Queries run concurrently with
// the commits, and each one reads the adjacency of vertex 0 in a single
// Compute call, so a mixed read cannot hide across supersteps the way a
// long path can (a multi-superstep query legitimately spans versions; a
// single adjacency read must never see a partial batch).
//
// After each commit the writer also runs one fresh query and asserts it
// sees exactly the new weight: the committed version is visible to the
// very next query, with no stale replica.
func TestOverlayConsistencyUnderConcurrentCommits(t *testing.T) {
	const versions = 12
	// Path padding gives all 3 workers owned vertices; only edge 0→1 is
	// mutated.
	g := pathGraph(9)
	cfg := Config{Workers: 3, Graph: g, Partitioner: partition.Hash{}}
	fastCommit(&cfg)
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := eng.Close(); err != nil {
			t.Errorf("engine: %v", err)
		}
	}()

	valid := map[float64]bool{1: true} // initial weight
	for i := 1; i <= versions; i++ {
		valid[float64(10*i)] = true
	}

	done := make(chan struct{})
	var readerWG sync.WaitGroup
	var mu sync.Mutex
	var results []float64
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			id := query.ID(1000 * (r + 1))
			for {
				select {
				case <-done:
					return
				default:
				}
				id++
				h, err := eng.Schedule(query.Spec{ID: id, Kind: query.KindSSSP, Source: 0, Target: 1})
				if err != nil {
					t.Errorf("schedule: %v", err)
					return
				}
				res := h.Wait()
				if res.Reason == protocol.FinishCancelled {
					return // engine shutting down
				}
				mu.Lock()
				results = append(results, res.Value)
				mu.Unlock()
			}
		}(r)
	}

	for i := 1; i <= versions; i++ {
		res := mutate(t, eng, []delta.Op{
			{Kind: delta.OpRemoveEdge, From: 0, To: 1},
			{Kind: delta.OpAddEdge, From: 0, To: 1, Weight: float32(10 * i)},
		})
		if res.Applied != 2 {
			t.Fatalf("version %d applied %d of 2 ops", i, res.Applied)
		}
		// Freshness: a query scheduled after the commit returned must see
		// exactly the new weight on every replica it touches.
		if d := sssp(t, eng, query.ID(100+i), 0, 1); d != float64(10*i) {
			t.Fatalf("post-commit query saw %g, want %d", d, 10*i)
		}
	}
	close(done)
	readerWG.Wait()

	if len(results) == 0 {
		t.Fatal("no concurrent query results collected")
	}
	for _, v := range results {
		if !valid[v] {
			t.Fatalf("concurrent query observed distance %g — not a committed edge weight (half-applied batch)", v)
		}
	}
	t.Logf("%d concurrent queries across %d commits, all results consistent", len(results), versions)
}

// TestDeltaLogReplayProperty is the recovery substrate's consistency
// property, checked over randomized histories: for every intermediate
// version v of a committed op stream, the CSR base plus a replay of the
// log's first v batches materializes the exact same graph as the live
// overlay view did at version v. This is what entitles a respawned worker
// to rebuild its replica from the shared base and the controller's log —
// no topology is shipped, yet all replicas converge.
func TestDeltaLogReplayProperty(t *testing.T) {
	const (
		versions    = 24
		opsPerBatch = 16
	)
	base := pathGraph(12)
	rng := rand.New(rand.NewPCG(42, 7))
	var log delta.Log
	live := delta.NewView(base)
	// liveAt[v] is the live view at version v (views are immutable, so
	// holding every intermediate is free).
	liveAt := []*delta.View{live}
	// edges tracks existing edges so remove/set_weight ops sometimes hit.
	type edge struct{ from, to graph.VertexID }
	var edges []edge
	for u := 0; u < 12; u++ {
		for _, e := range base.Out(graph.VertexID(u)) {
			edges = append(edges, edge{graph.VertexID(u), e.To})
		}
	}

	for v := 1; v <= versions; v++ {
		n := live.NumVertices()
		ops := make([]delta.Op, 0, opsPerBatch)
		for i := 0; i < opsPerBatch; i++ {
			switch r := rng.Float64(); {
			case r < 0.45:
				op := delta.Op{
					Kind: delta.OpAddEdge,
					From: graph.VertexID(rng.IntN(n)), To: graph.VertexID(rng.IntN(n)),
					Weight: float32(rng.IntN(100)) + 0.5,
				}
				edges = append(edges, edge{op.From, op.To})
				ops = append(ops, op)
			case r < 0.65 && len(edges) > 0:
				e := edges[rng.IntN(len(edges))]
				ops = append(ops, delta.Op{Kind: delta.OpRemoveEdge, From: e.from, To: e.to})
			case r < 0.85 && len(edges) > 0:
				e := edges[rng.IntN(len(edges))]
				ops = append(ops, delta.Op{
					Kind: delta.OpSetWeight, From: e.from, To: e.to,
					Weight: float32(rng.IntN(100)) + 0.25,
				})
			default:
				ops = append(ops, delta.Op{Kind: delta.OpAddVertex})
				n++
			}
		}
		nv, _, err := live.Apply(ops)
		if err != nil {
			t.Fatalf("version %d: %v", v, err)
		}
		live = nv
		liveAt = append(liveAt, live)
		if err := log.Append(uint64(v), ops); err != nil {
			t.Fatal(err)
		}
	}

	for v := 0; v <= versions; v++ {
		replayed, err := log.Replay(base, uint64(v))
		if err != nil {
			t.Fatalf("replay to %d: %v", v, err)
		}
		want, got := liveAt[v].Materialize(), replayed.Materialize()
		if want.NumVertices() != got.NumVertices() || want.NumEdges() != got.NumEdges() {
			t.Fatalf("version %d: shape %d/%d vertices %d/%d edges",
				v, want.NumVertices(), got.NumVertices(), want.NumEdges(), got.NumEdges())
		}
		for u := 0; u < want.NumVertices(); u++ {
			a, b := want.Out(graph.VertexID(u)), got.Out(graph.VertexID(u))
			if len(a) != len(b) {
				t.Fatalf("version %d vertex %d: degree %d vs %d", v, u, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("version %d vertex %d edge %d: %+v vs %+v", v, u, i, a[i], b[i])
				}
			}
		}
	}
}

// TestMutateValidation: out-of-range and malformed ops are rejected before
// staging, with per-batch isolation (a bad batch fails alone).
func TestMutateValidation(t *testing.T) {
	eng, err := Start(Config{Workers: 2, Graph: pathGraph(4), Partitioner: partition.Hash{}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	bad := [][]delta.Op{
		{{Kind: delta.OpAddEdge, From: 4, To: 0, Weight: 1}},
		{{Kind: delta.OpSetWeight, From: 0, To: 99, Weight: 1}},
		{},
	}
	for i, ops := range bad {
		ch, err := eng.Mutate(ops)
		if err != nil {
			continue // rejected synchronously (empty batch)
		}
		select {
		case res := <-ch:
			if res.Err == nil {
				t.Errorf("bad batch %d committed: %+v", i, res)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("bad batch %d: no answer", i)
		}
	}
}
