package core

import (
	"sync"
	"testing"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/delta"
	"qgraph/internal/faultpoint"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
)

// Worker failure recovery, driven end to end through the deterministic
// fault-injection seam (internal/faultpoint): a worker is killed at a
// named point — mid-superstep, mid-barrier, mid-delta-commit, during
// recovery itself — and every in-flight query must still complete with
// the result the single-process reference (Dijkstra) computes. No caller
// may ever observe worker_lost while at least one worker survives.

// recoverGraph is a bidirectional path: every SSSP pair has a unique
// distance, and hash partitioning spreads consecutive vertices across
// workers so queries always cross partitions (and therefore always have
// state on the worker being killed).
func recoverGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddBiEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	return b.MustBuild()
}

// fastRecovery tunes an engine config for sub-second failure detection
// and recovery in tests.
func fastRecovery(cfg *Config) {
	cfg.CheckEvery = time.Millisecond
	cfg.CommitEvery = 5 * time.Millisecond
	cfg.MaxBatchOps = 1 << 20 // commit on the timer, not per op
	cfg.HeartbeatEvery = 5 * time.Millisecond
	cfg.HeartbeatTimeout = 30 * time.Millisecond
	cfg.RespawnWait = 250 * time.Millisecond
}

// queryPairs is the reference workload: point-to-point SSSP across the
// whole path, long enough to span many supersteps and all workers.
func queryPairs(n int) [][2]graph.VertexID {
	return [][2]graph.VertexID{
		{0, graph.VertexID(n - 1)},
		{graph.VertexID(n - 1), 0},
		{1, graph.VertexID(n - 2)},
		{graph.VertexID(n / 2), graph.VertexID(n - 1)},
		{0, graph.VertexID(n / 2)},
		{2, graph.VertexID(n - 3)},
	}
}

// runRecoveryWorkload schedules the reference queries concurrently,
// waits for all of them, and asserts every result matches Dijkstra on g —
// whatever faults fire meanwhile. Queries are scheduled in two waves so
// some are in flight before the fault and some arrive during recovery.
func runRecoveryWorkload(t *testing.T, eng *Engine, g *graph.Graph, firstID query.ID) {
	t.Helper()
	pairs := queryPairs(g.NumVertices())
	type res struct {
		pair [2]graph.VertexID
		r    controller.Result
	}
	out := make(chan res, 2*len(pairs))
	var wg sync.WaitGroup
	launch := func(idBase query.ID) {
		for i, p := range pairs {
			h, err := eng.Schedule(query.Spec{
				ID: idBase + query.ID(i), Kind: query.KindSSSP, Source: p[0], Target: p[1],
			})
			if err != nil {
				t.Errorf("schedule %v: %v", p, err)
				continue
			}
			wg.Add(1)
			go func(p [2]graph.VertexID, h *Handle) {
				defer wg.Done()
				out <- res{pair: p, r: h.Wait()}
			}(p, h)
		}
	}
	launch(firstID)
	// Second wave lands while the first is executing (and typically while
	// the fault or the recovery is in progress).
	time.Sleep(10 * time.Millisecond)
	launch(firstID + 100)
	wg.Wait()
	close(out)
	got := 0
	for r := range out {
		got++
		if r.r.Reason == protocol.FinishWorkerLost {
			t.Fatalf("query %v finished worker_lost — recovery must hide worker death", r.pair)
		}
		if r.r.Reason != protocol.FinishConverged && r.r.Reason != protocol.FinishEarly {
			t.Fatalf("query %v finished %v", r.pair, r.r.Reason)
		}
		if want := graph.DijkstraTo(g, r.pair[0], r.pair[1]); r.r.Value != want {
			t.Fatalf("query %v = %g, want %g (single-worker reference)", r.pair, r.r.Value, want)
		}
	}
	if got != 2*len(pairs) {
		t.Fatalf("collected %d results, want %d", got, 2*len(pairs))
	}
}

// awaitRecovered polls until the engine reports a completed recovery
// episode and a settled health state.
func awaitRecovered(t *testing.T, eng *Engine, episodes int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		h := eng.Health()
		if eng.RecoveryStats().Recoveries >= episodes && !h.Recovering && !h.Degraded {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("recovery did not settle: health=%+v stats=%+v", eng.Health(), eng.RecoveryStats())
}

// distanceNeutralOps returns a mutation batch that cannot change any
// existing pairwise distance: a fresh vertex plus an over-weight edge to
// it (added edges can only shorten paths; one this heavy never does).
func distanceNeutralOps() []delta.Op {
	return []delta.Op{
		{Kind: delta.OpAddVertex},
		{Kind: delta.OpAddEdge, From: 0, To: 0, Weight: 1 << 14},
	}
}

// TestRecoveryFaultMatrix kills worker 1 at each named fault point and
// asserts the full acceptance property: all queries complete correctly,
// the commit (when one is in flight) resolves deterministically, and the
// engine returns to healthy with the partition handed to survivors.
func TestRecoveryFaultMatrix(t *testing.T) {
	cases := []struct {
		name  string
		point string
		// mutate stages a commit so the delta-commit points fire; the
		// pipelined path exercises them off-barrier.
		mutate bool
		// barrier forces the pre-MVCC barrier-commit baseline, whose
		// commit walks the worker into the GlobalStop point.
		barrier bool
	}{
		{name: "mid-superstep", point: faultpoint.WorkerSuperstep},
		{name: "mid-barrier", point: faultpoint.WorkerBarrierStop, mutate: true, barrier: true},
		{name: "mid-delta-commit-before-apply", point: faultpoint.WorkerDeltaApply, mutate: true},
		{name: "mid-delta-commit-after-apply", point: faultpoint.WorkerDeltaAck, mutate: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer faultpoint.Reset()
			g := recoverGraph(48)
			cfg := Config{Workers: 3, Graph: g, Partitioner: partition.Hash{}, BarrierCommit: tc.barrier}
			fastRecovery(&cfg)
			eng, err := Start(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()

			fired, disarm := faultpoint.KillOnce(tc.point, 1)
			defer disarm()

			var mch <-chan controller.MutationResult
			if tc.mutate {
				// The commit barrier is what walks worker 1 into the armed
				// point; stage it before the queries so it seals promptly.
				if mch, err = eng.Mutate(distanceNeutralOps()); err != nil {
					t.Fatal(err)
				}
			}

			runRecoveryWorkload(t, eng, g, 1)

			select {
			case <-fired:
			default:
				t.Fatal("fault point never fired — the scenario did not exercise the kill")
			}
			if tc.mutate {
				select {
				case res := <-mch:
					// Deterministic commit outcome: the batch commits after
					// recovery (abort + retry), never hangs, never errors.
					if res.Err != nil {
						t.Fatalf("commit after recovery: %v", res.Err)
					}
					if res.Version != 1 {
						t.Fatalf("retried commit landed at version %d, want 1", res.Version)
					}
				case <-time.After(10 * time.Second):
					t.Fatal("mutation caught in worker death never resolved")
				}
			}

			awaitRecovered(t, eng, 1)
			h := eng.Health()
			if len(h.DeadWorkers) != 1 || h.DeadWorkers[0] != 1 {
				t.Fatalf("health after handoff = %+v, want lost worker 1", h)
			}
			st := eng.RecoveryStats()
			if st.Handoffs < 1 {
				t.Fatalf("recovery stats %+v, want a handoff", st)
			}

			// The engine keeps serving after the episode.
			if d := sssp(t, eng, 500, 0, 47); d != graph.DijkstraTo(g, 0, 47) {
				t.Fatalf("post-recovery distance %g", d)
			}
			if err := eng.Close(); err != nil {
				t.Fatalf("engine close: %v", err)
			}
		})
	}
}

// TestRecoveryDuringRecovery kills a second worker at the WorkerRecover
// point — it dies the moment the first episode's RecoverStart reaches it
// — forcing a second recovery round inside the episode. The engine must
// converge on the single survivor with every query correct.
func TestRecoveryDuringRecovery(t *testing.T) {
	defer faultpoint.Reset()
	g := recoverGraph(48)
	cfg := Config{Workers: 3, Graph: g, Partitioner: partition.Hash{}}
	fastRecovery(&cfg)
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	fired1, disarm1 := faultpoint.KillOnce(faultpoint.WorkerSuperstep, 1)
	defer disarm1()
	fired2, disarm2 := faultpoint.KillOnce(faultpoint.WorkerRecover, 2)
	defer disarm2()

	runRecoveryWorkload(t, eng, g, 1)

	for _, fired := range []<-chan struct{}{fired1, fired2} {
		select {
		case <-fired:
		default:
			t.Fatal("a fault point never fired")
		}
	}
	awaitRecovered(t, eng, 1)
	h := eng.Health()
	if len(h.DeadWorkers) != 2 {
		t.Fatalf("health = %+v, want workers 1 and 2 lost", h)
	}
	if d := sssp(t, eng, 500, 0, 47); d != graph.DijkstraTo(g, 0, 47) {
		t.Fatalf("post-recovery distance %g", d)
	}
}

// TestTwoWorkersDieSameWindow kills two workers at (nearly) the same
// moment: both fall out of the same heartbeat window and the episode must
// hand both partitions to the survivors.
func TestTwoWorkersDieSameWindow(t *testing.T) {
	defer faultpoint.Reset()
	g := recoverGraph(48)
	cfg := Config{Workers: 4, Graph: g, Partitioner: partition.Hash{}}
	fastRecovery(&cfg)
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	fired1, disarm1 := faultpoint.KillOnce(faultpoint.WorkerSuperstep, 1)
	defer disarm1()
	fired2, disarm2 := faultpoint.KillOnce(faultpoint.WorkerSuperstep, 3)
	defer disarm2()

	runRecoveryWorkload(t, eng, g, 1)

	for _, fired := range []<-chan struct{}{fired1, fired2} {
		select {
		case <-fired:
		default:
			t.Fatal("a fault point never fired")
		}
	}
	awaitRecovered(t, eng, 1)
	h := eng.Health()
	if len(h.DeadWorkers) != 2 {
		t.Fatalf("health = %+v, want two lost workers", h)
	}
	if d := sssp(t, eng, 500, 0, 47); d != graph.DijkstraTo(g, 0, 47) {
		t.Fatalf("post-recovery distance %g", d)
	}
}

// TestRecoveryRespawn lets the engine relaunch the killed worker: the
// replacement rejoins via WorkerHello/PartitionGrant, rebuilds its view by
// replaying the committed delta log, and adopts its old partition in
// place — afterwards no worker is lost and the full set serves again.
func TestRecoveryRespawn(t *testing.T) {
	defer faultpoint.Reset()
	g := recoverGraph(48)
	cfg := Config{Workers: 3, Graph: g, Partitioner: partition.Hash{}, RespawnWorkers: true}
	fastRecovery(&cfg)
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Commit a batch before the kill so the replacement actually has log
	// to replay (the interesting rebuild path).
	mutate(t, eng, distanceNeutralOps())

	fired, disarm := faultpoint.KillOnce(faultpoint.WorkerSuperstep, 1)
	defer disarm()

	runRecoveryWorkload(t, eng, g, 1)
	select {
	case <-fired:
	default:
		t.Fatal("fault point never fired")
	}
	awaitRecovered(t, eng, 1)

	h := eng.Health()
	if len(h.DeadWorkers) != 0 {
		t.Fatalf("health after respawn = %+v, want full worker set", h)
	}
	st := eng.RecoveryStats()
	if st.Rejoins < 1 {
		t.Fatalf("recovery stats %+v, want a rejoin", st)
	}

	// The replacement's replica converged on the committed version and
	// serves further commits.
	mutate(t, eng, distanceNeutralOps())
	if d := sssp(t, eng, 600, 0, 47); d != graph.DijkstraTo(g, 0, 47) {
		t.Fatalf("post-respawn distance %g", d)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	if v := eng.Workers()[1].View().Version(); v != eng.GraphVersion() {
		t.Fatalf("respawned worker at version %d, engine at %d", v, eng.GraphVersion())
	}
}

// TestSlowWorkerSurvivesRecovery arms a delay (not a kill) on worker 2:
// it answers heartbeats late but within the timeout while worker 1 dies.
// The flapping-but-alive worker must not be declared dead mid-recovery.
func TestSlowWorkerSurvivesRecovery(t *testing.T) {
	defer faultpoint.Reset()
	g := recoverGraph(48)
	cfg := Config{Workers: 3, Graph: g, Partitioner: partition.Hash{}}
	fastRecovery(&cfg)
	cfg.HeartbeatTimeout = 60 * time.Millisecond
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Worker 2 stalls 10ms per superstep — repeatedly missing probe
	// rounds, never the full timeout.
	disarmSlow := faultpoint.Arm(faultpoint.WorkerSuperstep, func(args ...int) bool {
		if len(args) > 0 && args[0] == 2 {
			time.Sleep(10 * time.Millisecond)
		}
		return false
	})
	defer disarmSlow()
	fired, disarm := faultpoint.KillOnce(faultpoint.WorkerSuperstep, 1)
	defer disarm()

	runRecoveryWorkload(t, eng, g, 1)
	select {
	case <-fired:
	default:
		t.Fatal("fault point never fired")
	}
	awaitRecovered(t, eng, 1)
	h := eng.Health()
	if len(h.DeadWorkers) != 1 || h.DeadWorkers[0] != 1 {
		t.Fatalf("health = %+v: the slow-but-alive worker 2 must survive", h)
	}
}

// TestShutdownRacesRecovery closes the engine while a recovery episode is
// (most likely) mid-flight. The only requirement is a clean, prompt
// shutdown: no deadlock, no spurious engine error, and every outstanding
// caller unblocked.
func TestShutdownRacesRecovery(t *testing.T) {
	defer faultpoint.Reset()
	g := recoverGraph(48)
	cfg := Config{Workers: 3, Graph: g, Partitioner: partition.Hash{}}
	fastRecovery(&cfg)
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}

	fired, disarm := faultpoint.KillOnce(faultpoint.WorkerSuperstep, 1)
	defer disarm()

	pairs := queryPairs(g.NumVertices())
	var wg sync.WaitGroup
	for i, p := range pairs {
		h, err := eng.Schedule(query.Spec{
			ID: query.ID(i + 1), Kind: query.KindSSSP, Source: p[0], Target: p[1],
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Wait() // must unblock, whatever the reason
		}()
	}
	<-fired
	// Land the Close in the detection/recovery window.
	time.Sleep(15 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- eng.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close during recovery: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("engine close deadlocked against recovery")
	}
	wg.Wait()
}
