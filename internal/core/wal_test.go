package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"qgraph/internal/delta"
	"qgraph/internal/faultpoint"
	"qgraph/internal/partition"
	"qgraph/internal/snapshot"
	"qgraph/internal/wal"
)

// Durable WAL end to end: a crashed engine restarted over the same
// snapshot + WAL directories recovers to the exact pre-crash committed
// version with identical query answers, including the nastiest edge — a
// batch fsynced to the WAL whose ack never reached its caller — and a
// torn final WAL record from a crash mid-append.

const walTestGraphID = 42

// startWALEngine builds an engine over the shared dirs, recovering from
// the newest snapshot (if any) before the WAL tail replays.
func startWALEngine(t *testing.T, snapDir, walDir string) *Engine {
	t.Helper()
	g, baseV := pathGraph(10), uint64(0)
	if snap, err := snapshot.LoadLatest(snapDir); err != nil {
		t.Fatal(err)
	} else if snap != nil {
		g, baseV = snap.Graph, snap.Version
	}
	cfg := Config{
		Workers: 2, Graph: g, Partitioner: partition.Hash{},
		SnapshotDir: snapDir, BaseVersion: baseV,
		WALDir: walDir, WALGraphID: walTestGraphID,
	}
	fastCommit(&cfg)
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestWALRestartRecoversExactVersion is the tentpole acceptance at
// library level: commit → checkpoint → commit more → crash between the
// WAL fsync and the barrier ack → restart. The restarted engine must sit
// at the last durable version (including the never-acknowledged batch),
// answer queries identically to a never-crashed control run, and continue
// the version chain.
func TestWALRestartRecoversExactVersion(t *testing.T) {
	defer faultpoint.Reset()
	snapDir, walDir := t.TempDir(), t.TempDir()

	// Control run: the same batches, no crash.
	ctl, err := Start(func() Config {
		c := Config{Workers: 2, Graph: pathGraph(10), Partitioner: partition.Hash{}}
		fastCommit(&c)
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	shortcut := []delta.Op{{Kind: delta.OpAddEdge, From: 0, To: 9, Weight: 1.5}}
	second := []delta.Op{{Kind: delta.OpAddEdge, From: 0, To: 5, Weight: 0.25}}
	third := []delta.Op{{Kind: delta.OpSetWeight, From: 0, To: 9, Weight: 1.25}}
	mutate(t, ctl, shortcut)
	mutate(t, ctl, second)
	mutate(t, ctl, third)
	want := sssp(t, ctl, 900, 0, 9)
	if want != 1.25 {
		t.Fatalf("control distance %g, want 1.25", want)
	}

	// Crash run: version 1 committed and checkpointed, version 2 in the
	// WAL only, version 3 fsynced but the engine dies before the ack.
	eng := startWALEngine(t, snapDir, walDir)
	mutate(t, eng, shortcut)
	if res, err := eng.ForceSnapshot(); err != nil || !res.Persisted {
		t.Fatalf("checkpoint = %+v, %v", res, err)
	}
	mutate(t, eng, second)

	disarm := faultpoint.Arm(faultpoint.WALAppend, func(...int) bool { return true })
	ch, err := eng.Mutate(third)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-ch:
		if res.Err == nil {
			t.Fatalf("crashed commit acknowledged cleanly: %+v", res)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("crashed commit never resolved")
	}
	disarm()
	if err := eng.Close(); !errors.Is(err, faultpoint.ErrKilled) {
		t.Fatalf("engine close = %v, want the injected kill", err)
	}

	// The WAL holds versions 2 and 3 beyond the checkpoint at 1.
	tail, err := wal.ReadTail(walDir, walTestGraphID, 1)
	if err != nil || len(tail) != 2 || tail[1].Version != 3 {
		t.Fatalf("wal tail = %+v, %v; want versions 2,3", tail, err)
	}

	// Restart over the same directories: exact pre-crash version, same
	// answers as the never-crashed control, version chain continues.
	eng2 := startWALEngine(t, snapDir, walDir)
	defer eng2.Close()
	if v := eng2.GraphVersion(); v != 3 {
		t.Fatalf("recovered version %d, want 3 (the fsynced-but-unacked batch must survive)", v)
	}
	if _, baseV := eng2.GraphBase(); baseV != 3 {
		t.Fatalf("recovered base version %d, want 3", baseV)
	}
	if got := sssp(t, eng2, 901, 0, 9); got != want {
		t.Fatalf("post-restart distance %g, control %g", got, want)
	}
	if res := mutate(t, eng2, []delta.Op{{Kind: delta.OpAddVertex}}); res.Version != 4 {
		t.Fatalf("post-restart commit landed at version %d, want 4", res.Version)
	}
	if st := eng2.WALStats(); !st.Enabled || st.HeadVersion != 4 {
		t.Fatalf("wal stats after restart: %+v", st)
	}
}

// TestWALTornTailRestart: a crash mid-append leaves a torn final record;
// the restart recovers the intact prefix — the exact committed state,
// since a torn record's batch was never acknowledged.
func TestWALTornTailRestart(t *testing.T) {
	snapDir, walDir := t.TempDir(), t.TempDir()
	eng := startWALEngine(t, snapDir, walDir)
	mutate(t, eng, []delta.Op{{Kind: delta.OpAddEdge, From: 0, To: 9, Weight: 1.5}})
	mutate(t, eng, []delta.Op{{Kind: delta.OpAddEdge, From: 0, To: 5, Weight: 0.25}})
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop a few bytes off the head segment.
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.qlog"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	head := segs[len(segs)-1]
	raw, err := os.ReadFile(head)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(head, raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	eng2 := startWALEngine(t, snapDir, walDir)
	defer eng2.Close()
	if v := eng2.GraphVersion(); v != 1 {
		t.Fatalf("recovered version %d, want 1 (torn record dropped)", v)
	}
	if got := sssp(t, eng2, 902, 0, 9); got != 1.5 {
		t.Fatalf("post-repair distance %g, want 1.5", got)
	}
	// The repaired chain keeps accepting commits.
	if res := mutate(t, eng2, []delta.Op{{Kind: delta.OpAddVertex}}); res.Version != 2 {
		t.Fatalf("commit after repair at version %d, want 2", res.Version)
	}
}

// TestSnapshotCutRunsOffTheBarrier: while the background cutter is
// blocked mid-cut, commit barriers keep completing — the O(V+E) fold no
// longer sits inside the commit path.
func TestSnapshotCutRunsOffTheBarrier(t *testing.T) {
	defer faultpoint.Reset()
	g := pathGraph(10)
	cfg := Config{Workers: 2, Graph: g, Partitioner: partition.Hash{}, SnapshotDir: t.TempDir()}
	fastCommit(&cfg)
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	mutate(t, eng, neutralOps(4))

	// Stall the cutter indefinitely; SnapshotCut fires on its goroutine.
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	disarm := faultpoint.Arm(faultpoint.SnapshotCut, func(...int) bool {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-block
		return false
	})
	defer disarm()
	resCh := make(chan snapshot.Result, 1)
	go func() {
		res, err := eng.ForceSnapshot()
		if err == nil {
			resCh <- res
		}
	}()
	// Wait until the cut actually pinned its view and blocked — pipelined
	// commits are fast enough to win the race against the request
	// otherwise, which would pin a later version.
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("cutter never started")
	}

	// Commits must keep flowing while the cut is stuck (any of them
	// hanging fails the test via mutate's own timeout).
	for i := 0; i < 3; i++ {
		mutate(t, eng, neutralOps(2))
	}
	select {
	case res := <-resCh:
		t.Fatalf("cut completed while the cutter was blocked: %+v", res)
	default:
	}

	close(block)
	select {
	case res := <-resCh:
		if !res.Cut || !res.Persisted {
			t.Fatalf("released cut = %+v", res)
		}
		// The cut pinned the pre-block version; the commits that ran
		// meanwhile stayed in the log (truncation only covers the pin).
		if res.Version != 1 {
			t.Fatalf("cut pinned version %d, want 1", res.Version)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("released cut never completed")
	}
	if st := eng.SnapshotStats(); st.DeltaLogOps != 6 {
		t.Fatalf("retained ops %d, want the 6 committed during the cut", st.DeltaLogOps)
	}
}

// TestWALNotTruncatedByMemoryOnlySnapshots: a cut into a memory-only
// snapshot store (WALDir set, SnapshotDir empty) must never truncate the
// durable log — the snapshot dies with the process, so the WAL is the
// only restart substrate and must keep reaching back to the base.
func TestWALNotTruncatedByMemoryOnlySnapshots(t *testing.T) {
	walDir := t.TempDir()
	cfg := Config{
		Workers: 2, Graph: pathGraph(10), Partitioner: partition.Hash{},
		WALDir: walDir, WALGraphID: walTestGraphID,
	}
	fastCommit(&cfg)
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, eng, []delta.Op{{Kind: delta.OpAddEdge, From: 0, To: 9, Weight: 1.5}})
	mutate(t, eng, []delta.Op{{Kind: delta.OpAddEdge, From: 0, To: 5, Weight: 0.25}})
	if res, err := eng.ForceSnapshot(); err != nil || !res.Cut || res.Persisted {
		t.Fatalf("memory-only cut = %+v, %v", res, err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Every batch must still be replayable from version 0.
	tail, err := wal.ReadTail(walDir, walTestGraphID, 0)
	if err != nil || len(tail) != 2 {
		t.Fatalf("wal tail after memory-only cut = %d batches, %v (truncated past a non-durable snapshot?)", len(tail), err)
	}
	eng2 := startWALEngine(t, t.TempDir(), walDir)
	defer eng2.Close()
	if v := eng2.GraphVersion(); v != 2 {
		t.Fatalf("restart recovered version %d, want 2", v)
	}
	if got := sssp(t, eng2, 903, 0, 9); got != 1.5 {
		t.Fatalf("post-restart distance %g, want 1.5", got)
	}
}

// TestFailedPersistRetryableAtSameVersion: a cut whose durable write
// failed must be retryable at the same version — the operator forcing a
// snapshot again after fixing the disk gets a real cut, not a Cut=false
// no-op behind which nothing is durable.
func TestFailedPersistRetryableAtSameVersion(t *testing.T) {
	defer faultpoint.Reset()
	cfg := Config{
		Workers: 2, Graph: pathGraph(10), Partitioner: partition.Hash{},
		SnapshotDir: t.TempDir(),
	}
	fastCommit(&cfg)
	eng, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mutate(t, eng, neutralOps(8))

	disarm := faultpoint.Arm(faultpoint.SnapshotPersist, func(...int) bool { return true })
	res, err := eng.ForceSnapshot()
	disarm()
	if err != nil || !res.Cut || res.Persisted || res.TruncatedOps != 0 {
		t.Fatalf("failing-persist cut = %+v, %v", res, err)
	}

	// Same version, disk healthy again: the retry must cut for real.
	res, err = eng.ForceSnapshot()
	if err != nil || !res.Cut || !res.Persisted || res.TruncatedOps != 8 {
		t.Fatalf("retry at same version = %+v, %v; want a durable cut", res, err)
	}
	if snap, err := snapshot.LoadLatest(cfg.SnapshotDir); err != nil || snap == nil || snap.Version != res.Version {
		t.Fatalf("retried cut not on disk: %+v, %v", snap, err)
	}
}
