// Package delta implements streaming graph updates over the immutable CSR
// graph: a small mutation algebra (add/remove edge, set weight, add
// vertex), batches of those operations committed as one atomic unit, and
// an epoch-versioned read-through overlay (View) that layers committed
// batches over a base graph without rebuilding it.
//
// The Q-Graph model treats the graph as immutable shared structure; this
// package is the second data plane that relaxes that: the controller
// stages incoming operations into a batch, commits the batch at a global
// barrier while the vertex-message network is provably quiet, and every
// node (controller and workers) applies the same batch to its own View.
// Queries therefore always execute against a consistent graph version —
// a superstep never observes a half-applied batch. Large overlays are
// periodically folded back into a fresh CSR base (compaction).
package delta

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"qgraph/internal/graph"
)

// OpKind discriminates mutation operations. The numeric values are part of
// the wire format (transport codec) and of the replayable stream format.
type OpKind uint8

// The mutation operations.
const (
	// OpAddEdge appends a directed edge From -> To with Weight.
	OpAddEdge OpKind = iota + 1
	// OpRemoveEdge removes the first directed edge From -> To, if any.
	OpRemoveEdge
	// OpSetWeight sets the weight of the first directed edge From -> To,
	// if any.
	OpSetWeight
	// OpAddVertex appends one new vertex (id = current NumVertices). New
	// vertices carry no coordinate and no POI tag.
	OpAddVertex
)

// String returns the stream-format name of the kind.
func (k OpKind) String() string {
	switch k {
	case OpAddEdge:
		return "add_edge"
	case OpRemoveEdge:
		return "remove_edge"
	case OpSetWeight:
		return "set_weight"
	case OpAddVertex:
		return "add_vertex"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// KindFromString parses a stream-format kind name.
func KindFromString(s string) (OpKind, error) {
	switch s {
	case "add_edge":
		return OpAddEdge, nil
	case "remove_edge":
		return OpRemoveEdge, nil
	case "set_weight":
		return OpSetWeight, nil
	case "add_vertex":
		return OpAddVertex, nil
	default:
		return 0, fmt.Errorf("delta: unknown op kind %q", s)
	}
}

// Op is one mutation operation. From/To/Weight are meaningful per kind:
// edge ops use all three (Weight ignored by remove), OpAddVertex uses none.
type Op struct {
	Kind   OpKind
	From   graph.VertexID
	To     graph.VertexID
	Weight float32
}

// Validate range-checks op against a graph of n vertices (n already
// includes vertices added earlier in the same staged batch) and checks the
// weight. It returns the vertex count after the op.
func (op Op) Validate(n int) (int, error) {
	switch op.Kind {
	case OpAddEdge, OpRemoveEdge, OpSetWeight:
		if op.From < 0 || int(op.From) >= n {
			return n, fmt.Errorf("delta: %s source %d out of range [0,%d)", op.Kind, op.From, n)
		}
		if op.To < 0 || int(op.To) >= n {
			return n, fmt.Errorf("delta: %s target %d out of range [0,%d)", op.Kind, op.To, n)
		}
		if op.Kind != OpRemoveEdge {
			if op.Weight < 0 || math.IsNaN(float64(op.Weight)) {
				return n, fmt.Errorf("delta: %s weight %v invalid", op.Kind, op.Weight)
			}
		}
		return n, nil
	case OpAddVertex:
		return n + 1, nil
	default:
		return n, fmt.Errorf("delta: unknown op kind %d", uint8(op.Kind))
	}
}

// ValidateOps range-checks a whole batch against a view of n vertices.
func ValidateOps(ops []Op, n int) error {
	var err error
	for i, op := range ops {
		if n, err = op.Validate(n); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
	}
	return nil
}

// OpStatus is the per-op outcome of an Apply.
type OpStatus uint8

// Apply outcomes. A NoOp is an op that referenced a non-existent edge
// (remove/set_weight of an edge that is not there); the batch still
// commits, the op just had nothing to do.
const (
	OpApplied OpStatus = iota
	OpNoOp
)

// ---------------------------------------------------------------------------
// Replayable stream format
//
// One op per line, whitespace-separated:
//
//	add_edge <from> <to> <weight>
//	remove_edge <from> <to>
//	set_weight <from> <to> <weight>
//	add_vertex
//
// Blank lines and lines starting with '#' are skipped. qgraph-gen emits
// this format alongside generated graphs; qgraph-bench and tests replay it.

// FormatOp renders op in the stream format (without newline).
func FormatOp(op Op) string {
	switch op.Kind {
	case OpAddEdge, OpSetWeight:
		return fmt.Sprintf("%s %d %d %g", op.Kind, op.From, op.To, op.Weight)
	case OpRemoveEdge:
		return fmt.Sprintf("%s %d %d", op.Kind, op.From, op.To)
	default:
		return op.Kind.String()
	}
}

// ParseOp parses one stream-format line.
func ParseOp(line string) (Op, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Op{}, fmt.Errorf("delta: empty op line")
	}
	kind, err := KindFromString(fields[0])
	if err != nil {
		return Op{}, err
	}
	op := Op{Kind: kind}
	want := map[OpKind]int{OpAddEdge: 4, OpRemoveEdge: 3, OpSetWeight: 4, OpAddVertex: 1}[kind]
	if len(fields) != want {
		return Op{}, fmt.Errorf("delta: %s takes %d fields, got %d", kind, want-1, len(fields)-1)
	}
	vertex := func(s string) (graph.VertexID, error) {
		v, err := strconv.ParseInt(s, 10, 32)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("delta: bad vertex id %q", s)
		}
		return graph.VertexID(v), nil
	}
	if kind != OpAddVertex {
		if op.From, err = vertex(fields[1]); err != nil {
			return Op{}, err
		}
		if op.To, err = vertex(fields[2]); err != nil {
			return Op{}, err
		}
	}
	if kind == OpAddEdge || kind == OpSetWeight {
		w, err := strconv.ParseFloat(fields[3], 32)
		if err != nil || w < 0 || math.IsNaN(w) {
			return Op{}, fmt.Errorf("delta: bad weight %q", fields[3])
		}
		op.Weight = float32(w)
	}
	return op, nil
}

// WriteOps writes ops in the stream format, one per line.
func WriteOps(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		if _, err := bw.WriteString(FormatOp(op)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadOps parses a whole stream, skipping blanks and '#' comments.
func ReadOps(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		op, err := ParseOp(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}
