package delta

import (
	"fmt"

	"qgraph/internal/graph"
)

// Compaction policy: fold the overlay back into a fresh CSR base once the
// patched set is both large in absolute terms and a sizable fraction of
// the base. Small overlays stay overlays — a rebuild is O(V+E) and runs
// inside the commit barrier, so it must be rare.
const (
	compactMinPatched = 1024
	compactFactor     = 4 // compact when patched*factor >= base vertices
)

// View is a consistent, versioned read-through graph: an immutable CSR
// base plus the accumulated overlay of committed mutation batches. It
// implements graph.View.
//
// A View is immutable: Apply returns a new View and leaves the receiver
// valid, so concurrent readers can keep using a snapshot while the next
// batch commits. All nodes applying the same batch sequence to the same
// base converge on the same logical graph (and compact at the same
// batches), keeping replicas consistent without shipping graph data.
type View struct {
	base *graph.Graph
	// patched maps a vertex to its full replacement adjacency. Vertices
	// added after the base was built (id >= base.NumVertices()) also live
	// here once they have out-edges.
	patched map[graph.VertexID][]graph.Edge
	// extraN counts vertices added beyond the base.
	extraN int
	// edgeDelta is the signed edge-count difference vs the base.
	edgeDelta int
	// version counts committed batches since the original base (graph
	// version 0). Compaction does not change the version.
	version uint64
	// compactions counts folds into a fresh base, for introspection.
	compactions uint64
}

// NewView wraps a base graph as version 0.
func NewView(base *graph.Graph) *View {
	return &View{base: base, patched: map[graph.VertexID][]graph.Edge{}}
}

// NewViewAt wraps a base graph as committed version v: the replay base for
// a checkpointed deployment, where the graph on disk already contains the
// first v batches folded in (internal/snapshot).
func NewViewAt(base *graph.Graph, v uint64) *View {
	return &View{base: base, patched: map[graph.VertexID][]graph.Edge{}, version: v}
}

// Version returns the number of committed batches.
func (v *View) Version() uint64 { return v.version }

// Compactions returns how many times the overlay was folded into a fresh
// base.
func (v *View) Compactions() uint64 { return v.compactions }

// OverlaySize returns the number of patched adjacencies (0 right after a
// compaction).
func (v *View) OverlaySize() int { return len(v.patched) }

// NumVertices implements graph.View.
func (v *View) NumVertices() int { return v.base.NumVertices() + v.extraN }

// NumEdges implements graph.View.
func (v *View) NumEdges() int { return v.base.NumEdges() + v.edgeDelta }

// Out implements graph.View. The returned slice must not be modified.
func (v *View) Out(u graph.VertexID) []graph.Edge {
	if len(v.patched) != 0 {
		if adj, ok := v.patched[u]; ok {
			return adj
		}
	}
	if int(u) >= v.base.NumVertices() {
		return nil // added vertex without out-edges
	}
	return v.base.Out(u)
}

// OutDegree implements graph.View.
func (v *View) OutDegree(u graph.VertexID) int { return len(v.Out(u)) }

// HasCoords implements graph.View.
func (v *View) HasCoords() bool { return v.base.HasCoords() }

// Coord implements graph.View. Vertices added after the base was built
// carry the zero coordinate.
func (v *View) Coord(u graph.VertexID) graph.Coord {
	if int(u) >= v.base.NumVertices() {
		return graph.Coord{}
	}
	return v.base.Coord(u)
}

// HasTags implements graph.View.
func (v *View) HasTags() bool { return v.base.HasTags() }

// Tagged implements graph.View. Added vertices are never tagged.
func (v *View) Tagged(u graph.VertexID) bool {
	if int(u) >= v.base.NumVertices() {
		return false
	}
	return v.base.Tagged(u)
}

var _ graph.View = (*View)(nil)

// Apply commits one batch of operations as the next version and returns
// the resulting View, leaving the receiver untouched. The returned
// statuses are parallel to ops (OpApplied or OpNoOp). Out-of-range ops
// return an error and no new view — callers are expected to have
// validated the batch (ValidateOps), so an error here means replicas
// would diverge and must be treated as fatal.
func (v *View) Apply(ops []Op) (*View, []OpStatus, error) {
	if err := ValidateOps(ops, v.NumVertices()); err != nil {
		return nil, nil, err
	}
	nv := &View{
		base:        v.base,
		patched:     make(map[graph.VertexID][]graph.Edge, len(v.patched)+8),
		extraN:      v.extraN,
		edgeDelta:   v.edgeDelta,
		version:     v.version + 1,
		compactions: v.compactions,
	}
	for u, adj := range v.patched {
		nv.patched[u] = adj
	}
	// Adjacencies cloned during THIS apply may be mutated in place; ones
	// inherited from v must be copied first (the old view stays live).
	cloned := make(map[graph.VertexID]bool, len(ops))
	adjOf := func(u graph.VertexID) []graph.Edge {
		if adj, ok := nv.patched[u]; ok {
			if !cloned[u] {
				adj = append([]graph.Edge(nil), adj...)
				nv.patched[u] = adj
				cloned[u] = true
			}
			return adj
		}
		var adj []graph.Edge
		if int(u) < nv.base.NumVertices() {
			adj = append([]graph.Edge(nil), nv.base.Out(u)...)
		}
		nv.patched[u] = adj
		cloned[u] = true
		return adj
	}

	statuses := make([]OpStatus, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case OpAddEdge:
			nv.patched[op.From] = append(adjOf(op.From), graph.Edge{To: op.To, Weight: op.Weight})
			nv.edgeDelta++
		case OpRemoveEdge:
			adj := adjOf(op.From)
			idx := -1
			for j, e := range adj {
				if e.To == op.To {
					idx = j
					break
				}
			}
			if idx < 0 {
				statuses[i] = OpNoOp
				continue
			}
			nv.patched[op.From] = append(adj[:idx:idx], adj[idx+1:]...)
			nv.edgeDelta--
		case OpSetWeight:
			adj := adjOf(op.From)
			idx := -1
			for j, e := range adj {
				if e.To == op.To {
					idx = j
					break
				}
			}
			if idx < 0 {
				statuses[i] = OpNoOp
				continue
			}
			adj[idx].Weight = op.Weight
		case OpAddVertex:
			nv.extraN++
		}
	}
	if len(nv.patched) >= compactMinPatched && len(nv.patched)*compactFactor >= nv.base.NumVertices() {
		return nv.Compact(), statuses, nil
	}
	return nv, statuses, nil
}

// Compact folds the overlay into a fresh CSR base, preserving the logical
// graph and version. Added vertices get zero coordinates and no tag.
func (v *View) Compact() *View {
	n := v.NumVertices()
	offsets := make([]int32, n+1)
	total := 0
	for u := 0; u < n; u++ {
		total += len(v.Out(graph.VertexID(u)))
		offsets[u+1] = int32(total)
	}
	edges := make([]graph.Edge, 0, total)
	for u := 0; u < n; u++ {
		edges = append(edges, v.Out(graph.VertexID(u))...)
	}
	var coords []graph.Coord
	if v.base.HasCoords() {
		coords = make([]graph.Coord, n)
		copy(coords, v.base.Coords())
	}
	var tags []bool
	if v.base.HasTags() {
		tags = make([]bool, n)
		for u := 0; u < v.base.NumVertices(); u++ {
			tags[u] = v.base.Tagged(graph.VertexID(u))
		}
	}
	base, err := graph.FromCSR(offsets, edges, coords, tags)
	if err != nil {
		// Impossible: every op was validated before it entered the overlay.
		panic(fmt.Sprintf("delta: compaction produced invalid graph: %v", err))
	}
	return &View{
		base:        base,
		patched:     map[graph.VertexID][]graph.Edge{},
		version:     v.version,
		compactions: v.compactions + 1,
	}
}

// Materialize returns the logical graph as a standalone immutable CSR
// graph (tests use it to run reference algorithms post-mutation).
func (v *View) Materialize() *graph.Graph {
	return v.Compact().base
}
