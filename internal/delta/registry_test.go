package delta

import (
	"sync"
	"testing"
)

func step(t *testing.T, v *View, w float32) *View {
	t.Helper()
	nv, _ := mustApply(t, v, Op{Kind: OpAddEdge, From: 0, To: 2, Weight: w})
	return nv
}

func TestRegistryPinRetire(t *testing.T) {
	v0 := NewView(lineGraph(3))
	r := NewRegistry(v0)
	if got := r.LatestVersion(); got != 0 {
		t.Fatalf("latest = %d, want 0", got)
	}

	pinned, err := r.Pin(0)
	if err != nil {
		t.Fatalf("pin v0: %v", err)
	}
	if pinned != v0 {
		t.Fatalf("pin returned wrong view")
	}

	v1 := step(t, v0, 5)
	r.Publish(v1)
	if got := r.Latest(); got != v1 {
		t.Fatalf("latest view not v1")
	}
	// v0 still pinned: must survive the publish.
	if s := r.Stats(); s.Live != 2 || s.Pinned != 1 || s.OldestPinned != 0 {
		t.Fatalf("stats after publish = %+v", s)
	}

	r.Unpin(0)
	if s := r.Stats(); s.Live != 1 || s.Retired != 1 {
		t.Fatalf("v0 not retired after unpin: %+v", s)
	}
	if _, err := r.Pin(0); err == nil {
		t.Fatalf("pin of retired version succeeded")
	}
}

func TestRegistryUnpinnedSupersededRetiresOnPublish(t *testing.T) {
	v0 := NewView(lineGraph(3))
	r := NewRegistry(v0)
	r.Publish(step(t, v0, 5))
	if s := r.Stats(); s.Live != 1 || s.Retired != 1 || s.Latest != 1 {
		t.Fatalf("unpinned v0 should retire on publish: %+v", s)
	}
}

func TestRegistryLatestNeverRetires(t *testing.T) {
	v0 := NewView(lineGraph(3))
	r := NewRegistry(v0)
	if _, err := r.Pin(0); err != nil {
		t.Fatalf("pin: %v", err)
	}
	r.Unpin(0)
	// Still latest: a new query must be able to pin it.
	if _, err := r.Pin(0); err != nil {
		t.Fatalf("latest retired while current: %v", err)
	}
}

func TestRegistryUnpinAll(t *testing.T) {
	v0 := NewView(lineGraph(3))
	r := NewRegistry(v0)
	v1 := step(t, v0, 5)
	if _, err := r.Pin(0); err != nil {
		t.Fatal(err)
	}
	r.Publish(v1)
	if _, err := r.Pin(1); err != nil {
		t.Fatal(err)
	}
	r.UnpinAll()
	s := r.Stats()
	if s.Live != 1 || s.Pinned != 0 || s.Latest != 1 {
		t.Fatalf("after UnpinAll: %+v", s)
	}
}

func TestRegistryDropRollback(t *testing.T) {
	v0 := NewView(lineGraph(3))
	r := NewRegistry(v0)
	v1 := step(t, v0, 5)
	r.Publish(v1)
	if err := r.Drop(1, v0); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if got := r.LatestVersion(); got != 0 {
		t.Fatalf("latest after drop = %d, want 0", got)
	}
	if _, err := r.Pin(0); err != nil {
		t.Fatalf("pin restored v0: %v", err)
	}
	// Dropping a pinned latest must refuse.
	v1b := step(t, r.Latest(), 2)
	r.Publish(v1b)
	if _, err := r.Pin(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Drop(1, v0); err == nil {
		t.Fatalf("drop of pinned version succeeded")
	}
}

func TestRegistryConcurrentPinUnpin(t *testing.T) {
	v0 := NewView(lineGraph(3))
	r := NewRegistry(v0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer publishes a chain of versions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := v0
		for i := 0; i < 200; i++ {
			nv, _, err := v.Apply([]Op{{Kind: OpAddEdge, From: 0, To: 1, Weight: float32(i + 1)}})
			if err != nil {
				t.Errorf("apply: %v", err)
				return
			}
			v = nv
			r.Publish(v)
		}
		close(stop)
	}()
	// Readers pin latest, read, unpin.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ver := r.LatestVersion()
				view, err := r.Pin(ver)
				if err != nil {
					continue // superseded between the two calls; fine
				}
				if view.Version() != ver {
					t.Errorf("pinned view version %d != %d", view.Version(), ver)
				}
				_ = view.NumEdges()
				r.Unpin(ver)
			}
		}()
	}
	wg.Wait()
	if s := r.Stats(); s.Live != 1 || s.Latest != 200 {
		t.Fatalf("final stats: %+v", s)
	}
}
