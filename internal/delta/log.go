package delta

import (
	"fmt"

	"qgraph/internal/graph"
)

// Log is the replayable stream of committed mutation batches: the ops of
// every committed version in order. It is the recovery substrate — a
// respawned worker rebuilds its graph view from the shared CSR base plus a
// replay of this log, instead of shipping graph data — and the reference
// for the consistency property that base + replay equals the live overlay
// at every version.
//
// The log holds every batch since version 0; truncation requires shipping
// a base snapshot instead of replaying from the original graph file and is
// future work (see ROADMAP).
//
// A Log is confined to its owner's goroutine (the controller event loop);
// accessors copy, so snapshots handed to other goroutines stay stable.
type Log struct {
	batches []LogBatch
}

// LogBatch is one committed version's operations.
type LogBatch struct {
	Version uint64
	Ops     []Op
}

// Append records the ops committed as version v. Versions must be
// appended contiguously starting at 1.
func (l *Log) Append(v uint64, ops []Op) error {
	if want := uint64(len(l.batches)) + 1; v != want {
		return fmt.Errorf("delta: log append version %d, want %d", v, want)
	}
	l.batches = append(l.batches, LogBatch{Version: v, Ops: append([]Op(nil), ops...)})
	return nil
}

// Head returns the latest committed version in the log (0 when empty).
func (l *Log) Head() uint64 { return uint64(len(l.batches)) }

// Since returns copies of every batch with Version > v, in order.
func (l *Log) Since(v uint64) []LogBatch {
	if v >= uint64(len(l.batches)) {
		return nil
	}
	out := make([]LogBatch, 0, uint64(len(l.batches))-v)
	for _, b := range l.batches[v:] {
		out = append(out, LogBatch{Version: b.Version, Ops: append([]Op(nil), b.Ops...)})
	}
	return out
}

// Replay rebuilds the view at version upto by applying the log's batches
// over the base graph. Every replica that applies the same log to the same
// base converges on the same logical graph, which is what lets a respawned
// worker adopt a partition without any graph data crossing the wire.
func (l *Log) Replay(base *graph.Graph, upto uint64) (*View, error) {
	if upto > l.Head() {
		return nil, fmt.Errorf("delta: replay to version %d beyond log head %d", upto, l.Head())
	}
	return ReplayBatches(base, l.batches[:upto])
}

// ReplayBatches applies a contiguous batch sequence over base, verifying
// the version chain.
func ReplayBatches(base *graph.Graph, batches []LogBatch) (*View, error) {
	v := NewView(base)
	for _, b := range batches {
		nv, _, err := v.Apply(b.Ops)
		if err != nil {
			return nil, fmt.Errorf("delta: replay batch %d: %w", b.Version, err)
		}
		if nv.Version() != b.Version {
			return nil, fmt.Errorf("delta: replay produced version %d, batch says %d", nv.Version(), b.Version)
		}
		v = nv
	}
	return v, nil
}
