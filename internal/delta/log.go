package delta

import (
	"errors"
	"fmt"

	"qgraph/internal/graph"
)

// ErrGap marks a Since request for versions that were truncated away: the
// retained tail no longer connects to the caller's version, so replaying
// it would silently skip the ops in (v, Base()]. Callers must recover from
// the covering snapshot instead.
var ErrGap = errors.New("delta: requested versions truncated from log")

// Log is the replayable stream of committed mutation batches: the ops of
// every committed version in order. It is the recovery substrate — a
// respawned worker rebuilds its graph view from a shared base plus a
// replay of this log, instead of shipping graph data — and the reference
// for the consistency property that base + replay equals the live overlay
// at every version.
//
// The log no longer necessarily reaches back to version 0: checkpointing
// (internal/snapshot) folds a committed prefix into an immutable snapshot
// and truncates the covered batches, so Base() is the version of the
// newest checkpoint the retained tail replays over. A log rebased at B
// holds versions B+1..Head().
//
// A Log is confined to its owner's goroutine (the controller event loop);
// accessors copy, so snapshots handed to other goroutines stay stable.
type Log struct {
	base    uint64 // versions <= base are truncated (covered by a snapshot)
	batches []LogBatch
	ops     int
	bytes   int64
}

// LogBatch is one committed version's operations.
type LogBatch struct {
	Version uint64
	Ops     []Op
}

// Base returns the version the retained tail replays over: the newest
// truncation point (0 for a log that still reaches the original graph).
func (l *Log) Base() uint64 { return l.base }

// Len returns the number of retained batches.
func (l *Log) Len() int { return len(l.batches) }

// Ops returns the number of retained operations.
func (l *Log) Ops() int { return l.ops }

// Bytes returns the approximate wire size of the retained tail.
func (l *Log) Bytes() int64 { return l.bytes }

// Rebase sets the base version of an empty log (a controller starting from
// a checkpoint rather than version 0). Rebasing a non-empty log would
// orphan its batches and is an error.
func (l *Log) Rebase(v uint64) error {
	if len(l.batches) != 0 {
		return fmt.Errorf("delta: rebase of non-empty log (%d batches)", len(l.batches))
	}
	l.base = v
	return nil
}

// Append records the ops committed as version v. Versions must be
// appended contiguously from the base.
func (l *Log) Append(v uint64, ops []Op) error {
	if want := l.Head() + 1; v != want {
		return fmt.Errorf("delta: log append version %d, want %d", v, want)
	}
	l.batches = append(l.batches, LogBatch{Version: v, Ops: append([]Op(nil), ops...)})
	l.ops += len(ops)
	l.bytes += BatchWireBytes(len(ops))
	return nil
}

// Head returns the latest committed version in the log (Base() when empty).
func (l *Log) Head() uint64 { return l.base + uint64(len(l.batches)) }

// Since returns copies of every retained batch with Version > v, in order.
// v below the base is an ErrGap: the ops in (v, Base()] were truncated, so
// the retained tail does not connect to the caller's version — handing it
// out anyway would make the caller silently skip those ops. Callers whose
// view predates the base must rebuild from the covering snapshot.
func (l *Log) Since(v uint64) ([]LogBatch, error) {
	if v < l.base {
		return nil, fmt.Errorf("%w: have (%d, %d], want > %d", ErrGap, l.base, l.Head(), v)
	}
	if v >= l.Head() {
		return nil, nil
	}
	out := make([]LogBatch, 0, l.Head()-v)
	for _, b := range l.batches[v-l.base:] {
		out = append(out, LogBatch{Version: b.Version, Ops: append([]Op(nil), b.Ops...)})
	}
	return out, nil
}

// TruncateTo drops every batch with Version <= v (clamped to the retained
// range) and returns the number of operations released. Callers must hold
// a snapshot covering v before truncating — the dropped prefix is
// unrecoverable from the log alone.
func (l *Log) TruncateTo(v uint64) int {
	if v > l.Head() {
		v = l.Head()
	}
	if v <= l.base {
		return 0
	}
	n := int(v - l.base)
	dropped := 0
	for _, b := range l.batches[:n] {
		dropped += len(b.Ops)
	}
	// Copy the tail into a fresh slice so the dropped prefix is actually
	// released (the whole point of truncation is bounded memory).
	l.batches = append([]LogBatch(nil), l.batches[n:]...)
	l.base = v
	l.ops -= dropped
	l.bytes -= int64(n)*BatchWireOverhead + OpWireBytes*int64(dropped)
	return dropped
}

// Replay rebuilds the view at version upto by applying the retained
// batches over base — the graph at version Base() (the covering snapshot's
// graph, or the original graph for an untruncated log). Every replica that
// applies the same tail to the same base converges on the same logical
// graph, which is what lets a respawned worker adopt a partition without
// any graph data crossing the wire.
func (l *Log) Replay(base *graph.Graph, upto uint64) (*View, error) {
	if upto > l.Head() {
		return nil, fmt.Errorf("delta: replay to version %d beyond log head %d", upto, l.Head())
	}
	if upto < l.base {
		return nil, fmt.Errorf("delta: replay to version %d below log base %d (truncated)", upto, l.base)
	}
	return ReplayBatchesFrom(base, l.base, l.batches[:upto-l.base])
}

// ReplayBatchesFrom applies a contiguous batch sequence over base — the
// graph at version from — verifying the version chain.
func ReplayBatchesFrom(base *graph.Graph, from uint64, batches []LogBatch) (*View, error) {
	v := NewViewAt(base, from)
	for _, b := range batches {
		nv, _, err := v.Apply(b.Ops)
		if err != nil {
			return nil, fmt.Errorf("delta: replay batch %d: %w", b.Version, err)
		}
		if nv.Version() != b.Version {
			return nil, fmt.Errorf("delta: replay produced version %d, batch says %d", nv.Version(), b.Version)
		}
		v = nv
	}
	return v, nil
}

// ReplayBatches applies a contiguous batch sequence over the version-0
// base graph, verifying the version chain.
func ReplayBatches(base *graph.Graph, batches []LogBatch) (*View, error) {
	return ReplayBatchesFrom(base, 0, batches)
}
