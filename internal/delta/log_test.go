package delta

import (
	"errors"
	"testing"

	"qgraph/internal/graph"
)

func logBase(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	return b.MustBuild()
}

func TestLogAppendContiguous(t *testing.T) {
	var l Log
	if err := l.Append(2, nil); err == nil {
		t.Fatal("non-contiguous first append accepted")
	}
	if err := l.Append(1, []Op{{Kind: OpAddVertex}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, nil); err == nil {
		t.Fatal("duplicate version accepted")
	}
	if err := l.Append(3, nil); err == nil {
		t.Fatal("gap accepted")
	}
	if err := l.Append(2, []Op{{Kind: OpAddEdge, From: 0, To: 2, Weight: 5}}); err != nil {
		t.Fatal(err)
	}
	if l.Head() != 2 {
		t.Fatalf("head %d, want 2", l.Head())
	}
}

func TestLogSinceCopies(t *testing.T) {
	var l Log
	ops := []Op{{Kind: OpAddEdge, From: 0, To: 3, Weight: 2}}
	if err := l.Append(1, ops); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, []Op{{Kind: OpAddVertex}}); err != nil {
		t.Fatal(err)
	}
	since, err := l.Since(1)
	if err != nil || len(since) != 1 || since[0].Version != 2 {
		t.Fatalf("Since(1) = %+v, %v, want one batch at version 2", since, err)
	}
	all, err := l.Since(0)
	if err != nil || len(all) != 2 {
		t.Fatalf("Since(0) returned %d batches (%v), want 2", len(all), err)
	}
	// Mutating the returned ops must not corrupt the log.
	all[0].Ops[0].Weight = 99
	again, _ := l.Since(0)
	if again[0].Ops[0].Weight != 2 {
		t.Fatal("Since returned aliased ops")
	}
	if got, err := l.Since(2); got != nil || err != nil {
		t.Fatal("Since past head should be nil")
	}
	if got, err := l.Since(7); got != nil || err != nil {
		t.Fatal("Since past head should be nil")
	}
}

// TestLogReplayMatchesLiveView is the core recovery property at unit
// level: replaying the log over the base reproduces the live view's exact
// topology at every intermediate version.
func TestLogReplayMatchesLiveView(t *testing.T) {
	base := logBase(t)
	var l Log
	live := NewView(base)
	batches := [][]Op{
		{{Kind: OpAddEdge, From: 0, To: 3, Weight: 7}},
		{{Kind: OpAddVertex}, {Kind: OpAddEdge, From: 3, To: 4, Weight: 2}},
		{{Kind: OpSetWeight, From: 0, To: 1, Weight: 9}, {Kind: OpRemoveEdge, From: 1, To: 2}},
	}
	for i, ops := range batches {
		nv, _, err := live.Apply(ops)
		if err != nil {
			t.Fatal(err)
		}
		live = nv
		if err := l.Append(uint64(i+1), ops); err != nil {
			t.Fatal(err)
		}
		for upto := uint64(0); upto <= l.Head(); upto++ {
			rv, err := l.Replay(base, upto)
			if err != nil {
				t.Fatal(err)
			}
			if rv.Version() != upto {
				t.Fatalf("replay to %d has version %d", upto, rv.Version())
			}
		}
		rv, err := l.Replay(base, l.Head())
		if err != nil {
			t.Fatal(err)
		}
		assertSameTopology(t, live, rv)
	}
	if _, err := l.Replay(base, l.Head()+1); err == nil {
		t.Fatal("replay beyond head accepted")
	}
}

// TestLogTruncate checks the checkpointing contract: truncation drops
// exactly the covered prefix, rebases the log, keeps Append contiguous,
// and replay over the checkpoint's materialized graph reproduces the live
// view.
func TestLogTruncate(t *testing.T) {
	base := logBase(t)
	var l Log
	live := NewView(base)
	var snapAt2 *graph.Graph
	for v := uint64(1); v <= 4; v++ {
		ops := []Op{
			{Kind: OpAddVertex},
			{Kind: OpAddEdge, From: 0, To: graph.VertexID(v - 1), Weight: float32(v)},
		}
		nv, _, err := live.Apply(ops)
		if err != nil {
			t.Fatal(err)
		}
		live = nv
		if err := l.Append(v, ops); err != nil {
			t.Fatal(err)
		}
		if v == 2 {
			snapAt2 = live.Materialize() // the checkpoint a truncation needs
		}
	}
	if l.Ops() != 8 || l.Len() != 4 {
		t.Fatalf("pre-truncate ops=%d len=%d", l.Ops(), l.Len())
	}
	preBytes := l.Bytes()

	if dropped := l.TruncateTo(0); dropped != 0 {
		t.Fatalf("TruncateTo(0) dropped %d", dropped)
	}
	if dropped := l.TruncateTo(2); dropped != 4 {
		t.Fatalf("TruncateTo(2) dropped %d ops, want 4", dropped)
	}
	if l.Base() != 2 || l.Len() != 2 || l.Ops() != 4 || l.Head() != 4 {
		t.Fatalf("post-truncate base=%d len=%d ops=%d head=%d", l.Base(), l.Len(), l.Ops(), l.Head())
	}
	if l.Bytes() >= preBytes || l.Bytes() <= 0 {
		t.Fatalf("bytes %d not reduced from %d", l.Bytes(), preBytes)
	}
	// Truncating again below the base is a no-op; double truncation must
	// not double-count.
	if dropped := l.TruncateTo(2); dropped != 0 {
		t.Fatalf("repeat TruncateTo(2) dropped %d", dropped)
	}

	// Since below the base is an explicit gap error, never a silently
	// disconnected tail: a caller at version 0 would miss the ops in (0, 2].
	if got, err := l.Since(0); !errors.Is(err, ErrGap) {
		t.Fatalf("Since(0) after truncation = %+v, %v; want ErrGap", got, err)
	}
	// Exactly at the base is fine — the tail connects.
	if got, err := l.Since(2); err != nil || len(got) != 2 || got[0].Version != 3 {
		t.Fatalf("Since(base) after truncation = %+v, %v", got, err)
	}
	// Replay below the base is impossible and must say so.
	if _, err := l.Replay(snapAt2, 1); err == nil {
		t.Fatal("replay below the base accepted")
	}
	// Replay over the checkpoint graph reproduces the live view.
	rv, err := l.Replay(snapAt2, l.Head())
	if err != nil {
		t.Fatal(err)
	}
	assertSameTopology(t, live, rv)

	// Appends stay contiguous from the head, not the old numbering.
	if err := l.Append(4, nil); err == nil {
		t.Fatal("stale version accepted after truncation")
	}
	if err := l.Append(5, []Op{{Kind: OpAddVertex}}); err != nil {
		t.Fatal(err)
	}
}

// TestLogRebase covers a controller restarted from a checkpoint: the log
// starts at the checkpoint version and only accepts the next one.
func TestLogRebase(t *testing.T) {
	var l Log
	if err := l.Rebase(7); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 7 || l.Head() != 7 {
		t.Fatalf("base=%d head=%d, want 7/7", l.Base(), l.Head())
	}
	if err := l.Append(1, nil); err == nil {
		t.Fatal("pre-base version accepted")
	}
	if err := l.Append(8, []Op{{Kind: OpAddVertex}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Rebase(9); err == nil {
		t.Fatal("rebase of non-empty log accepted")
	}
}

// TestReplayBatchesFrom checks the worker-side grant path: a tail replayed
// over a graph at the checkpoint version lands on the right version chain.
func TestReplayBatchesFrom(t *testing.T) {
	base := logBase(t)
	v, err := ReplayBatchesFrom(base, 3, []LogBatch{
		{Version: 4, Ops: []Op{{Kind: OpAddVertex}}},
		{Version: 5, Ops: []Op{{Kind: OpAddEdge, From: 0, To: 4, Weight: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Version() != 5 || v.NumVertices() != 5 {
		t.Fatalf("version %d vertices %d", v.Version(), v.NumVertices())
	}
	// A tail that does not chain from the base version is replica
	// divergence, not a silent renumbering.
	if _, err := ReplayBatchesFrom(base, 3, []LogBatch{{Version: 7}}); err == nil {
		t.Fatal("non-contiguous tail accepted")
	}
}

func assertSameTopology(t *testing.T, a, b *View) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vertices, %d/%d edges",
			a.NumVertices(), b.NumVertices(), a.NumEdges(), b.NumEdges())
	}
	for u := 0; u < a.NumVertices(); u++ {
		ea, eb := a.Out(graph.VertexID(u)), b.Out(graph.VertexID(u))
		if len(ea) != len(eb) {
			t.Fatalf("vertex %d degree %d vs %d", u, len(ea), len(eb))
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("vertex %d edge %d: %+v vs %+v", u, i, ea[i], eb[i])
			}
		}
	}
}
