package delta

import (
	"testing"

	"qgraph/internal/graph"
)

func logBase(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	return b.MustBuild()
}

func TestLogAppendContiguous(t *testing.T) {
	var l Log
	if err := l.Append(2, nil); err == nil {
		t.Fatal("non-contiguous first append accepted")
	}
	if err := l.Append(1, []Op{{Kind: OpAddVertex}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, nil); err == nil {
		t.Fatal("duplicate version accepted")
	}
	if err := l.Append(3, nil); err == nil {
		t.Fatal("gap accepted")
	}
	if err := l.Append(2, []Op{{Kind: OpAddEdge, From: 0, To: 2, Weight: 5}}); err != nil {
		t.Fatal(err)
	}
	if l.Head() != 2 {
		t.Fatalf("head %d, want 2", l.Head())
	}
}

func TestLogSinceCopies(t *testing.T) {
	var l Log
	ops := []Op{{Kind: OpAddEdge, From: 0, To: 3, Weight: 2}}
	if err := l.Append(1, ops); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, []Op{{Kind: OpAddVertex}}); err != nil {
		t.Fatal(err)
	}
	since := l.Since(1)
	if len(since) != 1 || since[0].Version != 2 {
		t.Fatalf("Since(1) = %+v, want one batch at version 2", since)
	}
	all := l.Since(0)
	if len(all) != 2 {
		t.Fatalf("Since(0) returned %d batches, want 2", len(all))
	}
	// Mutating the returned ops must not corrupt the log.
	all[0].Ops[0].Weight = 99
	again := l.Since(0)
	if again[0].Ops[0].Weight != 2 {
		t.Fatal("Since returned aliased ops")
	}
	if l.Since(2) != nil || l.Since(7) != nil {
		t.Fatal("Since past head should be nil")
	}
}

// TestLogReplayMatchesLiveView is the core recovery property at unit
// level: replaying the log over the base reproduces the live view's exact
// topology at every intermediate version.
func TestLogReplayMatchesLiveView(t *testing.T) {
	base := logBase(t)
	var l Log
	live := NewView(base)
	batches := [][]Op{
		{{Kind: OpAddEdge, From: 0, To: 3, Weight: 7}},
		{{Kind: OpAddVertex}, {Kind: OpAddEdge, From: 3, To: 4, Weight: 2}},
		{{Kind: OpSetWeight, From: 0, To: 1, Weight: 9}, {Kind: OpRemoveEdge, From: 1, To: 2}},
	}
	for i, ops := range batches {
		nv, _, err := live.Apply(ops)
		if err != nil {
			t.Fatal(err)
		}
		live = nv
		if err := l.Append(uint64(i+1), ops); err != nil {
			t.Fatal(err)
		}
		for upto := uint64(0); upto <= l.Head(); upto++ {
			rv, err := l.Replay(base, upto)
			if err != nil {
				t.Fatal(err)
			}
			if rv.Version() != upto {
				t.Fatalf("replay to %d has version %d", upto, rv.Version())
			}
		}
		rv, err := l.Replay(base, l.Head())
		if err != nil {
			t.Fatal(err)
		}
		assertSameTopology(t, live, rv)
	}
	if _, err := l.Replay(base, l.Head()+1); err == nil {
		t.Fatal("replay beyond head accepted")
	}
}

func assertSameTopology(t *testing.T, a, b *View) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vertices, %d/%d edges",
			a.NumVertices(), b.NumVertices(), a.NumEdges(), b.NumEdges())
	}
	for u := 0; u < a.NumVertices(); u++ {
		ea, eb := a.Out(graph.VertexID(u)), b.Out(graph.VertexID(u))
		if len(ea) != len(eb) {
			t.Fatalf("vertex %d degree %d vs %d", u, len(ea), len(eb))
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("vertex %d edge %d: %+v vs %+v", u, i, ea[i], eb[i])
			}
		}
	}
}
