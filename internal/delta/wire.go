package delta

// Wire sizes of the committed-batch encoding, shared by everything that
// accounts for batch bytes: the transport codec (DeltaBatch frames and the
// batch list of a PartitionGrant), the log's byte accounting that feeds
// the checkpoint policy, and the durable WAL record payload. A single
// definition keeps policy byte accounting from drifting when the codec
// changes.
const (
	// OpWireBytes is the encoded size of one Op: kind u8, from i32, to
	// i32, weight f32.
	OpWireBytes = 13
	// BatchWireOverhead is the per-batch framing around the ops: version
	// u64 plus the op-count u32.
	BatchWireOverhead = 12
)

// BatchWireBytes returns the encoded size of one committed batch of nops
// operations (framing plus ops, excluding any outer message envelope).
func BatchWireBytes(nops int) int64 {
	return BatchWireOverhead + OpWireBytes*int64(nops)
}
