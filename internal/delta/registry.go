package delta

import (
	"fmt"
	"sync"
)

// Registry tracks the chain of committed View versions that still have
// readers. It is the MVCC bookkeeping behind off-barrier commits: a query
// pins the latest version at admission and computes against that exact
// snapshot while later batches commit concurrently; a version is retired
// (eligible for compaction / GC) only once its last reader unpins and a
// newer version has been published.
//
// Views themselves are immutable, so the registry holds plain pointers —
// retirement just drops the reference and lets the collector reclaim any
// overlay state not shared with newer versions.
//
// All methods are safe for concurrent use: the controller publishes and
// pins on its event loop while stats readers (/stats, /metrics) poll from
// HTTP handlers.
type Registry struct {
	mu      sync.Mutex
	entries map[uint64]*regEntry
	latest  uint64
	retired uint64 // versions retired since construction
	peak    int    // high-water mark of live entries
}

type regEntry struct {
	view *View
	refs int
}

// NewRegistry starts a registry with v as the sole, latest version.
func NewRegistry(v *View) *Registry {
	r := &Registry{entries: map[uint64]*regEntry{}, latest: v.Version(), peak: 1}
	r.entries[v.Version()] = &regEntry{view: v}
	return r
}

// Publish records view as the new latest version. Versions must be
// published in increasing order (the commit pipeline assigns them
// contiguously); publishing an older or equal version is a programming
// error and panics loudly rather than corrupting the chain.
func (r *Registry) Publish(view *View) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := view.Version()
	if v <= r.latest {
		panic(fmt.Sprintf("delta: registry publish v%d not after latest v%d", v, r.latest))
	}
	prev := r.latest
	r.entries[v] = &regEntry{view: view}
	r.latest = v
	// The previous latest loses its implicit liveness; retire it now if
	// no reader pinned it.
	if e := r.entries[prev]; e != nil && e.refs == 0 {
		delete(r.entries, prev)
		r.retired++
	}
	if n := len(r.entries); n > r.peak {
		r.peak = n
	}
}

// Pin takes a read reference on version v and returns its view. It fails
// if v was never published or already retired — callers pin at admission
// time, when the version they saw as latest is guaranteed live.
func (r *Registry) Pin(v uint64) (*View, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[v]
	if e == nil {
		return nil, fmt.Errorf("delta: version %d not in registry (latest %d)", v, r.latest)
	}
	e.refs++
	return e.view, nil
}

// Unpin releases a reference taken by Pin. The version is retired once
// its refcount reaches zero, unless it is still the latest (the next
// query will pin it). Unpinning an unknown version is a no-op: recovery
// resets drop all pins wholesale and individual finishes may race that.
func (r *Registry) Unpin(v uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[v]
	if e == nil {
		return
	}
	if e.refs > 0 {
		e.refs--
	}
	if e.refs == 0 && v != r.latest {
		delete(r.entries, v)
		r.retired++
	}
}

// UnpinAll drops every outstanding pin and retires everything but the
// latest version. Recovery uses it: in-flight queries are abandoned and
// restarted against the current version, so their old snapshots are dead.
func (r *Registry) UnpinAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for v := range r.entries {
		if v != r.latest {
			delete(r.entries, v)
			r.retired++
		} else {
			r.entries[v].refs = 0
		}
	}
}

// Drop removes version v, which must be the unpinned latest, and makes
// prev the latest again. It is the depth-1 rollback used when a
// barrier-mode commit aborts for recovery after workers already applied
// the batch; the pipelined path never rolls back (versions are durable
// before they are published).
func (r *Registry) Drop(v uint64, prev *View) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v != r.latest {
		return fmt.Errorf("delta: registry drop v%d but latest is v%d", v, r.latest)
	}
	e := r.entries[v]
	if e != nil && e.refs > 0 {
		return fmt.Errorf("delta: registry drop v%d with %d readers pinned", v, e.refs)
	}
	delete(r.entries, v)
	r.latest = prev.Version()
	if r.entries[r.latest] == nil {
		r.entries[r.latest] = &regEntry{view: prev}
	}
	return nil
}

// Latest returns the most recently published view.
func (r *Registry) Latest() *View {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[r.latest].view
}

// LatestVersion returns the most recently published version number.
func (r *Registry) LatestVersion() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.latest
}

// RegistryStats is a point-in-time snapshot for /stats and /metrics.
type RegistryStats struct {
	Live         int    `json:"live_versions"`  // versions currently held
	Pinned       int    `json:"pinned_readers"` // outstanding read pins
	Latest       uint64 `json:"latest_version"`
	OldestPinned uint64 `json:"oldest_pinned"` // 0 when nothing is pinned
	Retired      uint64 `json:"retired_versions"`
	Peak         int    `json:"peak_live_versions"`
}

// Stats reports the registry's current shape. OldestPinned is the
// compaction floor: versions below it have no readers left.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RegistryStats{
		Live:    len(r.entries),
		Latest:  r.latest,
		Retired: r.retired,
		Peak:    r.peak,
	}
	for v, e := range r.entries {
		if e.refs > 0 {
			s.Pinned += e.refs
			if s.OldestPinned == 0 || v < s.OldestPinned {
				s.OldestPinned = v
			}
		}
	}
	return s
}
