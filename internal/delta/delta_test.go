package delta

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"qgraph/internal/graph"
)

// lineGraph builds a directed path 0 → 1 → … → n-1 with unit weights.
func lineGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	return b.MustBuild()
}

func mustApply(t *testing.T, v *View, ops ...Op) (*View, []OpStatus) {
	t.Helper()
	nv, st, err := v.Apply(ops)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	return nv, st
}

func TestViewApplySemantics(t *testing.T) {
	v0 := NewView(lineGraph(4))
	if v0.Version() != 0 || v0.NumVertices() != 4 || v0.NumEdges() != 3 {
		t.Fatalf("base view: version %d, %d vertices, %d edges", v0.Version(), v0.NumVertices(), v0.NumEdges())
	}

	v1, st := mustApply(t, v0,
		Op{Kind: OpAddEdge, From: 0, To: 3, Weight: 9},
		Op{Kind: OpSetWeight, From: 1, To: 2, Weight: 5},
		Op{Kind: OpRemoveEdge, From: 2, To: 3},
		Op{Kind: OpRemoveEdge, From: 2, To: 3}, // already gone: no-op
	)
	for i, want := range []OpStatus{OpApplied, OpApplied, OpApplied, OpNoOp} {
		if st[i] != want {
			t.Errorf("op %d status %d, want %d", i, st[i], want)
		}
	}
	if v1.Version() != 1 {
		t.Errorf("version %d, want 1", v1.Version())
	}
	if v1.NumEdges() != 3 { // +1 added, -1 removed
		t.Errorf("edges %d, want 3", v1.NumEdges())
	}
	if got := v1.Out(0); len(got) != 2 || got[1] != (graph.Edge{To: 3, Weight: 9}) {
		t.Errorf("Out(0) = %v", got)
	}
	if got := v1.Out(1); len(got) != 1 || got[0].Weight != 5 {
		t.Errorf("Out(1) = %v", got)
	}
	if got := v1.Out(2); len(got) != 0 {
		t.Errorf("Out(2) = %v, want empty", got)
	}

	// The old view must be untouched (snapshot semantics).
	if got := v0.Out(0); len(got) != 1 || got[0].Weight != 1 {
		t.Errorf("old view Out(0) = %v", got)
	}
	if got := v0.Out(2); len(got) != 1 {
		t.Errorf("old view Out(2) = %v", got)
	}

	// Vertex growth: new vertex connected to the path.
	v2, _ := mustApply(t, v1,
		Op{Kind: OpAddVertex},
		Op{Kind: OpAddEdge, From: 4, To: 0, Weight: 2},
		Op{Kind: OpAddEdge, From: 3, To: 4, Weight: 2},
	)
	if v2.NumVertices() != 5 || v2.Version() != 2 {
		t.Fatalf("after growth: %d vertices version %d", v2.NumVertices(), v2.Version())
	}
	if got := v2.Out(4); len(got) != 1 || got[0].To != 0 {
		t.Errorf("Out(new) = %v", got)
	}
	if v2.OutDegree(3) != 1 {
		t.Errorf("OutDegree(3) = %d, want 1", v2.OutDegree(3))
	}
	if v2.Tagged(4) || v2.Coord(4) != (graph.Coord{}) {
		t.Errorf("new vertex should be untagged at the zero coordinate")
	}
}

func TestViewApplyValidation(t *testing.T) {
	v := NewView(lineGraph(3))
	bad := [][]Op{
		{{Kind: OpAddEdge, From: 3, To: 0, Weight: 1}},   // from out of range
		{{Kind: OpAddEdge, From: 0, To: -1, Weight: 1}},  // to out of range
		{{Kind: OpAddEdge, From: 0, To: 1, Weight: -1}},  // negative weight
		{{Kind: OpSetWeight, From: 0, To: 9, Weight: 1}}, // to out of range
		{{Kind: Op{}.Kind, From: 0, To: 1}},              // unknown kind
		{{Kind: OpRemoveEdge, From: 0, To: 5}},           // to out of range
	}
	for i, ops := range bad {
		if _, _, err := v.Apply(ops); err == nil {
			t.Errorf("bad batch %d accepted", i)
		}
	}
	// A vertex added earlier in the batch is addressable later in it.
	if _, _, err := v.Apply([]Op{
		{Kind: OpAddVertex},
		{Kind: OpAddEdge, From: 3, To: 3, Weight: 1},
	}); err != nil {
		t.Errorf("intra-batch new vertex rejected: %v", err)
	}
}

// TestViewMatchesMaterialized replays a random op stream and checks the
// overlay against a full rebuild after every batch — overlay reads,
// compaction, and Materialize must agree exactly.
func TestViewMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	v := NewView(lineGraph(16))
	for batch := 0; batch < 30; batch++ {
		var ops []Op
		for i := 0; i < 8; i++ {
			n := v.NumVertices()
			switch rng.IntN(4) {
			case 0:
				ops = append(ops, Op{Kind: OpAddEdge,
					From: graph.VertexID(rng.IntN(n)), To: graph.VertexID(rng.IntN(n)),
					Weight: float32(rng.IntN(10) + 1)})
			case 1:
				ops = append(ops, Op{Kind: OpRemoveEdge,
					From: graph.VertexID(rng.IntN(n)), To: graph.VertexID(rng.IntN(n))})
			case 2:
				ops = append(ops, Op{Kind: OpSetWeight,
					From: graph.VertexID(rng.IntN(n)), To: graph.VertexID(rng.IntN(n)),
					Weight: float32(rng.IntN(10) + 1)})
			case 3:
				ops = append(ops, Op{Kind: OpAddVertex})
			}
		}
		v, _ = mustApply(t, v, ops...)
		m := v.Materialize()
		if m.NumVertices() != v.NumVertices() || m.NumEdges() != v.NumEdges() {
			t.Fatalf("batch %d: materialized %d/%d vs view %d/%d", batch,
				m.NumVertices(), m.NumEdges(), v.NumVertices(), v.NumEdges())
		}
		for u := 0; u < v.NumVertices(); u++ {
			a, b := v.Out(graph.VertexID(u)), m.Out(graph.VertexID(u))
			if len(a) != len(b) {
				t.Fatalf("batch %d vertex %d: overlay %v vs materialized %v", batch, u, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("batch %d vertex %d edge %d: %v vs %v", batch, u, i, a[i], b[i])
				}
			}
		}
	}
	if v.Version() != 30 {
		t.Errorf("version %d, want 30", v.Version())
	}
}

// TestViewAutoCompaction patches enough vertices to trigger the fold and
// checks the logical graph survives it.
func TestViewAutoCompaction(t *testing.T) {
	n := compactMinPatched * compactFactor
	v := NewView(lineGraph(n))
	// Patch > n/compactFactor vertices in one batch.
	var ops []Op
	for u := 0; u < compactMinPatched+8; u++ {
		ops = append(ops, Op{Kind: OpSetWeight, From: graph.VertexID(u), To: graph.VertexID(u + 1), Weight: 3})
	}
	nv, _ := mustApply(t, v, ops...)
	if nv.Compactions() != 1 {
		t.Fatalf("compactions = %d, want 1", nv.Compactions())
	}
	if nv.OverlaySize() != 0 {
		t.Fatalf("overlay size %d after compaction", nv.OverlaySize())
	}
	if nv.Version() != 1 || nv.NumVertices() != n {
		t.Fatalf("compacted view: version %d, %d vertices", nv.Version(), nv.NumVertices())
	}
	if got := nv.Out(0); len(got) != 1 || got[0].Weight != 3 {
		t.Fatalf("Out(0) after compaction = %v", got)
	}
	if got := nv.Out(graph.VertexID(n - 1)); len(got) != 0 {
		t.Fatalf("Out(last) after compaction = %v", got)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpAddEdge, From: 1, To: 2, Weight: 1.5},
		{Kind: OpRemoveEdge, From: 2, To: 1},
		{Kind: OpSetWeight, From: 0, To: 1, Weight: 0.25},
		{Kind: OpAddVertex},
	}
	var buf bytes.Buffer
	if err := WriteOps(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOps(strings.NewReader("# comment\n\n" + buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("read %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Errorf("op %d: %v != %v", i, got[i], ops[i])
		}
	}
	for _, bad := range []string{"add_edge 1", "add_edge 1 2 -3", "frobnicate", "set_weight a b 1"} {
		if _, err := ParseOp(bad); err == nil {
			t.Errorf("parsed invalid line %q", bad)
		}
	}
}
