// Package obs is the engine's zero-dependency observability substrate:
// per-query tracing (span trees kept in a bounded ring), a hand-rolled
// Prometheus-text-format metrics registry, and structured-logging
// construction helpers. Every entry point is nil-receiver safe so
// instrumentation call sites stay unconditional — an engine built without
// an Obs handle pays only a nil check.
package obs

import (
	"maps"
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// TraceHeader is the HTTP header that carries a trace ID across process
// hops (router → serving node). Defined here — not in the serving layer
// — because both ends of every hop need it without depending on each
// other.
const TraceHeader = "X-QGraph-Trace-ID"

// Span is one timed region of a trace. Spans form a tree under the
// trace's root; a span is mutated only through its methods, which lock
// the owning trace (spans are touched from the serving goroutine and the
// controller event loop concurrently).
type Span struct {
	name     string
	start    time.Time
	end      time.Time // zero while open
	attrs    map[string]any
	children []*Span
	tr       *Trace
}

// End closes the span now. Ending an already-ended span keeps the first
// end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// EndAt closes the span at t (for callers that already measured).
func (s *Span) EndAt(t time.Time) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = t
	}
	s.tr.mu.Unlock()
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = val
	s.tr.mu.Unlock()
}

// Trace is one query's span tree. A trace is created by the serving
// layer at admission, bound to the query ID so the controller can attach
// engine-side spans, and finished (moved into the tracer's ring) when
// the response is delivered.
type Trace struct {
	id      uint64
	queryID int64

	mu   sync.Mutex
	root *Span
	done bool
}

// ID returns the trace's process-unique ID (propagated on the wire via
// query.Spec.TraceID).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// QueryID returns the query the trace is bound to (0 before binding).
func (t *Trace) QueryID() int64 {
	if t == nil {
		return 0
	}
	return t.queryID
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// StartSpan opens a child span under parent (nil parent = root) starting
// now.
func (t *Trace) StartSpan(parent *Span, name string) *Span {
	return t.SpanAt(parent, name, time.Now(), time.Time{}, nil)
}

// SpanAt attaches a span with explicit bounds: a zero end leaves it
// open, a non-zero end records an already-measured region
// retroactively. Attaching to a finished trace is permitted (late
// engine-side spans after a client timeout); the tracer has already
// snapshotted nothing — views are built on read.
func (t *Trace) SpanAt(parent *Span, name string, start, end time.Time, attrs map[string]any) *Span {
	if t == nil {
		return nil
	}
	s := &Span{name: name, start: start, end: end, attrs: attrs, tr: t}
	t.mu.Lock()
	if parent == nil {
		parent = t.root
	}
	if parent != nil {
		parent.children = append(parent.children, s)
	}
	t.mu.Unlock()
	return s
}

// SpanView is the JSON shape of one span.
type SpanView struct {
	Name       string         `json:"name"`
	StartUnix  int64          `json:"start_unix_ns"`
	DurationNS int64          `json:"duration_ns"`
	DurationMS float64        `json:"duration_ms"`
	Open       bool           `json:"open,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanView     `json:"children,omitempty"`
}

// TraceView is the JSON shape of a whole trace, as served by
// GET /trace/{query_id} and GET /traces.
type TraceView struct {
	TraceID    uint64   `json:"trace_id"`
	QueryID    int64    `json:"query_id"`
	DurationMS float64  `json:"duration_ms"`
	Complete   bool     `json:"complete"`
	Root       SpanView `json:"root"`
}

// View snapshots the trace into its JSON shape. Open spans report
// duration up to now.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	v := TraceView{TraceID: t.id, QueryID: t.queryID, Complete: t.done}
	if t.root != nil {
		v.Root = viewSpan(t.root, now)
		v.DurationMS = v.Root.DurationMS
	}
	return v
}

func viewSpan(s *Span, now time.Time) SpanView {
	end := s.end
	open := end.IsZero()
	if open {
		end = now
	}
	d := end.Sub(s.start)
	if d < 0 {
		d = 0
	}
	v := SpanView{
		Name:       s.name,
		StartUnix:  s.start.UnixNano(),
		DurationNS: int64(d),
		DurationMS: float64(d) / float64(time.Millisecond),
		Open:       open,
		// Copied, not aliased: callers JSON-encode the view after t.mu is
		// released, while SetAttr keeps mutating the live map (late spans
		// and attrs are permitted on finished traces).
		Attrs: maps.Clone(s.attrs),
	}
	for _, c := range s.children {
		v.Children = append(v.Children, viewSpan(c, now))
	}
	return v
}

// Tracer owns the live traces and the bounded ring of completed ones.
type Tracer struct {
	mu      sync.Mutex
	nextID  uint64
	byQuery map[int64]*Trace // active traces, by bound query ID
	// Completed traces, a circular buffer: insertion overwrites the
	// oldest slot in O(1). A straight slice-shift eviction costs a
	// cap-sized pointer copy (plus its GC write barriers) on every
	// finished request once the ring fills — measurable on the cache-hit
	// fast path.
	ring []*Trace
	next int // next write index
	n    int // filled slots, ≤ len(ring)
}

// DefaultTraceRing bounds how many completed traces are retained.
const DefaultTraceRing = 512

// NewTracer builds a tracer retaining up to capacity completed traces
// (<=0 selects DefaultTraceRing). The ID sequence starts at a random
// point: trace IDs cross process boundaries (a router propagates them to
// the node that serves the request), so two processes counting from zero
// would collide on every ID.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceRing
	}
	return &Tracer{
		nextID:  rand.Uint64(),
		byQuery: make(map[int64]*Trace),
		ring:    make([]*Trace, capacity),
	}
}

// completed appends to views (or collects traces via visit) the ring's
// contents oldest-first. Callers hold tr.mu.
func (tr *Tracer) completed(visit func(*Trace)) {
	for i := 0; i < tr.n; i++ {
		visit(tr.ring[(tr.next-tr.n+i+len(tr.ring))%len(tr.ring)])
	}
}

// Begin starts a new trace whose root span is named name.
func (tr *Tracer) Begin(name string) *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	tr.nextID++
	if tr.nextID == 0 { // 0 means "no trace" on the wire
		tr.nextID++
	}
	id := tr.nextID
	tr.mu.Unlock()
	t := &Trace{id: id}
	t.root = &Span{name: name, start: time.Now(), tr: t}
	return t
}

// BeginWithID starts a trace under a caller-supplied ID — the inbound
// half of cross-process propagation: a node honoring a router's
// X-QGraph-Trace-ID keeps its spans under the originator's ID so the
// two trees stitch into one. A zero ID falls back to Begin.
func (tr *Tracer) BeginWithID(name string, id uint64) *Trace {
	if tr == nil {
		return nil
	}
	if id == 0 {
		return tr.Begin(name)
	}
	t := &Trace{id: id}
	t.root = &Span{name: name, start: time.Now(), tr: t}
	return t
}

// BindQuery indexes the trace under query ID q so engine-side code
// (controller) can attach spans via ByQuery. A later trace bound to the
// same query ID displaces the earlier binding.
func (tr *Tracer) BindQuery(q int64, t *Trace) {
	if tr == nil || t == nil {
		return
	}
	t.mu.Lock()
	t.queryID = q
	t.mu.Unlock()
	tr.mu.Lock()
	tr.byQuery[q] = t
	tr.mu.Unlock()
}

// ByQuery returns the active (unfinished) trace bound to query q, or
// nil.
func (tr *Tracer) ByQuery(q int64) *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.byQuery[q]
}

// Finish closes the trace's root span, unbinds it, and moves it into
// the completed ring (evicting the oldest when full). Finishing twice is
// a no-op.
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	if t.root != nil && t.root.end.IsZero() {
		t.root.end = time.Now()
	}
	q := t.queryID
	t.mu.Unlock()

	tr.mu.Lock()
	if tr.byQuery[q] == t {
		delete(tr.byQuery, q)
	}
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	if tr.n < len(tr.ring) {
		tr.n++
	}
	tr.mu.Unlock()
}

// Get returns the newest completed trace for query q, falling back to a
// live view of an active trace.
func (tr *Tracer) Get(q int64) (TraceView, bool) {
	if tr == nil {
		return TraceView{}, false
	}
	tr.mu.Lock()
	var hit *Trace // newest completed match wins: oldest-first walk, last assignment
	tr.completed(func(t *Trace) {
		if t.queryID == q {
			hit = t
		}
	})
	if hit == nil {
		hit = tr.byQuery[q]
	}
	tr.mu.Unlock()
	if hit == nil {
		return TraceView{}, false
	}
	return hit.View(), true
}

// GetByTraceID returns the newest trace carrying the given trace ID,
// preferring completed traces and falling back to a live view of an
// active one. This is the lookup a router's stitching fetch uses: it
// knows the propagated trace ID, not the node-local query ID.
func (tr *Tracer) GetByTraceID(id uint64) (TraceView, bool) {
	if tr == nil || id == 0 {
		return TraceView{}, false
	}
	tr.mu.Lock()
	var hit *Trace // newest completed match wins: oldest-first walk, last assignment
	tr.completed(func(t *Trace) {
		if t.id == id {
			hit = t
		}
	})
	if hit == nil {
		for _, t := range tr.byQuery {
			if t.id == id {
				hit = t
				break
			}
		}
	}
	tr.mu.Unlock()
	if hit == nil {
		return TraceView{}, false
	}
	return hit.View(), true
}

// Slowest returns views of the n slowest completed traces, slowest
// first (n<=0 selects 10).
func (tr *Tracer) Slowest(n int) []TraceView {
	if tr == nil {
		return nil
	}
	if n <= 0 {
		n = 10
	}
	tr.mu.Lock()
	all := make([]*Trace, 0, tr.n)
	tr.completed(func(t *Trace) { all = append(all, t) })
	tr.mu.Unlock()
	views := make([]TraceView, 0, len(all))
	for _, t := range all {
		views = append(views, t.View())
	}
	sort.Slice(views, func(i, j int) bool { return views[i].DurationMS > views[j].DurationMS })
	if len(views) > n {
		views = views[:n]
	}
	return views
}

// Occupancy reports how many traces are live (bound, unfinished) and
// how many sit in the completed ring — the leak check tests assert on.
func (tr *Tracer) Occupancy() (active, completed int) {
	if tr == nil {
		return 0, 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.byQuery), tr.n
}

// PhaseShare is one row of a phase-attribution breakdown.
type PhaseShare struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
	Fraction   float64 `json:"fraction"`
}

// Attribute breaks a trace's end-to-end duration down by phase: leaf
// spans are attributed in full, interior spans contribute their
// self-time (duration not covered by children, floored at zero). Rows
// come back sorted by descending share of the root duration.
func Attribute(v TraceView) []PhaseShare {
	acc := make(map[string]float64)
	var walk func(s SpanView)
	walk = func(s SpanView) {
		var covered float64
		for _, c := range s.Children {
			covered += c.DurationMS
			walk(c)
		}
		self := s.DurationMS - covered
		if len(s.Children) == 0 {
			self = s.DurationMS
		}
		if self > 0 {
			acc[s.Name] += self
		}
	}
	for _, c := range v.Root.Children {
		walk(c)
	}
	// Anything under the root not covered by a child span is slack
	// (scheduling gaps between phases).
	var covered float64
	for _, c := range v.Root.Children {
		covered += c.DurationMS
	}
	if slack := v.Root.DurationMS - covered; slack > 0 {
		acc["(untracked)"] += slack
	}
	out := make([]PhaseShare, 0, len(acc))
	for name, ms := range acc {
		row := PhaseShare{Name: name, DurationMS: ms}
		if v.Root.DurationMS > 0 {
			row.Fraction = ms / v.Root.DurationMS
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DurationMS != out[j].DurationMS {
			return out[i].DurationMS > out[j].DurationMS
		}
		return out[i].Name < out[j].Name
	})
	return out
}
