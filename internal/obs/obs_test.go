package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTracer(4)
	tc := tr.Begin("query")
	tr.BindQuery(42, tc)
	if got := tr.ByQuery(42); got != tc {
		t.Fatalf("ByQuery = %p, want %p", got, tc)
	}
	adm := tc.StartSpan(nil, "admission")
	time.Sleep(2 * time.Millisecond)
	adm.End()
	eng := tc.StartSpan(nil, "engine")
	step := tc.StartSpan(eng, "superstep 0")
	step.SetAttr("processed", 7)
	base := time.Now()
	tc.SpanAt(step, "worker 1", base, base.Add(time.Millisecond), map[string]any{"sent": 3})
	step.End()
	eng.End()
	tr.Finish(tc)

	v, ok := tr.Get(42)
	if !ok {
		t.Fatal("Get(42) missed after Finish")
	}
	if !v.Complete || v.QueryID != 42 || v.TraceID != tc.ID() {
		t.Fatalf("bad view header: %+v", v)
	}
	if len(v.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(v.Root.Children))
	}
	stepV := v.Root.Children[1].Children[0]
	if stepV.Name != "superstep 0" || stepV.Attrs["processed"] != 7 {
		t.Fatalf("bad superstep span: %+v", stepV)
	}
	if len(stepV.Children) != 1 || stepV.Children[0].Name != "worker 1" {
		t.Fatalf("bad worker child: %+v", stepV.Children)
	}
	if v.Root.Children[0].DurationMS <= 0 {
		t.Fatal("admission span has no duration")
	}
	if active, done := tr.Occupancy(); active != 0 || done != 1 {
		t.Fatalf("occupancy = (%d,%d), want (0,1)", active, done)
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 10; i++ {
		tc := tr.Begin("q")
		tr.BindQuery(int64(i), tc)
		tr.Finish(tc)
	}
	if active, done := tr.Occupancy(); active != 0 || done != 3 {
		t.Fatalf("occupancy = (%d,%d), want (0,3)", active, done)
	}
	if _, ok := tr.Get(0); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if _, ok := tr.Get(9); !ok {
		t.Fatal("newest trace missing")
	}
	if got := len(tr.Slowest(100)); got != 3 {
		t.Fatalf("Slowest returned %d, want 3", got)
	}
}

func TestTracerDoubleFinishAndNilSafety(t *testing.T) {
	tr := NewTracer(2)
	tc := tr.Begin("q")
	tr.BindQuery(1, tc)
	tr.Finish(tc)
	tr.Finish(tc)
	if _, done := tr.Occupancy(); done != 1 {
		t.Fatal("double Finish duplicated ring entry")
	}

	// Every entry point must tolerate nil receivers.
	var nilTr *Tracer
	var nilT *Trace
	var nilS *Span
	nilTr.Finish(nilTr.Begin("x"))
	nilTr.BindQuery(1, nil)
	if _, ok := nilTr.Get(1); ok {
		t.Fatal("nil tracer Get returned ok")
	}
	nilT.StartSpan(nil, "x").End()
	nilT.SpanAt(nil, "x", time.Now(), time.Now(), nil)
	nilS.End()
	nilS.SetAttr("k", 1)
	_ = nilT.View()
	var o *Obs
	o.Log().Info("discarded")
	o.M().Counter("x", "", "").Inc()
	o.T().Begin("x")
}

// TestTraceViewConcurrentWithSetAttr JSON-encodes views of a trace
// while another goroutine keeps mutating span attrs — the GET /trace
// shape: handlers marshal after the trace lock is released, so views
// must copy attr maps, not alias them. Run under -race this catches
// the concurrent map read/write that crashed the daemon.
func TestTraceViewConcurrentWithSetAttr(t *testing.T) {
	tr := NewTracer(4)
	tc := tr.Begin("query")
	tr.BindQuery(1, tc)
	sp := tc.StartSpan(nil, "engine")
	tr.Finish(tc) // finished traces still accept late attrs/spans

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sp.SetAttr("step", i)
			tc.Root().SetAttr("late", i)
		}
	}()
	for i := 0; i < 500; i++ {
		v, ok := tr.Get(1)
		if !ok {
			t.Error("trace lost mid-run")
			break
		}
		if err := json.NewEncoder(io.Discard).Encode(v); err != nil {
			t.Errorf("encode: %v", err)
			break
		}
	}
	close(stop)
	<-done
}

func TestAttribute(t *testing.T) {
	tr := NewTracer(1)
	tc := tr.Begin("query")
	tr.BindQuery(7, tc)
	t0 := time.Now()
	tc.SpanAt(nil, "admission", t0, t0.Add(10*time.Millisecond), nil)
	eng := tc.SpanAt(nil, "engine", t0.Add(10*time.Millisecond), t0.Add(100*time.Millisecond), nil)
	tc.SpanAt(eng, "superstep 0", t0.Add(10*time.Millisecond), t0.Add(70*time.Millisecond), nil)
	tc.SpanAt(eng, "barrier/quiesce", t0.Add(70*time.Millisecond), t0.Add(100*time.Millisecond), nil)
	tc.Root().EndAt(t0.Add(100 * time.Millisecond))
	tr.Finish(tc)

	v, _ := tr.Get(7)
	rows := Attribute(v)
	got := make(map[string]float64)
	for _, r := range rows {
		got[r.Name] = r.DurationMS
	}
	if math.Abs(got["superstep 0"]-60) > 0.01 || math.Abs(got["barrier/quiesce"]-30) > 0.01 ||
		math.Abs(got["admission"]-10) > 0.01 {
		t.Fatalf("bad attribution: %+v", rows)
	}
	// Engine span is fully covered by children: no self-time row.
	if _, ok := got["engine"]; ok {
		t.Fatalf("interior span leaked self-time: %+v", rows)
	}
	var total float64
	for _, r := range rows {
		total += r.Fraction
	}
	if math.Abs(total-1) > 0.001 {
		t.Fatalf("fractions sum to %v, want 1", total)
	}
	if rows[0].Name != "superstep 0" {
		t.Fatalf("rows not sorted by share: %+v", rows)
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("qgraph_test_total", "", "a counter")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if again := r.Counter("qgraph_test_total", "", "a counter"); again != c {
		t.Fatal("re-registration returned a new counter")
	}
	g := r.Gauge("qgraph_test_gauge", `worker="2"`, "a gauge")
	g.Set(2.5)
	r.GaugeFunc("qgraph_test_fn", "", "func gauge", func() float64 { return 9 })
	h := r.Histogram("qgraph_test_seconds", "", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 || math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); q < 0.1 || q > 1 {
		t.Fatalf("p50 = %v, want within (0.1,1]", q)
	}

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE qgraph_test_total counter",
		"qgraph_test_total 4",
		`qgraph_test_gauge{worker="2"} 2.5`,
		"qgraph_test_fn 9",
		`qgraph_test_seconds_bucket{le="+Inf"} 5`,
		`qgraph_test_seconds_bucket{le="1"} 3`,
		"qgraph_test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	validatePrometheus(t, out)
}

// validatePrometheus checks text-exposition well-formedness: every
// non-comment line is `name{labels} value`, every samples' family has a
// preceding TYPE line, and histogram bucket counts are cumulative.
func validatePrometheus(t *testing.T, text string) {
	t.Helper()
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
	typed := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := m[1]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) {
				if _, ok := typed[strings.TrimSuffix(name, suf)]; ok {
					base = strings.TrimSuffix(name, suf)
				}
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("sample %q has no TYPE line", line)
		}
		if _, err := strconv.ParseFloat(strings.TrimPrefix(m[3], "+"), 64); err != nil && m[3] != "NaN" {
			t.Fatalf("bad value in %q", line)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("qgraph_conc_total", "", "x")
			h := r.Histogram("qgraph_conc_seconds", "", "x", nil)
			g := r.Gauge("qgraph_conc_gauge", fmt.Sprintf(`w="%d"`, i%2), "x")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				g.Set(float64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("qgraph_conc_total", "", "x").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("qgraph_conc_seconds", "", "x", nil).Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	validatePrometheus(t, buf.String())
}

// TestRegistryScrapeDuringRegistration races WritePrometheus against
// ongoing registrations (a second Server or core.Start sharing the
// registry after traffic begins): the scrape must snapshot series
// slices under the lock, not iterate them while registration appends.
func TestRegistryScrapeDuringRegistration(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Gauge("qgraph_scrape_race_gauge", fmt.Sprintf(`w="%d"`, i), "x").Set(float64(i))
			r.GaugeFunc("qgraph_scrape_race_fn", fmt.Sprintf(`w="%d"`, i), "x", func() float64 { return 1 })
		}
	}()
	for i := 0; i < 200; i++ {
		r.WritePrometheus(io.Discard)
	}
	close(stop)
	<-done
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	validatePrometheus(t, buf.String())
}

// TestRegistryFuncFirstWins: re-registering a func-backed series must
// not re-point it (a second Server sharing the registry would silently
// hijack qgraph_admission_*/qgraph_cache_* gauges otherwise).
func TestRegistryFuncFirstWins(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("qgraph_fw_gauge", "", "x", func() float64 { return 1 })
	r.GaugeFunc("qgraph_fw_gauge", "", "x", func() float64 { return 2 })
	r.CounterFunc("qgraph_fw_total", "", "x", func() float64 { return 10 })
	r.CounterFunc("qgraph_fw_total", "", "x", func() float64 { return 20 })
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, "qgraph_fw_gauge 1\n") {
		t.Fatalf("gauge func re-registration won (want first):\n%s", out)
	}
	if !strings.Contains(out, "qgraph_fw_total 10\n") {
		t.Fatalf("counter func re-registration won (want first):\n%s", out)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	h.Observe(100) // +Inf bucket
	if q := h.Quantile(1.0); q != 4 {
		t.Fatalf("p100 = %v, want 4 (lower bound of +Inf bucket)", q)
	}
	if q := h.Quantile(0.25); q > 1 {
		t.Fatalf("p25 = %v, want <= 1", q)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "warn", true, "controller")
	l.Info("hidden")
	l.Warn("visible", "trace_id", uint64(77), "worker", 3)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatal("info leaked past warn level")
	}
	if !strings.Contains(out, `"trace_id":77`) || !strings.Contains(out, `"role":"controller"`) {
		t.Fatalf("missing structured fields: %s", out)
	}
	if ParseLevel("debug") != slog.LevelDebug || ParseLevel("bogus") != slog.LevelInfo {
		t.Fatal("ParseLevel mapping wrong")
	}
}
