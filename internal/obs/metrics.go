package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer instrument.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float instrument.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default latency buckets, in seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implied
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates quantile q (0..1) by linear interpolation within
// the owning bucket — good enough for reporting, not for billing.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	lower := 0.0
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			if i < len(h.bounds) {
				lower = h.bounds[i]
			}
			continue
		}
		upper := math.Inf(1)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		if float64(cum+n) >= rank {
			if math.IsInf(upper, 1) {
				return lower
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + (upper-lower)*frac
		}
		cum += n
		lower = upper
	}
	return lower
}

type seriesKind int

const (
	kindCounter seriesKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type series struct {
	labels  string // rendered label set without braces, e.g. `phase="quiesce"`
	kind    seriesKind
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

type family struct {
	name   string
	help   string
	typ    string // counter | gauge | histogram
	series []*series
}

// Registry is a hand-rolled Prometheus-text-format metric registry. All
// register calls are idempotent on (name, labels): re-registering
// returns the existing instrument, so layers can share instruments
// without coordination.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) fam(name, help, typ string) *family {
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) find(labels string) *series {
	for _, s := range f.series {
		if s.labels == labels {
			return s
		}
	}
	return nil
}

// Counter registers (or returns the existing) counter name{labels}.
// labels is a rendered Prometheus label set without braces ("" for
// none), e.g. `worker="2"`.
func (r *Registry) Counter(name, labels, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "counter")
	if s := f.find(labels); s != nil {
		return s.counter
	}
	c := &Counter{}
	f.series = append(f.series, &series{labels: labels, kind: kindCounter, counter: c})
	return c
}

// Gauge registers (or returns the existing) gauge name{labels}.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "gauge")
	if s := f.find(labels); s != nil {
		return s.gauge
	}
	g := &Gauge{}
	f.series = append(f.series, &series{labels: labels, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time — the mechanism that lets /metrics report the exact same state
// /stats serializes, so the two cannot drift. Re-registering an
// existing (name, labels) series is a no-op: the first fn wins, so a
// second Server sharing the registry cannot silently re-point a series
// at its own state, and a published series is never mutated (scrapes
// read series fields without the lock).
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "gauge")
	if f.find(labels) != nil {
		return
	}
	f.series = append(f.series, &series{labels: labels, kind: kindGaugeFunc, fn: fn})
}

// CounterFunc registers a counter read from fn at scrape time (the
// source must be monotonic; used to mirror existing atomic counters).
// Like GaugeFunc, re-registration is a no-op — first fn wins.
func (r *Registry) CounterFunc(name, labels, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "counter")
	if f.find(labels) != nil {
		return
	}
	f.series = append(f.series, &series{labels: labels, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers (or returns the existing) histogram name{labels}
// with the given upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "histogram")
	if s := f.find(labels); s != nil {
		return s.hist
	}
	h := newHistogram(bounds)
	f.series = append(f.series, &series{labels: labels, kind: kindHistogram, hist: h})
	return h
}

func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func mergeLabels(base, extra string) string {
	switch {
	case base == "":
		return extra
	case extra == "":
		return base
	}
	return base + "," + extra
}

func writeSample(w io.Writer, name, labels, value string) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, value)
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	// Snapshot families AND their series slices under the lock: a
	// registration racing a scrape appends to f.series, which would be a
	// data race on the slice header if the scrape iterated it unlocked.
	// The *series pointees themselves are immutable once published
	// (instrument values are atomics; func re-registration is a no-op),
	// so rendering outside the lock is safe — and fn() callbacks read
	// engine state without holding the registry lock.
	r.mu.Lock()
	fams := make([]family, 0, len(r.order))
	for _, name := range r.order {
		f := r.fams[name]
		fams = append(fams, family{
			name:   f.name,
			help:   f.help,
			typ:    f.typ,
			series: append([]*series(nil), f.series...),
		})
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch s.kind {
			case kindCounter:
				writeSample(w, f.name, s.labels, strconv.FormatInt(s.counter.Value(), 10))
			case kindGauge:
				writeSample(w, f.name, s.labels, fmtFloat(s.gauge.Value()))
			case kindGaugeFunc:
				writeSample(w, f.name, s.labels, fmtFloat(s.fn()))
			case kindHistogram:
				h := s.hist
				var cum int64
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					writeSample(w, f.name+"_bucket", mergeLabels(s.labels, `le="`+fmtFloat(b)+`"`), strconv.FormatInt(cum, 10))
				}
				cum += h.counts[len(h.bounds)].Load()
				writeSample(w, f.name+"_bucket", mergeLabels(s.labels, `le="+Inf"`), strconv.FormatInt(cum, 10))
				writeSample(w, f.name+"_sum", s.labels, fmtFloat(h.Sum()))
				writeSample(w, f.name+"_count", s.labels, strconv.FormatInt(h.Count(), 10))
			}
		}
	}
}
