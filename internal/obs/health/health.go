// Package health is the engine's active health layer: a watchdog engine
// fed by signals the rest of the system already produces (per-worker
// compute times from barrier reports, barrier-phase ages, WAL fsync
// latency, admission-queue depth), a bounded structured event log, per-
// tenant SLO accounting, and an incident flight recorder that captures a
// debug bundle at the moment a detector fires. Like the rest of the obs
// substrate, every entry point is nil-receiver safe so feed sites stay
// unconditional — a deployment with the watchdog disabled pays one nil
// check per signal.
package health

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"qgraph/internal/obs"
)

// Config tunes the detectors. Zero values select the defaults noted on
// each field.
type Config struct {
	// StragglerFactor is k: a worker is a straggler candidate when its
	// per-superstep compute exceeds k x the median of its live peers'
	// smoothed per-step compute. Default 4.
	StragglerFactor float64
	// StragglerSteps is m: candidates must stay over threshold for m
	// consecutive observations to fire (and under it for m to clear).
	// Default 3.
	StragglerSteps int
	// StragglerMinMS is an absolute per-step floor in milliseconds —
	// a worker is never flagged while its per-step compute is below it,
	// so microsecond-scale jitter on idle graphs cannot page anyone.
	// Default 1ms.
	StragglerMinMS float64
	// StallTimeout bounds how long a barrier phase (or an outstanding
	// superstep) may run before the deadline watchdog fires. Default 10s.
	StallTimeout time.Duration
	// FsyncSpikeMin is the absolute floor for the fsync spike detector;
	// FsyncSpikeFactor is the multiple of the smoothed fsync latency a
	// sample must exceed. A spike needs both. Defaults 50ms, 8x.
	FsyncSpikeMin    time.Duration
	FsyncSpikeFactor float64
	// AdmissionRatio is the queued/capacity ratio at which the admission
	// saturation detector fires; it clears below half the ratio.
	// Default 0.9.
	AdmissionRatio float64
	// FlushStormCount cache invalidations within FlushStormWindow emit a
	// cache-flush-storm event. Defaults 32 per 10s.
	FlushStormCount  int
	FlushStormWindow time.Duration
	// SLOTarget is the per-request latency target; SLOObjective the
	// fraction of requests that must meet it (error budget = 1-objective).
	// Defaults 250ms, 0.99.
	SLOTarget    time.Duration
	SLOObjective float64
	// MaxTenants bounds the per-tenant SLO table; overflow tenants are
	// folded into "(other)". Default 64.
	MaxTenants int
	// EventCapacity and IncidentCapacity bound the rings. Defaults 512
	// events, 8 incidents.
	EventCapacity    int
	IncidentCapacity int
	// IncidentCooldown rate-limits re-capturing a bundle for the same
	// condition key. Default 30s.
	IncidentCooldown time.Duration
	// Clock substitutes a fake time source in tests.
	Clock func() time.Time
}

func (c *Config) fill() {
	if c.StragglerFactor <= 0 {
		c.StragglerFactor = 4
	}
	if c.StragglerSteps <= 0 {
		c.StragglerSteps = 3
	}
	if c.StragglerMinMS <= 0 {
		c.StragglerMinMS = 1
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 10 * time.Second
	}
	if c.FsyncSpikeMin <= 0 {
		c.FsyncSpikeMin = 50 * time.Millisecond
	}
	if c.FsyncSpikeFactor <= 0 {
		c.FsyncSpikeFactor = 8
	}
	if c.AdmissionRatio <= 0 {
		c.AdmissionRatio = 0.9
	}
	if c.FlushStormCount <= 0 {
		c.FlushStormCount = 32
	}
	if c.FlushStormWindow <= 0 {
		c.FlushStormWindow = 10 * time.Second
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 250 * time.Millisecond
	}
	if c.SLOObjective <= 0 || c.SLOObjective >= 1 {
		c.SLOObjective = 0.99
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.IncidentCooldown <= 0 {
		c.IncidentCooldown = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// workerState is one worker's straggler-detector state.
type workerState struct {
	ewmaMS   float64 // smoothed per-step compute, milliseconds
	samples  int64
	totalNS  int64
	steps    int64
	strikes  int // consecutive over-threshold observations
	recovers int // consecutive under-threshold observations while flagged
	flagged  bool
	dead     bool
}

// Monitor is the watchdog engine. One Monitor is shared by the
// controller (compute/fsync/stall/lifecycle feeds) and the serving layer
// (admission/SLO feeds, HTTP surfaces).
type Monitor struct {
	cfg    Config
	events *EventLog
	slo    *sloTable
	tracer *obs.Tracer

	mu        sync.Mutex
	workers   []workerState
	stallKind map[string]bool // active stall conditions by kind (barrier, superstep)
	admitSat  bool

	fsyncEWMA float64 // seconds
	fsyncN    int64
	lastFsync time.Time // last spike event, for rate limiting

	flushWindowStart time.Time
	flushCount       int
	lastFlushStorm   time.Time

	incidents   *incidentRing
	active      map[string]int64 // condition key -> open incident id
	lastCapture map[string]time.Time

	statsMu sync.Mutex
	statsFn func() any

	// metrics (nil without a registry)
	eventsTotal   map[Severity]*obs.Counter
	incidentsCtr  *obs.Counter
	stragglersCtr *obs.Counter
	reg           *obs.Registry
	workerGauges  []*obs.Gauge // per-worker EWMA ms/step
}

// New builds a Monitor and registers its metric families on o's
// registry (o may be nil — the monitor then keeps only its own state).
func New(cfg Config, o *obs.Obs) *Monitor {
	cfg.fill()
	m := &Monitor{
		cfg:         cfg,
		events:      NewEventLog(cfg.EventCapacity),
		tracer:      o.T(),
		stallKind:   make(map[string]bool),
		incidents:   newIncidentRing(cfg.IncidentCapacity),
		active:      make(map[string]int64),
		lastCapture: make(map[string]time.Time),
		reg:         o.M(),
	}
	m.slo = newSLOTable(cfg, o.M())
	if r := o.M(); r != nil {
		m.eventsTotal = map[Severity]*obs.Counter{
			SevInfo:     r.Counter("qgraph_health_events_total", `severity="info"`, "health events recorded, by severity"),
			SevWarn:     r.Counter("qgraph_health_events_total", `severity="warn"`, "health events recorded, by severity"),
			SevCritical: r.Counter("qgraph_health_events_total", `severity="critical"`, "health events recorded, by severity"),
		}
		m.incidentsCtr = r.Counter("qgraph_health_incidents_total", "", "incident bundles captured")
		m.stragglersCtr = r.Counter("qgraph_health_stragglers_total", "", "straggler detections fired")
		r.GaugeFunc("qgraph_health_degraded", "", "1 when a detector currently holds the node degraded", func() float64 {
			if m.Snapshot().Degraded {
				return 1
			}
			return 0
		})
	}
	return m
}

func (m *Monitor) now() time.Time { return m.cfg.Clock() }

// emit stamps and appends an event, mirrors it to the severity counter,
// and returns the stamped event.
func (m *Monitor) emit(e Event) Event {
	if e.At.IsZero() {
		e.At = m.now()
	}
	if e.Severity == "" {
		e.Severity = SevInfo
	}
	e = m.events.Append(e)
	m.eventsTotal[e.Severity].Inc()
	return e
}

// Record appends a lifecycle event (recovery episodes, snapshot cuts,
// codec rejects, ...) from code that observed it happen. worker is -1
// when the event is not worker-scoped.
func (m *Monitor) Record(typ string, sev Severity, worker int, msg string, fields map[string]any) {
	if m == nil {
		return
	}
	m.emit(Event{Type: typ, Severity: sev, Worker: worker, Msg: msg, Fields: fields})
}

// Events lists matching events newest-first.
func (m *Monitor) Events(f EventFilter) []Event {
	if m == nil {
		return nil
	}
	return m.events.List(f)
}

// SetStatsFn registers the callback that snapshots the serving layer's
// /stats view into incident bundles.
func (m *Monitor) SetStatsFn(fn func() any) {
	if m == nil {
		return
	}
	m.statsMu.Lock()
	m.statsFn = fn
	m.statsMu.Unlock()
}

// SLO returns the per-tenant accounting table (nil-safe).
func (m *Monitor) SLO() *sloTable {
	if m == nil {
		return nil
	}
	return m.slo
}

// ObserveRequest classifies one finished request into the tenant's SLO
// ledger. outcome is the serving layer's status string (completed,
// rejected, expired, failed).
func (m *Monitor) ObserveRequest(tenant string, d time.Duration, outcome string) {
	if m == nil {
		return
	}
	m.slo.observe(tenant, d, outcome)
}

// SLOReport snapshots the per-tenant SLO view for GET /slo.
func (m *Monitor) SLOReport() SLOView {
	if m == nil {
		return SLOView{}
	}
	return m.slo.report()
}

// ---------------------------------------------------------------------------
// Straggler detector

// ObserveCompute feeds one barrier report: worker spent computeNS of
// compute over steps supersteps. The detector compares the per-step
// sample against k x the median of the live peers' smoothed per-step
// compute; m consecutive over-threshold observations flag the worker,
// m consecutive under-threshold observations clear it.
func (m *Monitor) ObserveCompute(worker int, computeNS int64, steps int) {
	if m == nil || worker < 0 || steps <= 0 || computeNS < 0 {
		return
	}
	var fired, cleared Event
	var fire, clear bool

	m.mu.Lock()
	m.growLocked(worker)
	ws := &m.workers[worker]
	sampleMS := float64(computeNS) / float64(steps) / 1e6
	if ws.samples == 0 {
		ws.ewmaMS = sampleMS
	} else {
		ws.ewmaMS = 0.7*ws.ewmaMS + 0.3*sampleMS
	}
	ws.samples++
	ws.totalNS += computeNS
	ws.steps += int64(steps)
	ws.dead = false
	if g := m.workerGaugeLocked(worker); g != nil {
		g.Set(ws.ewmaMS)
	}

	med, peers := m.peerMedianLocked(worker)
	threshold := m.cfg.StragglerFactor * med
	if floor := m.cfg.StragglerMinMS; threshold < floor {
		threshold = floor
	}
	over := peers > 0 && sampleMS > threshold
	if over {
		ws.strikes++
		ws.recovers = 0
		if !ws.flagged && ws.strikes >= m.cfg.StragglerSteps {
			ws.flagged = true
			fire = true
			fired = Event{
				Type: EventStraggler, Severity: SevWarn, Worker: worker,
				Msg: fmt.Sprintf("worker %d is a persistent straggler: %.2fms/step > %.1fx peer median %.3fms for %d supersteps",
					worker, sampleMS, m.cfg.StragglerFactor, med, ws.strikes),
				Fields: map[string]any{
					"sample_ms_per_step": sampleMS,
					"peer_median_ms":     med,
					"threshold_ms":       threshold,
					"strikes":            ws.strikes,
				},
			}
		}
	} else {
		ws.strikes = 0
		if ws.flagged {
			ws.recovers++
			if ws.recovers >= m.cfg.StragglerSteps {
				ws.flagged = false
				ws.recovers = 0
				// Reset the smoothed baseline to the healthy sample so the
				// gauge does not advertise the incident for minutes after.
				ws.ewmaMS = sampleMS
				clear = true
				cleared = Event{
					Type: EventStragglerClear, Severity: SevInfo, Worker: worker,
					Msg: fmt.Sprintf("worker %d recovered: %.3fms/step back under threshold %.3fms", worker, sampleMS, threshold),
					Fields: map[string]any{
						"sample_ms_per_step": sampleMS,
						"threshold_ms":       threshold,
					},
				}
			}
		}
	}
	m.mu.Unlock()

	if fire {
		m.stragglersCtr.Inc()
		ev := m.emit(fired)
		m.openIncident(stragglerKey(worker), ev, true)
	}
	if clear {
		m.emit(cleared)
		m.closeIncident(stragglerKey(worker))
	}
}

func stragglerKey(worker int) string { return fmt.Sprintf("straggler/%d", worker) }

// growLocked extends the worker table to include id. Callers hold m.mu.
func (m *Monitor) growLocked(worker int) {
	for len(m.workers) <= worker {
		m.workers = append(m.workers, workerState{})
	}
}

// workerGaugeLocked lazily registers the per-worker EWMA gauge.
func (m *Monitor) workerGaugeLocked(worker int) *obs.Gauge {
	if m.reg == nil {
		return nil
	}
	for len(m.workerGauges) <= worker {
		id := len(m.workerGauges)
		m.workerGauges = append(m.workerGauges, m.reg.Gauge(
			"qgraph_worker_step_ewma_ms", fmt.Sprintf(`worker="%d"`, id),
			"smoothed per-superstep compute time per worker, milliseconds"))
	}
	return m.workerGauges[worker]
}

// peerMedianLocked returns the median smoothed per-step compute of the
// live workers other than `worker` that have reported at least once,
// plus how many such peers exist. Callers hold m.mu.
func (m *Monitor) peerMedianLocked(worker int) (median float64, peers int) {
	vals := make([]float64, 0, len(m.workers))
	for i := range m.workers {
		ws := &m.workers[i]
		if i == worker || ws.dead || ws.samples == 0 {
			continue
		}
		vals = append(vals, ws.ewmaMS)
	}
	if len(vals) == 0 {
		return 0, 0
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid], len(vals)
	}
	return (vals[mid-1] + vals[mid]) / 2, len(vals)
}

// MarkWorkerDead excludes a dead worker from the peer median and from
// straggler candidacy (its last EWMA would otherwise keep skewing the
// live-set baseline through recovery).
func (m *Monitor) MarkWorkerDead(worker int) {
	if m == nil || worker < 0 {
		return
	}
	m.mu.Lock()
	m.growLocked(worker)
	ws := &m.workers[worker]
	ws.dead = true
	wasFlagged := ws.flagged
	ws.flagged = false
	ws.strikes, ws.recovers = 0, 0
	m.mu.Unlock()
	if wasFlagged {
		m.closeIncident(stragglerKey(worker))
	}
}

// MarkWorkerLive re-admits a recovered or respawned worker; its
// detector state restarts from scratch.
func (m *Monitor) MarkWorkerLive(worker int) {
	if m == nil || worker < 0 {
		return
	}
	m.mu.Lock()
	m.growLocked(worker)
	m.workers[worker] = workerState{}
	m.mu.Unlock()
}

// WorkerCompute is one row of the per-worker compute table embedded in
// incident bundles.
type WorkerCompute struct {
	Worker     int     `json:"worker"`
	Dead       bool    `json:"dead,omitempty"`
	Straggler  bool    `json:"straggler,omitempty"`
	Strikes    int     `json:"strikes,omitempty"`
	Samples    int64   `json:"samples"`
	Steps      int64   `json:"steps"`
	ComputeMS  float64 `json:"compute_ms_total"`
	EWMAStepMS float64 `json:"ewma_ms_per_step"`
}

// ComputeTable snapshots every worker's detector state.
func (m *Monitor) ComputeTable() []WorkerCompute {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerCompute, len(m.workers))
	for i := range m.workers {
		ws := &m.workers[i]
		out[i] = WorkerCompute{
			Worker:     i,
			Dead:       ws.dead,
			Straggler:  ws.flagged,
			Strikes:    ws.strikes,
			Samples:    ws.samples,
			Steps:      ws.steps,
			ComputeMS:  float64(ws.totalNS) / 1e6,
			EWMAStepMS: ws.ewmaMS,
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Stall detector

// CheckStall is the deadline watchdog, called once per controller tick.
// phase is the controller's current phase name; phaseAge is how long a
// non-run phase has been open (0 while running); oldestRelease is the
// age of the oldest outstanding superstep barrier (0 when none).
func (m *Monitor) CheckStall(phase string, phaseAge, oldestRelease time.Duration) {
	if m == nil {
		return
	}
	m.checkStallKind("barrier", phaseAge, EventBarrierStall,
		fmt.Sprintf("barrier phase %q open for %s (limit %s)", phase, phaseAge.Round(time.Millisecond), m.cfg.StallTimeout),
		map[string]any{"phase": phase, "age_ms": durMS(phaseAge)})
	m.checkStallKind("superstep", oldestRelease, EventQueryStall,
		fmt.Sprintf("oldest outstanding superstep unanswered for %s (limit %s)", oldestRelease.Round(time.Millisecond), m.cfg.StallTimeout),
		map[string]any{"age_ms": durMS(oldestRelease)})
}

func (m *Monitor) checkStallKind(kind string, age time.Duration, typ, msg string, fields map[string]any) {
	stalled := age > m.cfg.StallTimeout
	m.mu.Lock()
	was := m.stallKind[kind]
	m.stallKind[kind] = stalled
	m.mu.Unlock()
	key := "stall/" + kind
	if stalled && !was {
		ev := m.emit(Event{Type: typ, Severity: SevCritical, Worker: -1, Msg: msg, Fields: fields})
		m.openIncident(key, ev, true)
	}
	if !stalled && was {
		m.emit(Event{Type: EventStallClear, Severity: SevInfo, Worker: -1,
			Msg: "stall cleared: " + kind, Fields: map[string]any{"kind": kind}})
		m.closeIncident(key)
	}
}

// ---------------------------------------------------------------------------
// Fsync spike detector

// ObserveFsync feeds one WAL group-commit fsync duration. A sample is a
// spike when it exceeds both the absolute floor and factor x the
// smoothed latency seen so far.
func (m *Monitor) ObserveFsync(d time.Duration) {
	if m == nil || d < 0 {
		return
	}
	secs := d.Seconds()
	var fire bool
	var ev Event
	m.mu.Lock()
	prev := m.fsyncEWMA
	if m.fsyncN == 0 {
		m.fsyncEWMA = secs
	} else {
		m.fsyncEWMA = 0.9*m.fsyncEWMA + 0.1*secs
	}
	m.fsyncN++
	if m.fsyncN > 1 && secs > m.cfg.FsyncSpikeMin.Seconds() && secs > m.cfg.FsyncSpikeFactor*prev {
		now := m.now()
		if now.Sub(m.lastFsync) >= m.cfg.IncidentCooldown/6 { // rate limit: at most ~1 per 5s at defaults
			m.lastFsync = now
			fire = true
			ev = Event{
				Type: EventFsyncSpike, Severity: SevWarn, Worker: -1,
				Msg: fmt.Sprintf("WAL fsync took %s (smoothed %.2fms, spike factor %.0fx)",
					d.Round(time.Microsecond), prev*1e3, m.cfg.FsyncSpikeFactor),
				Fields: map[string]any{"fsync_ms": secs * 1e3, "ewma_ms": prev * 1e3},
			}
		}
	}
	m.mu.Unlock()
	if fire {
		m.openIncident("fsync", m.emit(ev), false)
	}
}

// ---------------------------------------------------------------------------
// Admission saturation detector

// ObserveAdmission feeds the scheduler's current queue depth and
// capacity plus the cumulative 429 count; the serving layer calls it on
// the request path and on /healthz so saturation clears when traffic
// stops. Fires at queued/capacity >= AdmissionRatio, clears below half
// that ratio.
func (m *Monitor) ObserveAdmission(queued, maxQueue int, rejectedTotal int64) {
	if m == nil || maxQueue <= 0 {
		return
	}
	ratio := float64(queued) / float64(maxQueue)
	var fire, clear bool
	var ev Event
	m.mu.Lock()
	if !m.admitSat && ratio >= m.cfg.AdmissionRatio {
		m.admitSat = true
		fire = true
		ev = Event{
			Type: EventAdmissionSat, Severity: SevWarn, Worker: -1,
			Msg: fmt.Sprintf("admission queue %d/%d (%.0f%% full), %d rejections so far", queued, maxQueue, ratio*100, rejectedTotal),
			Fields: map[string]any{
				"queued": queued, "max_queue": maxQueue,
				"ratio": ratio, "rejected_total": rejectedTotal,
			},
		}
	} else if m.admitSat && ratio < m.cfg.AdmissionRatio/2 {
		m.admitSat = false
		clear = true
	}
	m.mu.Unlock()
	if fire {
		m.openIncident("admission", m.emit(ev), true)
	}
	if clear {
		m.emit(Event{Type: EventAdmissionClear, Severity: SevInfo, Worker: -1,
			Msg:    fmt.Sprintf("admission queue drained to %d/%d", queued, maxQueue),
			Fields: map[string]any{"queued": queued, "max_queue": maxQueue}})
		m.closeIncident("admission")
	}
}

// ---------------------------------------------------------------------------
// Cache flush storm

// ObserveCacheFlush counts one result-cache invalidation; crossing
// FlushStormCount within FlushStormWindow emits a storm event (warn, no
// incident — storms are expected under write-heavy load, operators just
// need the timeline entry explaining the cache-hit-rate cliff).
func (m *Monitor) ObserveCacheFlush() {
	if m == nil {
		return
	}
	var fire bool
	var ev Event
	now := m.now()
	m.mu.Lock()
	if m.flushWindowStart.IsZero() || now.Sub(m.flushWindowStart) > m.cfg.FlushStormWindow {
		m.flushWindowStart = now
		m.flushCount = 0
	}
	m.flushCount++
	if m.flushCount == m.cfg.FlushStormCount && now.Sub(m.lastFlushStorm) >= m.cfg.FlushStormWindow {
		m.lastFlushStorm = now
		fire = true
		ev = Event{
			Type: EventCacheFlushStorm, Severity: SevWarn, Worker: -1,
			Msg: fmt.Sprintf("%d cache invalidations inside %s", m.flushCount, m.cfg.FlushStormWindow),
			Fields: map[string]any{
				"count":     m.flushCount,
				"window_ms": durMS(m.cfg.FlushStormWindow),
			},
		}
	}
	m.mu.Unlock()
	if fire {
		m.emit(ev)
	}
}

// ---------------------------------------------------------------------------
// Health snapshot

// HealthSnapshot is what /healthz folds into its response: which
// detectors currently hold the node degraded.
type HealthSnapshot struct {
	Degraded        bool    `json:"degraded"`
	Stragglers      []int   `json:"stragglers,omitempty"`
	Stalled         bool    `json:"stalled,omitempty"`
	AdmissionSat    bool    `json:"admission_saturated,omitempty"`
	ActiveIncidents []int64 `json:"active_incidents,omitempty"`
}

// Snapshot reports the detectors' current verdict. Degraded is driven
// by conditions that impair service: flagged stragglers and stalls.
// Admission saturation is surfaced but does not degrade — the scheduler
// shedding load is the system working as designed.
func (m *Monitor) Snapshot() HealthSnapshot {
	if m == nil {
		return HealthSnapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var s HealthSnapshot
	for i := range m.workers {
		if m.workers[i].flagged {
			s.Stragglers = append(s.Stragglers, i)
		}
	}
	for _, stalled := range m.stallKind {
		if stalled {
			s.Stalled = true
		}
	}
	s.AdmissionSat = m.admitSat
	for _, id := range m.active {
		s.ActiveIncidents = append(s.ActiveIncidents, id)
	}
	sort.Slice(s.ActiveIncidents, func(i, j int) bool { return s.ActiveIncidents[i] < s.ActiveIncidents[j] })
	s.Degraded = len(s.Stragglers) > 0 || s.Stalled
	return s
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
