package health

import (
	"strings"
	"sync"
	"testing"
	"time"

	"qgraph/internal/obs"
)

// fakeClock is a manually advanced time source for the detectors.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestMonitor builds a Monitor on a fake clock with a short incident
// cooldown, on a real registry so metric registration is exercised too.
func newTestMonitor(mut func(*Config)) (*Monitor, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	cfg := Config{Clock: clk.Now, IncidentCooldown: time.Second}
	if mut != nil {
		mut(&cfg)
	}
	return New(cfg, obs.New(nil)), clk
}

func eventTypes(evs []Event) []string {
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.Type
	}
	return out
}

func TestEventLogRingWrapAndFilters(t *testing.T) {
	l := NewEventLog(4)
	sevs := []Severity{SevInfo, SevWarn, SevCritical, SevInfo, SevWarn, SevCritical, SevWarn}
	for i, sev := range sevs {
		l.Append(Event{Type: "t" + string(rune('a'+i)), Severity: sev, Worker: -1})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want ring capacity 4", l.Len())
	}
	got := l.List(EventFilter{})
	want := []string{"tg", "tf", "te", "td"} // newest first, oldest three evicted
	if strings.Join(eventTypes(got), ",") != strings.Join(want, ",") {
		t.Fatalf("List = %v, want %v", eventTypes(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq >= got[i-1].Seq {
			t.Fatalf("Seq not strictly decreasing newest-first: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
	if got := l.List(EventFilter{Type: "te"}); len(got) != 1 || got[0].Type != "te" {
		t.Fatalf("type filter = %v", eventTypes(got))
	}
	// Severity filter keeps that severity and above.
	if got := l.List(EventFilter{MinSeverity: SevCritical}); len(got) != 1 || got[0].Type != "tf" {
		t.Fatalf("critical filter = %v", eventTypes(got))
	}
	if got := l.List(EventFilter{MinSeverity: SevWarn}); len(got) != 3 {
		t.Fatalf("warn filter kept %d events, want 3", len(got))
	}
	if got := l.List(EventFilter{Limit: 2}); len(got) != 2 || got[0].Type != "tg" {
		t.Fatalf("limit filter = %v", eventTypes(got))
	}
}

// feedHealthy reports one healthy 1ms superstep for each listed worker.
func feedHealthy(m *Monitor, workers ...int) {
	for _, w := range workers {
		m.ObserveCompute(w, int64(time.Millisecond), 1)
	}
}

func TestStragglerFireAndClear(t *testing.T) {
	m, _ := newTestMonitor(func(c *Config) {
		c.StragglerFactor = 4
		c.StragglerSteps = 2
	})

	// Two healthy peers at 1ms/step, worker 0 at 20ms/step: the threshold
	// is 4 x 1ms, so worker 0 strikes every observation.
	feedHealthy(m, 1, 2)
	m.ObserveCompute(0, int64(20*time.Millisecond), 1) // strike 1
	if s := m.Snapshot(); s.Degraded {
		t.Fatalf("degraded after one strike, want %d strikes required", 2)
	}
	m.ObserveCompute(0, int64(20*time.Millisecond), 1) // strike 2: fires

	s := m.Snapshot()
	if !s.Degraded || len(s.Stragglers) != 1 || s.Stragglers[0] != 0 {
		t.Fatalf("snapshot after fire = %+v, want degraded with stragglers [0]", s)
	}
	if evs := m.Events(EventFilter{Type: EventStraggler}); len(evs) != 1 || evs[0].Worker != 0 {
		t.Fatalf("straggler events = %v", evs)
	}

	// The flight recorder captured a bundle keyed to the condition, with
	// the per-worker compute table naming the straggler.
	inc, ok := m.Incident(0)
	if !ok {
		t.Fatal("no incident captured")
	}
	if inc.Key != stragglerKey(0) || !inc.Open || inc.Trigger.Type != EventStraggler {
		t.Fatalf("incident = key %q open %v trigger %q", inc.Key, inc.Open, inc.Trigger.Type)
	}
	if len(inc.Workers) != 3 || !inc.Workers[0].Straggler || inc.Workers[1].Straggler {
		t.Fatalf("incident worker table = %+v", inc.Workers)
	}
	if len(inc.Events) == 0 || inc.Goroutines == "" {
		t.Fatalf("incident bundle missing payloads: %d events, %d goroutine bytes", len(inc.Events), len(inc.Goroutines))
	}

	// A continued straggle must not flap into more events or bundles.
	m.ObserveCompute(0, int64(20*time.Millisecond), 1)
	if evs := m.Events(EventFilter{Type: EventStraggler}); len(evs) != 1 {
		t.Fatalf("straggler re-fired while already flagged: %v", evs)
	}

	// Recovery: m consecutive healthy samples clear the flag, emit the
	// clear event, and close (not drop) the incident.
	m.ObserveCompute(0, int64(time.Millisecond), 1)
	m.ObserveCompute(0, int64(time.Millisecond), 1)
	if s := m.Snapshot(); s.Degraded || len(s.Stragglers) != 0 {
		t.Fatalf("snapshot after recovery = %+v, want healthy", s)
	}
	if evs := m.Events(EventFilter{Type: EventStragglerClear}); len(evs) != 1 {
		t.Fatalf("clear events = %v", evs)
	}
	refs := m.Incidents()
	if len(refs) != 1 || refs[0].Open {
		t.Fatalf("incident refs after clear = %+v, want one closed bundle", refs)
	}

	// The registry renders without deadlock and carries the health families.
	var sb strings.Builder
	m.reg.WritePrometheus(&sb)
	for _, want := range []string{
		`qgraph_worker_step_ewma_ms{worker="0"}`,
		"qgraph_health_stragglers_total 1",
		"qgraph_health_degraded 0",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestStragglerNeedsPeersAndFloor(t *testing.T) {
	m, _ := newTestMonitor(nil)
	// A lone worker has no peers: never flagged however slow.
	for i := 0; i < 10; i++ {
		m.ObserveCompute(0, int64(time.Second), 1)
	}
	if s := m.Snapshot(); s.Degraded {
		t.Fatalf("lone worker flagged: %+v", s)
	}
	// Microsecond-scale skew below the absolute floor never flags either.
	m2, _ := newTestMonitor(nil)
	for i := 0; i < 10; i++ {
		m2.ObserveCompute(1, int64(10*time.Microsecond), 1)
		m2.ObserveCompute(0, int64(900*time.Microsecond), 1) // 90x peers, under the 1ms floor
	}
	if s := m2.Snapshot(); s.Degraded {
		t.Fatalf("sub-floor worker flagged: %+v", s)
	}
}

func TestMarkWorkerDeadUnflagsAndSkewsNoMedian(t *testing.T) {
	m, _ := newTestMonitor(func(c *Config) { c.StragglerSteps = 2 })
	feedHealthy(m, 1, 2)
	m.ObserveCompute(0, int64(20*time.Millisecond), 1)
	m.ObserveCompute(0, int64(20*time.Millisecond), 1)
	if !m.Snapshot().Degraded {
		t.Fatal("straggler did not fire")
	}
	m.MarkWorkerDead(0)
	s := m.Snapshot()
	if s.Degraded || len(s.ActiveIncidents) != 0 {
		t.Fatalf("dead worker still degrades: %+v", s)
	}
	// The dead worker's 20ms EWMA must not skew the live-set median:
	// worker 1 at 5ms against peer 2's 1ms has threshold 4x1ms = 4ms.
	m.ObserveCompute(1, int64(5*time.Millisecond), 1)
	m.ObserveCompute(1, int64(5*time.Millisecond), 1)
	if !m.Snapshot().Degraded {
		t.Fatal("dead worker's stale EWMA still lifted the peer median")
	}
	// Rejoin resets detector state from scratch.
	m.MarkWorkerLive(0)
	if tab := m.ComputeTable(); tab[0].Samples != 0 || tab[0].Dead {
		t.Fatalf("rejoined worker state = %+v", tab[0])
	}
}

func TestStallDetectorEdgeTriggered(t *testing.T) {
	m, _ := newTestMonitor(nil) // default 10s timeout
	m.CheckStall("delta-commit", 15*time.Second, 0)
	if s := m.Snapshot(); !s.Degraded || !s.Stalled {
		t.Fatalf("snapshot = %+v, want stalled", s)
	}
	if evs := m.Events(EventFilter{Type: EventBarrierStall}); len(evs) != 1 || evs[0].Severity != SevCritical {
		t.Fatalf("barrier stall events = %v", evs)
	}
	// Still stalled: edge-triggered, no second event.
	m.CheckStall("delta-commit", 16*time.Second, 0)
	if evs := m.Events(EventFilter{Type: EventBarrierStall}); len(evs) != 1 {
		t.Fatalf("stall re-fired: %v", evs)
	}
	// Phase completes: clears.
	m.CheckStall("run", 0, 0)
	if s := m.Snapshot(); s.Stalled {
		t.Fatalf("snapshot after clear = %+v", s)
	}
	if evs := m.Events(EventFilter{Type: EventStallClear}); len(evs) != 1 {
		t.Fatalf("clear events = %v", evs)
	}
	// The superstep watchdog is independent of the phase watchdog.
	m.CheckStall("run", 0, 20*time.Second)
	if evs := m.Events(EventFilter{Type: EventQueryStall}); len(evs) != 1 {
		t.Fatalf("superstep stall events = %v", evs)
	}
}

func TestFsyncSpikeDetector(t *testing.T) {
	m, clk := newTestMonitor(nil)
	for i := 0; i < 3; i++ {
		m.ObserveFsync(time.Millisecond)
	}
	m.ObserveFsync(500 * time.Millisecond) // >> 50ms floor and >> 8x the ~1ms EWMA
	if evs := m.Events(EventFilter{Type: EventFsyncSpike}); len(evs) != 1 {
		t.Fatalf("fsync spike events = %v", evs)
	}
	// A spike is a point event: a bundle is captured but nothing stays
	// degraded or open.
	if s := m.Snapshot(); s.Degraded || len(s.ActiveIncidents) != 0 {
		t.Fatalf("snapshot after spike = %+v", s)
	}
	refs := m.Incidents()
	if len(refs) != 1 || refs[0].Open || refs[0].Trigger != EventFsyncSpike {
		t.Fatalf("incident refs = %+v", refs)
	}
	// Back-to-back spikes are rate limited...
	m.ObserveFsync(800 * time.Millisecond)
	if evs := m.Events(EventFilter{Type: EventFsyncSpike}); len(evs) != 1 {
		t.Fatalf("spike not rate limited: %v", evs)
	}
	// ...until the limiter window passes.
	clk.Advance(time.Second)
	m.ObserveFsync(5 * time.Second)
	if evs := m.Events(EventFilter{Type: EventFsyncSpike}); len(evs) != 2 {
		t.Fatalf("spike after cooldown = %v", evs)
	}
}

func TestAdmissionSaturationHysteresis(t *testing.T) {
	m, _ := newTestMonitor(nil) // fires at 0.9, clears below 0.45
	m.ObserveAdmission(95, 100, 7)
	s := m.Snapshot()
	if !s.AdmissionSat || s.Degraded {
		t.Fatalf("snapshot = %+v, want saturated but NOT degraded (shedding is by design)", s)
	}
	if len(s.ActiveIncidents) != 1 {
		t.Fatalf("active incidents = %v, want the saturation bundle open", s.ActiveIncidents)
	}
	// Inside the hysteresis band nothing changes.
	m.ObserveAdmission(60, 100, 9)
	if s := m.Snapshot(); !s.AdmissionSat {
		t.Fatal("saturation cleared inside the hysteresis band")
	}
	m.ObserveAdmission(10, 100, 9)
	s = m.Snapshot()
	if s.AdmissionSat || len(s.ActiveIncidents) != 0 {
		t.Fatalf("snapshot after drain = %+v", s)
	}
	if evs := m.Events(EventFilter{Type: EventAdmissionClear}); len(evs) != 1 {
		t.Fatalf("clear events = %v", evs)
	}
}

func TestSLOAccounting(t *testing.T) {
	m, _ := newTestMonitor(func(c *Config) {
		c.SLOTarget = 100 * time.Millisecond
		c.SLOObjective = 0.9
		c.MaxTenants = 2
	})
	for i := 0; i < 8; i++ {
		m.ObserveRequest("a", 10*time.Millisecond, "completed")
	}
	m.ObserveRequest("a", 500*time.Millisecond, "completed") // over target: slow-ok
	m.ObserveRequest("a", time.Millisecond, "rejected")
	m.ObserveRequest("b", 5*time.Millisecond, "completed")
	m.ObserveRequest("c", 5*time.Millisecond, "failed") // over MaxTenants: folds into (other)

	v := m.SLOReport()
	if v.TargetMS != 100 || v.Objective != 0.9 {
		t.Fatalf("report header = %+v", v)
	}
	a, ok := v.Tenants["a"]
	if !ok {
		t.Fatalf("tenant a missing: %v", v.Tenants)
	}
	if a.Requests != 10 || a.Good != 8 || a.SlowOK != 1 || a.Rejected != 1 {
		t.Fatalf("tenant a counters = %+v", a.TenantSnapshot)
	}
	if a.GoodRatio != 0.8 {
		t.Fatalf("tenant a good ratio = %v", a.GoodRatio)
	}
	// 20% bad over a 10% budget: burning at 2x.
	if a.BurnRate < 1.99 || a.BurnRate > 2.01 {
		t.Fatalf("tenant a burn = %v, want 2", a.BurnRate)
	}
	if a.RecentBurnRate <= 0 {
		t.Fatalf("tenant a recent burn = %v, want > 0", a.RecentBurnRate)
	}
	if _, ok := v.Tenants["c"]; ok {
		t.Fatal("tenant c should have overflowed into (other)")
	}
	other, ok := v.Tenants[overflowTenant]
	if !ok || other.Failed != 1 {
		t.Fatalf("overflow tenant = %+v", other)
	}
	// Per-tenant metric families rendered with the client string escaped.
	var sb strings.Builder
	m.reg.WritePrometheus(&sb)
	for _, want := range []string{
		`qgraph_tenant_requests_total{tenant="a"} 10`,
		`qgraph_tenant_slo_burn{tenant="a"}`,
		`qgraph_tenant_request_seconds_count{tenant="a"} 10`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestCacheFlushStorm(t *testing.T) {
	m, clk := newTestMonitor(func(c *Config) {
		c.FlushStormCount = 3
		c.FlushStormWindow = 10 * time.Second
	})
	for i := 0; i < 5; i++ {
		m.ObserveCacheFlush()
	}
	if evs := m.Events(EventFilter{Type: EventCacheFlushStorm}); len(evs) != 1 {
		t.Fatalf("storm events = %v", evs)
	}
	// A fresh window after the rate limit can fire again.
	clk.Advance(11 * time.Second)
	for i := 0; i < 3; i++ {
		m.ObserveCacheFlush()
	}
	if evs := m.Events(EventFilter{Type: EventCacheFlushStorm}); len(evs) != 2 {
		t.Fatalf("storm events after new window = %v", evs)
	}
}

func TestIncidentRingBoundAndCooldown(t *testing.T) {
	m, clk := newTestMonitor(func(c *Config) { c.IncidentCapacity = 2 })
	stall := func() {
		m.CheckStall("move", 15*time.Second, 0)
		m.CheckStall("run", 0, 0)
	}
	stall()
	// Within the cooldown a recurrence logs events but skips re-capture.
	stall()
	if refs := m.Incidents(); len(refs) != 1 {
		t.Fatalf("cooldown not honored: %d bundles", len(refs))
	}
	clk.Advance(2 * time.Second)
	stall()
	clk.Advance(2 * time.Second)
	stall()
	refs := m.Incidents()
	if len(refs) != 2 {
		t.Fatalf("ring holds %d bundles, want capacity 2", len(refs))
	}
	if refs[0].ID <= refs[1].ID {
		t.Fatalf("refs not newest-first: %+v", refs)
	}
	// The oldest bundle was evicted: fetching it by id misses.
	if _, ok := m.Incident(refs[1].ID - 1); ok {
		t.Fatal("evicted incident still retrievable")
	}
	if inc, ok := m.Incident(0); !ok || inc.ID != refs[0].ID {
		t.Fatalf("latest lookup = %+v, %v", inc, ok)
	}
}

func TestRecordedLifecycleEvents(t *testing.T) {
	m, _ := newTestMonitor(nil)
	m.Record(EventSnapshotCut, SevInfo, -1, "cut v3", map[string]any{"version": 3})
	m.Record(EventCodecReject, SevWarn, -1, "bad peer", nil)
	evs := m.Events(EventFilter{})
	if len(evs) != 2 || evs[0].Type != EventCodecReject || evs[1].Type != EventSnapshotCut {
		t.Fatalf("events = %v", eventTypes(evs))
	}
	if evs[1].Fields["version"] != 3 {
		t.Fatalf("fields lost: %+v", evs[1].Fields)
	}
}

// TestNilMonitor locks in the nil-receiver contract every feed site
// relies on: a deployment with -watchdog=false pays one nil check.
func TestNilMonitor(t *testing.T) {
	var m *Monitor
	m.Record(EventRecovery, SevInfo, -1, "x", nil)
	m.ObserveCompute(0, 1e9, 1)
	m.ObserveFsync(time.Second)
	m.ObserveAdmission(1, 1, 0)
	m.ObserveCacheFlush()
	m.ObserveRequest("t", time.Second, "completed")
	m.CheckStall("run", time.Hour, time.Hour)
	m.MarkWorkerDead(0)
	m.MarkWorkerLive(0)
	m.SetStatsFn(func() any { return nil })
	if s := m.Snapshot(); s.Degraded {
		t.Fatal("nil monitor degraded")
	}
	if evs := m.Events(EventFilter{}); evs != nil {
		t.Fatalf("nil monitor events = %v", evs)
	}
	if _, ok := m.Incident(0); ok {
		t.Fatal("nil monitor has incidents")
	}
	if refs := m.Incidents(); refs != nil {
		t.Fatalf("nil monitor incident refs = %v", refs)
	}
	if v := m.SLOReport(); v.Tenants != nil {
		t.Fatalf("nil monitor slo = %+v", v)
	}
	if tab := m.ComputeTable(); tab != nil {
		t.Fatalf("nil monitor compute table = %v", tab)
	}
}
