package health

import (
	"sync"
	"time"
)

// Severity ranks an event for filtering: info (normal lifecycle), warn
// (a detector fired but the system is still serving), critical (service
// is impaired — terminal degradation, stalled barriers).
type Severity string

// Severity levels, ordered info < warn < critical.
const (
	SevInfo     Severity = "info"
	SevWarn     Severity = "warn"
	SevCritical Severity = "critical"
)

func sevRank(s Severity) int {
	switch s {
	case SevWarn:
		return 1
	case SevCritical:
		return 2
	}
	return 0
}

// Event type strings. Detections carry the detector's evidence in
// Fields; lifecycle events mirror what the engine already logs so the
// ring is a self-contained incident timeline.
const (
	EventStraggler       = "event_straggler"
	EventStragglerClear  = "event_straggler_clear"
	EventBarrierStall    = "event_barrier_stall"
	EventQueryStall      = "event_query_stall"
	EventStallClear      = "event_stall_clear"
	EventFsyncSpike      = "event_fsync_spike"
	EventAdmissionSat    = "event_admission_saturation"
	EventAdmissionClear  = "event_admission_clear"
	EventWorkerDead      = "event_worker_dead"
	EventRecovery        = "event_recovery"
	EventTerminal        = "event_terminal"
	EventSnapshotCut     = "event_snapshot_cut"
	EventSnapshotCorrupt = "event_snapshot_corrupt"
	EventCacheFlushStorm = "event_cache_flush_storm"
	EventCodecReject     = "event_codec_reject"
	EventIncident        = "event_incident"
	EventReplicaGap      = "event_replica_gap"
)

// Event is one entry of the bounded structured event log.
type Event struct {
	Seq      int64          `json:"seq"`
	At       time.Time      `json:"at"`
	Type     string         `json:"type"`
	Severity Severity       `json:"severity"`
	Msg      string         `json:"msg"`
	Worker   int            `json:"worker"`             // worker id the event concerns, -1 when not worker-scoped
	Incident int64          `json:"incident,omitempty"` // incident id this event opened, if any
	Fields   map[string]any `json:"fields,omitempty"`
}

// EventFilter selects events for listing. Zero values mean "no
// constraint"; MinSeverity keeps events at or above that severity.
type EventFilter struct {
	Type        string
	MinSeverity Severity
	Limit       int // max events returned (<=0 selects 100)
}

// EventLog is a bounded ring of events: insertion overwrites the oldest
// slot in O(1), same shape as the Tracer's completed-trace ring, so a
// misbehaving detector can never grow memory without bound.
type EventLog struct {
	mu   sync.Mutex
	seq  int64
	ring []Event
	next int // next write index
	n    int // filled slots, <= len(ring)
}

// DefaultEventRing bounds how many events are retained.
const DefaultEventRing = 512

// NewEventLog builds a log retaining up to capacity events (<=0 selects
// DefaultEventRing).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventRing
	}
	return &EventLog{ring: make([]Event, capacity)}
}

// Append stamps the event with the next sequence number and stores it,
// evicting the oldest when full. The stamped event is returned.
func (l *EventLog) Append(e Event) Event {
	if l == nil {
		return e
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
	return e
}

// List returns matching events newest-first (operators read the tail of
// the timeline first).
func (l *EventLog) List(f EventFilter) []Event {
	if l == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 100
	}
	minRank := sevRank(f.MinSeverity)
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, min(limit, l.n))
	for i := l.n - 1; i >= 0 && len(out) < limit; i-- {
		e := l.ring[(l.next-l.n+i+len(l.ring))%len(l.ring)]
		if f.Type != "" && e.Type != f.Type {
			continue
		}
		if sevRank(e.Severity) < minRank {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Len reports how many events are retained.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
