package health

import (
	"runtime"
	"sync/atomic"
	"time"

	"qgraph/internal/obs"
)

// Incident is one flight-recorder bundle: everything an operator needs
// to diagnose a detection after the fact, captured atomically at the
// moment the detector fired. Bundles live in a bounded ring, so a
// flapping detector can never grow memory without bound.
type Incident struct {
	ID         int64           `json:"id"`
	At         time.Time       `json:"at"`
	Key        string          `json:"key"`     // condition key, e.g. straggler/2
	Open       bool            `json:"open"`    // condition still holds
	Trigger    Event           `json:"trigger"` // the detection that opened it
	Events     []Event         `json:"events"`  // recent event-log tail, newest first
	Workers    []WorkerCompute `json:"workers"` // per-worker compute table
	Traces     []obs.TraceView `json:"slowest_traces,omitempty"`
	Stats      any             `json:"stats,omitempty"`      // serving layer /stats snapshot
	Goroutines string          `json:"goroutines,omitempty"` // full goroutine dump
}

// IncidentRef is the list shape (the bundle minus its bulky payloads).
type IncidentRef struct {
	ID      int64     `json:"id"`
	At      time.Time `json:"at"`
	Key     string    `json:"key"`
	Open    bool      `json:"open"`
	Trigger string    `json:"trigger"`
}

// incidentRing is the bounded incident store, same O(1) circular shape
// as the event log.
type incidentRing struct {
	ring []*Incident
	next int
	n    int
}

// DefaultIncidentRing bounds how many incident bundles are retained.
const DefaultIncidentRing = 8

func newIncidentRing(capacity int) *incidentRing {
	if capacity <= 0 {
		capacity = DefaultIncidentRing
	}
	return &incidentRing{ring: make([]*Incident, capacity)}
}

func (r *incidentRing) add(inc *Incident) {
	r.ring[r.next] = inc
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
}

// each visits retained incidents oldest-first.
func (r *incidentRing) each(visit func(*Incident)) {
	for i := 0; i < r.n; i++ {
		visit(r.ring[(r.next-r.n+i+len(r.ring))%len(r.ring)])
	}
}

var incidentSeq atomic.Int64

// maxGoroutineDump bounds the goroutine dump embedded in a bundle.
const maxGoroutineDump = 1 << 18 // 256 KiB

// openIncident captures a bundle for condition key unless one is
// already open for it or one was captured within the cooldown.
// persistent conditions (stragglers, stalls, saturation) keep the
// incident open until closeIncident; point events (fsync spikes) close
// immediately but still honor the cooldown.
func (m *Monitor) openIncident(key string, trigger Event, persistent bool) {
	if m == nil {
		return
	}
	now := m.now()
	m.mu.Lock()
	if _, ok := m.active[key]; ok {
		m.mu.Unlock()
		return
	}
	if last, ok := m.lastCapture[key]; ok && now.Sub(last) < m.cfg.IncidentCooldown {
		m.mu.Unlock()
		return
	}
	m.lastCapture[key] = now
	m.mu.Unlock()

	// Capture outside m.mu: the stats callback and the tracer walk other
	// subsystems' locks, and ComputeTable re-takes m.mu itself.
	inc := &Incident{
		ID:      incidentSeq.Add(1),
		At:      now,
		Key:     key,
		Open:    persistent,
		Trigger: trigger,
		Events:  m.events.List(EventFilter{Limit: 64}),
		Workers: m.ComputeTable(),
		Traces:  m.tracer.Slowest(5),
	}
	m.statsMu.Lock()
	fn := m.statsFn
	m.statsMu.Unlock()
	if fn != nil {
		inc.Stats = fn()
	}
	buf := make([]byte, maxGoroutineDump)
	inc.Goroutines = string(buf[:runtime.Stack(buf, true)])

	m.mu.Lock()
	m.incidents.add(inc)
	if persistent {
		m.active[key] = inc.ID
	}
	m.mu.Unlock()
	m.incidentsCtr.Inc()
	m.emit(Event{Type: EventIncident, Severity: trigger.Severity, Worker: trigger.Worker,
		Incident: inc.ID, Msg: "incident bundle captured: " + trigger.Msg,
		Fields: map[string]any{"key": key}})
}

// closeIncident marks the condition resolved; the bundle stays in the
// ring for inspection.
func (m *Monitor) closeIncident(key string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	id, ok := m.active[key]
	if ok {
		delete(m.active, key)
		m.incidents.each(func(inc *Incident) {
			if inc.ID == id {
				inc.Open = false
			}
		})
	}
	m.mu.Unlock()
}

// Incident returns the bundle with the given id, or the newest one when
// id <= 0 ("latest").
func (m *Monitor) Incident(id int64) (*Incident, bool) {
	if m == nil {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var hit *Incident
	m.incidents.each(func(inc *Incident) {
		if id <= 0 || inc.ID == id {
			hit = inc // oldest-first walk: last match is the newest
		}
	})
	if hit == nil {
		return nil, false
	}
	cp := *hit // Open is mutated by closeIncident under m.mu; hand out a copy
	return &cp, true
}

// Incidents lists retained incident refs newest-first.
func (m *Monitor) Incidents() []IncidentRef {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	refs := make([]IncidentRef, 0, m.incidents.n)
	m.incidents.each(func(inc *Incident) {
		refs = append(refs, IncidentRef{ID: inc.ID, At: inc.At, Key: inc.Key, Open: inc.Open, Trigger: inc.Trigger.Type})
	})
	for i, j := 0, len(refs)-1; i < j; i, j = i+1, j-1 {
		refs[i], refs[j] = refs[j], refs[i]
	}
	return refs
}
