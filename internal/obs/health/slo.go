package health

import (
	"strings"
	"sync"
	"time"

	"qgraph/internal/metrics"
	"qgraph/internal/obs"
)

// sloTable is the per-tenant SLO ledger: latency histograms, goodput,
// and error-budget burn, keyed by the tenant id the weighted-fair
// scheduler tracks. The table is bounded — tenant ids are client-
// supplied strings, so past MaxTenants new tenants fold into the
// "(other)" bucket instead of growing the map (and the metric registry)
// without bound.
type sloTable struct {
	target    time.Duration
	objective float64
	max       int
	reg       *obs.Registry

	mu      sync.Mutex
	tenants map[string]*tenantSLO
	order   []string
}

// tenantSLO is one tenant's accounting. The counter ledger is shared
// with /metrics via CounterFunc mirrors; recentBad is an EWMA of the
// per-request bad fraction, the "burn right now" signal that recovers
// after an incident while the cumulative ratio still remembers it.
type tenantSLO struct {
	counters  metrics.TenantCounters
	hist      *obs.Histogram
	recentBad float64 // EWMA of bad (0/1) per request, guarded by sloTable.mu
}

// overflowTenant absorbs tenants past the table bound.
const overflowTenant = "(other)"

// recentAlpha weights the newest request in the recent-burn EWMA: at
// 0.05, ~60 good requests halve the recent burn.
const recentAlpha = 0.05

func newSLOTable(cfg Config, reg *obs.Registry) *sloTable {
	return &sloTable{
		target:    cfg.SLOTarget,
		objective: cfg.SLOObjective,
		max:       cfg.MaxTenants,
		reg:       reg,
		tenants:   make(map[string]*tenantSLO),
	}
}

// escapeLabel renders a client-supplied tenant id safely inside a
// Prometheus label value.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// tenant returns (creating if room) the ledger for name. Callers hold
// t.mu.
func (t *sloTable) tenantLocked(name string) *tenantSLO {
	if ts, ok := t.tenants[name]; ok {
		return ts
	}
	if len(t.tenants) >= t.max {
		name = overflowTenant
		if ts, ok := t.tenants[name]; ok {
			return ts
		}
	}
	ts := &tenantSLO{}
	if t.reg != nil {
		labels := `tenant="` + escapeLabel(name) + `"`
		ts.hist = t.reg.Histogram("qgraph_tenant_request_seconds", labels,
			"request latency by tenant", nil)
		c := &ts.counters
		t.reg.CounterFunc("qgraph_tenant_requests_total", labels,
			"requests by tenant", func() float64 { return float64(c.Requests.Load()) })
		t.reg.CounterFunc("qgraph_tenant_good_total", labels,
			"requests completed within the SLO latency target, by tenant",
			func() float64 { return float64(c.Good.Load()) })
		t.reg.CounterFunc("qgraph_tenant_rejected_total", labels,
			"admission rejections (429) by tenant", func() float64 { return float64(c.Rejected.Load()) })
		t.reg.GaugeFunc("qgraph_tenant_slo_burn", labels,
			"recent error-budget burn rate by tenant (1 = burning exactly the budget)",
			func() float64 {
				t.mu.Lock()
				defer t.mu.Unlock()
				return ts.recentBad / (1 - t.objective)
			})
	}
	t.tenants[name] = ts
	t.order = append(t.order, name)
	return ts
}

// observe classifies one finished request.
func (t *sloTable) observe(tenant string, d time.Duration, outcome string) {
	if t == nil {
		return
	}
	if tenant == "" {
		tenant = "default"
	}
	t.mu.Lock()
	ts := t.tenantLocked(tenant)
	bad := 1.0
	c := &ts.counters
	c.Requests.Add(1)
	switch outcome {
	case "completed":
		if d <= t.target {
			c.Good.Add(1)
			bad = 0
		} else {
			c.SlowOK.Add(1)
		}
	case "rejected":
		c.Rejected.Add(1)
	case "expired":
		c.Expired.Add(1)
	default:
		c.Failed.Add(1)
	}
	ts.recentBad = (1-recentAlpha)*ts.recentBad + recentAlpha*bad
	t.mu.Unlock()
	ts.hist.Observe(d.Seconds())
}

// TenantSLOView is the JSON shape of one tenant's SLO state.
type TenantSLOView struct {
	metrics.TenantSnapshot
	GoodRatio      float64 `json:"good_ratio"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
	BurnRate       float64 `json:"burn_rate"`        // cumulative bad-fraction / error budget
	RecentBurnRate float64 `json:"recent_burn_rate"` // EWMA bad-fraction / error budget
}

// SLOView is the GET /slo response shape.
type SLOView struct {
	TargetMS  float64                  `json:"target_ms"`
	Objective float64                  `json:"objective"`
	Tenants   map[string]TenantSLOView `json:"tenants"`
}

// report snapshots the table.
func (t *sloTable) report() SLOView {
	if t == nil {
		return SLOView{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := SLOView{
		TargetMS:  durMS(t.target),
		Objective: t.objective,
		Tenants:   make(map[string]TenantSLOView, len(t.tenants)),
	}
	budget := 1 - t.objective
	for _, name := range t.order {
		ts := t.tenants[name]
		snap := ts.counters.Snapshot()
		row := TenantSLOView{
			TenantSnapshot: snap,
			P50MS:          ts.hist.Quantile(0.50) * 1e3,
			P99MS:          ts.hist.Quantile(0.99) * 1e3,
			RecentBurnRate: ts.recentBad / budget,
		}
		if snap.Requests > 0 {
			row.GoodRatio = float64(snap.Good) / float64(snap.Requests)
			row.BurnRate = (1 - row.GoodRatio) / budget
		}
		v.Tenants[name] = row
	}
	return v
}
