// Package fleet aggregates per-node observability surfaces into
// fleet-wide views: one /healthz fan-out becomes a roles-and-lags
// status document, one concurrent /metrics scrape becomes a single
// Prometheus page whose every series carries instance/role labels, and
// the nodes' health-event rings merge into one time-ordered log. The
// package is transport-thin — it fans out plain HTTP GETs and never
// fails the whole view because one node is down; partial results plus
// an error count are the contract (a fleet view that disappears exactly
// when a node dies would be useless at the moment it matters).
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"qgraph/internal/obs/health"
)

// Node is one scrape target: a fleet member addressed by its base URL.
// Name becomes the instance label / field on everything aggregated from
// it; Role is the topology role (primary | replica | router).
type Node struct {
	Name string `json:"instance"`
	Role string `json:"role"`
	Base string `json:"-"`
}

// maxBody bounds each fetched response (a /metrics page from a node
// with a runaway label set must not balloon the router's heap).
const maxBody = 4 << 20

// fetch GETs url and returns the body (even on non-2xx: /healthz
// answers 503 with a JSON body that is still the node's status).
func fetch(ctx context.Context, client *http.Client, url string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

// ---------------------------------------------------------------------------
// /fleet/status

// NodeStatus is one node's row in the fleet status document: identity,
// reachability, and the replication position its /healthz reported.
type NodeStatus struct {
	Instance string `json:"instance"`
	Role     string `json:"role"`
	// Reachable is transport-level: the probe got an HTTP response.
	// Status is the node's own verdict (ok | recovering | degraded |
	// draining); empty when unreachable.
	Reachable  bool   `json:"reachable"`
	HTTPStatus int    `json:"http_status,omitempty"`
	Status     string `json:"status,omitempty"`
	Error      string `json:"error,omitempty"`

	GraphVersion   uint64 `json:"graph_version,omitempty"`
	AppliedVersion uint64 `json:"applied_version,omitempty"`
	WALHead        uint64 `json:"wal_head,omitempty"`
	LagVersions    uint64 `json:"lag_versions"`
	Rebootstraps   int64  `json:"rebootstraps,omitempty"`
	// InRotation is a routing-policy overlay the aggregating router sets
	// on replica rows (nil when no policy applies).
	InRotation *bool `json:"in_rotation,omitempty"`
}

// healthzDoc is the subset of a node's /healthz body the fleet view
// re-reports (decoded loosely: primaries lack the replica fields).
type healthzDoc struct {
	Status            string `json:"status"`
	GraphVersion      uint64 `json:"graph_version"`
	AppliedVersion    uint64 `json:"applied_version"`
	WALHead           uint64 `json:"wal_head"`
	StalenessVersions uint64 `json:"staleness_versions"`
	Rebootstraps      int64  `json:"rebootstraps"`
}

// FetchStatus probes every node's /healthz concurrently and returns one
// row per node, in input order. Unreachable nodes still get a row
// (Reachable=false, Error set) — the whole point of the fleet view is
// seeing the hole.
func FetchStatus(ctx context.Context, client *http.Client, nodes []Node) []NodeStatus {
	out := make([]NodeStatus, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			row := NodeStatus{Instance: n.Name, Role: n.Role}
			code, body, err := fetch(ctx, client, n.Base+"/healthz")
			if err != nil {
				row.Error = err.Error()
				out[i] = row
				return
			}
			row.Reachable = true
			row.HTTPStatus = code
			var doc healthzDoc
			if err := json.Unmarshal(body, &doc); err != nil {
				row.Error = "bad healthz body: " + err.Error()
				out[i] = row
				return
			}
			row.Status = doc.Status
			row.GraphVersion = doc.GraphVersion
			row.AppliedVersion = doc.AppliedVersion
			row.WALHead = doc.WALHead
			row.LagVersions = doc.StalenessVersions
			row.Rebootstraps = doc.Rebootstraps
			if row.AppliedVersion == 0 && doc.GraphVersion > 0 {
				// Primaries report no applied_version; their committed
				// version is the position everyone else chases.
				row.AppliedVersion = doc.GraphVersion
			}
			out[i] = row
		}(i, n)
	}
	wg.Wait()
	return out
}

// ---------------------------------------------------------------------------
// /fleet/metrics

// famAgg collects one metric family's samples across the fleet, so the
// merged page emits a single HELP/TYPE header per family however many
// nodes report it (the text format forbids split family groups).
type famAgg struct {
	fname   string
	help    string
	typ     string
	samples []string
}

// name returns the family's metric name (used for the child-sample
// prefix check in Add).
func (f *famAgg) name() string { return f.fname }

// MetricsAgg merges per-node Prometheus text pages into one fleet page.
// Not safe for concurrent use; Scrape fans out the fetches and feeds
// pages in sequentially.
type MetricsAgg struct {
	order []string
	fams  map[string]*famAgg
	// Errors counts nodes whose scrape failed; FailedNodes names them.
	Errors      int
	FailedNodes []string
}

// NewMetricsAgg returns an empty aggregator.
func NewMetricsAgg() *MetricsAgg {
	return &MetricsAgg{fams: make(map[string]*famAgg)}
}

// Add parses one node's Prometheus text page and merges every sample,
// re-labeled with the node's instance and role. Samples are grouped
// under the family the page's most recent # TYPE line declared — the
// convention every exposition-format writer follows (and the only way
// _bucket/_sum/_count samples can be attributed to their histogram).
func (a *MetricsAgg) Add(node Node, text []byte) {
	inject := fmt.Sprintf(`instance=%q,role=%q`, node.Name, node.Role)
	var cur *famAgg
	for _, raw := range strings.Split(string(text), "\n") {
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			switch fields[1] {
			case "TYPE":
				cur = a.family(fields[2])
				if cur.typ == "" && len(fields) >= 4 {
					cur.typ = fields[3]
				}
			case "HELP":
				f := a.family(fields[2])
				if f.help == "" && len(fields) >= 4 {
					f.help = fields[3]
				}
			}
			continue
		}
		// A sample belongs to the family the last # TYPE line declared
		// (histogram children share its name prefix); anything else — a
		// sample with no header — starts a fresh untyped family.
		if cur == nil || !sampleOf(line, cur.name()) {
			cur = a.family(metricName(line))
		}
		cur.samples = append(cur.samples, relabel(line, inject))
	}
}

// family returns (creating on first use) the aggregate for name.
func (a *MetricsAgg) family(name string) *famAgg {
	if f, ok := a.fams[name]; ok {
		return f
	}
	f := &famAgg{fname: name}
	a.fams[name] = f
	a.order = append(a.order, name)
	return f
}

// metricName extracts the metric name from a sample line.
func metricName(line string) string {
	if i := strings.IndexAny(line, "{ "); i > 0 {
		return line[:i]
	}
	return line
}

// sampleOf reports whether line is a sample belonging to family fam —
// the name itself or a histogram/summary child (fam_bucket, fam_sum,
// fam_count).
func sampleOf(line, fam string) bool {
	name := metricName(line)
	if name == fam {
		return true
	}
	if rest, ok := strings.CutPrefix(name, fam+"_"); ok {
		return rest == "bucket" || rest == "sum" || rest == "count"
	}
	return false
}

// relabel splices the instance/role labels into one sample line:
// name{a="b"} v  →  name{instance="x",role="r",a="b"} v
// name v         →  name{instance="x",role="r"} v
func relabel(line, inject string) string {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return line
	}
	if line[i] == '{' {
		return line[:i+1] + inject + "," + line[i+1:]
	}
	return line[:i] + "{" + inject + "}" + line[i:]
}

// Scrape fetches every node's /metrics concurrently, then merges the
// pages in node order (deterministic output, concurrent I/O). Failed
// nodes are counted, named, and skipped — the page that comes back is
// the partial truth.
func (a *MetricsAgg) Scrape(ctx context.Context, client *http.Client, nodes []Node) {
	type page struct {
		body []byte
		err  error
	}
	pages := make([]page, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			code, body, err := fetch(ctx, client, n.Base+"/metrics")
			if err == nil && code != http.StatusOK {
				err = fmt.Errorf("status %d", code)
			}
			pages[i] = page{body: body, err: err}
		}(i, n)
	}
	wg.Wait()
	for i, p := range pages {
		if p.err != nil {
			a.Errors++
			a.FailedNodes = append(a.FailedNodes, nodes[i].Name)
			continue
		}
		a.Add(nodes[i], p.body)
	}
}

// WriteTo renders the merged page: one HELP/TYPE header per family,
// then every node's samples of it.
func (a *MetricsAgg) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	for _, name := range a.order {
		f := a.fams[name]
		if len(f.samples) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&buf, "# HELP %s %s\n", name, f.help)
		}
		typ := f.typ
		if typ == "" {
			typ = "untyped"
		}
		fmt.Fprintf(&buf, "# TYPE %s %s\n", name, typ)
		for _, s := range f.samples {
			buf.WriteString(s)
			buf.WriteByte('\n')
		}
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ---------------------------------------------------------------------------
// /fleet/events

// Event is one node's health event tagged with where it happened.
type Event struct {
	Instance string `json:"instance"`
	Role     string `json:"role"`
	health.Event
}

// eventsDoc mirrors the serving layer's GET /events body.
type eventsDoc struct {
	Events []health.Event `json:"events"`
}

// FetchEvents merges every node's health-event ring into one
// time-ordered (newest first) bounded log. Returns the merged events
// and how many nodes could not be fetched.
func FetchEvents(ctx context.Context, client *http.Client, nodes []Node, limit int) ([]Event, int) {
	if limit <= 0 {
		limit = 100
	}
	perNode := make([][]Event, len(nodes))
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := 0
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			code, body, err := fetch(ctx, client,
				fmt.Sprintf("%s/events?n=%d", n.Base, limit))
			if err == nil && code != http.StatusOK {
				err = fmt.Errorf("status %d", code)
			}
			var doc eventsDoc
			if err == nil {
				err = json.Unmarshal(body, &doc)
			}
			if err != nil {
				mu.Lock()
				errs++
				mu.Unlock()
				return
			}
			evs := make([]Event, len(doc.Events))
			for j, e := range doc.Events {
				evs[j] = Event{Instance: n.Name, Role: n.Role, Event: e}
			}
			perNode[i] = evs
		}(i, n)
	}
	wg.Wait()
	var merged []Event
	for _, evs := range perNode {
		merged = append(merged, evs...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		return merged[i].At.After(merged[j].At)
	})
	if len(merged) > limit {
		merged = merged[:limit]
	}
	return merged, errs
}

// Deadline derives a per-fan-out context: the fleet view must answer
// even when a node hangs, so every fetch shares one budget.
func Deadline(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		d = 2 * time.Second
	}
	return context.WithTimeout(parent, d)
}
