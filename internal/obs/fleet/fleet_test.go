package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qgraph/internal/obs/health"
)

func TestRelabel(t *testing.T) {
	inject := `instance="n1",role="replica"`
	cases := []struct{ in, want string }{
		{`m 1`, `m{instance="n1",role="replica"} 1`},
		{`m{a="b"} 2.5`, `m{instance="n1",role="replica",a="b"} 2.5`},
		{`m_bucket{le="+Inf"} 7`, `m_bucket{instance="n1",role="replica",le="+Inf"} 7`},
	}
	for _, c := range cases {
		if got := relabel(c.in, inject); got != c.want {
			t.Errorf("relabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMetricsAggMergesFamilies(t *testing.T) {
	// Two nodes reporting the same family must merge into ONE HELP/TYPE
	// group — the text format forbids a family appearing twice.
	page := "# HELP qgraph_x_total things\n# TYPE qgraph_x_total counter\nqgraph_x_total 3\n" +
		"# TYPE qgraph_h seconds\nqgraph_h_bucket{le=\"+Inf\"} 1\nqgraph_h_sum 0.5\nqgraph_h_count 1\n"
	a := NewMetricsAgg()
	a.Add(Node{Name: "n1", Role: "primary"}, []byte(page))
	a.Add(Node{Name: "n2", Role: "replica"}, []byte(page))
	var sb strings.Builder
	if _, err := a.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE qgraph_x_total counter"); n != 1 {
		t.Fatalf("family header appears %d times, want 1:\n%s", n, out)
	}
	for _, want := range []string{
		`qgraph_x_total{instance="n1",role="primary"} 3`,
		`qgraph_x_total{instance="n2",role="replica"} 3`,
		`qgraph_h_bucket{instance="n1",role="primary",le="+Inf"} 1`,
		`qgraph_h_count{instance="n2",role="replica"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged page missing %q:\n%s", want, out)
		}
	}
	// Histogram children stay inside their family's group: no TYPE line
	// may sit between qgraph_h's header and its _count samples.
	hIdx := strings.Index(out, "# TYPE qgraph_h ")
	countIdx := strings.LastIndex(out, "qgraph_h_count")
	if hIdx < 0 || countIdx < hIdx {
		t.Fatalf("histogram family split:\n%s", out)
	}
	if mid := out[hIdx+1 : countIdx]; strings.Contains(mid, "# TYPE") {
		t.Fatalf("foreign TYPE header inside histogram group:\n%s", out)
	}
}

func TestScrapePartialOnNodeDown(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("# TYPE qgraph_up gauge\nqgraph_up 1\n"))
	}))
	defer up.Close()
	down := httptest.NewServer(http.HandlerFunc(nil))
	down.Close() // immediately: connection refused

	a := NewMetricsAgg()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	a.Scrape(ctx, up.Client(), []Node{
		{Name: "good", Role: "primary", Base: up.URL},
		{Name: "bad", Role: "replica", Base: down.URL},
	})
	if a.Errors != 1 || len(a.FailedNodes) != 1 || a.FailedNodes[0] != "bad" {
		t.Fatalf("errors=%d failed=%v, want 1/[bad]", a.Errors, a.FailedNodes)
	}
	var sb strings.Builder
	_, _ = a.WriteTo(&sb)
	if !strings.Contains(sb.String(), `qgraph_up{instance="good",role="primary"} 1`) {
		t.Fatalf("surviving node's series missing:\n%s", sb.String())
	}
}

func TestFetchStatus(t *testing.T) {
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok","graph_version":9,"role":"replica",` +
			`"applied_version":7,"wal_head":9,"staleness_versions":2,"rebootstraps":1}`))
	}))
	defer replica.Close()
	degraded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"status":"degraded","graph_version":9}`))
	}))
	defer degraded.Close()
	down := httptest.NewServer(http.HandlerFunc(nil))
	down.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	rows := FetchStatus(ctx, replica.Client(), []Node{
		{Name: "r1", Role: "replica", Base: replica.URL},
		{Name: "p", Role: "primary", Base: degraded.URL},
		{Name: "gone", Role: "replica", Base: down.URL},
	})
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if r := rows[0]; !r.Reachable || r.Status != "ok" || r.LagVersions != 2 ||
		r.AppliedVersion != 7 || r.WALHead != 9 || r.Rebootstraps != 1 {
		t.Fatalf("replica row wrong: %+v", r)
	}
	// A 503 still yields the node's own status (degraded), with the
	// primary's committed version filling applied_version.
	if r := rows[1]; !r.Reachable || r.HTTPStatus != 503 || r.Status != "degraded" || r.AppliedVersion != 9 {
		t.Fatalf("degraded row wrong: %+v", r)
	}
	if r := rows[2]; r.Reachable || r.Error == "" {
		t.Fatalf("down row wrong: %+v", r)
	}
}

func TestFetchEventsMergedAndBounded(t *testing.T) {
	mk := func(events string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte(`{"events":[` + events + `]}`))
		}))
	}
	// Node A's event is newer than node B's: the merge must interleave
	// by time, newest first.
	a := mk(`{"seq":1,"at":"2026-08-08T10:00:02Z","type":"event_a","severity":"info","msg":"newer"}`)
	defer a.Close()
	b := mk(`{"seq":5,"at":"2026-08-08T10:00:01Z","type":"event_b","severity":"warn","msg":"older"},` +
		`{"seq":4,"at":"2026-08-08T10:00:00Z","type":"event_b","severity":"info","msg":"oldest"}`)
	defer b.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	evs, errs := FetchEvents(ctx, a.Client(), []Node{
		{Name: "a", Role: "primary", Base: a.URL},
		{Name: "b", Role: "replica", Base: b.URL},
	}, 2)
	if errs != 0 {
		t.Fatalf("errs = %d, want 0", errs)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (bounded)", len(evs))
	}
	if evs[0].Instance != "a" || evs[0].Msg != "newer" {
		t.Fatalf("merge order wrong: first = %+v", evs[0])
	}
	if evs[1].Instance != "b" || evs[1].Msg != "older" {
		t.Fatalf("merge order wrong: second = %+v", evs[1])
	}
	if evs[1].Severity != health.SevWarn {
		t.Fatalf("embedded event lost fields: %+v", evs[1])
	}
}
