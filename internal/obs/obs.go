package obs

import (
	"io"
	"log/slog"
	"strings"
)

// Obs bundles the three observability facilities a process threads
// through its layers. A nil *Obs disables everything at the cost of a
// nil check per call site.
type Obs struct {
	Tracer  *Tracer
	Metrics *Registry
	Logger  *slog.Logger
}

// New builds a fully-armed Obs with a default-capacity trace ring, an
// empty registry, and the given logger (nil selects a discard logger).
func New(logger *slog.Logger) *Obs {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Obs{Tracer: NewTracer(0), Metrics: NewRegistry(), Logger: logger}
}

// T returns the tracer (nil-safe).
func (o *Obs) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// M returns the metric registry (nil-safe).
func (o *Obs) M() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Log returns the logger; never nil, so call sites log unconditionally.
func (o *Obs) Log() *slog.Logger {
	if o == nil || o.Logger == nil {
		return slog.New(slog.DiscardHandler)
	}
	return o.Logger
}

// ParseLevel maps a -log-level flag value to a slog.Level (unknown
// values select info).
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// NewLogger builds a structured logger writing to w at the given level,
// in logfmt-style text or JSON. role is attached to every record so
// multi-role deployments (controller + workers on one box) stay
// greppable.
func NewLogger(w io.Writer, level string, json bool, role string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: ParseLevel(level)}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	if role != "" {
		l = l.With("role", role)
	}
	return l
}
