package experiments

import (
	"fmt"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/gen"
	"qgraph/internal/metrics"
	"qgraph/internal/qcut"
	"qgraph/internal/query"
)

// Fig6a reproduces Figure 6a: summed latency of the SSSP workload on BW
// per partitioning strategy (paper: Q-cut −43% vs Hash, −22% vs Domain).
func Fig6a(sc Scale) (*Table, error) {
	net, err := bwNet(sc)
	if err != nil {
		return nil, err
	}
	return totalLatency(sc, net, "fig6a", "Summed query latency, SSSP on BW",
		ssspSpecs(net, sc.Queries, sc.Seed),
		"paper: -43% vs hash, -22% vs domain")
}

// Fig6b is Figure 6b: the same on GY (paper: −13% vs Hash, −25% vs
// Domain — balancing dominates on the bigger skewed graph).
func Fig6b(sc Scale) (*Table, error) {
	net, err := gyNet(sc)
	if err != nil {
		return nil, err
	}
	return totalLatency(sc, net, "fig6b", "Summed query latency, SSSP on GY",
		ssspSpecs(net, sc.Queries, sc.Seed),
		"paper: -13% vs hash, -25% vs domain")
}

// Fig6c is Figure 6c: summed latency of the POI workload on BW (paper:
// −50% vs Hash, −28% vs Domain).
func Fig6c(sc Scale) (*Table, error) {
	net, err := bwNet(sc)
	if err != nil {
		return nil, err
	}
	return totalLatency(sc, net, "fig6c", "Summed query latency, POI on BW",
		poiSpecs(net, sc.Queries, sc.Seed),
		"paper: -50% vs hash, -28% vs domain")
}

func totalLatency(sc Scale, net *gen.RoadNet, id, title string, specs []query.Spec, paperNote string) (*Table, error) {
	t := &Table{
		ID: id, Title: title,
		Columns: []string{"strategy", "total_s", "mean_ms", "locality", "vs_hash", "vs_domain"},
	}
	totals := map[string]time.Duration{}
	type row struct {
		name string
		sum  metrics.Summary
	}
	var rows []row
	for _, st := range strategies(net) {
		rec, _, err := runStrategy(sc, net, st, sc.Workers, specs)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", id, st.Name, err)
		}
		s := rec.Summarize()
		totals[st.Name] = s.TotalLatency
		rows = append(rows, row{name: st.Name, sum: s})
	}
	for _, r := range rows {
		vsHash := float64(r.sum.TotalLatency-totals["hash"]) / float64(totals["hash"])
		vsDomain := float64(r.sum.TotalLatency-totals["domain"]) / float64(totals["domain"])
		t.Rows = append(t.Rows, []string{
			r.name,
			fmtDur(r.sum.TotalLatency),
			fmt.Sprintf("%.2f", float64(r.sum.MeanLatency.Microseconds())/1000),
			fmt.Sprintf("%.2f", r.sum.MeanLocality),
			fmtPct(vsHash),
			fmtPct(vsDomain),
		})
	}
	t.Notes = append(t.Notes, paperNote)
	return t, nil
}

// Fig6d reproduces Figure 6d: the hybrid barrier against traditional
// BSP-style global barriers, for Hash and Domain partitioning (paper:
// better partitioning gives 1.7–2.4×; the hybrid barrier a further
// 1.2–1.7× on both).
func Fig6d(sc Scale) (*Table, error) {
	net, err := bwNet(sc)
	if err != nil {
		return nil, err
	}
	specs := ssspSpecs(net, sc.BarrierQueries, sc.Seed)
	t := &Table{
		ID: "fig6d", Title: "Hybrid barrier vs global BSP barrier, SSSP on BW",
		Columns: []string{"partitioning", "barrier", "total_s", "speedup_vs_global"},
	}
	dom := domainPartitioner(net)
	for _, part := range []Strategy{
		{Name: "hash", Partitioner: (strategies(net))[0].Partitioner},
		{Name: "domain", Partitioner: dom},
	} {
		var globalTotal time.Duration
		for _, mode := range []controller.SyncMode{controller.SyncGlobal, controller.SyncHybrid} {
			st := Strategy{Name: part.Name, Partitioner: part.Partitioner, Adapt: false, Mode: mode}
			rec, _, err := runStrategy(sc, net, st, sc.Workers, specs)
			if err != nil {
				return nil, fmt.Errorf("fig6d %s/%s: %w", part.Name, mode, err)
			}
			total := rec.Summarize().TotalLatency
			speedup := "-"
			if mode == controller.SyncGlobal {
				globalTotal = total
			} else if total > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(globalTotal)/float64(total))
			}
			t.Rows = append(t.Rows, []string{part.Name, mode.String(), fmtDur(total), speedup})
		}
	}
	t.Notes = append(t.Notes, "paper: hybrid barrier 1.2-1.7x on both partitionings; domain vs hash 1.7-2.4x")
	return t, nil
}

// Fig6e reproduces Figure 6e: workload imbalance over time per strategy
// (paper: Domain high, Hash near zero, Q-cut converges to ≈20% under
// δ=0.25).
func Fig6e(sc Scale) (*Table, error) {
	net, err := bwNet(sc)
	if err != nil {
		return nil, err
	}
	specs := ssspSpecs(net, sc.Queries, sc.Seed)
	t := &Table{
		ID: "fig6e", Title: "Workload imbalance over time, SSSP on BW",
		Columns: []string{"strategy", "mean_imbalance", "first_half", "second_half"},
	}
	for _, st := range strategies(net) {
		rec, _, err := runStrategy(sc, net, st, sc.Workers, specs)
		if err != nil {
			return nil, fmt.Errorf("fig6e %s: %w", st.Name, err)
		}
		// Bin adaptively so the series spans the actual run duration.
		var wall time.Duration
		for _, q := range rec.Queries() {
			if end := q.ScheduledAt.Add(q.Latency).Sub(rec.Start()); end > wall {
				wall = end
			}
		}
		bin := max(wall/10, 100*time.Millisecond)
		series := rec.ImbalanceSeries(bin, sc.Workers)
		mean, first, second := splitSeries(series)
		t.Rows = append(t.Rows, []string{
			st.Name,
			fmt.Sprintf("%.2f", mean),
			fmt.Sprintf("%.2f", first),
			fmt.Sprintf("%.2f", second),
		})
	}
	t.Notes = append(t.Notes,
		"imbalance = mean relative deviation of per-worker active-vertex load from the all-worker mean",
		"paper: domain high, hash ~0, q-cut converges to ~0.20 (delta=0.25)")
	return t, nil
}

// Fig6f reproduces Figure 6f: percentage of fully-local query executions
// per strategy (paper: Domain >95%, Hash ≈38%, Q-cut converges to ≈80%).
func Fig6f(sc Scale) (*Table, error) {
	net, err := bwNet(sc)
	if err != nil {
		return nil, err
	}
	specs := ssspSpecs(net, sc.Queries, sc.Seed)
	t := &Table{
		ID: "fig6f", Title: "Query locality over time, SSSP on BW",
		Columns: []string{"strategy", "mean_locality", "first_quarter", "last_quarter"},
	}
	for _, st := range strategies(net) {
		rec, _, err := runStrategy(sc, net, st, sc.Workers, specs)
		if err != nil {
			return nil, fmt.Errorf("fig6f %s: %w", st.Name, err)
		}
		qs := rec.Queries()
		quarter := len(qs) / 4
		t.Rows = append(t.Rows, []string{
			st.Name,
			fmt.Sprintf("%.2f", meanLocality(qs)),
			fmt.Sprintf("%.2f", meanLocality(qs[:quarter])),
			fmt.Sprintf("%.2f", meanLocality(qs[len(qs)-quarter:])),
		})
	}
	t.Notes = append(t.Notes, "paper: domain >0.95, hash ~0.38, q-cut converges toward ~0.80 under the balance constraint")
	return t, nil
}

func meanLocality(qs []metrics.QueryRecord) float64 {
	if len(qs) == 0 {
		return 0
	}
	sum := 0.0
	for _, q := range qs {
		sum += q.Locality()
	}
	return sum / float64(len(qs))
}

func splitSeries(series []metrics.SeriesPoint) (mean, first, second float64) {
	if len(series) == 0 {
		return 0, 0, 0
	}
	half := len(series) / 2
	var n1, n2 int
	for i, p := range series {
		mean += p.Value
		if i < half || half == 0 {
			first += p.Value
			n1++
		} else {
			second += p.Value
			n2++
		}
	}
	mean /= float64(len(series))
	if n1 > 0 {
		first /= float64(n1)
	}
	if n2 > 0 {
		second /= float64(n2)
	}
	return mean, first, second
}

// Fig6g reproduces Figure 6g: the cost trajectory of a single Q-cut
// iterated-local-search run on a Hash-partitioned snapshot, with the
// perturbation points that escape local minima (paper: cost drops >75%
// within the 2 s budget).
func Fig6g(sc Scale) (*Table, error) {
	in, err := hashSnapshot(sc)
	if err != nil {
		return nil, err
	}
	in.Deadline = time.Now().Add(sc.QcutBudget)
	res := qcut.Run(in)
	t := &Table{
		ID: "fig6g", Title: "Q-cut ILS cost over a single run (Hash-partitioned BW snapshot)",
		Columns: []string{"round", "elapsed_ms", "best_cost", "perturbed"},
	}
	// Thin the trace to at most ~25 rows.
	stride := max(1, len(res.Trace)/25)
	for i, p := range res.Trace {
		if i%stride != 0 && i != len(res.Trace)-1 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Round),
			fmt.Sprintf("%.1f", float64(p.Elapsed.Microseconds())/1000),
			fmt.Sprintf("%d", p.Cost),
			fmt.Sprintf("%v", p.Perturbed),
		})
	}
	drop := 0.0
	if res.InitialCost > 0 {
		drop = 1 - float64(res.FinalCost)/float64(res.InitialCost)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("initial cost %d, final cost %d (-%.0f%%), %d rounds", res.InitialCost, res.FinalCost, 100*drop, res.Rounds),
		"paper: cost reduced by more than 75% within the 2s budget")
	return t, nil
}

// hashSnapshot runs part of the SSSP workload on a static Hash-partitioned
// engine and captures the controller's high-level view — the same input
// the adaptive controller would hand to Q-cut.
func hashSnapshot(sc Scale) (qcut.Input, error) {
	net, err := bwNet(sc)
	if err != nil {
		return qcut.Input{}, err
	}
	rec := metrics.NewRecorder(time.Now())
	eng, err := startEngine(sc, net, Strategy{Name: "hash", Partitioner: (strategies(net))[0].Partitioner}, sc.Workers, rec)
	if err != nil {
		return qcut.Input{}, err
	}
	defer eng.Close()
	specs := ssspSpecs(net, max(sc.Queries/4, 32), sc.Seed)
	if _, err := eng.RunBatch(specs, sc.Parallel); err != nil {
		return qcut.Input{}, err
	}
	return eng.QcutSnapshot()
}
