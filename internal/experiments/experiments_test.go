package experiments

import (
	"qgraph/internal/metrics"

	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyScale is the smallest scale that still exercises every code path.
func tinyScale() Scale {
	s := QuickScale()
	s.BWScale, s.GYScale = 2048, 8192
	s.Queries, s.Disturb, s.BarrierQueries, s.ScaleQueries = 40, 8, 12, 16
	s.Latency.WorkerWorker = 50 * time.Microsecond
	s.Latency.WorkerController = 25 * time.Microsecond
	s.Cooldown = 100 * time.Millisecond
	s.CheckEvery = 20 * time.Millisecond
	s.QcutBudget = 50 * time.Millisecond
	return s
}

// TestEveryExperimentRuns smoke-runs every registered experiment at tiny
// scale and sanity-checks the emitted tables.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs skipped in -short")
	}
	sc := tinyScale()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := r(sc)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if tab.ID != id {
				t.Errorf("table id %q, want %q", tab.ID, id)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s: row %v has %d cells, want %d", id, row, len(row), len(tab.Columns))
				}
			}
			out := tab.String()
			if !strings.Contains(out, tab.Title) {
				t.Errorf("%s: rendered table lacks title", id)
			}
			t.Logf("\n%s", out)
		})
	}
}

// TestLookupUnknown checks error handling for bad ids.
func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

// TestScalesSane validates the preset scales.
func TestScalesSane(t *testing.T) {
	for name, sc := range map[string]Scale{
		"default": DefaultScale(), "quick": QuickScale(), "paper": PaperScale(),
	} {
		if sc.Queries <= 0 || sc.Workers <= 0 || sc.Parallel <= 0 {
			t.Errorf("%s scale has zero fields: %+v", name, sc)
		}
		if sc.BWScale <= 0 || sc.GYScale <= 0 {
			t.Errorf("%s scale has zero graph scales", name)
		}
	}
}

// TestBinByCompletion checks the decile binning helper.
func TestBinByCompletion(t *testing.T) {
	rec := newTestRecorder(t, 20)
	bins := binByCompletion(rec, 10)
	if len(bins) != 10 {
		t.Fatalf("got %d bins", len(bins))
	}
	for i, v := range bins {
		// Queries i*2 and i*2+1 land in bin i with latencies i*2 and
		// i*2+1 seconds → mean = i*2 + 0.5.
		want := float64(i*2) + 0.5
		if v != want {
			t.Errorf("bin %d = %v, want %v", i, v, strconv.FormatFloat(want, 'f', -1, 64))
		}
	}
}

// newTestRecorder builds a recorder with n queries of known latencies
// (query i: latency i seconds).
func newTestRecorder(t *testing.T, n int) *metrics.Recorder {
	t.Helper()
	t0 := time.Now()
	rec := metrics.NewRecorder(t0)
	for i := 0; i < n; i++ {
		rec.RecordQuery(metrics.QueryRecord{
			ID:          int64(i),
			ScheduledAt: t0,
			Latency:     time.Duration(i) * time.Second,
			Supersteps:  1,
		})
	}
	return rec
}
