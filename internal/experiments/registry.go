package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one experiment at a scale.
type Runner func(Scale) (*Table, error)

// registry maps experiment ids (DESIGN.md §4/§5) to their runners.
var registry = map[string]Runner{
	"fig5a":           Fig5a,
	"fig5b":           Fig5b,
	"fig6a":           Fig6a,
	"fig6b":           Fig6b,
	"fig6c":           Fig6c,
	"fig6d":           Fig6d,
	"fig6e":           Fig6e,
	"fig6f":           Fig6f,
	"fig6g":           Fig6g,
	"fig7a":           Fig7a,
	"fig7b":           Fig7b,
	"abl-perturb":     AblationPerturbation,
	"abl-cluster":     AblationClustering,
	"abl-local":       AblationLocalBarrier,
	"abl-window":      AblationWindow,
	"abl-phi":         AblationPhi,
	"abl-batch":       AblationBatchSize,
	"abl-replication": AblationReplication,
}

// IDs returns all experiment ids in stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the runner for an experiment id.
func Lookup(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return r, nil
}
