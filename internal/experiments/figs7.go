package experiments

import (
	"fmt"

	"qgraph/internal/gen"
	"qgraph/internal/query"
)

// Fig7a reproduces Figure 7a: scalability of total SSSP query latency on
// BW over k ∈ {2,4,8,16} workers for the four strategies. The paper's
// shape: Hash improves to k=8 then degrades (communication overhead);
// Hash+Qcut keeps improving; Domain scales but suffers stragglers at
// small k; Domain+Qcut is best overall.
func Fig7a(sc Scale) (*Table, error) {
	net, err := bwNet(sc)
	if err != nil {
		return nil, err
	}
	return fig7(sc, net, "fig7a", "Scalability, SSSP on BW",
		ssspSpecs(net, sc.ScaleQueries, sc.Seed))
}

// Fig7b is Figure 7b: the same scalability experiment for POI queries
// ("similar results were obtained for POI").
func Fig7b(sc Scale) (*Table, error) {
	net, err := bwNet(sc)
	if err != nil {
		return nil, err
	}
	return fig7(sc, net, "fig7b", "Scalability, POI on BW",
		poiSpecs(net, sc.ScaleQueries, sc.Seed))
}

func fig7(sc Scale, net *gen.RoadNet, id, title string, specs []query.Spec) (*Table, error) {
	workers := []int{2, 4, 8, 16}
	t := &Table{
		ID: id, Title: title,
		Columns: []string{"k", "hash", "hash+qcut", "domain", "domain+qcut"},
	}
	for _, k := range workers {
		row := []string{fmt.Sprintf("%d", k)}
		for _, st := range strategies(net) {
			rec, _, err := runStrategy(sc, net, st, k, specs)
			if err != nil {
				return nil, fmt.Errorf("%s %s k=%d: %w", id, st.Name, k, err)
			}
			row = append(row, fmtDur(rec.Summarize().TotalLatency))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"total latency in seconds over the whole workload",
		"paper shape: hash degrades past k=8; +qcut variants keep improving; domain suffers stragglers at small k")
	return t, nil
}
