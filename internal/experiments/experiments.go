// Package experiments regenerates every figure of the paper's evaluation
// (Sec. 4). Each Fig* function runs the corresponding experiment at a
// configurable scale and returns a Table with the same series the paper
// plots; cmd/qgraph-bench prints them and bench_test.go wraps them as
// testing.B benchmarks.
//
// Scale note (DESIGN.md §3/§4): the defaults use scaled-down synthetic
// road networks and query counts so a figure regenerates in seconds to
// minutes on one machine. Absolute numbers differ from the paper — the
// claims under test are the *shapes*: who wins, by roughly what factor,
// and where crossovers fall.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/core"
	"qgraph/internal/gen"
	"qgraph/internal/graph"
	"qgraph/internal/metrics"
	"qgraph/internal/partition"
	"qgraph/internal/query"
	"qgraph/internal/transport"
	"qgraph/internal/workload"
)

// Scale controls experiment sizes. The zero value is unusable; start from
// DefaultScale (laptop, seconds per figure) or PaperScale.
type Scale struct {
	// BWScale / GYScale divide the paper's vertex counts (1.8M / 11.8M).
	BWScale, GYScale int
	// Queries is the main workload size (paper: 2048); Disturb the
	// disturbance phase (paper: 496); BarrierQueries Fig. 6d's (paper:
	// 64); ScaleQueries Fig. 7's (paper: 1024).
	Queries, Disturb, BarrierQueries, ScaleQueries int
	// Parallel is the number of in-flight queries (paper: 16).
	Parallel int
	// Workers is k for the non-scalability figures (paper: 8).
	Workers int
	// Adaptivity parameters, scaled to the compressed experiment
	// duration; paper values are Mu=240s, Phi=0.7, QcutBudget=2s.
	Mu         time.Duration
	Phi        float64
	QcutBudget time.Duration
	Cooldown   time.Duration
	CheckEvery time.Duration
	// ComputeCost models per-vertex application work (straggler realism).
	ComputeCost time.Duration
	// Latency is the simulated network.
	Latency transport.Latency
	Seed    uint64
}

// DefaultScale regenerates every figure on one machine in minutes.
func DefaultScale() Scale {
	return Scale{
		BWScale: 64, GYScale: 196,
		Queries: 256, Disturb: 128, BarrierQueries: 48, ScaleQueries: 128,
		Parallel: 16,
		Workers:  8,
		Mu:       45 * time.Second, Phi: 0.7,
		QcutBudget:  300 * time.Millisecond,
		Cooldown:    400 * time.Millisecond,
		CheckEvery:  100 * time.Millisecond,
		ComputeCost: 4 * time.Microsecond,
		Latency:     transport.DefaultLatency(),
		Seed:        1,
	}
}

// QuickScale is a fast smoke scale for tests.
func QuickScale() Scale {
	s := DefaultScale()
	s.BWScale, s.GYScale = 512, 1600
	s.Queries, s.Disturb, s.BarrierQueries, s.ScaleQueries = 64, 16, 16, 32
	s.Mu = 20 * time.Second
	s.QcutBudget = 100 * time.Millisecond
	s.Cooldown = 300 * time.Millisecond
	s.CheckEvery = 50 * time.Millisecond
	return s
}

// PaperScale reproduces the paper's full sizes. Runs take hours.
func PaperScale() Scale {
	return Scale{
		BWScale: 1, GYScale: 1,
		Queries: 2048, Disturb: 496, BarrierQueries: 64, ScaleQueries: 1024,
		Parallel: 16,
		Workers:  8,
		Mu:       240 * time.Second, Phi: 0.7,
		QcutBudget:  2 * time.Second,
		Cooldown:    5 * time.Second,
		CheckEvery:  250 * time.Millisecond,
		ComputeCost: 4 * time.Microsecond,
		Latency:     transport.DefaultLatency(),
		Seed:        1,
	}
}

// Table is one regenerated figure: the series the paper plots, as rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// Strategy is one plotted configuration: an initial partitioner plus
// whether adaptive Q-cut runs on top (the paper's Hash, Hash+Qcut, Domain,
// Domain+Qcut).
type Strategy struct {
	Name        string
	Partitioner partition.Partitioner
	Adapt       bool
	Mode        controller.SyncMode
}

// strategies returns the four standard configurations for a road network.
func strategies(net *gen.RoadNet) []Strategy {
	dom := domainPartitioner(net)
	return []Strategy{
		{Name: "hash", Partitioner: partition.Hash{}, Adapt: false},
		{Name: "hash+qcut", Partitioner: partition.Hash{}, Adapt: true},
		{Name: "domain", Partitioner: dom, Adapt: false},
		{Name: "domain+qcut", Partitioner: dom, Adapt: true},
	}
}

func domainPartitioner(net *gen.RoadNet) *partition.Domain {
	centers := make([]graph.Coord, len(net.Cities))
	weights := make([]float64, len(net.Cities))
	for i, c := range net.Cities {
		centers[i] = c.Center
		weights[i] = c.Pop
	}
	return partition.NewDomain(centers, weights)
}

// startEngine launches an engine for one strategy at the given scale.
func startEngine(sc Scale, net *gen.RoadNet, st Strategy, k int, rec *metrics.Recorder) (*core.Engine, error) {
	return core.Start(core.Config{
		Workers:     k,
		Graph:       net.G,
		Partitioner: st.Partitioner,
		Latency:     sc.Latency,
		Mode:        st.Mode,
		Adapt:       st.Adapt,
		Phi:         sc.Phi,
		Mu:          sc.Mu,
		QcutBudget:  sc.QcutBudget,
		Cooldown:    sc.Cooldown,
		CheckEvery:  sc.CheckEvery,
		ComputeCost: sc.ComputeCost,
		Recorder:    rec,
		Seed:        sc.Seed,
	})
}

// runStrategy executes specs under one strategy and returns the recorder
// plus the repartition count.
func runStrategy(sc Scale, net *gen.RoadNet, st Strategy, k int, specs []query.Spec) (*metrics.Recorder, int, error) {
	rec := metrics.NewRecorder(time.Now())
	eng, err := startEngine(sc, net, st, k, rec)
	if err != nil {
		return nil, 0, err
	}
	if _, err := eng.RunBatch(specs, sc.Parallel); err != nil {
		eng.Close()
		return nil, 0, err
	}
	if err := eng.Close(); err != nil {
		return nil, 0, err
	}
	return rec, eng.Repartitions(), nil
}

// bwNet / gyNet build the two evaluation road networks at scale.
func bwNet(sc Scale) (*gen.RoadNet, error) { return gen.Road(gen.BWConfig(sc.BWScale)) }
func gyNet(sc Scale) (*gen.RoadNet, error) { return gen.Road(gen.GYConfig(sc.GYScale)) }

// ssspSpecs / poiSpecs generate hotspot workloads.
func ssspSpecs(net *gen.RoadNet, n int, seed uint64) []query.Spec {
	g := workload.NewRoadGen(net, seed)
	return workload.Batch(n, g.SSSP)
}

func poiSpecs(net *gen.RoadNet, n int, seed uint64) []query.Spec {
	g := workload.NewRoadGen(net, seed)
	return workload.Batch(n, g.POI)
}

// fmtDur renders a duration in seconds with 3 decimals.
func fmtDur(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// fmtPct renders a ratio as a signed percentage.
func fmtPct(x float64) string { return fmt.Sprintf("%+.1f%%", 100*x) }
