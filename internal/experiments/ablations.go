package experiments

import (
	"fmt"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/core"
	"qgraph/internal/gen"
	"qgraph/internal/metrics"
	"qgraph/internal/qcut"
)

// The ablation experiments isolate the design decisions DESIGN.md §5 calls
// out. They are not figures of the paper, but each corresponds to a choice
// the paper motivates in prose (Appendix A, Sec. 3.3–3.4, Sec. 4.1(iv)).

// AblationPerturbation compares ILS with and without the perturbation
// subroutine on the same snapshot (Appendix A.2: perturbation escapes
// local minima).
func AblationPerturbation(sc Scale) (*Table, error) {
	in, err := hashSnapshot(sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "abl-perturb", Title: "Q-cut ILS with/without perturbation",
		Columns: []string{"variant", "initial_cost", "final_cost", "reduction", "rounds"},
	}
	for _, noPerturb := range []bool{false, true} {
		v := in
		v.NoPerturbation = noPerturb
		v.Deadline = time.Now().Add(sc.QcutBudget)
		res := qcut.Run(v)
		name := "with-perturbation"
		if noPerturb {
			name = "local-search-only"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", res.InitialCost),
			fmt.Sprintf("%d", res.FinalCost),
			fmtPct(-reduction(res)),
			fmt.Sprintf("%d", res.Rounds),
		})
	}
	return t, nil
}

// AblationClustering compares Q-cut with and without the Karger query
// clustering (Appendix A.1: clustering keeps the successor neighborhood
// small).
func AblationClustering(sc Scale) (*Table, error) {
	in, err := hashSnapshot(sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "abl-cluster", Title: "Q-cut with/without Karger query clustering",
		Columns: []string{"variant", "final_cost", "reduction", "rounds", "elapsed_ms"},
	}
	for _, noCluster := range []bool{false, true} {
		v := in
		v.NoClustering = noCluster
		v.Deadline = time.Now().Add(sc.QcutBudget)
		start := time.Now()
		res := qcut.Run(v)
		name := "clustered"
		if noCluster {
			name = "per-query"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", res.FinalCost),
			fmtPct(-reduction(res)),
			fmt.Sprintf("%d", res.Rounds),
			fmt.Sprintf("%.1f", float64(time.Since(start).Microseconds())/1000),
		})
	}
	return t, nil
}

func reduction(res qcut.Result) float64 {
	if res.InitialCost == 0 {
		return 0
	}
	return 1 - float64(res.FinalCost)/float64(res.InitialCost)
}

// AblationLocalBarrier isolates the local query barrier: hybrid (limited +
// local) vs limited-only vs global, on Domain partitioning where most
// queries are single-worker and the local barrier pays off most.
func AblationLocalBarrier(sc Scale) (*Table, error) {
	net, err := bwNet(sc)
	if err != nil {
		return nil, err
	}
	specs := ssspSpecs(net, sc.BarrierQueries, sc.Seed)
	dom := domainPartitioner(net)
	t := &Table{
		ID: "abl-local", Title: "Barrier modes on Domain partitioning",
		Columns: []string{"barrier", "total_s", "mean_ms"},
	}
	for _, mode := range []controller.SyncMode{controller.SyncGlobal, controller.SyncLimited, controller.SyncHybrid} {
		st := Strategy{Name: "domain", Partitioner: dom, Mode: mode}
		rec, _, err := runStrategy(sc, net, st, sc.Workers, specs)
		if err != nil {
			return nil, fmt.Errorf("abl-local %s: %w", mode, err)
		}
		s := rec.Summarize()
		t.Rows = append(t.Rows, []string{
			mode.String(), fmtDur(s.TotalLatency),
			fmt.Sprintf("%.2f", float64(s.MeanLatency.Microseconds())/1000),
		})
	}
	t.Notes = append(t.Notes, "hybrid = limited barriers + local (no-round-trip) barriers; limited = involved-workers-only")
	return t, nil
}

// AblationWindow sweeps the monitoring window μ (Sec. 3.4: larger windows
// mean more long-term partitioning decisions).
func AblationWindow(sc Scale) (*Table, error) {
	net, err := bwNet(sc)
	if err != nil {
		return nil, err
	}
	specs := ssspSpecs(net, sc.Queries, sc.Seed)
	t := &Table{
		ID: "abl-window", Title: "Monitoring window μ sweep (hash+qcut)",
		Columns: []string{"mu", "total_s", "locality", "repartitions"},
	}
	for _, mu := range []time.Duration{sc.Mu / 8, sc.Mu / 2, sc.Mu, sc.Mu * 4} {
		rec := metrics.NewRecorder(time.Now())
		eng, err := core.Start(engineCfg(sc, net, true, rec, func(c *core.Config) { c.Mu = mu }))
		if err != nil {
			return nil, err
		}
		if _, err := eng.RunBatch(specs, sc.Parallel); err != nil {
			eng.Close()
			return nil, err
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
		s := rec.Summarize()
		t.Rows = append(t.Rows, []string{
			mu.String(), fmtDur(s.TotalLatency),
			fmt.Sprintf("%.2f", s.MeanLocality),
			fmt.Sprintf("%d", eng.Repartitions()),
		})
	}
	return t, nil
}

// AblationPhi sweeps the locality threshold Φ (Sec. 4.1(ii): the paper
// recommends Φ ∈ [0.3, 0.99] and uses 0.7).
func AblationPhi(sc Scale) (*Table, error) {
	net, err := bwNet(sc)
	if err != nil {
		return nil, err
	}
	specs := ssspSpecs(net, sc.Queries, sc.Seed)
	t := &Table{
		ID: "abl-phi", Title: "Locality threshold Φ sweep (hash+qcut)",
		Columns: []string{"phi", "total_s", "locality", "repartitions"},
	}
	for _, phi := range []float64{0.3, 0.5, 0.7, 0.9, 0.99} {
		rec := metrics.NewRecorder(time.Now())
		eng, err := core.Start(engineCfg(sc, net, true, rec, func(c *core.Config) { c.Phi = phi }))
		if err != nil {
			return nil, err
		}
		if _, err := eng.RunBatch(specs, sc.Parallel); err != nil {
			eng.Close()
			return nil, err
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
		s := rec.Summarize()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", phi), fmtDur(s.TotalLatency),
			fmt.Sprintf("%.2f", s.MeanLocality),
			fmt.Sprintf("%d", eng.Repartitions()),
		})
	}
	return t, nil
}

// AblationBatchSize sweeps the vertex message batch limit
// (Sec. 4.1(iv): the paper settled on 32 messages / 32 KB).
func AblationBatchSize(sc Scale) (*Table, error) {
	net, err := bwNet(sc)
	if err != nil {
		return nil, err
	}
	specs := ssspSpecs(net, sc.Queries/2, sc.Seed)
	t := &Table{
		ID: "abl-batch", Title: "Vertex message batch size sweep (static hash)",
		Columns: []string{"batch_msgs", "total_s", "mean_ms"},
	}
	for _, batch := range []int{1, 8, 32, 128, 1024} {
		rec := metrics.NewRecorder(time.Now())
		eng, err := core.Start(engineCfg(sc, net, false, rec, func(c *core.Config) { c.BatchMaxMsgs = batch }))
		if err != nil {
			return nil, err
		}
		if _, err := eng.RunBatch(specs, sc.Parallel); err != nil {
			eng.Close()
			return nil, err
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
		s := rec.Summarize()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", batch), fmtDur(s.TotalLatency),
			fmt.Sprintf("%.2f", float64(s.MeanLatency.Microseconds())/1000),
		})
	}
	return t, nil
}

// AblationReplication evaluates the future-work (ii) extension: pinning
// each query to its source's worker (replication-style local execution)
// versus plain distributed execution, on static Hash partitioning.
func AblationReplication(sc Scale) (*Table, error) {
	net, err := bwNet(sc)
	if err != nil {
		return nil, err
	}
	specs := ssspSpecs(net, sc.Queries/2, sc.Seed)
	t := &Table{
		ID: "abl-replication", Title: "Query-based replication (pinning) vs distributed execution",
		Columns: []string{"variant", "total_s", "locality", "mean_workers"},
	}
	for _, replicate := range []bool{false, true} {
		rec := metrics.NewRecorder(time.Now())
		eng, err := core.Start(engineCfg(sc, net, false, rec, func(c *core.Config) { c.ReplicateQueries = replicate }))
		if err != nil {
			return nil, err
		}
		if _, err := eng.RunBatch(specs, sc.Parallel); err != nil {
			eng.Close()
			return nil, err
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
		s := rec.Summarize()
		name := "distributed"
		if replicate {
			name = "pinned (replication)"
		}
		t.Rows = append(t.Rows, []string{
			name, fmtDur(s.TotalLatency),
			fmt.Sprintf("%.2f", s.MeanLocality),
			fmt.Sprintf("%.2f", s.MeanWorkers),
		})
	}
	t.Notes = append(t.Notes, "pinning trades perfect query locality for load concentration (cf. [28,32] and NScale)")
	return t, nil
}

// engineCfg builds the standard experiment engine config with a mutator.
func engineCfg(sc Scale, net *gen.RoadNet, adapt bool, rec *metrics.Recorder, mut func(*core.Config)) core.Config {
	cfg := core.Config{
		Workers:     sc.Workers,
		Graph:       net.G,
		Partitioner: (strategies(net))[0].Partitioner, // hash
		Latency:     sc.Latency,
		Adapt:       adapt,
		Phi:         sc.Phi,
		Mu:          sc.Mu,
		QcutBudget:  sc.QcutBudget,
		Cooldown:    sc.Cooldown,
		CheckEvery:  sc.CheckEvery,
		ComputeCost: sc.ComputeCost,
		Recorder:    rec,
		Seed:        sc.Seed,
	}
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}
