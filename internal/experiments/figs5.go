package experiments

import (
	"fmt"

	"qgraph/internal/gen"
	"qgraph/internal/metrics"
	"qgraph/internal/query"
	"qgraph/internal/workload"
)

// Fig5a reproduces Figure 5a: adaptive query-aware partitioning reduces
// SSSP query latency over time on the BW graph, including the disturbance
// phase where the workload abruptly changes from intra-urban to
// inter-urban queries. Values are mean latency per workload decile,
// normalized to static Hash in the same decile (the paper's
// normalization).
func Fig5a(sc Scale) (*Table, error) {
	net, err := bwNet(sc)
	if err != nil {
		return nil, err
	}
	return fig5(sc, net, "fig5a", "SSSP on BW: normalized latency over time with disturbance")
}

// Fig5b is Figure 5b: the same experiment on the GY graph, where workload
// balancing matters more (hotspot populations are more skewed across 64
// cities).
func Fig5b(sc Scale) (*Table, error) {
	net, err := gyNet(sc)
	if err != nil {
		return nil, err
	}
	return fig5(sc, net, "fig5b", "SSSP on GY: normalized latency over time with disturbance")
}

func fig5(sc Scale, net *gen.RoadNet, id, title string) (*Table, error) {
	// Workload: Queries intra-urban SSSP followed by Disturb inter-urban
	// queries between neighboring cities (Sec. 4.2).
	mkSpecs := func(seed uint64) []query.Spec {
		g := workload.NewRoadGen(net, seed)
		specs := workload.Batch(sc.Queries, g.SSSP)
		specs = append(specs, workload.Batch(sc.Disturb, g.InterUrban)...)
		return specs
	}

	const bins = 10
	sts := strategies(net)
	series := make(map[string][]float64, len(sts))
	var reparts []int
	for _, st := range sts {
		rec, rp, err := runStrategy(sc, net, st, sc.Workers, mkSpecs(sc.Seed))
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", id, st.Name, err)
		}
		series[st.Name] = binByCompletion(rec, bins)
		reparts = append(reparts, rp)
	}

	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"decile", "phase", "hash", "hash+qcut", "domain", "domain+qcut"},
	}
	disturbBin := bins * sc.Queries / (sc.Queries + sc.Disturb)
	for b := 0; b < bins; b++ {
		phase := "intra"
		if b >= disturbBin {
			phase = "disturb"
		}
		base := series["hash"][b]
		row := []string{fmt.Sprintf("%d", b+1), phase}
		for _, st := range sts {
			v := series[st.Name][b]
			if base > 0 {
				row = append(row, fmt.Sprintf("%.2f", v/base))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"values are mean query latency per workload decile, normalized to static hash (hash = 1.00)",
		fmt.Sprintf("repartitions: hash+qcut=%d domain+qcut=%d", reparts[1], reparts[3]),
		fmt.Sprintf("paper: Q-cut up to -49%% vs Hash and -40%% vs Domain on BW; -45%%/-30%% on GY"),
	)
	return t, nil
}

// binByCompletion averages query latency (seconds) over n equal bins of
// the completion sequence. Binning by sequence rather than wall time keeps
// strategies with different total runtimes comparable bin-by-bin.
func binByCompletion(rec *metrics.Recorder, n int) []float64 {
	qs := rec.Queries()
	out := make([]float64, n)
	if len(qs) == 0 {
		return out
	}
	counts := make([]int, n)
	for i, q := range qs {
		b := i * n / len(qs)
		out[b] += q.Latency.Seconds()
		counts[b]++
	}
	for b := range out {
		if counts[b] > 0 {
			out[b] /= float64(counts[b])
		}
	}
	return out
}
