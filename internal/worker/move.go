package worker

import (
	"fmt"
	"time"

	"qgraph/internal/graph"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
)

// This file implements the worker side of the controller's move requests
// (Sec. 3.2.1 step 3, "Execute"): relocating a local query scope — the
// vertices a query touched here — to another worker, together with every
// query's private data and pending messages for those vertices. Moves only
// happen inside a global barrier, when the vertex-message network is
// provably quiet (drained), so no in-flight message can target a vertex
// mid-move.

// scopeRecvTotals tracking lives on the Worker struct fields below.

// onMoveScope executes move(LS(q,w), w, w'): collect the scope's vertices,
// strip their state out of every local query, ship it to the target, and
// report the moved vertex ids to the controller.
func (w *Worker) onMoveScope(m *protocol.MoveScope) error {
	if !w.stopping {
		return fmt.Errorf("move for query %d outside global barrier", m.Q)
	}
	if int(m.To) >= w.k || m.To == w.id {
		return fmt.Errorf("move for query %d to invalid worker %d", m.Q, m.To)
	}

	// The scope may be a live query's data, a finished query's remembered
	// vertex set, or both (nothing, if the scope decayed — then the move
	// is an empty no-op and the controller learns that from the ack).
	verts := make(map[graph.VertexID]bool)
	if qs, ok := w.queries[m.Q]; ok {
		for v := range qs.data {
			if !w.arrived[v] {
				verts[v] = true
			}
		}
	}
	if fs, ok := w.done[m.Q]; ok {
		for v := range fs.verts {
			if w.owner[v] == w.id && !w.arrived[v] {
				verts[v] = true
			}
		}
	}

	// Collect per-vertex migratable state. Loops iterate the smaller side
	// (moved set vs. scope) so a barrier costs O(total scope mass), not
	// O(moved vertices × resident queries).
	byV := make(map[graph.VertexID]*protocol.MovedVertex, len(verts))
	entry := func(v graph.VertexID) *protocol.MovedVertex {
		mv := byV[v]
		if mv == nil {
			mv = &protocol.MovedVertex{V: v}
			byV[v] = mv
		}
		return mv
	}
	stripSig := func(sig map[int32]int32, v graph.VertexID) {
		blk := int32(v) >> sigShift
		if sig[blk]--; sig[blk] <= 0 {
			delete(sig, blk)
		}
	}
	for q2, qs2 := range w.queries {
		if len(qs2.data) <= len(verts) {
			for v, val := range qs2.data {
				if verts[v] {
					entry(v).Values = append(entry(v).Values, protocol.QueryValue{Q: q2, Val: val})
					delete(qs2.data, v)
					stripSig(qs2.sig, v)
				}
			}
		} else {
			for v := range verts {
				if val, ok := qs2.data[v]; ok {
					entry(v).Values = append(entry(v).Values, protocol.QueryValue{Q: q2, Val: val})
					delete(qs2.data, v)
					stripSig(qs2.sig, v)
				}
			}
		}
		for step, box := range qs2.inbox {
			for v, val := range box {
				if verts[v] {
					entry(v).Pending = append(entry(v).Pending, protocol.PendingMsg{Q: q2, Step: step, Val: val})
					delete(box, v)
				}
			}
		}
	}
	for q2, fs2 := range w.done {
		if len(fs2.verts) <= len(verts) {
			for v := range fs2.verts {
				if verts[v] {
					entry(v).Finished = append(entry(v).Finished, q2)
					delete(fs2.verts, v)
					stripSig(fs2.sig, v)
				}
			}
		} else {
			for v := range verts {
				if fs2.verts[v] {
					entry(v).Finished = append(entry(v).Finished, q2)
					delete(fs2.verts, v)
					stripSig(fs2.sig, v)
				}
			}
		}
	}
	moved := make([]protocol.MovedVertex, 0, len(verts))
	ids := make([]graph.VertexID, 0, len(verts))
	for v := range verts {
		w.owner[v] = m.To
		ids = append(ids, v)
		if mv := byV[v]; mv != nil {
			moved = append(moved, *mv)
		} else {
			moved = append(moved, protocol.MovedVertex{V: v})
		}
	}

	if len(moved) > 0 {
		if err := w.conn.Send(protocol.WorkerNode(m.To), &protocol.ScopeData{
			Epoch: m.Epoch, Q: m.Q, From: w.id, Gen: w.gen, Vertices: moved,
		}); err != nil {
			return err
		}
		w.scopeSentTotals[m.To]++
	}
	return w.conn.Send(protocol.ControllerNode, &protocol.MoveAck{
		Epoch: m.Epoch, Q: m.Q, From: w.id, To: m.To, Vertices: ids,
	})
}

// onScopeData absorbs moved vertices: adopt ownership, merge live query
// values and pending messages, and remember finished-scope memberships.
func (w *Worker) onScopeData(m *protocol.ScopeData) error {
	if m.Gen != w.gen {
		// Scope data from an aborted pre-recovery barrier: the recovery
		// reset discarded the move's bookkeeping on every node, so the
		// transfer must neither merge nor count.
		return nil
	}
	if !w.stopping {
		return fmt.Errorf("scope data for query %d outside global barrier", m.Q)
	}
	w.scopeRecvTotals[m.From]++
	now := w.cfg.Clock()
	for _, mv := range m.Vertices {
		w.owner[mv.V] = w.id
		if w.arrived == nil {
			w.arrived = make(map[graph.VertexID]bool)
		}
		w.arrived[mv.V] = true
		for _, qv := range mv.Values {
			if qs, ok := w.queries[qv.Q]; ok {
				if _, had := qs.data[mv.V]; !had {
					qs.sig[int32(mv.V)>>sigShift]++
				}
				qs.data[mv.V] = qv.Val
			} else {
				// The query finished while the move was decided; keep the
				// vertex in its remembered scope so the hotspot stays
				// movable.
				w.rememberFinished(qv.Q, mv.V, now)
			}
		}
		for _, pm := range mv.Pending {
			if qs, ok := w.queries[pm.Q]; ok {
				w.combineIn(qs, pm.Step, mv.V, pm.Val)
			}
			// Pending messages of finished queries are obsolete: the
			// controller only finishes a query when its result is final.
		}
		for _, fq := range mv.Finished {
			w.rememberFinished(fq, mv.V, now)
		}
	}
	w.checkDrain()
	return nil
}

// rememberFinished records v as part of finished query q's scope.
func (w *Worker) rememberFinished(q query.ID, v graph.VertexID, now time.Time) {
	fs := w.done[q]
	if fs == nil {
		fs = &finishedScope{
			verts: make(map[graph.VertexID]bool),
			sig:   make(map[int32]int32),
			at:    now,
		}
		w.done[q] = fs
	}
	if !fs.verts[v] {
		fs.verts[v] = true
		fs.sig[int32(v)>>sigShift]++
	}
}
