package worker

import (
	"testing"
	"time"

	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
	"qgraph/internal/snapshot"
	"qgraph/internal/transport"
)

// harness drives one or two real workers through a scripted controller.
type harness struct {
	t   *testing.T
	net *transport.ChanNetwork
	g   *graph.Graph
	k   int
}

// lineGraph builds 0 ↔ 1 ↔ 2 ↔ 3 ↔ 4 with unit weights.
func lineGraph() *graph.Graph {
	b := graph.NewBuilder(5)
	for v := 0; v+1 < 5; v++ {
		b.AddBiEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	return b.MustBuild()
}

// newHarness starts k real workers; vertices 0..2 on worker 0, 3..4 on
// worker 1 (when k=2).
func newHarness(t *testing.T, k int) *harness {
	t.Helper()
	g := lineGraph()
	net := transport.NewChanNetwork(k+1, transport.Latency{})
	owner := make(partition.Assignment, g.NumVertices())
	for v := range owner {
		if k > 1 && v >= 3 {
			owner[v] = 1
		}
	}
	for w := 0; w < k; w++ {
		wk, err := New(Config{
			ID: partition.WorkerID(w), K: k, Graph: g, Owner: owner,
			StatsEvery: 1000, // keep synchs stat-free unless finishing
		}, net.Conn(protocol.WorkerNode(partition.WorkerID(w))))
		if err != nil {
			t.Fatal(err)
		}
		go wk.Run()
	}
	t.Cleanup(func() { net.Close() })
	return &harness{t: t, net: net, g: g, k: k}
}

func (h *harness) send(w partition.WorkerID, m protocol.Message) {
	h.t.Helper()
	if err := h.net.Conn(protocol.ControllerNode).Send(protocol.WorkerNode(w), m); err != nil {
		h.t.Fatal(err)
	}
}

// recv waits for the next message at the controller.
func (h *harness) recv() protocol.Message {
	h.t.Helper()
	select {
	case env := <-h.net.Conn(protocol.ControllerNode).Inbox():
		return env.Msg
	case <-time.After(5 * time.Second):
		h.t.Fatal("timeout waiting for worker message")
		return nil
	}
}

func (h *harness) recvSynch() *protocol.BarrierSynch {
	h.t.Helper()
	m, ok := h.recv().(*protocol.BarrierSynch)
	if !ok {
		h.t.Fatalf("expected BarrierSynch, got %T", m)
	}
	return m
}

// TestSingleWorkerQueryLifecycle drives a BFS flood on one worker through
// the raw protocol and checks every synch field.
func TestSingleWorkerQueryLifecycle(t *testing.T) {
	h := newHarness(t, 1)
	spec := query.Spec{ID: 7, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex}
	h.send(0, &protocol.ExecuteQuery{Spec: spec})
	h.send(0, &protocol.BarrierReady{Q: 7, Step: 0})

	s := h.recvSynch()
	if s.Q != 7 || s.W != 0 || s.Step != 0 || s.Processed != 1 {
		t.Fatalf("step0 synch: %+v", s)
	}
	if s.NActiveNext != 1 { // vertex 1 activated locally
		t.Fatalf("NActiveNext = %d", s.NActiveNext)
	}
	// Drive remaining steps one at a time (non-solo release).
	for step := int32(1); ; step++ {
		h.send(0, &protocol.BarrierReady{Q: 7, Step: step})
		s = h.recvSynch()
		if s.Step != step {
			t.Fatalf("synch for step %d, want %d", s.Step, step)
		}
		if s.NActiveNext == 0 {
			break
		}
	}
	if s.ScopeSize != 5 {
		t.Fatalf("final scope size %d, want 5", s.ScopeSize)
	}
	h.send(0, &protocol.QueryFinish{Q: 7, Reason: protocol.FinishConverged})
	fin := h.recvSynch()
	if !fin.Finished || fin.ScopeSize != 5 {
		t.Fatalf("finish synch: %+v", fin)
	}
}

// TestSoloLoopReportsOnce: a solo release runs the whole local query and
// reports one multi-step synch with LocalIters accounting.
func TestSoloLoopReportsOnce(t *testing.T) {
	h := newHarness(t, 1)
	spec := query.Spec{ID: 9, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex}
	h.send(0, &protocol.ExecuteQuery{Spec: spec})
	h.send(0, &protocol.BarrierReady{Q: 9, Step: 0, Solo: true})
	s := h.recvSynch()
	// Line graph 0→4: activations at steps 0..4, step 4 activates nothing
	// beyond vertex 4... vertex 4's compute at step 4 emits to 3 (worse,
	// no change) so step 5 has no activity; loop ends when NActiveNext==0.
	if s.FromStep != 0 || s.NActiveNext != 0 {
		t.Fatalf("solo synch: %+v", s)
	}
	if s.LocalIters != s.Step-s.FromStep {
		t.Fatalf("LocalIters %d != %d", s.LocalIters, s.Step-s.FromStep)
	}
	if s.ScopeSize != 5 {
		t.Fatalf("scope %d", s.ScopeSize)
	}
}

// TestRemoteBatchesAndExpect: messages crossing the 0|1 boundary are
// batched, counted, and the receiving worker honors the Expect count.
func TestRemoteBatchesAndExpect(t *testing.T) {
	h := newHarness(t, 2)
	spec := query.Spec{ID: 11, Kind: query.KindBFS, Source: 2, Target: graph.NilVertex}
	h.send(0, &protocol.ExecuteQuery{Spec: spec})
	h.send(1, &protocol.ExecuteQuery{Spec: spec})
	h.send(0, &protocol.BarrierReady{Q: 11, Step: 0})
	s := h.recvSynch()
	if s.W != 0 || s.SentBatches[1] != 1 {
		t.Fatalf("step0 synch: %+v", s)
	}
	// Release worker 1 for step 1 expecting that batch; worker 0 also has
	// local activation (vertex 1).
	h.send(0, &protocol.BarrierReady{Q: 11, Step: 1})
	h.send(1, &protocol.BarrierReady{Q: 11, Step: 1, Expect: 1})
	got := map[partition.WorkerID]*protocol.BarrierSynch{}
	for len(got) < 2 {
		s := h.recvSynch()
		got[s.W] = s
	}
	if got[1].Processed != 1 {
		t.Fatalf("worker 1 processed %d, want 1 (vertex 3)", got[1].Processed)
	}
}

// TestEarlyBatchBuffered: a vertex batch arriving before ExecuteQuery is
// buffered and replayed, not lost.
func TestEarlyBatchBuffered(t *testing.T) {
	h2 := newHarness(t, 2)
	spec := query.Spec{ID: 13, Kind: query.KindBFS, Source: 2, Target: graph.NilVertex}
	// Worker 1 gets a batch for query 13 before its ExecuteQuery.
	if err := h2.net.Conn(protocol.WorkerNode(0)).Send(protocol.WorkerNode(1), &protocol.VertexBatch{
		Q: 13, Step: 0, From: 0,
		Entries: []protocol.VertexMsg{{To: 3, Val: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	h2.send(1, &protocol.ExecuteQuery{Spec: spec})
	h2.send(1, &protocol.BarrierReady{Q: 13, Step: 1, Expect: 1})
	s := h2.recvSynch()
	if s.W != 1 || s.Processed != 1 {
		t.Fatalf("replayed batch not processed: %+v", s)
	}
}

// TestGlobalBarrierProtocol drives stop → drain → move → ownership →
// scope drain → start across two workers, verifying the moved scope lands
// intact.
func TestGlobalBarrierProtocol(t *testing.T) {
	h := newHarness(t, 2)
	spec := query.Spec{ID: 21, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex}
	h.send(0, &protocol.ExecuteQuery{Spec: spec})
	h.send(1, &protocol.ExecuteQuery{Spec: spec})
	h.send(0, &protocol.BarrierReady{Q: 21, Step: 0, Solo: true})
	s := h.recvSynch() // worker 0 runs locally until it must send to worker 1
	if s.SentBatches[1] == 0 {
		t.Fatalf("expected boundary crossing, got %+v", s)
	}

	// Global barrier instead of releasing the next step.
	h.send(0, &protocol.GlobalStop{Epoch: 1})
	h.send(1, &protocol.GlobalStop{Epoch: 1})
	acks := map[partition.WorkerID][]uint64{}
	for len(acks) < 2 {
		m, ok := h.recv().(*protocol.StopAck)
		if !ok {
			t.Fatalf("expected StopAck")
		}
		acks[m.W] = m.SentTotals
	}
	// Drain: worker 1 must confirm receipt of worker 0's batches.
	h.send(0, &protocol.DrainCheck{Epoch: 1, ExpectRecv: []uint64{0, acks[1][0]}})
	h.send(1, &protocol.DrainCheck{Epoch: 1, ExpectRecv: []uint64{acks[0][1], 0}})
	for i := 0; i < 2; i++ {
		if _, ok := h.recv().(*protocol.DrainAck); !ok {
			t.Fatalf("expected DrainAck")
		}
	}
	// Move query 21's scope from worker 0 to worker 1.
	h.send(0, &protocol.MoveScope{Epoch: 1, Q: 21, To: 1})
	mv, ok := h.recv().(*protocol.MoveAck)
	if !ok || mv.From != 0 || mv.To != 1 {
		t.Fatalf("expected MoveAck, got %#v", mv)
	}
	if len(mv.Vertices) != 3 {
		t.Fatalf("moved %d vertices, want 3 (worker 0's scope)", len(mv.Vertices))
	}
	// Scope drain at the receiver, then start.
	h.send(1, &protocol.DrainCheck{Epoch: 1, Scope: true, ExpectRecv: []uint64{1, 0}})
	h.send(0, &protocol.DrainCheck{Epoch: 1, Scope: true, ExpectRecv: []uint64{0, 0}})
	for i := 0; i < 2; i++ {
		if _, ok := h.recv().(*protocol.DrainAck); !ok {
			t.Fatalf("expected scope DrainAck")
		}
	}
	h.send(0, &protocol.GlobalStart{Epoch: 1})
	h.send(1, &protocol.GlobalStart{Epoch: 1})

	// Resume: release both with drained. Worker 1 now owns everything the
	// query touched plus its pending messages; worker 0 must be empty.
	h.send(0, &protocol.BarrierReady{Q: 21, Step: s.Step + 1, Drained: true})
	h.send(1, &protocol.BarrierReady{Q: 21, Step: s.Step + 1, Drained: true})
	got := map[partition.WorkerID]*protocol.BarrierSynch{}
	for len(got) < 2 {
		r := h.recvSynch()
		got[r.W] = r
	}
	if got[0].Processed != 0 || got[0].ScopeSize != 0 {
		t.Fatalf("worker 0 still has state after move: %+v", got[0])
	}
	if got[1].Processed == 0 {
		t.Fatalf("worker 1 did not process moved pending messages: %+v", got[1])
	}
}

// TestComputeDebtAccumulates: the simulated compute cost stalls the worker
// roughly proportionally to processed vertices.
func TestComputeDebtAccumulates(t *testing.T) {
	g := lineGraph()
	net := transport.NewChanNetwork(2, transport.Latency{})
	defer net.Close()
	owner := make(partition.Assignment, g.NumVertices())
	wk, err := New(Config{
		ID: 0, K: 1, Graph: g, Owner: owner,
		ComputeCost: 2 * time.Millisecond, // 1 vertex/step → 2ms/step, debt flushes every step
	}, net.Conn(1))
	if err != nil {
		t.Fatal(err)
	}
	go wk.Run()
	ctrl := net.Conn(0)
	spec := query.Spec{ID: 1, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex}
	ctrl.Send(1, &protocol.ExecuteQuery{Spec: spec})
	start := time.Now()
	ctrl.Send(1, &protocol.BarrierReady{Q: 1, Step: 0, Solo: true})
	<-ctrl.Inbox()
	// 5 supersteps × ≥1 vertex × 2ms ≥ 10ms.
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("compute cost not applied: %v", el)
	}
}

// TestPartitionGrantFallbackToNewerSnapshot: when the exact checkpoint a
// grant names is gone, the replay falls back to a newer local snapshot
// inside the grant's batch range, skipping the batches it already covers —
// and a base the tail cannot connect to fails loudly, never silently.
func TestPartitionGrantFallbackToNewerSnapshot(t *testing.T) {
	g := lineGraph()
	ops := func(v int) []delta.Op {
		return []delta.Op{{Kind: delta.OpAddEdge, From: 0, To: graph.VertexID(v % 5), Weight: float32(v)}}
	}
	// Committed history 1..4; the store only holds a checkpoint at 2.
	live := delta.NewView(g)
	snapStore := snapshot.NewStore("", 0)
	var batches []delta.LogBatch
	for v := 1; v <= 4; v++ {
		nv, _, err := live.Apply(ops(v))
		if err != nil {
			t.Fatal(err)
		}
		live = nv
		batches = append(batches, delta.LogBatch{Version: uint64(v), Ops: ops(v)})
		if v == 2 {
			if _, err := snapStore.Add(&snapshot.Snapshot{Version: 2, Graph: live.Materialize()}); err != nil {
				t.Fatal(err)
			}
		}
	}

	owner := make(partition.Assignment, g.NumVertices())
	net := transport.NewChanNetwork(2, transport.Latency{})
	defer net.Close()
	wk, err := New(Config{
		ID: 0, K: 1, Graph: g, Owner: owner, Rejoin: true, Snapshots: snapStore,
	}, net.Conn(protocol.WorkerNode(0)))
	if err != nil {
		t.Fatal(err)
	}

	// The grant names checkpoint 1 (not in the store) and ships the tail
	// from there; the worker must fall back to its snapshot at 2.
	grant := &protocol.PartitionGrant{
		Gen: 1, Version: 4, Owner: owner,
		BaseVersion: 1, Batches: batches[1:], // versions 2..4
	}
	if err := wk.onPartitionGrant(grant); err != nil {
		t.Fatalf("fallback grant failed: %v", err)
	}
	if v := wk.View().Version(); v != 4 {
		t.Fatalf("rejoined at version %d, want 4", v)
	}
	// Only the batches past the fallback snapshot replayed (3 and 4).
	if got := wk.ReplayedOps(); got != 2 {
		t.Fatalf("replayed %d ops, want 2", got)
	}
	if wk.View().NumEdges() != live.NumEdges() {
		t.Fatalf("fallback replay diverged: %d edges, want %d", wk.View().NumEdges(), live.NumEdges())
	}

	// A tail that cannot connect to any local base is an explicit error.
	wk2, err := New(Config{
		ID: 0, K: 1, Graph: g, Owner: owner, Rejoin: true, Snapshots: snapshot.NewStore("", 0),
	}, net.Conn(protocol.WorkerNode(0)))
	if err != nil {
		t.Fatal(err)
	}
	gap := &protocol.PartitionGrant{
		Gen: 1, Version: 4, Owner: owner,
		BaseVersion: 1, Batches: batches[3:], // only version 4: gap (1, 3]
	}
	if err := wk2.onPartitionGrant(gap); err == nil {
		t.Fatal("disconnected grant tail accepted (silent divergence)")
	}
}
