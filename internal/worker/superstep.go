package worker

import (
	"time"

	"qgraph/internal/faultpoint"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
)

// ownerOf resolves which worker processes vertex v for query qs: normally
// the vertex owner, but queries pinned by the replication extension run
// entirely at their home worker (query.Spec.SetHome).
func (w *Worker) ownerOf(qs *queryState, v graph.VertexID) partition.WorkerID {
	if home, ok := qs.spec.HomeWorker(); ok {
		return partition.WorkerID(home)
	}
	return w.owner[v]
}

// stepResult summarises one computed superstep.
type stepResult struct {
	processed   int32
	nActiveNext int32
	sent        []int32 // batches sent per destination worker
	sentTotal   int32
	minFrontier float64
}

// stepOnce computes the query's next superstep under its active release.
// When the release marks this worker as solo and the query stayed local,
// the query is re-queued for another local superstep instead of reporting
// a barrier message (the local query barrier of Sec. 3.3) — but only one
// superstep runs per call, so concurrent queries interleave fairly.
func (w *Worker) stepOnce(q query.ID, qs *queryState) error {
	step := qs.step
	t0 := time.Now()
	res := w.computeStep(qs, step)
	// Fault seam inside the timed section: an armed hook that sleeps here
	// inflates this worker's reported ComputeNS, modeling a straggler for
	// the health layer's detector without touching the compute itself.
	faultpoint.Hit(faultpoint.WorkerComputeSlow, int(w.id), int(q), int(step))
	qs.computeNS += time.Since(t0).Nanoseconds()
	// Fault seam: a worker dying mid-superstep has computed (and possibly
	// sent vertex batches) but never reports — its barrier wedges until
	// liveness detection and recovery re-execute the query.
	if faultpoint.Hit(faultpoint.WorkerSuperstep, int(w.id), int(q), int(step)) {
		return faultpoint.ErrKilled
	}
	canLoop := qs.release.Solo &&
		!w.stopping &&
		res.sentTotal == 0 &&
		res.nActiveNext > 0 &&
		!(qs.prog.Monotone() && res.minFrontier >= qs.bestGoal) &&
		(qs.spec.MaxIters == 0 || int(step+1) < qs.spec.MaxIters)
	if canLoop {
		w.ready = append(w.ready, q)
		return nil
	}
	qs.release = nil
	w.sendSynch(q, qs, qs.soloFrom, step, res)
	return nil
}

// computeStep executes one superstep of qs: consume the combined inbox,
// run the vertex function per active vertex, stage emissions, and flush
// remote batches.
func (w *Worker) computeStep(qs *queryState, step int32) stepResult {
	box := qs.inbox[step]
	delete(qs.inbox, step)

	res := stepResult{
		processed:   int32(len(box)),
		minFrontier: query.NoResult,
		sent:        make([]int32, w.k),
	}
	// The query's pinned snapshot, not w.view: commits landing while this
	// query runs must be invisible to it (MVCC snapshot isolation).
	g, spec, prog := qs.view, qs.spec, qs.prog
	emit := func(to graph.VertexID, val float64) {
		dst := w.ownerOf(qs, to)
		if dst == w.id {
			w.combineIn(qs, step+1, to, val)
			return
		}
		buf := w.outBuf[dst]
		if buf == nil {
			buf = make(map[graph.VertexID]float64)
			w.outBuf[dst] = buf
		}
		if old, ok := buf[to]; ok {
			buf[to] = prog.Combine(old, val)
		} else {
			buf[to] = val
		}
	}

	for v, msg := range box {
		old, hasOld := qs.data[v]
		newVal, changed := prog.Compute(g, spec, v, old, hasOld, msg, emit)
		if !changed {
			continue
		}
		if !hasOld {
			qs.sig[int32(v)>>sigShift]++
		}
		qs.data[v] = newVal
		if prog.Goal(g, spec, v, newVal) && newVal < qs.bestGoal {
			qs.bestGoal = newVal
		}
	}
	if w.cfg.ComputeCost > 0 && len(box) > 0 {
		// Accumulate simulated compute and sleep in ~1ms quanta: short
		// sleeps oversleep by scheduler granularity, which would inflate
		// every superstep's critical path instead of modelling load.
		w.computeDebt += time.Duration(len(box)) * w.cfg.ComputeCost
		if w.computeDebt >= time.Millisecond {
			time.Sleep(w.computeDebt)
			w.computeDebt = 0
		}
	}

	// Flush remote buffers as batches and fold their values into the
	// frontier bound.
	for dst := 0; dst < w.k; dst++ {
		buf := w.outBuf[dst]
		if len(buf) == 0 {
			continue
		}
		w.outBuf[dst] = nil
		entries := make([]protocol.VertexMsg, 0, len(buf))
		for v, val := range buf {
			entries = append(entries, protocol.VertexMsg{To: v, Val: val})
			if val < res.minFrontier {
				res.minFrontier = val
			}
		}
		res.sent[dst] = w.sendBatch(qs.spec.ID, step, partition.WorkerID(dst), entries)
		res.sentTotal += res.sent[dst]
	}

	// Local activations pending for the next superstep also bound the
	// frontier.
	for _, val := range qs.inbox[step+1] {
		if val < res.minFrontier {
			res.minFrontier = val
		}
	}
	res.nActiveNext = int32(len(qs.inbox[step+1]))
	qs.step = step + 1
	return res
}

// sendBatch ships entries to worker dst, splitting at the configured batch
// limits (Sec. 4.1(iv)), and returns the number of batches sent.
func (w *Worker) sendBatch(q query.ID, step int32, dst partition.WorkerID, entries []protocol.VertexMsg) int32 {
	const entryBytes = 12
	maxEntries := w.cfg.BatchMaxMsgs
	if byBytes := w.cfg.BatchMaxBytes / entryBytes; byBytes < maxEntries {
		maxEntries = byBytes
	}
	if maxEntries < 1 {
		maxEntries = 1
	}
	var batches int32
	for len(entries) > 0 {
		n := min(len(entries), maxEntries)
		w.conn.Send(protocol.WorkerNode(dst), &protocol.VertexBatch{
			Q: q, Step: step, From: w.id, Gen: w.gen, Entries: entries[:n:n],
		})
		entries = entries[n:]
		batches++
	}
	w.sentTotals[dst] += uint64(batches)
	return batches
}

// sendSynch reports a completed superstep range to the controller with the
// monitoring statistics piggybacked (Sec. 3.4).
func (w *Worker) sendSynch(q query.ID, qs *queryState, fromStep, step int32, res stepResult) {
	qs.synchs++
	var inter []protocol.IntersectionStat
	if qs.synchs%w.cfg.StatsEvery == 0 {
		inter = w.intersections(q, qs)
	}
	minFrontier := res.minFrontier
	// Older pending inboxes (from earlier remote activations) also bound
	// the frontier; include everything still buffered.
	for s, box := range qs.inbox {
		if s == step+1 {
			continue // already folded in
		}
		for _, val := range box {
			if val < minFrontier {
				minFrontier = val
			}
		}
	}
	computeNS := qs.computeNS
	qs.computeNS = 0
	w.conn.Send(protocol.ControllerNode, &protocol.BarrierSynch{
		Q: q, W: w.id,
		Step:          step,
		FromStep:      fromStep,
		LocalIters:    step - fromStep,
		Processed:     res.processed,
		NActiveNext:   res.nActiveNext,
		ComputeNS:     computeNS,
		ScopeSize:     int32(len(qs.data)),
		SentBatches:   res.sent,
		BestGoal:      qs.bestGoal,
		MinFrontier:   minFrontier,
		Intersections: inter,
	})
}
