// Package worker implements the Q-Graph worker layer (Fig. 2 of the
// paper): low-level, vertex-centric graph processing with local knowledge.
// A worker owns a partition of the vertices, executes the vertex functions
// of all queries over its partition superstep by superstep, batches
// messages to remote vertices, tracks each query's local scope LS(q,w),
// and cooperates with the controller through the barrier protocol —
// including the local query barrier that lets it iterate a solo query
// without any controller round-trips (Sec. 3.3).
//
// A worker is a single event loop over its transport inbox; all state is
// confined to that goroutine.
package worker

import (
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"qgraph/internal/delta"
	"qgraph/internal/faultpoint"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
	"qgraph/internal/snapshot"
	"qgraph/internal/transport"
)

// Config parameterises a worker.
type Config struct {
	// ID is this worker's id; K the total worker count.
	ID partition.WorkerID
	K  int
	// Graph is the shared immutable graph structure (each worker process
	// loads its own copy in distributed deployments).
	Graph *graph.Graph
	// Owner is the initial vertex→worker assignment; the worker keeps a
	// private copy and applies ownership updates to it.
	Owner partition.Assignment
	// BatchMaxMsgs / BatchMaxBytes bound vertex message batches
	// (Sec. 4.1(iv): 32 messages / 32 KB per batch).
	BatchMaxMsgs  int
	BatchMaxBytes int
	// StatsEvery piggybacks intersection statistics on every n-th barrier
	// message of a query (sizes are piggybacked on all of them).
	StatsEvery int
	// ScopeTTL is how long the vertex sets of finished queries are kept
	// for move directives (the controller's monitoring window μ).
	ScopeTTL time.Duration
	// ComputeCost simulates per-active-vertex work beyond the actual
	// vertex function (heavier application logic, (de)serialization of
	// vertex data). A worker saturates when hotspot load concentrates on
	// it — the straggler effect the paper's balance constraint guards
	// against. Zero disables the simulation.
	ComputeCost time.Duration
	// Rejoin starts the worker in joining mode: it announces itself with
	// WorkerHello and ignores everything until the controller's
	// PartitionGrant rebuilds its state (worker failure recovery — this is
	// how a respawned worker replaces a dead one on the same node id).
	Rejoin bool
	// BaseVersion is the committed version Graph already contains (a
	// deployment restarted from a checkpoint, internal/snapshot). The
	// worker's view starts there and must match the controller's base.
	BaseVersion uint64
	// Snapshots resolves checkpoints a PartitionGrant replays over: the
	// controller truncates its op log at every checkpoint, so a grant's
	// BaseVersion beyond the worker's own base must be looked up here
	// (shared in-process store, or a disk-backed store over the same
	// snapshot directory). Nil restricts grants to BaseVersion ==
	// Config.BaseVersion.
	Snapshots *snapshot.Store
	// Logger receives structured operational logs (query admission with
	// trace IDs, rejoin replay provenance); nil discards them.
	Logger *slog.Logger
	// Clock abstracts time for tests; nil means time.Now.
	Clock func() time.Time
}

func (c *Config) fill() {
	if c.BatchMaxMsgs <= 0 {
		c.BatchMaxMsgs = 32
	}
	if c.BatchMaxBytes <= 0 {
		c.BatchMaxBytes = 32 << 10
	}
	if c.StatsEvery <= 0 {
		c.StatsEvery = 8
	}
	if c.ScopeTTL <= 0 {
		c.ScopeTTL = 240 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
}

// queryState is the worker-local state of one query: its private vertex
// data (the local query scope) and per-superstep inboxes.
type queryState struct {
	spec query.Spec
	prog query.Program
	// view is the immutable graph snapshot this query computes against,
	// resolved from the worker's view registry by spec.PinVersion at
	// ExecuteQuery and held (pinned) until the query finishes. Batches
	// committed at later versions are invisible to it — MVCC snapshot
	// isolation, which is what lets commits land without quiescing.
	view *delta.View

	// data holds the query-private value of every vertex the query touched
	// on this worker; its key set is LS(q, w).
	data map[graph.VertexID]float64
	// sig is a coarse signature of the scope: touched vertices per
	// sigShift-sized id block. Intersection statistics are estimated from
	// signatures instead of exact key-set walks, which keeps the Iw
	// piggyback (Sec. 3.4) O(scope/2^sigShift) instead of O(scope) per
	// query pair — the clustering that consumes them only needs affinity.
	sig map[int32]int32
	// inbox[s] holds combined messages to be consumed by superstep s.
	inbox map[int32]map[graph.VertexID]float64
	// recvBatches[s] counts vertex batches received that were sent during
	// superstep s (consumed by s+1); the barrier release waits on it.
	recvBatches map[int32]int32
	// pending is a barrier release we cannot honor yet because expected
	// batches have not all arrived.
	pending *protocol.BarrierReady
	// release is the active barrier release being executed; while it has
	// Solo set, the worker keeps re-queueing the query for further local
	// supersteps (the local query barrier) without controller round-trips.
	release *protocol.BarrierReady
	// soloFrom is the first superstep covered by the current release.
	soloFrom int32
	// step is the next superstep to compute.
	step int32
	// bestGoal is the best goal value seen on this worker.
	bestGoal float64
	// synchs counts barrier messages sent, for stats piggyback cadence.
	synchs int
	// computeNS accumulates wall time spent in computeStep since the last
	// barrier report; it ships to the controller on BarrierSynch so the
	// query's trace can attribute superstep time per worker.
	computeNS int64
}

// sigShift is the scope-signature block size exponent: vertices v and v'
// share a block iff v>>sigShift == v'>>sigShift. Road-network vertex ids
// are row-major, so a block is a spatially contiguous strip.
const sigShift = 6

// sigOverlap estimates |A ∩ B| from two signatures as Σ_block min(a, b).
func sigOverlap(a, b map[int32]int32) int32 {
	if len(b) < len(a) {
		a, b = b, a
	}
	var shared int32
	for blk, ca := range a {
		if cb, ok := b[blk]; ok {
			shared += min(ca, cb)
		}
	}
	return shared
}

// finishedScope remembers the vertex set of a completed query so later
// move directives can still relocate its hotspot, plus its signature for
// intersection estimates.
type finishedScope struct {
	verts map[graph.VertexID]bool
	sig   map[int32]int32
	at    time.Time
}

// Worker is the worker-layer event loop.
type Worker struct {
	cfg  Config
	conn transport.Conn
	// view is the worker's current graph: the shared immutable base plus
	// the overlay of every committed mutation batch (internal/delta). It
	// advances whenever a DeltaBatch arrives (off-barrier in the pipelined
	// commit path), but queries never read it directly mid-flight: each
	// query pins its version's snapshot in views at ExecuteQuery, so a
	// version bump between supersteps is invisible to running queries.
	view *delta.View
	// views tracks every version that still has a pinned reader plus the
	// latest, so concurrently running queries each see their own admitted
	// snapshot while commits keep landing.
	views *delta.Registry
	k     int
	id    partition.WorkerID

	owner   partition.Assignment
	queries map[query.ID]*queryState
	done    map[query.ID]*finishedScope
	// finished records every query id this worker has seen finish, so late
	// batches can be distinguished from batches that raced ahead of the
	// ExecuteQuery broadcast on another link.
	finished map[query.ID]time.Time
	// early buffers batches that arrived before their query's
	// ExecuteQuery; they are replayed when it arrives.
	early map[query.ID][]*protocol.VertexBatch

	sentTotals []uint64 // cumulative batches sent, by destination worker
	recvTotals []uint64 // cumulative batches received, by source worker

	// Scope-data counters for the second drain round of a global barrier.
	scopeSentTotals []uint64
	scopeRecvTotals []uint64

	// Recovery state. gen is the recovery generation this worker lives in;
	// vertex batches and scope data from other generations are dropped
	// without counting, so the flow counters every node resets during
	// recovery stay exact. joining marks a respawned worker that has said
	// hello and must ignore all traffic addressed to its dead predecessor
	// until the controller's PartitionGrant. prevView is the view before
	// the latest delta apply — at most one batch can be uncommitted when a
	// recovery starts, so a depth-1 undo suffices to roll back to the
	// committed version.
	gen      int32
	joining  bool
	prevView *delta.View
	// replayedOps counts the operations the latest PartitionGrant replayed
	// to rebuild this worker's view — with checkpointing, O(ops since the
	// checkpoint), not O(history). Atomic: tests and harnesses read it
	// while the worker runs.
	replayedOps atomic.Int64

	// Global barrier state.
	stopping     bool
	stopEpoch    int32
	pendingDrain *protocol.DrainCheck
	// arrived tracks vertices received via ScopeData in the current global
	// barrier. Move directives exclude them, so chained directives
	// (q: w1→w2 and q: w2→w3 in the same barrier) relocate exactly the
	// scopes the controller saw, independent of delivery order.
	arrived map[graph.VertexID]bool

	// Forwarded counts batch entries that arrived for vertices this worker
	// does not own. The protocol guarantees zero; tests assert it.
	Forwarded int

	// ready queues queries with a runnable superstep. Processing one
	// superstep per scheduling turn interleaves concurrent queries fairly:
	// a long solo query must not monopolize the worker while others wait
	// (multi-query execution, Sec. 3.3).
	ready []query.ID
	// computeDebt accumulates simulated per-vertex compute time until it
	// is large enough to sleep accurately (see Config.ComputeCost).
	computeDebt time.Duration

	// scratch buffers for superstep compute, reused across supersteps.
	outBuf []map[graph.VertexID]float64
}

// New creates a worker bound to conn.
func New(cfg Config, conn transport.Conn) (*Worker, error) {
	cfg.fill()
	if cfg.Graph == nil {
		return nil, fmt.Errorf("worker %d: nil graph", cfg.ID)
	}
	if len(cfg.Owner) != cfg.Graph.NumVertices() {
		return nil, fmt.Errorf("worker %d: ownership table covers %d of %d vertices",
			cfg.ID, len(cfg.Owner), cfg.Graph.NumVertices())
	}
	view := delta.NewViewAt(cfg.Graph, cfg.BaseVersion)
	w := &Worker{
		cfg:             cfg,
		conn:            conn,
		view:            view,
		views:           delta.NewRegistry(view),
		k:               cfg.K,
		id:              cfg.ID,
		owner:           cfg.Owner.Clone(),
		queries:         make(map[query.ID]*queryState),
		done:            make(map[query.ID]*finishedScope),
		finished:        make(map[query.ID]time.Time),
		early:           make(map[query.ID][]*protocol.VertexBatch),
		sentTotals:      make([]uint64, cfg.K),
		recvTotals:      make([]uint64, cfg.K),
		scopeSentTotals: make([]uint64, cfg.K),
		scopeRecvTotals: make([]uint64, cfg.K),
		outBuf:          make([]map[graph.VertexID]float64, cfg.K),
		joining:         cfg.Rejoin,
	}
	return w, nil
}

// Run processes the inbox until Shutdown arrives or the inbox closes.
// Incoming messages take priority; between messages the worker executes
// one queued superstep per turn. It returns the first fatal error (nil on
// clean shutdown, faultpoint.ErrKilled on an injected crash — after which
// the worker stops reading its inbox entirely, like a dead process would).
func (w *Worker) Run() error {
	if w.cfg.Rejoin {
		if err := w.conn.Send(protocol.ControllerNode, &protocol.WorkerHello{W: w.id}); err != nil {
			return fmt.Errorf("worker %d: hello: %w", w.id, err)
		}
	}
	inbox := w.conn.Inbox()
	for {
		var env transport.Envelope
		var ok bool
		if len(w.ready) == 0 {
			env, ok = <-inbox
		} else {
			select {
			case env, ok = <-inbox:
			default:
				if err := w.runReady(); err != nil {
					return w.fatal(err)
				}
				continue
			}
		}
		if !ok {
			return nil
		}
		stop, err := w.handle(env)
		if err != nil {
			return w.fatal(err)
		}
		if stop {
			return nil
		}
	}
}

// fatal wraps genuine errors with the worker id; an injected kill passes
// through unwrapped so harnesses can recognize it.
func (w *Worker) fatal(err error) error {
	if err == faultpoint.ErrKilled {
		return err
	}
	return fmt.Errorf("worker %d: %w", w.id, err)
}

// runReady executes one superstep of the oldest runnable query.
func (w *Worker) runReady() error {
	q := w.ready[0]
	w.ready = w.ready[1:]
	if len(w.ready) == 0 {
		w.ready = nil
	}
	qs, ok := w.queries[q]
	if !ok || qs.release == nil {
		return nil // query finished or was superseded meanwhile
	}
	return w.stepOnce(q, qs)
}

func (w *Worker) handle(env transport.Envelope) (stop bool, err error) {
	if w.joining {
		// A rejoining worker sees the stale traffic addressed to its dead
		// predecessor until the controller admits it back; only the grant
		// (and liveness probes, and a shutdown) are meaningful.
		switch m := env.Msg.(type) {
		case *protocol.PartitionGrant:
			return false, w.onPartitionGrant(m)
		case *protocol.Ping:
			return false, w.conn.Send(protocol.ControllerNode, &protocol.Pong{Seq: m.Seq, W: w.id})
		case *protocol.Shutdown:
			return true, nil
		default:
			return false, nil
		}
	}
	switch m := env.Msg.(type) {
	case *protocol.ExecuteQuery:
		err = w.onExecute(m)
	case *protocol.BarrierReady:
		err = w.onBarrierReady(m)
	case *protocol.QueryFinish:
		err = w.onFinish(m)
	case *protocol.VertexBatch:
		err = w.onVertexBatch(m)
	case *protocol.GlobalStop:
		err = w.onGlobalStop(m)
	case *protocol.DrainCheck:
		w.pendingDrain = m
		w.checkDrain()
	case *protocol.MoveScope:
		err = w.onMoveScope(m)
	case *protocol.ScopeData:
		err = w.onScopeData(m)
	case *protocol.OwnershipUpdate:
		for i, v := range m.Vertices {
			w.owner[v] = m.Owners[i]
		}
	case *protocol.DeltaBatch:
		err = w.onDeltaBatch(m)
	case *protocol.Ping:
		err = w.conn.Send(protocol.ControllerNode, &protocol.Pong{Seq: m.Seq, W: w.id})
	case *protocol.RecoverStart:
		err = w.onRecoverStart(m)
	case *protocol.GlobalStart:
		w.stopping = false
	case *protocol.Shutdown:
		return true, nil
	default:
		err = fmt.Errorf("unexpected message %T", env.Msg)
	}
	return false, err
}

// onRecoverStart resets this surviving worker into recovery generation
// m.Gen. All live query state is dropped (the controller re-executes the
// affected queries from superstep 0), the flow counters are zeroed on
// every node symmetrically, the ownership map is replaced wholesale with
// the controller's authoritative copy, and a delta batch that was applied
// but never committed is rolled back to the committed version. Remembered
// finished scopes survive: their vertex sets are still valid under the new
// ownership and keep Q-cut's hotspot history useful.
func (w *Worker) onRecoverStart(m *protocol.RecoverStart) error {
	if faultpoint.Hit(faultpoint.WorkerRecover, int(w.id)) {
		return faultpoint.ErrKilled
	}
	if w.view.Version() > m.Version {
		// The uncommitted batch this worker applied was aborted by the
		// failure; undo it. Depth 1 is enough: at most one barrier-mode
		// batch is ever in flight, and recovery intervenes before the
		// next. (Pipelined commits are durable and applied on the
		// controller before broadcast, so RecoverStart never names a
		// version below one — this path is the barrier-commit baseline's.)
		if w.prevView == nil || w.prevView.Version() != m.Version {
			return fmt.Errorf("cannot roll back from version %d to %d", w.view.Version(), m.Version)
		}
		if err := w.views.Drop(w.view.Version(), w.prevView); err != nil {
			return fmt.Errorf("recover rollback: %w", err)
		}
		w.view = w.prevView
		w.prevView = nil
	}
	if w.view.Version() != m.Version {
		return fmt.Errorf("recover at version %d, controller at %d (replica divergence)",
			w.view.Version(), m.Version)
	}
	if len(m.Owner) != w.view.NumVertices() {
		return fmt.Errorf("recover ownership covers %d of %d vertices", len(m.Owner), w.view.NumVertices())
	}
	w.resetForRecovery(m.Gen, m.Owner)
	return w.conn.Send(protocol.ControllerNode, &protocol.PartitionAck{
		Gen: m.Gen, W: w.id, Version: w.view.Version(),
	})
}

// onPartitionGrant admits this rejoining worker into the live set: rebuild
// the graph view by replaying the grant's op tail over the graph at its
// BaseVersion — the shared base when it matches this worker's own, else a
// checkpoint resolved from the local snapshot store — then adopt the
// ownership map and leave joining mode. With checkpointing, the tail is
// O(ops since the newest checkpoint), not the full mutation history.
//
// When the exact checkpoint the grant names is gone (pruned from the
// store, or this worker restarted from a newer snapshot + WAL tail), the
// replay falls back to the newest local base inside the grant's batch
// range and skips the batches it already folds in. The version chain is
// still verified batch by batch, so a base the tail cannot connect to
// fails loudly — never a silently diverged replay.
func (w *Worker) onPartitionGrant(m *protocol.PartitionGrant) error {
	base, baseV := w.cfg.Graph, w.cfg.BaseVersion
	if m.BaseVersion != baseV {
		// A base is usable iff the grant's batches can bridge it to the
		// granted version.
		usable := func(v uint64) bool { return v > m.BaseVersion && v <= m.Version }
		var snap *snapshot.Snapshot
		if w.cfg.Snapshots != nil {
			if snap = w.cfg.Snapshots.At(m.BaseVersion); snap == nil {
				if latest := w.cfg.Snapshots.Latest(); latest != nil && usable(latest.Version) {
					snap = latest
				}
			}
		}
		switch {
		case snap != nil:
			base, baseV = snap.Graph, snap.Version
		case usable(baseV):
			// Our own base graph already contains a prefix of the grant's
			// batches (a restart from a newer checkpoint); replay the rest.
		case w.cfg.Snapshots == nil:
			return fmt.Errorf("grant replays from checkpoint %d but no snapshot store is configured", m.BaseVersion)
		default:
			return fmt.Errorf("grant replays from checkpoint %d, not available locally", m.BaseVersion)
		}
	}
	batches := m.Batches
	for len(batches) > 0 && batches[0].Version <= baseV {
		batches = batches[1:]
	}
	view, err := delta.ReplayBatchesFrom(base, baseV, batches)
	if err != nil {
		return fmt.Errorf("grant replay: %w", err)
	}
	if view.Version() != m.Version {
		return fmt.Errorf("grant replay reached version %d, want %d", view.Version(), m.Version)
	}
	if len(m.Owner) != view.NumVertices() {
		return fmt.Errorf("grant ownership covers %d of %d vertices", len(m.Owner), view.NumVertices())
	}
	replayed := 0
	for _, b := range batches {
		replayed += len(b.Ops)
	}
	w.replayedOps.Store(int64(replayed))
	w.cfg.Logger.Info("rejoined",
		"worker", int(w.id), "graph_version", m.Version,
		"replayed_ops", replayed, "checkpoint_version", baseV, "gen", m.Gen)
	w.view = view
	w.views = delta.NewRegistry(view)
	w.prevView = nil
	w.joining = false
	w.resetForRecovery(m.Gen, m.Owner)
	return w.conn.Send(protocol.ControllerNode, &protocol.PartitionAck{
		Gen: m.Gen, W: w.id, Version: view.Version(),
	})
}

// ReplayedOps returns the operations the latest PartitionGrant replayed to
// rebuild this worker's view (0 before any rejoin). Safe concurrently with
// Run; tests assert it stays below ops-since-checkpoint.
func (w *Worker) ReplayedOps() int64 { return w.replayedOps.Load() }

// resetForRecovery clears every piece of in-flight state that references
// the pre-recovery generation: live queries, early buffers, the ready
// queue, pending drains, move bookkeeping, and all flow counters.
func (w *Worker) resetForRecovery(gen int32, owner []partition.WorkerID) {
	w.gen = gen
	w.owner = append(w.owner[:0], owner...)
	w.queries = make(map[query.ID]*queryState)
	// Dropped queries release their snapshots; only the current version
	// survives (restarted queries re-pin it when re-broadcast).
	w.views.UnpinAll()
	w.early = make(map[query.ID][]*protocol.VertexBatch)
	w.ready = nil
	w.pendingDrain = nil
	w.arrived = nil
	w.outBuf = make([]map[graph.VertexID]float64, w.k)
	for i := range w.sentTotals {
		w.sentTotals[i], w.recvTotals[i] = 0, 0
		w.scopeSentTotals[i], w.scopeRecvTotals[i] = 0, 0
	}
	// Recovery acts as a global barrier: the controller releases the
	// restarted queries with GlobalStart after every live worker acked.
	w.stopping = true
}

// onExecute registers a query. ExecuteQuery is broadcast to every worker so
// that all of them know the spec (scope moves may later hand any worker a
// piece of any query); only owners of initially active vertices get work.
func (w *Worker) onExecute(m *protocol.ExecuteQuery) error {
	if _, ok := w.queries[m.Spec.ID]; ok {
		return fmt.Errorf("query %d already executing", m.Spec.ID)
	}
	prog, err := query.New(m.Spec.Kind)
	if err != nil {
		return err
	}
	// Resolve the admitted snapshot. Per-link FIFO makes the pinned
	// version exactly this worker's current one: the controller broadcast
	// every DeltaBatch up to PinVersion before this ExecuteQuery, and the
	// batch for PinVersion+1 (if any) comes after it. A mismatch means a
	// lost or reordered commit — replica divergence, fail loudly.
	view, err := w.views.Pin(m.Spec.PinVersion)
	if err != nil {
		return fmt.Errorf("query %d: %w", m.Spec.ID, err)
	}
	qs := &queryState{
		spec:        m.Spec,
		prog:        prog,
		view:        view,
		data:        make(map[graph.VertexID]float64),
		sig:         make(map[int32]int32),
		inbox:       make(map[int32]map[graph.VertexID]float64),
		recvBatches: make(map[int32]int32),
		bestGoal:    query.NoResult,
	}
	for _, act := range prog.Init(qs.view, m.Spec) {
		if w.ownerOf(qs, act.V) == w.id {
			w.combineIn(qs, 0, act.V, act.Msg)
		}
	}
	w.queries[m.Spec.ID] = qs
	if m.Spec.TraceID != 0 {
		// Correlates this worker's share of the query with the span tree
		// the serving layer assembles (internal/obs).
		w.cfg.Logger.Info("query start",
			"worker", int(w.id), "query", int64(m.Spec.ID),
			"trace_id", m.Spec.TraceID, "kind", m.Spec.Kind.String(),
			"graph_version", qs.view.Version())
	}
	// Replay any batches that raced ahead of this broadcast on a
	// worker-worker link.
	if buffered := w.early[m.Spec.ID]; buffered != nil {
		delete(w.early, m.Spec.ID)
		for _, b := range buffered {
			w.deliverBatch(qs, b)
		}
	}
	return nil
}

// combineIn merges a message for vertex v into the inbox of superstep s.
func (w *Worker) combineIn(qs *queryState, s int32, v graph.VertexID, val float64) {
	box := qs.inbox[s]
	if box == nil {
		box = make(map[graph.VertexID]float64)
		qs.inbox[s] = box
	}
	if old, ok := box[v]; ok {
		box[v] = qs.prog.Combine(old, val)
	} else {
		box[v] = val
	}
}

// onBarrierReady releases (or defers) the next superstep of a query.
func (w *Worker) onBarrierReady(m *protocol.BarrierReady) error {
	qs, ok := w.queries[m.Q]
	if !ok {
		return fmt.Errorf("barrierReady for unknown query %d", m.Q)
	}
	qs.pending = m
	w.tryAdvance(m.Q, qs)
	return nil
}

// tryAdvance activates the pending release once all expected batches
// arrived, queueing the query's superstep for execution.
func (w *Worker) tryAdvance(q query.ID, qs *queryState) {
	m := qs.pending
	if m == nil {
		return
	}
	if !m.Drained && m.Expect > 0 && qs.recvBatches[m.Step-1] < m.Expect {
		return // batches still in flight
	}
	qs.pending = nil
	delete(qs.recvBatches, m.Step-1)
	qs.release = m
	qs.soloFrom = m.Step
	qs.step = m.Step
	w.ready = append(w.ready, q)
}

// onVertexBatch buffers remote messages and re-checks any deferred release.
func (w *Worker) onVertexBatch(m *protocol.VertexBatch) error {
	if m.Gen != w.gen {
		// A batch from before a recovery reset: its query state was
		// discarded everywhere and the flow counters restarted, so it must
		// neither deliver nor count.
		return nil
	}
	// Count the arrival unconditionally: the drain protocol accounts every
	// batch, whatever happens to its contents.
	w.recvTotals[m.From]++
	qs, ok := w.queries[m.Q]
	if !ok {
		if _, fin := w.finished[m.Q]; !fin {
			// The batch raced ahead of the ExecuteQuery broadcast on
			// another link; hold it until the query is known.
			w.early[m.Q] = append(w.early[m.Q], m)
		}
		// Batches of finished queries are obsolete: the controller only
		// finishes a query once no improving message can exist.
		w.checkDrain()
		return nil
	}
	w.deliverBatch(qs, m)
	w.tryAdvance(m.Q, qs)
	w.checkDrain()
	return nil
}

// deliverBatch merges a batch's entries into the query inbox.
func (w *Worker) deliverBatch(qs *queryState, m *protocol.VertexBatch) {
	qs.recvBatches[m.Step]++
	for _, e := range m.Entries {
		if w.ownerOf(qs, e.To) != w.id {
			// Should be impossible: ownership only changes while the
			// network is drained. Count and forward defensively.
			w.Forwarded++
			w.sendBatch(qs.spec.ID, m.Step, w.ownerOf(qs, e.To), []protocol.VertexMsg{e})
			continue
		}
		w.combineIn(qs, m.Step+1, e.To, e.Val)
	}
}

// onDeltaBatch applies one committed mutation batch. In the pipelined
// commit path it arrives off-barrier, between supersteps of whatever is
// running: that is safe because queries read their pinned snapshots, not
// this worker's current view, so a version bump mid-query is invisible to
// it. (The barrier-commit baseline delivers it mid-barrier as before —
// the handler no longer cares.) The event loop applies whole messages
// between supersteps, so the view still never changes mid-superstep. New
// vertices extend the ownership table with the controller-assigned
// owners; running queries pinned at older versions never reference them.
func (w *Worker) onDeltaBatch(m *protocol.DeltaBatch) error {
	if faultpoint.Hit(faultpoint.WorkerDeltaApply, int(w.id)) {
		return faultpoint.ErrKilled
	}
	if m.Version == w.view.Version() {
		// Already applied: the commit was aborted by a worker failure after
		// this replica applied it, and the recovery rolled the batch back
		// everywhere it could — a replica that raced the rollback re-acks
		// the retry idempotently instead of double-applying.
		return w.conn.Send(protocol.ControllerNode, &protocol.DeltaAck{Version: m.Version, W: w.id})
	}
	nv, _, err := w.view.Apply(m.Ops)
	if err != nil {
		return fmt.Errorf("delta batch %d: %w", m.Version, err)
	}
	if nv.Version() != m.Version {
		return fmt.Errorf("delta batch version %d applied as local version %d (replica divergence)",
			m.Version, nv.Version())
	}
	// Keep the pre-apply view for recovery rollback: if a worker dies
	// before every replica acks a barrier-mode commit, the batch is
	// aborted and re-committed deterministically after recovery. (The
	// pipelined path never rolls back — batches are durable before they
	// are broadcast.)
	w.prevView = w.view
	w.view = nv
	w.views.Publish(nv)
	w.owner = append(w.owner, m.NewOwners...)
	if len(w.owner) != nv.NumVertices() {
		return fmt.Errorf("delta batch %d: ownership covers %d of %d vertices",
			m.Version, len(w.owner), nv.NumVertices())
	}
	if faultpoint.Hit(faultpoint.WorkerDeltaAck, int(w.id)) {
		return faultpoint.ErrKilled
	}
	return w.conn.Send(protocol.ControllerNode, &protocol.DeltaAck{Version: m.Version, W: w.id})
}

// View exposes the worker's current graph view (tests assert version and
// topology convergence).
func (w *Worker) View() *delta.View { return w.view }

// onGlobalStop acknowledges the STOP barrier with cumulative send counters.
// The controller quiesces all queries before stopping, so the ready queue
// is empty here; any stragglers are drained first (with the stopping flag
// set they report out after one superstep), keeping the counters complete.
func (w *Worker) onGlobalStop(m *protocol.GlobalStop) error {
	w.stopping = true
	w.stopEpoch = m.Epoch
	w.arrived = make(map[graph.VertexID]bool)
	for len(w.ready) > 0 {
		if err := w.runReady(); err != nil {
			return err
		}
	}
	if faultpoint.Hit(faultpoint.WorkerBarrierStop, int(w.id)) {
		return faultpoint.ErrKilled
	}
	totals := make([]uint64, w.k)
	copy(totals, w.sentTotals)
	return w.conn.Send(protocol.ControllerNode, &protocol.StopAck{
		Epoch: m.Epoch, W: w.id, SentTotals: totals,
	})
}

// checkDrain answers a pending DrainCheck once every expected message has
// arrived (vertex batches, or scope transfers when the check's Scope flag
// is set).
func (w *Worker) checkDrain() {
	m := w.pendingDrain
	if m == nil {
		return
	}
	have := w.recvTotals
	if m.Scope {
		have = w.scopeRecvTotals
	}
	for src, want := range m.ExpectRecv {
		if have[src] < want {
			return
		}
	}
	w.pendingDrain = nil
	w.conn.Send(protocol.ControllerNode, &protocol.DrainAck{Epoch: m.Epoch, W: w.id})
}

// onFinish drops a query's live state, keeping its vertex set for future
// scope moves, and reports final statistics.
func (w *Worker) onFinish(m *protocol.QueryFinish) error {
	now := w.cfg.Clock()
	w.finished[m.Q] = now
	delete(w.early, m.Q)
	qs, ok := w.queries[m.Q]
	if !ok {
		return nil
	}
	verts := make(map[graph.VertexID]bool, len(qs.data))
	for v := range qs.data {
		verts[v] = true
	}
	inter := w.intersections(m.Q, qs)
	delete(w.queries, m.Q)
	w.views.Unpin(qs.spec.PinVersion)
	if len(verts) > 0 {
		w.done[m.Q] = &finishedScope{verts: verts, sig: qs.sig, at: now}
	}
	w.pruneDone(now)
	return w.conn.Send(protocol.ControllerNode, &protocol.BarrierSynch{
		Q: m.Q, W: w.id,
		ScopeSize:     int32(len(verts)),
		BestGoal:      qs.bestGoal,
		MinFrontier:   query.NoResult,
		Intersections: inter,
		Finished:      true,
	})
}

// pruneDone expires finished scopes and finished-id markers beyond the
// monitoring window.
func (w *Worker) pruneDone(now time.Time) {
	for q, fs := range w.done {
		if now.Sub(fs.at) > w.cfg.ScopeTTL {
			delete(w.done, q)
		}
	}
	for q, at := range w.finished {
		if now.Sub(at) > w.cfg.ScopeTTL {
			delete(w.finished, q)
		}
	}
}

// intersections estimates |LS(q) ∩ LS(q2)| against every other query on
// this worker — live ones and the remembered scopes of finished ones — the
// worker-side transformation of low-level vertex knowledge into the
// high-level intersection function Iw of Sec. 3.4. Including finished
// scopes matters: queries of the same hotspot rarely overlap in time, and
// it is exactly these temporal chains that let Q-cut's clustering move a
// hotspot as one unit.
func (w *Worker) intersections(q query.ID, qs *queryState) []protocol.IntersectionStat {
	var out []protocol.IntersectionStat
	for q2, qs2 := range w.queries {
		if q2 == q {
			continue
		}
		if shared := sigOverlap(qs.sig, qs2.sig); shared > 0 {
			out = append(out, protocol.IntersectionStat{Q1: q, Q2: q2, Shared: shared})
		}
	}
	for q2, fs := range w.done {
		if q2 == q {
			continue
		}
		if shared := sigOverlap(qs.sig, fs.sig); shared > 0 {
			out = append(out, protocol.IntersectionStat{Q1: q, Q2: q2, Shared: shared})
		}
	}
	return out
}
