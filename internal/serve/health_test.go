package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qgraph/internal/core"
	"qgraph/internal/faultpoint"
	"qgraph/internal/obs"
	"qgraph/internal/obs/health"
)

// getJSON decodes a GET response body into out and returns the status.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestStragglerWatchdogEndToEnd injects a deterministically slow worker
// through the compute-slow faultpoint and asserts the whole detection
// path: /healthz flips to degraded naming the straggler, /events records
// the detection, the flight recorder captures a bundle with the
// per-worker compute table, and clearing the fault restores ok.
func TestStragglerWatchdogEndToEnd(t *testing.T) {
	net := testRoad(t)
	o := obs.New(nil)
	mon := health.New(health.Config{
		StragglerFactor:  3,
		StragglerSteps:   3,
		IncidentCooldown: 50 * time.Millisecond,
		SLOTarget:        time.Nanosecond, // every request misses: tenant burn must show
	}, o)
	eng, err := core.Start(core.Config{
		Workers: 4, Graph: net.G,
		Obs: o, Monitor: mon,
	})
	if err != nil {
		t.Fatalf("core.Start: %v", err)
	}
	defer eng.Close()
	srv, err := New(Config{Backend: eng.Controller(), GraphID: 7, Obs: o, Monitor: mon})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Worker 0 sleeps 5ms inside every measured superstep window — far
	// over both its peers and the detector's 1ms absolute floor.
	disarm := faultpoint.Arm(faultpoint.WorkerComputeSlow, func(args ...int) bool {
		if len(args) > 0 && args[0] == 0 {
			time.Sleep(5 * time.Millisecond)
		}
		return false
	})
	defer disarm()

	n := int64(net.G.NumVertices())
	next := int64(0)
	drive := func() {
		// Distinct endpoints every call so the result cache never absorbs
		// the query before it reaches the engine.
		src := next % n
		dst := (next*7 + 13) % n
		next++
		code, _, _ := postQuery(t, ts.URL, QueryRequest{
			Kind: "sssp", Source: src, Target: target(dst), Tenant: "acme",
		})
		if code != 200 {
			t.Fatalf("query %d: status %d", next, code)
		}
	}

	var hz healthzResponse
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("straggler never detected; last /healthz: %+v, compute table: %+v",
				hz, mon.ComputeTable())
		}
		drive()
		code := getJSON(t, ts.URL+"/healthz", &hz)
		if hz.Status == "degraded" {
			if code != http.StatusServiceUnavailable {
				t.Fatalf("degraded /healthz returned %d, want 503", code)
			}
			break
		}
	}
	if len(hz.Stragglers) != 1 || hz.Stragglers[0] != 0 {
		t.Fatalf("/healthz stragglers = %v, want [0]", hz.Stragglers)
	}
	if len(hz.ActiveIncidents) == 0 {
		t.Fatalf("/healthz active incidents empty: %+v", hz)
	}

	// The detection is on the event timeline, filterable by type.
	var evs eventsResponse
	getJSON(t, ts.URL+"/events?type=event_straggler", &evs)
	if len(evs.Events) == 0 || evs.Events[0].Worker != 0 {
		t.Fatalf("/events?type=event_straggler = %+v", evs.Events)
	}

	// The flight recorder captured a bundle carrying the per-worker
	// compute table that names the straggler.
	var inc health.Incident
	if code := getJSON(t, ts.URL+"/debug/incident/latest", &inc); code != 200 {
		t.Fatalf("/debug/incident/latest: status %d", code)
	}
	if inc.Trigger.Type != health.EventStraggler || !inc.Open {
		t.Fatalf("incident trigger = %+v open=%v", inc.Trigger, inc.Open)
	}
	if len(inc.Workers) != 4 || !inc.Workers[0].Straggler {
		t.Fatalf("incident compute table = %+v", inc.Workers)
	}
	if inc.Goroutines == "" || len(inc.Events) == 0 {
		t.Fatalf("incident bundle incomplete: %d events, %d goroutine bytes",
			len(inc.Events), len(inc.Goroutines))
	}

	// Per-tenant SLO accounting saw the tenant's traffic; with a
	// nanosecond target every request burns budget.
	var slo health.SLOView
	getJSON(t, ts.URL+"/slo", &slo)
	acme, ok := slo.Tenants["acme"]
	if !ok || acme.Requests == 0 {
		t.Fatalf("/slo tenants = %+v, want acme with traffic", slo.Tenants)
	}
	if acme.BurnRate <= 0 {
		t.Fatalf("acme burn rate = %v, want > 0 at a nanosecond target", acme.BurnRate)
	}

	// Tenant-filtered trace listing only returns acme traces.
	var traced []tracedQuery
	getJSON(t, ts.URL+"/traces?tenant=acme&slowest=5", &traced)
	if len(traced) == 0 {
		t.Fatal("/traces?tenant=acme returned nothing")
	}
	for _, tq := range traced {
		if got, _ := tq.Trace.Root.Attrs["tenant"].(string); got != "acme" {
			t.Fatalf("tenant filter leaked trace with tenant %q", got)
		}
	}
	getJSON(t, ts.URL+"/traces?tenant=nobody", &traced)
	if len(traced) != 0 {
		t.Fatalf("/traces?tenant=nobody returned %d traces", len(traced))
	}

	// Clear the fault: after m healthy supersteps the watchdog recovers
	// the worker and /healthz returns to ok.
	disarm()
	for {
		if time.Now().After(deadline) {
			t.Fatalf("straggler never cleared; compute table: %+v", mon.ComputeTable())
		}
		drive()
		hz = healthzResponse{} // omitempty fields would otherwise persist across decodes
		code := getJSON(t, ts.URL+"/healthz", &hz)
		if hz.Status == "ok" {
			if code != http.StatusOK {
				t.Fatalf("ok /healthz returned %d", code)
			}
			break
		}
	}
	if len(hz.Stragglers) != 0 {
		t.Fatalf("recovered /healthz still lists stragglers: %v", hz.Stragglers)
	}
	var clear eventsResponse
	getJSON(t, ts.URL+"/events?type=event_straggler_clear", &clear)
	if len(clear.Events) == 0 {
		t.Fatal("no straggler-clear event on the timeline")
	}
	var refs incidentsResponse
	getJSON(t, ts.URL+"/debug/incidents", &refs)
	if len(refs.Incidents) == 0 || refs.Incidents[0].Open {
		t.Fatalf("incident not closed after recovery: %+v", refs.Incidents)
	}
}

// TestEventsEndpointValidation covers the /events and /debug/incident
// parameter edges against a server with a monitor that saw no traffic.
func TestHealthEndpointsValidation(t *testing.T) {
	o := obs.New(nil)
	mon := health.New(health.Config{}, o)
	srv, err := New(Config{Backend: newStubBackend(), GraphID: 1, Obs: o, Monitor: mon})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var evs eventsResponse
	if code := getJSON(t, ts.URL+"/events", &evs); code != 200 || evs.Events == nil {
		t.Fatalf("/events = %d %+v, want 200 with empty list", code, evs)
	}
	if code := getJSON(t, ts.URL+"/events?severity=loud", nil); code != 400 {
		t.Fatalf("bad severity: %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/events?n=-1", nil); code != 400 {
		t.Fatalf("bad n: %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/debug/incident/latest", nil); code != 404 {
		t.Fatalf("latest with no incidents: %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/debug/incident/zzz", nil); code != 400 {
		t.Fatalf("bad incident id: %d, want 400", code)
	}
	var slo health.SLOView
	if code := getJSON(t, ts.URL+"/slo", &slo); code != 200 || slo.Tenants == nil {
		t.Fatalf("/slo = %d %+v", code, slo)
	}
	mon.Record(health.EventSnapshotCut, health.SevInfo, -1, "cut", nil)
	mon.Record(health.EventWorkerDead, health.SevWarn, 2, "gone", nil)
	if getJSON(t, ts.URL+"/events?severity=warn", &evs); len(evs.Events) != 1 {
		t.Fatalf("severity filter over HTTP = %+v", evs.Events)
	}
	if getJSON(t, fmt.Sprintf("%s/events?type=%s", ts.URL, health.EventSnapshotCut), &evs); len(evs.Events) != 1 {
		t.Fatalf("type filter over HTTP = %+v", evs.Events)
	}
}
