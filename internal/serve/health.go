package serve

import (
	"net/http"
	"strconv"

	"qgraph/internal/obs/health"
)

// This file serves the active health layer's HTTP surfaces: the bounded
// structured event log, per-tenant SLO accounting, and the incident
// flight recorder. All endpoints degrade gracefully to empty responses
// when no Monitor is wired in, so probes and dashboards need no
// deployment-mode branching.

// eventsResponse is the GET /events body.
type eventsResponse struct {
	Events []health.Event `json:"events"`
}

// handleEvents lists health events newest-first.
//
//	?type=event_straggler   only this event type
//	?severity=warn          this severity or above (info|warn|critical)
//	?n=50                   at most n events (default 100)
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	f := health.EventFilter{Type: r.URL.Query().Get("type")}
	switch sev := r.URL.Query().Get("severity"); sev {
	case "", "info":
	case "warn":
		f.MinSeverity = health.SevWarn
	case "critical":
		f.MinSeverity = health.SevCritical
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad severity (want info|warn|critical)"})
		return
	}
	if raw := r.URL.Query().Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad n"})
			return
		}
		f.Limit = n
	}
	events := s.cfg.Monitor.Events(f)
	if events == nil {
		events = []health.Event{}
	}
	writeJSON(w, http.StatusOK, eventsResponse{Events: events})
}

// handleSLO reports per-tenant SLO accounting: latency quantiles,
// goodput, and error-budget burn against the configured target.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	v := s.cfg.Monitor.SLOReport()
	if v.Tenants == nil {
		v.Tenants = map[string]health.TenantSLOView{}
	}
	writeJSON(w, http.StatusOK, v)
}

// handleIncident serves one flight-recorder bundle by id; "latest"
// returns the newest retained bundle.
func (s *Server) handleIncident(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	var id int64
	if raw != "latest" {
		var err error
		id, err = strconv.ParseInt(raw, 10, 64)
		if err != nil || id <= 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: `bad incident id (a positive integer or "latest")`})
			return
		}
	}
	inc, ok := s.cfg.Monitor.Incident(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such incident (the ring retains a bounded number)"})
		return
	}
	writeJSON(w, http.StatusOK, inc)
}

// incidentsResponse is the GET /debug/incidents body.
type incidentsResponse struct {
	Incidents []health.IncidentRef `json:"incidents"`
}

// handleIncidents lists retained incident bundles newest-first.
func (s *Server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	refs := s.cfg.Monitor.Incidents()
	if refs == nil {
		refs = []health.IncidentRef{}
	}
	writeJSON(w, http.StatusOK, incidentsResponse{Incidents: refs})
}
