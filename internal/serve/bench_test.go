package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"qgraph/internal/obs"
)

// benchQuery drives POST /query through the full handler stack (decode,
// cache, admission, respond) with an in-memory recorder — the server-side
// cost of one request, no network. The traced/untraced pair bounds the
// per-request price of tracing on the cache-hit fast path, which is what
// the BENCH read_only vs read_only_notrace comparison measures end to end.
func benchQuery(b *testing.B, cfg func(*Config)) {
	s, err := New(func() Config {
		c := Config{Backend: newStubBackend(), GraphID: 1}
		if cfg != nil {
			cfg(&c)
		}
		return c
	}())
	if err != nil {
		b.Fatalf("serve.New: %v", err)
	}
	h := s.Handler()
	body, _ := json.Marshal(QueryRequest{Kind: "sssp", Source: 3, Target: target(5)})

	warm := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	warm.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, warm)
	if w.Code != http.StatusOK {
		b.Fatalf("warmup: %d %s", w.Code, w.Body.String())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("request %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
}

func BenchmarkQueryCacheHitNoTrace(b *testing.B) {
	benchQuery(b, func(c *Config) { c.NoTrace = true })
}

func BenchmarkQueryCacheHitTraced(b *testing.B) {
	benchQuery(b, func(c *Config) { c.Obs = obs.New(nil) })
}
