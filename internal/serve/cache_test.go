package serve

import (
	"errors"
	"testing"
	"time"

	"qgraph/internal/graph"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
)

func okOutcome(v float64) Outcome {
	return Outcome{Value: v, Reason: protocol.FinishConverged, Supersteps: 3}
}

func testKey(i int) Key {
	return Key{Kind: query.KindSSSP, Source: 1, Target: graph.VertexID(i)}
}

func TestCacheHitAndMiss(t *testing.T) {
	c := NewCache(8, time.Minute, nil)
	k := testKey(2)
	_, f, st := c.Begin(k)
	if st != BeginLead {
		t.Fatalf("first Begin: state %v, want lead", st)
	}
	c.Complete(f, okOutcome(42), nil)
	out, _, st := c.Begin(k)
	if st != BeginHit || out.Value != 42 {
		t.Fatalf("second Begin: state %v value %v, want hit 42", st, out.Value)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit 1 miss 1 entry", s)
	}
}

func TestCacheCoalescing(t *testing.T) {
	c := NewCache(8, time.Minute, nil)
	k := testKey(3)
	_, lead, st := c.Begin(k)
	if st != BeginLead {
		t.Fatalf("leader state %v", st)
	}
	_, join, st := c.Begin(k)
	if st != BeginJoin {
		t.Fatalf("follower state %v, want join", st)
	}
	select {
	case <-join.Done():
		t.Fatal("flight done before completion")
	default:
	}
	c.Complete(lead, okOutcome(7), nil)
	<-join.Done()
	out, err := join.Result()
	if err != nil || out.Value != 7 {
		t.Fatalf("joined result %v err %v, want 7", out.Value, err)
	}
}

func TestCacheLeaderErrorPropagates(t *testing.T) {
	c := NewCache(8, time.Minute, nil)
	k := testKey(4)
	_, lead, _ := c.Begin(k)
	_, join, st := c.Begin(k)
	if st != BeginJoin {
		t.Fatalf("state %v, want join", st)
	}
	boom := errors.New("boom")
	c.Complete(lead, Outcome{}, boom)
	<-join.Done()
	if _, err := join.Result(); !errors.Is(err, boom) {
		t.Fatalf("joined err %v, want boom", err)
	}
	// Errors must not be cached; the next Begin leads again.
	if _, _, st := c.Begin(k); st != BeginLead {
		t.Fatalf("state after error %v, want lead", st)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := NewCache(8, 10*time.Second, clock)
	k := testKey(5)
	_, f, _ := c.Begin(k)
	c.Complete(f, okOutcome(1), nil)
	now = now.Add(11 * time.Second)
	if _, _, st := c.Begin(k); st != BeginLead {
		t.Fatalf("state after TTL %v, want lead (expired)", st)
	}
}

// TestCacheExpirySweep: expired entries must leave the cache without
// their exact keys being looked up again — under a shifting key
// population they would otherwise occupy LRU capacity until displaced.
func TestCacheExpirySweep(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := NewCache(64, 10*time.Second, clock)
	for i := 0; i < 8; i++ {
		_, f, _ := c.Begin(testKey(i))
		c.Complete(f, okOutcome(float64(i)), nil)
	}
	if s := c.Stats(); s.Entries != 8 {
		t.Fatalf("entries %d, want 8", s.Entries)
	}
	// Touch an old key so LRU order diverges from insertion/expiry order —
	// the sweep must not rely on the back of the list being oldest.
	if _, _, st := c.Begin(testKey(0)); st != BeginHit {
		t.Fatal("warm hit expected")
	}

	now = now.Add(11 * time.Second)
	// No put, no lookups of the expired keys: the Stats-side sweep alone
	// must shed every expired entry.
	if s := c.Stats(); s.Entries != 0 || s.Swept != 8 {
		t.Fatalf("after TTL: entries %d swept %d, want 0 and 8", s.Entries, s.Swept)
	}

	// A put also piggybacks the sweep: refill, expire, insert one fresh
	// key — the fresh key must be the only survivor.
	for i := 0; i < 8; i++ {
		_, f, _ := c.Begin(testKey(i))
		c.Complete(f, okOutcome(float64(i)), nil)
	}
	now = now.Add(11 * time.Second)
	_, f, _ := c.Begin(testKey(100))
	c.Complete(f, okOutcome(100), nil)
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("after put-side sweep: entries %d, want 1", s.Entries)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2, time.Minute, nil)
	for i := 0; i < 3; i++ {
		_, f, _ := c.Begin(testKey(i))
		c.Complete(f, okOutcome(float64(i)), nil)
	}
	if _, _, st := c.Begin(testKey(0)); st != BeginLead {
		t.Fatal("oldest entry should have been evicted")
	}
	// Abort the led flight so it does not linger.
	_, f, _ := c.Begin(testKey(1))
	if f != nil {
		t.Fatal("expected hit for recent key")
	}
}

func TestCacheEpochFlush(t *testing.T) {
	c := NewCache(8, time.Minute, nil)
	k := testKey(6)
	_, f, _ := c.Begin(k)
	c.Complete(f, okOutcome(9), nil)
	if c.SetEpoch(Epoch{Repartition: 0}) {
		t.Fatal("same epoch must not flush")
	}
	if !c.SetEpoch(Epoch{Repartition: 1}) {
		t.Fatal("new epoch must flush")
	}
	if _, _, st := c.Begin(k); st != BeginLead {
		t.Fatal("entry survived epoch flush")
	}
	// A flight led under the old epoch must not store into the new one,
	// and post-flush requests must not coalesce onto it either.
	_, f2, _ := c.Begin(testKey(7))
	c.SetEpoch(Epoch{Repartition: 2})
	_, fNew, st := c.Begin(testKey(7))
	if st != BeginLead {
		t.Fatal("post-flush request joined a pre-epoch flight")
	}
	// The stale leader finishing must neither store nor displace the
	// fresh flight for the same key.
	c.Complete(f2, okOutcome(1), nil)
	if _, _, st := c.Begin(testKey(7)); st != BeginJoin {
		t.Fatal("fresh flight lost when the stale leader completed")
	}
	c.Complete(fNew, okOutcome(2), nil)
	if out, _, st := c.Begin(testKey(7)); st != BeginHit || out.Value != 2 {
		t.Fatalf("fresh-epoch result not stored (state %v, value %v)", st, out.Value)
	}
}

func TestCacheEpochNeverRegresses(t *testing.T) {
	c := NewCache(8, time.Minute, nil)
	if !c.SetEpoch(Epoch{Repartition: 3}) && c.Stats().Epoch.Repartition != 3 {
		t.Fatal("epoch did not advance")
	}
	_, f, _ := c.Begin(testKey(1))
	c.Complete(f, okOutcome(5), nil)
	// A stale reader racing a fresher request must not flush or regress.
	if c.SetEpoch(Epoch{Repartition: 2}) {
		t.Fatal("stale epoch flushed the cache")
	}
	if _, _, st := c.Begin(testKey(1)); st != BeginHit {
		t.Fatal("entry lost to a stale epoch reader")
	}
	if got := c.Stats().Epoch.Repartition; got != 3 {
		t.Fatalf("epoch regressed to %d", got)
	}
	// A different graph id alone must not supersede either: ids carry no
	// order, so only the monotone counters decide. With regressed counters
	// this is a stale reader, not a new base graph.
	if c.SetEpoch(Epoch{Graph: 9, Repartition: 0}) {
		t.Fatal("unordered graph-id change with stale counters flushed the cache")
	}
	// With counter progress the transition lands (and flushes).
	if !c.SetEpoch(Epoch{Graph: 9, Repartition: 4}) {
		t.Fatal("graph change with counter progress did not flush")
	}
}

// TestCacheEpochGraphSwapNoPingPong is the regression for two requests
// racing across a base-graph swap: epochs that differ only in the
// (unordered) graph id must not alternately supersede each other — that
// would flush the cache on every request, forever.
func TestCacheEpochGraphSwapNoPingPong(t *testing.T) {
	c := NewCache(8, time.Minute, nil)
	c.SetEpoch(Epoch{Graph: 1, Version: 5}) // no flush reported: cache still empty
	if got := c.Stats().Epoch; got.Graph != 1 || got.Version != 5 {
		t.Fatalf("first epoch did not land: %+v", got)
	}
	_, f, _ := c.Begin(testKey(1))
	c.Complete(f, okOutcome(1), nil)

	// A racing reader carrying the other graph id at the same counters:
	// one-way — the incumbent keeps the cache, no flush ping-pong.
	for i := 0; i < 4; i++ {
		if c.SetEpoch(Epoch{Graph: 2, Version: 5}) {
			t.Fatal("same-counter graph swap flushed the cache")
		}
		if c.SetEpoch(Epoch{Graph: 1, Version: 5}) {
			t.Fatal("ping-pong back to the incumbent flushed the cache")
		}
	}
	if _, _, st := c.Begin(testKey(1)); st != BeginHit {
		t.Fatal("cached entry lost to a graph-id ping-pong")
	}
	if c.Stats().Flushes != 0 {
		t.Fatalf("%d flushes during the ping-pong, want 0", c.Stats().Flushes)
	}

	// A genuine swap comes with version progress and supersedes once.
	if !c.SetEpoch(Epoch{Graph: 2, Version: 6}) {
		t.Fatal("graph swap with version progress did not flush")
	}
	if c.SetEpoch(Epoch{Graph: 1, Version: 5}) {
		t.Fatal("stale pre-swap epoch regressed the cache")
	}
}

func TestCachePeek(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := NewCache(8, 10*time.Second, clock)
	if c.Peek(testKey(1)) {
		t.Fatal("peek hit on empty cache")
	}
	_, f, _ := c.Begin(testKey(1))
	if !c.Peek(testKey(1)) {
		t.Fatal("peek missed an in-flight computation")
	}
	c.Complete(f, okOutcome(1), nil)
	if !c.Peek(testKey(1)) {
		t.Fatal("peek missed a stored result")
	}
	now = now.Add(11 * time.Second)
	if c.Peek(testKey(1)) {
		t.Fatal("peek hit an expired entry")
	}
}

func TestCacheDoesNotStoreUncacheable(t *testing.T) {
	c := NewCache(8, time.Minute, nil)
	k := testKey(8)
	_, f, _ := c.Begin(k)
	c.Complete(f, Outcome{Value: 1, Reason: protocol.FinishCancelled}, nil)
	if _, _, st := c.Begin(k); st != BeginLead {
		t.Fatal("cancelled outcome was cached")
	}
}

func TestKeyOfIgnoresIDAndHome(t *testing.T) {
	a := query.Spec{ID: 1, Kind: query.KindBFS, Source: 3, Target: 4}
	b := query.Spec{ID: 99, Kind: query.KindBFS, Source: 3, Target: 4}
	b.SetHome(2)
	if KeyOf(a) != KeyOf(b) {
		t.Fatal("cache key must ignore query ID and home pinning")
	}
}
