package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"qgraph/internal/core"
	"qgraph/internal/faultpoint"
	"qgraph/internal/graph"
	"qgraph/internal/obs"
	"qgraph/internal/partition"
)

// recoverEngine starts a 3-worker engine tuned for fast failure
// detection, instrumented with o (nil disables observability).
func recoverEngine(t *testing.T, o *obs.Obs) (*core.Engine, *graph.Graph) {
	t.Helper()
	b := graph.NewBuilder(32)
	for v := 0; v+1 < 32; v++ {
		b.AddBiEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	g := b.MustBuild()
	eng, err := core.Start(core.Config{
		Workers: 3, Graph: g, Partitioner: partition.Hash{},
		CheckEvery:       time.Millisecond,
		CommitEvery:      5 * time.Millisecond,
		HeartbeatEvery:   5 * time.Millisecond,
		HeartbeatTimeout: 30 * time.Millisecond,
		Obs:              o,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, g
}

// TestHealthzRecoversFromWorkerDeath is the regression test for the
// one-way degraded /healthz: a worker death must take the endpoint from
// "ok" through recovery back to "ok" (with the lost worker listed), while
// every query served through the window returns 200 — no worker_lost ever
// reaches a client. /stats must expose the recovery counters.
func TestHealthzRecoversFromWorkerDeath(t *testing.T) {
	defer faultpoint.Reset()
	eng, _ := recoverEngine(t, nil)
	defer eng.Close()
	srv, err := New(Config{Backend: eng.Controller(), GraphID: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	healthz := func() (int, healthzResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h healthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	if code, h := healthz(); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("pre-failure healthz = %d %+v", code, h)
	}

	fired, disarm := faultpoint.KillOnce(faultpoint.WorkerSuperstep, 1)
	defer disarm()

	// Drive queries through the kill and the recovery window; every one
	// must come back 200 with the right distance (NoCache so each one
	// exercises the engine, not the result cache).
	var wg sync.WaitGroup
	post := func(src, dst int64) {
		defer wg.Done()
		body, _ := json.Marshal(QueryRequest{Kind: "sssp", Source: src, Target: &dst, NoCache: true})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("query: %v", err)
			return
		}
		defer resp.Body.Close()
		var qr QueryResponse
		var raw bytes.Buffer
		if resp.StatusCode != http.StatusOK {
			raw.ReadFrom(resp.Body)
			t.Errorf("query %d->%d: HTTP %d %s", src, dst, resp.StatusCode, raw.String())
			return
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		if qr.Value == nil || *qr.Value != float64(dst-src) {
			t.Errorf("query %d->%d = %v, want %d", src, dst, qr.Value, dst-src)
		}
	}
	for wave := 0; wave < 3; wave++ {
		for i := int64(0); i < 4; i++ {
			wg.Add(1)
			go post(i, 31-i)
		}
		time.Sleep(15 * time.Millisecond)
	}
	wg.Wait()
	select {
	case <-fired:
	default:
		t.Fatal("fault point never fired")
	}

	// The endpoint must come back to "ok" — recovery is not one-way
	// degradation — with the lost worker still visible.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, h := healthz()
		if code == http.StatusOK && h.Status == "ok" && h.Recoveries >= 1 {
			if len(h.DeadWorkers) != 1 || h.DeadWorkers[0] != 1 {
				t.Fatalf("healthz after recovery = %+v, want dead worker 1 listed", h)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never recovered: %d %+v", code, h)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Recovery counters in /stats.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Recovery.Recoveries < 1 || st.Recovery.Handoffs < 1 {
		t.Fatalf("stats recovery = %+v, want a recorded handoff episode", st.Recovery)
	}
	if st.Recovery.LastRecoveryMS <= 0 {
		t.Fatalf("stats recovery duration %v, want > 0", st.Recovery.LastRecoveryMS)
	}
	if st.Engine.Degraded {
		t.Fatalf("stats engine still degraded: %+v", st.Engine)
	}
}
