package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionImmediateGrant(t *testing.T) {
	a := NewAdmission(AdmitConfig{MaxInFlight: 2, MaxQueue: 2}, nil)
	rel1, wait, err := a.Acquire(context.Background(), "t")
	if err != nil || wait != 0 {
		t.Fatalf("first acquire: wait %v err %v", wait, err)
	}
	rel2, _, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if s := a.Stats(); s.InFlight != 2 || s.Queued != 0 {
		t.Fatalf("stats %+v, want 2 in flight", s)
	}
	rel1()
	rel2()
	if s := a.Stats(); s.InFlight != 0 {
		t.Fatalf("stats after release %+v, want 0 in flight", s)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := NewAdmission(AdmitConfig{MaxInFlight: 1, MaxQueue: 1}, nil)
	rel, _, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// One waiter fits in the queue.
	queued := make(chan struct{})
	go func() {
		r, _, err := a.Acquire(context.Background(), "t")
		if err == nil {
			defer r()
		}
		close(queued)
	}()
	waitFor(t, func() bool { return a.Stats().Queued == 1 })
	// The next one must be rejected immediately.
	if _, _, err := a.Acquire(context.Background(), "t"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err %v, want ErrQueueFull", err)
	}
	rel()
	<-queued
}

func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	a := NewAdmission(AdmitConfig{MaxInFlight: 1, MaxQueue: 4}, nil)
	rel, _, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := a.Acquire(ctx, "t"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want deadline exceeded", err)
	}
	if s := a.Stats(); s.Queued != 0 {
		t.Fatalf("abandoned waiter still queued: %+v", s)
	}
	// The expired waiter is removed from the tenant queue eagerly and must
	// not count against the per-tenant bound (MaxQueue 4 → cap 1 here):
	// the tenant can queue again immediately.
	if a.Full("t") {
		t.Fatal("Full reports tenant at cap counting a cancelled waiter")
	}
	ok := make(chan error, 1)
	go func() {
		r, _, err := a.Acquire(context.Background(), "t")
		if err == nil {
			r()
		}
		ok <- err
	}()
	waitFor(t, func() bool { return a.Stats().Queued == 1 })
	// The abandoned waiter must not absorb the next free slot.
	rel()
	if err := <-ok; err != nil {
		t.Fatalf("re-queue after own timeout: %v", err)
	}
	if _, _, err := a.Acquire(context.Background(), "t"); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

// TestAdmissionPerTenantBound checks one tenant cannot fill the global
// queue: its excess is rejected while another tenant still gets in.
func TestAdmissionPerTenantBound(t *testing.T) {
	a := NewAdmission(AdmitConfig{MaxInFlight: 1, MaxQueue: 8, MaxQueuePerTenant: 2}, nil)
	rel, _, err := a.Acquire(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, _, err := a.Acquire(context.Background(), "hog")
			if err != nil {
				t.Errorf("queued hog waiter: %v", err)
				return
			}
			r()
		}()
	}
	waitFor(t, func() bool { return a.Stats().Queued == 2 })
	// The hog is at its per-tenant bound despite global queue space left.
	if _, _, err := a.Acquire(context.Background(), "hog"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("hog's 3rd waiter: err %v, want ErrQueueFull", err)
	}
	// Another tenant still gets a queue slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, _, err := a.Acquire(context.Background(), "polite")
		if err != nil {
			t.Errorf("polite tenant rejected: %v", err)
			return
		}
		r()
	}()
	waitFor(t, func() bool { return a.Stats().Queued == 3 })
	rel()
	wg.Wait()
}

// TestAdmissionWeightedFairness floods one slot from two tenants with a
// 3:1 weight ratio and checks grants split roughly proportionally.
func TestAdmissionWeightedFairness(t *testing.T) {
	a := NewAdmission(AdmitConfig{
		MaxInFlight: 1, MaxQueue: 1000,
		Weights: map[string]float64{"gold": 3, "bronze": 1},
	}, nil)
	hold, _, err := a.Acquire(context.Background(), "warm")
	if err != nil {
		t.Fatal(err)
	}

	const perTenant = 40
	counts := make(map[string]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	order := make([]string, 0, 2*perTenant)
	for _, tenant := range []string{"gold", "bronze"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				rel, _, err := a.Acquire(context.Background(), tenant)
				if err != nil {
					t.Errorf("acquire %s: %v", tenant, err)
					return
				}
				mu.Lock()
				counts[tenant]++
				order = append(order, tenant)
				mu.Unlock()
				rel()
			}(tenant)
		}
	}
	waitFor(t, func() bool { return a.Stats().Queued == 2*perTenant })
	hold()
	wg.Wait()

	// All waiters eventually drain; fairness shows in the grant order.
	// In the first 24 grants the 3:1 ratio should give gold ~18; allow
	// slack for the enqueue race before the queue was fully built.
	gold := 0
	for _, tenant := range order[:24] {
		if tenant == "gold" {
			gold++
		}
	}
	if gold < 14 || gold > 22 {
		t.Fatalf("gold got %d of the first 24 grants, want ~18 (3:1 weights)", gold)
	}
	if counts["gold"] != perTenant || counts["bronze"] != perTenant {
		t.Fatalf("not all waiters served: %v", counts)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
