package serve

import (
	"bufio"
	"net/http"
	"strconv"
	"time"

	"qgraph/internal/obs"
	"qgraph/internal/query"
	"qgraph/internal/snapshot"
)

// This file is the serving layer's share of the observability substrate
// (internal/obs): per-request trace creation (the root of the span tree
// the controller and workers extend via query.Spec.TraceID), the
// Prometheus-text /metrics endpoint, and the /trace//traces inspection
// API over the tracer's completed-trace ring.
//
// The /metrics instruments are func-backed readers of the exact atomics
// and snapshots /stats serializes (ServeCounters, Admission.Stats,
// Cache.Stats, the backend's snapshot/WAL/recovery accounting) — one
// source of truth, two renderings, no way to drift.

// registerMetrics wires the serving-layer instruments into the registry.
// Safe to call once per Server; instruments are idempotent per
// (name, labels), so servers sharing a registry coexist (first wins).
func (s *Server) registerMetrics() {
	m := s.obs.M()
	if m == nil {
		return
	}
	serveCtrs := []struct {
		name, help string
		read       func() int64
	}{
		{"qgraph_serve_received_total", "POST /query requests accepted for processing", s.ctr.Received.Load},
		{"qgraph_serve_completed_total", "queries answered with a result", s.ctr.Completed.Load},
		{"qgraph_serve_failed_total", "queries that ended in an engine error", s.ctr.Failed.Load},
		{"qgraph_serve_rejected_total", "admission rejections (429)", s.ctr.Rejected.Load},
		{"qgraph_serve_expired_total", "requests that hit their deadline (504)", s.ctr.Expired.Load},
		{"qgraph_cache_hits_total", "queries answered from the result cache", s.ctr.CacheHits.Load},
		{"qgraph_cache_misses_total", "result cache lookups that missed", s.ctr.CacheMisses.Load},
		{"qgraph_cache_coalesced_total", "requests that joined an identical in-flight query", s.ctr.Coalesced.Load},
		{"qgraph_cache_invalidations_total", "cache flushes at repartition or graph-version bumps", s.ctr.Invalidated.Load},
		{"qgraph_mutation_ops_total", "ops received on POST /mutate", s.ctr.MutationOps.Load},
		{"qgraph_mutation_batches_total", "client mutation batches committed", s.ctr.MutationBatches.Load},
		{"qgraph_mutations_failed_total", "mutation batches rejected, failed, or timed out", s.ctr.MutationsFailed.Load},
		{"qgraph_admission_wait_ns_total", "total admission queue wait", s.ctr.QueueWaitNanos.Load},
		{"qgraph_admission_waits_total", "admitted requests (queue wait samples)", s.ctr.QueueWaits.Load},
	}
	for _, c := range serveCtrs {
		read := c.read
		m.CounterFunc(c.name, "", c.help, func() float64 { return float64(read()) })
	}

	m.GaugeFunc("qgraph_admission_in_flight", "", "queries currently executing on the engine",
		func() float64 { return float64(s.admit.Stats().InFlight) })
	m.GaugeFunc("qgraph_admission_queued", "", "requests waiting in the admission queue",
		func() float64 { return float64(s.admit.Stats().Queued) })
	m.GaugeFunc("qgraph_cache_entries", "", "live result cache entries",
		func() float64 { return float64(s.cache.Stats().Entries) })
	m.GaugeFunc("qgraph_trace_ring_active", "", "traces currently open",
		func() float64 { a, _ := s.obs.T().Occupancy(); return float64(a) })
	m.GaugeFunc("qgraph_trace_ring_completed", "", "completed traces retained for /traces",
		func() float64 { _, c := s.obs.T().Occupancy(); return float64(c) })
	m.CounterFunc("qgraph_snapshots_skipped_corrupt_total", "",
		"snapshot files skipped as corrupt while loading the newest checkpoint",
		func() float64 { return float64(snapshot.SkippedCorrupt()) })
	if rep := s.cfg.Replication; rep != nil {
		m.GaugeFunc("qgraph_replica_applied_version", "", "committed graph version this replica has applied",
			func() float64 { return float64(rep().AppliedVersion) })
		m.GaugeFunc("qgraph_replica_wal_head", "", "primary WAL head version visible to this replica",
			func() float64 { return float64(rep().WALHead) })
		m.GaugeFunc("qgraph_replica_lag_versions", "", "versions this replica trails the primary WAL head by",
			func() float64 { return float64(rep().LagVersions) })
		m.CounterFunc("qgraph_replica_rebootstraps_total", "",
			"re-bootstraps from a newer checkpoint after the primary truncated past this replica's position",
			func() float64 { return float64(rep().Rebootstraps) })
		m.CounterFunc("qgraph_replica_tail_batches_total", "", "WAL batches applied from the tail",
			func() float64 { return float64(rep().TailBatches) })
	}

	s.reqSeconds = m.Histogram("qgraph_request_seconds", "", "end-to-end /query latency (all outcomes)", nil)
	s.engineSeconds = m.Histogram("qgraph_engine_seconds", "", "engine execution latency of completed queries", nil)
}

// beginTrace opens the root trace for one request and binds it to the
// query ID the controller will see; spec.TraceID carries the correlation
// to worker logs. A nonzero spec.TraceID (an inbound X-QGraph-Trace-ID,
// propagated by the router) is honored so this node's spans join the
// caller's tree. Returns nil when tracing is disabled.
func (s *Server) beginTrace(spec *query.Spec, tenant string) *obs.Trace {
	tr := s.tracer.BeginWithID("query", spec.TraceID)
	if tr == nil {
		return nil
	}
	spec.TraceID = tr.ID()
	root := tr.Root()
	root.SetAttr("kind", spec.Kind.String())
	root.SetAttr("tenant", tenant)
	root.SetAttr("query", int64(spec.ID))
	s.tracer.BindQuery(int64(spec.ID), tr)
	return tr
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	s.obs.M().WritePrometheus(bw)
	_ = bw.Flush()
}

// tracedQuery is the /trace and /traces response shape: the span tree
// plus its flattened phase attribution (share of wall time per phase).
type tracedQuery struct {
	Trace  obs.TraceView    `json:"trace"`
	Phases []obs.PhaseShare `json:"phases"`
}

// handleTrace serves GET /trace/{query_id}: the newest trace (completed
// preferred, else in flight) for that engine query id.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	q, err := strconv.ParseInt(r.PathValue("query_id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad query id"})
		return
	}
	v, ok := s.obs.T().Get(q)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no trace for query (evicted, untraced, or never ran)"})
		return
	}
	writeJSON(w, http.StatusOK, tracedQuery{Trace: v, Phases: obs.Attribute(v)})
}

// handleTraceByID serves GET /trace/by-id/{trace_id}: the newest trace
// carrying that propagated trace ID. This is the stitching fetch — the
// router knows the trace ID it propagated, never the node-local query
// ID, so /trace/{query_id} cannot serve it.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("trace_id"), 10, 64)
	if err != nil || id == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad trace id"})
		return
	}
	v, ok := s.obs.T().GetByTraceID(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no trace with that id (evicted, untraced, or never ran)"})
		return
	}
	writeJSON(w, http.StatusOK, tracedQuery{Trace: v, Phases: obs.Attribute(v)})
}

// handleTraces serves GET /traces?slowest=N: the N slowest completed
// traces in the retention ring, slowest first. Optional filters narrow
// the view before the N cutoff: ?tenant= keeps traces whose root span
// carries that tenant attribute, ?min_ms= keeps traces at least that
// slow.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 10
	if raw := r.URL.Query().Get("slowest"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad slowest= value"})
			return
		}
		n = v
	}
	tenant := r.URL.Query().Get("tenant")
	minMS := 0.0
	if raw := r.URL.Query().Get("min_ms"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad min_ms= value"})
			return
		}
		minMS = v
	}
	views := s.obs.T().Slowest(n)
	if tenant != "" || minMS > 0 {
		// Filters apply before the N cutoff: refetch the whole completed
		// ring so a filtered view isn't starved by unrelated slow traces.
		_, completed := s.obs.T().Occupancy()
		views = s.obs.T().Slowest(completed)
		kept := views[:0]
		for _, v := range views {
			if minMS > 0 && v.DurationMS < minMS {
				continue
			}
			if tenant != "" {
				t, _ := v.Root.Attrs["tenant"].(string)
				if t != tenant {
					continue
				}
			}
			kept = append(kept, v)
		}
		views = kept
		if len(views) > n {
			views = views[:n]
		}
	}
	out := make([]tracedQuery, len(views))
	for i, v := range views {
		out[i] = tracedQuery{Trace: v, Phases: obs.Attribute(v)}
	}
	writeJSON(w, http.StatusOK, out)
}

// observeRequest folds one finished /query request into the latency
// instruments (nil-safe when metrics are off).
func (s *Server) observeRequest(started time.Time, engine time.Duration, completed bool) {
	if s.reqSeconds == nil {
		return
	}
	s.reqSeconds.Observe(s.cfg.Clock().Sub(started).Seconds())
	if completed && engine > 0 {
		s.engineSeconds.Observe(engine.Seconds())
	}
}
