package serve

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/metrics"
	"qgraph/internal/obs"
	"qgraph/internal/obs/health"
	"qgraph/internal/query"
	recovery "qgraph/internal/recover"
	"qgraph/internal/snapshot"
	"qgraph/internal/wal"
)

// Backend is what the serving layer needs from the engine.
// *controller.Controller satisfies it (use core.Engine's Controller()).
type Backend interface {
	// Schedule submits a query; the result arrives on the channel.
	Schedule(spec query.Spec) (<-chan controller.Result, error)
	// Cancel abandons a scheduled query (best effort).
	Cancel(q query.ID)
	// RepartitionEpoch counts executed repartitioning barriers; a change
	// invalidates cached results.
	RepartitionEpoch() int64
	// GraphVersion counts committed mutation batches; a change invalidates
	// cached results (the streaming-update data plane).
	GraphVersion() uint64
	// GraphView returns a consistent snapshot of the current graph, used
	// to validate request specs (source/target ranges, POI tags).
	GraphView() graph.View
	// Mutate stages a batch of graph mutations; the result arrives once
	// the batch committed.
	Mutate(ops []delta.Op) (<-chan controller.MutationResult, error)
	// Health reports worker liveness for /healthz.
	Health() controller.Health
	// RecoveryStats reports worker-failure recovery counters for /stats.
	RecoveryStats() recovery.Stats
	// ForceSnapshot cuts a checkpoint of the committed graph and truncates
	// the committed-op log (POST /admin/snapshot).
	ForceSnapshot() (snapshot.Result, error)
	// SnapshotStats reports checkpointing counters and the live op-log
	// size for /stats.
	SnapshotStats() snapshot.Stats
	// WALStats reports the durable write-ahead log's accounting for
	// /stats (Enabled=false when the deployment runs without a WAL).
	WALStats() wal.Stats
	// MVCCStats reports the commit pipeline's version registry: live
	// versions, pinned readers, sealed-but-undurable batches in flight.
	MVCCStats() controller.MVCCStats
}

// Config parameterises a Server. Zero values select sane defaults.
type Config struct {
	Backend Backend
	// GraphID distinguishes base-graph generations in the cache epoch
	// (e.g. a hash of the loaded graph file).
	GraphID uint64

	Admit AdmitConfig
	// CacheSize / CacheTTL bound the result cache (default 4096 / 1m).
	CacheSize int
	CacheTTL  time.Duration
	// DefaultTimeout / MaxTimeout bound per-request deadlines
	// (default 30s / 2m). A request past its deadline is answered 504 and
	// its query cancelled on the engine.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// ResultTTL is how long async results stay retrievable (default 1m).
	ResultTTL time.Duration
	// MaxAsyncResults caps retained async results (default 4096); async
	// submissions beyond it are rejected 429. This is the hard memory
	// bound — the admission pre-bounce is only advisory (cache-answerable
	// requests bypass it, and its check races the later Acquire).
	MaxAsyncResults int

	// Counters receives serving metrics; nil creates a fresh set.
	Counters *metrics.ServeCounters
	// Obs is the observability substrate: the tracer every /query request
	// roots its span tree in, the metrics registry /metrics serves, and
	// the structured logger. Nil creates a private one (endpoints always
	// work); share one instance with the controller so engine spans land
	// in the same trees.
	Obs *obs.Obs
	// NoTrace disables per-request tracing while keeping /metrics and the
	// trace endpoints alive (used to measure tracing overhead).
	NoTrace bool
	// Monitor is the active health layer (internal/obs/health), shared
	// with the engine. The serving layer feeds it admission depth and
	// per-tenant SLO outcomes and serves its HTTP surfaces (/events,
	// /slo, /debug/incident/{id}); its detectors drive /healthz from ok
	// to degraded. Nil disables all of it.
	Monitor *health.Monitor
	// ReadOnly rejects every write (POST /mutate, POST /admin/*) with
	// 403 — the mode of replica roles, whose graph state is maintained by
	// tailing the primary's WAL, never by client writes.
	ReadOnly bool
	// NodeID and Role identify this node on the X-QGraph-Node response
	// header ("<id>/<role>"), so a client fronted by the router can tell
	// which fleet member actually served any response. Empty disables the
	// header.
	NodeID string
	Role   string
	// Replication, when set, reports the node's replication position: it
	// feeds the replica blocks of /healthz and /stats and the
	// qgraph_replica_* metrics families. Nil on primaries.
	Replication func() ReplicaInfo
	// Clock abstracts time for tests; nil means time.Now.
	Clock func() time.Time
}

// VersionHeader carries the committed graph version a response reflects.
// Clients do read-your-writes by echoing the version their last mutation
// reported as ?min_version=; the router uses it to verify the staleness
// bound of replica answers.
const VersionHeader = "X-QGraph-Version"

// TraceHeader carries a trace ID across HTTP hops. A node honors an
// inbound value (its spans join the caller's tree — the router is the
// usual originator) and echoes the ID it used on the response, so the
// caller learns the ID even when the node generated one itself.
const TraceHeader = obs.TraceHeader

// NodeHeader identifies the node that produced a response as
// "<node-id>/<role>". The router passes it through untouched, so a
// client always sees which fleet member served it.
const NodeHeader = "X-QGraph-Node"

// ReplicaInfo is the replication-position block a replica reports on
// /healthz and /stats. WALHead is the primary's durable head version as
// seen in the tailed WAL directory; LagVersions = WALHead - Applied.
type ReplicaInfo struct {
	Role              string `json:"role"`
	AppliedVersion    uint64 `json:"applied_version"`
	WALHead           uint64 `json:"wal_head"`
	LagVersions       uint64 `json:"lag_versions"`
	Rebootstraps      int64  `json:"rebootstraps"`
	TailPolls         int64  `json:"tail_polls"`
	TailBatches       int64  `json:"tail_batches"`
	TailBytes         int64  `json:"tail_bytes_read"`
	LastApplyUnixNS   int64  `json:"last_apply_unix_ns,omitempty"`
	SnapshotsSkipped  int64  `json:"snapshots_skipped_corrupt,omitempty"`
	BootstrapVersion  uint64 `json:"bootstrap_version"`
	BootstrapReplayed int    `json:"bootstrap_replayed_batches"`
}

func (c *Config) fill() error {
	if c.Backend == nil {
		return fmt.Errorf("serve: nil backend")
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	// The default deadline must be reachable by an explicit timeout_ms,
	// and storePending relies on MaxTimeout bounding every request.
	if c.MaxTimeout < c.DefaultTimeout {
		c.MaxTimeout = c.DefaultTimeout
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = time.Minute
	}
	if c.MaxAsyncResults <= 0 {
		c.MaxAsyncResults = 4096
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Counters == nil {
		c.Counters = metrics.NewServeCounters(c.Clock())
	}
	if c.Obs == nil {
		c.Obs = obs.New(nil)
	}
	return nil
}

// Server is the multi-tenant HTTP front-end over one Q-Graph controller.
type Server struct {
	cfg    Config
	admit  *Admission
	cache  *Cache
	ctr    *metrics.ServeCounters
	obs    *obs.Obs
	tracer *obs.Tracer // nil when NoTrace: every span op degrades to a no-op
	nextID atomic.Int64

	reqSeconds    *obs.Histogram
	engineSeconds *obs.Histogram

	mu        sync.Mutex
	results   map[int64]*asyncResult
	lastPrune time.Time

	draining atomic.Bool
	wg       sync.WaitGroup
}

// asyncResult is a stored outcome of an async (wait-free) request.
type asyncResult struct {
	done    bool
	code    int
	resp    QueryResponse
	errBody *errorResponse
	expires time.Time
}

// New builds a Server.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		admit:   NewAdmission(cfg.Admit, cfg.Clock),
		cache:   NewCache(cfg.CacheSize, cfg.CacheTTL, cfg.Clock),
		ctr:     cfg.Counters,
		obs:     cfg.Obs,
		results: make(map[int64]*asyncResult),
	}
	if !cfg.NoTrace {
		s.tracer = cfg.Obs.T()
	}
	s.registerMetrics()
	// Incident bundles embed the exact state /stats serializes at the
	// moment a detector fires.
	s.cfg.Monitor.SetStatsFn(func() any { return s.statsSnapshot() })
	return s, nil
}

// Counters exposes the serving counters (shared with /stats).
func (s *Server) Counters() *metrics.ServeCounters { return s.ctr }

// Handler returns the HTTP API:
//
//	POST /query           run a query (or enqueue it with "async": true)
//	GET  /result/{id}     fetch an async query's result
//	POST /mutate          apply a batch of streaming graph updates
//	POST /admin/snapshot  cut a checkpoint and truncate the op log
//	GET  /healthz         liveness (503 while draining or degraded)
//	GET  /stats           serving, admission, cache, and engine counters
//	GET  /metrics         the same counters in Prometheus text format
//	GET  /trace/{query_id} span tree + phase attribution of one query
//	GET  /trace/by-id/{trace_id}  the same, looked up by propagated trace ID
//	GET  /traces          slowest completed traces (?slowest=N&tenant=T&min_ms=X)
//	GET  /events          health event log (?type=...&severity=...&n=N)
//	GET  /slo             per-tenant SLO accounting (latency, goodput, burn)
//	GET  /debug/incident/{id}  one incident flight-recorder bundle ("latest" works)
//	GET  /debug/incidents list of retained incident bundles
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /result/{id}", s.handleResult)
	mux.HandleFunc("POST /mutate", s.handleMutate)
	mux.HandleFunc("POST /admin/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace/{query_id}", s.handleTrace)
	mux.HandleFunc("GET /trace/by-id/{trace_id}", s.handleTraceByID)
	mux.HandleFunc("GET /traces", s.handleTraces)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /slo", s.handleSLO)
	mux.HandleFunc("GET /debug/incident/{id}", s.handleIncident)
	mux.HandleFunc("GET /debug/incidents", s.handleIncidents)
	node := s.cfg.NodeID
	if s.cfg.Role != "" {
		node += "/" + s.cfg.Role
	}
	if node == "" {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(NodeHeader, node)
		mux.ServeHTTP(w, r)
	})
}

// epoch reads the live cache-validity coordinates from the backend.
func (s *Server) epoch() Epoch {
	return Epoch{
		Graph:       s.cfg.GraphID,
		Version:     s.cfg.Backend.GraphVersion(),
		Repartition: s.cfg.Backend.RepartitionEpoch(),
	}
}

// Drain stops accepting new queries and waits for in-flight ones (both
// sync and async) to finish, or for ctx to expire.
func (s *Server) Drain(ctx context.Context) error {
	// The mutex orders the store against begin(): once Drain holds it,
	// every later request observes draining and is rejected, so wg cannot
	// grow from zero concurrently with Wait.
	s.mu.Lock()
	s.draining.Store(true)
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ---------------------------------------------------------------------------
// Wire types

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// Kind is sssp | bfs | poi | pagerank.
	Kind   string `json:"kind"`
	Source int64  `json:"source"`
	// Target is the end vertex for point-to-point SSSP/BFS; omitted or
	// null floods from the source.
	Target   *int64  `json:"target,omitempty"`
	MaxIters int     `json:"max_iters,omitempty"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	// Tenant scopes weighted-fair queueing; empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMS overrides the server's default request deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses result-cache lookup and storage.
	NoCache bool `json:"no_cache,omitempty"`
	// Async returns immediately with an id; fetch via GET /result/{id}.
	Async bool `json:"async,omitempty"`
}

// QueryResponse is the result representation of both /query and /result.
type QueryResponse struct {
	// ID is the engine query id for synchronous responses, or the opaque
	// retrieval token for async ones (pass it to GET /result/{id}).
	ID     int64  `json:"id"`
	Kind   string `json:"kind"`
	Status string `json:"status"` // "done" | "pending"
	// Value is the query result; null when no goal vertex was reached.
	Value      *float64 `json:"value"`
	Reason     string   `json:"reason,omitempty"`
	Supersteps int      `json:"supersteps"`
	Touched    int      `json:"touched"`
	Workers    int      `json:"workers"`
	CacheHit   bool     `json:"cache_hit,omitempty"`
	Coalesced  bool     `json:"coalesced,omitempty"`
	// LatencyMS is this request's wall time; for cache hits it is the
	// lookup time, while EngineMS always reports the executing run.
	LatencyMS   float64 `json:"latency_ms"`
	EngineMS    float64 `json:"engine_ms"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// TraceID is the span tree this request recorded into — inbound
	// X-QGraph-Trace-ID when one was propagated, else locally generated.
	// Feed it to GET /trace/by-id/{trace_id} (0 when tracing is off).
	TraceID uint64 `json:"trace_id,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// StatsResponse is the GET /stats body.
type StatsResponse struct {
	Serve     metrics.ServeSnapshot `json:"serve"`
	Admission AdmitStats            `json:"admission"`
	Cache     CacheStats            `json:"cache"`
	Engine    struct {
		RepartitionEpoch int64  `json:"repartition_epoch"`
		GraphID          uint64 `json:"graph_id"`
		GraphVersion     uint64 `json:"graph_version"`
		Vertices         int    `json:"vertices"`
		Edges            int    `json:"edges"`
		Degraded         bool   `json:"degraded,omitempty"`
		Recovering       bool   `json:"recovering,omitempty"`
		DeadWorkers      []int  `json:"dead_workers,omitempty"`
	} `json:"engine"`
	// Recovery reports the worker-failure recovery counters: completed
	// episodes, handoffs vs rejoins, queries re-executed, and the latest
	// episode's wall time.
	Recovery recovery.Stats `json:"recovery"`
	// Snapshot reports checkpointing: snapshots cut, the last checkpoint
	// version, ops truncated, and the retained committed-op log size —
	// bounded by the snapshot policy however long mutations stream.
	Snapshot snapshot.Stats `json:"snapshot"`
	// WAL reports the durable write-ahead log: the version chain on disk,
	// appends and fsync latency, and truncation keeping pace with
	// checkpoints. Enabled=false when the deployment runs without one
	// (see README "Durability modes").
	WAL wal.Stats `json:"wal"`
	// MVCC reports the commit pipeline's version registry: how many
	// immutable graph versions are live, how many readers pin them, and
	// how many sealed batches await their group fsync. Pipelined=false
	// means the engine runs the legacy barrier-commit path.
	MVCC controller.MVCCStats `json:"mvcc"`
	// Replica reports this node's replication position (replica roles
	// only): applied version vs the primary's WAL head, tailer activity,
	// and gap-driven re-bootstraps.
	Replica *ReplicaInfo `json:"replica,omitempty"`
}

// MutateOp is one operation of a POST /mutate batch.
type MutateOp struct {
	// Op is add_edge | remove_edge | set_weight | add_vertex.
	Op     string  `json:"op"`
	From   int64   `json:"from,omitempty"`
	To     int64   `json:"to,omitempty"`
	Weight float64 `json:"weight,omitempty"`
}

// MutateRequest is the POST /mutate body. The whole batch commits
// atomically at the engine's next commit barrier.
type MutateRequest struct {
	Ops []MutateOp `json:"ops"`
	// TimeoutMS bounds the wait for the commit (default: the server's
	// request default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// MutateResponse reports a committed batch.
type MutateResponse struct {
	// Version is the graph version the ops landed in.
	Version uint64 `json:"version"`
	// Applied counts ops that changed the graph; NoOps ones that
	// referenced a non-existent edge.
	Applied   int     `json:"applied"`
	NoOps     int     `json:"noops"`
	LatencyMS float64 `json:"latency_ms"`
}

// ---------------------------------------------------------------------------
// Handlers

// begin registers one request with the drain WaitGroup, or reports that
// the server is draining. Every true return must be paired with wg.Done.
func (s *Server) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.wg.Add(1)
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.stampVersion(w)
	if !s.begin() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server draining"})
		return
	}
	defer s.wg.Done()
	// ?min_version= demands freshness: a node that has not applied that
	// committed version yet must refuse rather than answer from older
	// state (412; the stamped header tells the client how far behind).
	// Checked before execution — the version only ever advances, so an
	// admitted request can never be served below the demanded floor.
	if raw := r.URL.Query().Get("min_version"); raw != "" {
		min, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad min_version= value"})
			return
		}
		if v := s.cfg.Backend.GraphVersion(); v < min {
			writeJSON(w, http.StatusPreconditionFailed, errorResponse{
				Error: fmt.Sprintf("applied version %d below requested min_version %d (lagging; retry, or read the primary)", v, min)})
			return
		}
	}
	var req QueryRequest
	// Requests are tiny; bound the body so one client cannot buffer
	// arbitrary amounts of memory into the decoder.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, code, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	spec, err := s.specOf(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// Cross-hop propagation: an inbound trace ID (the router's, usually)
	// becomes this request's trace ID, so node-side spans land in the
	// caller's tree. Echoed on the response either way — when the node
	// generated the ID itself, the echo is how the client learns it.
	if raw := r.Header.Get(TraceHeader); raw != "" {
		if id, err := strconv.ParseUint(raw, 10, 64); err == nil {
			spec.TraceID = id
		}
	}
	if spec.TraceID != 0 {
		w.Header().Set(TraceHeader, strconv.FormatUint(spec.TraceID, 10))
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		// Compare in milliseconds before converting: a huge timeout_ms
		// would overflow the nanosecond conversion into a negative
		// duration and defeat the cap.
		if req.TimeoutMS >= int64(s.cfg.MaxTimeout/time.Millisecond) {
			timeout = s.cfg.MaxTimeout
		} else {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
	}
	s.ctr.Received.Add(1)

	if req.Async {
		// Bounce a hopeless submission before allocating a result slot
		// and goroutine: an async flood against a full queue would
		// otherwise retain a stored rejection per request for ResultTTL.
		// A request the cache can answer (or coalesce) consumes no engine
		// capacity, so it is admitted even with a full queue — matching
		// the sync path, which consults the cache before admission. The
		// epoch must advance before Peek, or entries a repartition just
		// invalidated would defeat the bounce.
		if s.admit.Full(tenant) {
			if s.cache.SetEpoch(s.epoch()) {
				s.ctr.Invalidated.Add(1)
				s.cfg.Monitor.ObserveCacheFlush()
			}
			if req.NoCache || !s.cache.Peek(KeyOf(spec)) {
				s.ctr.Rejected.Add(1)
				w.Header().Set("Retry-After", s.retryAfter())
				writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "admission queue full"})
				return
			}
		}
		// Results are retrieved by an unguessable token, not the sequential
		// engine id: tenancy carries no authentication, so enumerable ids
		// would let any client read other tenants' results.
		token := newResultToken()
		spec.ID = query.ID(s.nextID.Add(1))
		if !s.storePending(token) {
			s.ctr.Rejected.Add(1)
			w.Header().Set("Retry-After", s.retryAfter())
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "async result store full"})
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			resp, code, errBody := s.execute(ctx, spec, req, tenant)
			resp.ID = token
			s.storeDone(token, resp, code, errBody)
		}()
		writeJSON(w, http.StatusAccepted, QueryResponse{
			ID: token, Kind: spec.Kind.String(), Status: "pending", Value: nil,
		})
		return
	}

	spec.ID = query.ID(s.nextID.Add(1))
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	resp, code, errBody := s.execute(ctx, spec, req, tenant)
	// Re-stamp: versions committed while the query executed move the
	// header forward, never backward.
	s.stampVersion(w)
	if resp.TraceID != 0 {
		w.Header().Set(TraceHeader, strconv.FormatUint(resp.TraceID, 10))
	}
	if errBody != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", s.retryAfter())
		}
		writeJSON(w, code, *errBody)
		return
	}
	writeJSON(w, code, resp)
}

// stampVersion sets (or refreshes) the X-QGraph-Version response header
// from the backend's committed graph version.
func (s *Server) stampVersion(w http.ResponseWriter) {
	w.Header().Set(VersionHeader, strconv.FormatUint(s.cfg.Backend.GraphVersion(), 10))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad result id"})
		return
	}
	s.mu.Lock()
	s.pruneResults(false)
	ar := s.results[id]
	s.mu.Unlock()
	switch {
	case ar == nil:
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown or expired result id"})
	case !ar.done:
		writeJSON(w, http.StatusOK, QueryResponse{ID: id, Status: "pending", Value: nil})
	case ar.errBody != nil:
		writeJSON(w, ar.code, *ar.errBody)
	default:
		writeJSON(w, ar.code, ar.resp)
	}
}

// healthzResponse is the GET /healthz body. Operators watch GraphVersion
// and RepartitionEpoch here to observe mutation and adaptation progress
// without pulling full /stats.
//
// Status transitions on worker failure: "ok" → "recovering" (an episode
// is reassigning partitions and re-executing queries; still 200, because
// requests keep completing — just slower) → "ok" again. "degraded" (503)
// is either terminal (every worker is dead) or detector-driven: the
// health layer's watchdogs flag persistent stragglers and stalled
// barriers, and /healthz flips ok→degraded while the condition holds —
// the active complement to binary liveness. DeadWorkers lists
// currently-fenced workers; after a handoff recovery it keeps naming the
// permanently lost ones while status is back to "ok".
type healthzResponse struct {
	Status           string `json:"status"` // ok | recovering | draining | degraded
	GraphVersion     uint64 `json:"graph_version"`
	RepartitionEpoch int64  `json:"repartition_epoch"`
	DeadWorkers      []int  `json:"dead_workers,omitempty"`
	// Stragglers lists workers the straggler watchdog currently flags;
	// Stalled marks an active barrier/superstep deadline breach;
	// ActiveIncidents names unresolved flight-recorder bundles
	// (GET /debug/incident/{id}).
	Stragglers      []int   `json:"stragglers,omitempty"`
	Stalled         bool    `json:"stalled,omitempty"`
	ActiveIncidents []int64 `json:"active_incidents,omitempty"`
	Recoveries      int64   `json:"recoveries,omitempty"`
	// WALOpsSinceCheckpoint counts committed ops covered only by the WAL
	// (no durable checkpoint yet) — the replay a restart right now would
	// pay. Growth without bound means checkpointing has stalled.
	WALOpsSinceCheckpoint int `json:"wal_ops_since_checkpoint"`
	// SecondsSinceSnapshotCut is the age of the newest completed
	// checkpoint cut; -1 until the first cut completes.
	SecondsSinceSnapshotCut float64 `json:"seconds_since_snapshot_cut"`
	// Replica-role fields (absent on primaries): the role name, the
	// committed version this node has applied, the primary's WAL head it
	// can see, and how many versions it trails by — the number the router
	// compares against -max-staleness-versions.
	Role              string `json:"role,omitempty"`
	AppliedVersion    uint64 `json:"applied_version,omitempty"`
	WALHead           uint64 `json:"wal_head,omitempty"`
	StalenessVersions uint64 `json:"staleness_versions,omitempty"`
	Rebootstraps      int64  `json:"rebootstraps,omitempty"`
}

// handleMutate ingests one batch of streaming graph updates. The batch is
// staged on the engine, committed atomically at its next commit barrier,
// and the response reports the resulting graph version — after which the
// result cache is invalidated at the next lookup, so no post-commit query
// is answered from pre-commit state.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	s.stampVersion(w)
	if s.cfg.ReadOnly {
		writeJSON(w, http.StatusForbidden,
			errorResponse{Error: "read-only replica: route writes to the primary"})
		return
	}
	if !s.begin() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server draining"})
		return
	}
	defer s.wg.Done()
	started := s.cfg.Clock()
	var req MutateRequest
	// Mutation batches are bigger than queries but still bounded: 1 MiB
	// holds tens of thousands of ops.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, code, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	ops, err := opsOf(req.Ops)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// Pre-check vertex ranges against the live view so a plainly bad op is
	// a 400, not a 503. The engine re-validates against its staged view
	// (which may already hold add_vertex ops), so this is advisory only —
	// an op racing a concurrent growth commit still resolves there.
	if err := delta.ValidateOps(ops, s.cfg.Backend.GraphView().NumVertices()); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		if req.TimeoutMS >= int64(s.cfg.MaxTimeout/time.Millisecond) {
			timeout = s.cfg.MaxTimeout
		} else {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
	}
	s.ctr.MutationOps.Add(int64(len(ops)))
	ch, err := s.cfg.Backend.Mutate(ops)
	if err != nil {
		s.ctr.MutationsFailed.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "mutate: " + err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	select {
	case res := <-ch:
		if res.Err != nil {
			s.ctr.MutationsFailed.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "mutate: " + res.Err.Error()})
			return
		}
		s.ctr.MutationsApplied.Add(int64(res.Applied))
		s.ctr.MutationNoOps.Add(int64(res.NoOps))
		s.ctr.MutationBatches.Add(1)
		// The commit's own version is the read-your-writes token: echo it
		// as ?min_version= to guarantee reads reflect this batch.
		w.Header().Set(VersionHeader, strconv.FormatUint(res.Version, 10))
		writeJSON(w, http.StatusOK, MutateResponse{
			Version:   res.Version,
			Applied:   res.Applied,
			NoOps:     res.NoOps,
			LatencyMS: durMS(s.cfg.Clock().Sub(started)),
		})
	case <-ctx.Done():
		// The batch stays staged and will still commit; only this caller
		// stops waiting (the result channel is buffered, nothing leaks).
		s.ctr.MutationsFailed.Add(1)
		writeJSON(w, http.StatusGatewayTimeout,
			errorResponse{Error: "deadline exceeded waiting for commit (batch may still apply)"})
	}
}

// opsOf converts and bound-checks wire ops into engine ops. Exported via
// the wire format only; deeper validation (vertex ranges against the live
// graph) happens on the engine, where the authoritative view lives.
func opsOf(wire []MutateOp) ([]delta.Op, error) {
	if len(wire) == 0 {
		return nil, fmt.Errorf("empty ops")
	}
	ops := make([]delta.Op, len(wire))
	for i, mo := range wire {
		kind, err := delta.KindFromString(mo.Op)
		if err != nil {
			return nil, fmt.Errorf("op %d: unknown kind %q (want add_edge|remove_edge|set_weight|add_vertex)", i, mo.Op)
		}
		if mo.From < 0 || mo.From > math.MaxInt32 || mo.To < 0 || mo.To > math.MaxInt32 {
			return nil, fmt.Errorf("op %d: vertex id out of range", i)
		}
		if mo.Weight < 0 || math.IsNaN(mo.Weight) || mo.Weight > math.MaxFloat32 {
			return nil, fmt.Errorf("op %d: invalid weight %v", i, mo.Weight)
		}
		ops[i] = delta.Op{
			Kind:   kind,
			From:   graph.VertexID(mo.From),
			To:     graph.VertexID(mo.To),
			Weight: float32(mo.Weight),
		}
	}
	return ops, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.cfg.Backend.SnapshotStats()
	resp := healthzResponse{
		Status:                  "ok",
		GraphVersion:            s.cfg.Backend.GraphVersion(),
		RepartitionEpoch:        s.cfg.Backend.RepartitionEpoch(),
		Recoveries:              s.cfg.Backend.RecoveryStats().Recoveries,
		WALOpsSinceCheckpoint:   snap.DeltaLogOps,
		SecondsSinceSnapshotCut: -1,
	}
	if snap.LastCutUnixNS > 0 {
		resp.SecondsSinceSnapshotCut = time.Since(time.Unix(0, snap.LastCutUnixNS)).Seconds()
	}
	if s.cfg.Replication != nil {
		ri := s.cfg.Replication()
		resp.Role = ri.Role
		resp.AppliedVersion = ri.AppliedVersion
		resp.WALHead = ri.WALHead
		resp.StalenessVersions = ri.LagVersions
		resp.Rebootstraps = ri.Rebootstraps
	}
	code := http.StatusOK
	h := s.cfg.Backend.Health()
	resp.DeadWorkers = h.DeadWorkers
	// Refresh the saturation detector on the health probe too, so a
	// saturation observed under load clears once traffic stops (the
	// request path stops feeding it).
	s.feedAdmission()
	hs := s.cfg.Monitor.Snapshot()
	resp.Stragglers = hs.Stragglers
	resp.Stalled = hs.Stalled
	resp.ActiveIncidents = hs.ActiveIncidents
	switch {
	case h.Degraded:
		// Terminal: no live workers. Nothing will complete.
		resp.Status = "degraded"
		code = http.StatusServiceUnavailable
	case h.Recovering:
		// Requests still complete (deferred, then re-executed) — stay
		// green so load balancers keep routing; latency is the cost.
		resp.Status = "recovering"
	case hs.Degraded:
		// Detector-driven: a persistent straggler or a stalled barrier is
		// impairing service while every worker still answers heartbeats.
		resp.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	if s.draining.Load() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// statsSnapshot builds the /stats body; incident bundles embed the same
// shape via the monitor's stats callback.
func (s *Server) statsSnapshot() StatsResponse {
	var resp StatsResponse
	resp.Serve = s.ctr.Snapshot(s.cfg.Clock())
	resp.Admission = s.admit.Stats()
	resp.Cache = s.cache.Stats()
	view := s.cfg.Backend.GraphView()
	health := s.cfg.Backend.Health()
	resp.Engine.RepartitionEpoch = s.cfg.Backend.RepartitionEpoch()
	resp.Engine.GraphID = s.cfg.GraphID
	resp.Engine.GraphVersion = s.cfg.Backend.GraphVersion()
	resp.Engine.Vertices = view.NumVertices()
	resp.Engine.Edges = view.NumEdges()
	resp.Engine.Degraded = health.Degraded
	resp.Engine.Recovering = health.Recovering
	resp.Engine.DeadWorkers = health.DeadWorkers
	resp.Recovery = s.cfg.Backend.RecoveryStats()
	resp.Snapshot = s.cfg.Backend.SnapshotStats()
	resp.WAL = s.cfg.Backend.WALStats()
	resp.MVCC = s.cfg.Backend.MVCCStats()
	if s.cfg.Replication != nil {
		ri := s.cfg.Replication()
		resp.Replica = &ri
	}
	return resp
}

// handleSnapshot triggers a checkpoint on demand (operators force one
// before maintenance, tests force one before a kill). The response is the
// engine's snapshot.Result: the covered version, whether a new snapshot
// was actually cut, whether it is durable on disk, and how many log ops
// the cut released.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ReadOnly {
		writeJSON(w, http.StatusForbidden,
			errorResponse{Error: "read-only replica: route admin writes to the primary"})
		return
	}
	if !s.begin() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server draining"})
		return
	}
	defer s.wg.Done()
	res, err := s.cfg.Backend.ForceSnapshot()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "snapshot: " + err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// ---------------------------------------------------------------------------
// Execution path

// execute runs one admitted-or-coalesced query to completion and maps the
// outcome to an HTTP response. spec.ID is already assigned. It owns the
// request's trace: opened (and bound to the query id) before anything
// else so the controller and workers can extend the tree, finished on
// every return path so the ring's occupancy returns to baseline.
func (s *Server) execute(ctx context.Context, spec query.Spec, req QueryRequest, tenant string) (QueryResponse, int, *errorResponse) {
	started := s.cfg.Clock()
	tr := s.beginTrace(&spec, tenant)
	resp, code, errBody := s.executeTraced(ctx, tr, spec, req, tenant, started)
	resp.TraceID = tr.ID()
	if errBody == nil {
		tr.Root().SetAttr("status", code)
	} else {
		tr.Root().SetAttr("error", errBody.Error)
	}
	s.tracer.Finish(tr)
	s.observeRequest(started,
		time.Duration(resp.EngineMS*float64(time.Millisecond)), errBody == nil)
	s.cfg.Monitor.ObserveRequest(tenant, s.cfg.Clock().Sub(started), outcomeClass(code, errBody))
	s.feedAdmission()
	return resp, code, errBody
}

// outcomeClass maps an HTTP outcome to the SLO ledger's buckets.
func outcomeClass(code int, errBody *errorResponse) string {
	switch {
	case errBody == nil:
		return "completed"
	case code == http.StatusTooManyRequests:
		return "rejected"
	case code == http.StatusGatewayTimeout:
		return "expired"
	default:
		return "failed"
	}
}

// feedAdmission refreshes the saturation detector from the scheduler's
// live queue depth.
func (s *Server) feedAdmission() {
	if s.cfg.Monitor == nil {
		return
	}
	st := s.admit.Stats()
	s.cfg.Monitor.ObserveAdmission(st.Queued, st.MaxQueue, s.ctr.Rejected.Load())
}

func (s *Server) executeTraced(ctx context.Context, tr *obs.Trace, spec query.Spec, req QueryRequest, tenant string, started time.Time) (QueryResponse, int, *errorResponse) {
	key := KeyOf(spec)
	// Advance the cache epoch before the lookup so a repartition or a
	// committed mutation batch since the last request flushes stale
	// results — the flush lands exactly at the version bump, because the
	// version only ever changes at a commit barrier.
	if s.cache.SetEpoch(s.epoch()) {
		s.ctr.Invalidated.Add(1)
		s.cfg.Monitor.ObserveCacheFlush()
	}

	var flight *Flight
	if req.NoCache {
		flight = s.cache.Lead()
	} else {
		cacheSpan := tr.StartSpan(nil, "cache")
	lookup:
		for {
			out, f, state := s.cache.Begin(key)
			switch state {
			case BeginHit:
				s.ctr.CacheHits.Add(1)
				s.ctr.Completed.Add(1)
				resp := s.respFrom(spec, out, started, 0)
				resp.CacheHit = true
				cacheSpan.SetAttr("outcome", "hit")
				cacheSpan.End()
				return resp, http.StatusOK, nil
			case BeginJoin:
				select {
				case <-f.Done():
					if out, err := f.Result(); err == nil {
						s.ctr.Coalesced.Add(1)
						s.ctr.Completed.Add(1)
						resp := s.respFrom(spec, out, started, 0)
						resp.Coalesced = true
						cacheSpan.SetAttr("outcome", "coalesced")
						cacheSpan.End()
						return resp, http.StatusOK, nil
					}
					// The leader failed (rejected, expired, engine error).
					// Do not inherit its failure: race to lead the retry,
					// so admission decides for this caller too. Each round
					// promotes exactly one waiter, so this terminates.
					continue
				case <-ctx.Done():
					// Only this follower gives up; the leader keeps going.
					s.ctr.Expired.Add(1)
					cacheSpan.SetAttr("outcome", "join-timeout")
					cacheSpan.End()
					return QueryResponse{}, http.StatusGatewayTimeout,
						&errorResponse{Error: "deadline exceeded waiting for coalesced query"}
				}
			case BeginLead:
				// A real lookup miss; NoCache requests never looked and
				// must not skew the hit ratio's denominator.
				s.ctr.CacheMisses.Add(1)
				flight = f
				cacheSpan.SetAttr("outcome", "miss")
				cacheSpan.End()
				break lookup
			}
		}
	}

	admitSpan := tr.StartSpan(nil, "admission")
	release, wait, err := s.admit.Acquire(ctx, tenant)
	admitSpan.End()
	if err != nil {
		s.cache.Complete(flight, Outcome{}, err)
		if err == ErrQueueFull {
			s.ctr.Rejected.Add(1)
			return QueryResponse{}, http.StatusTooManyRequests,
				&errorResponse{Error: "admission queue full"}
		}
		s.ctr.Expired.Add(1)
		return QueryResponse{}, http.StatusGatewayTimeout,
			&errorResponse{Error: "deadline exceeded in admission queue"}
	}
	s.ctr.ObserveQueueWait(wait)

	ch, err := s.cfg.Backend.Schedule(spec)
	if err != nil {
		release()
		s.cache.Complete(flight, Outcome{}, err)
		s.ctr.Failed.Add(1)
		return QueryResponse{}, http.StatusServiceUnavailable,
			&errorResponse{Error: "schedule: " + err.Error()}
	}

	select {
	case res := <-ch:
		release()
		out := outcomeOf(res)
		if !out.Cacheable() {
			// Cancelled (engine stopping) or rejected: no reusable answer.
			s.cache.Complete(flight, Outcome{}, fmt.Errorf("query finished %s", res.Reason))
			s.ctr.Failed.Add(1)
			return QueryResponse{}, http.StatusServiceUnavailable,
				&errorResponse{Error: "query finished " + res.Reason.String()}
		}
		s.cache.Complete(flight, out, nil)
		s.ctr.Completed.Add(1)
		return s.respFrom(spec, out, started, wait), http.StatusOK, nil
	case <-ctx.Done():
		// The caller abandoned the query: cancel it on the engine and free
		// the admission slot only when the engine actually lets go of it,
		// so MaxInFlight keeps metering true engine load. If the result
		// races the cancel and completes anyway, keep it — the work is
		// paid for; the next request for this key should hit the cache.
		s.cfg.Backend.Cancel(spec.ID)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			res := <-ch
			release()
			if out := outcomeOf(res); !req.NoCache && out.Cacheable() {
				s.cache.Store(key, flight.epoch, out)
			}
		}()
		s.cache.Complete(flight, Outcome{}, ctx.Err())
		s.ctr.Expired.Add(1)
		return QueryResponse{}, http.StatusGatewayTimeout,
			&errorResponse{Error: "deadline exceeded; query cancelled"}
	}
}

// respFrom maps an outcome to the wire response.
func (s *Server) respFrom(spec query.Spec, out Outcome, started time.Time, wait time.Duration) QueryResponse {
	resp := QueryResponse{
		ID:          int64(spec.ID),
		Kind:        spec.Kind.String(),
		Status:      "done",
		Reason:      out.Reason.String(),
		Supersteps:  out.Supersteps,
		Touched:     out.Touched,
		Workers:     out.Workers,
		LatencyMS:   durMS(s.cfg.Clock().Sub(started)),
		EngineMS:    durMS(out.EngineLatency),
		QueueWaitMS: durMS(wait),
	}
	if out.Value != query.NoResult {
		v := out.Value
		resp.Value = &v
	}
	return resp
}

func outcomeOf(res controller.Result) Outcome {
	return Outcome{
		Value:         res.Value,
		Reason:        res.Reason,
		Supersteps:    res.Supersteps,
		LocalIters:    res.LocalIters,
		Touched:       res.Touched,
		Workers:       res.Workers,
		EngineLatency: res.Latency,
	}
}

// specOf parses and validates a request into a query spec (without ID).
func (s *Server) specOf(req QueryRequest) (query.Spec, error) {
	// Bound-check before the int32 narrowing: a wrapped vertex id would
	// silently answer a different query (or turn -1 into a NilVertex
	// flood) instead of failing validation.
	if req.Source < 0 || req.Source > math.MaxInt32 {
		return query.Spec{}, fmt.Errorf("source %d out of range", req.Source)
	}
	spec := query.Spec{
		Source:   graph.VertexID(req.Source),
		Target:   graph.NilVertex,
		MaxIters: req.MaxIters,
		Epsilon:  req.Epsilon,
	}
	if req.Target != nil {
		if *req.Target < 0 || *req.Target > math.MaxInt32 {
			return query.Spec{}, fmt.Errorf("target %d out of range (omit target to flood)", *req.Target)
		}
		spec.Target = graph.VertexID(*req.Target)
	}
	switch req.Kind {
	case "sssp":
		spec.Kind = query.KindSSSP
	case "bfs":
		spec.Kind = query.KindBFS
	case "poi":
		spec.Kind = query.KindPOI
	case "pagerank":
		spec.Kind = query.KindPageRank
		if spec.MaxIters <= 0 && spec.Epsilon <= 0 {
			// The REPL's defaults; keeps curl one-liners terminating.
			spec.MaxIters, spec.Epsilon = 20, 1e-4
		}
	default:
		return spec, fmt.Errorf("unknown query kind %q (want sssp|bfs|poi|pagerank)", req.Kind)
	}
	// Validate against the live view: streaming updates may have grown the
	// graph past the base it was loaded with.
	if err := spec.Validate(s.cfg.Backend.GraphView()); err != nil {
		return spec, err
	}
	return spec, nil
}

// retryAfter estimates how long a rejected client should back off from
// the current queue depth (a lifetime mean would barely move during a
// sudden overload after a quiet period): one second plus roughly one
// second per full drain generation queued, capped at 30.
func (s *Server) retryAfter() string {
	st := s.admit.Stats()
	sec := int64(1)
	if st.MaxInFlight > 0 {
		sec += int64(st.Queued / st.MaxInFlight)
	}
	if sec > 30 {
		sec = 30
	}
	return strconv.FormatInt(sec, 10)
}

// storePending registers an async result slot, or reports the store full
// (the submission must then be rejected). Pending slots carry no expiry:
// the TTL starts when the result lands (storeDone), so a query outliving
// ResultTTL is not silently dropped mid-run — execute always completes
// (deadlines are capped by MaxTimeout), so every pending slot eventually
// becomes done and expires from there.
func (s *Server) storePending(id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneResults(false)
	if len(s.results) >= s.cfg.MaxAsyncResults {
		// At the cap the throttled prune may be stale; sweep for real
		// before rejecting.
		s.pruneResults(true)
		if len(s.results) >= s.cfg.MaxAsyncResults {
			return false
		}
	}
	s.results[id] = &asyncResult{}
	return true
}

// storeDone publishes an async result.
func (s *Server) storeDone(id int64, resp QueryResponse, code int, errBody *errorResponse) {
	s.mu.Lock()
	if ar := s.results[id]; ar != nil {
		ar.done = true
		ar.resp, ar.code, ar.errBody = resp, code, errBody
		ar.expires = s.cfg.Clock().Add(s.cfg.ResultTTL)
	}
	s.mu.Unlock()
}

// pruneResults drops expired async results; pending ones (not yet done)
// never expire here. Unless forced, the scan is throttled: it is
// O(results) under the server-wide mutex, so running it on every request
// would serialize the whole request path at high async rates. Caller
// holds mu.
func (s *Server) pruneResults(force bool) {
	now := s.cfg.Clock()
	if !force && now.Sub(s.lastPrune) < s.cfg.ResultTTL/16 {
		return
	}
	s.lastPrune = now
	for id, ar := range s.results {
		if ar.done && now.After(ar.expires) {
			delete(s.results, id)
		}
	}
}

// newResultToken draws a random positive retrieval token. Tokens stay
// below 2^53 so they survive JSON round trips through IEEE-754 clients
// (JavaScript); ~9e15 values is plenty of enumeration resistance for a
// short-lived result handle.
func newResultToken() int64 {
	var b [8]byte
	_, _ = rand.Read(b[:])
	v := int64(binary.LittleEndian.Uint64(b[:]) & (1<<53 - 1))
	if v == 0 {
		v = 1
	}
	return v
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
