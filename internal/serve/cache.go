package serve

import (
	"container/list"
	"sync"
	"time"

	"qgraph/internal/graph"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
)

// Key canonicalizes a query spec for result caching: two requests with the
// same key compute the same result regardless of who asked or which query
// ID the engine assigned. Home pinning is an execution hint, not part of
// the semantic identity, so it is deliberately excluded.
type Key struct {
	Kind     query.Kind
	Source   graph.VertexID
	Target   graph.VertexID
	MaxIters int
	Epsilon  float64
}

// KeyOf extracts the canonical cache key of a spec.
func KeyOf(spec query.Spec) Key {
	return Key{
		Kind:     spec.Kind,
		Source:   spec.Source,
		Target:   spec.Target,
		MaxIters: spec.MaxIters,
		Epsilon:  spec.Epsilon,
	}
}

// Epoch is the validity domain of cached results: a different base graph,
// a committed mutation batch (graph version bump), or a controller
// repartition opens a new epoch and flushes the cache. Version is the
// live counter streaming updates advance at every commit barrier — the
// serving layer reads it before each lookup, so no result cached under an
// older topology survives a commit. (A repartition does not change query
// answers, but it does change every execution-side statistic.)
type Epoch struct {
	Graph       uint64 `json:"graph"`       // identity of the loaded base graph
	Version     uint64 `json:"version"`     // committed mutation batches
	Repartition int64  `json:"repartition"` // executed repartition barriers
}

// newerThan reports whether e supersedes old. Both live counters are
// monotone, so any strictly smaller counter marks a stale reader racing a
// fresher request. Graph ids carry no order, so a different id alone must
// NOT supersede: two readers racing across a base-graph swap would
// otherwise ping-pong SetEpoch and flush the cache on every request. The
// monotone counters tie-break instead — a graph transition only lands
// together with counter progress, which orders any race deterministically
// (one direction wins, the other is stale) — and a same-counter id change
// is one-way: the incumbent epoch keeps the cache.
func (e Epoch) newerThan(old Epoch) bool {
	if e.Version != old.Version {
		return e.Version > old.Version
	}
	return e.Repartition > old.Repartition
}

// Outcome is the cacheable portion of a finished query: everything except
// the per-request ID and per-request timing.
type Outcome struct {
	Value      float64
	Reason     protocol.FinishReason
	Supersteps int
	LocalIters int
	Touched    int
	Workers    int
	// EngineLatency is the engine execution time of the original run.
	EngineLatency time.Duration
}

// Cacheable reports whether a finish reason represents a reusable answer.
// Cancelled and rejected queries carry no answer worth reusing.
func (o Outcome) Cacheable() bool {
	switch o.Reason {
	case protocol.FinishConverged, protocol.FinishEarly, protocol.FinishMaxIters:
		return true
	default:
		return false
	}
}

// BeginState says how a cache lookup resolved.
type BeginState int

// The three lookup outcomes: a stored result, an identical query already
// executing (coalesce onto it), or a miss making the caller the leader.
const (
	BeginHit BeginState = iota
	BeginJoin
	BeginLead
)

// Flight is one in-flight computation of a key. The leader fills it via
// Cache.Complete; joiners wait on Done.
type Flight struct {
	key   Key
	epoch Epoch
	done  chan struct{}
	out   Outcome
	err   error
	// leadOnly marks a flight that bypasses the cache (NoCache requests
	// still lead a private flight so the completion path is uniform).
	leadOnly bool
}

// Done is closed when the leader completed (successfully or not).
func (f *Flight) Done() <-chan struct{} { return f.done }

// Result returns the flight outcome; valid after Done is closed.
func (f *Flight) Result() (Outcome, error) { return f.out, f.err }

type entry struct {
	key Key
	out Outcome
	at  time.Time
}

// Cache is the serving-layer result cache: LRU bounded, TTL bounded,
// flushed whole on epoch change, with singleflight coalescing of identical
// in-flight queries. Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration
	clock   func() time.Time
	epoch   Epoch
	lru     *list.List // front = most recently used, values are *entry
	entries map[Key]*list.Element
	flights map[Key]*Flight

	// lastSweep throttles the expiry sweep: hit MoveToFront does not
	// refresh an entry's timestamp, so expiry order does not follow LRU
	// order and a sweep must walk the whole list — amortized by running it
	// at most once per ttl/8.
	lastSweep time.Time

	hits, misses, joins, flushes, swept int64
}

// NewCache creates a cache holding up to capacity entries for at most ttl.
// clock may be nil (time.Now).
func NewCache(capacity int, ttl time.Duration, clock func() time.Time) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	if ttl <= 0 {
		ttl = time.Minute
	}
	if clock == nil {
		clock = time.Now
	}
	return &Cache{
		cap:     capacity,
		ttl:     ttl,
		clock:   clock,
		lru:     list.New(),
		entries: make(map[Key]*list.Element),
		flights: make(map[Key]*Flight),
	}
}

// SetEpoch moves the cache to epoch e, flushing all stored results if it
// advanced past the current epoch. Returns true when a flush happened.
// The repartition counter is monotone, so a smaller value is a stale
// reader racing a fresher request — ignored rather than regressing the
// epoch and spuriously flushing what the fresher epoch cached. In-flight
// computations are not interrupted, but their results are discarded on
// completion (their recorded epoch no longer matches).
func (c *Cache) SetEpoch(e Epoch) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !e.newerThan(c.epoch) {
		return false
	}
	c.epoch = e
	// Detach in-flight computations too: new requests must not coalesce
	// onto pre-epoch executions (their leaders still Complete the old
	// Flight for the joiners already attached, but nothing stores it and
	// nobody new joins it).
	if len(c.flights) > 0 {
		c.flights = make(map[Key]*Flight)
	}
	if c.lru.Len() == 0 {
		return false
	}
	c.lru.Init()
	c.entries = make(map[Key]*list.Element)
	c.flushes++
	return true
}

// Begin resolves key: a fresh stored result (BeginHit, with the outcome),
// an identical in-flight query (BeginJoin, wait on the flight), or a miss
// (BeginLead: the caller must execute and call Complete on the flight).
func (c *Cache) Begin(key Key) (Outcome, *Flight, BeginState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		en := el.Value.(*entry)
		if c.clock().Sub(en.at) <= c.ttl {
			c.lru.MoveToFront(el)
			c.hits++
			return en.out, nil, BeginHit
		}
		c.lru.Remove(el)
		delete(c.entries, key)
	}
	if f, ok := c.flights[key]; ok {
		c.joins++
		return Outcome{}, f, BeginJoin
	}
	f := &Flight{key: key, epoch: c.epoch, done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	return Outcome{}, f, BeginLead
}

// Peek reports whether key would resolve without engine work: a fresh
// stored result or an in-flight computation to join. It does not touch
// LRU order or lead a flight.
func (c *Cache) Peek(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		if c.clock().Sub(el.Value.(*entry).at) <= c.ttl {
			return true
		}
	}
	_, ok := c.flights[key]
	return ok
}

// Lead returns a private flight that is not registered for coalescing and
// whose result is never stored — the uniform completion path for requests
// that opted out of caching.
func (c *Cache) Lead() *Flight {
	return &Flight{done: make(chan struct{}), leadOnly: true}
}

// Complete finishes a flight: the result (or error) is published to
// joiners, and a cacheable successful outcome from the current epoch is
// stored. Must be called exactly once per led flight.
func (c *Cache) Complete(f *Flight, out Outcome, err error) {
	f.out, f.err = out, err
	c.mu.Lock()
	if !f.leadOnly {
		// Only remove the flight we own: an epoch flush may have replaced
		// it with a fresh flight for the same key led by someone else.
		if c.flights[f.key] == f {
			delete(c.flights, f.key)
		}
		if err == nil && out.Cacheable() && f.epoch == c.epoch {
			c.put(f.key, out)
		}
	}
	c.mu.Unlock()
	close(f.done)
}

// Store inserts a completed outcome directly — the path for results that
// arrive after their request abandoned the flight (deadline expiry). The
// work is already paid for; ignored unless epoch still matches and the
// outcome is cacheable.
func (c *Cache) Store(key Key, epoch Epoch, out Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch == c.epoch && out.Cacheable() {
		c.put(key, out)
	}
}

// put stores an outcome under the LRU/cap regime. Caller holds mu.
func (c *Cache) put(key Key, out Outcome) {
	now := c.clock()
	c.sweep(now)
	if el, ok := c.entries[key]; ok {
		en := el.Value.(*entry)
		en.out, en.at = out, now
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, out: out, at: now})
	for c.lru.Len() > c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*entry).key)
	}
}

// sweep drops every TTL-expired entry. Without it, an expired entry is
// only removed when its exact key is looked up again — under a shifting
// key population dead entries occupy LRU capacity until displaced,
// silently shrinking the effective cache. Throttled; caller holds mu.
func (c *Cache) sweep(now time.Time) {
	if now.Sub(c.lastSweep) < c.ttl/8 {
		return
	}
	c.lastSweep = now
	for el := c.lru.Back(); el != nil; {
		prev := el.Prev()
		en := el.Value.(*entry)
		if now.Sub(en.at) > c.ttl {
			c.lru.Remove(el)
			delete(c.entries, en.key)
			c.swept++
		}
		el = prev
	}
}

// CacheStats is the cache introspection for /stats.
type CacheStats struct {
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
	Epoch    Epoch `json:"epoch"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Joins    int64 `json:"joins"`
	Flushes  int64 `json:"flushes"`
	Swept    int64 `json:"swept,omitempty"`
}

// Stats returns a consistent snapshot. It also runs the (throttled)
// expiry sweep, so an idle cache sheds expired entries on the /stats and
// /metrics cadence even when no put arrives to piggyback on.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep(c.clock())
	return CacheStats{
		Entries:  c.lru.Len(),
		Capacity: c.cap,
		Epoch:    c.epoch,
		Hits:     c.hits,
		Misses:   c.misses,
		Joins:    c.joins,
		Flushes:  c.flushes,
		Swept:    c.swept,
	}
}
