package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"qgraph/internal/core"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/snapshot"
)

func postSnapshot(t *testing.T, url string) (int, snapshot.Result) {
	t.Helper()
	resp, err := http.Post(url+"/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /admin/snapshot: %v", err)
	}
	defer resp.Body.Close()
	var res snapshot.Result
	_ = json.NewDecoder(resp.Body).Decode(&res)
	return resp.StatusCode, res
}

// TestSnapshotEndpoint exercises the admin trigger against the stub:
// success maps the engine result through, an engine error is a 503, and a
// draining server rejects the request.
func TestSnapshotEndpoint(t *testing.T) {
	b := newStubBackend()
	b.version.Store(3)
	b.mu.Lock()
	b.snapStats.DeltaLogOps = 17
	b.mu.Unlock()
	s, ts := newTestServer(t, b, nil)

	code, res := postSnapshot(t, ts.URL)
	if code != http.StatusOK || !res.Cut || res.Version != 3 || res.TruncatedOps != 17 {
		t.Fatalf("snapshot = %d %+v", code, res)
	}
	// Same version again: still 200, but a no-op.
	code, res = postSnapshot(t, ts.URL)
	if code != http.StatusOK || res.Cut {
		t.Fatalf("repeat snapshot = %d %+v", code, res)
	}

	b.mu.Lock()
	b.snapErr = fmt.Errorf("stopped")
	b.mu.Unlock()
	if code, _ := postSnapshot(t, ts.URL); code != http.StatusServiceUnavailable {
		t.Fatalf("failing snapshot = %d, want 503", code)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code, _ := postSnapshot(t, ts.URL); code != http.StatusServiceUnavailable {
		t.Fatalf("draining snapshot = %d, want 503", code)
	}
}

// TestStatsExposesSnapshotBlock: /stats carries the checkpointing block
// verbatim from the backend.
func TestStatsExposesSnapshotBlock(t *testing.T) {
	b := newStubBackend()
	b.mu.Lock()
	b.snapStats = snapshot.Stats{
		Snapshots: 2, LastSnapshotVersion: 9, TruncatedOps: 123,
		DeltaLogLen: 3, DeltaLogOps: 40, DeltaLogBytes: 556,
	}
	b.mu.Unlock()
	_, ts := newTestServer(t, b, nil)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Snapshot != b.snapStats {
		t.Fatalf("stats snapshot block = %+v, want %+v", st.Snapshot, b.snapStats)
	}
}

// TestSnapshotEndToEnd drives the real engine through the HTTP surface:
// mutations grow the log, POST /admin/snapshot truncates it, and /stats
// reflects the bounded tail.
func TestSnapshotEndToEnd(t *testing.T) {
	b := graph.NewBuilder(8)
	for v := 0; v+1 < 8; v++ {
		b.AddBiEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	eng, err := core.Start(core.Config{
		Workers: 2, Graph: b.MustBuild(), Partitioner: partition.Hash{},
		CommitEvery: time.Millisecond, MaxBatchOps: 1, CheckEvery: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	_, ts := newTestServer(t, eng.Controller(), nil)

	for i := 0; i < 3; i++ {
		code, _ := postMutate(t, ts.URL, MutateRequest{Ops: []MutateOp{
			{Op: "add_edge", From: 0, To: 7, Weight: 50},
		}})
		if code != http.StatusOK {
			t.Fatalf("mutate %d = %d", i, code)
		}
	}

	code, res := postSnapshot(t, ts.URL)
	if code != http.StatusOK || !res.Cut || res.Version != 3 || res.TruncatedOps != 3 {
		t.Fatalf("snapshot = %d %+v", code, res)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Snapshot.Snapshots != 1 || st.Snapshot.LastSnapshotVersion != 3 ||
		st.Snapshot.TruncatedOps != 3 || st.Snapshot.DeltaLogOps != 0 {
		t.Fatalf("stats after snapshot: %+v", st.Snapshot)
	}
}
