// Package serve turns the Q-Graph controller into a multi-tenant network
// service: an HTTP/JSON API (server.go) in front of admission control with
// weighted-fair queueing and backpressure (this file) and an epoch-
// invalidated result cache with singleflight coalescing (cache.go).
//
// The paper's execution model makes this serving layer cheap: queries keep
// private state and never conflict on writes, so the only scarce resources
// are controller barrier round-trips and worker compute — exactly what the
// bounded in-flight limit meters.
package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrQueueFull is returned by Acquire when the admission queue is at
// capacity; HTTP callers translate it to 429 with Retry-After.
var ErrQueueFull = errors.New("serve: admission queue full")

// AdmitConfig parameterises admission control.
type AdmitConfig struct {
	// MaxInFlight bounds queries executing concurrently in the engine
	// (default 16, the paper's batch parallelism).
	MaxInFlight int
	// MaxQueue bounds waiters beyond the in-flight set; an arriving
	// request that finds the queue full is rejected (default 64).
	MaxQueue int
	// MaxQueuePerTenant bounds one tenant's share of the queue (default
	// MaxQueue/4, min 1). Without it, one aggressive tenant could fill
	// the global queue and starve everyone before weighted-fair ordering
	// ever gets a say — the fair tags only order waiters already queued.
	MaxQueuePerTenant int
	// Weights sets per-tenant fair-queueing weights; a tenant's share of
	// admission slots under contention is proportional to its weight.
	Weights map[string]float64
	// DefaultWeight applies to tenants absent from Weights (default 1).
	DefaultWeight float64
}

func (c *AdmitConfig) fill() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 1
	}
	if c.MaxQueuePerTenant <= 0 {
		c.MaxQueuePerTenant = max(1, c.MaxQueue/4)
	}
}

// waiter is one queued admission request.
type waiter struct {
	tag      float64 // virtual finish time (start-time fair queueing)
	ready    chan struct{}
	granted  bool
	enqueued time.Time
}

// tenantQ is one tenant's FIFO of waiters plus its fair-queueing state.
// Abandoned waiters are removed eagerly, so q holds only live ones.
type tenantQ struct {
	weight  float64
	lastTag float64
	q       []*waiter
}

// Admission is the bounded-concurrency gate in front of the engine. Slots
// are granted in weighted-fair order across tenants: each waiter gets a
// virtual finish tag max(vtime, tenantLast) + 1/weight, and frees slots go
// to the smallest tag. Within a tenant, FIFO. Safe for concurrent use.
type Admission struct {
	mu       sync.Mutex
	cfg      AdmitConfig
	clock    func() time.Time
	inFlight int
	queued   int
	vtime    float64
	tenants  map[string]*tenantQ
}

// NewAdmission creates an admission gate. clock may be nil (time.Now).
func NewAdmission(cfg AdmitConfig, clock func() time.Time) *Admission {
	cfg.fill()
	if clock == nil {
		clock = time.Now
	}
	return &Admission{cfg: cfg, clock: clock, tenants: make(map[string]*tenantQ)}
}

// Acquire obtains an admission slot for tenant, waiting in the weighted-
// fair queue if the in-flight limit is reached. It returns a release
// function (call exactly once when the query leaves the engine) and the
// time spent queued. It fails fast with ErrQueueFull when the queue is at
// capacity, or with ctx.Err() when the caller's deadline expires while
// queued — the abandoned waiter is dropped from the queue.
func (a *Admission) Acquire(ctx context.Context, tenant string) (release func(), wait time.Duration, err error) {
	a.mu.Lock()
	if a.inFlight < a.cfg.MaxInFlight && a.queued == 0 {
		a.inFlight++
		a.mu.Unlock()
		return a.release, 0, nil
	}
	if a.queued >= a.cfg.MaxQueue {
		a.mu.Unlock()
		return nil, 0, ErrQueueFull
	}
	if t := a.tenants[tenant]; t != nil && len(t.q) >= a.cfg.MaxQueuePerTenant {
		a.mu.Unlock()
		return nil, 0, ErrQueueFull
	}
	t := a.tenants[tenant]
	if t == nil {
		w := a.cfg.DefaultWeight
		if ww, ok := a.cfg.Weights[tenant]; ok && ww > 0 {
			w = ww
		}
		t = &tenantQ{weight: w, lastTag: a.vtime}
		a.tenants[tenant] = t
	}
	w := &waiter{ready: make(chan struct{}), enqueued: a.clock()}
	w.tag = max(a.vtime, t.lastTag) + 1/t.weight
	t.lastTag = w.tag
	t.q = append(t.q, w)
	a.queued++
	a.mu.Unlock()

	select {
	case <-w.ready:
		return a.release, a.clock().Sub(w.enqueued), nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the deadline; the slot is ours to return.
			a.mu.Unlock()
			return a.release, a.clock().Sub(w.enqueued), nil
		}
		// Remove the waiter eagerly: leaving it for a lazy dispatch sweep
		// would let abandoned waiters accumulate unboundedly while every
		// slot is held by a long query (no release → no dispatch).
		for i, qw := range t.q {
			if qw == w {
				t.q = append(t.q[:i], t.q[i+1:]...)
				break
			}
		}
		if len(t.q) == 0 {
			delete(a.tenants, tenant)
		}
		a.queued--
		a.mu.Unlock()
		return nil, 0, ctx.Err()
	}
}

// release frees one slot and hands it to the fairest waiter.
func (a *Admission) release() {
	a.mu.Lock()
	a.inFlight--
	a.dispatch()
	a.mu.Unlock()
}

// dispatch grants free slots to the waiters with the smallest virtual
// finish tags. Caller holds mu. Tenant counts are small (a linear scan
// beats a heap at this scale and cannot get the lazy-removal bookkeeping
// wrong).
func (a *Admission) dispatch() {
	for a.inFlight < a.cfg.MaxInFlight {
		var best *tenantQ
		var bestName string
		for name, t := range a.tenants {
			// Abandoned waiters are removed eagerly in Acquire, so every
			// queued waiter here is live; forget tenants whose queues
			// drained — the name is client-supplied, so retaining every
			// string ever seen would grow without bound. A returning
			// tenant re-anchors at the current vtime, which is exactly
			// what a fresh tenantQ does.
			if len(t.q) == 0 {
				delete(a.tenants, name)
				continue
			}
			if best == nil || t.q[0].tag < best.q[0].tag {
				best, bestName = t, name
			}
		}
		if best == nil {
			return
		}
		w := best.q[0]
		best.q = best.q[1:]
		if len(best.q) == 0 {
			delete(a.tenants, bestName)
		}
		a.queued--
		a.inFlight++
		a.vtime = max(a.vtime, w.tag)
		w.granted = true
		close(w.ready)
	}
}

// Full reports whether a new waiter for tenant would be rejected
// outright (global queue or the tenant's share exhausted); the server
// uses it to bounce async submissions before allocating per-request
// state for a query that admission would refuse anyway.
func (a *Admission) Full(tenant string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.queued >= a.cfg.MaxQueue {
		return true
	}
	t := a.tenants[tenant]
	return t != nil && len(t.q) >= a.cfg.MaxQueuePerTenant
}

// AdmitStats is the admission introspection for /stats.
type AdmitStats struct {
	InFlight    int `json:"in_flight"`
	Queued      int `json:"queued"`
	MaxInFlight int `json:"max_in_flight"`
	MaxQueue    int `json:"max_queue"`
}

// Stats returns a consistent snapshot.
func (a *Admission) Stats() AdmitStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmitStats{
		InFlight:    a.inFlight,
		Queued:      a.queued,
		MaxInFlight: a.cfg.MaxInFlight,
		MaxQueue:    a.cfg.MaxQueue,
	}
}
