package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/core"
	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
)

func postMutate(t *testing.T, url string, req MutateRequest) (int, MutateResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/mutate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /mutate: %v", err)
	}
	defer resp.Body.Close()
	var mr MutateResponse
	_ = json.NewDecoder(resp.Body).Decode(&mr)
	return resp.StatusCode, mr
}

// TestMutateEndpoint exercises the wire layer against the stub backend:
// valid batches land with a version, malformed ones are 400s, and the
// serving counters track ops.
func TestMutateEndpoint(t *testing.T) {
	b := newStubBackend()
	s, ts := newTestServer(t, b, nil)

	code, mr := postMutate(t, ts.URL, MutateRequest{Ops: []MutateOp{
		{Op: "add_edge", From: 0, To: 5, Weight: 2.5},
		{Op: "add_vertex"},
	}})
	if code != http.StatusOK || mr.Version != 1 || mr.Applied != 2 {
		t.Fatalf("mutate = %d %+v", code, mr)
	}
	if len(b.mutations) != 1 || len(b.mutations[0]) != 2 {
		t.Fatalf("backend saw %v", b.mutations)
	}
	if b.mutations[0][0] != (delta.Op{Kind: delta.OpAddEdge, From: 0, To: 5, Weight: 2.5}) {
		t.Fatalf("op converted wrong: %+v", b.mutations[0][0])
	}

	for _, bad := range []MutateRequest{
		{},                                 // empty ops
		{Ops: []MutateOp{{Op: "explode"}}}, // unknown kind
		{Ops: []MutateOp{{Op: "add_edge", From: -1, To: 0}}},            // bad vertex
		{Ops: []MutateOp{{Op: "add_edge", From: 0, To: 1, Weight: -2}}}, // bad weight
	} {
		if code, _ := postMutate(t, ts.URL, bad); code != http.StatusBadRequest {
			t.Errorf("bad request %+v -> %d, want 400", bad, code)
		}
	}

	snap := s.Counters().Snapshot(time.Now())
	if snap.MutationOps != 2 || snap.MutationsApplied != 2 || snap.MutationBatches != 1 {
		t.Fatalf("counters = %+v", snap)
	}
}

// TestMutateVersionHeaderReadYourWrites: the /mutate response stamps the
// committed version on X-QGraph-Version, and echoing it as ?min_version=
// admits the follow-up read (while a version the node has not applied is
// refused 412) — the whole read-your-writes loop.
func TestMutateVersionHeaderReadYourWrites(t *testing.T) {
	b := newStubBackend()
	_, ts := newTestServer(t, b, nil)

	body, _ := json.Marshal(MutateRequest{Ops: []MutateOp{
		{Op: "add_edge", From: 0, To: 5, Weight: 2.5},
	}})
	resp, err := http.Post(ts.URL+"/mutate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate = %d", resp.StatusCode)
	}
	got := resp.Header.Get(VersionHeader)
	if got != "1" {
		t.Fatalf("%s = %q, want the committed version 1", VersionHeader, got)
	}

	// Echo the stamped version: the read must be admitted.
	q, _ := json.Marshal(QueryRequest{Kind: "sssp", Source: 0, Target: ptr(int64(5))})
	r2, err := http.Post(ts.URL+"/query?min_version="+got, "application/json", bytes.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("read at min_version=%s = %d, want 200", got, r2.StatusCode)
	}

	// A version this node has not applied yet must be refused, not served
	// from older state.
	r3, err := http.Post(ts.URL+"/query?min_version=99", "application/json", bytes.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("read at min_version=99 = %d, want 412", r3.StatusCode)
	}
	if v := r3.Header.Get(VersionHeader); v != "1" {
		t.Fatalf("412 response stamps %s = %q, want the applied version 1", VersionHeader, v)
	}
}

// TestHealthzReportsVersionsAndDegradation: /healthz carries the live
// graph version and repartition epoch, and turns 503 when the engine is
// degraded.
func TestHealthzReportsVersionsAndDegradation(t *testing.T) {
	b := newStubBackend()
	b.version.Store(4)
	b.epoch.Store(2)
	_, ts := newTestServer(t, b, nil)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	_ = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" ||
		hz.GraphVersion != 4 || hz.RepartitionEpoch != 2 {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, hz)
	}

	b.mu.Lock()
	b.health = controller.Health{Degraded: true, DeadWorkers: []int{1}}
	b.mu.Unlock()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hz.Status != "degraded" ||
		len(hz.DeadWorkers) != 1 || hz.DeadWorkers[0] != 1 {
		t.Fatalf("degraded healthz = %d %+v", resp.StatusCode, hz)
	}
}

// TestMutateFlushesCacheExactlyOnCommit is the serving-layer end-to-end
// acceptance: over a real engine, a cached result is served until the
// commit, and the very next query after the commit reflects the mutated
// topology — never a stale cached answer across the version bump.
func TestMutateFlushesCacheExactlyOnCommit(t *testing.T) {
	b := graph.NewBuilder(6)
	for v := 0; v+1 < 6; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	g := b.MustBuild()
	eng, err := core.Start(core.Config{
		Workers: 2, Graph: g, Partitioner: partition.Hash{},
		CommitEvery: time.Millisecond, MaxBatchOps: 1, CheckEvery: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := eng.Close(); err != nil {
			t.Errorf("engine: %v", err)
		}
	}()
	srv, err := New(Config{Backend: eng.Controller(), GraphID: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := QueryRequest{Kind: "sssp", Source: 0, Target: ptr(int64(5))}
	code, qr, _ := postQuery(t, ts.URL, q)
	if code != http.StatusOK || qr.Value == nil || *qr.Value != 5 {
		t.Fatalf("first query = %d %+v", code, qr)
	}
	// Identical repeat is a cache hit with the same answer.
	_, qr, _ = postQuery(t, ts.URL, q)
	if !qr.CacheHit || *qr.Value != 5 {
		t.Fatalf("repeat not served from cache: %+v", qr)
	}

	// Commit a weight change on the path.
	ops := make([]MutateOp, 5)
	for v := 0; v < 5; v++ {
		ops[v] = MutateOp{Op: "set_weight", From: int64(v), To: int64(v + 1), Weight: 3}
	}
	mcode, mr := postMutate(t, ts.URL, MutateRequest{Ops: ops})
	if mcode != http.StatusOK || mr.Version != 1 || mr.Applied != 5 {
		t.Fatalf("mutate = %d %+v", mcode, mr)
	}

	// The next query must NOT be served from the pre-commit cache.
	_, qr, _ = postQuery(t, ts.URL, q)
	if qr.CacheHit {
		t.Fatalf("stale cache hit across version bump: %+v", qr)
	}
	if qr.Value == nil || *qr.Value != 15 {
		t.Fatalf("post-commit value = %+v, want 15", qr.Value)
	}
	// And the new answer is cached under the new epoch.
	_, qr, _ = postQuery(t, ts.URL, q)
	if !qr.CacheHit || *qr.Value != 15 {
		t.Fatalf("post-commit repeat not cached: %+v", qr)
	}

	// Growth through the HTTP plane: add a vertex and route to it.
	mcode, mr = postMutate(t, ts.URL, MutateRequest{Ops: []MutateOp{
		{Op: "add_vertex"},
		{Op: "add_edge", From: 5, To: 6, Weight: 2},
	}})
	if mcode != http.StatusOK || mr.Version != 2 {
		t.Fatalf("growth mutate = %d %+v", mcode, mr)
	}
	code, qr, _ = postQuery(t, ts.URL, QueryRequest{Kind: "sssp", Source: 0, Target: ptr(int64(6))})
	if code != http.StatusOK || qr.Value == nil || *qr.Value != 17 {
		t.Fatalf("query to added vertex = %d %+v", code, qr)
	}

	// Stats reflect the mutation plane.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	_ = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Engine.GraphVersion != 2 || st.Engine.Vertices != 7 {
		t.Fatalf("stats engine = %+v", st.Engine)
	}
	if st.Serve.MutationsApplied != 7 || st.Cache.Epoch.Version != 2 {
		t.Fatalf("stats mutations=%d cache epoch=%+v", st.Serve.MutationsApplied, st.Cache.Epoch)
	}
}

func ptr[T any](v T) *T { return &v }
