package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/core"
	"qgraph/internal/delta"
	"qgraph/internal/gen"
	"qgraph/internal/graph"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
	recovery "qgraph/internal/recover"
	"qgraph/internal/snapshot"
	"qgraph/internal/wal"
)

// ---------------------------------------------------------------------------
// Stub backend: deterministic, controllable engine for handler tests.

type stubBackend struct {
	mu        sync.Mutex
	epoch     atomic.Int64
	version   atomic.Uint64
	view      graph.View
	mutations [][]delta.Op
	mutErr    error
	health    controller.Health
	recovery  recovery.Stats
	snapStats snapshot.Stats
	walStats  wal.Stats
	snapErr   error
	scheduled int
	cancelled map[query.ID]bool
	// block, when non-nil, holds every query until closed (admission
	// tests) — unless Cancel releases it individually first.
	block chan struct{}
	// ignoreCancel makes blocked queries wait out the block and complete
	// normally, modelling a result that races the cancel.
	ignoreCancel bool
	cancels      map[query.ID]chan struct{}
}

func newStubBackend() *stubBackend {
	return &stubBackend{
		view:      testGraph(),
		cancelled: make(map[query.ID]bool),
		cancels:   make(map[query.ID]chan struct{}),
	}
}

func (b *stubBackend) Schedule(spec query.Spec) (<-chan controller.Result, error) {
	b.mu.Lock()
	b.scheduled++
	blk := b.block
	cancel := make(chan struct{})
	b.cancels[spec.ID] = cancel
	b.mu.Unlock()
	ch := make(chan controller.Result, 1)
	go func() {
		res := controller.Result{
			Q: spec.ID, Value: float64(spec.Source) * 2, Reason: protocol.FinishConverged,
			Supersteps: 3, Touched: 5, Workers: 1, Latency: time.Millisecond,
		}
		if blk != nil {
			if b.ignoreCancel {
				<-blk
			} else {
				select {
				case <-blk:
				case <-cancel:
					res.Reason = protocol.FinishCancelled
					res.Value = query.NoResult
				}
			}
		}
		ch <- res
	}()
	return ch, nil
}

func (b *stubBackend) Cancel(q query.ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cancelled[q] = true
	if ch, ok := b.cancels[q]; ok {
		close(ch)
		delete(b.cancels, q)
	}
}

func (b *stubBackend) RepartitionEpoch() int64 { return b.epoch.Load() }

func (b *stubBackend) GraphVersion() uint64 { return b.version.Load() }

func (b *stubBackend) GraphView() graph.View {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.view
}

// Mutate records the batch and commits it instantly (version bump).
func (b *stubBackend) Mutate(ops []delta.Op) (<-chan controller.MutationResult, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.mutErr != nil {
		return nil, b.mutErr
	}
	b.mutations = append(b.mutations, ops)
	v := b.version.Add(1)
	ch := make(chan controller.MutationResult, 1)
	ch <- controller.MutationResult{Version: v, Applied: len(ops)}
	return ch, nil
}

func (b *stubBackend) Health() controller.Health {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.health
}

func (b *stubBackend) RecoveryStats() recovery.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.recovery
}

// ForceSnapshot pretends to checkpoint the current version, cutting once
// per version like the real engine.
func (b *stubBackend) ForceSnapshot() (snapshot.Result, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.snapErr != nil {
		return snapshot.Result{}, b.snapErr
	}
	v := b.version.Load()
	res := snapshot.Result{Version: v, Vertices: b.view.NumVertices(), Edges: b.view.NumEdges()}
	if v != b.snapStats.LastSnapshotVersion || b.snapStats.Snapshots == 0 {
		res.Cut = true
		res.TruncatedOps = int64(b.snapStats.DeltaLogOps)
		b.snapStats.Snapshots++
		b.snapStats.LastSnapshotVersion = v
		b.snapStats.TruncatedOps += res.TruncatedOps
		b.snapStats.DeltaLogLen, b.snapStats.DeltaLogOps, b.snapStats.DeltaLogBytes = 0, 0, 0
	}
	return res, nil
}

func (b *stubBackend) SnapshotStats() snapshot.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.snapStats
}

func (b *stubBackend) WALStats() wal.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.walStats
}

func (b *stubBackend) MVCCStats() controller.MVCCStats {
	return controller.MVCCStats{Pipelined: true}
}

func (b *stubBackend) scheduledCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.scheduled
}

// testGraph is a tiny line graph, enough for spec validation.
func testGraph() *graph.Graph {
	b := graph.NewBuilder(16)
	for i := 0; i < 15; i++ {
		b.AddBiEdge(graph.VertexID(i), graph.VertexID(i+1), 1)
	}
	return b.MustBuild()
}

func newTestServer(t *testing.T, b Backend, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Backend: b, GraphID: 1}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postQuery(t *testing.T, url string, req QueryRequest) (int, QueryResponse, http.Header) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, qr, resp.Header
}

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	return st
}

func target(v int64) *int64 { return &v }

// ---------------------------------------------------------------------------
// Handler tests

func TestQueryBasicAndValidation(t *testing.T) {
	_, ts := newTestServer(t, newStubBackend(), nil)

	code, qr, _ := postQuery(t, ts.URL, QueryRequest{Kind: "sssp", Source: 3, Target: target(5)})
	if code != http.StatusOK || qr.Status != "done" || qr.Value == nil || *qr.Value != 6 {
		t.Fatalf("got %d %+v, want 200 done value 6", code, qr)
	}
	if qr.Reason != "converged" || qr.Supersteps != 3 {
		t.Fatalf("reason %q supersteps %d, want converged/3", qr.Reason, qr.Supersteps)
	}

	for _, bad := range []QueryRequest{
		{Kind: "dijkstra", Source: 1},                 // unknown kind
		{Kind: "sssp", Source: 99, Target: target(1)}, // source out of range
		{Kind: "poi", Source: 1},                      // untagged graph
	} {
		if code, _, _ := postQuery(t, ts.URL, bad); code != http.StatusBadRequest {
			t.Fatalf("request %+v: got %d, want 400", bad, code)
		}
	}
}

func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, newStubBackend(), nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %v %v, want 503", resp.StatusCode, err)
	}
	resp.Body.Close()
	if code, _, _ := postQuery(t, ts.URL, QueryRequest{Kind: "bfs", Source: 1}); code != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: %d, want 503", code)
	}
}

func TestCacheHitAndRepartitionInvalidation(t *testing.T) {
	b := newStubBackend()
	_, ts := newTestServer(t, b, nil)
	req := QueryRequest{Kind: "sssp", Source: 2, Target: target(9)}

	if code, qr, _ := postQuery(t, ts.URL, req); code != 200 || qr.CacheHit {
		t.Fatalf("first: %d hit=%v, want 200 miss", code, qr.CacheHit)
	}
	if code, qr, _ := postQuery(t, ts.URL, req); code != 200 || !qr.CacheHit {
		t.Fatalf("second: %d hit=%v, want cache hit", code, qr.CacheHit)
	}
	if n := b.scheduledCount(); n != 1 {
		t.Fatalf("engine saw %d schedules, want 1 (second was a hit)", n)
	}

	// A repartition epoch change must flush the cache.
	b.epoch.Add(1)
	if code, qr, _ := postQuery(t, ts.URL, req); code != 200 || qr.CacheHit {
		t.Fatalf("post-repartition: %d hit=%v, want miss", code, qr.CacheHit)
	}
	if n := b.scheduledCount(); n != 2 {
		t.Fatalf("engine saw %d schedules, want 2 after invalidation", n)
	}
	st := getStats(t, ts.URL)
	if st.Serve.Invalidated < 1 {
		t.Fatalf("stats report %d invalidations, want ≥1", st.Serve.Invalidated)
	}
	if st.Engine.RepartitionEpoch != 1 {
		t.Fatalf("stats repartition epoch %d, want 1", st.Engine.RepartitionEpoch)
	}

	// NoCache bypasses lookup and storage.
	if code, qr, _ := postQuery(t, ts.URL, QueryRequest{Kind: "sssp", Source: 2, Target: target(9), NoCache: true}); code != 200 || qr.CacheHit {
		t.Fatalf("no_cache request: %d hit=%v, want miss", code, qr.CacheHit)
	}
	if n := b.scheduledCount(); n != 3 {
		t.Fatalf("engine saw %d schedules, want 3 (no_cache executes)", n)
	}
}

func TestAdmissionRejectionUnderLoad(t *testing.T) {
	b := newStubBackend()
	b.block = make(chan struct{})
	s, ts := newTestServer(t, b, func(c *Config) {
		c.Admit = AdmitConfig{MaxInFlight: 2, MaxQueue: 2, MaxQueuePerTenant: 2}
	})

	// 4 distinct queries fill the in-flight set and the queue.
	var wg sync.WaitGroup
	codes := make([]int, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, _ = postQuery(t, ts.URL, QueryRequest{Kind: "bfs", Source: int64(i), Target: target(15)})
		}(i)
	}
	waitFor(t, func() bool {
		st := s.admit.Stats()
		return st.InFlight == 2 && st.Queued == 2
	})

	// The next distinct queries must bounce with 429 + Retry-After.
	rejected := 0
	for i := 4; i < 8; i++ {
		code, _, hdr := postQuery(t, ts.URL, QueryRequest{Kind: "bfs", Source: int64(i), Target: target(15)})
		codes[i] = code
		if code == http.StatusTooManyRequests {
			rejected++
			if hdr.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After header")
			}
		}
	}
	if rejected != 4 {
		t.Fatalf("%d of 4 overload requests rejected, want all (codes %v)", rejected, codes[4:])
	}

	close(b.block) // release the engine; the admitted 4 finish
	wg.Wait()
	for i := 0; i < 4; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("admitted request %d got %d, want 200", i, codes[i])
		}
	}
	if st := getStats(t, ts.URL); st.Serve.Rejected != 4 || st.Serve.Completed != 4 {
		t.Fatalf("stats %+v, want 4 rejected 4 completed", st.Serve)
	}
}

func TestDeadlineCancelsQuery(t *testing.T) {
	b := newStubBackend()
	b.block = make(chan struct{}) // queries hang until cancelled
	s, ts := newTestServer(t, b, nil)

	code, _, _ := postQuery(t, ts.URL, QueryRequest{
		Kind: "sssp", Source: 1, Target: target(2), TimeoutMS: 50,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("got %d, want 504", code)
	}
	b.mu.Lock()
	cancelled := len(b.cancelled) == 1
	b.mu.Unlock()
	if !cancelled {
		t.Fatal("deadline did not cancel the query on the engine")
	}
	// The admission slot frees once the engine delivers the cancelled
	// result (the reaper goroutine), not before.
	waitFor(t, func() bool { return s.admit.Stats().InFlight == 0 })
	if st := getStats(t, ts.URL); st.Serve.Expired != 1 {
		t.Fatalf("stats expired %d, want 1", st.Serve.Expired)
	}
}

// TestAsyncResultStoreCap: async submissions beyond MaxAsyncResults are
// rejected 429 — the hard bound on result-store memory.
func TestAsyncResultStoreCap(t *testing.T) {
	b := newStubBackend()
	b.block = make(chan struct{})
	_, ts := newTestServer(t, b, func(c *Config) { c.MaxAsyncResults = 2 })
	defer close(b.block)

	for i := 0; i < 2; i++ {
		code, _, _ := postQuery(t, ts.URL, QueryRequest{Kind: "bfs", Source: int64(i), Target: target(15), Async: true})
		if code != http.StatusAccepted {
			t.Fatalf("async submit %d: got %d, want 202", i, code)
		}
	}
	code, _, hdr := postQuery(t, ts.URL, QueryRequest{Kind: "bfs", Source: 9, Target: target(15), Async: true})
	if code != http.StatusTooManyRequests || hdr.Get("Retry-After") == "" {
		t.Fatalf("over-cap async submit: got %d (Retry-After %q), want 429 with Retry-After", code, hdr.Get("Retry-After"))
	}
}

// TestLateResultIsCached: a result completing just after its request's
// deadline is stored, so the paid-for work serves the next request.
func TestLateResultIsCached(t *testing.T) {
	b := newStubBackend()
	b.block = make(chan struct{})
	b.ignoreCancel = true
	s, ts := newTestServer(t, b, nil)

	req := QueryRequest{Kind: "sssp", Source: 5, Target: target(9), TimeoutMS: 30}
	if code, _, _ := postQuery(t, ts.URL, req); code != http.StatusGatewayTimeout {
		t.Fatalf("got %d, want 504", code)
	}
	close(b.block) // the engine finishes the abandoned query anyway
	waitFor(t, func() bool { return s.admit.Stats().InFlight == 0 })

	req.TimeoutMS = 0
	code, qr, _ := postQuery(t, ts.URL, req)
	if code != http.StatusOK || !qr.CacheHit {
		t.Fatalf("retry after late completion: %d hit=%v, want cache hit", code, qr.CacheHit)
	}
	if n := b.scheduledCount(); n != 1 {
		t.Fatalf("engine saw %d schedules, want 1 (late result reused)", n)
	}
}

func TestCoalescingJoinsInFlight(t *testing.T) {
	b := newStubBackend()
	b.block = make(chan struct{})
	_, ts := newTestServer(t, b, nil)

	req := QueryRequest{Kind: "sssp", Source: 4, Target: target(8)}
	results := make(chan QueryResponse, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, qr, _ := postQuery(t, ts.URL, req)
			results <- qr
		}()
	}
	// Both requests are in flight on one engine query.
	waitFor(t, func() bool { return b.scheduledCount() == 1 && getStats(t, ts.URL).Serve.Received == 2 })
	close(b.block)
	a, bb := <-results, <-results
	if a.Value == nil || bb.Value == nil || *a.Value != *bb.Value {
		t.Fatalf("coalesced results differ: %+v vs %+v", a, bb)
	}
	if !a.Coalesced && !bb.Coalesced {
		t.Fatal("neither response was marked coalesced")
	}
	if n := b.scheduledCount(); n != 1 {
		t.Fatalf("engine saw %d schedules, want 1 (coalesced)", n)
	}
}

func TestAsyncResultFlow(t *testing.T) {
	b := newStubBackend()
	_, ts := newTestServer(t, b, nil)
	code, qr, _ := postQuery(t, ts.URL, QueryRequest{Kind: "bfs", Source: 1, Target: target(3), Async: true})
	if code != http.StatusAccepted || qr.Status != "pending" || qr.ID == 0 {
		t.Fatalf("async submit: %d %+v, want 202 pending", code, qr)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/result/%d", ts.URL, qr.ID))
		if err != nil {
			t.Fatal(err)
		}
		var got QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got.Status == "done" {
			if got.Value == nil || *got.Value != 2 {
				t.Fatalf("async result %+v, want value 2", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async result never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Unknown ids 404.
	resp, _ := http.Get(ts.URL + "/result/999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown result id: %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// ---------------------------------------------------------------------------
// End-to-end: the full HTTP API over a real engine.

// testRoad mirrors the core engine tests' small road network.
func testRoad(t testing.TB) *gen.RoadNet {
	t.Helper()
	net, err := gen.Road(gen.RoadConfig{
		CellsX: 24, CellsY: 24, CellKM: 0.5, Jitter: 0.3,
		RemoveProb: 0.08, DiagProb: 0.05,
		HighwayEvery: 8, LocalSpeed: 50, HighwaySpeed: 110,
		NumCities: 4, ZipfS: 1, TagProb: 0.01, Seed: 7,
	})
	if err != nil {
		t.Fatalf("gen.Road: %v", err)
	}
	return net
}

// TestServeEndToEnd drives ≥500 mixed SSSP/BFS/PageRank queries through
// the HTTP API over a real 4-worker engine at concurrency 32, asserting
// zero failed queries, SSSP answers matching Dijkstra, a nonzero cache
// hit ratio, and observable admission rejections (429) under overload.
func TestServeEndToEnd(t *testing.T) {
	net := testRoad(t)
	eng, err := core.Start(core.Config{
		Workers: 4, Graph: net.G,
		ComputeCost: 2 * time.Microsecond, // keep queries non-instant
	})
	if err != nil {
		t.Fatalf("core.Start: %v", err)
	}
	defer func() {
		if err := eng.Close(); err != nil {
			t.Errorf("engine: %v", err)
		}
	}()

	srv, err := New(Config{
		Backend: eng.Controller(), GraphID: 7,
		Admit: AdmitConfig{
			MaxInFlight: 8, MaxQueue: 8,
			Weights: map[string]float64{"gold": 4},
		},
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A fixed pool of distinct queries; repeats exercise the cache. SSSP
	// answers are pre-computed sequentially for correctness checking.
	n := int64(net.G.NumVertices())
	rng := rand.New(rand.NewPCG(11, 13))
	type pooled struct {
		req  QueryRequest
		want float64 // expected SSSP distance; NaN-free sentinel below
	}
	const noCheck = -1
	var pool []pooled
	for i := 0; i < 24; i++ {
		src, dst := rng.Int64N(n), rng.Int64N(n)
		want := graph.DijkstraTo(net.G, graph.VertexID(src), graph.VertexID(dst))
		if want == query.NoResult {
			want = noCheck // unreachable pair; response value is null
		}
		pool = append(pool, pooled{
			req:  QueryRequest{Kind: "sssp", Source: src, Target: target(dst)},
			want: want,
		})
	}
	for i := 0; i < 16; i++ {
		pool = append(pool, pooled{
			req:  QueryRequest{Kind: "bfs", Source: rng.Int64N(n), MaxIters: 4},
			want: noCheck,
		})
	}
	for i := 0; i < 8; i++ {
		pool = append(pool, pooled{
			req:  QueryRequest{Kind: "pagerank", Source: rng.Int64N(n), MaxIters: 6, Epsilon: 1e-3},
			want: noCheck,
		})
	}

	const (
		totalQueries = 520
		concurrency  = 32
	)
	tenants := []string{"gold", "silver", "bronze", "default"}
	work := make(chan int, totalQueries)
	for i := 0; i < totalQueries; i++ {
		work <- i
	}
	close(work)

	var completed, clientRejects atomic.Int64
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 30 * time.Second}
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work {
				p := pool[i%len(pool)]
				p.req.Tenant = tenants[i%len(tenants)]
				body, _ := json.Marshal(p.req)
				for attempt := 0; ; attempt++ {
					resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Errorf("query %d: %v", i, err)
						break
					}
					var qr QueryResponse
					decErr := json.NewDecoder(resp.Body).Decode(&qr)
					resp.Body.Close()
					if resp.StatusCode == http.StatusTooManyRequests {
						// Backpressure: retry after a short pause. These
						// are rejected requests, not failed queries.
						clientRejects.Add(1)
						time.Sleep(time.Duration(2+attempt%5) * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusOK || decErr != nil {
						t.Errorf("query %d (%s): status %d decode %v", i, p.req.Kind, resp.StatusCode, decErr)
						break
					}
					if qr.Status != "done" || qr.Reason == "" {
						t.Errorf("query %d: malformed response %+v", i, qr)
						break
					}
					if p.want != noCheck {
						if qr.Value == nil {
							t.Errorf("sssp %d: null value, want %g", i, p.want)
						} else if diff := *qr.Value - p.want; diff > 1e-6 || diff < -1e-6 {
							t.Errorf("sssp %d: value %g, want %g", i, *qr.Value, p.want)
						}
					} else if p.req.Kind == "sssp" && qr.Value != nil {
						t.Errorf("sssp %d: value %g for unreachable pair, want null", i, *qr.Value)
					}
					completed.Add(1)
					break
				}
			}
		}(w)
	}
	wg.Wait()

	if got := completed.Load(); got != totalQueries {
		t.Fatalf("completed %d of %d queries", got, totalQueries)
	}
	if clientRejects.Load() == 0 {
		// The storm raced past the queue limit without a single rejection
		// (machine-dependent timing): drive the 429 path deterministically
		// by holding every admission slot and flooding cache misses.
		var rels []func()
		for i := 0; i < 8; i++ {
			rel, _, err := srv.admit.Acquire(context.Background(), "holder")
			if err != nil {
				t.Fatalf("saturating admission: %v", err)
			}
			rels = append(rels, rel)
		}
		var fwg sync.WaitGroup
		for i := 0; i < 20; i++ {
			fwg.Add(1)
			go func(i int) {
				defer fwg.Done()
				body, _ := json.Marshal(QueryRequest{Kind: "bfs", Source: int64(i), MaxIters: 2, TimeoutMS: 100})
				resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					return
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					clientRejects.Add(1)
				}
			}(i)
		}
		fwg.Wait()
		for _, rel := range rels {
			rel()
		}
	}
	st := getStats(t, ts.URL)
	if st.Serve.Failed != 0 {
		t.Fatalf("server reports %d failed queries, want 0", st.Serve.Failed)
	}
	if st.Serve.Completed < totalQueries {
		t.Fatalf("server completed %d, want ≥%d", st.Serve.Completed, totalQueries)
	}
	if st.Serve.HitRatio <= 0 {
		t.Fatalf("cache hit ratio %v, want > 0 (hits %d, coalesced %d, misses %d)",
			st.Serve.HitRatio, st.Serve.CacheHits, st.Serve.Coalesced, st.Serve.CacheMisses)
	}
	if st.Serve.Rejected == 0 || clientRejects.Load() == 0 {
		t.Fatalf("no admission rejections observed (server %d, client %d) — overload did not bite",
			st.Serve.Rejected, clientRejects.Load())
	}
	if st.Serve.QPS <= 0 || st.Serve.MeanQueueWait < 0 {
		t.Fatalf("implausible stats: %+v", st.Serve)
	}
	t.Logf("e2e: %d queries, %d rejections retried, hit ratio %.2f, %.0f qps, mean queue wait %s",
		totalQueries, clientRejects.Load(), st.Serve.HitRatio, st.Serve.QPS, st.Serve.MeanQueueWait)
}
