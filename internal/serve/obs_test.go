package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"qgraph/internal/core"
	"qgraph/internal/faultpoint"
	"qgraph/internal/obs"
)

// ---------------------------------------------------------------------------
// Prometheus text-format helpers

// promSample matches one exposition sample line: name, optional rendered
// label set, one float value.
var promSample = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]Inf|[-+]?[0-9.]+(?:[eE][-+]?[0-9]+)?)$`)

var promComment = regexp.MustCompile(
	`^# (HELP [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?|TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram))$`)

// scrapeMetrics fetches /metrics, validates every line against the text
// exposition format (each sample preceded by a TYPE declaration for its
// family), and returns the samples keyed by "name" or `name{labels}`.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	typed := make(map[string]string) // family -> declared type
	for ln, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			m := promComment.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("/metrics line %d: malformed comment %q", ln+1, line)
			}
			if strings.HasPrefix(m[1], "TYPE ") {
				fields := strings.Fields(m[1])
				typed[fields[1]] = fields[2]
			}
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("/metrics line %d: malformed sample %q", ln+1, line)
		}
		name := m[1]
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && typed[base] == "histogram" {
				fam = base
			}
		}
		if typed[fam] == "" {
			t.Fatalf("/metrics line %d: sample %q has no preceding # TYPE", ln+1, name)
		}
		var v float64
		if _, err := fmt.Sscanf(m[3], "%g", &v); err != nil {
			t.Fatalf("/metrics line %d: unparseable value %q", ln+1, m[3])
		}
		out[name+m[2]] = v
	}
	if len(out) == 0 {
		t.Fatal("/metrics served no samples")
	}
	return out
}

// TestMetricsEndpointAgreesWithStats drives traffic through a stub
// backend and asserts /metrics is valid Prometheus text whose values
// match the /stats JSON — both render the same counters, so any
// disagreement is a drift bug.
func TestMetricsEndpointAgreesWithStats(t *testing.T) {
	b := newStubBackend()
	_, ts := newTestServer(t, b, nil)

	req := QueryRequest{Kind: "sssp", Source: 2, Target: target(9)}
	if code, _, _ := postQuery(t, ts.URL, req); code != 200 {
		t.Fatalf("miss: %d", code)
	}
	if code, qr, _ := postQuery(t, ts.URL, req); code != 200 || !qr.CacheHit {
		t.Fatalf("hit: %d %+v", code, qr)
	}
	if code, _, _ := postQuery(t, ts.URL, QueryRequest{Kind: "bfs", Source: 1}); code != 200 {
		t.Fatalf("bfs: %d", code)
	}
	mut, _ := json.Marshal(MutateRequest{Ops: []MutateOp{
		{Op: "add_edge", From: 1, To: 9, Weight: 2},
		{Op: "add_edge", From: 2, To: 9, Weight: 2},
	}})
	if resp, err := http.Post(ts.URL+"/mutate", "application/json", bytes.NewReader(mut)); err != nil || resp.StatusCode != 200 {
		t.Fatalf("mutate: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	got := scrapeMetrics(t, ts.URL)
	st := getStats(t, ts.URL)

	for name, want := range map[string]float64{
		"qgraph_serve_received_total":   float64(st.Serve.Received),
		"qgraph_serve_completed_total":  float64(st.Serve.Completed),
		"qgraph_serve_failed_total":     float64(st.Serve.Failed),
		"qgraph_cache_hits_total":       float64(st.Serve.CacheHits),
		"qgraph_cache_misses_total":     float64(st.Serve.CacheMisses),
		"qgraph_mutation_ops_total":     float64(st.Serve.MutationOps),
		"qgraph_mutation_batches_total": float64(st.Serve.MutationBatches),
		"qgraph_cache_entries":          float64(st.Cache.Entries),
		"qgraph_admission_in_flight":    float64(st.Admission.InFlight),
		"qgraph_admission_queued":       float64(st.Admission.Queued),
		"qgraph_serve_rejected_total":   0,
		"qgraph_serve_expired_total":    0,
		"qgraph_mutations_failed_total": 0,
		"qgraph_request_seconds_count":  3,
		"qgraph_trace_ring_active":      0,
		"qgraph_trace_ring_completed":   3,
	} {
		if v, ok := got[name]; !ok {
			t.Errorf("/metrics is missing %s", name)
		} else if v != want {
			t.Errorf("%s = %g, want %g (stats %+v)", name, v, want, st.Serve)
		}
	}
	if st.Serve.Received != 3 || st.Serve.CacheHits != 1 {
		t.Fatalf("unexpected traffic accounting: %+v", st.Serve)
	}
	// Histogram invariants: buckets cumulative and +Inf equals _count.
	if inf, count := got[`qgraph_request_seconds_bucket{le="+Inf"}`], got["qgraph_request_seconds_count"]; inf != count {
		t.Fatalf("request_seconds +Inf bucket %g != count %g", inf, count)
	}
}

// TestTraceEndpoints exercises /trace/{id} and /traces over the stub
// backend, including the error paths and the no-leak invariant on the
// tracer ring.
func TestTraceEndpoints(t *testing.T) {
	b := newStubBackend()
	s, ts := newTestServer(t, b, nil)

	ids := make([]int64, 0, 3)
	for i := int64(0); i < 3; i++ {
		code, qr, _ := postQuery(t, ts.URL, QueryRequest{Kind: "bfs", Source: i, NoCache: true})
		if code != 200 {
			t.Fatalf("query %d: %d", i, code)
		}
		ids = append(ids, qr.ID)
	}

	var tq tracedQuery
	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	if code := getJSON(fmt.Sprintf("/trace/%d", ids[1]), &tq); code != 200 {
		t.Fatalf("GET /trace/%d: %d", ids[1], code)
	}
	if tq.Trace.QueryID != ids[1] || !tq.Trace.Complete || tq.Trace.TraceID == 0 {
		t.Fatalf("trace view %+v, want complete trace for query %d", tq.Trace, ids[1])
	}
	if tq.Trace.Root.Name != "query" {
		t.Fatalf("root span %q, want \"query\"", tq.Trace.Root.Name)
	}
	names := map[string]bool{}
	for _, c := range tq.Trace.Root.Children {
		names[c.Name] = true
	}
	if !names["admission"] {
		t.Fatalf("root children %v, want an admission span", names)
	}
	if len(tq.Phases) == 0 {
		t.Fatal("no phase attribution rows")
	}

	var views []tracedQuery
	if code := getJSON("/traces?slowest=2", &views); code != 200 {
		t.Fatalf("GET /traces: %d", code)
	}
	if len(views) != 2 {
		t.Fatalf("got %d traces, want 2", len(views))
	}
	if views[0].Trace.DurationMS < views[1].Trace.DurationMS {
		t.Fatalf("traces not sorted slowest-first: %g < %g",
			views[0].Trace.DurationMS, views[1].Trace.DurationMS)
	}

	var errBody errorResponse
	if code := getJSON("/trace/999999", &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown trace: %d, want 404", code)
	}
	if code := getJSON("/traces?slowest=bogus", &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad slowest=: %d, want 400", code)
	}

	// No leaked live traces: every request finished, so the only retained
	// state is the completed ring.
	active, completed := s.obs.T().Occupancy()
	if active != 0 || completed != 3 {
		t.Fatalf("tracer occupancy active=%d completed=%d, want 0/3", active, completed)
	}

	// NoTrace disables the per-query span machinery but not /metrics.
	_, ts2 := newTestServer(t, newStubBackend(), func(c *Config) { c.NoTrace = true })
	if code, _, _ := postQuery(t, ts2.URL, QueryRequest{Kind: "bfs", Source: 1}); code != 200 {
		t.Fatalf("NoTrace query: %d", code)
	}
	resp, err := http.Get(ts2.URL + "/trace/1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("NoTrace /trace: %d, want 404", resp.StatusCode)
	}
	scrapeMetrics(t, ts2.URL) // still valid exposition
}

// syncBuffer is a mutex-guarded log sink for concurrent slog writers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceSpanCoverage runs real queries over a real engine sharing one
// Obs with the serving layer and asserts the paper-trail invariants: the
// engine span carries superstep and per-worker children, the span phase
// durations sum to within 10% of the end-to-end latency, worker
// structured logs carry the trace IDs, and no live trace leaks.
func TestTraceSpanCoverage(t *testing.T) {
	net := testRoad(t)
	logs := &syncBuffer{}
	o := obs.New(obs.NewLogger(logs, "info", true, ""))
	eng, err := core.Start(core.Config{
		Workers: 4, Graph: net.G,
		ComputeCost: 5 * time.Microsecond, // engine time dominates tracing slack
		Obs:         o,
	})
	if err != nil {
		t.Fatalf("core.Start: %v", err)
	}
	defer eng.Close()
	srv, err := New(Config{Backend: eng.Controller(), GraphID: 7, Obs: o})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	n := int64(net.G.NumVertices())
	ids := make([]int64, 0, 4)
	for i := int64(0); i < 4; i++ {
		code, qr, _ := postQuery(t, ts.URL, QueryRequest{
			Kind: "sssp", Source: i, Target: target(n - 1 - i),
		})
		if code != 200 {
			t.Fatalf("query %d: %d", i, code)
		}
		ids = append(ids, qr.ID)
	}

	checked := 0
	for _, id := range ids {
		resp, err := http.Get(fmt.Sprintf("%s/trace/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		var tq tracedQuery
		if err := json.NewDecoder(resp.Body).Decode(&tq); err != nil {
			t.Fatalf("decode trace %d: %v", id, err)
		}
		resp.Body.Close()
		root := tq.Trace.Root

		var engine *obs.SpanView
		for i := range root.Children {
			if root.Children[i].Name == "engine" {
				engine = &root.Children[i]
			}
		}
		if engine == nil {
			t.Fatalf("trace %d has no engine span (children %+v)", id, root.Children)
		}
		steps, workerSpans := 0, 0
		for _, c := range engine.Children {
			if strings.HasPrefix(c.Name, "superstep") {
				steps++
				for _, w := range c.Children {
					if strings.HasPrefix(w.Name, "worker") {
						workerSpans++
					}
				}
			}
		}
		if steps == 0 || workerSpans == 0 {
			t.Fatalf("trace %d: %d superstep spans, %d worker spans, want both > 0",
				id, steps, workerSpans)
		}

		// The acceptance bar: tracked phases cover ≥90% of end-to-end time.
		// Sub-millisecond traces are skipped — there the fixed per-request
		// overhead (JSON decode, cache store) dwarfs any measurable phase.
		if root.DurationMS < 1 {
			continue
		}
		var covered float64
		for _, c := range root.Children {
			covered += c.DurationMS
		}
		if covered < 0.9*root.DurationMS || covered > 1.1*root.DurationMS {
			t.Errorf("trace %d: spans cover %.3fms of %.3fms end-to-end (%.0f%%), want within 10%%",
				id, covered, root.DurationMS, 100*covered/root.DurationMS)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no trace exceeded 1ms; the coverage bound was never exercised")
	}

	// Worker structured logs carry the trace IDs serve minted.
	logged := logs.String()
	for _, id := range ids {
		resp, err := http.Get(fmt.Sprintf("%s/trace/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		var tq tracedQuery
		if err := json.NewDecoder(resp.Body).Decode(&tq); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := fmt.Sprintf(`"trace_id":%d`, tq.Trace.TraceID)
		if !strings.Contains(logged, want) {
			t.Errorf("worker logs missing %s for query %d", want, id)
		}
	}
	if !strings.Contains(logged, `"role":"worker"`) {
		t.Error("no worker-role structured log records")
	}

	if active, _ := srv.obs.T().Occupancy(); active != 0 {
		t.Fatalf("%d live traces leaked", active)
	}
}

// TestRecoveryTracePropagation kills a worker mid-query and asserts the
// episode shows up in the traces of the queries it delayed: a coherent
// span tree containing a barrier/recovery span, and a tracer ring that
// returns to baseline occupancy (no spans leaked by the restart path).
func TestRecoveryTracePropagation(t *testing.T) {
	defer faultpoint.Reset()
	o := obs.New(nil)
	eng, _ := recoverEngine(t, o)
	defer eng.Close()
	srv, err := New(Config{Backend: eng.Controller(), GraphID: 1, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fired, disarm := faultpoint.KillOnce(faultpoint.WorkerSuperstep, 1)
	defer disarm()

	var wg sync.WaitGroup
	post := func(src, dst int64) {
		defer wg.Done()
		body, _ := json.Marshal(QueryRequest{Kind: "sssp", Source: src, Target: &dst, NoCache: true})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("query: %v", err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("query %d->%d: HTTP %d", src, dst, resp.StatusCode)
		}
	}
	for wave := 0; wave < 3; wave++ {
		for i := int64(0); i < 4; i++ {
			wg.Add(1)
			go post(i, 31-i)
		}
		time.Sleep(15 * time.Millisecond)
	}
	wg.Wait()
	select {
	case <-fired:
	default:
		t.Fatal("fault point never fired")
	}

	// Every request returned, so every trace must be finished: ring back
	// to baseline (zero live), completed traces retained for inspection.
	waitFor(t, func() bool {
		active, _ := o.T().Occupancy()
		return active == 0
	})
	_, completed := o.T().Occupancy()
	if completed == 0 || completed > obs.DefaultTraceRing {
		t.Fatalf("completed ring holds %d traces, want (0, %d]", completed, obs.DefaultTraceRing)
	}

	resp, err := http.Get(ts.URL + "/traces?slowest=50")
	if err != nil {
		t.Fatal(err)
	}
	var views []tracedQuery
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	recoveryTraces := 0
	for _, v := range views {
		if !v.Trace.Complete {
			t.Fatalf("trace %d served by /traces is not complete", v.Trace.TraceID)
		}
		// No span leaks: a completed trace must not carry open spans. The
		// superstep round aborted by the recovery restart is the
		// regression this guards — its reports never arrive, so only the
		// restart path can close its span.
		var walk func(s obs.SpanView)
		walk = func(s obs.SpanView) {
			if s.Open {
				t.Fatalf("trace %d: span %q still open in a completed trace", v.Trace.TraceID, s.Name)
			}
			for _, c := range s.Children {
				walk(c)
			}
		}
		walk(v.Trace.Root)
		var engine *obs.SpanView
		for i := range v.Trace.Root.Children {
			if v.Trace.Root.Children[i].Name == "engine" {
				engine = &v.Trace.Root.Children[i]
			}
		}
		if engine == nil {
			continue
		}
		for _, c := range engine.Children {
			if c.Name != "barrier/recovery" {
				continue
			}
			recoveryTraces++
			// Coherence: the episode span is a closed, positive-duration
			// region inside the engine span's window.
			if c.Open || c.DurationNS <= 0 {
				t.Fatalf("recovery span incoherent: %+v", c)
			}
			engEnd := engine.StartUnix + engine.DurationNS
			if c.StartUnix < engine.StartUnix || c.StartUnix+c.DurationNS > engEnd {
				t.Fatalf("recovery span [%d,+%d] outside engine span [%d,+%d]",
					c.StartUnix, c.DurationNS, engine.StartUnix, engine.DurationNS)
			}
			break
		}
	}
	if recoveryTraces == 0 {
		t.Fatal("no trace carries a barrier/recovery span despite a recovery episode")
	}
	t.Logf("recovery episode attributed in %d of %d traces", recoveryTraces, len(views))
}

// TestInboundTraceAndNodeHeaders: a /query carrying X-QGraph-Trace-ID
// keeps its spans under the caller's ID — echoed in the response header
// and body, fetchable at /trace/by-id/{id} — and the node identifies
// itself via X-QGraph-Node on every response.
func TestInboundTraceAndNodeHeaders(t *testing.T) {
	b := newStubBackend()
	_, ts := newTestServer(t, b, func(c *Config) { c.NodeID = "node-1"; c.Role = "replica" })

	body, _ := json.Marshal(QueryRequest{Kind: "bfs", Source: 1, NoCache: true})
	req, _ := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(body))
	req.Header.Set(TraceHeader, "424242")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceHeader); got != "424242" {
		t.Fatalf("trace header %q, want the inbound 424242", got)
	}
	if qr.TraceID != 424242 {
		t.Fatalf("body trace_id %d, want 424242", qr.TraceID)
	}
	if got := resp.Header.Get(NodeHeader); got != "node-1/replica" {
		t.Fatalf("node header %q, want node-1/replica", got)
	}

	// The trace is fetchable under the propagated ID.
	var tq tracedQuery
	resp2, err := http.Get(ts.URL + "/trace/by-id/424242")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace/by-id/424242: %d", resp2.StatusCode)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&tq); err != nil {
		t.Fatal(err)
	}
	if tq.Trace.TraceID != 424242 || tq.Trace.Root.Name != "query" {
		t.Fatalf("by-id trace %+v, want the propagated query trace", tq.Trace)
	}

	// Without the header the node assigns its own nonzero ID and echoes it.
	code, qr2, hdr := postQuery(t, ts.URL, QueryRequest{Kind: "bfs", Source: 2, NoCache: true})
	if code != http.StatusOK || qr2.TraceID == 0 {
		t.Fatalf("untraced-header query: code %d trace_id %d", code, qr2.TraceID)
	}
	if got := hdr.Get(TraceHeader); got != fmt.Sprint(qr2.TraceID) {
		t.Fatalf("echoed id %q != body id %d", got, qr2.TraceID)
	}
}
