package workload

import (
	"math"
	"testing"

	"qgraph/internal/gen"
	"qgraph/internal/graph"
	"qgraph/internal/query"
)

func testNet(t *testing.T) *gen.RoadNet {
	t.Helper()
	cfg := gen.RoadConfig{
		CellsX: 40, CellsY: 40, CellKM: 0.5, Jitter: 0.3,
		RemoveProb: 0.08, DiagProb: 0.05,
		HighwayEvery: 10, LocalSpeed: 50, HighwaySpeed: 100,
		NumCities: 6, ZipfS: 1, TagProb: 0.01, Seed: 17,
	}
	net, err := gen.Road(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestSSSPSpecsLocalized: generated queries have valid, distinct ids, and
// their Euclidean extent respects the generator bounds.
func TestSSSPSpecsLocalized(t *testing.T) {
	net := testNet(t)
	g := NewRoadGen(net, 3)
	seen := map[query.ID]bool{}
	for i := 0; i < 200; i++ {
		spec := g.SSSP()
		if err := spec.Validate(net.G); err != nil {
			t.Fatal(err)
		}
		if seen[spec.ID] {
			t.Fatalf("duplicate query id %d", spec.ID)
		}
		seen[spec.ID] = true
		d := net.G.Coord(spec.Source).Dist(net.G.Coord(spec.Target))
		// Nearest-vertex snapping can stretch the distance slightly
		// beyond MaxDistKM.
		if d > g.MaxDistKM+2*net.Config.CellKM {
			t.Fatalf("query %d spans %.2f km > max %.2f", spec.ID, d, g.MaxDistKM)
		}
	}
}

// TestPopulationProportional: the biggest city receives the most queries
// (the paper keeps query counts proportional to populations).
func TestPopulationProportional(t *testing.T) {
	net := testNet(t)
	g := NewRoadGen(net, 4)
	counts := make([]int, len(net.Cities))
	for i := 0; i < 2000; i++ {
		spec := g.SSSP()
		// Attribute the query to its nearest city.
		src := net.G.Coord(spec.Source)
		best, bestD := 0, math.Inf(1)
		for ci, c := range net.Cities {
			if d := src.Dist(c.Center); d < bestD {
				best, bestD = ci, d
			}
		}
		counts[best]++
	}
	if counts[0] <= counts[len(counts)-1] {
		t.Fatalf("biggest city got %d queries, smallest %d", counts[0], counts[len(counts)-1])
	}
	// Top city's share should be near its population share (0.29 under
	// Zipf-1 over 6 cities ≈ 0.41 of total 2.45); allow wide tolerance.
	share := float64(counts[0]) / 2000
	if share < 0.2 || share > 0.65 {
		t.Fatalf("top city share %.2f implausible", share)
	}
}

// TestInterUrbanSpansCities: disturbance queries start and end near
// different cities.
func TestInterUrbanSpansCities(t *testing.T) {
	net := testNet(t)
	g := NewRoadGen(net, 5)
	longer := 0
	for i := 0; i < 100; i++ {
		spec := g.InterUrban()
		if err := spec.Validate(net.G); err != nil {
			t.Fatal(err)
		}
		d := net.G.Coord(spec.Source).Dist(net.G.Coord(spec.Target))
		if d > g.MaxDistKM {
			longer++
		}
	}
	if longer < 30 {
		t.Fatalf("only %d/100 inter-urban queries exceed the intra-urban range", longer)
	}
}

func TestPOISpecs(t *testing.T) {
	net := testNet(t)
	g := NewRoadGen(net, 6)
	for i := 0; i < 50; i++ {
		spec := g.POI()
		if spec.Kind != query.KindPOI {
			t.Fatalf("kind = %v", spec.Kind)
		}
		if err := spec.Validate(net.G); err != nil {
			t.Fatal(err)
		}
		if spec.Target != graph.NilVertex {
			t.Fatalf("POI must not have a target")
		}
	}
}

func TestBatch(t *testing.T) {
	net := testNet(t)
	g := NewRoadGen(net, 7)
	specs := Batch(25, g.SSSP)
	if len(specs) != 25 {
		t.Fatalf("len = %d", len(specs))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i].ID == specs[i-1].ID {
			t.Fatal("duplicate ids in batch")
		}
	}
}

func TestDeterministicWorkload(t *testing.T) {
	net := testNet(t)
	a := Batch(50, NewRoadGen(net, 11).SSSP)
	b := Batch(50, NewRoadGen(net, 11).SSSP)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs across same-seed generators", i)
		}
	}
	c := Batch(50, NewRoadGen(net, 12).SSSP)
	same := 0
	for i := range a {
		if a[i].Source == c[i].Source {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestSocialGen(t *testing.T) {
	net, err := gen.Social(gen.DefaultSocialConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	g := NewSocialGen(net, 13)
	for i := 0; i < 50; i++ {
		pr := g.PageRank()
		if err := pr.Validate(net.G); err != nil {
			t.Fatal(err)
		}
		if pr.MaxIters == 0 && pr.Epsilon == 0 {
			t.Fatal("unbounded pagerank generated")
		}
		bf := g.Circle(3)
		if bf.Kind != query.KindBFS || bf.MaxIters != 3 {
			t.Fatalf("circle spec %+v", bf)
		}
	}
}

func TestKnowledgeGenRotate(t *testing.T) {
	net, err := gen.Knowledge(gen.DefaultKnowledgeConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	g := NewKnowledgeGen(net, 14)
	before := append([]graph.VertexID(nil), g.Hot...)
	spec := g.Retrieve()
	if err := spec.Validate(net.G); err != nil {
		t.Fatal(err)
	}
	g.Rotate()
	overlap := 0
	for _, a := range before {
		for _, b := range g.Hot {
			if a == b {
				overlap++
			}
		}
	}
	if overlap == len(before) && len(net.Topics) > 1 {
		t.Fatal("Rotate did not change the hot set")
	}
}
