// Package workload generates the query workloads of the paper's evaluation
// (Sec. 4.1): localized queries clustered around population-weighted city
// hotspots, with intra-urban SSSP (variable Euclidean start/end distance),
// inter-urban disturbance queries between neighboring cities (Fig. 5), POI
// retrieval queries, plus social-circle and knowledge-graph workloads for
// the example applications.
package workload

import (
	"math"
	"math/rand/v2"

	"qgraph/internal/gen"
	"qgraph/internal/graph"
	"qgraph/internal/query"
)

// RoadGen draws road-network queries around the hotspots of a RoadNet,
// choosing each query's city proportionally to its population (the paper
// keeps "the number of queries per city proportional to their
// populations").
type RoadGen struct {
	net    *gen.RoadNet
	rng    *rand.Rand
	cum    []float64 // cumulative population weights
	nextID query.ID
	// MinDistKM / MaxDistKM bound the Euclidean start→end distance of SSSP
	// queries (intra- vs inter-urban mix).
	MinDistKM, MaxDistKM float64
}

// NewRoadGen creates a generator over net with the given seed. The
// start→end distance range defaults to the paper's intra-urban scale
// (up to ~8 km), shrunk proportionally on scaled-down maps so queries stay
// localized relative to the hotspot layout: an "urban" query must not span
// several Voronoi cells just because the map is small.
func NewRoadGen(net *gen.RoadNet, seed uint64) *RoadGen {
	cum := make([]float64, len(net.Cities))
	total := 0.0
	for i, c := range net.Cities {
		total += c.Pop
		cum[i] = total
	}
	mapKM := float64(net.Config.CellsX) * net.Config.CellKM
	// One hotspot "owns" roughly mapKM/sqrt(cities) km of map; queries stay
	// well inside that.
	maxDist := mapKM / math.Sqrt(float64(len(net.Cities))) / 3
	maxDist = math.Min(8, math.Max(2*net.Config.CellKM, maxDist))
	return &RoadGen{
		net: net, rng: rand.New(rand.NewPCG(seed, 0xbf58476d1ce4e5b9)),
		cum:       cum,
		MinDistKM: math.Min(0.5, maxDist/4), MaxDistKM: maxDist,
		nextID: 1,
	}
}

// pickCity samples a city index proportionally to population.
func (g *RoadGen) pickCity() int {
	total := g.cum[len(g.cum)-1]
	x := g.rng.Float64() * total
	lo, hi := 0, len(g.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// nearCity samples a vertex from a Gaussian around the city center with the
// city's hotspot radius as standard deviation.
func (g *RoadGen) nearCity(c gen.City) graph.VertexID {
	p := graph.Coord{
		X: c.Center.X + float32(g.rng.NormFloat64()*c.Radius),
		Y: c.Center.Y + float32(g.rng.NormFloat64()*c.Radius),
	}
	return g.net.Index.Nearest(p)
}

// SSSP generates one intra-urban shortest-path query: the start vertex near
// a population-sampled hotspot, the end vertex at a uniform Euclidean
// distance in [MinDistKM, MaxDistKM] from the start in a random direction.
func (g *RoadGen) SSSP() query.Spec {
	ci := g.pickCity()
	src := g.nearCity(g.net.Cities[ci])
	d := g.MinDistKM + g.rng.Float64()*(g.MaxDistKM-g.MinDistKM)
	ang := g.rng.Float64() * 2 * math.Pi
	sc := g.net.G.Coord(src)
	dst := g.net.Index.Nearest(graph.Coord{
		X: sc.X + float32(d*math.Cos(ang)),
		Y: sc.Y + float32(d*math.Sin(ang)),
	})
	id := g.nextID
	g.nextID++
	return query.Spec{ID: id, Kind: query.KindSSSP, Source: src, Target: dst}
}

// InterUrban generates one disturbance query (Fig. 5): a shortest path
// between a random city and one of its nearest neighbor cities.
func (g *RoadGen) InterUrban() query.Spec {
	ci := g.pickCity()
	from := g.net.Cities[ci]
	// Nearest other city by center distance.
	best, bestD := -1, math.Inf(1)
	for j, c := range g.net.Cities {
		if j == ci {
			continue
		}
		if d := from.Center.Dist(c.Center); d < bestD {
			best, bestD = j, d
		}
	}
	src := g.nearCity(from)
	dst := g.nearCity(g.net.Cities[best])
	id := g.nextID
	g.nextID++
	return query.Spec{ID: id, Kind: query.KindSSSP, Source: src, Target: dst}
}

// POI generates one point-of-interest query from a hotspot start vertex.
func (g *RoadGen) POI() query.Spec {
	ci := g.pickCity()
	src := g.nearCity(g.net.Cities[ci])
	id := g.nextID
	g.nextID++
	return query.Spec{ID: id, Kind: query.KindPOI, Source: src, Target: graph.NilVertex}
}

// Batch produces n specs from f (a method value like g.SSSP).
func Batch(n int, f func() query.Spec) []query.Spec {
	out := make([]query.Spec, n)
	for i := range out {
		out[i] = f()
	}
	return out
}

// SocialGen draws social-network queries: localized PageRank or k-hop BFS
// seeded inside a community, with hub-adjacent seeds overrepresented —
// Application 2's overlapping personal-network analyses.
type SocialGen struct {
	net    *gen.SocialNet
	rng    *rand.Rand
	nextID query.ID
	// HubBias is the probability a query seeds at a hub neighborhood.
	HubBias float64
}

// NewSocialGen creates a generator over net.
func NewSocialGen(net *gen.SocialNet, seed uint64) *SocialGen {
	return &SocialGen{
		net: net, rng: rand.New(rand.NewPCG(seed, 0x94d049bb133111eb)),
		HubBias: 0.3, nextID: 1,
	}
}

func (g *SocialGen) seed() graph.VertexID {
	if len(g.net.Hubs) > 0 && g.rng.Float64() < g.HubBias {
		return g.net.Hubs[g.rng.IntN(len(g.net.Hubs))]
	}
	comm := g.net.Communities[g.rng.IntN(len(g.net.Communities))]
	if len(comm) == 0 {
		return graph.VertexID(g.rng.IntN(g.net.G.NumVertices()))
	}
	return comm[g.rng.IntN(len(comm))]
}

// PageRank generates a localized personalized-PageRank query.
func (g *SocialGen) PageRank() query.Spec {
	id := g.nextID
	g.nextID++
	return query.Spec{
		ID: id, Kind: query.KindPageRank, Source: g.seed(),
		Target: graph.NilVertex, MaxIters: 20, Epsilon: 1e-4,
	}
}

// Circle generates a k-hop BFS exploring a social circle.
func (g *SocialGen) Circle(hops int) query.Spec {
	id := g.nextID
	g.nextID++
	return query.Spec{
		ID: id, Kind: query.KindBFS, Source: g.seed(),
		Target: graph.NilVertex, MaxIters: hops,
	}
}

// KnowledgeGen draws retrieval queries clustered around popular entities
// (Application 3: content with dynamic popularity).
type KnowledgeGen struct {
	net    *gen.KnowledgeNet
	rng    *rand.Rand
	nextID query.ID
	// Hot is the subset of topics currently popular; queries concentrate on
	// it and it can be rotated to model popularity changes.
	Hot []graph.VertexID
}

// NewKnowledgeGen creates a generator over net with the first half of the
// topics hot.
func NewKnowledgeGen(net *gen.KnowledgeNet, seed uint64) *KnowledgeGen {
	hot := net.Topics[:max(1, len(net.Topics)/2)]
	return &KnowledgeGen{
		net: net, rng: rand.New(rand.NewPCG(seed, 0xd6e8feb86659fd93)),
		Hot: hot, nextID: 1,
	}
}

// Rotate shifts popularity to the other half of the topics — the dynamic
// hotspot change adaptivity experiments need.
func (g *KnowledgeGen) Rotate() {
	half := max(1, len(g.net.Topics)/2)
	if len(g.Hot) > 0 && g.Hot[0] == g.net.Topics[0] {
		g.Hot = g.net.Topics[half:]
		if len(g.Hot) == 0 {
			g.Hot = g.net.Topics
		}
	} else {
		g.Hot = g.net.Topics[:half]
	}
}

// Retrieve generates one tag-retrieval query from a hot entity: find the
// closest tagged entity (POI program over the knowledge graph).
func (g *KnowledgeGen) Retrieve() query.Spec {
	id := g.nextID
	g.nextID++
	return query.Spec{
		ID: id, Kind: query.KindPOI,
		Source: g.Hot[g.rng.IntN(len(g.Hot))],
		Target: graph.NilVertex,
	}
}
