package query

import "qgraph/internal/graph"

// POI is the point-of-interest query of Sec. 4.1: retrieve the closest
// vertex carrying the POI tag (e.g. a gas station) to a given start vertex.
// It floods distances like SSSP; every tagged vertex is a goal, so the
// engine stops as soon as no in-flight distance can beat the best tagged
// vertex found, keeping the explored region a disc around the start.
type POI struct{}

// Kind implements Program.
func (POI) Kind() Kind { return KindPOI }

// Combine keeps the smaller distance.
func (POI) Combine(a, b float64) float64 { return min(a, b) }

// Init activates the start vertex with distance 0.
func (POI) Init(_ graph.View, spec Spec) []Activation {
	return []Activation{{V: spec.Source, Msg: 0}}
}

// Compute relaxes v exactly like SSSP.
func (POI) Compute(g graph.View, _ Spec, v graph.VertexID, old float64, hasOld bool, msg float64, emit Emit) (float64, bool) {
	if hasOld && msg >= old {
		return old, false
	}
	for _, e := range g.Out(v) {
		emit(e.To, msg+float64(e.Weight))
	}
	return msg, true
}

// Goal marks every tagged vertex.
func (POI) Goal(g graph.View, _ Spec, v graph.VertexID, _ float64) bool {
	return g.Tagged(v)
}

// Monotone reports that distances only grow along paths.
func (POI) Monotone() bool { return true }
