package query

import (
	"math"

	"qgraph/internal/graph"
)

// Damping is the PageRank damping factor.
const Damping = 0.85

// PageRank is localized (personalized) PageRank seeded at a single vertex —
// the paper's future-work item (i). Rank mass is injected at the source and
// diffuses along out-edges with damping; vertices whose rank change falls
// below Spec.Epsilon stop propagating, which keeps the computation local to
// the seed's neighborhood. The query runs until no vertex propagates or
// Spec.MaxIters supersteps have elapsed.
//
// The vertex value approximates the personalized PageRank score of the
// vertex with restart vertex Source.
type PageRank struct{}

// Kind implements Program.
func (PageRank) Kind() Kind { return KindPageRank }

// Combine sums incoming rank mass.
func (PageRank) Combine(a, b float64) float64 { return a + b }

// Init injects one unit of rank mass at the seed.
func (PageRank) Init(_ graph.View, spec Spec) []Activation {
	return []Activation{{V: spec.Source, Msg: 1}}
}

// Compute accumulates (1-d) of the incoming mass into the vertex score and
// pushes d of it onward, split across out-edges — the push formulation of
// personalized PageRank. Pushes below Epsilon are dropped, localizing the
// query.
func (PageRank) Compute(g graph.View, spec Spec, v graph.VertexID, old float64, hasOld bool, msg float64, emit Emit) (float64, bool) {
	if msg <= 0 {
		return old, false
	}
	val := msg * (1 - Damping)
	if hasOld {
		val += old
	}
	deg := g.OutDegree(v)
	if deg > 0 {
		share := msg * Damping / float64(deg)
		if share >= spec.Epsilon {
			for _, e := range g.Out(v) {
				emit(e.To, share)
			}
		}
	}
	return val, true
}

// Goal is never true: PageRank has no result vertex; the per-vertex scores
// are the result.
func (PageRank) Goal(_ graph.View, _ Spec, _ graph.VertexID, _ float64) bool {
	return false
}

// Monotone is false: rank mass sums, it does not grow along paths.
func (PageRank) Monotone() bool { return false }

// RefPageRank is a sequential reference of the same push process, used by
// tests to validate the distributed execution. It returns the score map of
// every touched vertex.
func RefPageRank(g graph.View, spec Spec) map[graph.VertexID]float64 {
	scores := make(map[graph.VertexID]float64)
	inbox := map[graph.VertexID]float64{spec.Source: 1}
	for iter := 0; len(inbox) > 0 && (spec.MaxIters == 0 || iter < spec.MaxIters); iter++ {
		next := make(map[graph.VertexID]float64)
		for v, mass := range inbox {
			scores[v] += mass * (1 - Damping)
			deg := g.OutDegree(v)
			if deg == 0 {
				continue
			}
			share := mass * Damping / float64(deg)
			if share < spec.Epsilon {
				continue
			}
			for _, e := range g.Out(v) {
				next[e.To] += share
			}
		}
		inbox = next
	}
	return scores
}

// RefPageRankMass returns the total score mass of RefPageRank, a scalar
// fingerprint tests can compare against the distributed run.
func RefPageRankMass(g graph.View, spec Spec) float64 {
	total := 0.0
	for _, s := range RefPageRank(g, spec) {
		total += s
	}
	// Guard against NaN sneaking into comparisons.
	if math.IsNaN(total) {
		panic("query: NaN PageRank mass")
	}
	return total
}
