package query

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"qgraph/internal/graph"
)

// diamondGraph: 0 → {1,2} → 3 with asymmetric weights.
func diamondGraph() *graph.Graph {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 5)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 3, 1)
	b.SetTags([]bool{false, false, true, true})
	return b.MustBuild()
}

// runSequential executes a program in a simple single-node BSP loop — a
// miniature reference engine used to test program semantics in isolation.
func runSequential(g graph.View, spec Spec) (values map[graph.VertexID]float64, steps int) {
	prog := MustNew(spec.Kind)
	values = make(map[graph.VertexID]float64)
	inbox := make(map[graph.VertexID]float64)
	for _, a := range prog.Init(g, spec) {
		if old, ok := inbox[a.V]; ok {
			inbox[a.V] = prog.Combine(old, a.Msg)
		} else {
			inbox[a.V] = a.Msg
		}
	}
	for len(inbox) > 0 && (spec.MaxIters == 0 || steps < spec.MaxIters) {
		next := make(map[graph.VertexID]float64)
		emit := func(to graph.VertexID, msg float64) {
			if old, ok := next[to]; ok {
				next[to] = prog.Combine(old, msg)
			} else {
				next[to] = msg
			}
		}
		for v, msg := range inbox {
			old, hasOld := values[v]
			if nv, changed := prog.Compute(g, spec, v, old, hasOld, msg, emit); changed {
				values[v] = nv
			}
		}
		inbox = next
		steps++
	}
	return values, steps
}

func TestSSSPOnDiamond(t *testing.T) {
	g := diamondGraph()
	vals, _ := runSequential(g, Spec{ID: 1, Kind: KindSSSP, Source: 0, Target: 3})
	want := map[graph.VertexID]float64{0: 0, 1: 1, 2: 5, 3: 2}
	for v, w := range want {
		if vals[v] != w {
			t.Fatalf("dist[%d] = %v, want %v", v, vals[v], w)
		}
	}
}

// TestSSSPMatchesDijkstraSequential: the vertex program computes true
// shortest paths on random graphs (property-based).
func TestSSSPMatchesDijkstraSequential(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 10))
		n := 40 + rng.IntN(60)
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			b.AddBiEdge(graph.VertexID(rng.IntN(v)), graph.VertexID(v), float32(rng.Float64()*5+0.1))
		}
		for e := 0; e < n; e++ {
			b.AddEdge(graph.VertexID(rng.IntN(n)), graph.VertexID(rng.IntN(n)), float32(rng.Float64()*5+0.1))
		}
		g := b.MustBuild()
		src := graph.VertexID(rng.IntN(n))
		vals, _ := runSequential(g, Spec{ID: 1, Kind: KindSSSP, Source: src, Target: graph.NilVertex})
		ref := graph.Dijkstra(g, src)
		for v := 0; v < n; v++ {
			got, ok := vals[graph.VertexID(v)]
			if !ok {
				got = math.MaxFloat64
			}
			want := ref[v]
			if want == graph.Inf {
				want = math.MaxFloat64
			}
			if math.Abs(got-want) > 1e-9*(1+want) && got != want {
				t.Logf("vertex %d: %v vs %v", v, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSHopSemantics(t *testing.T) {
	g := diamondGraph()
	vals, steps := runSequential(g, Spec{ID: 1, Kind: KindBFS, Source: 0, Target: graph.NilVertex})
	if vals[3] != 2 || vals[1] != 1 || vals[0] != 0 {
		t.Fatalf("hops = %v", vals)
	}
	if steps != 3 {
		t.Fatalf("steps = %d, want 3", steps)
	}
}

func TestPOIGoalSemantics(t *testing.T) {
	g := diamondGraph()
	p := MustNew(KindPOI)
	if !p.Goal(g, Spec{}, 2, 0) || p.Goal(g, Spec{}, 0, 0) {
		t.Fatal("POI goal must mirror tags")
	}
}

func TestSSSPGoalOnlyTarget(t *testing.T) {
	g := diamondGraph()
	p := MustNew(KindSSSP)
	spec := Spec{Target: 3}
	if !p.Goal(g, spec, 3, 0) || p.Goal(g, spec, 1, 0) {
		t.Fatal("SSSP goal must be exactly the target")
	}
	flood := Spec{Target: graph.NilVertex}
	if p.Goal(g, flood, 3, 0) {
		t.Fatal("flood SSSP has no goal")
	}
}

// TestPageRankMassConservation: total injected mass = retained mass +
// damped leakage; scores are positive and the source dominates.
func TestPageRankMassConservation(t *testing.T) {
	g := diamondGraph()
	spec := Spec{ID: 1, Kind: KindPageRank, Source: 0, MaxIters: 50, Epsilon: 1e-12}
	scores := RefPageRank(g, spec)
	if len(scores) == 0 {
		t.Fatal("no scores")
	}
	for v, s := range scores {
		if s <= 0 {
			t.Fatalf("score[%d] = %v", v, s)
		}
		if v != 0 && s >= scores[0] {
			t.Fatalf("source must dominate: score[%d]=%v >= %v", v, s, scores[0])
		}
	}
	// With epsilon ~0 and bounded iterations, total retained mass is less
	// than 1 (dangling vertex 3 leaks) but more than the undamped share.
	total := 0.0
	for _, s := range scores {
		total += s
	}
	if total <= 1-Damping || total > 1 {
		t.Fatalf("mass %v out of range (%v, 1]", total, 1-Damping)
	}
}

// TestPageRankEpsilonLocalizes: larger epsilon touches fewer vertices.
func TestPageRankEpsilonLocalizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	n := 300
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddBiEdge(graph.VertexID(rng.IntN(v)), graph.VertexID(v), 1)
	}
	g := b.MustBuild()
	coarse := len(RefPageRank(g, Spec{Kind: KindPageRank, Source: 0, MaxIters: 30, Epsilon: 1e-2}))
	fine := len(RefPageRank(g, Spec{Kind: KindPageRank, Source: 0, MaxIters: 30, Epsilon: 1e-6}))
	if coarse > fine {
		t.Fatalf("coarse epsilon touched %d > fine %d", coarse, fine)
	}
	if fine <= 1 {
		t.Fatal("fine epsilon did not spread")
	}
}

func TestSpecValidate(t *testing.T) {
	g := diamondGraph()
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{ID: 1, Kind: KindSSSP, Source: 0, Target: 3}, true},
		{Spec{ID: 2, Kind: KindSSSP, Source: -1, Target: 3}, false},
		{Spec{ID: 3, Kind: KindSSSP, Source: 0, Target: 9}, false},
		{Spec{ID: 4, Kind: KindPOI, Source: 0, Target: graph.NilVertex}, true},
		{Spec{ID: 5, Kind: KindPageRank, Source: 0, Target: graph.NilVertex}, false}, // needs bounds
		{Spec{ID: 6, Kind: KindPageRank, Source: 0, Target: graph.NilVertex, MaxIters: 5}, true},
		{Spec{ID: 7, Kind: Kind(99), Source: 0, Target: graph.NilVertex}, false},
	}
	for i, c := range cases {
		if err := c.spec.Validate(g); (err == nil) != c.ok {
			t.Fatalf("case %d: ok=%v, err=%v", i, c.ok, err)
		}
	}
}

func TestHomePinning(t *testing.T) {
	var s Spec
	if _, ok := s.HomeWorker(); ok {
		t.Fatal("zero value must be unpinned")
	}
	s.SetHome(3)
	if w, ok := s.HomeWorker(); !ok || w != 3 {
		t.Fatalf("HomeWorker = %d,%v", w, ok)
	}
	s.ClearHome()
	if _, ok := s.HomeWorker(); ok {
		t.Fatal("ClearHome failed")
	}
	s.SetHome(0)
	if w, ok := s.HomeWorker(); !ok || w != 0 {
		t.Fatalf("worker 0 pinning broken: %d,%v", w, ok)
	}
}

func TestKindStringAndNew(t *testing.T) {
	for _, k := range []Kind{KindSSSP, KindPOI, KindBFS, KindPageRank} {
		if k.String() == "" {
			t.Fatalf("empty name for %d", k)
		}
		p, err := New(k)
		if err != nil || p.Kind() != k {
			t.Fatalf("New(%v) = %v, %v", k, p, err)
		}
	}
	if _, err := New(Kind(42)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
