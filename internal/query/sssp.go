package query

import "qgraph/internal/graph"

// SSSP is single-source shortest path with an optional end vertex
// (Sec. 2 and 4.1 of the paper): the vertex value is the best known travel
// time from the source; improvements propagate along out-edges. With a
// Target set, the engine stops the query as soon as no in-flight distance
// can beat the target's settled distance, which confines the query to the
// region between the endpoints.
type SSSP struct{}

// Kind implements Program.
func (SSSP) Kind() Kind { return KindSSSP }

// Combine keeps the smaller distance.
func (SSSP) Combine(a, b float64) float64 { return min(a, b) }

// Init activates the source with distance 0.
func (SSSP) Init(_ graph.View, spec Spec) []Activation {
	return []Activation{{V: spec.Source, Msg: 0}}
}

// Compute relaxes v: if the incoming distance improves on the stored one,
// store it and offer dist+w to every out-neighbor.
func (SSSP) Compute(g graph.View, _ Spec, v graph.VertexID, old float64, hasOld bool, msg float64, emit Emit) (float64, bool) {
	if hasOld && msg >= old {
		return old, false
	}
	for _, e := range g.Out(v) {
		emit(e.To, msg+float64(e.Weight))
	}
	return msg, true
}

// Goal marks the target vertex (never true for flood queries).
func (SSSP) Goal(_ graph.View, spec Spec, v graph.VertexID, _ float64) bool {
	return spec.Target != graph.NilVertex && v == spec.Target
}

// Monotone reports that distances only grow along paths.
func (SSSP) Monotone() bool { return true }

// BFS is hop-count flooding: SSSP with unit weights. Tests use it because
// expected results are easy to state; it also models reachability and
// friend-of-friend queries on social graphs.
type BFS struct{}

// Kind implements Program.
func (BFS) Kind() Kind { return KindBFS }

// Combine keeps the smaller hop count.
func (BFS) Combine(a, b float64) float64 { return min(a, b) }

// Init activates the source at hop 0.
func (BFS) Init(_ graph.View, spec Spec) []Activation {
	return []Activation{{V: spec.Source, Msg: 0}}
}

// Compute stores the improved hop count and offers hops+1 to neighbors.
func (BFS) Compute(g graph.View, _ Spec, v graph.VertexID, old float64, hasOld bool, msg float64, emit Emit) (float64, bool) {
	if hasOld && msg >= old {
		return old, false
	}
	for _, e := range g.Out(v) {
		emit(e.To, msg+1)
	}
	return msg, true
}

// Goal marks the optional target vertex.
func (BFS) Goal(_ graph.View, spec Spec, v graph.VertexID, _ float64) bool {
	return spec.Target != graph.NilVertex && v == spec.Target
}

// Monotone reports that hop counts only grow along paths.
func (BFS) Monotone() bool { return true }
