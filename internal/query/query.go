// Package query defines the vertex-centric programming model of Q-Graph
// (Sec. 2 of the paper) and the concrete graph queries the evaluation uses.
//
// A query q = (f, Vsub) is a vertex function plus an initial set of active
// vertices. Each superstep, every active vertex receives its combined
// incoming message, recomputes its query-private value, and may send
// messages along out-edges. Vertices activated by a message in superstep i
// run in superstep i+1. Queries read the shared graph structure but write
// only query-private data, so any number of queries run in parallel without
// write conflicts.
package query

import (
	"fmt"
	"math"

	"qgraph/internal/graph"
)

// ID identifies a scheduled query instance.
type ID int64

// Kind selects the vertex program for a query.
type Kind uint8

// The query kinds implemented by the engine. SSSP and POI are the two
// evaluation queries of the paper (Sec. 4.1); BFS is a simpler variant used
// heavily in tests; PageRank implements the paper's future-work item (i),
// localized personalized PageRank.
const (
	KindSSSP Kind = iota + 1
	KindPOI
	KindBFS
	KindPageRank
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindSSSP:
		return "sssp"
	case KindPOI:
		return "poi"
	case KindBFS:
		return "bfs"
	case KindPageRank:
		return "pagerank"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Spec describes one query instance: which program to run and its
// parameters. It is the wire-level description the controller forwards to
// workers with executeQuery (Table 2 of the paper).
type Spec struct {
	ID     ID
	Kind   Kind
	Source graph.VertexID
	// Target is the end vertex for SSSP/BFS point-to-point queries;
	// NilVertex floods from the source instead.
	Target graph.VertexID
	// MaxIters caps the number of supersteps (0 = no cap). PageRank
	// requires a cap or epsilon.
	MaxIters int
	// Epsilon is the PageRank activation threshold: vertices whose rank
	// changed by less than Epsilon do not propagate.
	Epsilon float64
	// TraceID carries the observability trace this query belongs to (0 =
	// untraced). It rides executeQuery to every worker so worker-side
	// structured logs correlate with the span tree the serving layer
	// assembles (internal/obs).
	TraceID uint64
	// PinVersion is the committed graph version this query executes
	// against: assigned by the controller at admission, resolved by every
	// worker to the same immutable delta.View snapshot. Batches committing
	// at later versions while the query runs are invisible to it (MVCC
	// snapshot isolation; see the view registry in internal/delta).
	PinVersion uint64
	// home pins the whole query to one worker (stored as worker+1 so the
	// zero value means "no pinning"). See SetHome.
	home int16
}

// SetHome pins the query to worker w: all its vertex processing happens
// there regardless of vertex ownership. This is the query-based partial
// replication extension (paper future work ii, cf. [28, 32]): the graph
// structure is replicated on every worker and query writes are private, so
// executing a query entirely at one home eliminates its query-cut at the
// price of load concentration.
func (s *Spec) SetHome(w int) { s.home = int16(w) + 1 }

// ClearHome removes the pinning.
func (s *Spec) ClearHome() { s.home = 0 }

// HomeWorker returns the pinned worker, if any.
func (s Spec) HomeWorker() (int, bool) {
	if s.home == 0 {
		return 0, false
	}
	return int(s.home) - 1, true
}

// homeWire exposes the raw pinning encoding for the transport codec.
func (s Spec) HomeWire() int16 { return s.home }

// SetHomeWire restores the raw pinning encoding (transport codec use).
func (s *Spec) SetHomeWire(v int16) { s.home = v }

// Validate checks the spec against a graph.
func (s Spec) Validate(g graph.View) error {
	n := graph.VertexID(g.NumVertices())
	if s.Source < 0 || s.Source >= n {
		return fmt.Errorf("query %d: source %d out of range [0,%d)", s.ID, s.Source, n)
	}
	if s.Target != graph.NilVertex && (s.Target < 0 || s.Target >= n) {
		return fmt.Errorf("query %d: target %d out of range", s.ID, s.Target)
	}
	switch s.Kind {
	case KindSSSP, KindBFS:
	case KindPOI:
		if !g.HasTags() {
			return fmt.Errorf("query %d: POI requires a tagged graph", s.ID)
		}
	case KindPageRank:
		if s.MaxIters <= 0 && s.Epsilon <= 0 {
			return fmt.Errorf("query %d: pagerank needs MaxIters or Epsilon", s.ID)
		}
	default:
		return fmt.Errorf("query %d: unknown kind %d", s.ID, uint8(s.Kind))
	}
	return nil
}

// Activation is an initial (vertex, message) pair seeding a query.
type Activation struct {
	V   graph.VertexID
	Msg float64
}

// Emit is the callback a vertex function uses to send a message to a
// neighboring vertex in the next superstep.
type Emit func(to graph.VertexID, msg float64)

// Program is a vertex-centric program: the application logic of a query
// kind. Implementations must be stateless; all per-query state lives in the
// worker's query-private vertex data.
type Program interface {
	// Kind returns the kind this program implements.
	Kind() Kind
	// Combine merges two messages addressed to the same vertex in the same
	// superstep (min for distance-style programs, sum for PageRank).
	Combine(a, b float64) float64
	// Init returns the initial activations (the paper's Vsub).
	Init(g graph.View, spec Spec) []Activation
	// Compute runs the vertex function f(Dv, m*→v): old is the current
	// query-private value of v (hasOld=false on first touch), msg the
	// combined incoming message. It returns the new value and whether it
	// changed (only changed values are stored and propagate).
	Compute(g graph.View, spec Spec, v graph.VertexID, old float64, hasOld bool, msg float64, emit Emit) (newVal float64, changed bool)
	// Goal reports whether v holding val is a result candidate (the SSSP
	// target, a tagged POI vertex). The query result is the minimal goal
	// value observed.
	Goal(g graph.View, spec Spec, v graph.VertexID, val float64) bool
	// Monotone reports whether message values never decrease along a path
	// (true for distance-style programs). Monotone queries terminate early
	// once the smallest in-flight frontier value is no better than the best
	// goal value found — this is what keeps queries localized.
	Monotone() bool
}

// New returns the program for a kind.
func New(k Kind) (Program, error) {
	switch k {
	case KindSSSP:
		return SSSP{}, nil
	case KindPOI:
		return POI{}, nil
	case KindBFS:
		return BFS{}, nil
	case KindPageRank:
		return PageRank{}, nil
	default:
		return nil, fmt.Errorf("query: unknown kind %d", uint8(k))
	}
}

// MustNew is New that panics on unknown kinds.
func MustNew(k Kind) Program {
	p, err := New(k)
	if err != nil {
		panic(err)
	}
	return p
}

// NoResult is the query result when no goal vertex was reached.
const NoResult = math.MaxFloat64
