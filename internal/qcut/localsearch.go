package qcut

import "math/rand/v2"

// localSearch is Algorithm 2 of the paper: best-improvement moves of whole
// scope clusters between workers until no successor state has lower cost,
// restricted to successors that keep the workload balanced. The deadline
// callback allows interruption mid-descent (the current state is always a
// valid solution).
func (s *state) localSearch(deadline func() bool) {
	for {
		bestC, bestA, bestB := -1, 0, 0
		var bestDelta int64
		for c := range s.clusters {
			for a := 0; a < s.k; a++ {
				if !s.alive[a] {
					continue
				}
				x := s.clusterMass(c, a)
				if x == 0 {
					continue
				}
				for b := 0; b < s.k; b++ {
					if b == a || !s.alive[b] || !s.moveOK(a, b, x) {
						continue
					}
					d := s.moveDelta(c, a, b)
					if d < bestDelta {
						bestDelta = d
						bestC, bestA, bestB = c, a, b
					}
				}
			}
			if deadline != nil && deadline() {
				break
			}
		}
		if bestC < 0 {
			return // local minimum
		}
		s.applyMove(bestC, bestA, bestB)
		if deadline != nil && deadline() {
			return
		}
	}
}

// moveDelta computes the cost change of moving cluster c's mass from a to
// b without mutating the state. Only the member queries' costs change.
func (s *state) moveDelta(c, a, b int) int64 {
	var delta int64
	for _, q := range s.clusters[c] {
		m := s.cur[q][a]
		if m == 0 {
			continue
		}
		var oldMax, newMax int64
		for w := 0; w < s.k; w++ {
			v := s.cur[q][w]
			if v > oldMax {
				oldMax = v
			}
			switch w {
			case a:
				v = 0
			case b:
				v += m
			}
			if v > newMax {
				newMax = v
			}
		}
		// cost_q = total_q − max; total is invariant.
		delta += oldMax - newMax
	}
	return delta
}

// perturb implements Appendix A.2: fuse a split query's scopes onto its
// largest worker (informed disorder), then restore balance by random
// max→min scope moves.
func (s *state) perturb(rng *rand.Rand) {
	// I. Random cluster spread across at least two workers.
	var split []int
	for c := range s.clusters {
		n := 0
		for w := 0; w < s.k; w++ {
			if s.clusterMass(c, w) > 0 {
				n++
				if n >= 2 {
					split = append(split, c)
					break
				}
			}
		}
	}
	if len(split) == 0 {
		return
	}
	c := split[rng.IntN(len(split))]

	// II. Move all of c's mass to its largest live worker, ignoring balance.
	target, targetMass := -1, int64(-1)
	for w := 0; w < s.k; w++ {
		if !s.alive[w] {
			continue
		}
		if m := s.clusterMass(c, w); m > targetMass {
			target, targetMass = w, m
		}
	}
	if target < 0 {
		return
	}
	for w := 0; w < s.k; w++ {
		if w != target && s.clusterMass(c, w) > 0 {
			s.applyMove(c, w, target)
		}
	}

	// III. Re-establish workload balance.
	s.rebalance(rng)
}
