package qcut

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"qgraph/internal/query"
)

// randomInput builds a random but well-formed Q-cut snapshot.
func randomInput(rng *rand.Rand, k, nq int) Input {
	in := Input{
		K:            k,
		Delta:        0.25,
		Seed:         rng.Uint64(),
		VertexCounts: make([]int64, k),
	}
	for w := 0; w < k; w++ {
		in.VertexCounts[w] = int64(1000 + rng.IntN(200))
	}
	for q := 0; q < nq; q++ {
		row := ScopeRow{Q: query.ID(q + 1), Sizes: make([]int64, k)}
		// Each query has scope on 1-3 workers.
		spread := 1 + rng.IntN(3)
		for s := 0; s < spread; s++ {
			row.Sizes[rng.IntN(k)] += int64(10 + rng.IntN(90))
		}
		in.Scopes = append(in.Scopes, row)
	}
	// Random intersections between nearby query ids.
	for q := 0; q+1 < nq; q++ {
		if rng.IntN(3) == 0 {
			in.Intersections = append(in.Intersections, Intersection{
				Q1: query.ID(q + 1), Q2: query.ID(q + 2), Shared: int64(1 + rng.IntN(20)),
			})
		}
	}
	return in
}

// TestRunNeverWorsens: the returned solution never costs more than the
// (rebalanced) initial one, and moves are well-formed.
func TestRunNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		in := randomInput(rng, 2+rng.IntN(8), 1+rng.IntN(60))
		res := Run(in)
		if res.FinalCost < 0 {
			t.Fatalf("trial %d: negative final cost %d", trial, res.FinalCost)
		}
		for _, mv := range res.Moves {
			if mv.From == mv.To {
				t.Fatalf("trial %d: degenerate move %+v", trial, mv)
			}
			if int(mv.From) >= in.K || int(mv.To) >= in.K {
				t.Fatalf("trial %d: move out of range %+v", trial, mv)
			}
		}
		if len(res.Trace) == 0 {
			t.Fatalf("trial %d: empty trace", trial)
		}
		// Trace must be monotone non-increasing (best-so-far).
		for i := 1; i < len(res.Trace); i++ {
			if res.Trace[i].Cost > res.Trace[i-1].Cost {
				t.Fatalf("trial %d: best cost increased at round %d", trial, i)
			}
		}
	}
}

// TestStateInvariants checks mass conservation and cost consistency under
// random move sequences (property-based).
func TestStateInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		in := randomInput(rng, 2+rng.IntN(6), 1+rng.IntN(40))
		s := newState(in)

		wantTotals := make(map[query.ID]int64)
		for _, row := range in.Scopes {
			for _, sz := range row.Sizes {
				wantTotals[row.Q] += sz
			}
		}
		for step := 0; step < 30; step++ {
			c := rng.IntN(len(s.clusters))
			a, b := rng.IntN(s.k), rng.IntN(s.k)
			if a == b {
				continue
			}
			s.applyMove(c, a, b)
			// Mass conservation per query.
			for qi, id := range s.ids {
				var sum int64
				for w := 0; w < s.k; w++ {
					sum += s.cur[qi][w]
				}
				if sum != wantTotals[id] {
					t.Logf("query %d: mass %d, want %d", id, sum, wantTotals[id])
					return false
				}
			}
			// scopeSum consistency.
			for w := 0; w < s.k; w++ {
				var sum int64
				for qi := range s.ids {
					sum += s.cur[qi][w]
				}
				if sum != s.scopeSum[w] {
					t.Logf("worker %d: scopeSum %d, want %d", w, s.scopeSum[w], sum)
					return false
				}
			}
			// loc ↔ cur consistency.
			for qi := range s.ids {
				derived := make([]int64, s.k)
				for w0 := 0; w0 < s.k; w0++ {
					derived[s.loc[qi][w0]] += s.size[qi][w0]
				}
				for w := 0; w < s.k; w++ {
					if derived[w] != s.cur[qi][w] {
						t.Logf("query %d worker %d: loc-derived %d, cur %d", s.ids[qi], w, derived[w], s.cur[qi][w])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLocalSearchMonotone: every local-search step lowers the cost.
func TestLocalSearchMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 30; trial++ {
		in := randomInput(rng, 2+rng.IntN(6), 1+rng.IntN(50))
		s := newState(in)
		before := s.cost()
		s.localSearch(nil)
		after := s.cost()
		if after > before {
			t.Fatalf("trial %d: local search raised cost %d → %d", trial, before, after)
		}
		// A local minimum: no single balanced cluster move improves.
		for c := range s.clusters {
			for a := 0; a < s.k; a++ {
				x := s.clusterMass(c, a)
				if x == 0 {
					continue
				}
				for b := 0; b < s.k; b++ {
					if b == a || !s.moveOK(a, b, x) {
						continue
					}
					if d := s.moveDelta(c, a, b); d < 0 {
						t.Fatalf("trial %d: not a local minimum: cluster %d %d→%d improves by %d", trial, c, a, b, d)
					}
				}
			}
		}
	}
}

// TestPerfectSplit: two disjoint query groups on two workers must reach
// cost zero.
func TestPerfectSplit(t *testing.T) {
	in := Input{
		K: 2, Delta: 0.5, Seed: 42,
		VertexCounts: []int64{100, 100},
		Scopes: []ScopeRow{
			// Query 1 and 2 split across both workers; fusing each on one
			// worker is balanced and has cost 0.
			{Q: 1, Sizes: []int64{30, 30}},
			{Q: 2, Sizes: []int64{30, 30}},
		},
	}
	res := Run(in)
	if res.FinalCost != 0 {
		t.Fatalf("final cost %d, want 0 (moves %v)", res.FinalCost, res.Moves)
	}
	if len(res.Moves) == 0 {
		t.Fatalf("expected moves to fuse the split scopes")
	}
}

// TestBalanceRespected: the returned solution respects δ whenever the
// initial state does.
func TestBalanceRespected(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 40; trial++ {
		in := randomInput(rng, 2+rng.IntN(6), 5+rng.IntN(40))
		s0 := newState(in)
		if !s0.balanced() {
			continue // only meaningful from balanced starts
		}
		res := Run(in)
		// Re-derive the final state: each directive relocates exactly the
		// original cell LS(q, From) — the engine's move execution is
		// order-independent by construction (arrivals within a barrier are
		// excluded from subsequent moves).
		s := newState(in)
		for _, mv := range res.Moves {
			qi := -1
			for i, id := range s.ids {
				if id == mv.Q {
					qi = i
					break
				}
			}
			m := s.size[qi][mv.From]
			s.cur[qi][mv.From] -= m
			s.cur[qi][mv.To] += m
			s.scopeSum[mv.From] -= m
			s.scopeSum[mv.To] += m
		}
		if !s.balanced() {
			t.Fatalf("trial %d: final state violates balance", trial)
		}
	}
}

// TestDeadlineInterrupts: a tiny deadline still yields a valid result
// quickly.
func TestDeadlineInterrupts(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	in := randomInput(rng, 8, 200)
	in.Deadline = time.Now() // already expired
	start := time.Now()
	res := Run(in)
	if time.Since(start) > 2*time.Second {
		t.Fatalf("expired deadline did not interrupt promptly")
	}
	if res.FinalCost > res.InitialCost {
		t.Fatalf("interrupted run worsened cost")
	}
}

// TestClusteringRespectsCap: the Karger contraction reaches the cluster
// cap when enough intersections exist, and never merges non-intersecting
// queries.
func TestClusteringRespectsCap(t *testing.T) {
	in := Input{K: 2, Seed: 11, MaxClusters: 3}
	// Chain of 10 queries all intersecting their neighbor.
	for q := 1; q <= 10; q++ {
		in.Scopes = append(in.Scopes, ScopeRow{Q: query.ID(q), Sizes: []int64{10, 0}})
		if q > 1 {
			in.Intersections = append(in.Intersections, Intersection{
				Q1: query.ID(q - 1), Q2: query.ID(q), Shared: 5,
			})
		}
	}
	_, clusters := clusterQueries(in)
	if len(clusters) > 10 {
		t.Fatalf("more clusters than queries")
	}
	if len(clusters) < 3 {
		t.Fatalf("contracted below the cap: %d clusters", len(clusters))
	}

	// Without intersections nothing contracts.
	in.Intersections = nil
	_, clusters = clusterQueries(in)
	if len(clusters) != 10 {
		t.Fatalf("non-intersecting queries merged: %d clusters", len(clusters))
	}
}

// TestNoPerturbationAblation: disabling perturbation produces a pure
// local-search result with at most the full run's quality.
func TestNoPerturbationAblation(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	better, worse := 0, 0
	for trial := 0; trial < 20; trial++ {
		in := randomInput(rng, 6, 80)
		base := in
		base.NoPerturbation = true
		rOff := Run(base)
		rOn := Run(in)
		if rOn.FinalCost < rOff.FinalCost {
			better++
		}
		if rOn.FinalCost > rOff.FinalCost {
			worse++
		}
	}
	if worse > 0 {
		t.Fatalf("perturbation worsened the result in %d trials", worse)
	}
	if better == 0 {
		t.Logf("note: perturbation never improved over plain local search in these trials")
	}
}

// TestLiveSetAwareness: with a dead worker masked out, Q-cut keeps
// producing plans over the survivors — no move ever originates at or
// targets the dead worker, scope mass attributed to it is written off,
// and a rejoined-empty worker attracts mass (the active re-load path).
func TestLiveSetAwareness(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 40; trial++ {
		k := 3 + rng.IntN(6)
		in := randomInput(rng, k, 1+rng.IntN(60))
		dead := rng.IntN(k)
		in.Alive = make([]bool, k)
		for w := range in.Alive {
			in.Alive[w] = w != dead
		}
		// A handed-off worker carries no vertices; its stale scope rows
		// (the controller zeroes them, but Q-cut must not rely on that)
		// stay as randomInput made them.
		in.VertexCounts[dead] = 0
		res := Run(in)
		for _, mv := range res.Moves {
			if int(mv.From) == dead || int(mv.To) == dead {
				t.Fatalf("trial %d: move %+v references dead worker %d", trial, mv, dead)
			}
		}
	}
}

// TestLiveSetReloadsEmptyWorker: a rejoined worker with zero scope mass is
// the least-loaded live target, so a grossly imbalanced snapshot moves
// scope onto it.
func TestLiveSetReloadsEmptyWorker(t *testing.T) {
	in := Input{
		K:            3,
		Delta:        0.25,
		Seed:         7,
		VertexCounts: []int64{10, 10, 10},
		Alive:        []bool{true, true, true},
	}
	// All scope mass piled on worker 0; worker 2 rejoined empty.
	for q := 0; q < 12; q++ {
		in.Scopes = append(in.Scopes, ScopeRow{
			Q: query.ID(q + 1), Sizes: []int64{40, 0, 0},
		})
	}
	res := Run(in)
	onto2 := 0
	for _, mv := range res.Moves {
		if mv.To == 2 {
			onto2++
		}
	}
	if onto2 == 0 {
		t.Fatalf("no scope moved onto the empty worker: moves %+v", res.Moves)
	}
}
