package qcut

import (
	"math"
	"math/rand/v2"
	"sort"

	"qgraph/internal/query"
)

// clusterQueries groups overlapping queries by randomized contraction on
// the query-intersection graph — the Karger-style linear-time
// preprocessing of Appendix A.1 that caps the number of movable units at
// MaxClusters (paper: 4k), keeping the local-search neighborhood small.
//
// Edges are contracted in weighted-random order (heavier overlaps contract
// first in expectation), exactly the bias of Karger's algorithm: strongly
// overlapping queries end up in one cluster, so the local search moves
// whole hotspots instead of tearing them apart.
func clusterQueries(in Input) (clusterOf []int, clusters [][]int) {
	nq := len(in.Scopes)
	idx := make(map[query.ID]int, nq)
	for i, row := range in.Scopes {
		idx[row.Q] = i
	}
	parent := make([]int, nq)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	target := in.MaxClusters
	if target <= 0 {
		target = 4 * in.K
	}
	count := nq

	if !in.NoClustering && count > target {
		type edge struct {
			a, b int
			key  float64
		}
		rng := rand.New(rand.NewPCG(in.Seed^0xabcd, 0x9e3779b97f4a7c15))
		edges := make([]edge, 0, len(in.Intersections))
		for _, is := range in.Intersections {
			a, okA := idx[is.Q1]
			b, okB := idx[is.Q2]
			if !okA || !okB || is.Shared <= 0 {
				continue
			}
			// Exponential race: sorting by Exp(weight) samples edges in
			// weighted-random order, the standard trick for weighted
			// Karger contraction.
			key := -math.Log(1-rng.Float64()) / float64(is.Shared)
			edges = append(edges, edge{a: a, b: b, key: key})
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].key < edges[j].key })
		for _, e := range edges {
			if count <= target {
				break
			}
			ra, rb := find(e.a), find(e.b)
			if ra != rb {
				parent[ra] = rb
				count--
			}
		}
	}

	clusterOf = make([]int, nq)
	byRoot := map[int]int{}
	for qi := 0; qi < nq; qi++ {
		r := find(qi)
		ci, ok := byRoot[r]
		if !ok {
			ci = len(clusters)
			byRoot[r] = ci
			clusters = append(clusters, nil)
		}
		clusterOf[qi] = ci
		clusters[ci] = append(clusters[ci], qi)
	}
	return clusterOf, clusters
}
