package qcut

import (
	"math/rand/v2"

	"qgraph/internal/partition"
	"qgraph/internal/query"
)

// state is one point in the Q-cut solution space: an assignment of every
// original local query scope LS(q, w₀) to a current worker.
//
// Scope masses are tracked at cell granularity — (query, origin worker) —
// so the final state translates directly into executable move directives:
// cell (q, w₀) living at worker w ≠ w₀ becomes move(LS(q,w₀), w₀, w).
type state struct {
	k     int
	delta float64
	// alive[w] marks workers that may hold or receive scopes; dead workers
	// are invisible to the balance constraint and never a move target.
	alive []bool

	ids   []query.ID
	size  [][]int64 // size[q][w0]: immutable original scope sizes
	total []int64   // Σ_w0 size[q][w0]
	loc   [][]uint8 // loc[q][w0]: current worker of the cell

	cur      [][]int64 // cur[q][w]: current mass of q at worker w
	scopeSum []int64   // Σ_q cur[q][w]
	vert     []int64   // |V(w)| (static during one run; refreshed per snapshot)
	// scopeScale normalizes the scope term of the load so that scope mass
	// never outweighs the vertex term: the paper's Lw lives in a regime
	// where |V| dominates (millions of vertices vs. thousands of scope
	// entries); scaled-down graphs invert that ratio, and without
	// normalization any consolidation would look like an imbalance.
	scopeScale float64

	// clusters group queries that overlap; local search moves a cluster's
	// co-located mass as one unit (Appendix A.1's Karger preprocessing).
	clusterOf []int
	clusters  [][]int // member query indices
}

// newState builds the initial state from a controller snapshot.
func newState(in Input) *state {
	nq := len(in.Scopes)
	s := &state{
		k:        in.K,
		delta:    in.Delta,
		ids:      make([]query.ID, nq),
		size:     make([][]int64, nq),
		total:    make([]int64, nq),
		loc:      make([][]uint8, nq),
		cur:      make([][]int64, nq),
		scopeSum: make([]int64, in.K),
		vert:     make([]int64, in.K),
	}
	if s.delta <= 0 {
		s.delta = 0.25
	}
	s.alive = make([]bool, in.K)
	for w := range s.alive {
		s.alive[w] = in.Alive == nil || in.Alive[w]
	}
	copy(s.vert, in.VertexCounts)
	for q, row := range in.Scopes {
		s.ids[q] = row.Q
		s.size[q] = make([]int64, in.K)
		copy(s.size[q], row.Sizes)
		s.loc[q] = make([]uint8, in.K)
		s.cur[q] = make([]int64, in.K)
		for w := 0; w < in.K; w++ {
			if !s.alive[w] {
				// Scope mass attributed to a dead worker describes state the
				// failure destroyed; keeping it would emit move directives a
				// fenced worker can never acknowledge.
				s.size[q][w] = 0
			}
			s.loc[q][w] = uint8(w)
			s.cur[q][w] = s.size[q][w]
			s.total[q] += s.size[q][w]
			s.scopeSum[w] += s.size[q][w]
		}
	}
	var totalV, totalScope int64
	for w := 0; w < in.K; w++ {
		if !s.alive[w] {
			s.vert[w] = 0 // handed off (or about to be); carries no load
		}
		totalV += s.vert[w]
		totalScope += s.scopeSum[w]
	}
	s.scopeScale = 1
	if totalScope > totalV && totalScope > 0 {
		s.scopeScale = float64(totalV) / float64(totalScope)
	}
	s.clusterOf, s.clusters = clusterQueries(in)
	return s
}

func (s *state) clone() *state {
	c := &state{
		k: s.k, delta: s.delta, scopeScale: s.scopeScale, alive: s.alive,
		ids: s.ids, size: s.size, total: s.total, // immutable, shared
		clusterOf: s.clusterOf, clusters: s.clusters, // immutable, shared
		loc:      make([][]uint8, len(s.loc)),
		cur:      make([][]int64, len(s.cur)),
		scopeSum: append([]int64(nil), s.scopeSum...),
		vert:     append([]int64(nil), s.vert...),
	}
	for q := range s.loc {
		c.loc[q] = append([]uint8(nil), s.loc[q]...)
		c.cur[q] = append([]int64(nil), s.cur[q]...)
	}
	return c
}

// cost is the query-cut metric of Sec. 3.2.2: scope mass not co-located
// with the query's largest scope.
func (s *state) cost() int64 {
	var c int64
	for q := range s.cur {
		c += s.queryCost(q)
	}
	return c
}

func (s *state) queryCost(q int) int64 {
	var maxM int64
	for _, m := range s.cur[q] {
		if m > maxM {
			maxM = m
		}
	}
	return s.total[q] - maxM
}

// load is the paper's combined workload metric
// Lw = (|V(w)| + Σ_q |LS(q,w)|) / 2 (Appendix A.1), with the scope term
// normalized (see scopeScale).
func (s *state) load(w int) float64 {
	return (float64(s.vert[w]) + s.scopeScale*float64(s.scopeSum[w])) / 2
}

// loadShift is the load change caused by moving scope mass x between
// workers: the scope term is scaled and halved in load, so the shift is
// not the raw mass. Balance decisions must compare like with like.
func (s *state) loadShift(x int64) float64 {
	return s.scopeScale * float64(x) / 2
}

// clusterMass returns the total mass of cluster c currently at worker w.
func (s *state) clusterMass(c, w int) int64 {
	var m int64
	for _, q := range s.clusters[c] {
		m += s.cur[q][w]
	}
	return m
}

// moveOK is the balance guard of Algorithm 2 line 15, strengthened to the
// all-pairs invariant of Appendix A.1: moving mass x from a to b is
// admissible if the resulting state satisfies the δ constraint between
// every worker pair — or at least strictly reduces the load spread, so the
// search can recover from an unbalanced initial assignment.
func (s *state) moveOK(a, b int, x int64) bool {
	la := s.load(a) - s.loadShift(x)
	lb := s.load(b) + s.loadShift(x)
	var newMin, newMax float64
	first := true
	for w := 0; w < s.k; w++ {
		if !s.alive[w] {
			continue
		}
		l := s.load(w)
		switch w {
		case a:
			l = la
		case b:
			l = lb
		}
		if first || l < newMin {
			newMin = l
		}
		if first || l > newMax {
			newMax = l
		}
		first = false
	}
	if newMax <= 0 {
		return true
	}
	if (newMax-newMin)/newMax < s.delta {
		return true
	}
	oldMin, oldMax := s.loadRange()
	if oldMax <= 0 {
		return false
	}
	return (newMax-newMin)/newMax < (oldMax-oldMin)/oldMax
}

// loadRange returns the minimum and maximum live-worker load.
func (s *state) loadRange() (minL, maxL float64) {
	first := true
	for w := 0; w < s.k; w++ {
		if !s.alive[w] {
			continue
		}
		l := s.load(w)
		if first || l < minL {
			minL = l
		}
		if first || l > maxL {
			maxL = l
		}
		first = false
	}
	return minL, maxL
}

// applyMove relocates cluster c's mass from worker a to worker b and
// returns the moved mass. The vertex counts stay fixed within one run
// (scope overlaps make the exact vertex movement unknowable at this level
// of abstraction, DESIGN.md §3); the controller refreshes them from move
// acknowledgements before the next snapshot.
func (s *state) applyMove(c, a, b int) int64 {
	var moved int64
	for _, q := range s.clusters[c] {
		m := s.cur[q][a]
		if m == 0 {
			continue
		}
		moved += m
		s.cur[q][a] = 0
		s.cur[q][b] += m
		for w0 := 0; w0 < s.k; w0++ {
			if s.loc[q][w0] == uint8(a) {
				s.loc[q][w0] = uint8(b)
			}
		}
	}
	s.scopeSum[a] -= moved
	s.scopeSum[b] += moved
	return moved
}

// balanced reports whether every worker pair satisfies the δ constraint
// |Lw − Lw'| / max(Lw, Lw') < δ of Appendix A.1.
func (s *state) balanced() bool {
	minL, maxL := s.loadRange()
	if maxL <= 0 {
		return true
	}
	return (maxL-minL)/maxL < s.delta
}

// moves extracts the executable move directives: every original cell now
// living somewhere else.
func (s *state) moves() []Move {
	var out []Move
	for q := range s.loc {
		for w0 := 0; w0 < s.k; w0++ {
			if s.size[q][w0] > 0 && int(s.loc[q][w0]) != w0 {
				out = append(out, Move{
					Q:    s.ids[q],
					From: partition.WorkerID(w0),
					To:   partition.WorkerID(s.loc[q][w0]),
				})
			}
		}
	}
	return out
}

// rebalance restores the δ constraint by moving random cluster scopes from
// the most- to the least-loaded worker (perturbation step III, also used
// to repair an unbalanced initial assignment). Best effort: gives up after
// a bounded number of attempts.
func (s *state) rebalance(rng *rand.Rand) {
	for attempt := 0; attempt < 8*len(s.clusters)+32 && !s.balanced(); attempt++ {
		maxW, minW := -1, -1
		for w := 0; w < s.k; w++ {
			if !s.alive[w] {
				continue
			}
			if maxW < 0 || s.load(w) > s.load(maxW) {
				maxW = w
			}
			if minW < 0 || s.load(w) < s.load(minW) {
				minW = w
			}
		}
		if maxW < 0 || maxW == minW {
			return
		}
		// Candidate clusters with mass on the overloaded worker.
		var cands []int
		for c := range s.clusters {
			if s.clusterMass(c, maxW) > 0 {
				cands = append(cands, c)
			}
		}
		if len(cands) == 0 {
			return
		}
		c := cands[rng.IntN(len(cands))]
		// Skip pathological moves that would overshoot far past balance —
		// comparing the move's actual load shift, not its raw scope mass,
		// against the spread (the scope term is scaled in load).
		if x := s.clusterMass(c, maxW); s.loadShift(x) > 2*(s.load(maxW)-s.load(minW)) && len(cands) > 1 {
			continue
		}
		s.applyMove(c, maxW, minW)
	}
}
