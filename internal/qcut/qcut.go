// Package qcut implements the paper's core contribution: query-aware
// partitioning by iterated local search over the controller's high-level
// query representation (Sec. 3.2 and Appendix A).
//
// Instead of partitioning millions of vertices, Q-cut moves whole local
// query scopes LS(q,w) — of which there are at most |Q|·k — between
// workers, minimizing the query-cut cost
//
//	c(s) = Σ_q Σ_{w ≠ argmax_w' |LS(q,w')|} |LS(q,w)|
//
// (the number of scope vertices not co-located with their query's largest
// scope) subject to the workload balance constraint of Appendix A.1. The
// result is a set of move(LS(q,w), w, w') directives the controller
// executes under a global barrier.
package qcut

import (
	"math/rand/v2"
	"time"

	"qgraph/internal/partition"
	"qgraph/internal/query"
)

// ScopeRow is one query's local scope sizes across all workers, as
// aggregated by the controller's monitoring window.
type ScopeRow struct {
	Q     query.ID
	Sizes []int64 // indexed by worker
}

// Intersection is the aggregated overlap |GS(q1) ∩ GS(q2)| between two
// query scopes (summed over workers); the clustering pre-processing uses
// it as affinity.
type Intersection struct {
	Q1, Q2 query.ID
	Shared int64
}

// Input is a snapshot of the controller's global knowledge for one Q-cut
// run.
type Input struct {
	K             int
	Scopes        []ScopeRow
	Intersections []Intersection
	VertexCounts  []int64 // |V(w)| per worker
	// Alive marks the workers that can receive scopes; nil means all K.
	// Dead workers (fenced by recovery, partitions handed off) carry no
	// load, receive no moves, and are excluded from the balance constraint
	// — a shrunken cluster keeps adapting over its live set, and a
	// rejoined-empty worker is the least-loaded target for re-loading.
	Alive []bool
	// Delta is the maximum allowed relative workload difference δ
	// (paper: 0.25).
	Delta float64
	// MaxClusters caps the Karger clustering (paper: 4k). 0 uses 4·K.
	MaxClusters int
	// Deadline bounds the run (paper: 2 s). Zero means no deadline — the
	// run then stops on MaxStall alone.
	Deadline time.Time
	// MaxStall stops early after this many perturbation rounds without
	// improvement (0 = 64). This implements the paper's requirement (b):
	// best-found solution on interruption, without burning the budget
	// once converged.
	MaxStall int
	Seed     uint64
	// NoClustering / NoPerturbation disable the respective subroutine
	// (ablation benchmarks).
	NoClustering   bool
	NoPerturbation bool
}

// Move is one move(LS(q,From), From, To) directive.
type Move struct {
	Q        query.ID
	From, To partition.WorkerID
}

// TracePoint records the best-known cost after each ILS round (Fig. 6g).
type TracePoint struct {
	Round     int
	Cost      int64
	Perturbed bool
	Elapsed   time.Duration
}

// Result is the outcome of one Q-cut run.
type Result struct {
	Moves       []Move
	InitialCost int64
	FinalCost   int64
	Rounds      int
	Trace       []TracePoint
}

// Run executes Q-cut on a snapshot. It always returns the best solution
// found so far, even when the deadline interrupts it mid-search
// (requirement (b) of Sec. 3.2.2).
func Run(in Input) Result {
	rng := rand.New(rand.NewPCG(in.Seed, 0x2545f4914f6cdd1d))
	s := newState(in)
	res := Result{InitialCost: s.cost()}

	maxStall := in.MaxStall
	if maxStall <= 0 {
		maxStall = 64
	}
	deadline := func() bool {
		return !in.Deadline.IsZero() && time.Now().After(in.Deadline)
	}
	start := time.Now()

	// Initial solution: the running system's current assignment,
	// rebalanced if it violates δ (Appendix A.3 — "all solution states
	// have balanced workload").
	s.rebalance(rng)
	s.localSearch(deadline)
	best := s.clone()
	res.Trace = append(res.Trace, TracePoint{Round: 0, Cost: best.cost(), Elapsed: time.Since(start)})

	if !in.NoPerturbation {
		stall := 0
		for round := 1; stall < maxStall && !deadline(); round++ {
			cand := best.clone()
			cand.perturb(rng)
			cand.localSearch(deadline)
			improved := cand.balanced() && cand.cost() < best.cost()
			if improved {
				best = cand
				stall = 0
			} else {
				stall++
			}
			res.Rounds = round
			res.Trace = append(res.Trace, TracePoint{
				Round: round, Cost: best.cost(), Perturbed: true,
				Elapsed: time.Since(start),
			})
		}
	}

	res.FinalCost = best.cost()
	res.Moves = best.moves()
	return res
}
