// Package metrics records the measurements of the paper's evaluation:
// per-query latency and locality, time-binned series (Fig. 5), workload
// imbalance across workers (Fig. 6e), and locality over time (Fig. 6f).
// All recorders are safe for concurrent use.
package metrics

import (
	"math"
	"sort"
	"sync"
	"time"
)

// QueryRecord is the outcome of one finished query.
type QueryRecord struct {
	ID          int64
	Kind        string
	ScheduledAt time.Time
	Latency     time.Duration
	Supersteps  int
	LocalIters  int // supersteps executed fully locally on one worker
	Touched     int // global query scope size |GS(q)|
	Workers     int // workers the query ever involved (its query-cut share)
	Result      float64
}

// Locality returns the fraction of supersteps executed fully locally.
func (r QueryRecord) Locality() float64 {
	if r.Supersteps == 0 {
		return 1
	}
	return float64(r.LocalIters) / float64(r.Supersteps)
}

// Recorder accumulates query records and worker load samples.
type Recorder struct {
	mu      sync.Mutex
	start   time.Time
	queries []QueryRecord
	loads   []LoadSample
}

// LoadSample is one observation of a worker's load (active vertices
// processed), used for the imbalance series of Fig. 6e.
type LoadSample struct {
	At     time.Time
	Worker int
	Active int
}

// NewRecorder creates a recorder; t0 anchors the time-binned series.
func NewRecorder(t0 time.Time) *Recorder {
	return &Recorder{start: t0}
}

// Start returns the recorder's time origin.
func (r *Recorder) Start() time.Time { return r.start }

// RecordQuery appends a finished query.
func (r *Recorder) RecordQuery(q QueryRecord) {
	r.mu.Lock()
	r.queries = append(r.queries, q)
	r.mu.Unlock()
}

// RecordLoad appends a worker load observation.
func (r *Recorder) RecordLoad(s LoadSample) {
	r.mu.Lock()
	r.loads = append(r.loads, s)
	r.mu.Unlock()
}

// Queries returns a copy of all query records.
func (r *Recorder) Queries() []QueryRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QueryRecord, len(r.queries))
	copy(out, r.queries)
	return out
}

// Summary aggregates query records.
type Summary struct {
	Count          int
	TotalLatency   time.Duration
	MeanLatency    time.Duration
	P50, P95, P99  time.Duration
	MeanLocality   float64
	MeanSupersteps float64
	MeanTouched    float64
	MeanWorkers    float64
}

// Summarize aggregates all recorded queries.
func (r *Recorder) Summarize() Summary {
	return SummarizeRecords(r.Queries())
}

// SummarizeRecords aggregates a record slice.
func SummarizeRecords(qs []QueryRecord) Summary {
	var s Summary
	s.Count = len(qs)
	if s.Count == 0 {
		return s
	}
	lats := make([]time.Duration, 0, len(qs))
	var loc, steps, touched, workers float64
	for _, q := range qs {
		s.TotalLatency += q.Latency
		lats = append(lats, q.Latency)
		loc += q.Locality()
		steps += float64(q.Supersteps)
		touched += float64(q.Touched)
		workers += float64(q.Workers)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	s.MeanLatency = s.TotalLatency / time.Duration(s.Count)
	s.P50 = lats[len(lats)/2]
	s.P95 = lats[min(len(lats)*95/100, len(lats)-1)]
	s.P99 = lats[min(len(lats)*99/100, len(lats)-1)]
	s.MeanLocality = loc / float64(s.Count)
	s.MeanSupersteps = steps / float64(s.Count)
	s.MeanTouched = touched / float64(s.Count)
	s.MeanWorkers = workers / float64(s.Count)
	return s
}

// SeriesPoint is one bin of a time series.
type SeriesPoint struct {
	Bin   int
	Start time.Duration // offset of the bin from the recorder origin
	Value float64
	Count int
}

// LatencySeries bins mean query latency (seconds) by completion time.
func (r *Recorder) LatencySeries(bin time.Duration) []SeriesPoint {
	return r.querySeries(bin, func(q QueryRecord) float64 { return q.Latency.Seconds() })
}

// LocalitySeries bins mean per-query locality by completion time
// (the running average of Fig. 6f).
func (r *Recorder) LocalitySeries(bin time.Duration) []SeriesPoint {
	return r.querySeries(bin, func(q QueryRecord) float64 { return q.Locality() })
}

func (r *Recorder) querySeries(bin time.Duration, f func(QueryRecord) float64) []SeriesPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	if bin <= 0 || len(r.queries) == 0 {
		return nil
	}
	sums := map[int]*SeriesPoint{}
	maxBin := 0
	for _, q := range r.queries {
		done := q.ScheduledAt.Add(q.Latency)
		b := int(done.Sub(r.start) / bin)
		if b < 0 {
			b = 0
		}
		p := sums[b]
		if p == nil {
			p = &SeriesPoint{Bin: b, Start: time.Duration(b) * bin}
			sums[b] = p
		}
		p.Value += f(q)
		p.Count++
		if b > maxBin {
			maxBin = b
		}
	}
	out := make([]SeriesPoint, 0, len(sums))
	for _, p := range sums {
		p.Value /= float64(p.Count)
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bin < out[j].Bin })
	return out
}

// ImbalanceSeries bins worker load samples and reports, per bin, the mean
// relative deviation of per-worker load from the bin average — the paper's
// workload imbalance measure of Fig. 6e. k is the worker count.
func (r *Recorder) ImbalanceSeries(bin time.Duration, k int) []SeriesPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	if bin <= 0 || len(r.loads) == 0 || k <= 0 {
		return nil
	}
	type binLoad struct {
		perWorker []float64
	}
	bins := map[int]*binLoad{}
	for _, s := range r.loads {
		b := int(s.At.Sub(r.start) / bin)
		if b < 0 {
			b = 0
		}
		bl := bins[b]
		if bl == nil {
			bl = &binLoad{perWorker: make([]float64, k)}
			bins[b] = bl
		}
		if s.Worker >= 0 && s.Worker < k {
			bl.perWorker[s.Worker] += float64(s.Active)
		}
	}
	out := make([]SeriesPoint, 0, len(bins))
	for b, bl := range bins {
		mean := 0.0
		for _, v := range bl.perWorker {
			mean += v
		}
		mean /= float64(k)
		if mean == 0 {
			continue
		}
		dev := 0.0
		for _, v := range bl.perWorker {
			dev += math.Abs(v-mean) / mean
		}
		out = append(out, SeriesPoint{
			Bin: b, Start: time.Duration(b) * bin,
			Value: dev / float64(k), Count: k,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bin < out[j].Bin })
	return out
}
