// Package metrics records the measurements of the paper's evaluation:
// per-query latency and locality, time-binned series (Fig. 5), workload
// imbalance across workers (Fig. 6e), and locality over time (Fig. 6f).
// All recorders are safe for concurrent use.
package metrics

import (
	"math"
	"sort"
	"sync"
	"time"
)

// QueryRecord is the outcome of one finished query.
type QueryRecord struct {
	ID          int64
	Kind        string
	ScheduledAt time.Time
	Latency     time.Duration
	Supersteps  int
	LocalIters  int // supersteps executed fully locally on one worker
	Touched     int // global query scope size |GS(q)|
	Workers     int // workers the query ever involved (its query-cut share)
	Result      float64
}

// Locality returns the fraction of supersteps executed fully locally.
func (r QueryRecord) Locality() float64 {
	if r.Supersteps == 0 {
		return 1
	}
	return float64(r.LocalIters) / float64(r.Supersteps)
}

// Retention caps. A recorder lives as long as the engine: unbounded
// append meant multi-day deployments grew by one QueryRecord per query
// and one LoadSample per active worker report, forever. The rings keep
// the newest window — large enough for every report this package renders
// — and evict the oldest beyond it.
const (
	// DefaultMaxQueries bounds retained query records (~6 MiB).
	DefaultMaxQueries = 1 << 16
	// DefaultMaxLoads bounds retained load samples (~10 MiB); load
	// samples arrive far more often than query records (one per worker
	// per barrier report), so the window is wider.
	DefaultMaxLoads = 1 << 18
)

// Recorder accumulates query records and worker load samples in bounded
// rings; summaries and series cover the retained window.
type Recorder struct {
	mu      sync.Mutex
	start   time.Time
	queries ring[QueryRecord]
	loads   ring[LoadSample]
	// evicted counts records dropped past the caps, so consumers can see
	// that a summary covers a window, not the whole run.
	queriesEvicted int64
	loadsEvicted   int64
}

// ring is a fixed-capacity FIFO: grows to max, then overwrites oldest.
type ring[T any] struct {
	buf  []T
	next int  // overwrite position once full
	full bool // buf reached max and wrapped at least once
}

// push appends v, evicting the oldest once max is reached; reports
// whether an eviction happened.
func (r *ring[T]) push(v T, max int) bool {
	if !r.full && len(r.buf) < max {
		r.buf = append(r.buf, v)
		return false
	}
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	r.full = true
	return true
}

// snapshot copies the retained values oldest-first.
func (r *ring[T]) snapshot() []T {
	out := make([]T, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		return append(out, r.buf[:r.next]...)
	}
	return append(out, r.buf...)
}

// LoadSample is one observation of a worker's load (active vertices
// processed), used for the imbalance series of Fig. 6e.
type LoadSample struct {
	At     time.Time
	Worker int
	Active int
}

// NewRecorder creates a recorder; t0 anchors the time-binned series.
func NewRecorder(t0 time.Time) *Recorder {
	return &Recorder{start: t0}
}

// Start returns the recorder's time origin.
func (r *Recorder) Start() time.Time { return r.start }

// RecordQuery appends a finished query, evicting the oldest retained
// record past the retention cap.
func (r *Recorder) RecordQuery(q QueryRecord) {
	r.mu.Lock()
	if r.queries.push(q, DefaultMaxQueries) {
		r.queriesEvicted++
	}
	r.mu.Unlock()
}

// RecordLoad appends a worker load observation, evicting the oldest
// retained sample past the retention cap.
func (r *Recorder) RecordLoad(s LoadSample) {
	r.mu.Lock()
	if r.loads.push(s, DefaultMaxLoads) {
		r.loadsEvicted++
	}
	r.mu.Unlock()
}

// Queries returns a copy of the retained query records, oldest first.
func (r *Recorder) Queries() []QueryRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queries.snapshot()
}

// Evicted reports how many query records and load samples have been
// dropped past the retention caps (0, 0 until the rings fill).
func (r *Recorder) Evicted() (queries, loads int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queriesEvicted, r.loadsEvicted
}

// Summary aggregates query records.
type Summary struct {
	Count          int
	TotalLatency   time.Duration
	MeanLatency    time.Duration
	P50, P95, P99  time.Duration
	MeanLocality   float64
	MeanSupersteps float64
	MeanTouched    float64
	MeanWorkers    float64
}

// Summarize aggregates all recorded queries.
func (r *Recorder) Summarize() Summary {
	return SummarizeRecords(r.Queries())
}

// SummarizeRecords aggregates a record slice.
func SummarizeRecords(qs []QueryRecord) Summary {
	var s Summary
	s.Count = len(qs)
	if s.Count == 0 {
		return s
	}
	lats := make([]time.Duration, 0, len(qs))
	var loc, steps, touched, workers float64
	for _, q := range qs {
		s.TotalLatency += q.Latency
		lats = append(lats, q.Latency)
		loc += q.Locality()
		steps += float64(q.Supersteps)
		touched += float64(q.Touched)
		workers += float64(q.Workers)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	s.MeanLatency = s.TotalLatency / time.Duration(s.Count)
	s.P50 = lats[len(lats)/2]
	s.P95 = lats[min(len(lats)*95/100, len(lats)-1)]
	s.P99 = lats[min(len(lats)*99/100, len(lats)-1)]
	s.MeanLocality = loc / float64(s.Count)
	s.MeanSupersteps = steps / float64(s.Count)
	s.MeanTouched = touched / float64(s.Count)
	s.MeanWorkers = workers / float64(s.Count)
	return s
}

// SeriesPoint is one bin of a time series.
type SeriesPoint struct {
	Bin   int
	Start time.Duration // offset of the bin from the recorder origin
	Value float64
	Count int
}

// LatencySeries bins mean query latency (seconds) by completion time.
func (r *Recorder) LatencySeries(bin time.Duration) []SeriesPoint {
	return r.querySeries(bin, func(q QueryRecord) float64 { return q.Latency.Seconds() })
}

// LocalitySeries bins mean per-query locality by completion time
// (the running average of Fig. 6f).
func (r *Recorder) LocalitySeries(bin time.Duration) []SeriesPoint {
	return r.querySeries(bin, func(q QueryRecord) float64 { return q.Locality() })
}

func (r *Recorder) querySeries(bin time.Duration, f func(QueryRecord) float64) []SeriesPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	if bin <= 0 || len(r.queries.buf) == 0 {
		return nil
	}
	sums := map[int]*SeriesPoint{}
	maxBin := 0
	// Binning is order-independent; iterate the raw ring storage.
	for _, q := range r.queries.buf {
		done := q.ScheduledAt.Add(q.Latency)
		b := int(done.Sub(r.start) / bin)
		if b < 0 {
			b = 0
		}
		p := sums[b]
		if p == nil {
			p = &SeriesPoint{Bin: b, Start: time.Duration(b) * bin}
			sums[b] = p
		}
		p.Value += f(q)
		p.Count++
		if b > maxBin {
			maxBin = b
		}
	}
	out := make([]SeriesPoint, 0, len(sums))
	for _, p := range sums {
		p.Value /= float64(p.Count)
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bin < out[j].Bin })
	return out
}

// ImbalanceSeries bins worker load samples and reports, per bin, the mean
// relative deviation of per-worker load from the bin average — the paper's
// workload imbalance measure of Fig. 6e. k is the worker count.
func (r *Recorder) ImbalanceSeries(bin time.Duration, k int) []SeriesPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	if bin <= 0 || len(r.loads.buf) == 0 || k <= 0 {
		return nil
	}
	type binLoad struct {
		perWorker []float64
	}
	bins := map[int]*binLoad{}
	for _, s := range r.loads.buf {
		b := int(s.At.Sub(r.start) / bin)
		if b < 0 {
			b = 0
		}
		bl := bins[b]
		if bl == nil {
			bl = &binLoad{perWorker: make([]float64, k)}
			bins[b] = bl
		}
		if s.Worker >= 0 && s.Worker < k {
			bl.perWorker[s.Worker] += float64(s.Active)
		}
	}
	out := make([]SeriesPoint, 0, len(bins))
	for b, bl := range bins {
		mean := 0.0
		for _, v := range bl.perWorker {
			mean += v
		}
		mean /= float64(k)
		if mean == 0 {
			continue
		}
		dev := 0.0
		for _, v := range bl.perWorker {
			dev += math.Abs(v-mean) / mean
		}
		out = append(out, SeriesPoint{
			Bin: b, Start: time.Duration(b) * bin,
			Value: dev / float64(k), Count: k,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bin < out[j].Bin })
	return out
}
