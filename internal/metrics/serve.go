package metrics

import (
	"sync/atomic"
	"time"
)

// ServeCounters are the serving-layer counters: request admission, cache
// effectiveness, and queue wait. All fields are atomics, safe for
// concurrent use on the request path without locking.
type ServeCounters struct {
	start atomic.Int64 // unix nanos of the first Reset/first observation

	Received  atomic.Int64 // POST /query requests accepted for processing
	Completed atomic.Int64 // queries answered with a result
	Failed    atomic.Int64 // queries that ended in an engine error
	Rejected  atomic.Int64 // admission rejections (429)
	Expired   atomic.Int64 // requests that hit their deadline (504)

	CacheHits   atomic.Int64 // answered from the result cache
	Coalesced   atomic.Int64 // joined an identical in-flight query
	CacheMisses atomic.Int64 // cache lookups that missed (no_cache requests never look)
	Invalidated atomic.Int64 // cache flushes (repartition / graph version)

	QueueWaitNanos atomic.Int64 // total admission queue wait
	QueueWaits     atomic.Int64 // count of admitted requests (wait samples)

	MutationOps      atomic.Int64 // ops received on POST /mutate
	MutationsApplied atomic.Int64 // ops that changed the graph
	MutationNoOps    atomic.Int64 // ops referencing a non-existent edge
	MutationBatches  atomic.Int64 // client batches committed
	MutationsFailed  atomic.Int64 // batches rejected, failed, or timed out
}

// NewServeCounters returns counters anchored at now.
func NewServeCounters(now time.Time) *ServeCounters {
	c := &ServeCounters{}
	c.start.Store(now.UnixNano())
	return c
}

// ObserveQueueWait records one admission grant and its queue wait.
func (c *ServeCounters) ObserveQueueWait(d time.Duration) {
	c.QueueWaitNanos.Add(int64(d))
	c.QueueWaits.Add(1)
}

// ServeSnapshot is a consistent-enough copy of the counters with the
// derived rates the /stats endpoint reports.
type ServeSnapshot struct {
	Uptime    time.Duration `json:"uptime"`
	Received  int64         `json:"received"`
	Completed int64         `json:"completed"`
	Failed    int64         `json:"failed"`
	Rejected  int64         `json:"rejected"`
	Expired   int64         `json:"expired"`

	CacheHits   int64 `json:"cache_hits"`
	Coalesced   int64 `json:"coalesced"`
	CacheMisses int64 `json:"cache_misses"`
	Invalidated int64 `json:"cache_invalidations"`

	MutationOps      int64 `json:"mutation_ops"`
	MutationsApplied int64 `json:"mutations_applied"`
	MutationNoOps    int64 `json:"mutation_noops"`
	MutationBatches  int64 `json:"mutation_batches"`
	MutationsFailed  int64 `json:"mutations_failed"`

	// QPS is completed queries per second of uptime.
	QPS float64 `json:"qps"`
	// ApplyRate is applied mutation ops per second of uptime.
	ApplyRate float64 `json:"mutation_apply_rate"`
	// HitRatio is (hits+coalesced) / lookups.
	HitRatio float64 `json:"cache_hit_ratio"`
	// MeanQueueWait averages admission queue wait over admitted requests.
	MeanQueueWait time.Duration `json:"mean_queue_wait"`
}

// Snapshot derives the reportable view at time now.
func (c *ServeCounters) Snapshot(now time.Time) ServeSnapshot {
	s := ServeSnapshot{
		Received:    c.Received.Load(),
		Completed:   c.Completed.Load(),
		Failed:      c.Failed.Load(),
		Rejected:    c.Rejected.Load(),
		Expired:     c.Expired.Load(),
		CacheHits:   c.CacheHits.Load(),
		Coalesced:   c.Coalesced.Load(),
		CacheMisses: c.CacheMisses.Load(),
		Invalidated: c.Invalidated.Load(),

		MutationOps:      c.MutationOps.Load(),
		MutationsApplied: c.MutationsApplied.Load(),
		MutationNoOps:    c.MutationNoOps.Load(),
		MutationBatches:  c.MutationBatches.Load(),
		MutationsFailed:  c.MutationsFailed.Load(),
	}
	if t0 := c.start.Load(); t0 != 0 {
		s.Uptime = now.Sub(time.Unix(0, t0))
	}
	if sec := s.Uptime.Seconds(); sec > 0 {
		s.QPS = float64(s.Completed) / sec
		s.ApplyRate = float64(s.MutationsApplied) / sec
	}
	if lookups := s.CacheHits + s.Coalesced + s.CacheMisses; lookups > 0 {
		s.HitRatio = float64(s.CacheHits+s.Coalesced) / float64(lookups)
	}
	if n := c.QueueWaits.Load(); n > 0 {
		s.MeanQueueWait = time.Duration(c.QueueWaitNanos.Load() / n)
	}
	return s
}
