package metrics

import (
	"testing"
	"time"
)

func TestServeCountersSnapshot(t *testing.T) {
	t0 := time.Unix(100, 0)
	c := NewServeCounters(t0)
	c.Received.Add(10)
	c.Completed.Add(8)
	c.Rejected.Add(1)
	c.Expired.Add(1)
	c.CacheHits.Add(3)
	c.Coalesced.Add(1)
	c.CacheMisses.Add(4)
	c.ObserveQueueWait(20 * time.Millisecond)
	c.ObserveQueueWait(40 * time.Millisecond)

	s := c.Snapshot(t0.Add(4 * time.Second))
	if s.Uptime != 4*time.Second {
		t.Fatalf("uptime %v, want 4s", s.Uptime)
	}
	if s.QPS != 2 {
		t.Fatalf("qps %v, want 2 (8 completed / 4s)", s.QPS)
	}
	if s.HitRatio != 0.5 {
		t.Fatalf("hit ratio %v, want 0.5 ((3+1)/8)", s.HitRatio)
	}
	if s.MeanQueueWait != 30*time.Millisecond {
		t.Fatalf("mean queue wait %v, want 30ms", s.MeanQueueWait)
	}
}

func TestServeCountersEmpty(t *testing.T) {
	c := NewServeCounters(time.Unix(100, 0))
	s := c.Snapshot(time.Unix(100, 0))
	if s.QPS != 0 || s.HitRatio != 0 || s.MeanQueueWait != 0 {
		t.Fatalf("empty snapshot has nonzero derived values: %+v", s)
	}
}
