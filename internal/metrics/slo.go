package metrics

import "sync/atomic"

// TenantCounters is the lock-free per-tenant request ledger behind SLO
// accounting: the serving layer classifies every finished request into
// exactly one outcome bucket, and Good additionally counts the completed
// requests that met the latency target. All fields are atomics so the
// hot path (one classify per request) never takes a lock; consistency
// across fields is only needed at reporting time, where Snapshot's
// slightly-racy reads are fine.
type TenantCounters struct {
	Requests atomic.Int64 // every classified request
	Good     atomic.Int64 // completed within the latency target
	SlowOK   atomic.Int64 // completed, but over the latency target
	Rejected atomic.Int64 // 429: admission queue full
	Expired  atomic.Int64 // 504: deadline passed before completion
	Failed   atomic.Int64 // 503: engine-side failure
}

// TenantSnapshot is the JSON shape of one tenant's ledger.
type TenantSnapshot struct {
	Requests int64 `json:"requests"`
	Good     int64 `json:"good"`
	SlowOK   int64 `json:"slow_ok"`
	Rejected int64 `json:"rejected"`
	Expired  int64 `json:"expired"`
	Failed   int64 `json:"failed"`
}

// Snapshot reads the counters (individually atomic, not mutually
// consistent — acceptable for reporting).
func (t *TenantCounters) Snapshot() TenantSnapshot {
	if t == nil {
		return TenantSnapshot{}
	}
	return TenantSnapshot{
		Requests: t.Requests.Load(),
		Good:     t.Good.Load(),
		SlowOK:   t.SlowOK.Load(),
		Rejected: t.Rejected.Load(),
		Expired:  t.Expired.Load(),
		Failed:   t.Failed.Load(),
	}
}
