package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func mkRecorder(latencies ...time.Duration) *Recorder {
	t0 := time.Unix(1000, 0)
	r := NewRecorder(t0)
	for i, l := range latencies {
		r.RecordQuery(QueryRecord{
			ID:          int64(i + 1),
			ScheduledAt: t0.Add(time.Duration(i) * time.Second),
			Latency:     l,
			Supersteps:  10,
			LocalIters:  i % 11,
			Touched:     100,
			Workers:     2,
		})
	}
	return r
}

func TestSummarize(t *testing.T) {
	r := mkRecorder(time.Second, 3*time.Second, 2*time.Second)
	s := r.Summarize()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.TotalLatency != 6*time.Second {
		t.Fatalf("total = %v", s.TotalLatency)
	}
	if s.MeanLatency != 2*time.Second {
		t.Fatalf("mean = %v", s.MeanLatency)
	}
	if s.P50 != 2*time.Second {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.MeanTouched != 100 || s.MeanWorkers != 2 {
		t.Fatalf("touched/workers = %v/%v", s.MeanTouched, s.MeanWorkers)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	r := NewRecorder(time.Now())
	s := r.Summarize()
	if s.Count != 0 || s.TotalLatency != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestLocality(t *testing.T) {
	q := QueryRecord{Supersteps: 10, LocalIters: 4}
	if q.Locality() != 0.4 {
		t.Fatalf("locality = %v", q.Locality())
	}
	zero := QueryRecord{}
	if zero.Locality() != 1 {
		t.Fatalf("zero-step locality = %v (a query that never iterated is trivially local)", zero.Locality())
	}
}

func TestLatencySeriesBinning(t *testing.T) {
	t0 := time.Unix(1000, 0)
	r := NewRecorder(t0)
	// Two queries completing in bin 0, one in bin 2.
	r.RecordQuery(QueryRecord{ID: 1, ScheduledAt: t0, Latency: 100 * time.Millisecond, Supersteps: 1})
	r.RecordQuery(QueryRecord{ID: 2, ScheduledAt: t0, Latency: 300 * time.Millisecond, Supersteps: 1})
	r.RecordQuery(QueryRecord{ID: 3, ScheduledAt: t0.Add(2 * time.Second), Latency: 500 * time.Millisecond, Supersteps: 1})
	pts := r.LatencySeries(time.Second)
	if len(pts) != 2 {
		t.Fatalf("bins = %d, want 2", len(pts))
	}
	if pts[0].Bin != 0 || pts[0].Count != 2 || pts[0].Value != 0.2 {
		t.Fatalf("bin0 = %+v", pts[0])
	}
	if pts[1].Bin != 2 || pts[1].Count != 1 || pts[1].Value != 0.5 {
		t.Fatalf("bin1 = %+v", pts[1])
	}
}

func TestImbalanceSeries(t *testing.T) {
	t0 := time.Unix(1000, 0)
	r := NewRecorder(t0)
	// Perfectly balanced bin: both workers 100.
	r.RecordLoad(LoadSample{At: t0, Worker: 0, Active: 100})
	r.RecordLoad(LoadSample{At: t0, Worker: 1, Active: 100})
	// Fully skewed bin: worker 0 gets everything.
	r.RecordLoad(LoadSample{At: t0.Add(time.Second), Worker: 0, Active: 200})
	pts := r.ImbalanceSeries(time.Second, 2)
	if len(pts) != 2 {
		t.Fatalf("bins = %d", len(pts))
	}
	if pts[0].Value != 0 {
		t.Fatalf("balanced bin imbalance = %v", pts[0].Value)
	}
	// Loads 200 and 0, mean 100 → mean |dev|/mean = (1+1)/2 = 1.
	if pts[1].Value != 1 {
		t.Fatalf("skewed bin imbalance = %v", pts[1].Value)
	}
}

// TestSeriesSorted: series points are always in bin order and values
// finite (property-based over random records).
func TestSeriesSorted(t *testing.T) {
	f := func(lats []uint16) bool {
		t0 := time.Unix(0, 0)
		r := NewRecorder(t0)
		for i, l := range lats {
			r.RecordQuery(QueryRecord{
				ID:          int64(i),
				ScheduledAt: t0.Add(time.Duration(i%7) * time.Second),
				Latency:     time.Duration(l) * time.Millisecond,
				Supersteps:  1,
			})
		}
		pts := r.LocalitySeries(time.Second)
		for i := 1; i < len(pts); i++ {
			if pts[i].Bin <= pts[i-1].Bin {
				return false
			}
		}
		for _, p := range pts {
			if p.Value < 0 || p.Value > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentRecording: the recorder is safe under concurrent use.
func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(time.Now())
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				r.RecordQuery(QueryRecord{ID: int64(g*1000 + i), Latency: time.Millisecond, Supersteps: 1})
				r.RecordLoad(LoadSample{Worker: g, Active: i})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := len(r.Queries()); got != 2000 {
		t.Fatalf("recorded %d queries, want 2000", got)
	}
}

// TestRecorderBoundedRetention: the rings evict oldest-first at the caps,
// snapshots stay chronological, and summaries cover exactly the retained
// window — a recorder on a long-lived engine must not grow forever.
func TestRecorderBoundedRetention(t *testing.T) {
	r := NewRecorder(time.Unix(0, 0))
	const extra = 137
	for i := 0; i < DefaultMaxQueries+extra; i++ {
		r.RecordQuery(QueryRecord{ID: int64(i), Latency: time.Millisecond, Supersteps: 1})
	}
	qs := r.Queries()
	if len(qs) != DefaultMaxQueries {
		t.Fatalf("retained %d queries, want %d", len(qs), DefaultMaxQueries)
	}
	if qs[0].ID != extra {
		t.Errorf("oldest retained ID = %d, want %d (oldest evicted first)", qs[0].ID, extra)
	}
	for i := 1; i < len(qs); i++ {
		if qs[i].ID != qs[i-1].ID+1 {
			t.Fatalf("snapshot not chronological at %d: %d after %d", i, qs[i].ID, qs[i-1].ID)
		}
	}
	if s := r.Summarize(); s.Count != DefaultMaxQueries {
		t.Errorf("Summarize covers %d, want the retained window %d", s.Count, DefaultMaxQueries)
	}
	for i := 0; i < DefaultMaxLoads+extra; i++ {
		r.RecordLoad(LoadSample{At: time.Unix(0, int64(i)), Worker: 0, Active: 1})
	}
	qEv, lEv := r.Evicted()
	if qEv != extra || lEv != extra {
		t.Errorf("Evicted() = (%d, %d), want (%d, %d)", qEv, lEv, extra, extra)
	}
	if pts := r.ImbalanceSeries(time.Second, 1); len(pts) == 0 {
		t.Errorf("ImbalanceSeries empty over retained loads")
	}
}
