package graph

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

// lineGraph builds 0 → 1 → ... → n-1 with unit weights.
func lineGraph(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(VertexID(v), VertexID(v+1), 1)
	}
	return b.MustBuild()
}

// randomGraph builds a random connected graph for property tests.
func randomGraph(rng *rand.Rand, n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		// Tree backbone keeps it connected from 0.
		b.AddBiEdge(VertexID(rng.IntN(v)), VertexID(v), float32(rng.Float64()*10+0.1))
	}
	extra := rng.IntN(2 * n)
	for i := 0; i < extra; i++ {
		b.AddBiEdge(VertexID(rng.IntN(n)), VertexID(rng.IntN(n)), float32(rng.Float64()*10+0.1))
	}
	return b.MustBuild()
}

func TestBuilderCSRLayout(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1.5)
	b.AddEdge(0, 2, 2.5)
	b.AddEdge(2, 0, 3.5)
	g := b.MustBuild()
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if got := g.Out(0); len(got) != 2 || got[0].To != 1 || got[1].To != 2 {
		t.Fatalf("Out(0) = %v", got)
	}
	if g.OutDegree(1) != 0 {
		t.Fatalf("OutDegree(1) = %d", g.OutDegree(1))
	}
	if got := g.Out(2); len(got) != 1 || got[0].Weight != 3.5 {
		t.Fatalf("Out(2) = %v", got)
	}
}

func TestValidateRejectsBadEdges(t *testing.T) {
	if _, err := FromCSR([]int32{0, 1}, []Edge{{To: 5, Weight: 1}}, nil, nil); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := FromCSR([]int32{0, 1}, []Edge{{To: 0, Weight: -1}}, nil, nil); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := FromCSR([]int32{0, 2}, []Edge{{To: 0, Weight: 1}}, nil, nil); err == nil {
		t.Fatal("offset/edge mismatch accepted")
	}
	if _, err := FromCSR([]int32{0, 1}, []Edge{{To: 0, Weight: 1}}, make([]Coord, 5), nil); err == nil {
		t.Fatal("coord length mismatch accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	g := randomGraph(rng, 200)
	// Attach coords and tags to exercise both flags.
	coords := make([]Coord, 200)
	tags := make([]bool, 200)
	for i := range coords {
		coords[i] = Coord{X: float32(i), Y: float32(-i)}
		tags[i] = i%7 == 0
	}
	g2, err := FromCSR(g.offsets, g.edges, coords, tags)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g2.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVertices() != g2.NumVertices() || loaded.NumEdges() != g2.NumEdges() {
		t.Fatalf("size mismatch after round trip")
	}
	for v := 0; v < loaded.NumVertices(); v++ {
		a, b := g2.Out(VertexID(v)), loaded.Out(VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d edge %d: %v vs %v", v, i, a[i], b[i])
			}
		}
		if loaded.Coord(VertexID(v)) != g2.Coord(VertexID(v)) {
			t.Fatalf("vertex %d coord mismatch", v)
		}
		if loaded.Tagged(VertexID(v)) != g2.Tagged(VertexID(v)) {
			t.Fatalf("vertex %d tag mismatch", v)
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	g := lineGraph(10)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Load(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("truncated file accepted")
	}
	bad := append([]byte("XXXX"), data[4:]...)
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestParseEdgeList(t *testing.T) {
	in := `# comment
0 1 2.5
1 2
% another comment
2 0 0.5`
	g, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d/%d", g.NumVertices(), g.NumEdges())
	}
	if g.Out(1)[0].Weight != 1 {
		t.Fatalf("default weight = %v", g.Out(1)[0].Weight)
	}
	if _, err := ParseEdgeList(strings.NewReader("0 x")); err == nil {
		t.Fatal("bad vertex accepted")
	}
	if _, err := ParseEdgeList(strings.NewReader("0 1 -3")); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	g := randomGraph(rng, 50)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d vs %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(5)
	dist := Dijkstra(g, 0)
	for v, want := range []float64{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want)
		}
	}
	// Line is directed: nothing reaches 0.
	if d := Dijkstra(g, 4); d[0] != Inf {
		t.Fatalf("dist 4→0 = %v, want Inf", d[0])
	}
}

// TestDijkstraToAgreesWithFull is a property test: early-exit point-to-point
// distances match the full run.
func TestDijkstraToAgreesWithFull(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		g := randomGraph(rng, 60)
		src := VertexID(rng.IntN(60))
		full := Dijkstra(g, src)
		for trial := 0; trial < 10; trial++ {
			dst := VertexID(rng.IntN(60))
			if got := DijkstraTo(g, src, dst); got != full[dst] {
				t.Logf("src %d dst %d: %v vs %v", src, dst, got, full[dst])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTriangleInequality: Dijkstra distances satisfy d(u) + w(u,v) >= d(v).
func TestTriangleInequality(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 4))
		g := randomGraph(rng, 80)
		dist := Dijkstra(g, 0)
		for v := 0; v < g.NumVertices(); v++ {
			if dist[v] == Inf {
				continue
			}
			for _, e := range g.Out(VertexID(v)) {
				if dist[v]+float64(e.Weight) < dist[e.To]-1e-9 {
					t.Logf("relaxable edge %d→%d", v, e.To)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNearestTagged(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 3, 5)
	b.SetTags([]bool{false, false, true, true})
	g := b.MustBuild()
	v, d := NearestTagged(g, 0)
	if v != 2 || d != 2 {
		t.Fatalf("got vertex %d dist %v, want 2/2", v, d)
	}
	// Source tagged: distance zero.
	v, d = NearestTagged(g, 2)
	if v != 2 || d != 0 {
		t.Fatalf("tagged source: got %d/%v", v, d)
	}
}

func TestBFSHopsAndConnectivity(t *testing.T) {
	g := lineGraph(6)
	hops := BFSHops(g, 2)
	want := []int{-1, -1, 0, 1, 2, 3}
	for v := range want {
		if hops[v] != want[v] {
			t.Fatalf("hops[%d] = %d, want %d", v, hops[v], want[v])
		}
	}
	if got := ConnectedFrom(g, 2); got != 4 {
		t.Fatalf("ConnectedFrom = %d, want 4", got)
	}
}

func TestCoordDist(t *testing.T) {
	a, b := Coord{0, 0}, Coord{3, 4}
	if d := a.Dist(b); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
}
