package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Binary graph file format ("QGR1"): little-endian.
//
//	magic   [4]byte  "QGR1"
//	flags   uint32   bit0 = has coords, bit1 = has tags
//	n       uint64   vertex count
//	m       uint64   edge count
//	offsets [n+1]int32
//	edges   [m]{to int32, weight float32}
//	coords  [n]{x float32, y float32}   (if bit0)
//	tags    [n]byte                     (if bit1)
const (
	magic        = "QGR1"
	flagCoords   = 1 << 0
	flagTags     = 1 << 1
	maxFileVerts = 1 << 31 // sanity bound when loading untrusted files
)

// Save writes the graph in the QGR1 binary format.
func (g *Graph) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var flags uint32
	if g.coords != nil {
		flags |= flagCoords
	}
	if g.tags != nil {
		flags |= flagTags
	}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, flags); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.NumVertices())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.NumEdges())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.edges); err != nil {
		return err
	}
	if g.coords != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.coords); err != nil {
			return err
		}
	}
	if g.tags != nil {
		buf := make([]byte, len(g.tags))
		for i, t := range g.tags {
			if t {
				buf[i] = 1
			}
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a graph in the QGR1 binary format and validates it.
func Load(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("graph: bad magic %q", head)
	}
	var flags uint32
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, err
	}
	var n, m uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if n >= maxFileVerts || m >= maxFileVerts {
		return nil, fmt.Errorf("graph: unreasonable sizes n=%d m=%d", n, m)
	}
	offsets := make([]int32, n+1)
	if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
		return nil, err
	}
	edges := make([]Edge, m)
	if err := binary.Read(br, binary.LittleEndian, edges); err != nil {
		return nil, err
	}
	var coords []Coord
	if flags&flagCoords != 0 {
		coords = make([]Coord, n)
		if err := binary.Read(br, binary.LittleEndian, coords); err != nil {
			return nil, err
		}
	}
	var tags []bool
	if flags&flagTags != 0 {
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		tags = make([]bool, n)
		for i, b := range buf {
			tags[i] = b != 0
		}
	}
	return FromCSR(offsets, edges, coords, tags)
}

// SaveFile writes the graph to path in QGR1 format.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a QGR1 graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// ParseEdgeList reads a whitespace-separated edge list: one "from to weight"
// triple per line (weight optional, default 1). Lines starting with '#' or
// '%' are comments. The vertex count is one plus the largest ID seen.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	type rawEdge struct {
		from, to VertexID
		w        float32
	}
	var raw []rawEdge
	maxID := VertexID(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'from to [weight]', got %q", lineNo, line)
		}
		from, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad from: %w", lineNo, err)
		}
		to, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad to: %w", lineNo, err)
		}
		w := float32(1)
		if len(fields) >= 3 {
			wf, err := strconv.ParseFloat(fields[2], 32)
			if err != nil || wf < 0 || math.IsNaN(wf) {
				return nil, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
			}
			w = float32(wf)
		}
		if from < 0 || to < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		raw = append(raw, rawEdge{VertexID(from), VertexID(to), w})
		if VertexID(from) > maxID {
			maxID = VertexID(from)
		}
		if VertexID(to) > maxID {
			maxID = VertexID(to)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	b := NewBuilder(int(maxID) + 1)
	for _, e := range raw {
		b.AddEdge(e.from, e.to, e.w)
	}
	return b.Build()
}

// WriteEdgeList writes the graph as a plain text edge list.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.Out(VertexID(v)) {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", v, e.To, e.Weight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
