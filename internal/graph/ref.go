package graph

import (
	"container/heap"
	"math"
)

// This file holds sequential reference algorithms. They are the ground
// truth the distributed engine is validated against in tests: whatever the
// partitioning, synchronization mode, or adaptivity decisions, query
// results must match these.

// Inf is the distance assigned to unreachable vertices.
const Inf = math.MaxFloat64

type pqItem struct {
	v    VertexID
	dist float64
}

type priorityQueue []pqItem

func (p priorityQueue) Len() int            { return len(p) }
func (p priorityQueue) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p priorityQueue) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *priorityQueue) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *priorityQueue) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Dijkstra computes shortest-path distances from source to every vertex.
// Unreachable vertices get Inf.
func Dijkstra(g *Graph, source VertexID) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = Inf
	}
	dist[source] = 0
	pq := &priorityQueue{{source, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		for _, e := range g.Out(it.v) {
			nd := it.dist + float64(e.Weight)
			if nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(pq, pqItem{e.To, nd})
			}
		}
	}
	return dist
}

// DijkstraTo computes the shortest-path distance from source to target,
// stopping as soon as the target is settled. Returns Inf if unreachable.
func DijkstraTo(g *Graph, source, target VertexID) float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = Inf
	}
	dist[source] = 0
	pq := &priorityQueue{{source, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.v == target {
			return it.dist
		}
		if it.dist > dist[it.v] {
			continue
		}
		for _, e := range g.Out(it.v) {
			nd := it.dist + float64(e.Weight)
			if nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(pq, pqItem{e.To, nd})
			}
		}
	}
	return Inf
}

// NearestTagged finds the tagged vertex with the smallest travel time from
// source (the POI reference). It returns NilVertex and Inf when no tagged
// vertex is reachable.
func NearestTagged(g *Graph, source VertexID) (VertexID, float64) {
	if !g.HasTags() {
		return NilVertex, Inf
	}
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = Inf
	}
	dist[source] = 0
	pq := &priorityQueue{{source, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		if g.Tagged(it.v) {
			return it.v, it.dist
		}
		for _, e := range g.Out(it.v) {
			nd := it.dist + float64(e.Weight)
			if nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(pq, pqItem{e.To, nd})
			}
		}
	}
	return NilVertex, Inf
}

// BFSHops computes hop counts from source (edge weights ignored);
// unreachable vertices get -1.
func BFSHops(g *Graph, source VertexID) []int {
	hops := make([]int, g.NumVertices())
	for i := range hops {
		hops[i] = -1
	}
	hops[source] = 0
	frontier := []VertexID{source}
	for len(frontier) > 0 {
		var next []VertexID
		for _, v := range frontier {
			for _, e := range g.Out(v) {
				if hops[e.To] == -1 {
					hops[e.To] = hops[v] + 1
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	return hops
}

// ConnectedFrom returns the number of vertices reachable from source.
func ConnectedFrom(g *Graph, source VertexID) int {
	hops := BFSHops(g, source)
	n := 0
	for _, h := range hops {
		if h >= 0 {
			n++
		}
	}
	return n
}
