// Package graph provides the static graph structure shared by all queries:
// a directed, weighted graph in compressed sparse row (CSR) form with
// optional per-vertex geographic coordinates and tags.
//
// The graph is immutable after construction. Per-query vertex data is not
// stored here: following the Q-Graph model (Sec. 2 of the paper), analytics
// queries read the shared structure but write only query-private data,
// which lives in internal/worker.
package graph

import (
	"fmt"
	"math"
)

// VertexID identifies a vertex. IDs are dense: 0 <= id < NumVertices.
type VertexID int32

// NilVertex is the sentinel for "no vertex".
const NilVertex VertexID = -1

// Edge is a directed edge with a non-negative weight. For road networks the
// weight is the travel time over the segment (length / speed limit).
type Edge struct {
	To     VertexID
	Weight float32
}

// Coord is a planar coordinate for a vertex. Road-network generators use
// kilometres in a local projection; Euclidean distance is good enough for
// workload generation (the paper uses Euclidean start/end distance too).
type Coord struct {
	X, Y float32
}

// Dist returns the Euclidean distance between two coordinates.
func (c Coord) Dist(o Coord) float64 {
	dx := float64(c.X - o.X)
	dy := float64(c.Y - o.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// View is read-only access to a directed weighted graph. *Graph is the
// immutable CSR implementation; internal/delta layers committed mutation
// batches over a base *Graph and implements the same contract. Everything
// that only reads graph structure (vertex programs, validation, the
// serving layer) accepts a View so it works on both.
type View interface {
	NumVertices() int
	NumEdges() int
	// Out returns the out-edges of v. The slice aliases internal storage
	// and must not be modified.
	Out(v VertexID) []Edge
	OutDegree(v VertexID) int
	HasCoords() bool
	Coord(v VertexID) Coord
	HasTags() bool
	Tagged(v VertexID) bool
}

// Graph is an immutable directed weighted graph in CSR form.
//
// Neighbors of v occupy edges[offsets[v]:offsets[v+1]]. Coordinates and
// tags are optional (nil when absent).
type Graph struct {
	offsets []int32 // len = NumVertices+1
	edges   []Edge  // len = NumEdges
	coords  []Coord // optional, len = NumVertices
	tags    []bool  // optional, len = NumVertices (POI tags)
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Out returns the out-edges of v. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) Out(v VertexID) []Edge {
	return g.edges[g.offsets[v]:g.offsets[v+1]]
}

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// HasCoords reports whether vertices carry coordinates.
func (g *Graph) HasCoords() bool { return g.coords != nil }

// Coord returns the coordinate of v. Valid only if HasCoords.
func (g *Graph) Coord(v VertexID) Coord { return g.coords[v] }

// Coords returns the full coordinate slice (nil if absent). Read-only.
func (g *Graph) Coords() []Coord { return g.coords }

// HasTags reports whether vertices carry POI tags.
func (g *Graph) HasTags() bool { return g.tags != nil }

// Tagged reports whether v carries the POI tag. Valid only if HasTags.
func (g *Graph) Tagged(v VertexID) bool { return g.tags[v] }

// Validate checks structural invariants and returns a descriptive error on
// the first violation. It is used by tests and by the graph file loader.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n < 0 {
		return fmt.Errorf("graph: negative vertex count %d", n)
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	for v := 0; v < n; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	if int(g.offsets[n]) != len(g.edges) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d edges", g.offsets[n], len(g.edges))
	}
	for i, e := range g.edges {
		if e.To < 0 || int(e.To) >= n {
			return fmt.Errorf("graph: edge %d targets out-of-range vertex %d", i, e.To)
		}
		if e.Weight < 0 || math.IsNaN(float64(e.Weight)) {
			return fmt.Errorf("graph: edge %d has invalid weight %v", i, e.Weight)
		}
	}
	if g.coords != nil && len(g.coords) != n {
		return fmt.Errorf("graph: %d coords for %d vertices", len(g.coords), n)
	}
	if g.tags != nil && len(g.tags) != n {
		return fmt.Errorf("graph: %d tags for %d vertices", len(g.tags), n)
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph. It is not safe
// for concurrent use.
type Builder struct {
	n      int
	adj    [][]Edge
	coords []Coord
	tags   []bool
}

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, adj: make([][]Edge, n)}
}

// AddEdge appends a directed edge from -> to with the given weight.
func (b *Builder) AddEdge(from, to VertexID, weight float32) {
	b.adj[from] = append(b.adj[from], Edge{To: to, Weight: weight})
}

// AddBiEdge appends directed edges in both directions with the same weight.
func (b *Builder) AddBiEdge(a, c VertexID, weight float32) {
	b.AddEdge(a, c, weight)
	b.AddEdge(c, a, weight)
}

// SetCoords attaches coordinates; len(coords) must equal the vertex count.
func (b *Builder) SetCoords(coords []Coord) { b.coords = coords }

// SetTags attaches POI tags; len(tags) must equal the vertex count.
func (b *Builder) SetTags(tags []bool) { b.tags = tags }

// Build produces the immutable CSR graph. The builder must not be used
// afterwards.
func (b *Builder) Build() (*Graph, error) {
	offsets := make([]int32, b.n+1)
	total := 0
	for v, es := range b.adj {
		total += len(es)
		offsets[v+1] = int32(total)
	}
	edges := make([]Edge, 0, total)
	for _, es := range b.adj {
		edges = append(edges, es...)
	}
	g := &Graph{offsets: offsets, edges: edges, coords: b.coords, tags: b.tags}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	b.adj = nil
	return g, nil
}

// MustBuild is Build that panics on error; for tests and generators whose
// inputs are correct by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

var _ View = (*Graph)(nil)

// FromCSR constructs a graph directly from CSR arrays (used by the binary
// loader). The slices are retained; callers must not modify them.
func FromCSR(offsets []int32, edges []Edge, coords []Coord, tags []bool) (*Graph, error) {
	g := &Graph{offsets: offsets, edges: edges, coords: coords, tags: tags}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
