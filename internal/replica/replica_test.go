package replica

import (
	"errors"
	"testing"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/core"
	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/obs/health"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
	"qgraph/internal/snapshot"
	"qgraph/internal/wal"
)

const testGraphID = 77

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	return b.MustBuild()
}

// setWeightOp reweights an existing path edge — always a valid,
// deterministic mutation regardless of how many came before.
func setWeightOp(k uint64) []delta.Op {
	from := graph.VertexID(k % 9)
	return []delta.Op{{Kind: delta.OpSetWeight, From: from, To: from + 1,
		Weight: 1 + float32(k)*0.01}}
}

func startPrimary(t *testing.T, snapDir, walDir string) *core.Engine {
	t.Helper()
	g, baseV := pathGraph(10), uint64(0)
	if snap, err := snapshot.LoadLatest(snapDir); err != nil {
		t.Fatal(err)
	} else if snap != nil {
		g, baseV = snap.Graph, snap.Version
	}
	eng, err := core.Start(core.Config{
		Workers: 2, Graph: g, Partitioner: partition.Hash{},
		BaseVersion: baseV, SnapshotDir: snapDir,
		WALDir: walDir, WALGraphID: testGraphID,
		CommitEvery: time.Millisecond, MaxBatchOps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func mutate(t *testing.T, eng *core.Engine, ops []delta.Op) {
	t.Helper()
	ch, err := eng.Mutate(ops)
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	select {
	case res := <-ch:
		if res.Err != nil {
			t.Fatalf("commit: %v", res.Err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("commit did not happen")
	}
}

// waitVersion blocks until the replica has applied at least v.
func waitVersion(t *testing.T, r *Replica, v uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if r.GraphVersion() >= v {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replica stuck at version %d, want >= %d (info %+v)",
		r.GraphVersion(), v, r.Info())
}

// scheduleFn is the Backend Schedule shape shared by the primary's
// controller and the replica.
type scheduleFn = func(spec query.Spec) (<-chan controller.Result, error)

// TestReplicaConvergesUnderLoad: a replica started against a live
// primary's directories catches up through the WAL tail, then follows new
// commits as they land, converging to the primary's exact version with
// identical query answers.
func TestReplicaConvergesUnderLoad(t *testing.T) {
	snapDir, walDir := t.TempDir(), t.TempDir()
	prim := startPrimary(t, snapDir, walDir)
	defer prim.Close()

	// History before the replica exists: bootstrap must replay it.
	for k := uint64(1); k <= 10; k++ {
		mutate(t, prim, setWeightOp(k))
	}

	rep, err := Start(Config{
		SnapshotDir: snapDir, WALDir: walDir, GraphID: testGraphID,
		Base: pathGraph(10), PollEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	// Live tail: commits land on the primary while the replica follows.
	for k := uint64(11); k <= 30; k++ {
		mutate(t, prim, setWeightOp(k))
	}
	want := prim.GraphVersion()
	if want != 30 {
		t.Fatalf("primary at version %d, want 30", want)
	}
	waitVersion(t, rep, want)

	// Same version, same answers.
	pv := runSSSP(t, prim.Controller().Schedule, 900)
	rv := runSSSP(t, rep.Schedule, 901)
	if pv != rv {
		t.Fatalf("replica answer %g != primary answer %g at version %d", rv, pv, want)
	}
	info := rep.Info()
	if info.Role != "replica" || info.AppliedVersion != want || info.WALHead < want {
		t.Fatalf("info %+v, want applied=%d", info, want)
	}
	if info.LagVersions != info.WALHead-info.AppliedVersion {
		t.Fatalf("lag accounting inconsistent: %+v", info)
	}
}

// runSSSP schedules 0→9 SSSP through a Backend-shaped Schedule and
// returns the distance.
func runSSSP(t *testing.T, schedule scheduleFn, id query.ID) float64 {
	t.Helper()
	ch, err := schedule(query.Spec{ID: id, Kind: query.KindSSSP, Source: 0, Target: 9})
	if err != nil {
		t.Fatalf("schedule %d: %v", id, err)
	}
	select {
	case res := <-ch:
		if res.Reason != protocol.FinishConverged && res.Reason != protocol.FinishEarly {
			t.Fatalf("query %d finished %v", id, res.Reason)
		}
		return res.Value
	case <-time.After(30 * time.Second):
		t.Fatalf("query %d never finished", id)
		return 0
	}
}

// TestReplicaRestartResumesFromCheckpointAndTail: an abruptly stopped
// replica restarted over the same shared directories bootstraps from the
// primary's newest checkpoint plus the WAL tail beyond it — no gap, no
// replay from genesis.
func TestReplicaRestartResumesFromCheckpointAndTail(t *testing.T) {
	snapDir, walDir := t.TempDir(), t.TempDir()
	prim := startPrimary(t, snapDir, walDir)
	defer prim.Close()

	for k := uint64(1); k <= 8; k++ {
		mutate(t, prim, setWeightOp(k))
	}
	rep, err := Start(Config{
		SnapshotDir: snapDir, WALDir: walDir, GraphID: testGraphID,
		Base: pathGraph(10), PollEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitVersion(t, rep, 8)
	// Abrupt stop: a kill -9 leaves no replica-side state at all, so
	// Close (which persists nothing) models it exactly.
	rep.Close()

	// The primary moves on: a durable checkpoint, then more commits that
	// exist only in the WAL tail.
	for k := uint64(9); k <= 12; k++ {
		mutate(t, prim, setWeightOp(k))
	}
	if res, err := prim.ForceSnapshot(); err != nil || !res.Persisted {
		t.Fatalf("checkpoint = %+v, %v", res, err)
	}
	for k := uint64(13); k <= 16; k++ {
		mutate(t, prim, setWeightOp(k))
	}

	rep2, err := Start(Config{
		SnapshotDir: snapDir, WALDir: walDir, GraphID: testGraphID,
		Base: pathGraph(10), PollEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	waitVersion(t, rep2, 16)

	info := rep2.Info()
	if info.BootstrapVersion < 12 {
		t.Fatalf("bootstrap version %d: restart ignored the checkpoint at 12", info.BootstrapVersion)
	}
	if info.Rebootstraps != 0 {
		t.Fatalf("%d rebootstraps on a clean restart, want 0", info.Rebootstraps)
	}
	pv := runSSSP(t, prim.Controller().Schedule, 910)
	rv := runSSSP(t, rep2.Schedule, 911)
	if pv != rv {
		t.Fatalf("replica answer %g != primary answer %g", rv, pv)
	}
}

// TestReplicaRebootstrapsAcrossTruncation: when the primary truncates its
// WAL past the replica's tail position, the replica must detect the gap,
// re-bootstrap from a newer checkpoint, and resume tailing — applied
// version never regressing. The primary side is driven at the WAL/snapshot
// layer so the truncation lands deterministically between replica polls.
func TestReplicaRebootstrapsAcrossTruncation(t *testing.T) {
	snapDir, walDir := t.TempDir(), t.TempDir()
	base := pathGraph(10)

	w, err := wal.Open(walDir, testGraphID)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for k := uint64(1); k <= 6; k++ {
		if err := w.Append(k, setWeightOp(k)); err != nil {
			t.Fatal(err)
		}
	}

	mon := health.New(health.Config{}, nil)
	rep, err := Start(Config{
		SnapshotDir: snapDir, WALDir: walDir, GraphID: testGraphID,
		Base: base, PollEvery: 10 * time.Millisecond, Monitor: mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitVersion(t, rep, 6)

	// The primary checkpoints at a version past the replica's position and
	// rebases its WAL there (exactly what a primary restart after a
	// checkpoint does): every old segment vanishes, the truncation floor
	// persists, and the replica's position is unreachable.
	gNow, _, err := wal.RecoverGraph(walDir, testGraphID, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	const rebasedTo = 11
	if _, err := snapshot.WriteFile(snapDir, &snapshot.Snapshot{Version: rebasedTo, Graph: gNow}); err != nil {
		t.Fatal(err)
	}
	if err := w.Rebase(rebasedTo); err != nil {
		t.Fatal(err)
	}

	waitVersion(t, rep, rebasedTo)
	// The counter increments after the swapped-in engine (and its version)
	// becomes visible, so poll instead of asserting the cross-goroutine
	// ordering — under scheduler load the gap is observable.
	deadline := time.Now().Add(10 * time.Second)
	for rep.Info().Rebootstraps == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := rep.Info().Rebootstraps; got != 1 {
		t.Fatalf("%d rebootstraps, want 1", got)
	}

	// Tailing resumes against the rebased log.
	if err := w.Append(rebasedTo+1, setWeightOp(rebasedTo+1)); err != nil {
		t.Fatal(err)
	}
	waitVersion(t, rep, rebasedTo+1)
	if got := rep.GraphVersion(); got != rebasedTo+1 {
		t.Fatalf("version %d after resume, want %d", got, rebasedTo+1)
	}

	// The gap left its trace in the health ring.
	events := mon.Events(health.EventFilter{Type: health.EventReplicaGap})
	if len(events) == 0 {
		t.Fatal("no replica-gap health event recorded")
	}
}

// TestReplicaRefusesWrites: the write surface returns ErrReadOnly — a
// replica applies the primary's WAL and nothing else.
func TestReplicaRefusesWrites(t *testing.T) {
	snapDir, walDir := t.TempDir(), t.TempDir()
	w, err := wal.Open(walDir, testGraphID)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	rep, err := Start(Config{
		SnapshotDir: snapDir, WALDir: walDir, GraphID: testGraphID,
		Base: pathGraph(10), PollEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	if _, err := rep.Mutate(setWeightOp(1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Mutate = %v, want ErrReadOnly", err)
	}
	if _, err := rep.ForceSnapshot(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ForceSnapshot = %v, want ErrReadOnly", err)
	}
}
