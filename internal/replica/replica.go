// Package replica runs a read-only follower of a Q-Graph primary. It
// bootstraps from the newest durable checkpoint plus the WAL tail, then
// tails the primary's WAL incrementally (wal.Tailer) and replays each
// committed batch — version-faithfully, one engine commit per WAL batch —
// into a local in-process engine. The replica implements serve.Backend,
// so the whole serving layer (admission, result cache, tracing, metrics)
// fronts it unchanged; writes are refused with ErrReadOnly and belong on
// the primary.
//
// Staleness model: the replica's GraphVersion is the number of primary
// commits it has applied. The serving layer stamps it on every response
// (serve.VersionHeader) and enforces ?min_version= floors against it, so
// a client — or the router — can bound how stale an answer may be.
//
// When the primary truncates its WAL past the replica's position (the
// tailer reports delta.ErrGap), the replica re-bootstraps from a newer
// checkpoint: the stale engine keeps serving until the replacement is
// ready, then is swapped out under the lock and closed. The applied
// version never regresses across the swap — the recovered version sits at
// or above the truncation floor, which is above anything the replica had.
package replica

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"qgraph/internal/controller"
	"qgraph/internal/core"
	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/obs"
	"qgraph/internal/obs/health"
	"qgraph/internal/query"
	recovery "qgraph/internal/recover"
	"qgraph/internal/serve"
	"qgraph/internal/snapshot"
	"qgraph/internal/wal"
)

// ErrReadOnly rejects writes: replicas apply the primary's WAL and
// nothing else, so accepting a local mutation would fork the history.
var ErrReadOnly = errors.New("replica: read-only (route writes to the primary)")

// Config parameterises a replica. SnapshotDir and WALDir are the
// primary's directories (shared filesystem or synchronized copy); Base
// is the version-0 graph the primary was started from, used only when no
// checkpoint exists yet.
type Config struct {
	SnapshotDir string
	WALDir      string
	// GraphID is the WAL graph identity (0 selects 1). Must match the
	// primary's, or the log refuses to open.
	GraphID uint64
	Base    *graph.Graph
	// Workers sizes the local engine (default 2 — replicas serve reads,
	// they do not need the primary's partition layout).
	Workers int
	// PollEvery is the tail poll interval (default 50ms). Staleness under
	// a healthy tail is bounded by roughly one poll interval plus apply
	// time.
	PollEvery time.Duration
	Obs       *obs.Obs
	Monitor   *health.Monitor
	Logger    *slog.Logger
}

// Replica is a running follower. It satisfies serve.Backend; reads are
// served by the embedded engine, writes return ErrReadOnly.
type Replica struct {
	cfg Config
	log *slog.Logger

	// mu guards the engine/tailer pair, which re-bootstrap swaps out
	// whole. Request paths take the read side; only the apply loop writes.
	mu     sync.RWMutex
	eng    *core.Engine
	tailer *wal.Tailer

	walHead      atomic.Uint64 // newest durable version the tailer has seen
	rebootstraps atomic.Int64
	lastApply    atomic.Int64 // unix ns of the last applied batch
	bootVersion  atomic.Uint64
	bootReplayed atomic.Int64
	applyErrs    atomic.Int64

	// Apply-path instruments (nil without an Obs registry). The counters
	// below are the replica's own monotonic accounting — tailer stats
	// reset when a re-bootstrap swaps the tailer, so *Base carries the
	// totals of retired tailers forward.
	applySeconds  *obs.Histogram
	pollSeconds   *obs.Histogram
	lagSeconds    *obs.Histogram
	rebootSeconds *obs.Histogram
	appliedTotal  atomic.Int64
	appliedOps    atomic.Int64
	tailBytesBase atomic.Int64
	tailPollsBase atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Start bootstraps a replica and launches its tail loop. The initial
// bootstrap retries a truncation gap a few times — the primary cutting a
// checkpoint and truncating between our snapshot scan and the WAL read
// resolves itself by rescanning — but a persistent gap (no checkpoint
// covering the truncation floor) is an error: the deployment is not
// sharing the primary's snapshot directory.
func Start(cfg Config) (*Replica, error) {
	if cfg.WALDir == "" {
		return nil, fmt.Errorf("replica: WALDir required")
	}
	if cfg.Base == nil {
		return nil, fmt.Errorf("replica: Base graph required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 50 * time.Millisecond
	}
	if cfg.Logger == nil {
		if cfg.Obs != nil {
			cfg.Logger = cfg.Obs.Log()
		} else {
			cfg.Logger = slog.Default()
		}
	}
	r := &Replica{
		cfg:  cfg,
		log:  cfg.Logger.With("role", "replica"),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = r.bootstrap()
		if err == nil {
			break
		}
		if !errors.Is(err, delta.ErrGap) || attempt >= 2 {
			return nil, err
		}
		// Gap on first contact: the primary truncated under us mid-scan.
		// A newer checkpoint exists by construction — rescan.
		time.Sleep(50 * time.Millisecond)
	}
	r.registerMetrics()
	go r.loop()
	return r, nil
}

// registerMetrics publishes the apply path: how long polls and per-batch
// applies take, how far behind the apply loop runs (poll-visibility to
// local commit — WAL batches carry no wall-clock, so lag is measured from
// the moment a batch became visible to the tailer), and monotonic applied
// batch/op/byte totals that survive re-bootstrap tailer swaps.
func (r *Replica) registerMetrics() {
	if r.cfg.Obs == nil {
		return
	}
	m := r.cfg.Obs.M()
	r.pollSeconds = m.Histogram("qgraph_replica_poll_seconds", "",
		"wall time of one WAL tail poll plus replay of whatever it returned", nil)
	r.applySeconds = m.Histogram("qgraph_replica_apply_seconds", "",
		"per-batch replay latency (engine mutate to local commit)", nil)
	r.lagSeconds = m.Histogram("qgraph_replica_apply_lag_seconds", "",
		"apply lag per batch: tail-poll visibility to local commit", nil)
	r.rebootSeconds = m.Histogram("qgraph_replica_rebootstrap_seconds", "",
		"duration of a bootstrap (checkpoint load + WAL replay + engine swap)", nil)
	m.CounterFunc("qgraph_replica_apply_batches_total", "",
		"WAL batches applied to the local engine",
		func() float64 { return float64(r.appliedTotal.Load()) })
	m.CounterFunc("qgraph_replica_apply_ops_total", "",
		"graph ops applied to the local engine",
		func() float64 { return float64(r.appliedOps.Load()) })
	m.CounterFunc("qgraph_replica_tail_bytes_total", "",
		"WAL bytes read by the tail loop (monotonic across re-bootstraps)",
		func() float64 { return float64(r.tailBytesBase.Load() + r.tailerStats().BytesRead) })
	m.CounterFunc("qgraph_replica_tail_polls_total", "",
		"WAL tail polls issued (monotonic across re-bootstraps)",
		func() float64 { return float64(r.tailPollsBase.Load() + r.tailerStats().Polls) })
}

// tailerStats reads the live tailer's counters under the lock (the tailer
// is swapped whole on re-bootstrap).
func (r *Replica) tailerStats() wal.TailerStats {
	r.mu.RLock()
	t := r.tailer
	r.mu.RUnlock()
	if t == nil {
		return wal.TailerStats{}
	}
	return t.Stats()
}

// bootstrap loads the newest intact checkpoint, replays the WAL tail
// beyond it, starts a fresh engine at the recovered version, and points a
// tailer there. On success the new pair is installed; any previous engine
// is closed after the swap so reads never observe a gap.
func (r *Replica) bootstrap() error {
	bootStarted := time.Now()
	snap, err := snapshot.LoadLatestObserved(r.cfg.SnapshotDir, func(path string, err error) {
		r.log.Warn("replica: skipping corrupt checkpoint", "path", path, "error", err)
		r.cfg.Monitor.Record(health.EventSnapshotCorrupt, health.SevWarn, -1,
			"corrupt checkpoint skipped during replica bootstrap",
			map[string]any{"path": path, "error": err.Error()})
	})
	if err != nil {
		return fmt.Errorf("replica: scanning checkpoints: %w", err)
	}
	base, baseV := r.cfg.Base, uint64(0)
	if snap != nil {
		base, baseV = snap.Graph, snap.Version
	}
	gid := r.cfg.GraphID
	if gid == 0 {
		gid = 1
	}
	g, v, err := wal.RecoverGraph(r.cfg.WALDir, gid, base, baseV)
	if err != nil {
		return fmt.Errorf("replica: recovering from checkpoint v%d: %w", baseV, err)
	}
	// The engine owns no WAL and no snapshot dir: the primary's log is
	// read-only ground truth here, and checkpointing is the primary's
	// job. MaxBatchOps=1 makes every Mutate commit immediately as its own
	// version, so replay is version-faithful: WAL batch N lands as local
	// commit N, exactly.
	eng, err := core.Start(core.Config{
		Workers:     r.cfg.Workers,
		Graph:       g,
		BaseVersion: v,
		Adapt:       false,
		MaxBatchOps: 1,
		CommitEvery: time.Millisecond,
		Obs:         r.cfg.Obs,
		Monitor:     r.cfg.Monitor,
	})
	if err != nil {
		return fmt.Errorf("replica: starting engine at v%d: %w", v, err)
	}

	r.mu.Lock()
	old := r.eng
	if old != nil && old.GraphVersion() > v {
		// Never regress: the incumbent is somehow ahead of what recovery
		// produced (a spurious gap). Keep it.
		r.mu.Unlock()
		eng.Close()
		return nil
	}
	if r.tailer != nil {
		// The retiring tailer's counters die with it; fold them into the
		// bases so the *_total metrics stay monotonic across the swap.
		ts := r.tailer.Stats()
		r.tailBytesBase.Add(ts.BytesRead)
		r.tailPollsBase.Add(ts.Polls)
	}
	r.eng = eng
	r.tailer = wal.NewTailer(r.cfg.WALDir, gid, v)
	r.mu.Unlock()
	if old != nil {
		old.Close()
	}

	r.bootVersion.Store(v)
	r.bootReplayed.Store(int64(v - baseV))
	if r.walHead.Load() < v {
		r.walHead.Store(v)
	}
	r.rebootSeconds.Observe(time.Since(bootStarted).Seconds())
	r.log.Info("replica: bootstrapped",
		"checkpoint_version", baseV, "replayed_batches", v-baseV, "version", v)
	return nil
}

// loop is the apply loop: poll the tail, replay what arrived, handle
// truncation gaps by re-bootstrapping. Single goroutine — the tailer and
// the engine swap are only ever driven from here.
func (r *Replica) loop() {
	defer close(r.done)
	tick := time.NewTicker(r.cfg.PollEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		r.pollOnce()
	}
}

// pollOnce drains one tail poll into the engine.
func (r *Replica) pollOnce() {
	r.mu.RLock()
	t, eng := r.tailer, r.eng
	r.mu.RUnlock()

	pollStarted := time.Now()
	batches, err := t.Poll()
	if err != nil {
		if errors.Is(err, delta.ErrGap) {
			r.handleGap(eng.GraphVersion())
			return
		}
		r.applyErrs.Add(1)
		r.log.Warn("replica: tail poll failed", "error", err)
		return
	}
	if len(batches) == 0 {
		r.pollSeconds.Observe(time.Since(pollStarted).Seconds())
		return
	}
	// The durable head advances as soon as the batches are read — lag
	// accounting should show an apply backlog, not hide it.
	r.walHead.Store(batches[len(batches)-1].Version)

	// One trace per non-empty poll: a root "tail-poll" span with an
	// "apply" child per batch, visible on the replica's /traces alongside
	// query traces. Batches carry no wall-clock, so the lag histogram
	// measures visibility-to-commit: how long a batch waited behind its
	// siblings in this drain plus its own replay.
	tracer := r.cfg.Obs.T()
	tr := tracer.Begin("tail-poll")
	tr.Root().SetAttr("batches", len(batches))
	tr.Root().SetAttr("from_version", batches[0].Version)
	tr.Root().SetAttr("to_version", batches[len(batches)-1].Version)
	defer tracer.Finish(tr)

	for _, b := range batches {
		if len(b.Ops) == 0 {
			// A versioned empty batch cannot be replayed through Mutate;
			// the local version can no longer mirror the log. Rebuild.
			r.log.Warn("replica: empty batch in tail, re-bootstrapping", "version", b.Version)
			r.handleGap(eng.GraphVersion())
			return
		}
		sp := tr.StartSpan(tr.Root(), "apply")
		sp.SetAttr("version", b.Version)
		sp.SetAttr("ops", len(b.Ops))
		applyStarted := time.Now()
		ch, err := eng.Mutate(b.Ops)
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			r.applyErrs.Add(1)
			r.log.Warn("replica: apply failed", "version", b.Version, "error", err)
			return
		}
		res := <-ch
		if res.Err != nil {
			sp.SetAttr("error", res.Err.Error())
			sp.End()
			r.applyErrs.Add(1)
			r.log.Warn("replica: commit failed", "version", b.Version, "error", res.Err)
			return
		}
		sp.End()
		if res.Version != b.Version {
			// Version skew between log and engine: replay fidelity is
			// broken (this should be impossible). Resync from durable
			// state rather than serving misversioned data.
			r.applyErrs.Add(1)
			r.log.Error("replica: version skew, re-bootstrapping",
				"wal_version", b.Version, "engine_version", res.Version)
			r.handleGap(eng.GraphVersion())
			return
		}
		now := time.Now()
		r.applySeconds.Observe(now.Sub(applyStarted).Seconds())
		r.lagSeconds.Observe(now.Sub(pollStarted).Seconds())
		r.appliedTotal.Add(1)
		r.appliedOps.Add(int64(len(b.Ops)))
		r.lastApply.Store(now.UnixNano())
	}
	r.pollSeconds.Observe(time.Since(pollStarted).Seconds())
}

// handleGap reacts to the primary truncating past our tail position:
// record the event, then bootstrap from a newer checkpoint. Failure is
// retried on the next poll tick — the stale engine keeps serving reads
// meanwhile.
func (r *Replica) handleGap(applied uint64) {
	r.cfg.Monitor.Record(health.EventReplicaGap, health.SevWarn, -1,
		"primary truncated WAL past replica position; re-bootstrapping from checkpoint",
		map[string]any{"applied_version": applied})
	r.log.Warn("replica: WAL truncated past position, re-bootstrapping", "applied_version", applied)
	if err := r.bootstrap(); err != nil {
		r.log.Warn("replica: re-bootstrap failed (will retry)", "error", err)
		return
	}
	r.rebootstraps.Add(1)
}

// engine returns the current engine under the read lock.
func (r *Replica) engine() *core.Engine {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.eng
}

// Info snapshots the replication state for /healthz, /stats and /metrics.
func (r *Replica) Info() serve.ReplicaInfo {
	r.mu.RLock()
	eng, t := r.eng, r.tailer
	r.mu.RUnlock()
	applied := eng.GraphVersion()
	head := r.walHead.Load()
	if head < applied {
		head = applied
	}
	ts := t.Stats()
	return serve.ReplicaInfo{
		Role:              "replica",
		AppliedVersion:    applied,
		WALHead:           head,
		LagVersions:       head - applied,
		Rebootstraps:      r.rebootstraps.Load(),
		TailPolls:         ts.Polls,
		TailBatches:       ts.Batches,
		TailBytes:         ts.BytesRead,
		LastApplyUnixNS:   r.lastApply.Load(),
		SnapshotsSkipped:  snapshot.SkippedCorrupt(),
		BootstrapVersion:  r.bootVersion.Load(),
		BootstrapReplayed: int(r.bootReplayed.Load()),
	}
}

// Close stops the tail loop and shuts the engine down.
func (r *Replica) Close() error {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	return r.engine().Close()
}

// serve.Backend — reads delegate to the embedded engine's controller,
// writes are refused.

func (r *Replica) Schedule(spec query.Spec) (<-chan controller.Result, error) {
	return r.engine().Controller().Schedule(spec)
}

func (r *Replica) Cancel(q query.ID) { r.engine().Cancel(q) }

func (r *Replica) RepartitionEpoch() int64 { return r.engine().RepartitionEpoch() }

func (r *Replica) GraphVersion() uint64 { return r.engine().GraphVersion() }

func (r *Replica) GraphView() graph.View { return r.engine().GraphView() }

func (r *Replica) Mutate(ops []delta.Op) (<-chan controller.MutationResult, error) {
	return nil, ErrReadOnly
}

func (r *Replica) Health() controller.Health { return r.engine().Health() }

func (r *Replica) RecoveryStats() recovery.Stats { return r.engine().RecoveryStats() }

func (r *Replica) ForceSnapshot() (snapshot.Result, error) {
	return snapshot.Result{}, ErrReadOnly
}

func (r *Replica) SnapshotStats() snapshot.Stats { return r.engine().SnapshotStats() }

func (r *Replica) WALStats() wal.Stats { return r.engine().WALStats() }

func (r *Replica) MVCCStats() controller.MVCCStats { return r.engine().MVCCStats() }
