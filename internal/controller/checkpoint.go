package controller

import (
	"fmt"
	"time"

	"qgraph/internal/faultpoint"
	"qgraph/internal/obs/health"
	"qgraph/internal/snapshot"
)

// This file is the controller side of checkpointing (internal/snapshot):
// folding the committed graph view into a versioned, immutable snapshot
// and truncating the committed-op log (and the durable WAL) to the tail
// the checkpoint does not cover.
//
// Consistency comes for free from the commit protocol: the committed view
// only ever changes inside the global STOP/START barrier, so any committed
// version is superstep-consistent — no query ever observed a state between
// two versions. And because delta.View is immutable (every commit builds a
// new view), pinning a version is one pointer copy: the commit barrier's
// only checkpoint work. The O(V+E) materialization and the durable write
// run on a background cutter goroutine, off the barrier, and the result
// flows back through cutCh so truncation still happens on the event loop
// where the logs live.
//
// Truncation safety: the logs are only dropped up to the *durable* floor
// the store reports — with a disk-backed store, a failed persist keeps the
// floor at the previous on-disk checkpoint, so a process restart can never
// be promised a replay base that does not exist. The WAL is truncated to
// the same floor, and only after the snapshot is durably in place: a crash
// between persist and truncation leaves extra (idempotently replayable)
// WAL records, never a gap.

// cutDone is the background cutter's report back to the event loop.
type cutDone struct {
	res     snapshot.Result
	floor   uint64
	aborted bool
}

// maybeCheckpoint pins a checkpoint cut when the policy says the log grew
// (or aged) enough. Called after every applied commit, while the global
// barrier still holds — which is why it only pins and never materializes.
func (c *Controller) maybeCheckpoint(now time.Time) {
	if !c.cfg.SnapshotPolicy.Enabled() {
		return
	}
	if !c.cfg.SnapshotPolicy.Due(c.snapOps, c.snapBytes, now.Sub(c.lastSnapAt)) {
		return
	}
	if c.cutInFlight {
		// One cut at a time; remember that the policy re-fired so the
		// follow-up starts as soon as the cutter frees up.
		c.cutAgain = true
		return
	}
	c.startCut(now)
}

// requestCheckpoint is the manual trigger (POST /admin/snapshot): the
// reply is delivered once the requested cut — and its truncation —
// completed. A version that is already checkpointed replies immediately
// with Cut=false.
func (c *Controller) requestCheckpoint(ch chan snapshot.Result) {
	if c.cutInFlight {
		// The running cut pinned an older version; queue this caller for
		// the follow-up cut of the current one.
		c.cutAgain = true
		c.nextCutWaiters = append(c.nextCutWaiters, ch)
		return
	}
	v := c.graphVersion.Load()
	if v == c.lastSnapVersion {
		ch <- snapshot.Result{Version: v, Vertices: c.view.NumVertices(), Edges: c.view.NumEdges()}
		return
	}
	c.cutWaiters = append(c.cutWaiters, ch)
	c.startCut(c.cfg.Clock())
}

// startCut pins the immutable committed view — the only checkpoint work
// the event loop (and thus the commit barrier) ever pays — and folds it
// on a background goroutine. The policy accounting resets at the pin;
// onCutDone restores it if the cut aborts.
func (c *Controller) startCut(now time.Time) {
	v := c.graphVersion.Load()
	view := c.view
	c.cutInFlight = true
	c.cutPrevVersion, c.cutPrevAt = c.lastSnapVersion, c.lastSnapAt
	c.cutPinnedOps, c.cutPinnedBytes = c.snapOps, c.snapBytes
	c.snapOps, c.snapBytes = 0, 0
	c.lastSnapAt = now
	c.lastSnapVersion = v
	store := c.cfg.Snapshots
	cutCh := c.cutCh
	go func() {
		started := time.Now()
		res := snapshot.Result{
			Version:  v,
			Vertices: view.NumVertices(),
			Edges:    view.NumEdges(),
		}
		g := view.Materialize()
		if faultpoint.Hit(faultpoint.SnapshotCut) {
			// Simulated crash mid-cut: the materialized graph never reached
			// the store, so the logs keep every batch — recovery replays the
			// longer tail over the previous checkpoint, correctness unharmed.
			cutCh <- cutDone{res: res, aborted: true}
			return
		}
		floor, perr := store.Add(&snapshot.Snapshot{Version: v, Graph: g})
		res.Cut = true
		res.Persisted = perr == nil && store.Dir() != ""
		c.lastCutNanos.Store(int64(time.Since(started)))
		cutCh <- cutDone{res: res, floor: floor}
	}()
}

// onCutDone lands a finished background cut on the event loop: truncate
// the delta log and the WAL to the durable floor, answer the waiters, and
// start the queued follow-up cut if triggers (or manual requests) arrived
// while the cutter ran.
func (c *Controller) onCutDone(d cutDone) {
	c.cutInFlight = false
	res := d.res
	if d.aborted {
		// Nothing was cut; restore the policy accounting (including the
		// ops that committed while the cutter ran) so the next trigger
		// fires as if this cut never started.
		c.snapOps += c.cutPinnedOps
		c.snapBytes += c.cutPinnedBytes
		c.lastSnapVersion = c.cutPrevVersion
		c.lastSnapAt = c.cutPrevAt
	} else {
		if dur := time.Duration(c.lastCutNanos.Load()); dur > 0 {
			end := time.Now()
			if co := c.obs; co != nil {
				co.snapCutSeconds.Observe(dur.Seconds())
			}
			c.lastCutUnixNS.Store(end.UnixNano())
			c.spanActiveQueries("snapshot/cut", end.Add(-dur), end,
				map[string]any{"version": res.Version, "vertices": res.Vertices, "edges": res.Edges})
			c.healthEvent(health.EventSnapshotCut, health.SevInfo, -1,
				fmt.Sprintf("snapshot cut at version %d (%d vertices, %d edges) in %s",
					res.Version, res.Vertices, res.Edges, dur.Round(time.Millisecond)),
				map[string]any{
					"version": res.Version, "vertices": res.Vertices,
					"edges": res.Edges, "duration_ms": float64(dur) / float64(time.Millisecond),
				})
		}
		floor := d.floor
		if c.cfg.privateSnapshots {
			// A store nobody else shares (no Config.Snapshots was wired in):
			// rejoining workers could never resolve a checkpoint from it, so
			// the log must keep reaching back to the base every replica has.
			floor = c.deltaLog.Base()
		}
		dropped := c.deltaLog.TruncateTo(floor)
		c.cfg.Snapshots.AccountTruncated(dropped)
		if c.cfg.WAL != nil && c.cfg.Snapshots.Dir() != "" {
			// Safe order: with a dir-backed store the floor only advances
			// on a successful persist, so the snapshot at >= floor is
			// durable and the WAL prefix it covers is no longer needed for
			// restart recovery. A memory-only store's floor dies with the
			// process — its snapshots must never truncate the durable log,
			// or a restart would face a gap below the retained base.
			c.cfg.WAL.TruncateTo(floor)
		}
		c.updateLogMirrors()
		res.TruncatedOps = int64(dropped)
		if res.Cut && !res.Persisted && c.cfg.Snapshots.Dir() != "" {
			// The fold succeeded but the durable write did not: let the
			// same version be cut again (an operator retrying
			// POST /admin/snapshot after fixing the disk must not get a
			// Cut=false no-op while nothing is durable at this version).
			c.lastSnapVersion = c.cutPrevVersion
		}
	}
	for _, ch := range c.cutWaiters {
		ch <- res
	}
	c.cutWaiters = nil
	if !c.cutAgain && len(c.nextCutWaiters) == 0 {
		return
	}
	c.cutAgain = false
	waiters := c.nextCutWaiters
	c.nextCutWaiters = nil
	v := c.graphVersion.Load()
	if v == c.lastSnapVersion {
		noop := snapshot.Result{Version: v, Vertices: c.view.NumVertices(), Edges: c.view.NumEdges()}
		for _, ch := range waiters {
			ch <- noop
		}
		return
	}
	c.cutWaiters = waiters
	c.startCut(c.cfg.Clock())
}

// updateLogMirrors publishes the log's size for concurrent /stats readers.
func (c *Controller) updateLogMirrors() {
	c.logLen.Store(int64(c.deltaLog.Len()))
	c.logOps.Store(int64(c.deltaLog.Ops()))
	c.logBytes.Store(c.deltaLog.Bytes())
}
