package controller

import (
	"time"

	"qgraph/internal/faultpoint"
	"qgraph/internal/snapshot"
)

// This file is the controller side of checkpointing (internal/snapshot):
// folding the committed graph view into a versioned, immutable snapshot
// and truncating the committed-op log to the tail the checkpoint does not
// cover.
//
// Consistency comes for free from the commit protocol: the committed view
// only ever changes inside the global STOP/START barrier, so any committed
// version is superstep-consistent — no query ever observed a state between
// two versions. Cuts therefore need no extra barrier of their own; they
// run on the event loop against c.view, either right after a commit
// applied (policy-driven, in applyCommit's footsteps while the barrier
// still holds) or on demand (ForceSnapshot).
//
// Truncation safety: the log is only dropped up to the *durable* floor the
// store reports — with a disk-backed store, a failed persist keeps the
// floor at the previous on-disk checkpoint, so a process restart can never
// be promised a replay base that does not exist. The in-memory snapshot
// still serves rejoining workers of the current process.

// maybeCheckpoint cuts a checkpoint when the policy says the log grew (or
// aged) enough. Called after every applied commit, while the global
// barrier still holds.
func (c *Controller) maybeCheckpoint(now time.Time) {
	if !c.cfg.SnapshotPolicy.Enabled() {
		return
	}
	if !c.cfg.SnapshotPolicy.Due(c.snapOps, c.snapBytes, now.Sub(c.lastSnapAt)) {
		return
	}
	c.cutCheckpoint(now)
}

// cutCheckpoint folds the committed view into a snapshot at the current
// graph version and truncates the log to the durable floor. A version that
// is already checkpointed is a no-op (Cut=false).
func (c *Controller) cutCheckpoint(now time.Time) snapshot.Result {
	v := c.graphVersion.Load()
	res := snapshot.Result{
		Version:  v,
		Vertices: c.view.NumVertices(),
		Edges:    c.view.NumEdges(),
	}
	if v == c.lastSnapVersion {
		return res
	}
	g := c.view.Materialize()
	if faultpoint.Hit(faultpoint.SnapshotCut) {
		// Simulated crash mid-cut: the materialized graph never reached the
		// store, so the log keeps every batch — recovery replays the longer
		// tail over the previous checkpoint, correctness unharmed.
		return res
	}
	floor, perr := c.cfg.Snapshots.Add(&snapshot.Snapshot{Version: v, Graph: g})
	if c.cfg.privateSnapshots {
		// A store nobody else shares (no Config.Snapshots was wired in):
		// rejoining workers could never resolve a checkpoint from it, so
		// the log must keep reaching back to the base every replica has.
		floor = c.deltaLog.Base()
	}
	dropped := c.deltaLog.TruncateTo(floor)
	c.cfg.Snapshots.AccountTruncated(dropped)
	c.updateLogMirrors()
	c.snapOps, c.snapBytes = 0, 0
	c.lastSnapAt = now
	c.lastSnapVersion = v
	res.Cut = true
	res.Persisted = perr == nil && c.cfg.Snapshots.Dir() != ""
	res.TruncatedOps = int64(dropped)
	return res
}

// updateLogMirrors publishes the log's size for concurrent /stats readers.
func (c *Controller) updateLogMirrors() {
	c.logLen.Store(int64(c.deltaLog.Len()))
	c.logOps.Store(int64(c.deltaLog.Ops()))
	c.logBytes.Store(c.deltaLog.Bytes())
}
