package controller

import (
	"testing"
	"time"

	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
	"qgraph/internal/transport"
	"qgraph/internal/worker"
)

// TestWorkerDeathDetection runs a real worker 0 beside a silent worker 1:
// the controller must detect the dead peer via missed heartbeats, fail the
// wedged query with FinishWorkerLost instead of hanging forever, report
// degraded health, and reject subsequent queries and mutations.
func TestWorkerDeathDetection(t *testing.T) {
	g := lineGraph(8)
	net := transport.NewChanNetwork(3, transport.Latency{})
	defer net.Close()
	owner := make(partition.Assignment, g.NumVertices())
	for v := range owner {
		owner[v] = partition.WorkerID(v % 2)
	}
	ctrl, err := New(Config{
		K: 2, Graph: g, Owner: owner,
		CheckEvery:       2 * time.Millisecond,
		HeartbeatEvery:   10 * time.Millisecond,
		HeartbeatTimeout: 40 * time.Millisecond,
	}, net.Conn(protocol.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	go ctrl.Run()
	defer ctrl.Stop()

	// Worker 0 is real and keeps answering pings; worker 1 never runs.
	w0, err := worker.New(worker.Config{ID: 0, K: 2, Graph: g, Owner: owner},
		net.Conn(protocol.WorkerNode(0)))
	if err != nil {
		t.Fatal(err)
	}
	go w0.Run()

	// A BFS flood from vertex 0 crosses into worker 1's partition and
	// wedges there: without liveness detection this would hang forever.
	ch, err := ctrl.Schedule(query.Spec{ID: 1, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-ch:
		if res.Reason != protocol.FinishWorkerLost {
			t.Fatalf("result reason %v, want worker_lost", res.Reason)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dead worker not detected")
	}

	h := ctrl.Health()
	if !h.Degraded || len(h.DeadWorkers) != 1 || h.DeadWorkers[0] != 1 {
		t.Fatalf("health = %+v, want degraded with dead worker 1", h)
	}

	// New queries fail fast instead of wedging.
	ch2, err := ctrl.Schedule(query.Spec{ID: 2, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-ch2:
		if res.Reason != protocol.FinishWorkerLost {
			t.Fatalf("post-death schedule reason %v, want worker_lost", res.Reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-death schedule not answered")
	}

	// Mutations fail fast too: their commit barrier needs every worker.
	mch, err := ctrl.Mutate([]delta.Op{{Kind: delta.OpAddVertex}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-mch:
		if res.Err == nil {
			t.Fatal("mutation on degraded controller succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mutation on degraded controller not answered")
	}
}

// TestDeathDuringBarrierFailsSchedulesFast: a worker dying while a commit
// barrier is in flight wedges the barrier forever (its acks never come);
// queries scheduled afterwards must be rejected immediately with
// worker_lost, not deferred into the barrier that never resumes.
func TestDeathDuringBarrierFailsSchedulesFast(t *testing.T) {
	g := lineGraph(8)
	net := transport.NewChanNetwork(3, transport.Latency{})
	defer net.Close()
	owner := make(partition.Assignment, g.NumVertices())
	for v := range owner {
		owner[v] = partition.WorkerID(v % 2)
	}
	ctrl, err := New(Config{
		K: 2, Graph: g, Owner: owner,
		CheckEvery:       2 * time.Millisecond,
		CommitEvery:      time.Millisecond,
		MaxBatchOps:      1,
		HeartbeatEvery:   10 * time.Millisecond,
		HeartbeatTimeout: 40 * time.Millisecond,
	}, net.Conn(protocol.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	go ctrl.Run()
	defer ctrl.Stop()
	w0, err := worker.New(worker.Config{ID: 0, K: 2, Graph: g, Owner: owner},
		net.Conn(protocol.WorkerNode(0)))
	if err != nil {
		t.Fatal(err)
	}
	go w0.Run()
	// Worker 1 never runs: the commit barrier wedges awaiting its acks.

	mch, err := ctrl.Mutate([]delta.Op{{Kind: delta.OpAddEdge, From: 0, To: 7, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-mch:
		if res.Err == nil {
			t.Fatalf("commit without worker 1 succeeded: %+v", res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("wedged commit never failed")
	}

	// The barrier is still wedged, but schedules must fail fast.
	ch, err := ctrl.Schedule(query.Spec{ID: 1, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-ch:
		if res.Reason != protocol.FinishWorkerLost {
			t.Fatalf("schedule during wedged barrier: reason %v, want worker_lost", res.Reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("schedule during wedged barrier hung")
	}
}

// TestHealthyEngineStaysHealthy: with live workers answering heartbeats,
// aggressive probe settings must not produce false positives.
func TestHealthyEngineStaysHealthy(t *testing.T) {
	g := lineGraph(8)
	net := transport.NewChanNetwork(3, transport.Latency{})
	defer net.Close()
	owner := make(partition.Assignment, g.NumVertices())
	for v := range owner {
		owner[v] = partition.WorkerID(v % 2)
	}
	ctrl, err := New(Config{
		K: 2, Graph: g, Owner: owner,
		CheckEvery:       time.Millisecond,
		HeartbeatEvery:   5 * time.Millisecond,
		HeartbeatTimeout: 20 * time.Millisecond,
	}, net.Conn(protocol.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	go ctrl.Run()
	defer ctrl.Stop()
	for wid := partition.WorkerID(0); wid < 2; wid++ {
		wk, err := worker.New(worker.Config{ID: wid, K: 2, Graph: g, Owner: owner},
			net.Conn(protocol.WorkerNode(wid)))
		if err != nil {
			t.Fatal(err)
		}
		go wk.Run()
	}
	// Let many probe rounds elapse while running a query.
	ch, err := ctrl.Schedule(query.Spec{ID: 1, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Reason != protocol.FinishConverged {
		t.Fatalf("query reason %v, want converged", res.Reason)
	}
	time.Sleep(100 * time.Millisecond)
	if h := ctrl.Health(); h.Degraded {
		t.Fatalf("healthy workers declared dead: %+v", h)
	}
}
