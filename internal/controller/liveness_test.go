package controller

import (
	"testing"
	"time"

	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
	"qgraph/internal/transport"
	"qgraph/internal/worker"
)

// TestWorkerDeathRecovery runs a real worker 0 beside a silent worker 1:
// the controller must detect the dead peer via missed heartbeats, hand its
// partition to the survivor, and complete the wedged query — the caller
// sees a converged result, never worker_lost. Afterwards the engine is
// healthy again (the lost worker stays listed) and both queries and
// mutations keep working on the shrunken live set.
func TestWorkerDeathRecovery(t *testing.T) {
	g := lineGraph(8)
	net := transport.NewChanNetwork(3, transport.Latency{})
	defer net.Close()
	owner := make(partition.Assignment, g.NumVertices())
	for v := range owner {
		owner[v] = partition.WorkerID(v % 2)
	}
	ctrl, err := New(Config{
		K: 2, Graph: g, Owner: owner,
		CheckEvery:       2 * time.Millisecond,
		CommitEvery:      time.Millisecond,
		MaxBatchOps:      1,
		HeartbeatEvery:   10 * time.Millisecond,
		HeartbeatTimeout: 40 * time.Millisecond,
	}, net.Conn(protocol.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	go ctrl.Run()
	defer ctrl.Stop()

	// Worker 0 is real and keeps answering pings; worker 1 never runs.
	w0, err := worker.New(worker.Config{ID: 0, K: 2, Graph: g, Owner: owner},
		net.Conn(protocol.WorkerNode(0)))
	if err != nil {
		t.Fatal(err)
	}
	go w0.Run()

	// A BFS flood from vertex 0 crosses into worker 1's partition and
	// wedges there: recovery must re-execute it on the survivor.
	ch, err := ctrl.Schedule(query.Spec{ID: 1, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-ch:
		if res.Reason != protocol.FinishConverged {
			t.Fatalf("result reason %v, want converged after recovery", res.Reason)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query not recovered")
	}

	h := ctrl.Health()
	if h.Degraded || h.Recovering {
		t.Fatalf("health = %+v, want recovered (not degraded)", h)
	}
	if len(h.DeadWorkers) != 1 || h.DeadWorkers[0] != 1 {
		t.Fatalf("health = %+v, want lost worker 1 listed", h)
	}
	if st := ctrl.RecoveryStats(); st.Recoveries < 1 || st.Handoffs < 1 {
		t.Fatalf("recovery stats %+v, want at least one handoff episode", st)
	}

	// New queries run on the survivor.
	ch2, err := ctrl.Schedule(query.Spec{ID: 2, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-ch2:
		if res.Reason != protocol.FinishConverged {
			t.Fatalf("post-recovery schedule reason %v, want converged", res.Reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-recovery schedule not answered")
	}

	// Mutations commit against the shrunken live set.
	mch, err := ctrl.Mutate([]delta.Op{{Kind: delta.OpAddVertex}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-mch:
		if res.Err != nil {
			t.Fatalf("post-recovery mutation failed: %v", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-recovery mutation not answered")
	}
}

// TestDeathDuringCommitRetries: a worker dying while a commit barrier is
// in flight used to leave the staged batch neither committed nor rejected.
// Recovery must make the outcome deterministic: the batch is rolled back
// on any replica that applied it and re-committed on the survivors, and
// the caller gets a successful MutationResult.
func TestDeathDuringCommitRetries(t *testing.T) {
	g := lineGraph(8)
	net := transport.NewChanNetwork(3, transport.Latency{})
	defer net.Close()
	owner := make(partition.Assignment, g.NumVertices())
	for v := range owner {
		owner[v] = partition.WorkerID(v % 2)
	}
	ctrl, err := New(Config{
		K: 2, Graph: g, Owner: owner,
		CheckEvery:       2 * time.Millisecond,
		CommitEvery:      time.Millisecond,
		MaxBatchOps:      1,
		HeartbeatEvery:   10 * time.Millisecond,
		HeartbeatTimeout: 40 * time.Millisecond,
	}, net.Conn(protocol.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	go ctrl.Run()
	defer ctrl.Stop()
	w0, err := worker.New(worker.Config{ID: 0, K: 2, Graph: g, Owner: owner},
		net.Conn(protocol.WorkerNode(0)))
	if err != nil {
		t.Fatal(err)
	}
	go w0.Run()
	// Worker 1 never runs: the commit barrier wedges awaiting its acks
	// until liveness detection triggers the recovery retry.

	mch, err := ctrl.Mutate([]delta.Op{{Kind: delta.OpAddEdge, From: 0, To: 7, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-mch:
		if res.Err != nil {
			t.Fatalf("commit not retried after recovery: %v", res.Err)
		}
		if res.Version != 1 || res.Applied != 1 {
			t.Fatalf("retried commit = %+v, want version 1 applied 1", res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("wedged commit never resolved")
	}
	if v := ctrl.GraphVersion(); v != 1 {
		t.Fatalf("graph version %d after retried commit, want 1", v)
	}

	// Queries see the committed mutation.
	ch, err := ctrl.Schedule(query.Spec{ID: 1, Kind: query.KindSSSP, Source: 0, Target: 7})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-ch:
		if res.Reason != protocol.FinishConverged && res.Reason != protocol.FinishEarly {
			t.Fatalf("post-commit query finished %v", res.Reason)
		}
		if res.Value != 1 {
			t.Fatalf("post-commit distance %g, want 1 (shortcut edge)", res.Value)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-commit query hung")
	}
}

// TestAllWorkersDeadIsTerminal: losing every worker is the one
// unrecoverable state — queries and mutations fail fast with worker_lost
// and health reports degraded.
func TestAllWorkersDeadIsTerminal(t *testing.T) {
	g := lineGraph(8)
	net := transport.NewChanNetwork(2, transport.Latency{})
	defer net.Close()
	owner := make(partition.Assignment, g.NumVertices())
	ctrl, err := New(Config{
		K: 1, Graph: g, Owner: owner,
		CheckEvery:       2 * time.Millisecond,
		HeartbeatEvery:   10 * time.Millisecond,
		HeartbeatTimeout: 40 * time.Millisecond,
	}, net.Conn(protocol.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	go ctrl.Run()
	defer ctrl.Stop()
	// The only worker never runs.

	ch, err := ctrl.Schedule(query.Spec{ID: 1, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-ch:
		if res.Reason != protocol.FinishWorkerLost {
			t.Fatalf("result reason %v, want worker_lost", res.Reason)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("terminal death not detected")
	}
	h := ctrl.Health()
	if !h.Degraded || len(h.DeadWorkers) != 1 {
		t.Fatalf("health = %+v, want terminal degraded", h)
	}
	mch, err := ctrl.Mutate([]delta.Op{{Kind: delta.OpAddVertex}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-mch:
		if res.Err == nil {
			t.Fatal("mutation on terminal controller succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mutation on terminal controller not answered")
	}
}

// TestHealthyEngineStaysHealthy: with live workers answering heartbeats,
// aggressive probe settings must not produce false positives.
func TestHealthyEngineStaysHealthy(t *testing.T) {
	g := lineGraph(8)
	net := transport.NewChanNetwork(3, transport.Latency{})
	defer net.Close()
	owner := make(partition.Assignment, g.NumVertices())
	for v := range owner {
		owner[v] = partition.WorkerID(v % 2)
	}
	ctrl, err := New(Config{
		K: 2, Graph: g, Owner: owner,
		CheckEvery:       time.Millisecond,
		HeartbeatEvery:   5 * time.Millisecond,
		HeartbeatTimeout: 20 * time.Millisecond,
	}, net.Conn(protocol.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	go ctrl.Run()
	defer ctrl.Stop()
	for wid := partition.WorkerID(0); wid < 2; wid++ {
		wk, err := worker.New(worker.Config{ID: wid, K: 2, Graph: g, Owner: owner},
			net.Conn(protocol.WorkerNode(wid)))
		if err != nil {
			t.Fatal(err)
		}
		go wk.Run()
	}
	// Let many probe rounds elapse while running a query.
	ch, err := ctrl.Schedule(query.Spec{ID: 1, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Reason != protocol.FinishConverged {
		t.Fatalf("query reason %v, want converged", res.Reason)
	}
	time.Sleep(100 * time.Millisecond)
	if h := ctrl.Health(); h.Degraded || h.Recovering || len(h.DeadWorkers) > 0 {
		t.Fatalf("healthy workers declared dead: %+v", h)
	}
}
