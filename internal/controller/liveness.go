package controller

import (
	"sort"
	"time"

	"qgraph/internal/partition"
	"qgraph/internal/protocol"
)

// Worker liveness detection. The controller pings every worker on a fixed
// cadence; workers drain their inbox between supersteps, so only a dead
// or wedged worker misses consecutive pings. A worker past the miss limit
// is declared dead, fenced, and handed to recovery (recover.go): its
// partitions are reassigned, affected queries re-execute from superstep
// 0, and health passes through recovering back to healthy — callers see
// latency, not failures. Only the loss of every worker is terminal.

// heartbeat runs on the controller tick: send the next probe round and
// account the previous one.
func (c *Controller) heartbeat(now time.Time) {
	if c.cfg.HeartbeatEvery < 0 || c.terminal {
		return
	}
	if c.lastPingAt.IsZero() {
		c.lastPingAt = now
		return
	}
	if now.Sub(c.lastPingAt) < c.cfg.HeartbeatEvery {
		return
	}
	c.lastPingAt = now
	c.pingSeq++
	// Misses needed before a worker is dead: the timeout expressed in
	// probe rounds, at least 2 so one scheduling hiccup never kills.
	limit := int(c.cfg.HeartbeatTimeout / c.cfg.HeartbeatEvery)
	if limit < 2 {
		limit = 2
	}
	for w := 0; w < c.cfg.K; w++ {
		wid := partition.WorkerID(w)
		if c.deadWorkers[wid] {
			continue
		}
		if c.missedPings[w] >= limit {
			c.onWorkerDead(wid)
			continue
		}
		c.missedPings[w]++
		c.conn.Send(protocol.WorkerNode(wid), &protocol.Ping{Seq: c.pingSeq})
	}
}

// onPong records a worker's liveness answer. An answer to the current
// probe round also yields the worker's heartbeat round-trip time: the
// probe round's send time is lastPingAt, so now-lastPingAt bounds the
// Ping→Pong path through the worker's inbox — the early-warning signal
// (a worker drowning in queued messages shows a growing RTT well before
// it misses enough pings to be declared dead).
func (c *Controller) onPong(m *protocol.Pong) {
	if int(m.W) < len(c.missedPings) && !c.deadWorkers[m.W] {
		c.missedPings[m.W] = 0
		if m.Seq == c.pingSeq {
			c.obs.observeRTT(int(m.W), c.cfg.Clock().Sub(c.lastPingAt))
		}
	}
}

// publishHealth snapshots the liveness state for concurrent readers.
func (c *Controller) publishHealth() {
	h := &Health{Degraded: c.terminal, Recovering: c.recovering}
	for w := range c.deadWorkers {
		h.DeadWorkers = append(h.DeadWorkers, int(w))
	}
	sort.Ints(h.DeadWorkers)
	c.health.Store(h)
}
