package controller

import (
	"fmt"
	"sort"
	"time"

	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
)

// Worker liveness detection (ROADMAP open item, scoped to detection). The
// controller only ever learned about workers through protocol responses,
// so a crashed worker wedged its in-flight queries silently. Heartbeats
// close that gap: the controller pings every worker on a fixed cadence;
// workers drain their inbox between supersteps, so only a dead or wedged
// worker misses consecutive pings. A worker past the miss limit is
// declared dead: every active and deferred query fails immediately with
// FinishWorkerLost (any query can involve any worker after scope moves,
// and barriers cannot complete without the full set), staged mutations
// fail, subsequent schedules are rejected, and Health reports degraded so
// the serving layer's /healthz turns red instead of serving a wedged
// engine behind a green check.

// heartbeat runs on the controller tick: send the next probe round and
// account the previous one.
func (c *Controller) heartbeat(now time.Time) {
	if c.cfg.HeartbeatEvery < 0 {
		return
	}
	if c.lastPingAt.IsZero() {
		c.lastPingAt = now
		return
	}
	if now.Sub(c.lastPingAt) < c.cfg.HeartbeatEvery {
		return
	}
	c.lastPingAt = now
	c.pingSeq++
	// Misses needed before a worker is dead: the timeout expressed in
	// probe rounds, at least 2 so one scheduling hiccup never kills.
	limit := int(c.cfg.HeartbeatTimeout / c.cfg.HeartbeatEvery)
	if limit < 2 {
		limit = 2
	}
	for w := 0; w < c.cfg.K; w++ {
		wid := partition.WorkerID(w)
		if c.deadWorkers[wid] {
			continue
		}
		if c.missedPings[w] >= limit {
			c.onWorkerDead(wid)
			continue
		}
		c.missedPings[w]++
		c.conn.Send(protocol.WorkerNode(wid), &protocol.Ping{Seq: c.pingSeq})
	}
}

// onPong records a worker's liveness answer.
func (c *Controller) onPong(m *protocol.Pong) {
	if int(m.W) < len(c.missedPings) {
		c.missedPings[m.W] = 0
	}
}

// onWorkerDead fails everything the dead worker blocks and publishes the
// degraded health state.
func (c *Controller) onWorkerDead(w partition.WorkerID) {
	if c.deadWorkers[w] {
		return
	}
	c.deadWorkers[w] = true
	c.publishHealth()

	now := c.cfg.Clock()
	for q, ctl := range c.queries {
		ctl.ch <- Result{
			Q: q, Value: ctl.bestGoal, Reason: protocol.FinishWorkerLost,
			Supersteps: ctl.stepsDone, LocalIters: ctl.localSteps,
			Latency: now.Sub(ctl.started),
		}
		delete(c.queries, q)
		c.broadcast(&protocol.QueryFinish{Q: q, Reason: protocol.FinishWorkerLost})
	}
	for _, req := range c.deferred {
		req.ch <- Result{Q: req.spec.ID, Value: query.NoResult, Reason: protocol.FinishWorkerLost}
	}
	c.deferred = nil
	// A degraded controller is terminal (detection only — no recovery): no
	// barrier missing the dead worker's acks can ever complete, so staged
	// mutations are failed outright, and an in-flight commit — already
	// broadcast, possibly applied on surviving replicas — is reported with
	// its uncertainty instead of a flat failure.
	c.failMutations(
		fmt.Errorf("controller: degraded (worker %d lost)", w),
		fmt.Errorf("controller: degraded (worker %d lost) during commit; batch state unknown on surviving replicas", w),
	)
}

// publishHealth snapshots the dead-worker set for concurrent readers.
func (c *Controller) publishHealth() {
	h := &Health{Degraded: len(c.deadWorkers) > 0}
	for w := range c.deadWorkers {
		h.DeadWorkers = append(h.DeadWorkers, int(w))
	}
	sort.Ints(h.DeadWorkers)
	c.health.Store(h)
}
