package controller

import (
	"time"

	"qgraph/internal/obs/health"
)

// watchStalls feeds the deadline watchdog once per tick: how long the
// current barrier phase has been open (run counts as never-stalled —
// queries progress independently there) and the age of the oldest
// outstanding superstep release. Both run on the event loop, so the
// ages are exact with respect to the state they describe.
func (c *Controller) watchStalls(now time.Time) {
	mon := c.cfg.Monitor
	if mon == nil {
		return
	}
	var phaseAge time.Duration
	if c.phase != phaseRun && c.phase != phaseRecover {
		// Recovery has its own watchdog (the hello window) and its own
		// lifecycle events; flagging it as a stalled barrier would page
		// twice for one fault.
		phaseAge = now.Sub(c.phaseStart)
	}
	var oldest time.Duration
	for _, ctl := range c.queries {
		if ctl.outstanding && !ctl.releasedAt.IsZero() {
			if d := now.Sub(ctl.releasedAt); d > oldest {
				oldest = d
			}
		}
	}
	mon.CheckStall(phaseName(c.phase), phaseAge, oldest)
}

// healthEvent forwards a lifecycle event to the monitor (nil-safe).
func (c *Controller) healthEvent(typ string, sev health.Severity, worker int, msg string, fields map[string]any) {
	c.cfg.Monitor.Record(typ, sev, worker, msg, fields)
}
