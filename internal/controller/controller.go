// Package controller implements the Q-Graph controller layer (Fig. 2 of
// the paper): high-level, query-centric graph management with global
// knowledge. The controller schedules queries onto the workers, coordinates
// the hybrid barrier synchronization (per-query limited/local barriers plus
// the global STOP/START barrier, Sec. 3.3), maintains the monitoring window
// of query statistics (Sec. 3.4), and adapts the partitioning at runtime by
// running Q-cut asynchronously and executing its move directives under a
// global barrier.
//
// The controller is a single event loop; all state is confined to the Run
// goroutine.
package controller

import (
	"fmt"
	"sync/atomic"
	"time"

	"qgraph/internal/graph"
	"qgraph/internal/metrics"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/qcut"
	"qgraph/internal/query"
	"qgraph/internal/transport"
)

// SyncMode selects the barrier synchronization strategy.
type SyncMode int

// The three synchronization strategies of the evaluation: the paper's
// hybrid barrier, the limited-only ablation, and the traditional BSP
// baseline of Fig. 6d where every query synchronizes across all workers
// every iteration.
const (
	SyncHybrid SyncMode = iota
	SyncLimited
	SyncGlobal
)

// String returns the mode name.
func (m SyncMode) String() string {
	switch m {
	case SyncHybrid:
		return "hybrid"
	case SyncLimited:
		return "limited"
	case SyncGlobal:
		return "global"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterises the controller.
type Config struct {
	K     int
	Graph *graph.Graph
	// Owner is the initial vertex assignment (the controller keeps its own
	// authoritative copy and evolves it through moves).
	Owner partition.Assignment
	Mode  SyncMode

	// Adapt enables the MAPE adaptivity loop (Q-cut at runtime).
	Adapt bool
	// Phi is the locality threshold Φ: average query locality below it
	// triggers repartitioning (paper: 0.7).
	Phi float64
	// Mu is the monitoring window μ: how long finished-query statistics
	// stay in the global view (paper: 240 s).
	Mu time.Duration
	// MaxWindowQueries caps the queries Q-cut sees (paper: 128).
	MaxWindowQueries int
	// MinWindowQueries is the minimum finished queries before the trigger
	// fires (avoids repartitioning on no evidence).
	MinWindowQueries int
	// Delta is the workload balance slack δ (paper: 0.25).
	Delta float64
	// QcutBudget bounds each Q-cut run (paper: 2 s).
	QcutBudget time.Duration
	// CheckEvery is the adaptivity check interval.
	CheckEvery time.Duration
	// Cooldown is the minimum time between repartitionings.
	Cooldown time.Duration
	// ReplicateQueries enables the future-work (ii) extension: every query
	// is pinned to the worker owning its source vertex, eliminating its
	// query-cut via replication-style local execution.
	ReplicateQueries bool
	// NoClustering / NoPerturbation are Q-cut ablation switches.
	NoClustering   bool
	NoPerturbation bool
	// Seed feeds Q-cut's randomness.
	Seed uint64

	// Recorder receives metrics; nil disables recording.
	Recorder *metrics.Recorder
	// Clock abstracts time for tests; nil means time.Now.
	Clock func() time.Time
}

func (c *Config) fill() error {
	if c.K < 1 || c.K > partition.MaxWorkers {
		return fmt.Errorf("controller: bad worker count %d", c.K)
	}
	if c.Graph == nil {
		return fmt.Errorf("controller: nil graph")
	}
	if len(c.Owner) != c.Graph.NumVertices() {
		return fmt.Errorf("controller: ownership covers %d of %d vertices", len(c.Owner), c.Graph.NumVertices())
	}
	if c.Phi == 0 {
		c.Phi = 0.7
	}
	if c.Mu <= 0 {
		c.Mu = 240 * time.Second
	}
	if c.MaxWindowQueries <= 0 {
		c.MaxWindowQueries = 128
	}
	if c.MinWindowQueries <= 0 {
		c.MinWindowQueries = 8
	}
	if c.Delta <= 0 {
		c.Delta = 0.25
	}
	if c.QcutBudget <= 0 {
		c.QcutBudget = 2 * time.Second
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 250 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return nil
}

// Result is the outcome of one query delivered to its scheduler.
type Result struct {
	Q          query.ID
	Value      float64 // best goal value (query.NoResult if none)
	Reason     protocol.FinishReason
	Supersteps int
	LocalIters int
	Touched    int // |GS(q)| — global scope size
	Workers    int // workers the query ever involved
	Latency    time.Duration
}

// qctl is the controller-side state of one active query.
type qctl struct {
	spec    query.Spec
	prog    query.Program
	started time.Time
	ch      chan<- Result

	step        int32 // last fully collected superstep (-1 before step 0)
	outstanding bool  // a release was issued; reports pending
	paused      bool  // wanted a release while a global barrier was active
	involved    map[partition.WorkerID]bool
	reports     map[partition.WorkerID]*protocol.BarrierSynch

	scopeSizes []int64 // latest |LS(q,w)| per worker
	everActive []bool  // workers that ever processed or held scope
	bestGoal   float64
	stepsDone  int
	localSteps int
	// cancelled marks a query whose caller abandoned it (Cancel) while a
	// global barrier was executing; it is honored at resume (cancels
	// outside the barrier phases finish the query eagerly instead).
	cancelled bool
}

type phase int

const (
	phaseRun phase = iota
	phaseQuiesce
	phaseStopping
	phaseDraining
	phaseMoving
	phaseScopeDrain
)

// scheduleReq is the internal request carrying a user's scheduleQuery call
// — or, with cancel set, a Cancel for the id in spec.ID. Both flow through
// one FIFO channel so a cancel issued after Schedule returned can never
// overtake its schedule in the event loop.
type scheduleReq struct {
	spec   query.Spec
	ch     chan<- Result
	cancel bool
}

// snapshotReq asks the controller for its current Q-cut input (used by the
// Fig. 6g experiment and for introspection).
type snapshotReq struct {
	ch chan qcut.Input
}

// Controller is the controller-layer event loop.
type Controller struct {
	cfg  Config
	conn transport.Conn

	owner     partition.Assignment
	vertCount []int64

	queries map[query.ID]*qctl
	window  []*windowEntry
	byQ     map[query.ID]*windowEntry
	inter   map[interKey]int64

	phase        phase
	epoch        int32
	stopAcks     map[partition.WorkerID][]uint64
	drainAcks    int
	pendingMoves []qcut.Move
	movesLeft    int
	ownDeltaV    []graph.VertexID
	ownDeltaW    []partition.WorkerID
	scopeExpect  [][]uint64 // cumulative ScopeData expectations [receiver][sender]
	deferred     []scheduleReq

	qcutRunning bool
	qcutCh      chan qcut.Result
	lastRepart  time.Time
	// Repartitions counts executed global barriers with moves.
	repartitions int
	// repartEpoch mirrors repartitions atomically so concurrent readers
	// (the serving layer's result cache) can observe partition changes
	// while Run is live.
	repartEpoch atomic.Int64
	// Trigger backoff: when repartitioning stops improving locality
	// (e.g. the workload inherently spans workers), the effective cooldown
	// doubles up to 16× so global barriers do not thrash the very queries
	// they are meant to help. Any improvement resets it.
	curCooldown  time.Duration
	trigLocality float64

	scheduleCh chan scheduleReq
	snapshotCh chan snapshotReq
	stopCh     chan struct{}
	doneCh     chan struct{}
	runErr     error
}

type interKey struct {
	w      partition.WorkerID
	q1, q2 query.ID
}

// windowEntry is one query's statistics in the monitoring window.
type windowEntry struct {
	q        query.ID
	at       time.Time // completion (or last update) time
	sizes    []int64   // |LS(q,w)| per worker
	locality float64
}

// New creates a controller bound to conn.
func New(cfg Config, conn transport.Conn) (*Controller, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:        cfg,
		conn:       conn,
		owner:      cfg.Owner.Clone(),
		vertCount:  make([]int64, cfg.K),
		queries:    make(map[query.ID]*qctl),
		byQ:        make(map[query.ID]*windowEntry),
		inter:      make(map[interKey]int64),
		qcutCh:     make(chan qcut.Result, 1),
		scheduleCh: make(chan scheduleReq, 64),
		snapshotCh: make(chan snapshotReq),
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
		scopeExpect: func() [][]uint64 {
			se := make([][]uint64, cfg.K)
			for i := range se {
				se[i] = make([]uint64, cfg.K)
			}
			return se
		}(),
	}
	for _, w := range cfg.Owner {
		c.vertCount[w]++
	}
	return c, nil
}

// Schedule submits a query (paper API scheduleQuery(q)); the result is
// delivered on the returned channel. It is safe to call from any goroutine
// while Run is active.
func (c *Controller) Schedule(spec query.Spec) (<-chan Result, error) {
	if err := spec.Validate(c.cfg.Graph); err != nil {
		return nil, err
	}
	select {
	case <-c.doneCh:
		return nil, fmt.Errorf("controller: stopped")
	default:
	}
	ch := make(chan Result, 1)
	select {
	case c.scheduleCh <- scheduleReq{spec: spec, ch: ch}:
		return ch, nil
	case <-c.doneCh:
		return nil, fmt.Errorf("controller: stopped")
	}
}

// Cancel requests that query q be abandoned: if it is still queued the
// caller gets an immediate FinishCancelled result; if it is executing, the
// controller finishes it with FinishCancelled and tells the workers to
// drop its state. Cancelling an unknown or already-finished query is a
// no-op. Cancels share the schedule FIFO, so a Cancel issued after its
// Schedule returned is always processed after the query started. Safe
// from any goroutine while Run is active.
func (c *Controller) Cancel(q query.ID) {
	select {
	case c.scheduleCh <- scheduleReq{spec: query.Spec{ID: q}, cancel: true}:
	case <-c.doneCh:
	}
}

// QcutSnapshot returns the controller's current high-level view as a Q-cut
// input (Fig. 6g and debugging).
func (c *Controller) QcutSnapshot() (qcut.Input, error) {
	req := snapshotReq{ch: make(chan qcut.Input, 1)}
	select {
	case c.snapshotCh <- req:
		return <-req.ch, nil
	case <-c.doneCh:
		return qcut.Input{}, fmt.Errorf("controller: stopped")
	}
}

// Stop shuts the controller and all workers down. Blocks until Run
// returned.
func (c *Controller) Stop() {
	select {
	case <-c.stopCh:
	default:
		close(c.stopCh)
	}
	<-c.doneCh
}

// Repartitions returns the number of executed repartitioning barriers.
// Valid after Run returned.
func (c *Controller) Repartitions() int { return c.repartitions }

// RepartitionEpoch returns the number of executed repartitioning barriers
// as a monotone epoch. Unlike Repartitions it is safe to call concurrently
// with Run; the serving layer uses it to invalidate cached results when
// the partitioning changes.
func (c *Controller) RepartitionEpoch() int64 { return c.repartEpoch.Load() }

// Run processes events until Stop is called. It returns the first fatal
// protocol error, if any.
func (c *Controller) Run() error {
	defer func() {
		// Order matters: close doneCh first so no new Schedule can
		// enqueue, then cancel requests that raced in before the close.
		close(c.doneCh)
		for {
			select {
			case req := <-c.scheduleCh:
				if req.ch != nil { // cancel requests carry no channel
					req.ch <- Result{Q: req.spec.ID, Value: query.NoResult, Reason: protocol.FinishCancelled}
				}
			default:
				return
			}
		}
	}()
	ticker := time.NewTicker(c.cfg.CheckEvery)
	defer ticker.Stop()
	inbox := c.conn.Inbox()
	for {
		select {
		case <-c.stopCh:
			c.broadcast(&protocol.Shutdown{})
			c.failActive()
			return c.runErr
		case req := <-c.scheduleCh:
			if req.cancel {
				c.onCancel(req.spec.ID)
			} else {
				c.onSchedule(req)
			}
		case req := <-c.snapshotCh:
			req.ch <- c.snapshot(c.cfg.Clock())
		case res := <-c.qcutCh:
			c.onQcutDone(res)
		case <-ticker.C:
			c.onTick()
		case env, ok := <-inbox:
			if !ok {
				return c.runErr
			}
			if err := c.handle(env); err != nil {
				c.runErr = err
				c.broadcast(&protocol.Shutdown{})
				c.failActive()
				return err
			}
		}
	}
}

// failActive delivers a cancelled result to every still-active or
// still-deferred query so callers never block on Stop.
func (c *Controller) failActive() {
	now := c.cfg.Clock()
	for q, ctl := range c.queries {
		ctl.ch <- Result{
			Q: q, Value: ctl.bestGoal, Reason: protocol.FinishCancelled,
			Supersteps: ctl.stepsDone, LocalIters: ctl.localSteps,
			Latency: now.Sub(ctl.started),
		}
		delete(c.queries, q)
	}
	for _, req := range c.deferred {
		req.ch <- Result{Q: req.spec.ID, Value: query.NoResult, Reason: protocol.FinishCancelled}
	}
	c.deferred = nil
}

func (c *Controller) handle(env transport.Envelope) error {
	switch m := env.Msg.(type) {
	case *protocol.BarrierSynch:
		return c.onSynch(m)
	case *protocol.StopAck:
		return c.onStopAck(m)
	case *protocol.DrainAck:
		return c.onDrainAck(m)
	case *protocol.MoveAck:
		return c.onMoveAck(m)
	default:
		return fmt.Errorf("controller: unexpected message %T", env.Msg)
	}
}

func (c *Controller) broadcast(m protocol.Message) {
	for w := 0; w < c.cfg.K; w++ {
		c.conn.Send(protocol.WorkerNode(partition.WorkerID(w)), m)
	}
}
