// Package controller implements the Q-Graph controller layer (Fig. 2 of
// the paper): high-level, query-centric graph management with global
// knowledge. The controller schedules queries onto the workers, coordinates
// the hybrid barrier synchronization (per-query limited/local barriers plus
// the global STOP/START barrier, Sec. 3.3), maintains the monitoring window
// of query statistics (Sec. 3.4), and adapts the partitioning at runtime by
// running Q-cut asynchronously and executing its move directives under a
// global barrier.
//
// The controller is a single event loop; all state is confined to the Run
// goroutine.
package controller

import (
	"fmt"
	"sync/atomic"
	"time"

	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/metrics"
	"qgraph/internal/obs"
	"qgraph/internal/obs/health"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/qcut"
	"qgraph/internal/query"
	recovery "qgraph/internal/recover"
	"qgraph/internal/snapshot"
	"qgraph/internal/transport"
	"qgraph/internal/wal"
)

// SyncMode selects the barrier synchronization strategy.
type SyncMode int

// The three synchronization strategies of the evaluation: the paper's
// hybrid barrier, the limited-only ablation, and the traditional BSP
// baseline of Fig. 6d where every query synchronizes across all workers
// every iteration.
const (
	SyncHybrid SyncMode = iota
	SyncLimited
	SyncGlobal
)

// String returns the mode name.
func (m SyncMode) String() string {
	switch m {
	case SyncHybrid:
		return "hybrid"
	case SyncLimited:
		return "limited"
	case SyncGlobal:
		return "global"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterises the controller.
type Config struct {
	K     int
	Graph *graph.Graph
	// Owner is the initial vertex assignment (the controller keeps its own
	// authoritative copy and evolves it through moves).
	Owner partition.Assignment
	Mode  SyncMode

	// Adapt enables the MAPE adaptivity loop (Q-cut at runtime).
	Adapt bool
	// Phi is the locality threshold Φ: average query locality below it
	// triggers repartitioning (paper: 0.7).
	Phi float64
	// Mu is the monitoring window μ: how long finished-query statistics
	// stay in the global view (paper: 240 s).
	Mu time.Duration
	// MaxWindowQueries caps the queries Q-cut sees (paper: 128).
	MaxWindowQueries int
	// MinWindowQueries is the minimum finished queries before the trigger
	// fires (avoids repartitioning on no evidence).
	MinWindowQueries int
	// Delta is the workload balance slack δ (paper: 0.25).
	Delta float64
	// QcutBudget bounds each Q-cut run (paper: 2 s).
	QcutBudget time.Duration
	// CheckEvery is the adaptivity check interval.
	CheckEvery time.Duration
	// Cooldown is the minimum time between repartitionings.
	Cooldown time.Duration
	// ReplicateQueries enables the future-work (ii) extension: every query
	// is pinned to the worker owning its source vertex, eliminating its
	// query-cut via replication-style local execution.
	ReplicateQueries bool
	// NoClustering / NoPerturbation are Q-cut ablation switches.
	NoClustering   bool
	NoPerturbation bool
	// Seed feeds Q-cut's randomness.
	Seed uint64

	// CommitEvery is the maximum time staged graph mutations wait before
	// they are committed at a barrier (streaming updates, internal/delta).
	CommitEvery time.Duration
	// MaxBatchOps commits the staged batch early once it holds this many
	// operations.
	MaxBatchOps int
	// BarrierCommit selects the pre-MVCC baseline: mutation batches commit
	// under the global STOP/START barrier (quiescing every query) instead
	// of the pipelined off-barrier path. Kept for A/B benchmarking; the
	// default (false) commits off-barrier against pinned query snapshots.
	BarrierCommit bool
	// HeartbeatEvery is the worker liveness probe interval; negative
	// disables heartbeats (zero selects the default).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout is how long a worker may stay silent before it is
	// declared dead and recovery begins: its partitions are handed to
	// survivors (or back to a respawned worker), and its in-flight queries
	// are re-executed from superstep 0.
	HeartbeatTimeout time.Duration
	// Respawn, when set, is invoked from the event loop each time a worker
	// is declared dead, to launch a replacement on the same node id. It
	// must not block (start the replacement asynchronously); the
	// replacement announces itself with WorkerHello. When nil, recovery
	// always hands the dead worker's partition to survivors.
	Respawn func(partition.WorkerID)
	// RespawnWait is how long recovery defers the partition handoff to
	// give a respawned worker the chance to adopt its old partition in
	// place (default 500ms). A hello arriving after the deadline still
	// rejoins, just with an empty partition.
	RespawnWait time.Duration

	// Snapshots receives checkpoints (internal/snapshot): cuts of the
	// committed graph that let the committed-op log be truncated and a
	// rejoining worker replay (checkpoint, tail) instead of (version 0,
	// full history). Nil creates a private in-memory store — note that
	// rejoining workers then need the same store to resolve checkpoints,
	// so multi-node deployments must share a disk-backed store.
	Snapshots *snapshot.Store
	// SnapshotPolicy arms automatic checkpointing; the zero policy leaves
	// only the manual trigger (ForceSnapshot / POST /admin/snapshot).
	SnapshotPolicy snapshot.Policy
	// BaseVersion is the committed version Graph already contains: a
	// deployment restarted from a checkpoint passes the checkpoint's graph
	// and version, and the log, graph version, and replay bases all start
	// there instead of 0.
	BaseVersion uint64
	// WAL, when set, is the durable write-ahead op log: every committed
	// batch is appended and fsynced before the commit acknowledges to its
	// caller, so a full process restart recovers to the exact pre-crash
	// version (snapshot.LoadLatest + WAL tail) instead of losing the ops
	// since the last checkpoint. The log must already be aligned with
	// BaseVersion — the caller replays the tail into Graph first
	// (wal.RecoverGraph) and rebases an empty log onto a checkpoint.
	WAL *wal.WAL
	// privateSnapshots marks a store fill() created because Snapshots was
	// nil: no worker can resolve its checkpoints, so cuts must never
	// truncate the log (a grant's BaseVersion past a private snapshot
	// would strand every future rejoiner).
	privateSnapshots bool

	// Recorder receives metrics; nil disables recording.
	Recorder *metrics.Recorder
	// Obs is the observability substrate (internal/obs): per-query span
	// trees continued from the serving layer (via query.Spec.TraceID),
	// barrier-phase / commit / WAL / snapshot instruments, structured
	// logging. Nil disables all of it at zero cost.
	Obs *obs.Obs
	// Monitor is the active health layer (internal/obs/health): the
	// controller feeds it per-worker compute times, fsync latency, stall
	// ages, and lifecycle events. Nil disables the watchdogs at the cost
	// of a nil check per signal.
	Monitor *health.Monitor
	// Clock abstracts time for tests; nil means time.Now.
	Clock func() time.Time
}

func (c *Config) fill() error {
	if c.K < 1 || c.K > partition.MaxWorkers {
		return fmt.Errorf("controller: bad worker count %d", c.K)
	}
	if c.Graph == nil {
		return fmt.Errorf("controller: nil graph")
	}
	if len(c.Owner) != c.Graph.NumVertices() {
		return fmt.Errorf("controller: ownership covers %d of %d vertices", len(c.Owner), c.Graph.NumVertices())
	}
	if c.Phi == 0 {
		c.Phi = 0.7
	}
	if c.Mu <= 0 {
		c.Mu = 240 * time.Second
	}
	if c.MaxWindowQueries <= 0 {
		c.MaxWindowQueries = 128
	}
	if c.MinWindowQueries <= 0 {
		c.MinWindowQueries = 8
	}
	if c.Delta <= 0 {
		c.Delta = 0.25
	}
	if c.QcutBudget <= 0 {
		c.QcutBudget = 2 * time.Second
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 250 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.CommitEvery <= 0 {
		c.CommitEvery = 250 * time.Millisecond
	}
	if c.MaxBatchOps <= 0 {
		c.MaxBatchOps = 4096
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.RespawnWait <= 0 {
		c.RespawnWait = 500 * time.Millisecond
	}
	if c.Snapshots == nil {
		c.Snapshots = snapshot.NewStore("", 0)
		c.privateSnapshots = true
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return nil
}

// Result is the outcome of one query delivered to its scheduler.
type Result struct {
	Q          query.ID
	Value      float64 // best goal value (query.NoResult if none)
	Reason     protocol.FinishReason
	Supersteps int
	LocalIters int
	Touched    int // |GS(q)| — global scope size
	Workers    int // workers the query ever involved
	Latency    time.Duration
}

// qctl is the controller-side state of one active query.
type qctl struct {
	spec    query.Spec
	prog    query.Program
	started time.Time
	ch      chan<- Result

	step        int32     // last fully collected superstep (-1 before step 0)
	outstanding bool      // a release was issued; reports pending
	releasedAt  time.Time // when the outstanding release was issued (stall watchdog)
	paused      bool      // wanted a release while a global barrier was active
	involved    map[partition.WorkerID]bool
	reports     map[partition.WorkerID]*protocol.BarrierSynch

	scopeSizes []int64 // latest |LS(q,w)| per worker
	everActive []bool  // workers that ever processed or held scope
	bestGoal   float64
	stepsDone  int
	localSteps int
	// cancelled marks a query whose caller abandoned it (Cancel) while a
	// global barrier was executing; it is honored at resume (cancels
	// outside the barrier phases finish the query eagerly instead).
	cancelled bool

	// Tracing (internal/obs): trace is the span tree the serving layer
	// bound to this query ID before scheduling (nil when untraced);
	// engSpan covers the controller-side execution, stepSpan the
	// superstep currently released.
	trace    *obs.Trace
	engSpan  *obs.Span
	stepSpan *obs.Span
}

type phase int

const (
	phaseRun phase = iota
	phaseQuiesce
	phaseStopping
	phaseDraining
	phaseDeltaCommit
	phaseMoving
	phaseScopeDrain
	phaseRecover
)

// scheduleReq is the internal request carrying a user's scheduleQuery call
// — or, with cancel set, a Cancel for the id in spec.ID. Both flow through
// one FIFO channel so a cancel issued after Schedule returned can never
// overtake its schedule in the event loop.
type scheduleReq struct {
	spec   query.Spec
	ch     chan<- Result
	cancel bool
}

// snapshotReq asks the controller for its current Q-cut input (used by the
// Fig. 6g experiment and for introspection).
type snapshotReq struct {
	ch chan qcut.Input
}

// MutationResult reports the outcome of one Mutate call after its batch
// committed: the graph version the ops landed in, how many applied, and
// how many were no-ops (remove/set_weight of a non-existent edge).
type MutationResult struct {
	Version uint64
	Applied int
	NoOps   int
	Err     error
}

// mutateReq carries one client mutation batch into the event loop.
type mutateReq struct {
	ops []delta.Op
	ch  chan<- MutationResult
}

// pendingMut tracks one client batch staged for the next commit; n is its
// op count (for splitting the commit's per-op statuses back per caller).
type pendingMut struct {
	n  int
	ch chan<- MutationResult
}

// Health is the controller's liveness self-assessment, surfaced through
// the serving layer's /healthz. A worker death no longer degrades the
// engine permanently: Recovering is set while a recovery episode runs,
// and once it completes the engine is healthy again — DeadWorkers then
// lists workers whose partitions were permanently handed to survivors.
// Degraded is terminal: every worker is dead and nothing can recover.
type Health struct {
	Degraded    bool  `json:"degraded"`
	Recovering  bool  `json:"recovering,omitempty"`
	DeadWorkers []int `json:"dead_workers,omitempty"`
}

// Controller is the controller-layer event loop.
type Controller struct {
	cfg  Config
	conn transport.Conn

	owner     partition.Assignment
	vertCount []int64

	queries map[query.ID]*qctl
	window  []*windowEntry
	byQ     map[query.ID]*windowEntry
	inter   map[interKey]int64

	phase phase
	// phaseStart is when the current barrier phase was entered; enterPhase
	// charges the elapsed time to the phase histogram and to every traced
	// in-flight query on each transition.
	phaseStart   time.Time
	obs          *ctlObs
	epoch        int32
	stopAcks     map[partition.WorkerID][]uint64
	drainAcks    int
	pendingMoves []qcut.Move
	movesLeft    int
	ownDeltaV    []graph.VertexID
	ownDeltaW    []partition.WorkerID
	scopeExpect  [][]uint64 // cumulative ScopeData expectations [receiver][sender]
	deferred     []scheduleReq

	// Streaming graph updates (internal/delta). view is the Run-loop-owned
	// committed graph; curView mirrors it atomically for concurrent readers
	// (Schedule validation, the serving layer). graphVersion counts
	// committed batches.
	view         *delta.View
	curView      atomic.Pointer[delta.View]
	graphVersion atomic.Uint64
	pendingOps   []delta.Op
	pendingMuts  []pendingMut
	pendingNewV  int // AddVertex ops staged (range validation)
	firstOpAt    time.Time
	commitBatch  *protocol.DeltaBatch
	commitMuts   []pendingMut
	deltaAcks    int
	// Pipelined (off-barrier) commit state. views is the controller-side
	// MVCC registry: every committed version a query still has pinned stays
	// resolvable (its Stats surface the compaction floor). sealed is the
	// FIFO of batches sealed — version assigned, enqueued to the WAL group
	// committer — but not yet durable+applied; sealedHead is the last sealed
	// version (applies trail it by len(sealed)). walAckCh delivers group
	//-commit completions into the event loop; durableQ buffers completions
	// that land mid-recovery (applying would move the version under the
	// round's PartitionAck equality check), drained at resume. ackVersion
	// tracks each worker's last DeltaAck for replication-lag accounting.
	views           *delta.Registry
	sealed          []*sealedBatch
	sealedHead      uint64
	walAckCh        chan wal.AppendAck
	durableQ        []wal.AppendAck
	sealedInFlight  atomic.Int64
	minAckedVersion atomic.Uint64
	ackVersion      []uint64
	// barrierHadMoves marks the active global barrier as a repartitioning
	// one (scope moves executed); delta-only barriers do not count as
	// repartitions.
	barrierHadMoves bool

	// Worker liveness. missedPings[w] counts heartbeat probes since w's
	// last answer; past the limit the worker is declared dead and a
	// recovery episode starts (internal/recover). deadWorkers holds the
	// fenced set: messages from these workers are dropped until a
	// WorkerHello readmits them via PartitionGrant.
	lastPingAt  time.Time
	pingSeq     int64
	missedPings []int
	deadWorkers map[partition.WorkerID]bool
	health      atomic.Pointer[Health]

	// Worker failure recovery (internal/recover). deltaLog retains every
	// committed batch so a respawned worker can rebuild its view by
	// replay. terminal marks the unrecoverable state (no live workers).
	rec        recovery.Tracker
	recCtr     recovery.Counters
	recState   recoverState
	recovering bool
	terminal   bool
	// restartQueries tells resume() to re-execute every active query from
	// superstep 0 (their pre-recovery state died with the worker).
	restartQueries bool
	// epDied collects the workers that died during the current episode,
	// for the handoff/rejoin accounting when it completes.
	epDied   map[partition.WorkerID]bool
	deltaLog delta.Log

	// Checkpointing (internal/snapshot). The committed view is folded into
	// a versioned snapshot — by policy at commit time, or on demand — and
	// the log truncated to the ops newer than the durable checkpoint, so
	// recovery and restart replay O(recent) instead of O(history).
	// snapOps/snapBytes accumulate committed log growth since the last
	// cut; the atomic log mirrors serve concurrent /stats readers.
	//
	// Cuts run OFF the commit barrier: the barrier path only pins the
	// immutable committed view (O(1)) and a background cutter goroutine
	// materializes and persists it, reporting back through cutCh so the
	// event loop truncates the delta log and WAL — the O(V+E) fold never
	// stalls a commit. At most one cut is in flight; triggers and manual
	// requests arriving meanwhile queue one follow-up cut.
	snapOps         int
	snapBytes       int64
	lastSnapAt      time.Time
	lastSnapVersion uint64
	logLen          atomic.Int64
	logOps          atomic.Int64
	logBytes        atomic.Int64
	cutCh           chan cutDone
	cutInFlight     bool
	cutAgain        bool
	cutWaiters      []chan snapshot.Result
	nextCutWaiters  []chan snapshot.Result
	// Abort rollback state: what the policy accounting looked like when
	// the in-flight cut pinned its view.
	cutPrevVersion uint64
	cutPrevAt      time.Time
	cutPinnedOps   int
	cutPinnedBytes int64
	lastCutNanos   atomic.Int64
	// lastCutUnixNS mirrors the completion wall time of the newest durable
	// cut for concurrent readers (/healthz lag, /metrics); 0 before the
	// first cut.
	lastCutUnixNS atomic.Int64
	// commitStartAt is when the in-flight delta commit sealed its batch
	// (commit latency = seal to applied, covering the barrier it rode).
	commitStartAt time.Time

	qcutRunning bool
	qcutCh      chan qcut.Result
	lastRepart  time.Time
	// Repartitions counts executed global barriers with moves.
	repartitions int
	// repartEpoch mirrors repartitions atomically so concurrent readers
	// (the serving layer's result cache) can observe partition changes
	// while Run is live.
	repartEpoch atomic.Int64
	// Trigger backoff: when repartitioning stops improving locality
	// (e.g. the workload inherently spans workers), the effective cooldown
	// doubles up to 16× so global barriers do not thrash the very queries
	// they are meant to help. Any improvement resets it.
	curCooldown  time.Duration
	trigLocality float64

	scheduleCh   chan scheduleReq
	snapshotCh   chan snapshotReq
	checkpointCh chan checkpointReq
	mutateCh     chan mutateReq
	stopCh       chan struct{}
	doneCh       chan struct{}
	runErr       error
}

// checkpointReq asks the event loop to cut a checkpoint now (the manual
// trigger behind POST /admin/snapshot).
type checkpointReq struct {
	ch chan snapshot.Result
}

type interKey struct {
	w      partition.WorkerID
	q1, q2 query.ID
}

// windowEntry is one query's statistics in the monitoring window.
type windowEntry struct {
	q        query.ID
	at       time.Time // completion (or last update) time
	sizes    []int64   // |LS(q,w)| per worker
	locality float64
}

// New creates a controller bound to conn.
func New(cfg Config, conn transport.Conn) (*Controller, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:          cfg,
		conn:         conn,
		owner:        cfg.Owner.Clone(),
		vertCount:    make([]int64, cfg.K),
		queries:      make(map[query.ID]*qctl),
		byQ:          make(map[query.ID]*windowEntry),
		inter:        make(map[interKey]int64),
		view:         delta.NewViewAt(cfg.Graph, cfg.BaseVersion),
		sealedHead:   cfg.BaseVersion,
		walAckCh:     make(chan wal.AppendAck, 2*maxSealedInFlight),
		ackVersion:   make([]uint64, cfg.K),
		missedPings:  make([]int, cfg.K),
		deadWorkers:  make(map[partition.WorkerID]bool),
		epDied:       make(map[partition.WorkerID]bool),
		qcutCh:       make(chan qcut.Result, 1),
		cutCh:        make(chan cutDone, 1),
		scheduleCh:   make(chan scheduleReq, 64),
		snapshotCh:   make(chan snapshotReq),
		checkpointCh: make(chan checkpointReq),
		mutateCh:     make(chan mutateReq, 64),
		stopCh:       make(chan struct{}),
		doneCh:       make(chan struct{}),
		scopeExpect: func() [][]uint64 {
			se := make([][]uint64, cfg.K)
			for i := range se {
				se[i] = make([]uint64, cfg.K)
			}
			return se
		}(),
	}
	for _, w := range cfg.Owner {
		c.vertCount[w]++
	}
	c.views = delta.NewRegistry(c.view)
	for w := range c.ackVersion {
		c.ackVersion[w] = cfg.BaseVersion
	}
	c.minAckedVersion.Store(cfg.BaseVersion)
	c.graphVersion.Store(cfg.BaseVersion)
	if err := c.deltaLog.Rebase(cfg.BaseVersion); err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	if cfg.WAL != nil && cfg.WAL.Head() != cfg.BaseVersion {
		// A WAL ahead of the base means its tail was never replayed into
		// Graph; behind means the caller skipped Rebase. Either way the
		// version chains would diverge on the first commit.
		return nil, fmt.Errorf("controller: wal head %d != base version %d (replay the tail and rebase before starting)",
			cfg.WAL.Head(), cfg.BaseVersion)
	}
	c.lastSnapVersion = cfg.BaseVersion
	c.lastSnapAt = cfg.Clock()
	c.phaseStart = cfg.Clock()
	c.curView.Store(c.view)
	c.health.Store(&Health{})
	c.obs = newCtlObs(c)
	return c, nil
}

// Schedule submits a query (paper API scheduleQuery(q)); the result is
// delivered on the returned channel. It is safe to call from any goroutine
// while Run is active.
func (c *Controller) Schedule(spec query.Spec) (<-chan Result, error) {
	// Validate against the current committed view: streaming updates may
	// have grown the graph past the base the controller was built with.
	if err := spec.Validate(c.curView.Load()); err != nil {
		return nil, err
	}
	select {
	case <-c.doneCh:
		return nil, fmt.Errorf("controller: stopped")
	default:
	}
	ch := make(chan Result, 1)
	select {
	case c.scheduleCh <- scheduleReq{spec: spec, ch: ch}:
		return ch, nil
	case <-c.doneCh:
		return nil, fmt.Errorf("controller: stopped")
	}
}

// Cancel requests that query q be abandoned: if it is still queued the
// caller gets an immediate FinishCancelled result; if it is executing, the
// controller finishes it with FinishCancelled and tells the workers to
// drop its state. Cancelling an unknown or already-finished query is a
// no-op. Cancels share the schedule FIFO, so a Cancel issued after its
// Schedule returned is always processed after the query started. Safe
// from any goroutine while Run is active.
func (c *Controller) Cancel(q query.ID) {
	select {
	case c.scheduleCh <- scheduleReq{spec: query.Spec{ID: q}, cancel: true}:
	case <-c.doneCh:
	}
}

// Mutate stages one batch of graph mutations for the next commit barrier
// and returns a channel that delivers the MutationResult once the batch
// committed (or failed). Multiple Mutate calls may be folded into one
// commit; each caller still gets its own per-op accounting. Safe from any
// goroutine while Run is active.
func (c *Controller) Mutate(ops []delta.Op) (<-chan MutationResult, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("controller: empty mutation batch")
	}
	ch := make(chan MutationResult, 1)
	select {
	case c.mutateCh <- mutateReq{ops: ops, ch: ch}:
		return ch, nil
	case <-c.doneCh:
		return nil, fmt.Errorf("controller: stopped")
	}
}

// GraphVersion returns the number of committed mutation batches as a
// monotone graph version. Safe to call concurrently with Run; the serving
// layer folds it into the result-cache epoch.
func (c *Controller) GraphVersion() uint64 { return c.graphVersion.Load() }

// GraphView returns the current committed graph view (a consistent
// snapshot; later commits do not mutate it). Safe to call concurrently
// with Run.
func (c *Controller) GraphView() graph.View { return c.curView.Load() }

// Health reports worker liveness. Safe to call concurrently with Run.
func (c *Controller) Health() Health { return *c.health.Load() }

// RecoveryStats reports the worker-failure recovery counters. Safe to
// call concurrently with Run; the serving layer surfaces it in /stats.
func (c *Controller) RecoveryStats() recovery.Stats { return c.recCtr.Snapshot() }

// ForceSnapshot cuts a checkpoint of the committed graph now (the manual
// trigger behind POST /admin/snapshot) and truncates the committed-op log
// to the ops newer than the durable checkpoint. The fold runs on the
// background cutter; this call blocks until it (and the truncation)
// completed, but the event loop — and every commit barrier — keeps
// running meanwhile. Safe from any goroutine while Run is active. A
// Result with Cut=false means the current version was already
// checkpointed (or the cut was aborted by fault injection).
func (c *Controller) ForceSnapshot() (snapshot.Result, error) {
	req := checkpointReq{ch: make(chan snapshot.Result, 1)}
	select {
	case c.checkpointCh <- req:
	case <-c.doneCh:
		return snapshot.Result{}, fmt.Errorf("controller: stopped")
	}
	select {
	case res := <-req.ch:
		return res, nil
	case <-c.doneCh:
		return snapshot.Result{}, fmt.Errorf("controller: stopped")
	}
}

// SnapshotStats reports the checkpointing counters and the live size of
// the committed-op log. Safe to call concurrently with Run; the serving
// layer surfaces it in /stats.
func (c *Controller) SnapshotStats() snapshot.Stats {
	st := c.cfg.Snapshots.Stats()
	st.DeltaLogLen = int(c.logLen.Load())
	st.DeltaLogOps = int(c.logOps.Load())
	st.DeltaLogBytes = c.logBytes.Load()
	st.LastCutMS = float64(c.lastCutNanos.Load()) / float64(time.Millisecond)
	st.LastCutUnixNS = c.lastCutUnixNS.Load()
	return st
}

// WALStats reports the durable write-ahead log's accounting (a zero-value
// Stats with Enabled=false when no WAL is configured). Safe to call
// concurrently with Run; the serving layer surfaces it in /stats.
func (c *Controller) WALStats() wal.Stats {
	if c.cfg.WAL == nil {
		return wal.Stats{}
	}
	return c.cfg.WAL.Stats()
}

// MVCCStats describes the multi-version state of the commit pipeline: the
// view registry's live/pinned versions (the compaction floor), how many
// sealed batches are in flight between the event loop and the WAL group
// committer, and how far the slowest worker replica trails the committed
// version.
type MVCCStats struct {
	delta.RegistryStats
	// Pipelined is false when Config.BarrierCommit selected the baseline.
	Pipelined bool `json:"pipelined"`
	// SealedInFlight is the number of batches sealed (version assigned,
	// queued for group fsync) but not yet applied.
	SealedInFlight int64 `json:"sealed_in_flight"`
	// MaxWorkerLag is committed version minus the slowest live worker's
	// last-acknowledged version (pipelined mode only; barrier commits
	// cannot lag by construction).
	MaxWorkerLag uint64 `json:"max_worker_lag"`
}

// MVCCStats reports the commit pipeline's multi-version accounting. Safe
// to call concurrently with Run; the serving layer surfaces it in /stats.
func (c *Controller) MVCCStats() MVCCStats {
	st := MVCCStats{
		RegistryStats:  c.views.Stats(),
		Pipelined:      !c.cfg.BarrierCommit,
		SealedInFlight: c.sealedInFlight.Load(),
	}
	if v, acked := c.graphVersion.Load(), c.minAckedVersion.Load(); !c.cfg.BarrierCommit && v > acked {
		st.MaxWorkerLag = v - acked
	}
	return st
}

// QcutSnapshot returns the controller's current high-level view as a Q-cut
// input (Fig. 6g and debugging).
func (c *Controller) QcutSnapshot() (qcut.Input, error) {
	req := snapshotReq{ch: make(chan qcut.Input, 1)}
	select {
	case c.snapshotCh <- req:
		return <-req.ch, nil
	case <-c.doneCh:
		return qcut.Input{}, fmt.Errorf("controller: stopped")
	}
}

// Stop shuts the controller and all workers down. Blocks until Run
// returned.
func (c *Controller) Stop() {
	select {
	case <-c.stopCh:
	default:
		close(c.stopCh)
	}
	<-c.doneCh
}

// Repartitions returns the number of executed repartitioning barriers.
// Valid after Run returned.
func (c *Controller) Repartitions() int { return c.repartitions }

// RepartitionEpoch returns the number of executed repartitioning barriers
// as a monotone epoch. Unlike Repartitions it is safe to call concurrently
// with Run; the serving layer uses it to invalidate cached results when
// the partitioning changes.
func (c *Controller) RepartitionEpoch() int64 { return c.repartEpoch.Load() }

// Run processes events until Stop is called. It returns the first fatal
// protocol error, if any.
func (c *Controller) Run() error {
	defer func() {
		// Order matters: close doneCh first so no new Schedule or Mutate
		// can enqueue, then fail requests that raced in before the close.
		close(c.doneCh)
		for {
			select {
			case req := <-c.scheduleCh:
				if req.ch != nil { // cancel requests carry no channel
					req.ch <- Result{Q: req.spec.ID, Value: query.NoResult, Reason: protocol.FinishCancelled}
				}
			case req := <-c.mutateCh:
				req.ch <- MutationResult{Err: fmt.Errorf("controller: stopped")}
			default:
				return
			}
		}
	}()
	ticker := time.NewTicker(c.cfg.CheckEvery)
	defer ticker.Stop()
	inbox := c.conn.Inbox()
	for {
		select {
		case <-c.stopCh:
			c.broadcastAll(&protocol.Shutdown{})
			c.failActive()
			return c.runErr
		case req := <-c.scheduleCh:
			if req.cancel {
				c.onCancel(req.spec.ID)
			} else {
				c.onSchedule(req)
			}
		case req := <-c.snapshotCh:
			req.ch <- c.snapshot(c.cfg.Clock())
		case req := <-c.checkpointCh:
			c.requestCheckpoint(req.ch)
		case done := <-c.cutCh:
			c.onCutDone(done)
		case req := <-c.mutateCh:
			c.onMutate(req)
		case ack := <-c.walAckCh:
			if err := c.onWalAck(ack); err != nil {
				c.runErr = err
				c.broadcastAll(&protocol.Shutdown{})
				c.failActive()
				return err
			}
		case res := <-c.qcutCh:
			c.onQcutDone(res)
		case <-ticker.C:
			c.onTick()
		case env, ok := <-inbox:
			if !ok {
				return c.runErr
			}
			if err := c.handle(env); err != nil {
				c.runErr = err
				c.broadcastAll(&protocol.Shutdown{})
				c.failActive()
				return err
			}
		}
	}
}

// failActive delivers a cancelled result to every still-active or
// still-deferred query — and an error to every staged mutation — so
// callers never block on Stop.
func (c *Controller) failActive() {
	now := c.cfg.Clock()
	for q, ctl := range c.queries {
		ctl.ch <- Result{
			Q: q, Value: ctl.bestGoal, Reason: protocol.FinishCancelled,
			Supersteps: ctl.stepsDone, LocalIters: ctl.localSteps,
			Latency: now.Sub(ctl.started),
		}
		c.views.Unpin(ctl.spec.PinVersion)
		delete(c.queries, q)
	}
	for _, req := range c.deferred {
		req.ch <- Result{Q: req.spec.ID, Value: query.NoResult, Reason: protocol.FinishCancelled}
	}
	c.deferred = nil
	stopped := fmt.Errorf("controller: stopped")
	c.failMutations(stopped, stopped)
}

// failMutations delivers errors to every staged (pendingErr) and
// in-commit (commitErr) mutation batch. The two differ on worker death:
// staged ops were never broadcast, while a broadcast batch may already be
// applied on surviving replicas.
func (c *Controller) failMutations(pendingErr, commitErr error) {
	for _, pm := range c.pendingMuts {
		pm.ch <- MutationResult{Err: pendingErr}
	}
	for _, pm := range c.commitMuts {
		pm.ch <- MutationResult{Err: commitErr}
	}
	// Sealed pipelined batches are in commitBatch's position: enqueued to
	// the WAL, possibly already durable, but never acknowledged.
	for _, sb := range c.sealed {
		for _, pm := range sb.muts {
			pm.ch <- MutationResult{Err: commitErr}
		}
	}
	c.sealed, c.durableQ = nil, nil
	c.sealedInFlight.Store(0)
	c.pendingMuts, c.commitMuts = nil, nil
	c.pendingOps, c.pendingNewV, c.firstOpAt = nil, 0, time.Time{}
	c.commitBatch = nil
}

func (c *Controller) handle(env transport.Envelope) error {
	// Fence dead workers: a worker declared dead stays dead until a
	// WorkerHello readmits it, however falsely the declaration turned out —
	// its partition is being (or has been) reassigned, so any message it
	// still emits refers to state that no longer exists.
	if env.From != protocol.ControllerNode && c.deadWorkers[protocol.WorkerOf(env.From)] {
		if m, ok := env.Msg.(*protocol.WorkerHello); ok {
			c.onWorkerHello(m)
		}
		return nil
	}
	if c.phase == phaseRecover {
		// Mid-recovery only the recovery protocol and liveness speak; every
		// other message is a pre-recovery straggler from a live worker —
		// per-link FIFO guarantees they all arrive before that worker's
		// PartitionAck, so dropping them here is exhaustive.
		switch m := env.Msg.(type) {
		case *protocol.PartitionAck:
			return c.onPartitionAck(m)
		case *protocol.WorkerHello:
			c.onWorkerHello(m)
			return nil
		case *protocol.Pong:
			c.onPong(m)
			return nil
		default:
			return nil
		}
	}
	switch m := env.Msg.(type) {
	case *protocol.BarrierSynch:
		return c.onSynch(m)
	case *protocol.StopAck:
		return c.onStopAck(m)
	case *protocol.DrainAck:
		return c.onDrainAck(m)
	case *protocol.MoveAck:
		return c.onMoveAck(m)
	case *protocol.DeltaAck:
		return c.onDeltaAck(m)
	case *protocol.Pong:
		c.onPong(m)
		return nil
	case *protocol.WorkerHello:
		c.onWorkerHello(m)
		return nil
	case *protocol.PartitionAck:
		// A straggler from a completed or aborted recovery round.
		return nil
	default:
		return fmt.Errorf("controller: unexpected message %T", env.Msg)
	}
}

// broadcast sends m to every live worker (dead workers are fenced; their
// successor is addressed only once readmitted).
func (c *Controller) broadcast(m protocol.Message) {
	for w := 0; w < c.cfg.K; w++ {
		if c.deadWorkers[partition.WorkerID(w)] {
			continue
		}
		c.conn.Send(protocol.WorkerNode(partition.WorkerID(w)), m)
	}
}

// broadcastAll sends m to every worker slot, dead or alive — shutdown
// must also reach a replacement that is still joining.
func (c *Controller) broadcastAll(m protocol.Message) {
	for w := 0; w < c.cfg.K; w++ {
		c.conn.Send(protocol.WorkerNode(partition.WorkerID(w)), m)
	}
}

// liveCount is the number of workers barriers and commits must hear from.
func (c *Controller) liveCount() int { return c.cfg.K - len(c.deadWorkers) }
