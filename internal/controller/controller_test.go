package controller

import (
	"testing"
	"time"

	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
	"qgraph/internal/snapshot"
	"qgraph/internal/transport"
)

// ctlHarness runs a real controller against scripted fake workers.
type ctlHarness struct {
	t    *testing.T
	net  *transport.ChanNetwork
	ctrl *Controller
	k    int
}

func lineGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddBiEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	return b.MustBuild()
}

func newCtlHarness(t *testing.T, k int, mut func(*Config)) *ctlHarness {
	t.Helper()
	g := lineGraph(8)
	net := transport.NewChanNetwork(k+1, transport.Latency{})
	owner := make(partition.Assignment, g.NumVertices())
	for v := range owner {
		owner[v] = partition.WorkerID(v % k)
	}
	// Heartbeats are disabled by default: these tests script the worker
	// side exactly, and unanswered pings would declare the fakes dead.
	cfg := Config{K: k, Graph: g, Owner: owner, HeartbeatEvery: -1}
	if mut != nil {
		mut(&cfg)
	}
	ctrl, err := New(cfg, net.Conn(protocol.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	go ctrl.Run()
	t.Cleanup(func() {
		ctrl.Stop()
		net.Close()
	})
	return &ctlHarness{t: t, net: net, ctrl: ctrl, k: k}
}

// expect reads the next message for worker w.
func (h *ctlHarness) expect(w partition.WorkerID) protocol.Message {
	h.t.Helper()
	select {
	case env := <-h.net.Conn(protocol.WorkerNode(w)).Inbox():
		return env.Msg
	case <-time.After(5 * time.Second):
		h.t.Fatalf("timeout waiting for message to worker %d", w)
		return nil
	}
}

func (h *ctlHarness) workerSend(w partition.WorkerID, m protocol.Message) {
	h.t.Helper()
	if err := h.net.Conn(protocol.WorkerNode(w)).Send(protocol.ControllerNode, m); err != nil {
		h.t.Fatal(err)
	}
}

// synch builds a minimal BarrierSynch.
func synch(q query.ID, w partition.WorkerID, step int32, mut func(*protocol.BarrierSynch)) *protocol.BarrierSynch {
	s := &protocol.BarrierSynch{
		Q: q, W: w, Step: step, FromStep: step,
		BestGoal: query.NoResult, MinFrontier: query.NoResult,
		SentBatches: make([]int32, 8),
	}
	if mut != nil {
		mut(s)
	}
	return s
}

// TestScheduleAndConverge: the controller broadcasts the query, releases
// the source owner, and finishes on an all-idle synch.
func TestScheduleAndConverge(t *testing.T) {
	h := newCtlHarness(t, 2, nil)
	ch, err := h.ctrl.Schedule(query.Spec{ID: 1, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	// Both workers get the ExecuteQuery broadcast.
	if _, ok := h.expect(0).(*protocol.ExecuteQuery); !ok {
		t.Fatal("worker 0 missing ExecuteQuery")
	}
	if _, ok := h.expect(1).(*protocol.ExecuteQuery); !ok {
		t.Fatal("worker 1 missing ExecuteQuery")
	}
	// Source 0 is owned by worker 0: it gets the step-0 release, solo.
	rel, ok := h.expect(0).(*protocol.BarrierReady)
	if !ok || rel.Step != 0 || !rel.Solo {
		t.Fatalf("release = %#v", rel)
	}
	// Report convergence (no active vertices, nothing sent).
	h.workerSend(0, synch(1, 0, 0, func(s *protocol.BarrierSynch) {
		s.SentBatches = make([]int32, 2)
		s.ScopeSize = 1
		s.Processed = 1
	}))
	res := <-ch
	if res.Reason != protocol.FinishConverged || res.Supersteps != 1 {
		t.Fatalf("result = %+v", res)
	}
	// Finish broadcast reaches both workers.
	if _, ok := h.expect(0).(*protocol.QueryFinish); !ok {
		t.Fatal("worker 0 missing QueryFinish")
	}
	if _, ok := h.expect(1).(*protocol.QueryFinish); !ok {
		t.Fatal("worker 1 missing QueryFinish")
	}
}

// TestLimitedBarrierReleasesInvolvedOnly: only workers with pending work
// get the next release, with correct Expect counts.
func TestLimitedBarrierReleasesInvolvedOnly(t *testing.T) {
	h := newCtlHarness(t, 3, nil)
	ch, err := h.ctrl.Schedule(query.Spec{ID: 2, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	for w := partition.WorkerID(0); w < 3; w++ {
		h.expect(w) // ExecuteQuery
	}
	h.expect(0) // release step 0

	// Worker 0 sends 2 batches to worker 1, keeps local work too.
	h.workerSend(0, synch(2, 0, 0, func(s *protocol.BarrierSynch) {
		s.SentBatches = []int32{0, 2, 0}
		s.NActiveNext = 3
		s.Processed = 1
		s.ScopeSize = 1
	}))
	rel0, ok := h.expect(0).(*protocol.BarrierReady)
	if !ok || rel0.Step != 1 || rel0.Solo || rel0.Expect != 0 {
		t.Fatalf("worker0 release = %#v", rel0)
	}
	rel1, ok := h.expect(1).(*protocol.BarrierReady)
	if !ok || rel1.Expect != 2 {
		t.Fatalf("worker1 release = %#v", rel1)
	}
	// Worker 2 must NOT be released: nothing pending there. Both involved
	// workers converge; worker 2 sees only the finish broadcast.
	h.workerSend(0, synch(2, 0, 1, func(s *protocol.BarrierSynch) { s.SentBatches = make([]int32, 3) }))
	h.workerSend(1, synch(2, 1, 1, func(s *protocol.BarrierSynch) {
		s.SentBatches = make([]int32, 3)
		s.Processed = 2
	}))
	<-ch
	if _, ok := h.expect(2).(*protocol.QueryFinish); !ok {
		t.Fatal("worker 2 should only see the finish broadcast")
	}
}

// TestEarlyTermination: a monotone query ends once the frontier bound
// cannot beat the best goal.
func TestEarlyTermination(t *testing.T) {
	h := newCtlHarness(t, 2, nil)
	ch, err := h.ctrl.Schedule(query.Spec{ID: 3, Kind: query.KindSSSP, Source: 0, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	h.expect(0)
	h.expect(1)
	h.expect(0) // release
	h.workerSend(0, synch(3, 0, 0, func(s *protocol.BarrierSynch) {
		s.SentBatches = make([]int32, 2)
		s.NActiveNext = 5 // still active…
		s.BestGoal = 10   // …but the target is settled at 10
		s.MinFrontier = 12
		s.Processed = 1
	}))
	res := <-ch
	if res.Reason != protocol.FinishEarly || res.Value != 10 {
		t.Fatalf("result = %+v", res)
	}
}

// TestMaxItersTermination: the superstep cap finishes the query.
func TestMaxItersTermination(t *testing.T) {
	h := newCtlHarness(t, 2, nil)
	ch, err := h.ctrl.Schedule(query.Spec{ID: 4, Kind: query.KindPageRank, Source: 0, MaxIters: 1, Epsilon: 1e-6, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	h.expect(0)
	h.expect(1)
	h.expect(0)
	h.workerSend(0, synch(4, 0, 0, func(s *protocol.BarrierSynch) {
		s.SentBatches = make([]int32, 2)
		s.NActiveNext = 3
		s.Processed = 1
	}))
	res := <-ch
	if res.Reason != protocol.FinishMaxIters {
		t.Fatalf("result = %+v", res)
	}
}

// TestGlobalModeReleasesAll: in SyncGlobal mode every worker participates
// in every barrier (Fig. 6d baseline).
func TestGlobalModeReleasesAll(t *testing.T) {
	h := newCtlHarness(t, 3, func(c *Config) { c.Mode = SyncGlobal })
	_, err := h.ctrl.Schedule(query.Spec{ID: 5, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	for w := partition.WorkerID(0); w < 3; w++ {
		h.expect(w) // ExecuteQuery
	}
	for w := partition.WorkerID(0); w < 3; w++ {
		rel, ok := h.expect(w).(*protocol.BarrierReady)
		if !ok || rel.Solo {
			t.Fatalf("worker %d: expected non-solo release, got %#v", w, rel)
		}
	}
}

// TestStopCancelsActive: stopping the controller delivers cancelled
// results instead of blocking callers.
func TestStopCancelsActive(t *testing.T) {
	h := newCtlHarness(t, 2, nil)
	ch, err := h.ctrl.Schedule(query.Spec{ID: 6, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl.Stop()
	res := <-ch
	if res.Reason != protocol.FinishCancelled {
		t.Fatalf("result = %+v", res)
	}
	if _, err := h.ctrl.Schedule(query.Spec{ID: 7, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex}); err == nil {
		t.Fatal("schedule after stop accepted")
	}
}

// TestDuplicateSynchIsError: protocol violations surface as Run errors.
func TestDuplicateSynchIsError(t *testing.T) {
	g := lineGraph(8)
	net := transport.NewChanNetwork(3, transport.Latency{})
	defer net.Close()
	owner := make(partition.Assignment, g.NumVertices())
	ctrl, err := New(Config{K: 2, Graph: g, Owner: owner}, net.Conn(protocol.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- ctrl.Run() }()
	ch, err := ctrl.Schedule(query.Spec{ID: 8, Kind: query.KindBFS, Source: 0, Target: graph.NilVertex})
	if err != nil {
		t.Fatal(err)
	}
	_ = ch
	w0 := net.Conn(protocol.WorkerNode(0))
	// Drain worker 0's execute+release, then synch twice for the same step
	// — but first synch keeps the query outstanding so the duplicate is a
	// protocol violation.
	<-w0.Inbox()
	<-w0.Inbox()
	bad := synch(8, 0, 0, func(s *protocol.BarrierSynch) {
		s.SentBatches = []int32{0, 1}
		s.NActiveNext = 1
	})
	w0.Send(protocol.ControllerNode, bad)
	// The controller released step 1 to workers 0 and 1; a synch from an
	// uninvolved... send a duplicate for step 1 from worker 0.
	<-w0.Inbox() // release step 1
	s1 := synch(8, 0, 1, func(s *protocol.BarrierSynch) {
		s.SentBatches = make([]int32, 2)
		s.NActiveNext = 1
	})
	w0.Send(protocol.ControllerNode, s1)
	w0.Send(protocol.ControllerNode, s1)
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("expected protocol error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("controller did not fail on duplicate synch")
	}
}

// TestCheckpointPrivateStoreNeverTruncates: a controller whose snapshot
// store was not wired in (Config.Snapshots nil -> a private store nobody
// else can resolve checkpoints from) must cut without truncating the op
// log — a grant based past a private snapshot would strand every future
// rejoiner. A shared store truncates as usual.
func TestCheckpointPrivateStoreNeverTruncates(t *testing.T) {
	commitOne := func(c *Controller) {
		ops := []delta.Op{{Kind: delta.OpAddVertex}}
		nv, _, err := c.view.Apply(ops)
		if err != nil {
			t.Fatal(err)
		}
		c.view = nv
		c.graphVersion.Store(nv.Version())
		if err := c.deltaLog.Append(nv.Version(), ops); err != nil {
			t.Fatal(err)
		}
	}
	g := lineGraph(8)
	owner := make(partition.Assignment, g.NumVertices())

	private, err := New(Config{K: 1, Graph: g, Owner: owner, HeartbeatEvery: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the async cut machinery by hand (no Run loop in this test):
	// request, land the cutter's report, read the reply.
	cut := func(c *Controller) snapshot.Result {
		ch := make(chan snapshot.Result, 1)
		c.requestCheckpoint(ch)
		c.onCutDone(<-c.cutCh)
		return <-ch
	}

	commitOne(private)
	res := cut(private)
	if !res.Cut || res.TruncatedOps != 0 {
		t.Fatalf("private-store cut = %+v, want Cut with zero truncation", res)
	}
	if private.deltaLog.Base() != 0 || private.deltaLog.Ops() != 1 {
		t.Fatalf("private store truncated the log (base %d, ops %d)",
			private.deltaLog.Base(), private.deltaLog.Ops())
	}

	shared, err := New(Config{
		K: 1, Graph: g, Owner: owner, HeartbeatEvery: -1,
		Snapshots: snapshot.NewStore("", 0),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	commitOne(shared)
	res = cut(shared)
	if !res.Cut || res.TruncatedOps != 1 || shared.deltaLog.Base() != 1 {
		t.Fatalf("shared-store cut = %+v (base %d), want one op truncated", res, shared.deltaLog.Base())
	}
}
