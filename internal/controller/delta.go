package controller

import (
	"fmt"
	"math"
	"time"

	"qgraph/internal/delta"
	"qgraph/internal/faultpoint"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/wal"
)

// This file is the controller side of the streaming-update data plane
// (internal/delta): Mutate calls stage operations into a pending batch,
// and the batch commits to version v+1 through one of two paths:
//
// Pipelined (the default): the batch is sealed — version assigned, new
// vertices placed — and handed to the WAL group committer; once the shared
// fsync reports it durable, the event loop applies it to the controller
// view, publishes the version, broadcasts the DeltaBatch to the workers,
// and acknowledges the callers. No query stops: each query pinned an
// immutable snapshot at admission (query.Spec.PinVersion) and runs to
// completion against it, so commit latency is seal→fsync→apply instead of
// a function of the longest-running superstep. The global STOP/START
// barrier remains for repartitioning and recovery only.
//
// Barrier (Config.BarrierCommit, the pre-MVCC baseline kept for A/B
// benchmarking): the batch commits under the global barrier while the
// vertex-message network is provably quiet, quiescing every query.
//
// Both paths preserve the durability contract — a batch reaches the
// fsynced WAL before any caller is told it committed — and the on-disk WAL
// format (one record per version), so replicas tailing the WAL and restart
// recovery never know which path produced a record.

// maxSealedInFlight caps pipelined batches sealed but not yet applied. It
// sits well below the WAL group committer's queue depth, so Enqueue never
// blocks the event loop; at the cap, staged ops simply keep accumulating
// into a bigger next batch.
const maxSealedInFlight = 128

// sealedBatch is one pipelined commit in flight: sealed (version assigned,
// handed to the WAL group committer) but not yet durable and applied.
type sealedBatch struct {
	batch    *protocol.DeltaBatch
	muts     []pendingMut
	sealedAt time.Time
}

// onMutate validates and stages one client batch. During a recovery
// episode the batch stays staged (sealing needs a settled live set) and
// commits once recovery completes — callers see latency, not failure.
func (c *Controller) onMutate(req mutateReq) {
	if c.terminal {
		req.ch <- MutationResult{Err: fmt.Errorf("controller: degraded (no live workers)")}
		return
	}
	// Range-validate against the staged future: committed view plus every
	// vertex an earlier staged, sealed, or in-commit op will add.
	n := c.view.NumVertices() + c.pendingNewV
	if c.commitBatch != nil {
		n += len(c.commitBatch.NewOwners)
	}
	for _, sb := range c.sealed {
		n += len(sb.batch.NewOwners)
	}
	nAfter := n
	var err error
	for i, op := range req.ops {
		if nAfter, err = op.Validate(nAfter); err != nil {
			req.ch <- MutationResult{Err: fmt.Errorf("op %d: %w", i, err)}
			return
		}
	}
	c.pendingOps = append(c.pendingOps, req.ops...)
	c.pendingNewV += nAfter - n
	c.pendingMuts = append(c.pendingMuts, pendingMut{n: len(req.ops), ch: req.ch})
	if c.firstOpAt.IsZero() {
		c.firstOpAt = c.cfg.Clock()
	}
	c.maybeCommit(c.cfg.Clock())
}

// maybeCommit commits the staged batch once it is old or big enough,
// through the path the configuration selected.
func (c *Controller) maybeCommit(now time.Time) {
	if c.terminal || len(c.pendingOps) == 0 {
		return
	}
	if len(c.pendingOps) < c.cfg.MaxBatchOps && now.Sub(c.firstOpAt) < c.cfg.CommitEvery {
		return
	}
	if c.cfg.BarrierCommit {
		// Baseline: one commit at a time, under a global barrier that needs
		// phaseRun to start.
		if c.phase != phaseRun || c.commitBatch != nil {
			return
		}
		c.startCommit()
		return
	}
	// Pipelined: sealing needs no barrier, but recovery is still resolving
	// who is alive (new-vertex placement and the round's version-equality
	// check both depend on it), and the in-flight cap bounds queued fsyncs.
	if c.phase == phaseRecover || len(c.sealed) >= maxSealedInFlight {
		return
	}
	c.sealPipelined()
}

// assignNewOwners places each AddVertex of ops on the least-loaded live
// worker, counting vertices that earlier sealed-but-unapplied batches will
// add.
func (c *Controller) assignNewOwners(ops []delta.Op) []partition.WorkerID {
	var owners []partition.WorkerID
	counts := append([]int64(nil), c.vertCount...)
	for _, sb := range c.sealed {
		for _, o := range sb.batch.NewOwners {
			counts[o]++
		}
	}
	for _, op := range ops {
		if op.Kind != delta.OpAddVertex {
			continue
		}
		best := -1
		for w := 0; w < c.cfg.K; w++ {
			if c.deadWorkers[partition.WorkerID(w)] {
				continue
			}
			if best < 0 || counts[w] < counts[best] {
				best = w
			}
		}
		owners = append(owners, partition.WorkerID(best))
		counts[best]++
	}
	return owners
}

// sealPipelined seals the staged ops into version sealedHead+1 and hands
// the batch to the WAL group committer; application happens when the
// shared fsync acks through walAckCh. Without a WAL there is nothing to
// wait for — a synthetic completion rides the same channel so the apply
// path (and its fatal-error handling) stays single.
func (c *Controller) sealPipelined() {
	owners := c.assignNewOwners(c.pendingOps)
	c.sealedHead++
	sb := &sealedBatch{
		batch: &protocol.DeltaBatch{
			Version:   c.sealedHead,
			Ops:       c.pendingOps,
			NewOwners: owners,
		},
		muts:     c.pendingMuts,
		sealedAt: time.Now(),
	}
	c.sealed = append(c.sealed, sb)
	c.sealedInFlight.Store(int64(len(c.sealed)))
	c.pendingOps, c.pendingMuts, c.pendingNewV, c.firstOpAt = nil, nil, 0, time.Time{}
	if c.cfg.WAL != nil {
		c.cfg.WAL.Enqueue(sb.batch.Version, sb.batch.Ops, c.walAckCh)
		return
	}
	c.walAckCh <- wal.AppendAck{Version: sb.batch.Version, GroupSize: 1, First: true}
}

// onWalAck receives one group-commit completion in the event loop: the
// batch at the head of the sealed FIFO is durable (acks arrive in version
// order) and can be applied — unless a recovery round is holding the
// committed version still, in which case the completion queues until
// resume.
func (c *Controller) onWalAck(ack wal.AppendAck) error {
	if ack.Err != nil {
		// The WAL could not make the batch durable (or closed under us).
		// Acknowledging an op the disk never saw would break the restart
		// contract, so the engine stops loudly; the sealed callers get
		// explicit errors from the shutdown path.
		return fmt.Errorf("controller: wal append version %d: %w", ack.Version, ack.Err)
	}
	if c.terminal || len(c.sealed) == 0 {
		// Terminal teardown already failed the sealed callers: the batch is
		// durable but will never be acknowledged (a restart may recover it,
		// which the contract allows — durable-but-unacked may survive).
		return nil
	}
	if ack.First && c.cfg.WAL != nil {
		d := time.Duration(ack.FsyncUS) * time.Microsecond
		if co := c.obs; co != nil {
			co.walFsyncSeconds.Observe(d.Seconds())
			co.walFsyncCount.Inc()
			co.fsyncBatchSize.Observe(float64(ack.GroupSize))
		}
		c.cfg.Monitor.ObserveFsync(d)
	}
	if c.phase == phaseRecover {
		// Applying would move the committed version mid-round, under the
		// PartitionAck equality check; resume drains the queue once the
		// live set settled.
		c.durableQ = append(c.durableQ, ack)
		return nil
	}
	return c.applyDurable(ack)
}

// drainDurable applies completions buffered during a recovery round.
// Called from resume, after restarted queries re-pinned the recovered
// version — per-link FIFO then guarantees their ExecuteQuery precedes
// these batches' DeltaBatch broadcasts on every link.
func (c *Controller) drainDurable() error {
	for len(c.durableQ) > 0 {
		ack := c.durableQ[0]
		c.durableQ = c.durableQ[1:]
		if err := c.applyDurable(ack); err != nil {
			return err
		}
	}
	return nil
}

// applyDurable applies the durable head of the sealed FIFO: advance the
// controller view, publish the version, broadcast the batch off-barrier,
// and acknowledge the callers. Running queries are untouched — they hold
// pinned snapshots.
func (c *Controller) applyDurable(ack wal.AppendAck) error {
	sb := c.sealed[0]
	if sb.batch.Version != ack.Version {
		return fmt.Errorf("controller: wal acked version %d, expected %d", ack.Version, sb.batch.Version)
	}
	batch := sb.batch
	nv, statuses, err := c.view.Apply(batch.Ops)
	if err != nil {
		// The batch was validated when staged; failing here means the
		// durable log and the in-memory chain diverged — fatal.
		return fmt.Errorf("controller: committed batch %d failed to apply: %w", batch.Version, err)
	}
	c.view = nv
	c.curView.Store(nv)
	c.graphVersion.Store(batch.Version)
	c.views.Publish(nv)
	preBytes := c.deltaLog.Bytes()
	if err := c.deltaLog.Append(batch.Version, batch.Ops); err != nil {
		// Impossible: versions apply contiguously from this one loop.
		return fmt.Errorf("controller: %w", err)
	}
	if c.cfg.WAL != nil && faultpoint.Hit(faultpoint.WALAppend) {
		// Simulated crash between the group fsync and the ack: the batch is
		// durable but nobody was told — restart must recover it. The batch
		// stays at the head of the sealed FIFO so the shutdown path fails
		// its callers explicitly ("batch state unknown").
		return faultpoint.ErrKilled
	}
	// Past the last fatal exit: the batch leaves the FIFO and its callers
	// get acknowledged.
	c.sealed = c.sealed[1:]
	c.sealedInFlight.Store(int64(len(c.sealed)))
	c.snapOps += len(batch.Ops)
	c.snapBytes += c.deltaLog.Bytes() - preBytes
	c.updateLogMirrors()
	c.maybeCheckpoint(c.cfg.Clock())
	c.owner = append(c.owner, batch.NewOwners...)
	for _, o := range batch.NewOwners {
		c.vertCount[o]++
	}
	// Off-barrier version bump: workers apply the batch between supersteps
	// and publish it into their view registries; queries in flight keep
	// their pinned snapshots. Broadcast ordering relative to ExecuteQuery
	// on each link is what makes every pin resolvable (see startQuery).
	c.broadcast(batch)
	i := 0
	for _, pm := range sb.muts {
		applied, noops := 0, 0
		for j := 0; j < pm.n; j++ {
			if statuses[i+j] == delta.OpNoOp {
				noops++
			} else {
				applied++
			}
		}
		i += pm.n
		pm.ch <- MutationResult{Version: batch.Version, Applied: applied, NoOps: noops}
	}
	if co := c.obs; co != nil {
		co.commitSeconds.Observe(time.Since(sb.sealedAt).Seconds())
	}
	// A seal may have been held back by the in-flight cap.
	c.maybeCommit(c.cfg.Clock())
	return nil
}

// startCommit (barrier mode) seals the staged ops into the next version's
// DeltaBatch and begins the global barrier that will broadcast it.
func (c *Controller) startCommit() {
	c.commitBatch = &protocol.DeltaBatch{
		Version:   c.graphVersion.Load() + 1,
		Ops:       c.pendingOps,
		NewOwners: c.assignNewOwners(c.pendingOps),
	}
	c.commitMuts = c.pendingMuts
	c.pendingOps, c.pendingMuts, c.pendingNewV, c.firstOpAt = nil, nil, 0, time.Time{}
	c.commitStartAt = time.Now()
	c.beginGlobalBarrier(nil)
}

// sendCommit broadcasts the sealed batch (phase draining → delta commit);
// the network is quiet, so workers apply it between supersteps.
func (c *Controller) sendCommit() {
	c.enterPhase(phaseDeltaCommit)
	c.deltaAcks = 0
	c.broadcast(c.commitBatch)
}

// onDeltaAck collects worker acknowledgements. In barrier mode the commit
// completes once every live worker applied the batch; in pipelined mode
// commits never wait for acks — they only feed replication-lag accounting.
func (c *Controller) onDeltaAck(m *protocol.DeltaAck) error {
	if !c.cfg.BarrierCommit {
		if int(m.W) < len(c.ackVersion) && m.Version > c.ackVersion[m.W] {
			c.ackVersion[m.W] = m.Version
			min := uint64(math.MaxUint64)
			for w, v := range c.ackVersion {
				if c.deadWorkers[partition.WorkerID(w)] {
					continue
				}
				if v < min {
					min = v
				}
			}
			if min != math.MaxUint64 {
				c.minAckedVersion.Store(min)
			}
		}
		return nil
	}
	if c.phase != phaseDeltaCommit || c.commitBatch == nil || m.Version != c.commitBatch.Version {
		// Not a protocol violation: recovery aborts and retries commits, so
		// an ack from before the abort can surface in any later phase.
		return nil
	}
	c.deltaAcks++
	if c.deltaAcks < c.liveCount() {
		return nil
	}
	if err := c.applyCommit(); err != nil {
		return err
	}
	return c.issueMoves()
}

// applyCommit (barrier mode) applies the acknowledged batch to the
// controller's view and delivers per-caller results.
func (c *Controller) applyCommit() error {
	batch := c.commitBatch
	nv, statuses, err := c.view.Apply(batch.Ops)
	if err != nil {
		// The batch was validated when staged; failing here means the
		// replicas that just acked diverged from us — fatal.
		return fmt.Errorf("controller: committed batch %d failed to apply: %w", batch.Version, err)
	}
	c.view = nv
	c.curView.Store(nv)
	c.graphVersion.Store(batch.Version)
	c.views.Publish(nv)
	c.sealedHead = batch.Version
	preBytes := c.deltaLog.Bytes()
	if err := c.deltaLog.Append(batch.Version, batch.Ops); err != nil {
		// Impossible: versions commit contiguously from this one loop.
		return fmt.Errorf("controller: %w", err)
	}
	// Durability point: the batch reaches the write-ahead log — fsynced —
	// before any caller is told it committed. A WAL that cannot take the
	// append is fatal: acknowledging an op the disk never saw would break
	// the restart contract, so the engine stops loudly instead (the
	// callers then see an explicit "batch state unknown" error).
	if c.cfg.WAL != nil {
		fsyncStart := time.Now()
		if err := c.cfg.WAL.Append(batch.Version, batch.Ops); err != nil {
			return fmt.Errorf("controller: %w", err)
		}
		fsyncEnd := time.Now()
		if co := c.obs; co != nil {
			co.walFsyncSeconds.Observe(fsyncEnd.Sub(fsyncStart).Seconds())
			co.walFsyncCount.Inc()
			co.fsyncBatchSize.Observe(1)
		}
		c.spanActiveQueries("wal/fsync", fsyncStart, fsyncEnd,
			map[string]any{"version": batch.Version, "ops": len(batch.Ops)})
		c.cfg.Monitor.ObserveFsync(fsyncEnd.Sub(fsyncStart))
		if faultpoint.Hit(faultpoint.WALAppend) {
			// Simulated crash between the fsync and the ack: the batch is
			// durable but nobody was told — restart must recover it.
			return faultpoint.ErrKilled
		}
	}
	c.snapOps += len(batch.Ops)
	c.snapBytes += c.deltaLog.Bytes() - preBytes
	c.updateLogMirrors()
	// Arm a checkpoint if the log grew past the policy. The barrier only
	// pins the immutable view here; the O(V+E) fold runs on the background
	// cutter, so commit latency no longer scales with graph size.
	c.maybeCheckpoint(c.cfg.Clock())
	c.owner = append(c.owner, batch.NewOwners...)
	for _, o := range batch.NewOwners {
		c.vertCount[o]++
	}
	i := 0
	for _, pm := range c.commitMuts {
		applied, noops := 0, 0
		for j := 0; j < pm.n; j++ {
			if statuses[i+j] == delta.OpNoOp {
				noops++
			} else {
				applied++
			}
		}
		i += pm.n
		pm.ch <- MutationResult{Version: batch.Version, Applied: applied, NoOps: noops}
	}
	c.commitBatch, c.commitMuts = nil, nil
	if co := c.obs; co != nil && !c.commitStartAt.IsZero() {
		co.commitSeconds.Observe(time.Since(c.commitStartAt).Seconds())
	}
	c.commitStartAt = time.Time{}
	return nil
}
