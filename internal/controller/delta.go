package controller

import (
	"fmt"
	"time"

	"qgraph/internal/delta"
	"qgraph/internal/faultpoint"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
)

// This file is the controller side of the streaming-update data plane
// (internal/delta): Mutate calls stage operations into a pending batch;
// the batch commits under the global STOP/START barrier — the same
// machinery that executes Q-cut moves — while the vertex-message network
// is provably quiet. Every node (controller and workers) applies the same
// batch between supersteps, so queries always run against one consistent
// graph version and the serving layer can invalidate its result cache
// exactly at the version bump.

// onMutate validates and stages one client batch. During a recovery
// episode the batch stays staged (the commit barrier needs phaseRun) and
// commits once the live set settles — callers see latency, not failure.
func (c *Controller) onMutate(req mutateReq) {
	if c.terminal {
		req.ch <- MutationResult{Err: fmt.Errorf("controller: degraded (no live workers)")}
		return
	}
	// Range-validate against the staged future: committed view plus every
	// vertex an earlier staged (or in-commit) op will add.
	n := c.view.NumVertices() + c.pendingNewV
	if c.commitBatch != nil {
		n += len(c.commitBatch.NewOwners)
	}
	nAfter := n
	var err error
	for i, op := range req.ops {
		if nAfter, err = op.Validate(nAfter); err != nil {
			req.ch <- MutationResult{Err: fmt.Errorf("op %d: %w", i, err)}
			return
		}
	}
	c.pendingOps = append(c.pendingOps, req.ops...)
	c.pendingNewV += nAfter - n
	c.pendingMuts = append(c.pendingMuts, pendingMut{n: len(req.ops), ch: req.ch})
	if c.firstOpAt.IsZero() {
		c.firstOpAt = c.cfg.Clock()
	}
	c.maybeCommit(c.cfg.Clock())
}

// maybeCommit starts a commit barrier once the staged batch is old or big
// enough and no other barrier is running.
func (c *Controller) maybeCommit(now time.Time) {
	if c.phase != phaseRun || c.terminal || c.commitBatch != nil || len(c.pendingOps) == 0 {
		return
	}
	if len(c.pendingOps) < c.cfg.MaxBatchOps && now.Sub(c.firstOpAt) < c.cfg.CommitEvery {
		return
	}
	c.startCommit()
}

// startCommit seals the staged ops into the next version's DeltaBatch —
// assigning each new vertex to the least-loaded worker — and begins the
// global barrier that will broadcast it.
func (c *Controller) startCommit() {
	var owners []partition.WorkerID
	counts := append([]int64(nil), c.vertCount...)
	for _, op := range c.pendingOps {
		if op.Kind != delta.OpAddVertex {
			continue
		}
		best := -1
		for w := 0; w < c.cfg.K; w++ {
			if c.deadWorkers[partition.WorkerID(w)] {
				continue
			}
			if best < 0 || counts[w] < counts[best] {
				best = w
			}
		}
		owners = append(owners, partition.WorkerID(best))
		counts[best]++
	}
	c.commitBatch = &protocol.DeltaBatch{
		Version:   c.graphVersion.Load() + 1,
		Ops:       c.pendingOps,
		NewOwners: owners,
	}
	c.commitMuts = c.pendingMuts
	c.pendingOps, c.pendingMuts, c.pendingNewV, c.firstOpAt = nil, nil, 0, time.Time{}
	c.commitStartAt = time.Now()
	c.beginGlobalBarrier(nil)
}

// sendCommit broadcasts the sealed batch (phase draining → delta commit);
// the network is quiet, so workers apply it between supersteps.
func (c *Controller) sendCommit() {
	c.enterPhase(phaseDeltaCommit)
	c.deltaAcks = 0
	c.broadcast(c.commitBatch)
}

// onDeltaAck collects worker acknowledgements; once every live worker
// applied the batch, the controller applies it to its own view, publishes
// the new version, and continues the barrier (moves, then resume).
func (c *Controller) onDeltaAck(m *protocol.DeltaAck) error {
	if c.phase != phaseDeltaCommit || c.commitBatch == nil || m.Version != c.commitBatch.Version {
		// Not a protocol violation: recovery aborts and retries commits, so
		// an ack from before the abort can surface in any later phase.
		return nil
	}
	c.deltaAcks++
	if c.deltaAcks < c.liveCount() {
		return nil
	}
	if err := c.applyCommit(); err != nil {
		return err
	}
	c.issueMoves()
	return nil
}

// applyCommit applies the acknowledged batch to the controller's view and
// delivers per-caller results.
func (c *Controller) applyCommit() error {
	batch := c.commitBatch
	nv, statuses, err := c.view.Apply(batch.Ops)
	if err != nil {
		// The batch was validated when staged; failing here means the
		// replicas that just acked diverged from us — fatal.
		return fmt.Errorf("controller: committed batch %d failed to apply: %w", batch.Version, err)
	}
	c.view = nv
	c.curView.Store(nv)
	c.graphVersion.Store(batch.Version)
	preBytes := c.deltaLog.Bytes()
	if err := c.deltaLog.Append(batch.Version, batch.Ops); err != nil {
		// Impossible: versions commit contiguously from this one loop.
		return fmt.Errorf("controller: %w", err)
	}
	// Durability point: the batch reaches the write-ahead log — fsynced —
	// before any caller is told it committed. A WAL that cannot take the
	// append is fatal: acknowledging an op the disk never saw would break
	// the restart contract, so the engine stops loudly instead (the
	// callers then see an explicit "batch state unknown" error).
	if c.cfg.WAL != nil {
		fsyncStart := time.Now()
		if err := c.cfg.WAL.Append(batch.Version, batch.Ops); err != nil {
			return fmt.Errorf("controller: %w", err)
		}
		fsyncEnd := time.Now()
		if co := c.obs; co != nil {
			co.walFsyncSeconds.Observe(fsyncEnd.Sub(fsyncStart).Seconds())
			co.walFsyncCount.Inc()
		}
		c.spanActiveQueries("wal/fsync", fsyncStart, fsyncEnd,
			map[string]any{"version": batch.Version, "ops": len(batch.Ops)})
		c.cfg.Monitor.ObserveFsync(fsyncEnd.Sub(fsyncStart))
		if faultpoint.Hit(faultpoint.WALAppend) {
			// Simulated crash between the fsync and the ack: the batch is
			// durable but nobody was told — restart must recover it.
			return faultpoint.ErrKilled
		}
	}
	c.snapOps += len(batch.Ops)
	c.snapBytes += c.deltaLog.Bytes() - preBytes
	c.updateLogMirrors()
	// Arm a checkpoint if the log grew past the policy. The barrier only
	// pins the immutable view here; the O(V+E) fold runs on the background
	// cutter, so commit latency no longer scales with graph size.
	c.maybeCheckpoint(c.cfg.Clock())
	c.owner = append(c.owner, batch.NewOwners...)
	for _, o := range batch.NewOwners {
		c.vertCount[o]++
	}
	i := 0
	for _, pm := range c.commitMuts {
		applied, noops := 0, 0
		for j := 0; j < pm.n; j++ {
			if statuses[i+j] == delta.OpNoOp {
				noops++
			} else {
				applied++
			}
		}
		i += pm.n
		pm.ch <- MutationResult{Version: batch.Version, Applied: applied, NoOps: noops}
	}
	c.commitBatch, c.commitMuts = nil, nil
	if co := c.obs; co != nil && !c.commitStartAt.IsZero() {
		co.commitSeconds.Observe(time.Since(c.commitStartAt).Seconds())
	}
	c.commitStartAt = time.Time{}
	return nil
}
