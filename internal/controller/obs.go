package controller

import (
	"fmt"
	"sync/atomic"
	"time"

	"qgraph/internal/obs"
	"qgraph/internal/protocol"
)

// This file wires the controller into the observability substrate
// (internal/obs): per-query engine/superstep spans with per-worker
// children, barrier-phase spans and histograms, commit / WAL-fsync /
// snapshot-cut / recovery instrumentation. Everything degrades to no-ops
// when Config.Obs is nil — the hot path pays one nil check.

// phaseName names a barrier phase for metrics labels and span names.
func phaseName(p phase) string {
	switch p {
	case phaseRun:
		return "run"
	case phaseQuiesce:
		return "quiesce"
	case phaseStopping:
		return "stop"
	case phaseDraining:
		return "drain"
	case phaseDeltaCommit:
		return "delta-commit"
	case phaseMoving:
		return "move"
	case phaseScopeDrain:
		return "scope-drain"
	case phaseRecover:
		return "recovery"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// barrierBuckets resolve the short phase durations the global barrier
// produces (defaults start at 500µs, far above a quiesce on an idle
// engine).
var barrierBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// fsyncBatchBuckets resolve group-commit amortization: batches per fsync,
// up to the WAL's group cap.
var fsyncBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// ctlObs bundles the controller's metric instruments. A nil *ctlObs (no
// Config.Obs) makes every method a no-op.
type ctlObs struct {
	o *obs.Obs

	commitSeconds   *obs.Histogram
	walFsyncSeconds *obs.Histogram
	fsyncBatchSize  *obs.Histogram
	snapCutSeconds  *obs.Histogram
	barrierSeconds  map[phase]*obs.Histogram

	supersteps    []*obs.Counter // collected supersteps, per worker
	activeVerts   []*obs.Gauge   // last reported active vertices, per worker
	scopeVerts    []*obs.Gauge   // last reported total scope, per worker
	computeNS     []atomic.Int64 // cumulative compute wall time, per worker
	pingRTT       []*obs.Gauge   // last heartbeat round-trip time, per worker
	barrierCount  *obs.Counter
	barrierMoves  *obs.Counter
	walFsyncCount *obs.Counter
}

// newCtlObs registers the controller's instruments. Func-backed
// instruments read the exact sources /stats serializes (WAL stats,
// recovery counters, graph version), so the two endpoints cannot drift.
func newCtlObs(c *Controller) *ctlObs {
	o := c.cfg.Obs
	if o == nil || o.Metrics == nil {
		return nil
	}
	m := o.Metrics
	co := &ctlObs{
		o:               o,
		commitSeconds:   m.Histogram("qgraph_commit_seconds", "", "end-to-end delta commit latency (seal to applied)", nil),
		walFsyncSeconds: m.Histogram("qgraph_wal_fsync_seconds", "", "WAL append+fsync latency per committed batch", barrierBuckets),
		fsyncBatchSize:  m.Histogram("qgraph_wal_fsync_batch_size", "", "mutation batches amortized per WAL group-commit fsync", fsyncBatchBuckets),
		snapCutSeconds:  m.Histogram("qgraph_snapshot_cut_seconds", "", "background snapshot cut duration (materialize+persist)", nil),
		barrierSeconds:  make(map[phase]*obs.Histogram),
		barrierCount:    m.Counter("qgraph_barrier_total", "", "global STOP/START barriers executed"),
		barrierMoves:    m.Counter("qgraph_barrier_moves_total", "", "scope-move directives executed under barriers"),
		walFsyncCount:   m.Counter("qgraph_wal_fsync_total", "", "WAL fsyncs performed on the commit path"),
		supersteps:      make([]*obs.Counter, c.cfg.K),
		activeVerts:     make([]*obs.Gauge, c.cfg.K),
		scopeVerts:      make([]*obs.Gauge, c.cfg.K),
		computeNS:       make([]atomic.Int64, c.cfg.K),
		pingRTT:         make([]*obs.Gauge, c.cfg.K),
	}
	for _, p := range []phase{phaseQuiesce, phaseStopping, phaseDraining, phaseDeltaCommit, phaseMoving, phaseScopeDrain, phaseRecover} {
		co.barrierSeconds[p] = m.Histogram("qgraph_barrier_phase_seconds",
			`phase="`+phaseName(p)+`"`, "time spent per global-barrier phase", barrierBuckets)
	}
	for w := 0; w < c.cfg.K; w++ {
		lbl := fmt.Sprintf(`worker="%d"`, w)
		co.supersteps[w] = m.Counter("qgraph_worker_supersteps_total", lbl,
			"supersteps collected from each worker's barrier reports")
		co.activeVerts[w] = m.Gauge("qgraph_worker_active_vertices", lbl,
			"active vertices in the worker's last reported superstep")
		co.scopeVerts[w] = m.Gauge("qgraph_worker_scope_vertices", lbl,
			"vertices in the worker's last reported query scope")
		co.pingRTT[w] = m.Gauge("qgraph_worker_ping_rtt_seconds", lbl,
			"heartbeat round-trip time of the worker's last current-round pong")
		wi := w
		m.CounterFunc("qgraph_worker_compute_seconds_total", lbl,
			"cumulative superstep compute wall time reported by the worker",
			func() float64 { return float64(co.computeNS[wi].Load()) / 1e9 })
	}
	m.GaugeFunc("qgraph_graph_version", "", "committed graph version (mutation batches applied)",
		func() float64 { return float64(c.graphVersion.Load()) })
	m.GaugeFunc("qgraph_repartition_epoch", "", "executed repartitioning barriers",
		func() float64 { return float64(c.repartEpoch.Load()) })
	m.CounterFunc("qgraph_recovery_episodes_total", "", "completed worker-failure recovery episodes",
		func() float64 { return float64(c.recCtr.Snapshot().Recoveries) })
	m.GaugeFunc("qgraph_delta_log_ops", "", "committed ops retained in the delta log since the durable checkpoint",
		func() float64 { return float64(c.logOps.Load()) })
	m.GaugeFunc("qgraph_wal_appended_bytes_total", "", "bytes appended to the durable WAL",
		func() float64 { return float64(c.WALStats().AppendedBytes) })
	m.GaugeFunc(`qgraph_snapshot_last_cut_age_seconds`, "", "seconds since the last completed snapshot cut (-1 before the first)",
		func() float64 {
			ns := c.lastCutUnixNS.Load()
			if ns == 0 {
				return -1
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
	return co
}

// observeRTT records a worker's heartbeat round-trip time.
func (co *ctlObs) observeRTT(w int, rtt time.Duration) {
	if co == nil || w < 0 || w >= len(co.pingRTT) {
		return
	}
	co.pingRTT[w].Set(rtt.Seconds())
}

// onReport folds one BarrierSynch into the per-worker instruments.
func (co *ctlObs) onReport(m *protocol.BarrierSynch) {
	if co == nil {
		return
	}
	w := int(m.W)
	if w < 0 || w >= len(co.supersteps) {
		return
	}
	co.supersteps[w].Add(int64(m.Step-m.FromStep) + 1)
	co.activeVerts[w].Set(float64(m.Processed))
	co.scopeVerts[w].Set(float64(m.ScopeSize))
	co.computeNS[w].Add(m.ComputeNS)
}

// tracer returns the process tracer, nil when tracing is off.
func (c *Controller) tracer() *obs.Tracer {
	if c.cfg.Obs == nil {
		return nil
	}
	return c.cfg.Obs.Tracer
}

// enterPhase moves the barrier state machine to next, attributing the
// time spent in the phase being left to the phase histogram and — for
// every active traced query — to a "barrier/<phase>" span under its
// engine span. Must be the only way c.phase changes once the controller
// runs.
func (c *Controller) enterPhase(next phase) {
	now := time.Now()
	prev := c.phase
	if prev != next && prev != phaseRun {
		if co := c.obs; co != nil {
			if h := co.barrierSeconds[prev]; h != nil {
				h.Observe(now.Sub(c.phaseStart).Seconds())
			}
		}
		c.spanActiveQueries("barrier/"+phaseName(prev), c.phaseStart, now, nil)
	}
	if prev == phaseRun && next != phaseRun {
		if co := c.obs; co != nil {
			co.barrierCount.Inc()
		}
	}
	c.phase = next
	c.phaseStart = now
}

// spanActiveQueries attaches a completed span to every active traced
// query, under its engine span — barrier phases, WAL fsyncs, and
// snapshot cuts are engine-global events, so each in-flight query's
// trace shows where its wall time went.
func (c *Controller) spanActiveQueries(name string, start, end time.Time, attrs map[string]any) {
	if c.tracer() == nil {
		return
	}
	for _, ctl := range c.queries {
		if ctl.trace == nil {
			continue
		}
		ctl.trace.SpanAt(ctl.engSpan, name, start, end, attrs)
	}
}

// beginQueryTrace looks up the trace the serving layer bound to this
// query and opens its engine span (the controller-side share of the
// tree).
func (c *Controller) beginQueryTrace(ctl *qctl) {
	tr := c.tracer().ByQuery(int64(ctl.spec.ID))
	if tr == nil {
		return
	}
	ctl.trace = tr
	ctl.engSpan = tr.StartSpan(nil, "engine")
}

// beginStepSpan opens the span for the superstep just released.
func (c *Controller) beginStepSpan(ctl *qctl, step int32) {
	if ctl.trace == nil {
		return
	}
	ctl.stepSpan = ctl.trace.StartSpan(ctl.engSpan, fmt.Sprintf("superstep %d", step))
}

// endStepSpan closes the current superstep span, adding one child span
// per worker report carrying the worker's share of the computation
// (compute time, processed vertices, batches sent). Worker spans are
// placed at the superstep's start; their durations are the worker-side
// measurements shipped in BarrierSynch.ComputeNS.
func (c *Controller) endStepSpan(ctl *qctl, collectedStep int32) {
	if ctl.stepSpan == nil {
		return
	}
	now := time.Now()
	for w, r := range ctl.reports {
		var sent int32
		for _, nb := range r.SentBatches {
			sent += nb
		}
		start := now.Add(-time.Duration(r.ComputeNS))
		ctl.trace.SpanAt(ctl.stepSpan, fmt.Sprintf("worker %d", w), start, now, map[string]any{
			"processed":    r.Processed,
			"sent_batches": sent,
			"local_iters":  r.LocalIters,
		})
	}
	ctl.stepSpan.SetAttr("step", collectedStep)
	ctl.stepSpan.End()
	ctl.stepSpan = nil
}

// abortStepSpan closes a superstep span whose round was discarded
// (recovery restart, terminal failure) — the round's reports never
// arrive, so endStepSpan never would. Without this the span stays open
// forever in the completed trace: a leak, and a lie about where time
// went.
func (c *Controller) abortStepSpan(ctl *qctl, reason string) {
	if ctl.stepSpan == nil {
		return
	}
	ctl.stepSpan.SetAttr("aborted", reason)
	ctl.stepSpan.End()
	ctl.stepSpan = nil
}

// endQueryTrace closes the engine span when the query finishes.
func (c *Controller) endQueryTrace(ctl *qctl, reason protocol.FinishReason, res Result) {
	if ctl.trace == nil {
		return
	}
	ctl.stepSpan.End()
	ctl.stepSpan = nil
	ctl.engSpan.SetAttr("reason", reason.String())
	ctl.engSpan.SetAttr("supersteps", res.Supersteps)
	ctl.engSpan.SetAttr("local_iters", res.LocalIters)
	ctl.engSpan.SetAttr("touched", res.Touched)
	ctl.engSpan.SetAttr("workers", res.Workers)
	ctl.engSpan.End()
}
