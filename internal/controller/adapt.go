package controller

import (
	"time"

	"qgraph/internal/partition"
	"qgraph/internal/qcut"
	"qgraph/internal/query"
)

// This file is the MAPE loop of Sec. 3.4: Monitor (statistics arrive as
// barrier piggybacks, handled in barrier.go), Analyze (average query
// locality against the threshold Φ), Plan (run Q-cut asynchronously on a
// snapshot of the high-level view), Execute (global barrier with move
// directives, global.go).

// onTick runs the Analyze step. Repartitioning triggers when the
// statistics indicate the current partitioning is suboptimal (Sec. 3.4):
// either the average query locality fell below Φ, or the high-level
// workload measure Lw = (|V(w)| + Σ|LS(q,w)|)/2 (Appendix A.1) exceeds the
// balance slack δ — the straggler signal that lets Q-cut improve even on
// the high-locality Domain partitioning (Figs. 5–6). The trigger uses the
// same load measure Q-cut optimizes; live traffic imbalance from skewed
// hotspot populations is not actionable under a locality objective and
// must not cause repartitioning loops.
func (c *Controller) onTick() {
	now := c.cfg.Clock()
	c.heartbeat(now)
	if c.phase == phaseRecover && c.recState == recWaitHello && !c.rec.Waiting(now) {
		// The respawn hello window expired; hand the partition to the
		// survivors.
		c.proceedRecovery()
	}
	c.maybeCommit(now)
	c.watchStalls(now)
	if !c.cfg.Adapt || c.phase != phaseRun || c.qcutRunning {
		return
	}
	// Q-cut is live-set-aware: a shrunken cluster keeps adapting over the
	// survivors (dead workers are masked out of the snapshot), and a
	// rejoined-empty worker shows up as the least-loaded target — the
	// imbalance trigger below then actively re-loads it instead of waiting
	// for organic moves.
	imbalanced := c.lwImbalance() > c.cfg.Delta
	if c.curCooldown == 0 {
		c.curCooldown = c.cfg.Cooldown
	}
	if now.Sub(c.lastRepart) < c.curCooldown {
		return
	}
	c.pruneWindow(now)
	if len(c.window) < c.cfg.MinWindowQueries {
		return
	}
	loc := c.avgLocality()
	if loc >= c.cfg.Phi && !imbalanced {
		c.curCooldown = c.cfg.Cooldown
		return
	}
	// Backoff when the previous repartitioning did not move the needle.
	if c.repartitions > 0 {
		if loc < c.trigLocality+0.02 {
			c.curCooldown = min(2*c.curCooldown, 16*c.cfg.Cooldown)
		} else {
			c.curCooldown = c.cfg.Cooldown
		}
	}
	c.trigLocality = loc
	// Plan: run Q-cut on a snapshot, asynchronously — the partitioning
	// latency is hidden behind normal query processing (Sec. 3.4).
	in := c.snapshot(now)
	c.qcutRunning = true
	go func() {
		c.qcutCh <- qcut.Run(in)
	}()
}

// lwImbalance is the straggler signal: the relative spread of the paper's
// combined load measure Lw = (|V(w)| + Σ_q |LS(q,w)|)/2 computed from the
// controller's high-level view (windowed and active scope sizes), with the
// scope term normalized exactly as in Q-cut's balance constraint so the
// trigger never demands a balance Q-cut cannot deliver.
func (c *Controller) lwImbalance() float64 {
	scope := make([]float64, c.cfg.K)
	var totalV, totalScope float64
	for w := 0; w < c.cfg.K; w++ {
		if c.deadWorkers[partition.WorkerID(w)] {
			continue
		}
		totalV += float64(c.vertCount[w])
	}
	// Scope mass the window still attributes to dead workers describes
	// state the failure destroyed; counting it would deflate the
	// normalization scale and under-report the live spread.
	for _, we := range c.window {
		for w, sz := range we.sizes {
			if c.deadWorkers[partition.WorkerID(w)] {
				continue
			}
			scope[w] += float64(sz)
			totalScope += float64(sz)
		}
	}
	for _, ctl := range c.queries {
		for w, sz := range ctl.scopeSizes {
			if c.deadWorkers[partition.WorkerID(w)] {
				continue
			}
			scope[w] += float64(sz)
			totalScope += float64(sz)
		}
	}
	scale := 1.0
	if totalScope > totalV && totalScope > 0 {
		scale = totalV / totalScope
	}
	// Dead workers carry no load by definition; including them would pin
	// the spread at 1 and make the trigger fire forever over an imbalance
	// no scope move can repair.
	var minL, maxL float64
	first := true
	for w := 0; w < c.cfg.K; w++ {
		if c.deadWorkers[partition.WorkerID(w)] {
			continue
		}
		l := (float64(c.vertCount[w]) + scale*scope[w]) / 2
		if first || l < minL {
			minL = l
		}
		if first || l > maxL {
			maxL = l
		}
		first = false
	}
	if maxL <= 0 {
		return 0
	}
	return (maxL - minL) / maxL
}

// avgLocality is the Analyze metric: mean fraction of fully-local
// iterations over the queries in the monitoring window.
func (c *Controller) avgLocality() float64 {
	if len(c.window) == 0 {
		return 1
	}
	sum := 0.0
	for _, we := range c.window {
		sum += we.locality
	}
	return sum / float64(len(c.window))
}

// snapshot builds the Q-cut input from the high-level global view: scope
// size rows for windowed (finished) and active queries, aggregated
// intersections, and the authoritative per-worker vertex counts.
func (c *Controller) snapshot(now time.Time) qcut.Input {
	// Live-set mask: recovery destroyed whatever scope state the window
	// still attributes to dead workers, so their rows are zeroed and they
	// are invisible to Q-cut's balance constraint and move targets.
	alive := make([]bool, c.cfg.K)
	for w := 0; w < c.cfg.K; w++ {
		alive[w] = !c.deadWorkers[partition.WorkerID(w)]
	}
	maskRow := func(sizes []int64) []int64 {
		out := append([]int64(nil), sizes...)
		for w := range out {
			if !alive[w] {
				out[w] = 0
			}
		}
		return out
	}
	rows := make([]qcut.ScopeRow, 0, len(c.window)+len(c.queries))
	seen := make(map[query.ID]bool, len(c.window)+len(c.queries))
	for _, we := range c.window {
		rows = append(rows, qcut.ScopeRow{Q: we.q, Sizes: maskRow(we.sizes)})
		seen[we.q] = true
	}
	for q, ctl := range c.queries {
		if !seen[q] {
			rows = append(rows, qcut.ScopeRow{Q: q, Sizes: maskRow(ctl.scopeSizes)})
			seen[q] = true
		}
	}
	// Aggregate per-worker pairwise intersections over workers.
	agg := make(map[[2]query.ID]int64)
	for k, shared := range c.inter {
		if !seen[k.q1] || !seen[k.q2] {
			continue
		}
		agg[[2]query.ID{k.q1, k.q2}] += shared
	}
	inter := make([]qcut.Intersection, 0, len(agg))
	for pair, shared := range agg {
		inter = append(inter, qcut.Intersection{Q1: pair[0], Q2: pair[1], Shared: shared})
	}
	var deadline time.Time
	if c.cfg.QcutBudget > 0 {
		deadline = now.Add(c.cfg.QcutBudget)
	}
	return qcut.Input{
		K:              c.cfg.K,
		Scopes:         rows,
		Intersections:  inter,
		VertexCounts:   append([]int64(nil), c.vertCount...),
		Alive:          alive,
		Delta:          c.cfg.Delta,
		Deadline:       deadline,
		Seed:           c.cfg.Seed + uint64(c.epoch),
		NoClustering:   c.cfg.NoClustering,
		NoPerturbation: c.cfg.NoPerturbation,
	}
}

// onQcutDone is the Plan → Execute handoff: if the search found improving
// moves, execute them under a global barrier.
func (c *Controller) onQcutDone(res qcut.Result) {
	c.qcutRunning = false
	c.lastRepart = c.cfg.Clock()
	if c.phase != phaseRun {
		return
	}
	// A plan computed from a pre-failure snapshot may still reference a
	// worker that died meanwhile: a move from it can never be acknowledged
	// (the worker is fenced) and a move onto it would strand the scope.
	// Drop those directives and execute the rest — the next tick replans
	// over the current live set.
	moves := res.Moves[:0]
	for _, mv := range res.Moves {
		if c.deadWorkers[mv.From] || c.deadWorkers[mv.To] {
			continue
		}
		moves = append(moves, mv)
	}
	if len(moves) == 0 {
		return
	}
	c.beginGlobalBarrier(moves)
}
