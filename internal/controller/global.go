package controller

import (
	"fmt"

	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/qcut"
)

// This file implements the global barrier (STOP/START, Sec. 3.3) that
// executes Q-cut's move directives on a provably quiet network:
//
//	run → quiesce → stopping → draining → moving → scope-drain → run
//
// quiesce:     stop issuing releases; wait until no query has an
//	            outstanding superstep (workers finish what they compute).
// stopping:    GlobalStop → collect StopAcks with cumulative batch-send
//	            counters.
// draining:    DrainCheck with per-worker expected receive totals →
//	            DrainAcks prove every in-flight vertex batch arrived.
// moving:      MoveScope directives → MoveAcks report moved vertex ids;
//	            the controller updates its ownership table.
// scope-drain: OwnershipUpdate broadcast + scope-data DrainCheck →
//	            DrainAcks prove all ScopeData arrived.
// run:         GlobalStart, re-release all active queries, flush deferred
//	            schedules.

// beginGlobalBarrier starts the STOP sequence for a set of moves (which
// may be empty: a mutation-commit barrier carries its batch in
// c.commitBatch instead).
func (c *Controller) beginGlobalBarrier(moves []qcut.Move) {
	c.pendingMoves = moves
	c.barrierHadMoves = false
	c.enterPhase(phaseQuiesce)
	c.maybeStop()
}

// maybeStop transitions quiesce → stopping once no query is outstanding.
func (c *Controller) maybeStop() {
	if c.phase != phaseQuiesce {
		return
	}
	for _, ctl := range c.queries {
		if ctl.outstanding {
			return
		}
	}
	c.enterPhase(phaseStopping)
	c.epoch++
	c.stopAcks = make(map[partition.WorkerID][]uint64, c.cfg.K)
	c.broadcast(&protocol.GlobalStop{Epoch: c.epoch})
}

func (c *Controller) onStopAck(m *protocol.StopAck) error {
	if c.phase != phaseStopping || m.Epoch != c.epoch {
		return fmt.Errorf("controller: unexpected StopAck (phase %d epoch %d/%d)", c.phase, m.Epoch, c.epoch)
	}
	c.stopAcks[m.W] = m.SentTotals
	if len(c.stopAcks) < c.liveCount() {
		return nil
	}
	// All live workers stopped: every batch any of them will ever have
	// sent (up to this barrier) is accounted in the acks. Ask each to
	// confirm receipt of its column; fenced workers sent nothing in the
	// current recovery generation, so their column expectation is zero.
	c.enterPhase(phaseDraining)
	c.drainAcks = 0
	for w := 0; w < c.cfg.K; w++ {
		if c.deadWorkers[partition.WorkerID(w)] {
			continue
		}
		expect := make([]uint64, c.cfg.K)
		for src := 0; src < c.cfg.K; src++ {
			if acks, ok := c.stopAcks[partition.WorkerID(src)]; ok {
				expect[src] = acks[w]
			}
		}
		c.conn.Send(protocol.WorkerNode(partition.WorkerID(w)), &protocol.DrainCheck{
			Epoch: c.epoch, ExpectRecv: expect,
		})
	}
	return nil
}

func (c *Controller) onDrainAck(m *protocol.DrainAck) error {
	if m.Epoch != c.epoch {
		return fmt.Errorf("controller: stale DrainAck epoch %d/%d", m.Epoch, c.epoch)
	}
	switch c.phase {
	case phaseDraining:
		c.drainAcks++
		if c.drainAcks < c.liveCount() {
			return nil
		}
		// The network is quiet: apply a pending mutation commit first (the
		// graph version changes while no superstep runs), then the moves.
		if c.commitBatch != nil {
			c.sendCommit()
			return nil
		}
		return c.issueMoves()
	case phaseScopeDrain:
		c.drainAcks++
		if c.drainAcks < c.liveCount() {
			return nil
		}
		return c.resume()
	default:
		return fmt.Errorf("controller: DrainAck in phase %d", c.phase)
	}
}

// issueMoves sends the move directives (phase draining → moving), or skips
// straight to resume when there is nothing to do.
func (c *Controller) issueMoves() error {
	c.ownDeltaV = nil
	c.ownDeltaW = nil
	c.movesLeft = len(c.pendingMoves)
	if c.movesLeft == 0 {
		return c.resume()
	}
	c.barrierHadMoves = true
	c.enterPhase(phaseMoving)
	for _, mv := range c.pendingMoves {
		c.conn.Send(protocol.WorkerNode(mv.From), &protocol.MoveScope{
			Epoch: c.epoch, Q: mv.Q, To: mv.To,
		})
	}
	c.pendingMoves = nil
	return nil
}

func (c *Controller) onMoveAck(m *protocol.MoveAck) error {
	if c.phase != phaseMoving || m.Epoch != c.epoch {
		return fmt.Errorf("controller: unexpected MoveAck (phase %d epoch %d/%d)", c.phase, m.Epoch, c.epoch)
	}
	for _, v := range m.Vertices {
		if c.owner[v] == m.From {
			c.vertCount[m.From]--
			c.vertCount[m.To]++
		}
		c.owner[v] = m.To
		c.ownDeltaV = append(c.ownDeltaV, v)
		c.ownDeltaW = append(c.ownDeltaW, m.To)
	}
	if len(m.Vertices) > 0 {
		c.scopeExpect[m.To][m.From]++
	}
	// Keep the high-level view consistent with the executed move: the
	// whole local scope of the query relocated. Without this, the next
	// Q-cut snapshot would see a phantom split and issue pointless move
	// directives forever.
	if we := c.byQ[m.Q]; we != nil {
		we.sizes[m.To] += we.sizes[m.From]
		we.sizes[m.From] = 0
	}
	if ctl, ok := c.queries[m.Q]; ok {
		ctl.scopeSizes[m.To] += ctl.scopeSizes[m.From]
		ctl.scopeSizes[m.From] = 0
	}
	c.movesLeft--
	if c.movesLeft > 0 {
		return nil
	}
	// All moves executed. Broadcast the ownership delta, then verify every
	// ScopeData transfer arrived before restarting.
	c.enterPhase(phaseScopeDrain)
	c.drainAcks = 0
	if len(c.ownDeltaV) > 0 {
		c.broadcast(&protocol.OwnershipUpdate{
			Epoch: c.epoch, Vertices: c.ownDeltaV, Owners: c.ownDeltaW,
		})
	}
	for w := 0; w < c.cfg.K; w++ {
		if c.deadWorkers[partition.WorkerID(w)] {
			continue
		}
		c.conn.Send(protocol.WorkerNode(partition.WorkerID(w)), &protocol.DrainCheck{
			Epoch: c.epoch, Scope: true,
			ExpectRecv: append([]uint64(nil), c.scopeExpect[w]...),
		})
	}
	return nil
}

// resume ends the global barrier: START, re-release every active query to
// all live workers (scope moves may have relocated pending activations
// anywhere), and flush deferred schedules. After a recovery episode it
// additionally re-executes every active query from superstep 0: the dead
// worker took its share of their vertex state with it, so the whole query
// restarts against the recovered partitioning (the caller just waits
// longer).
func (c *Controller) resume() error {
	c.enterPhase(phaseRun)
	if c.barrierHadMoves {
		// Only barriers that executed scope moves count as repartitions;
		// mutation-commit barriers bump the graph version instead. Recovery
		// also lands here: its ownership rewrite must flush the serving
		// layer's result cache exactly once.
		c.repartitions++
		c.repartEpoch.Store(int64(c.repartitions))
	}
	c.broadcast(&protocol.GlobalStart{Epoch: c.epoch})
	restart := c.restartQueries
	c.restartQueries = false
	if restart {
		for _, ctl := range c.queries {
			if ctl.cancelled {
				continue // finished below instead of re-executed
			}
			c.resetQueryForRestart(ctl)
			c.broadcast(&protocol.ExecuteQuery{Spec: ctl.spec})
		}
	}
	if c.recovering {
		c.recovering = false
		c.publishHealth()
	}
	all := make(map[partition.WorkerID]bool, c.cfg.K)
	for w := 0; w < c.cfg.K; w++ {
		if !c.deadWorkers[partition.WorkerID(w)] {
			all[partition.WorkerID(w)] = true
		}
	}
	for _, ctl := range c.queries {
		if ctl.outstanding {
			// Cannot happen: quiesce guaranteed collection before STOP.
			continue
		}
		if ctl.cancelled {
			// Abandoned while the barrier was forming; finish instead of
			// re-releasing (deleting during range is safe in Go).
			c.finishQuery(ctl, protocol.FinishCancelled)
			continue
		}
		involved := make(map[partition.WorkerID]bool, len(all))
		for w := range all {
			involved[w] = true
		}
		c.release(ctl, ctl.step+1, involved, nil, true)
	}
	deferred := c.deferred
	c.deferred = nil
	for _, req := range deferred {
		c.startQuery(req)
	}
	// Pipelined commits that became durable while a recovery round held the
	// version still apply now: every restarted or deferred query above
	// pinned (and was broadcast at) the pre-drain version, so per-link FIFO
	// keeps their pins resolvable under these batches' version bumps.
	return c.drainDurable()
}
