package controller

import (
	"fmt"
	"time"

	"qgraph/internal/obs/health"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
	recovery "qgraph/internal/recover"
)

// This file is the controller side of worker failure recovery: the state
// machine that turns "a worker stopped answering heartbeats" into "every
// in-flight query completes anyway". It is woven into the global barrier
// machinery — recovery behaves like a forced STOP/START barrier whose
// membership shrinks (handoff) or is restored by a respawned worker
// (rejoin):
//
//	death → [await respawn hello] → plan ownership → RecoverStart /
//	PartitionGrant → collect PartitionAcks → retry aborted delta commit →
//	restart queries from superstep 0 → GlobalStart
//
// Recovery invariants:
//
//   - The dead worker is fenced immediately: every message from it is
//     dropped, so a falsely-declared-dead worker cannot corrupt the
//     reassigned partition.
//   - Flow-control counters reset symmetrically on every node, and the
//     worker data plane is generation-tagged, so in-flight traffic from
//     before the failure can neither deliver nor mis-count (the
//     "barrier drain" without the dead worker's cooperation).
//   - A delta batch caught mid-commit is rolled back everywhere it was
//     applied and re-committed after recovery: the commit outcome is
//     deterministic and its callers just see more latency.
//   - The repartition epoch bumps exactly once per episode (in resume),
//     flushing the serving layer's result cache.

// recoverState is the sub-state within phaseRecover.
type recoverState int

const (
	// recWaitHello defers the handoff while a respawn may still adopt the
	// dead worker's partition in place.
	recWaitHello recoverState = iota
	// recWaitAcks means the ownership map is out and the round completes
	// when every live worker acknowledged the generation.
	recWaitAcks
)

// onWorkerDead starts (or extends) a recovery episode. Called by the
// heartbeat monitor exactly once per declared death.
func (c *Controller) onWorkerDead(w partition.WorkerID) {
	if c.deadWorkers[w] || c.terminal {
		return
	}
	c.deadWorkers[w] = true
	if o := c.cfg.Obs; o != nil {
		o.Log().Warn("worker declared dead", "worker", int(w),
			"graph_version", c.graphVersion.Load())
	}
	c.cfg.Monitor.MarkWorkerDead(int(w))
	c.healthEvent(health.EventWorkerDead, health.SevWarn, int(w),
		fmt.Sprintf("worker %d declared dead (missed heartbeats)", int(w)),
		map[string]any{"graph_version": c.graphVersion.Load()})
	if c.cfg.Respawn == nil {
		// Fence a falsely-declared-dead worker that is actually alive: its
		// partition is being reassigned under it. With in-process respawn
		// the transport endpoint is reused by the replacement, so the
		// fence would kill the replacement instead — there the inbound
		// message fence (handle) is the only one needed.
		c.conn.Send(protocol.WorkerNode(w), &protocol.Shutdown{})
	}
	if c.liveCount() == 0 {
		c.enterTerminal()
		return
	}
	c.startRecoveryRound([]partition.WorkerID{w}, nil)
}

// startRecoveryRound aborts whatever barrier was in flight and opens a
// recovery round for the current dead set, optionally admitting rejoining
// workers whose hello already arrived.
func (c *Controller) startRecoveryRound(newlyDead, rejoining []partition.WorkerID) {
	c.abortBarrierForRecovery()
	c.enterPhase(phaseRecover)
	c.recState = recWaitHello
	c.recovering = true
	now := c.cfg.Clock()
	c.rec.BeginRound(now)
	for _, w := range newlyDead {
		c.epDied[w] = true
		if c.cfg.Respawn != nil {
			c.rec.AwaitHello(w, now.Add(c.cfg.RespawnWait))
			c.cfg.Respawn(w)
		}
	}
	for _, w := range rejoining {
		c.epDied[w] = true
		c.rec.MarkRejoining(w)
	}
	c.publishHealth()
	if !c.rec.Waiting(now) {
		c.proceedRecovery()
	}
}

// abortBarrierForRecovery clears the in-flight barrier bookkeeping. The
// sealed-but-unacknowledged delta commit (commitBatch/commitMuts) survives
// for the deterministic retry; staged mutations stay staged.
func (c *Controller) abortBarrierForRecovery() {
	c.stopAcks = nil
	c.drainAcks = 0
	c.deltaAcks = 0
	c.pendingMoves = nil
	c.movesLeft = 0
	c.ownDeltaV, c.ownDeltaW = nil, nil
	for i := range c.scopeExpect {
		for j := range c.scopeExpect[i] {
			c.scopeExpect[i][j] = 0
		}
	}
}

// onWorkerHello admits a (re)spawned worker. Inside a round's hello window
// it joins that round; any later it opens a fresh round of its own (the
// partition was already handed off — it rejoins empty and inherits load
// through future commits and repartitioning).
func (c *Controller) onWorkerHello(m *protocol.WorkerHello) {
	w := m.W
	if c.terminal || int(w) >= c.cfg.K || !c.deadWorkers[w] {
		return
	}
	if c.phase == phaseRecover && c.recState == recWaitHello {
		if !c.rec.OnHello(w) {
			c.rec.MarkRejoining(w)
		}
		if !c.rec.Waiting(c.cfg.Clock()) {
			c.proceedRecovery()
		}
		return
	}
	c.startRecoveryRound(nil, []partition.WorkerID{w})
}

// proceedRecovery plans the new ownership and broadcasts it: handoff for
// dead workers without a replacement, a replayed grant for rejoiners.
func (c *Controller) proceedRecovery() {
	c.recState = recWaitAcks
	gen := c.rec.Gen()
	lost := func(w partition.WorkerID) bool {
		return c.deadWorkers[w] && !c.rec.Rejoining(w)
	}
	recovery.PlanHandoff(c.owner, c.vertCount, lost)
	if c.commitBatch != nil {
		// The aborted commit's new vertices may have been assigned to a
		// worker that is now lost; re-balance them onto the live set.
		recovery.RemapOwners(c.commitBatch.NewOwners, c.vertCount, lost)
	}
	for _, sb := range c.sealed {
		// Same for every pipelined batch sealed but not yet applied: its
		// ops are already (or about to be) durable in the WAL, but its
		// new-vertex placement must land on workers that still exist.
		recovery.RemapOwners(sb.batch.NewOwners, c.vertCount, lost)
	}
	// One immutable snapshot of the authoritative map, shared by every
	// message of this round (receivers copy; the controller keeps
	// mutating c.owner afterwards).
	ownerSnap := append([]partition.WorkerID(nil), c.owner...)
	version := c.graphVersion.Load()
	// The grant replays the retained tail over the log's own base, which by
	// construction cannot gap. If it somehow does, ship an empty tail: the
	// rejoiner then fails its version check loudly instead of silently
	// diverging on a disconnected replay.
	tail, tailErr := c.deltaLog.Since(c.deltaLog.Base())
	if tailErr != nil {
		tail = nil
	}

	var ackers []partition.WorkerID
	for w := partition.WorkerID(0); int(w) < c.cfg.K; w++ {
		if c.rec.Rejoining(w) {
			delete(c.deadWorkers, w)
			c.missedPings[w] = 0
			c.cfg.Monitor.MarkWorkerLive(int(w))
			// Replay starts at the newest checkpoint, not version 0: the log
			// was truncated there, and the rejoiner resolves the checkpoint
			// from its snapshot store — O(ops since checkpoint) crosses the
			// wire, however long the deployment has been mutating.
			c.conn.Send(protocol.WorkerNode(w), &protocol.PartitionGrant{
				Gen: gen, Version: version, Owner: ownerSnap,
				BaseVersion: c.deltaLog.Base(),
				Batches:     tail,
			})
			ackers = append(ackers, w)
			continue
		}
		if c.deadWorkers[w] {
			continue
		}
		c.conn.Send(protocol.WorkerNode(w), &protocol.RecoverStart{
			Gen: gen, Version: version, Owner: ownerSnap,
		})
		ackers = append(ackers, w)
	}
	c.rec.ExpectAcks(ackers)
	c.publishHealth()
}

// onPartitionAck collects recovery acknowledgements; the round completes
// once every live worker settled in the current generation.
func (c *Controller) onPartitionAck(m *protocol.PartitionAck) error {
	fresh, done := c.rec.OnAck(m.W, m.Gen)
	if !fresh {
		return nil // stale round or unexpected sender
	}
	if m.Version != c.graphVersion.Load() {
		return fmt.Errorf("controller: worker %d recovered at graph version %d, want %d (replica divergence)",
			m.W, m.Version, c.graphVersion.Load())
	}
	if done {
		return c.completeRecovery()
	}
	return nil
}

// completeRecovery closes the episode: account it, then ride the tail of
// the normal global barrier — retry the aborted delta commit while the
// network is provably quiet, and resume() restarts every active query
// from superstep 0 and bumps the repartition epoch exactly once.
func (c *Controller) completeRecovery() error {
	now := c.cfg.Clock()
	dur := c.rec.Finish(now)
	handoffs, rejoins := 0, 0
	for w := range c.epDied {
		if c.deadWorkers[w] {
			handoffs++
		} else {
			rejoins++
		}
	}
	c.recCtr.Episode(dur, handoffs, rejoins, len(c.queries))
	c.healthEvent(health.EventRecovery, health.SevInfo, -1,
		fmt.Sprintf("recovery complete in %s (%d handoffs, %d rejoins, %d queries restarted)",
			dur.Round(time.Millisecond), handoffs, rejoins, len(c.queries)),
		map[string]any{
			"duration_ms": float64(dur) / float64(time.Millisecond),
			"handoffs":    handoffs, "rejoins": rejoins,
			"queries_restarted": len(c.queries),
		})
	if o := c.cfg.Obs; o != nil {
		o.Log().Info("recovery complete",
			"duration_ms", float64(dur)/float64(time.Millisecond),
			"handoffs", handoffs, "rejoins", rejoins,
			"queries_restarted", len(c.queries),
			"graph_version", c.graphVersion.Load())
	}
	c.epDied = make(map[partition.WorkerID]bool)

	c.restartQueries = true
	// Recovery always changed the effective partitioning (handoff) or at
	// minimum invalidated per-partition query state; one epoch bump in
	// resume() flushes the serving layer's result cache exactly once.
	c.barrierHadMoves = true
	if c.commitBatch != nil {
		c.sendCommit()
		return nil
	}
	return c.issueMoves()
}

// resetQueryForRestart rewinds a query's controller-side state to
// superstep 0. Cumulative statistics (supersteps executed, local
// iterations, latency since schedule) keep accumulating across the
// restart — the caller pays real time and the engine did real work.
func (c *Controller) resetQueryForRestart(ctl *qctl) {
	c.abortStepSpan(ctl, "recovery-restart")
	ctl.step = -1
	ctl.outstanding = false
	ctl.paused = false
	ctl.involved = make(map[partition.WorkerID]bool)
	ctl.reports = make(map[partition.WorkerID]*protocol.BarrierSynch)
	// Scope statistics restart with the execution: both Touched
	// (scopeSizes) and Workers (everActive) describe the run that
	// produced the result, not the one the failure discarded.
	for i := range ctl.scopeSizes {
		ctl.scopeSizes[i] = 0
		ctl.everActive[i] = false
	}
	// A goal found before the failure proved a path in the pre-recovery
	// graph; the retried delta commit may have changed it. Rediscover.
	ctl.bestGoal = query.NoResult
	if _, ok := ctl.spec.HomeWorker(); ok && c.cfg.ReplicateQueries {
		// Re-pin replicated queries: the old home may be gone.
		ctl.spec.SetHome(int(c.owner[ctl.spec.Source]))
	}
	// Re-pin the MVCC snapshot to the recovered version: every worker is
	// exactly at the committed version when the re-broadcast ExecuteQuery
	// arrives (RecoverStart/PartitionGrant carried it), so the new pin
	// resolves; the old one may predate the recovery and is released.
	c.views.Unpin(ctl.spec.PinVersion)
	ctl.spec.PinVersion = c.view.Version()
	if _, err := c.views.Pin(ctl.spec.PinVersion); err != nil {
		// Cannot happen: the pin targets the registry's latest version.
		panic(fmt.Sprintf("controller: re-pin query %d: %v", ctl.spec.ID, err))
	}
}

// enterTerminal is the unrecoverable end state: every worker is dead.
// Everything in flight fails with FinishWorkerLost and health reports
// degraded permanently.
func (c *Controller) enterTerminal() {
	c.terminal = true
	c.recovering = false
	c.healthEvent(health.EventTerminal, health.SevCritical, -1,
		"no live workers left: controller is terminally degraded", nil)
	if c.rec.Active() {
		c.rec.Finish(c.cfg.Clock())
	}
	c.enterPhase(phaseRun)
	now := c.cfg.Clock()
	for q, ctl := range c.queries {
		c.abortStepSpan(ctl, "terminal")
		c.endQueryTrace(ctl, protocol.FinishWorkerLost, Result{
			Supersteps: ctl.stepsDone, LocalIters: ctl.localSteps,
		})
		ctl.ch <- Result{
			Q: q, Value: ctl.bestGoal, Reason: protocol.FinishWorkerLost,
			Supersteps: ctl.stepsDone, LocalIters: ctl.localSteps,
			Latency: now.Sub(ctl.started),
		}
		c.views.Unpin(ctl.spec.PinVersion)
		delete(c.queries, q)
	}
	for _, req := range c.deferred {
		req.ch <- Result{Q: req.spec.ID, Value: query.NoResult, Reason: protocol.FinishWorkerLost}
	}
	c.deferred = nil
	c.failMutations(
		fmt.Errorf("controller: degraded (no live workers)"),
		fmt.Errorf("controller: degraded (no live workers) during commit; batch state unknown"),
	)
	c.publishHealth()
}
