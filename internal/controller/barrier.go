package controller

import (
	"fmt"
	"time"

	"qgraph/internal/graph"
	"qgraph/internal/metrics"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
)

// This file implements the per-query side of the hybrid barrier
// synchronization (Sec. 3.3): scheduling a query onto the workers,
// collecting barrierSynch reports, deciding termination, and releasing the
// next superstep to exactly the involved workers (limited query barrier) —
// or to a single worker with the solo flag that enables its local query
// barrier loop.

// onSchedule starts a query, or defers it while a global barrier or a
// recovery episode is active (recovery restarts deferred queries once the
// live set settles — callers see latency, not worker_lost).
func (c *Controller) onSchedule(req scheduleReq) {
	if c.terminal {
		// Every worker is dead; nothing can ever execute this query.
		req.ch <- Result{Q: req.spec.ID, Value: query.NoResult, Reason: protocol.FinishWorkerLost}
		return
	}
	if c.phase != phaseRun {
		c.deferred = append(c.deferred, req)
		return
	}
	c.startQuery(req)
}

func (c *Controller) startQuery(req scheduleReq) {
	spec := req.spec
	if c.terminal {
		req.ch <- Result{Q: spec.ID, Value: query.NoResult, Reason: protocol.FinishWorkerLost}
		return
	}
	// Query ids must be unique while any state of them lingers: an active
	// duplicate would corrupt barrier bookkeeping, and reusing a windowed
	// id would confuse the workers' finished-scope tracking.
	if _, active := c.queries[spec.ID]; active || c.byQ[spec.ID] != nil {
		req.ch <- Result{Q: spec.ID, Value: query.NoResult, Reason: protocol.FinishRejected}
		return
	}
	if c.cfg.ReplicateQueries {
		// Future-work (ii): pin the query to its source's owner; all its
		// processing happens there (replication-style local execution).
		spec.SetHome(int(c.owner[spec.Source]))
	}
	prog := query.MustNew(spec.Kind)
	// Pin the committed version this query executes against (MVCC): every
	// worker resolves PinVersion to the same immutable snapshot, and
	// batches committing at later versions while it runs stay invisible to
	// it. The pin is always resolvable on every worker because the
	// ExecuteQuery broadcast below is ordered, per link, after the
	// DeltaBatch that produced this version and before the one that
	// supersedes it. The controller-side pin keeps the version live for
	// restarts and surfaces the compaction floor in MVCCStats.
	spec.PinVersion = c.view.Version()
	if _, err := c.views.Pin(spec.PinVersion); err != nil {
		// Cannot happen: the pin targets the registry's latest version.
		req.ch <- Result{Q: spec.ID, Value: query.NoResult, Reason: protocol.FinishRejected}
		return
	}
	ctl := &qctl{
		spec:       spec,
		prog:       prog,
		started:    c.cfg.Clock(),
		ch:         req.ch,
		step:       -1,
		involved:   make(map[partition.WorkerID]bool),
		reports:    make(map[partition.WorkerID]*protocol.BarrierSynch),
		scopeSizes: make([]int64, c.cfg.K),
		everActive: make([]bool, c.cfg.K),
		bestGoal:   query.NoResult,
	}
	c.queries[spec.ID] = ctl
	c.beginQueryTrace(ctl)
	c.broadcast(&protocol.ExecuteQuery{Spec: spec})

	// Initial involved set: owners of the initial activations.
	init := make(map[partition.WorkerID]bool)
	for _, act := range prog.Init(c.view, spec) {
		init[c.ownerOf(ctl, act.V)] = true
	}
	c.release(ctl, 0, init, nil, false)
}

// onCancel abandons a query on behalf of its caller. A deferred query is
// cancelled immediately. An executing one is finished eagerly outside the
// global-barrier move phases: the QueryFinish broadcast interrupts even
// solo local loops, because workers drain their inbox between local
// supersteps, and late BarrierSynch reports for the dropped query are
// tolerated by onSynch. During the barrier phases (stopping → scope
// drain) the network must stay quiet, so the cancel is only marked and
// honored at resume.
func (c *Controller) onCancel(q query.ID) {
	if ctl, ok := c.queries[q]; ok {
		ctl.cancelled = true
		if c.phase == phaseRun || c.phase == phaseQuiesce {
			c.finishQuery(ctl, protocol.FinishCancelled)
		}
		return
	}
	for i, req := range c.deferred {
		if req.spec.ID == q {
			req.ch <- Result{Q: q, Value: query.NoResult, Reason: protocol.FinishCancelled}
			c.deferred = append(c.deferred[:i], c.deferred[i+1:]...)
			return
		}
	}
	// Neither active nor deferred: the query already finished, or the id
	// was never scheduled. Either way, a no-op — cancels ride the schedule
	// FIFO, so they cannot overtake the schedule they refer to.
}

// ownerOf mirrors the workers' routing rule, including query pinning.
func (c *Controller) ownerOf(ctl *qctl, v graph.VertexID) partition.WorkerID {
	if home, ok := ctl.spec.HomeWorker(); ok {
		return partition.WorkerID(home)
	}
	return c.owner[v]
}

// release issues barrierReady for superstep step. expect maps each
// receiver to the batch count it must await (nil = zero). drained marks a
// post-global-barrier resume.
func (c *Controller) release(ctl *qctl, step int32, involved map[partition.WorkerID]bool, expect map[partition.WorkerID]int32, drained bool) {
	if c.cfg.Mode == SyncGlobal {
		// Traditional BSP baseline (Fig. 6d): every query synchronizes
		// across all live workers every iteration.
		all := make(map[partition.WorkerID]bool, c.cfg.K)
		for w := 0; w < c.cfg.K; w++ {
			if !c.deadWorkers[partition.WorkerID(w)] {
				all[partition.WorkerID(w)] = true
			}
		}
		involved = all
	}
	solo := c.cfg.Mode == SyncHybrid && len(involved) == 1 && !drained
	ctl.involved = involved
	ctl.reports = make(map[partition.WorkerID]*protocol.BarrierSynch, len(involved))
	ctl.outstanding = true
	ctl.releasedAt = c.cfg.Clock()
	ctl.paused = false
	c.beginStepSpan(ctl, step)
	for w := range involved {
		c.conn.Send(protocol.WorkerNode(w), &protocol.BarrierReady{
			Q:       ctl.spec.ID,
			Step:    step,
			Expect:  expect[w],
			Solo:    solo,
			Drained: drained,
		})
	}
}

// onSynch records a worker's barrier report and, once all involved workers
// reported, collects the superstep.
func (c *Controller) onSynch(m *protocol.BarrierSynch) error {
	// Merge piggybacked intersection statistics into the global view
	// regardless of query liveness.
	for _, is := range m.Intersections {
		q1, q2 := is.Q1, is.Q2
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		c.inter[interKey{w: m.W, q1: q1, q2: q2}] = int64(is.Shared)
	}
	if m.Finished {
		// Final statistics after QueryFinish: refresh the window entry.
		if we := c.byQ[m.Q]; we != nil {
			we.sizes[m.W] = int64(m.ScopeSize)
		}
		return nil
	}
	ctl, ok := c.queries[m.Q]
	if !ok {
		// Late report of a query we already finished (e.g. a solo loop
		// that raced the finish decision). Harmless.
		return nil
	}
	if !ctl.involved[m.W] {
		return fmt.Errorf("controller: synch for query %d from uninvolved worker %d", m.Q, m.W)
	}
	if ctl.reports[m.W] != nil {
		return fmt.Errorf("controller: duplicate synch for query %d from worker %d", m.Q, m.W)
	}
	ctl.reports[m.W] = m
	c.obs.onReport(m)
	c.cfg.Monitor.ObserveCompute(int(m.W), m.ComputeNS, int(m.Step-m.FromStep)+1)
	ctl.scopeSizes[m.W] = int64(m.ScopeSize)
	if m.Processed > 0 || m.ScopeSize > 0 {
		ctl.everActive[m.W] = true
	}
	if m.BestGoal < ctl.bestGoal {
		ctl.bestGoal = m.BestGoal
	}
	if rec := c.cfg.Recorder; rec != nil && m.Processed > 0 {
		rec.RecordLoad(metrics.LoadSample{At: c.cfg.Clock(), Worker: int(m.W), Active: int(m.Processed)})
	}
	if len(ctl.reports) == len(ctl.involved) {
		c.collect(ctl)
	}
	return nil
}

// collect advances a query whose current superstep is fully reported:
// update statistics, decide termination, release the next superstep.
func (c *Controller) collect(ctl *qctl) {
	collectedStep := ctl.step
	minFrontier := query.NoResult
	totalSent := int32(0)
	activeWorkers := 0
	expect := make(map[partition.WorkerID]int32)
	next := make(map[partition.WorkerID]bool)
	localExtra := 0

	for w, r := range ctl.reports {
		if r.Step > collectedStep {
			collectedStep = r.Step
		}
		if r.MinFrontier < minFrontier {
			minFrontier = r.MinFrontier
		}
		if r.Processed > 0 {
			activeWorkers++
		}
		if r.NActiveNext > 0 {
			next[w] = true
		}
		localExtra += int(r.LocalIters)
		for dst, nb := range r.SentBatches {
			if nb > 0 {
				d := partition.WorkerID(dst)
				expect[d] += nb
				next[d] = true
				totalSent += nb
			}
		}
	}

	ctl.stepsDone += int(collectedStep - ctl.step)
	ctl.step = collectedStep
	ctl.outstanding = false
	c.endStepSpan(ctl, collectedStep)
	// Locality accounting (Fig. 6f): the solo-loop steps reported by the
	// worker plus the just-collected step if at most one worker computed
	// and nothing crossed workers.
	ctl.localSteps += localExtra
	if totalSent == 0 && activeWorkers <= 1 {
		ctl.localSteps++
	}

	// Termination (Sec. 2: a query ends when no active vertex remains; the
	// monotone bound additionally ends goal queries as soon as no
	// in-flight value can beat the best goal — that is what confines
	// localized queries to their region).
	switch {
	case len(next) == 0:
		c.finishQuery(ctl, protocol.FinishConverged)
		return
	case ctl.prog.Monotone() && ctl.bestGoal < query.NoResult && minFrontier >= ctl.bestGoal:
		c.finishQuery(ctl, protocol.FinishEarly)
		return
	case ctl.spec.MaxIters > 0 && int(collectedStep)+1 >= ctl.spec.MaxIters:
		c.finishQuery(ctl, protocol.FinishMaxIters)
		return
	}

	if c.phase != phaseRun {
		// A global barrier is forming; hold the release. resumeQueries
		// re-releases after GlobalStart.
		ctl.paused = true
		c.maybeStop()
		return
	}
	c.release(ctl, collectedStep+1, next, expect, false)
}

// finishQuery ends a query: notify workers, deliver the result, and move
// its statistics into the monitoring window.
func (c *Controller) finishQuery(ctl *qctl, reason protocol.FinishReason) {
	q := ctl.spec.ID
	delete(c.queries, q)
	c.views.Unpin(ctl.spec.PinVersion)
	c.broadcast(&protocol.QueryFinish{Q: q, Reason: reason})

	now := c.cfg.Clock()
	touched := 0
	workers := 0
	for w, sz := range ctl.scopeSizes {
		touched += int(sz)
		if ctl.everActive[w] {
			workers++
		}
	}
	res := Result{
		Q:          q,
		Value:      ctl.bestGoal,
		Reason:     reason,
		Supersteps: ctl.stepsDone,
		LocalIters: ctl.localSteps,
		Touched:    touched,
		Workers:    workers,
		Latency:    now.Sub(ctl.started),
	}
	c.endQueryTrace(ctl, reason, res)
	ctl.ch <- res

	if rec := c.cfg.Recorder; rec != nil {
		rec.RecordQuery(metrics.QueryRecord{
			ID:          int64(q),
			Kind:        ctl.spec.Kind.String(),
			ScheduledAt: ctl.started,
			Latency:     res.Latency,
			Supersteps:  res.Supersteps,
			LocalIters:  res.LocalIters,
			Touched:     res.Touched,
			Workers:     res.Workers,
			Result:      res.Value,
		})
	}
	c.windowAdd(ctl, now)
	if c.phase == phaseQuiesce {
		c.maybeStop()
	}
}

// windowAdd records a finished query in the monitoring window (tumbling
// window of Sec. 3.4, bounded by μ and the query cap).
func (c *Controller) windowAdd(ctl *qctl, now time.Time) {
	loc := 1.0
	if ctl.stepsDone > 0 {
		loc = float64(ctl.localSteps) / float64(ctl.stepsDone)
	}
	we := &windowEntry{
		q:        ctl.spec.ID,
		at:       now,
		sizes:    append([]int64(nil), ctl.scopeSizes...),
		locality: loc,
	}
	c.window = append(c.window, we)
	c.byQ[ctl.spec.ID] = we
	c.pruneWindow(now)
}

// pruneWindow drops entries older than μ and enforces the query cap.
func (c *Controller) pruneWindow(now time.Time) {
	keep := c.window[:0]
	for _, we := range c.window {
		if now.Sub(we.at) <= c.cfg.Mu {
			keep = append(keep, we)
		} else {
			delete(c.byQ, we.q)
		}
	}
	if over := len(keep) - c.cfg.MaxWindowQueries; over > 0 {
		for _, we := range keep[:over] {
			delete(c.byQ, we.q)
		}
		keep = keep[over:]
	}
	c.window = keep
}
