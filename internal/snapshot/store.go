package snapshot

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Store holds the recent checkpoints. It is safe for concurrent use: the
// controller's event loop cuts snapshots while rejoining workers (and the
// serving layer's stats handler) read them from other goroutines.
//
// With a directory configured, every Add is also persisted durably; the
// truncation floor then advances only on a successful persist, so the
// committed-op log is never truncated past a checkpoint that a process
// restart could not recover (the in-memory copy dies with the process).
type Store struct {
	dir  string
	keep int

	mu    sync.Mutex
	snaps []*Snapshot // ascending version
	// durable is the truncation floor: the newest version guaranteed to
	// survive the snapshot owner. Memory-only stores advance it on every
	// Add; dir-backed stores only after the file is durably in place.
	durable uint64

	cuts            atomic.Int64
	lastVersion     atomic.Uint64
	truncated       atomic.Int64
	persisted       atomic.Int64
	persistFailures atomic.Int64
}

// NewStore creates a store retaining the latest keep snapshots (default 2:
// the newest plus one fallback for a persist that failed mid-cut). With a
// non-empty dir, snapshots are additionally persisted there.
func NewStore(dir string, keep int) *Store {
	if keep <= 0 {
		keep = 2
	}
	return &Store{dir: dir, keep: keep}
}

// Dir returns the persistence directory ("" when memory-only).
func (s *Store) Dir() string { return s.dir }

// Add registers a freshly-cut snapshot and returns the version the caller
// may safely truncate its op log to. The in-memory add always succeeds;
// with a directory configured, a persist failure is reported (and counted)
// but the snapshot stays usable in memory — the returned floor then stays
// at the previous durable version, so recovery-from-disk is never promised
// beyond what is actually on disk.
func (s *Store) Add(snap *Snapshot) (floor uint64, err error) {
	if s.dir != "" {
		if _, err = WriteFile(s.dir, snap); err != nil {
			s.persistFailures.Add(1)
		} else {
			s.persisted.Add(1)
		}
	}
	s.mu.Lock()
	s.snaps = append(s.snaps, snap)
	if n := len(s.snaps) - s.keep; n > 0 {
		s.snaps = append([]*Snapshot(nil), s.snaps[n:]...)
	}
	if s.dir == "" || err == nil {
		s.durable = snap.Version
	}
	floor = s.durable
	s.mu.Unlock()
	s.cuts.Add(1)
	s.lastVersion.Store(snap.Version)
	if s.dir != "" && err == nil {
		s.pruneDisk()
	}
	return floor, err
}

// Latest returns the newest snapshot (nil when none was cut yet).
func (s *Store) Latest() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.snaps) == 0 {
		return nil
	}
	return s.snaps[len(s.snaps)-1]
}

// At returns the snapshot at exactly the given version: from memory if
// retained, else — for dir-backed stores — loaded from disk. Nil when the
// version is not checkpointed anywhere reachable.
func (s *Store) At(version uint64) *Snapshot {
	s.mu.Lock()
	for i := len(s.snaps) - 1; i >= 0; i-- {
		if s.snaps[i].Version == version {
			snap := s.snaps[i]
			s.mu.Unlock()
			return snap
		}
	}
	s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	snap, err := Load(filepath.Join(s.dir, FileName(version)))
	if err != nil {
		return nil
	}
	return snap
}

// AccountTruncated records log operations released by a truncation (the
// controller owns the log; the store owns the cumulative counter).
func (s *Store) AccountTruncated(ops int) { s.truncated.Add(int64(ops)) }

// Stats returns the store's accounting. The delta-log fields are zero
// here; the controller overlays the live log sizes.
func (s *Store) Stats() Stats {
	return Stats{
		Snapshots:           s.cuts.Load(),
		LastSnapshotVersion: s.lastVersion.Load(),
		TruncatedOps:        s.truncated.Load(),
		Persisted:           s.persisted.Load(),
		PersistFailures:     s.persistFailures.Load(),
	}
}

// pruneDisk removes snapshot files beyond the keep horizon and any
// orphaned temp files a crash left behind, best effort. Only the Add path
// (one goroutine at a time per store owner) writes temps, and it runs
// strictly before this sweep, so no in-flight write can be swept.
func (s *Store) pruneDisk() {
	if tmps, err := filepath.Glob(filepath.Join(s.dir, "snap-*"+fileExt+tmpSuffix)); err == nil {
		for _, p := range tmps {
			_ = os.Remove(p)
		}
	}
	paths, err := filepath.Glob(filepath.Join(s.dir, "snap-*"+fileExt))
	if err != nil || len(paths) <= s.keep {
		return
	}
	// Names embed zero-padded versions, so lexical order is version order.
	sort.Strings(paths)
	for _, p := range paths[:len(paths)-s.keep] {
		_ = os.Remove(p)
	}
}
