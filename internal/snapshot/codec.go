package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"qgraph/internal/faultpoint"
	"qgraph/internal/graph"
)

// Durable snapshot file format ("QSNP"), little-endian:
//
//	magic   [4]byte  "QSNP"
//	version uint64   committed graph version the snapshot covers
//	graph   []byte   the materialized graph in QGR1 format (graph.Save)
//	crc     uint64   CRC-64/ECMA over everything above
//
// Files are written to a temp name and renamed into place, so a crash
// mid-write leaves a *.tmp the loader never considers; the trailing
// checksum additionally catches torn or bit-rotted files that did reach
// their final name (e.g. a crash racing a non-atomic filesystem). Loaders
// verify the checksum before parsing, so a corrupt checkpoint is skipped,
// never half-loaded.
const (
	fileMagic = "QSNP"
	fileExt   = ".qsnp"
	tmpSuffix = ".tmp"
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// FileName returns the file name for a snapshot at the given version.
// Versions are zero-padded so lexical directory order is version order.
func FileName(version uint64) string {
	return fmt.Sprintf("snap-%016d%s", version, fileExt)
}

// WriteFile persists snap into dir atomically (temp file + rename) and
// returns the final path.
func WriteFile(dir string, snap *Snapshot) (string, error) {
	var buf bytes.Buffer
	buf.WriteString(fileMagic)
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], snap.Version)
	buf.Write(v[:])
	if err := snap.Graph.Save(&buf); err != nil {
		return "", fmt.Errorf("snapshot: encoding graph: %w", err)
	}
	binary.LittleEndian.PutUint64(v[:], crc64.Checksum(buf.Bytes(), crcTable))
	buf.Write(v[:])

	path := filepath.Join(dir, FileName(snap.Version))
	tmp := path + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	// A failed persist must not leave its temp file behind — intermittent
	// disk errors on a long-running deployment would otherwise accumulate
	// multi-MB orphans (a real crash still can; pruneDisk sweeps those).
	fail := func(err error) (string, error) {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		return fail(err)
	}
	if faultpoint.Hit(faultpoint.SnapshotPersist) {
		// Simulated crash between write and rename: the bytes may or may
		// not have reached the disk, but the final name never appeared —
		// exactly the state a real crash leaves behind (including the
		// orphaned temp file, which the next successful cut sweeps).
		f.Close()
		return "", fmt.Errorf("snapshot: %w", faultpoint.ErrKilled)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, nil
}

// Load reads and verifies one snapshot file. A torn, truncated, or
// corrupted file returns an error without a partial snapshot.
func Load(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// magic + version + crc is the minimum; the graph payload adds more.
	if len(raw) < 4+8+8 {
		return nil, fmt.Errorf("snapshot: %s: truncated (%d bytes)", path, len(raw))
	}
	body, tail := raw[:len(raw)-8], raw[len(raw)-8:]
	if crc64.Checksum(body, crcTable) != binary.LittleEndian.Uint64(tail) {
		return nil, fmt.Errorf("snapshot: %s: checksum mismatch", path)
	}
	if string(body[:4]) != fileMagic {
		return nil, fmt.Errorf("snapshot: %s: bad magic %q", path, body[:4])
	}
	version := binary.LittleEndian.Uint64(body[4:12])
	g, err := graph.Load(bytes.NewReader(body[12:]))
	if err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	return &Snapshot{Version: version, Graph: g}, nil
}

// skippedCorrupt counts snapshot files LoadLatest had to skip as corrupt,
// process-wide — surfaced on /metrics as snapshots_skipped_corrupt so
// checkpoint rot is visible before the last intact file also goes.
var skippedCorrupt atomic.Int64

// SkippedCorrupt returns the process-wide count of snapshot files skipped
// as corrupt by LoadLatest. Safe from any goroutine.
func SkippedCorrupt() int64 { return skippedCorrupt.Load() }

// LoadLatest scans dir for the newest loadable snapshot. Corrupt or torn
// files are skipped (an older intact checkpoint is a correct, if staler,
// recovery point), but never silently: each skip is logged via slog and
// counted, so a directory of rotted checkpoints is distinguishable from
// an empty one. It returns (nil, nil) when the directory holds no usable
// snapshot.
func LoadLatest(dir string) (*Snapshot, error) {
	return LoadLatestObserved(dir, func(path string, err error) {
		slog.Warn("snapshot: skipping corrupt checkpoint", "path", path, "error", err)
	})
}

// LoadLatestObserved is LoadLatest with the caller deciding what to do
// about each skipped file (log, emit a health event, count per-replica).
// onSkip runs once per unloadable snapshot file, oldest-skip last; the
// process-wide SkippedCorrupt counter advances regardless.
func LoadLatestObserved(dir string, onSkip func(path string, err error)) (*Snapshot, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "snap-*"+fileExt))
	if err != nil {
		return nil, err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	for _, p := range paths {
		snap, err := Load(p)
		if err == nil {
			return snap, nil
		}
		skippedCorrupt.Add(1)
		if onSkip != nil {
			onSkip(p, err)
		}
	}
	return nil, nil
}
