package snapshot

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"qgraph/internal/faultpoint"
	"qgraph/internal/graph"
)

func testGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddBiEdge(graph.VertexID(v), graph.VertexID(v+1), float32(v+1))
	}
	return b.MustBuild()
}

func TestPolicyDue(t *testing.T) {
	var zero Policy
	if zero.Enabled() || zero.Due(1<<20, 1<<30, time.Hour) {
		t.Fatal("zero policy must never trigger")
	}
	p := Policy{EveryOps: 100, EveryBytes: 1000, Interval: time.Minute}
	if !p.Enabled() {
		t.Fatal("armed policy reports disabled")
	}
	cases := []struct {
		ops     int
		bytes   int64
		elapsed time.Duration
		want    bool
	}{
		{0, 1 << 30, time.Hour, false}, // nothing committed: never cut
		{99, 999, time.Second, false},
		{100, 0, 0, true},
		{1, 1000, 0, true},
		{1, 0, time.Minute, true},
	}
	for _, c := range cases {
		if got := p.Due(c.ops, c.bytes, c.elapsed); got != c.want {
			t.Errorf("Due(%d, %d, %v) = %v, want %v", c.ops, c.bytes, c.elapsed, got, c.want)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 8)
	path, err := WriteFile(dir, &Snapshot{Version: 42, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != FileName(42) {
		t.Fatalf("wrote %s, want %s", path, FileName(42))
	}
	snap, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 42 || snap.Graph.NumVertices() != 8 || snap.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("loaded %+v", snap)
	}
	for v := 0; v < 8; v++ {
		a, b := g.Out(graph.VertexID(v)), snap.Graph.Out(graph.VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d edge %d: %+v vs %+v", v, i, a[i], b[i])
			}
		}
	}
}

// TestLoadRejectsCorruption: torn and bit-flipped files fail the checksum
// instead of producing a half-loaded graph, and LoadLatest falls back to
// the newest intact checkpoint.
func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 8)
	if _, err := WriteFile(dir, &Snapshot{Version: 1, Graph: g}); err != nil {
		t.Fatal(err)
	}
	path2, err := WriteFile(dir, &Snapshot{Version: 2, Graph: g})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	// Torn write: the file stops mid-payload.
	if err := os.WriteFile(path2, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path2); err == nil {
		t.Fatal("torn file loaded")
	}
	snap, err := LoadLatest(dir)
	if err != nil || snap == nil || snap.Version != 1 {
		t.Fatalf("LoadLatest after torn v2 = %+v, %v; want v1", snap, err)
	}

	// Bit flip inside the payload.
	raw[20] ^= 0x40
	if err := os.WriteFile(path2, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path2); err == nil {
		t.Fatal("corrupt file loaded")
	}

	// Empty directory: no snapshot, no error.
	snap, err = LoadLatest(t.TempDir())
	if err != nil || snap != nil {
		t.Fatalf("LoadLatest(empty) = %+v, %v", snap, err)
	}
}

// TestLoadLatestObservesSkips: skipped corrupt checkpoints are reported to
// the caller and counted, never swallowed — a directory of rotted files
// must be distinguishable from an empty one.
func TestLoadLatestObservesSkips(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 8)
	if _, err := WriteFile(dir, &Snapshot{Version: 1, Graph: g}); err != nil {
		t.Fatal(err)
	}
	path2, err := WriteFile(dir, &Snapshot{Version: 2, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0x40
	if err := os.WriteFile(path2, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	before := SkippedCorrupt()
	var skipped []string
	snap, err := LoadLatestObserved(dir, func(path string, err error) {
		if err == nil {
			t.Errorf("onSkip(%s) with nil error", path)
		}
		skipped = append(skipped, path)
	})
	if err != nil || snap == nil || snap.Version != 1 {
		t.Fatalf("LoadLatestObserved = %+v, %v; want v1", snap, err)
	}
	if len(skipped) != 1 || skipped[0] != path2 {
		t.Fatalf("skipped = %v, want [%s]", skipped, path2)
	}
	if got := SkippedCorrupt() - before; got != 1 {
		t.Fatalf("SkippedCorrupt advanced by %d, want 1", got)
	}

	// Every file corrupt: nil snapshot, every skip reported.
	raw1, err := os.ReadFile(filepath.Join(dir, FileName(1)))
	if err != nil {
		t.Fatal(err)
	}
	raw1[20] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, FileName(1)), raw1, 0o644); err != nil {
		t.Fatal(err)
	}
	skipped = nil
	snap, err = LoadLatestObserved(dir, func(path string, err error) { skipped = append(skipped, path) })
	if err != nil || snap != nil || len(skipped) != 2 {
		t.Fatalf("all-corrupt dir: snap=%+v err=%v skipped=%v", snap, err, skipped)
	}
}

func TestStoreMemory(t *testing.T) {
	s := NewStore("", 2)
	g := testGraph(t, 4)
	for v := uint64(1); v <= 3; v++ {
		floor, err := s.Add(&Snapshot{Version: v, Graph: g})
		if err != nil || floor != v {
			t.Fatalf("Add(%d) = %d, %v", v, floor, err)
		}
	}
	if s.Latest().Version != 3 {
		t.Fatalf("latest %d", s.Latest().Version)
	}
	if s.At(2) == nil || s.At(3) == nil {
		t.Fatal("retained snapshots not found")
	}
	if s.At(1) != nil {
		t.Fatal("evicted snapshot still found (keep=2)")
	}
	s.AccountTruncated(7)
	st := s.Stats()
	if st.Snapshots != 3 || st.LastSnapshotVersion != 3 || st.TruncatedOps != 7 {
		t.Fatalf("stats %+v", st)
	}
}

// TestStoreDiskFloorAndPrune: the truncation floor follows durability, the
// At fallback reads evicted snapshots back from disk, and old files are
// pruned.
func TestStoreDiskFloorAndPrune(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, 2)
	g := testGraph(t, 4)
	for v := uint64(1); v <= 4; v++ {
		floor, err := s.Add(&Snapshot{Version: v, Graph: g})
		if err != nil || floor != v {
			t.Fatalf("Add(%d) = %d, %v", v, floor, err)
		}
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "snap-*"+fileExt))
	if len(paths) != 2 {
		t.Fatalf("disk holds %d snapshots, want 2 (pruned)", len(paths))
	}
	// Version 3 was evicted from memory but survives on disk.
	if snap := s.At(3); snap == nil || snap.Version != 3 {
		t.Fatalf("At(3) from disk = %+v", snap)
	}
	if s.At(1) != nil {
		t.Fatal("pruned snapshot still resolvable")
	}
}

// TestStorePersistFailureHoldsFloor is the crash-during-persist property:
// when the durable write dies, the floor stays at the previous on-disk
// checkpoint (the log must not be truncated past what a restart can load),
// while the in-memory snapshot still serves the current process.
func TestStorePersistFailureHoldsFloor(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	s := NewStore(dir, 2)
	g := testGraph(t, 4)
	if floor, err := s.Add(&Snapshot{Version: 1, Graph: g}); err != nil || floor != 1 {
		t.Fatalf("Add(1) = %d, %v", floor, err)
	}

	disarm := faultpoint.Arm(faultpoint.SnapshotPersist, func(...int) bool { return true })
	floor, err := s.Add(&Snapshot{Version: 2, Graph: g})
	disarm()
	if err == nil {
		t.Fatal("persist fault did not surface")
	}
	if floor != 1 {
		t.Fatalf("floor advanced to %d past the durable checkpoint", floor)
	}
	if s.Latest().Version != 2 {
		t.Fatal("in-memory snapshot lost on persist failure")
	}
	st := s.Stats()
	if st.PersistFailures != 1 || st.Persisted != 1 {
		t.Fatalf("stats %+v", st)
	}
	// A restart sees only the durable checkpoint.
	snap, err := LoadLatest(dir)
	if err != nil || snap == nil || snap.Version != 1 {
		t.Fatalf("LoadLatest = %+v, %v; want durable v1", snap, err)
	}

	// The simulated crash left its temp file, as a real crash would.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*"+fileExt+tmpSuffix)); len(tmps) != 1 {
		t.Fatalf("expected the crashed persist's temp file, found %v", tmps)
	}

	// The next successful cut re-advances the floor past the gap — and
	// sweeps the orphaned temp file.
	if floor, err := s.Add(&Snapshot{Version: 3, Graph: g}); err != nil || floor != 3 {
		t.Fatalf("Add(3) = %d, %v", floor, err)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*"+tmpSuffix)); len(tmps) != 0 {
		t.Fatalf("orphaned temp files not swept: %v", tmps)
	}
}

// TestWriteFileErrorCleansTemp: a persist that fails for a real reason
// (not a crash) must not leave its temp file behind.
func TestWriteFileErrorCleansTemp(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 4)
	// Make the final rename fail by occupying the target with a directory.
	if err := os.Mkdir(filepath.Join(dir, FileName(5)), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteFile(dir, &Snapshot{Version: 5, Graph: g}); err == nil {
		t.Fatal("rename onto a directory succeeded")
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*"+tmpSuffix)); len(tmps) != 0 {
		t.Fatalf("failed persist left temp files: %v", tmps)
	}
}
