// Package snapshot implements checkpointing for the streaming-update data
// plane: the committed graph state (CSR base plus the delta overlay at a
// committed version) is periodically folded into a versioned, immutable
// snapshot. Checkpoints are the antidote to the unbounded committed-op log
// of internal/delta — once a snapshot exists at version V, every batch with
// version <= V can be truncated, a rejoining worker replays (snapshot,
// tail) instead of (version 0, full log), and a qgraphd deployment can
// restart from disk without the original mutation history.
//
// Snapshots are always cut from a committed view, which only ever changes
// inside the global STOP/START barrier — so a checkpoint is by construction
// superstep-consistent: no query ever observed a state between two
// checkpointable versions.
//
// The package has three pieces: Policy decides when the controller cuts a
// checkpoint (ops / bytes accumulated in the log, or wall-clock interval),
// Store keeps the recent snapshots (in memory always, optionally persisted
// to a directory with a checksummed binary codec), and the file codec in
// codec.go implements the durable format.
package snapshot

import (
	"time"

	"qgraph/internal/graph"
)

// Snapshot is one checkpoint: the full logical graph at a committed
// version, materialized as a standalone immutable CSR graph. The graph is
// shared, never mutated — replicas may replay delta batches over it
// concurrently.
type Snapshot struct {
	Version uint64
	Graph   *graph.Graph
}

// Policy decides when the controller cuts the next checkpoint. Any
// combination of triggers may be armed; a zero field disables that
// trigger, and the zero Policy disables automatic checkpointing entirely
// (manual cuts via the admin API still work).
type Policy struct {
	// EveryOps cuts once this many operations committed since the last
	// checkpoint.
	EveryOps int
	// EveryBytes cuts once the committed ops since the last checkpoint
	// exceed this wire size (the same accounting as delta.Log.Bytes).
	EveryBytes int64
	// Interval cuts on wall-clock age, provided at least one op committed
	// since the last checkpoint (an idle graph never needs a new one).
	Interval time.Duration
}

// Enabled reports whether any automatic trigger is armed.
func (p Policy) Enabled() bool {
	return p.EveryOps > 0 || p.EveryBytes > 0 || p.Interval > 0
}

// Due reports whether a checkpoint should be cut, given the ops and bytes
// committed since the last one and the time elapsed since it.
func (p Policy) Due(ops int, bytes int64, elapsed time.Duration) bool {
	if ops <= 0 {
		return false // nothing new to fold in
	}
	if p.EveryOps > 0 && ops >= p.EveryOps {
		return true
	}
	if p.EveryBytes > 0 && bytes >= p.EveryBytes {
		return true
	}
	if p.Interval > 0 && elapsed >= p.Interval {
		return true
	}
	return false
}

// Result reports the outcome of one checkpoint request (the admin API's
// response body).
type Result struct {
	// Version is the graph version the checkpoint covers (the current
	// committed version, whether or not a new snapshot was cut for it).
	Version  uint64 `json:"version"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// Cut is false when the version was already checkpointed (no-op) or
	// the cut was aborted.
	Cut bool `json:"cut"`
	// Persisted reports a durable write to the snapshot directory.
	Persisted bool `json:"persisted"`
	// TruncatedOps counts the log operations this cut released.
	TruncatedOps int64 `json:"truncated_ops"`
}

// Stats is the checkpointing block of /stats: snapshot accounting from the
// Store plus the live size of the committed-op log (filled in by the
// controller, which owns the log).
type Stats struct {
	Snapshots           int64  `json:"snapshot_count"`
	LastSnapshotVersion uint64 `json:"last_snapshot_version"`
	TruncatedOps        int64  `json:"truncated_ops_total"`
	Persisted           int64  `json:"persisted,omitempty"`
	PersistFailures     int64  `json:"persist_failures,omitempty"`
	DeltaLogLen         int    `json:"delta_log_len"`
	DeltaLogOps         int    `json:"delta_log_ops"`
	DeltaLogBytes       int64  `json:"delta_log_bytes"`
	// LastCutMS is the wall time of the newest completed cut (materialize
	// + persist), all of it spent on the background cutter — evidence that
	// the commit barrier no longer pays the O(V+E) fold.
	LastCutMS float64 `json:"last_cut_ms,omitempty"`
	// LastCutUnixNS is the wall-clock completion time of the newest cut
	// (unix nanoseconds; 0 before the first). /healthz derives its
	// seconds-since-last-checkpoint lag field from it.
	LastCutUnixNS int64 `json:"last_cut_unix_ns,omitempty"`
}
