package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"qgraph/internal/delta"
)

// TestReadTailGapWithNoSegments is the truncation-floor regression: a
// directory whose every segment was truncated away used to read as an
// empty tail — indistinguishable from "no ops" — so a follower whose base
// predates the floor silently believed it was caught up. With the
// persisted floor, ReadTail must report the gap.
func TestReadTailGapWithNoSegments(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	w.SegmentBytes = 128 // force several segments
	appendN(t, w, 1, 10)
	if w.TruncateTo(8) < 1 {
		t.Fatal("truncation released no segments")
	}
	w.Close()
	// Simulate the remaining history vanishing (the crash window of a
	// Rebase, or an operator removing segments): only the floor file is
	// left to prove anything was ever logged.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*"+fileExt))
	if len(segs) == 0 {
		t.Fatal("expected retained segments to remove")
	}
	for _, p := range segs {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	// A follower at version 5 (below the floor) must see the gap, not an
	// empty tail.
	if _, err := ReadTail(dir, testGraphID, 5); !errors.Is(err, delta.ErrGap) {
		t.Fatalf("ReadTail(5) over emptied log = %v, want ErrGap", err)
	}
	// At or past the floor the empty tail is genuine: nothing beyond it
	// was ever retained, and a caller holding a checkpoint there is whole.
	if tail, err := ReadTail(dir, testGraphID, w.Base()); err != nil || len(tail) != 0 {
		t.Fatalf("ReadTail(base) = %d batches, %v", len(tail), err)
	}
	// RecoverGraph inherits the same semantics.
	if _, _, err := RecoverGraph(dir, testGraphID, nil, 5); !errors.Is(err, delta.ErrGap) {
		t.Fatalf("RecoverGraph(5) = %v, want ErrGap", err)
	}
}

// TestRebasePersistsFloorBeforeRemoval: a crash between Rebase's segment
// removal and the new segment's creation leaves a directory with no
// segments; the floor written first must preserve the gap evidence.
func TestRebasePersistsFloorBeforeRemoval(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	if err := w.Rebase(40); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Simulate the crash window: the rebased head segment never survives.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*"+fileExt))
	for _, p := range segs {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ReadTail(dir, testGraphID, 39); !errors.Is(err, delta.ErrGap) {
		t.Fatalf("ReadTail(39) = %v, want ErrGap", err)
	}
	if tail, err := ReadTail(dir, testGraphID, 40); err != nil || len(tail) != 0 {
		t.Fatalf("ReadTail(40) = %d batches, %v", len(tail), err)
	}
}

// TestTailerFollowsAppends: the tailer returns exactly the new batches on
// each poll, and a steady-state poll reads only the new bytes instead of
// re-parsing the segment (the offset-aware point of the type).
func TestTailerFollowsAppends(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	defer w.Close()
	appendN(t, w, 1, 5)

	tl := NewTailer(dir, testGraphID, 0)
	got, err := tl.Poll()
	if err != nil || len(got) != 5 || got[0].Version != 1 || got[4].Version != 5 {
		t.Fatalf("first poll = %d batches, %v", len(got), err)
	}
	if tl.Version() != 5 {
		t.Fatalf("tailer version %d", tl.Version())
	}
	// Caught up: an empty poll, and no bytes re-read.
	quiet := tl.Stats().BytesRead
	if got, err := tl.Poll(); err != nil || len(got) != 0 {
		t.Fatalf("caught-up poll = %d batches, %v", len(got), err)
	}
	if tl.Stats().BytesRead != quiet {
		t.Fatalf("caught-up poll read %d bytes", tl.Stats().BytesRead-quiet)
	}

	// One more batch: the poll reads just that record, not the segment.
	rec := encodeRecord(6, testOps(3, 6))
	if err := w.Append(6, testOps(3, 6)); err != nil {
		t.Fatal(err)
	}
	before := tl.Stats().BytesRead
	got, err = tl.Poll()
	if err != nil || len(got) != 1 || got[0].Version != 6 {
		t.Fatalf("incremental poll = %+v, %v", got, err)
	}
	if read := tl.Stats().BytesRead - before; read != int64(len(rec)) {
		t.Fatalf("incremental poll read %d bytes, want %d (one record)", read, len(rec))
	}
}

// TestTailerAcrossRotation: the tailer follows the segment chain as the
// writer rotates, whether it polls between rotations or only after many.
func TestTailerAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	defer w.Close()
	w.SegmentBytes = 128 // a couple of records per segment

	tl := NewTailer(dir, testGraphID, 0)
	var seen uint64
	for v := uint64(1); v <= 12; v++ {
		appendN(t, w, v, v)
		if v%3 == 0 { // poll only every third append
			for _, b := range mustPoll(t, tl) {
				if b.Version != seen+1 {
					t.Fatalf("version %d after %d", b.Version, seen)
				}
				seen = b.Version
			}
		}
	}
	if seen != 12 {
		t.Fatalf("tailed to %d, want 12", seen)
	}
	if w.Stats().Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", w.Stats().Segments)
	}

	// A tailer attaching late must catch the whole retained chain at once.
	late := NewTailer(dir, testGraphID, 0)
	if got := mustPoll(t, late); len(got) != 12 {
		t.Fatalf("late attach = %d batches", len(got))
	}
}

// TestTailerPartialRecord: a half-written record at the tail (the writer
// mid-append) stalls the tailer at its offset without error; completing
// the record resumes it.
func TestTailerPartialRecord(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	appendN(t, w, 1, 2)
	w.Close()

	tl := NewTailer(dir, testGraphID, 0)
	if got := mustPoll(t, tl); len(got) != 2 {
		t.Fatalf("attach = %d batches", len(got))
	}

	// Append record 3 in two halves, polling in between.
	rec := encodeRecord(3, testOps(2, 3))
	path := filepath.Join(dir, segName(0))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(rec[:len(rec)/2]); err != nil {
		t.Fatal(err)
	}
	if got := mustPoll(t, tl); len(got) != 0 {
		t.Fatalf("poll over torn tail = %d batches", len(got))
	}
	if _, err := f.Write(rec[len(rec)/2:]); err != nil {
		t.Fatal(err)
	}
	got := mustPoll(t, tl)
	if len(got) != 1 || got[0].Version != 3 {
		t.Fatalf("poll after completion = %+v", got)
	}
}

// TestTailerGap: truncation past the tailer's position must surface
// delta.ErrGap — from a fresh attach, and from a live tailer whose
// current segment is removed under it.
func TestTailerGap(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	defer w.Close()
	w.SegmentBytes = 128
	appendN(t, w, 1, 10)

	// Live tailer parked at version 2, inside the first segment.
	tl := NewTailer(dir, testGraphID, 0)
	if got := mustPoll(t, tl); len(got) != 10 {
		t.Fatalf("attach = %d batches", len(got))
	}
	stale := NewTailer(dir, testGraphID, 2)

	if w.TruncateTo(8) < 1 {
		t.Fatal("truncation released no segments")
	}
	// The caught-up tailer rides through the truncation (its segment is
	// the retained head) and keeps following new appends.
	appendN(t, w, 11, 11)
	if got := mustPoll(t, tl); len(got) != 1 || got[0].Version != 11 {
		t.Fatalf("caught-up tailer after truncation = %+v", got)
	}
	// The stale tailer's base predates the retained chain: gap.
	if _, err := stale.Poll(); !errors.Is(err, delta.ErrGap) {
		t.Fatalf("stale tailer = %v, want ErrGap", err)
	}

	// A fresh tailer below the floor sees the gap before reading anything.
	if _, err := NewTailer(dir, testGraphID, 0).Poll(); !errors.Is(err, delta.ErrGap) {
		t.Fatal("fresh tailer below base did not report the gap")
	}
}

func mustPoll(t *testing.T, tl *Tailer) []delta.LogBatch {
	t.Helper()
	got, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	return got
}
